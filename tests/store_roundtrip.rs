//! Property tests for the columnar store: every cell the trace engine can
//! generate must survive segment encode → decode bit-identically, and any
//! single flipped byte in a segment must be caught by the CRC with an
//! error that names the segment.
//!
//! This is the store-layer complement of `tests/prop_engine_cells.rs`:
//! that file round-trips engine flows through the wire codecs; this one
//! round-trips them through the archive's on-disk format.

use lockdown::core::{Context, Fidelity};
use lockdown::store::segment::{decode_segment, encode_segment};
use lockdown::store::StoreError;
use lockdown::topology::vantage::VantagePoint;
use lockdown_flow::time::Date;
use lockdown_traffic::plan::{Cell, Stream, TraceEmitter};
use proptest::prelude::*;
use std::sync::OnceLock;

/// Seeds exercised by the properties; contexts are cached because registry
/// and corpus synthesis dominate a `Fidelity::Test` context's cost.
const SEEDS: [u64; 3] = [0x10CD_2020, 23, 2_020];

fn ctx(seed_idx: usize) -> &'static Context {
    static CTXS: OnceLock<Vec<Context>> = OnceLock::new();
    &CTXS.get_or_init(|| {
        SEEDS
            .iter()
            .map(|&s| Context::with_seed(Fidelity::Test, s))
            .collect()
    })[seed_idx]
}

/// Generate one engine cell's flows exactly as the engine would.
fn cell_flows(
    seed_idx: usize,
    stream: Stream,
    date: Date,
    hour: u8,
) -> Vec<lockdown_flow::record::FlowRecord> {
    let c = ctx(seed_idx);
    let emitter = TraceEmitter::new(&c.registry, &c.corpus, c.config);
    let mut buf = Vec::new();
    emitter.generate_cell(Cell { stream, date, hour }, &mut buf);
    buf
}

/// A stream strategy covering every vantage point plus the EDU generator.
fn any_stream() -> impl Strategy<Value = Stream> {
    prop::sample::select(
        VantagePoint::ALL
            .into_iter()
            .map(Stream::Vantage)
            .chain([Stream::Edu])
            .collect::<Vec<_>>(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Engine cell → encode → decode is the identity on flow records and
    /// reports the exact record count in the footer.
    #[test]
    #[test]
    fn engine_cells_roundtrip_through_segments(
        seed_idx in 0usize..SEEDS.len(),
        stream in any_stream(),
        month in 1u8..=6,
        day in 1u8..=28,
        hour in 0u8..24,
    ) {
        let flows = cell_flows(seed_idx, stream, Date::new(2020, month, day), hour);
        let bytes = encode_segment(&flows);
        let (decoded, footer) = decode_segment("prop.lks", &bytes).expect("clean decode");
        prop_assert_eq!(&decoded, &flows);
        prop_assert_eq!(footer.records, flows.len() as u64);
        if let (Some(min), Some(max)) = (
            flows.iter().map(|f| f.start.unix()).min(),
            flows.iter().map(|f| f.end.unix()).max(),
        ) {
            prop_assert_eq!(footer.min_start, min);
            prop_assert_eq!(footer.max_end, max);
        }
    }

    /// Any single flipped byte is caught by the CRC (or a stricter check
    /// downstream of it) and the error names the segment being decoded.
    #[test]
    #[test]
    fn flipped_byte_fails_decode_naming_the_segment(
        seed_idx in 0usize..SEEDS.len(),
        stream in any_stream(),
        day in 1u8..=28,
        hour in 0u8..24,
        pos_seed in any::<u64>(),
        flip in 1u8..=255,
    ) {
        let flows = cell_flows(seed_idx, stream, Date::new(2020, 3, day), hour);
        let mut bytes = encode_segment(&flows);
        let pos = (pos_seed % bytes.len() as u64) as usize;
        bytes[pos] ^= flip;
        match decode_segment("seg-corrupt-test.lks", &bytes) {
            Ok(_) => prop_assert!(false, "corruption at byte {} undetected", pos),
            Err(StoreError::Corrupt { segment, .. }) => {
                prop_assert_eq!(segment, "seg-corrupt-test.lks".to_string());
            }
            Err(other) => prop_assert!(false, "wrong error class: {other}"),
        }
    }
}
