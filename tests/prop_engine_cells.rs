//! Property tests closing the loop between the single-pass trace engine
//! and the wire layer: flows the engine fans out to its consumers must
//! survive NetFlow v9 and IPFIX encode/decode, and the full
//! exporter → trace-file container → collector pipeline, bit-identically —
//! for arbitrary seeds, vantage points, and study dates.
//!
//! This is the cross-crate complement of `crates/flow/tests/prop_codecs.rs`:
//! that file round-trips *arbitrary* records; this one round-trips the
//! records the reproduction actually emits (notably `Direction::Unknown`,
//! which the codecs encode as 0xFF and must decode back unchanged).

use lockdown::core::engine::{self, EnginePlan};
use lockdown::core::{Context, Fidelity};
use lockdown::flow::prelude::*;
use lockdown::topology::vantage::VantagePoint;
use lockdown_analysis::consumer::FlowConsumer;
use lockdown_flow::ipfix;
use lockdown_flow::netflow::v9::{self, TemplateCache};
use lockdown_flow::netflow::Template;
use lockdown_flow::time::Date;
use lockdown_traffic::plan::Stream;
use proptest::prelude::*;
use std::sync::OnceLock;

/// Seeds exercised by the properties; contexts are cached because registry
/// and corpus synthesis dominate a `Fidelity::Test` context's cost.
const SEEDS: [u64; 3] = [0x10CD_2020, 23, 2_020];

fn ctx(seed_idx: usize) -> &'static Context {
    static CTXS: OnceLock<Vec<Context>> = OnceLock::new();
    &CTXS.get_or_init(|| {
        SEEDS
            .iter()
            .map(|&s| Context::with_seed(Fidelity::Test, s))
            .collect()
    })[seed_idx]
}

/// Engine consumer that keeps the raw flows, in fan-out order.
struct CollectFlows {
    flows: Vec<FlowRecord>,
}

impl FlowConsumer for CollectFlows {
    fn observe(&mut self, record: &FlowRecord) {
        self.flows.push(*record);
    }

    fn merge(&mut self, mut other: Self) {
        self.flows.append(&mut other.flows);
    }
}

/// One single-worker engine pass over a one-day `(vantage, date)` window,
/// so flow order is the canonical generation order.
fn engine_day(ctx: &Context, vp: VantagePoint, date: Date) -> Vec<FlowRecord> {
    let mut plan = EnginePlan::new();
    let d = plan.subscribe(Stream::Vantage(vp), date, date, || CollectFlows {
        flows: Vec::new(),
    });
    engine::run_with_workers(ctx, plan, 1)
        .expect("pass succeeds")
        .take(d)
        .flows
}

/// Export timestamp strictly after every flow in the day (EDU-style flows
/// may cross midnight), so uptime-relative v9 encoding stays exact.
fn export_time(flows: &[FlowRecord], date: Date) -> Timestamp {
    flows
        .iter()
        .map(|f| f.end)
        .max()
        .unwrap_or_else(|| date.at_hour(23))
        .add_secs(1)
}

fn arb_inputs() -> impl Strategy<Value = (usize, VantagePoint, Date)> {
    (
        0..SEEDS.len(),
        prop::sample::select(VantagePoint::CORE_FOUR.to_vec()),
        prop_oneof![Just(2u8), Just(3u8), Just(4u8)],
        1u8..=28,
    )
        .prop_map(|(seed_idx, vp, month, day)| (seed_idx, vp, Date::new(2020, month, day)))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Every engine-generated flow survives NetFlow v9 encode/decode.
    #[test]
    #[test]
    fn engine_cells_roundtrip_v9(
        (seed_idx, vp, date) in arb_inputs(),
        chunk in 16usize..64,
    ) {
        let flows = engine_day(ctx(seed_idx), vp, date);
        let export = export_time(&flows, date);
        let boot = date.midnight();
        let template = Template::standard_v9(310);
        let mut cache = TemplateCache::new();
        for batch in flows.chunks(chunk) {
            let pkt = v9::encode(batch, Some(&template), &template, export, boot, 1, 9);
            let (_, out) = v9::decode(&pkt, &mut cache).unwrap();
            prop_assert_eq!(out, batch);
        }
    }

    /// Every engine-generated flow survives IPFIX encode/decode.
    #[test]
    #[test]
    fn engine_cells_roundtrip_ipfix(
        (seed_idx, vp, date) in arb_inputs(),
        chunk in 16usize..64,
    ) {
        let flows = engine_day(ctx(seed_idx), vp, date);
        let export = export_time(&flows, date);
        let template = Template::standard_ipfix(260);
        let mut cache = TemplateCache::new();
        for batch in flows.chunks(chunk) {
            let msg = ipfix::encode(batch, Some(&template), &template, export, 1, 9);
            let (hdr, out) = ipfix::decode(&msg, &mut cache).unwrap();
            prop_assert_eq!(hdr.length as usize, msg.len());
            prop_assert_eq!(out, batch);
        }
    }

    /// The whole capture pipeline — exporter, trace-file container,
    /// collector — is the identity on an engine-generated day, for any
    /// batch size and both templated wire formats.
    #[test]
    #[test]
    fn engine_cells_through_exporter_and_tracefile(
        (seed_idx, vp, date) in arb_inputs(),
        batch in 8usize..64,
        refresh in 1u32..8,
        format in prop_oneof![Just(ExportFormat::Ipfix), Just(ExportFormat::NetflowV9)],
    ) {
        let flows = engine_day(ctx(seed_idx), vp, date);
        let export = export_time(&flows, date);

        let mut cfg = ExporterConfig::new(format, date.midnight());
        cfg.batch_size = batch;
        cfg.template_refresh = refresh;
        let mut exporter = Exporter::new(cfg);
        let mut writer = TraceWriter::new();
        for pkt in exporter.export_all(&flows, export) {
            writer.push(export, &pkt).unwrap();
        }
        let bytes = writer.finish();

        let reader = TraceReader::open(&bytes).unwrap();
        let mut collector = Collector::new();
        for record in reader {
            collector.ingest(record.unwrap().payload);
        }
        prop_assert_eq!(collector.records(), &flows[..]);
    }
}
