//! Generator ↔ analysis consistency: the Table 1 classifier must recover
//! the classes the generator intended, the §6 VPN procedure must find the
//! generator's gateway traffic, and classification must be stable across
//! the wire.

use lockdown::analysis::appclass::{Classifier, PaperClass};
use lockdown::analysis::vpn::VpnClassifier;
use lockdown::core::{Context, Fidelity};
use lockdown::scenario::apps::AppClass;
use lockdown::topology::vantage::VantagePoint;
use lockdown_flow::record::FlowRecord;
use lockdown_flow::time::Date;

fn ctx() -> Context {
    Context::new(Fidelity::Standard) // classification stats need volume
}

/// Generate one hour of a single app class.
fn class_hour(ctx: &Context, vp: VantagePoint, app: AppClass) -> Vec<FlowRecord> {
    let generator = ctx.generator();
    let mut out = Vec::new();
    generator.generate_hour_class(vp, app, Date::new(2020, 3, 25), 11, &mut out);
    out
}

/// Fraction of flows classified as `expected`.
fn hit_rate(classifier: &Classifier, flows: &[FlowRecord], expected: PaperClass) -> f64 {
    if flows.is_empty() {
        return 1.0;
    }
    flows
        .iter()
        .filter(|f| classifier.classify(f) == Some(expected))
        .count() as f64
        / flows.len() as f64
}

#[test]
fn intended_classes_are_recovered() {
    let ctx = ctx();
    let classifier = Classifier::from_registry(&ctx.registry);
    // (generated class, paper class, minimum recovery rate). Rates below
    // 1.0 are intentional: hypergiant gaming on ephemeral ports, the
    // social-media long tail, and similar real-world ambiguities.
    let cases = [
        (AppClass::WebConf, PaperClass::WebConf, 0.95),
        (AppClass::Email, PaperClass::Email, 0.95),
        (AppClass::Messaging, PaperClass::Messaging, 0.95),
        (AppClass::Vod, PaperClass::Vod, 0.95),
        (AppClass::Cdn, PaperClass::Cdn, 0.95),
        (AppClass::Educational, PaperClass::Educational, 0.95),
        (AppClass::CollabWork, PaperClass::CollabWorking, 0.80),
        (AppClass::Gaming, PaperClass::Gaming, 0.75),
        (AppClass::SocialMedia, PaperClass::SocialMedia, 0.75),
    ];
    for (app, expected, min_rate) in cases {
        for vp in [VantagePoint::IspCe, VantagePoint::IxpCe] {
            let flows = class_hour(&ctx, vp, app);
            let rate = hit_rate(&classifier, &flows, expected);
            assert!(
                rate >= min_rate,
                "{vp}/{app}: only {rate:.2} classified as {expected}"
            );
        }
    }
}

#[test]
fn unclassified_classes_stay_unclassified() {
    // User VPN is not among the nine paper classes and must not pollute
    // them; QUIC only bleeds into CDN when it terminates at a CDN-heavy
    // hypergiant (Akamai/Cloudflare run QUIC, and the paper's CDN filter
    // is AS-only — the "hiding among the existing traffic" ambiguity §5
    // calls out).
    let ctx = ctx();
    let classifier = Classifier::from_registry(&ctx.registry);
    let flows = class_hour(&ctx, VantagePoint::IxpCe, AppClass::VpnUser);
    let misclassified = flows
        .iter()
        .filter(|f| classifier.classify(f).is_some())
        .count() as f64
        / flows.len().max(1) as f64;
    assert!(
        misclassified < 0.10,
        "VpnUser: {misclassified:.2} leaked into paper classes"
    );

    let quic = class_hour(&ctx, VantagePoint::IxpCe, AppClass::Quic);
    for f in &quic {
        match classifier.classify(f) {
            None | Some(PaperClass::Cdn) => {}
            Some(other) => panic!("QUIC flow classified as {other}"),
        }
    }
    // Google-terminated QUIC (the majority) stays unclassified.
    let unclassified = quic
        .iter()
        .filter(|f| classifier.classify(f).is_none())
        .count();
    assert!(
        unclassified as f64 > 0.35 * quic.len() as f64,
        "too little QUIC left unclassified: {unclassified}/{}",
        quic.len()
    );
}

#[test]
fn vpn_tls_traffic_found_by_domain_method() {
    let ctx = ctx();
    let vpn = VpnClassifier::new(ctx.vpn_candidate_ips());
    let flows = class_hour(&ctx, VantagePoint::IxpCe, AppClass::VpnTls);
    assert!(!flows.is_empty());
    let found = flows.iter().filter(|f| vpn.is_domain_vpn(f)).count() as f64 / flows.len() as f64;
    // ~15% of the generator's TLS-VPN traffic targets www-shared gateways
    // that §6's conservative elimination intentionally misses.
    assert!(
        (0.70..=0.98).contains(&found),
        "domain method found {found:.2} of TLS-VPN traffic"
    );
}

#[test]
fn web_traffic_not_misread_as_vpn() {
    let ctx = ctx();
    let vpn = VpnClassifier::new(ctx.vpn_candidate_ips());
    let flows = class_hour(&ctx, VantagePoint::IxpCe, AppClass::Web);
    let false_pos =
        flows.iter().filter(|f| vpn.is_domain_vpn(f)).count() as f64 / flows.len().max(1) as f64;
    assert!(false_pos < 0.02, "web misread as VPN: {false_pos:.3}");
}

#[test]
fn table1_inventory_consistent_with_generated_ports() {
    // Every canonical port signature the generator uses for a Table 1
    // class appears in the classifier's inventory for that class.
    let ctx = ctx();
    let classifier = Classifier::from_registry(&ctx.registry);
    let pairs = [
        (AppClass::WebConf, PaperClass::WebConf),
        (AppClass::Email, PaperClass::Email),
        (AppClass::Messaging, PaperClass::Messaging),
    ];
    for (app, class) in pairs {
        let (_, _, port_count) = classifier.table1_row(class);
        assert!(port_count > 0, "{class} has no ports");
        // Canonical signature always classifiable: construct a probe flow.
        let sig = app.port_signatures()[0];
        let t = Date::new(2020, 3, 25).at_hour(10);
        let probe = FlowRecord::builder(
            lockdown_flow::record::FlowKey {
                src_addr: "192.0.2.1".parse().expect("valid"),
                dst_addr: "192.0.2.2".parse().expect("valid"),
                src_port: 40_000,
                dst_port: sig.port,
                protocol: sig.protocol,
            },
            t,
        )
        .end(t.add_secs(1))
        .bytes(1)
        .packets(1)
        .build();
        assert_eq!(classifier.classify(&probe), Some(class), "{app} probe");
    }
}
