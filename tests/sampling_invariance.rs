//! Sampled-telemetry invariance: the paper's analyses are built on
//! normalized volumes precisely because production flow export is sampled.
//! These tests check that the figures' *ratios* survive 1-in-N sampling
//! with renormalization, while absolute counts become estimates.

use lockdown::analysis::prelude::*;
use lockdown::core::{Context, Fidelity};
use lockdown::flow::prelude::*;
use lockdown::topology::vantage::VantagePoint;
use lockdown_flow::time::Date;

#[test]
fn growth_ratio_survives_sampling() {
    // The headline ratio (lockdown day / base day volume) must be stable
    // under sampling at a modest rate.
    let ctx = Context::new(Fidelity::Standard);
    let generator = ctx.generator();
    let base_day = Date::new(2020, 2, 19);
    let lock_day = Date::new(2020, 3, 25);
    let base = generator.generate_day(VantagePoint::IxpCe, base_day);
    let lock = generator.generate_day(VantagePoint::IxpCe, lock_day);

    let ratio = |b: &[FlowRecord], l: &[FlowRecord]| {
        let vb: u64 = b.iter().map(|f| f.bytes).sum();
        let vl: u64 = l.iter().map(|f| f.bytes).sum();
        vl as f64 / vb as f64
    };
    let truth = ratio(&base, &lock);

    let sampler = FlowSampler::new(8, 42);
    let sampled = ratio(&sampler.sample_all(&base), &sampler.sample_all(&lock));
    let err = (sampled - truth).abs() / truth;
    assert!(
        err < 0.08,
        "sampled growth {sampled:.3} vs true {truth:.3} (err {err:.3})"
    );
}

#[test]
fn day_pattern_classification_survives_sampling() {
    // Fig. 2's classifier works on 6-hour volume shares: sampling noise
    // must not flip verdicts at moderate rates.
    //
    // Sampling here is *threshold* (smart) sampling, not uniform 1-in-N:
    // the generator's downscaled fidelity emits ~20k records per day that
    // each aggregate terabytes, so an all-or-nothing 1-in-N draw over
    // records swings 6-hour shares by several points and flips borderline
    // days — that variance is an artifact of record granularity, not of
    // the sampling rate the paper's pipelines run at. Threshold sampling
    // caps any record's contribution at z, which is how production flow
    // analyses keep heavy-tailed volumes stable under sampling.
    let ctx = Context::new(Fidelity::Standard);
    let generator = ctx.generator();
    let sampler = ThresholdSampler::new(5_000_000_000_000, 7);
    let region = VantagePoint::IspCe.region();

    let mut full = HourlyVolume::new();
    let mut sampled = HourlyVolume::new();
    let mut seen = 0u64;
    let mut kept = 0u64;
    generator.for_each_hour(
        VantagePoint::IspCe,
        Date::new(2020, 2, 1),
        Date::new(2020, 3, 31),
        |_, _, flows| {
            full.add_all(flows);
            seen += flows.len() as u64;
            for f in flows {
                if let Some(s) = sampler.sample(f) {
                    kept += 1;
                    sampled.add(&s);
                }
            }
        },
    );
    // The reduction must be real for the invariance claim to mean much.
    assert!(
        (kept as f64) < 0.25 * seen as f64,
        "kept {kept}/{seen}: threshold too low to exercise sampling"
    );
    let clf_full = DayClassifier::train_february(&full, region);
    let clf_sampled = DayClassifier::train_february(&sampled, region);
    let mut agree = 0;
    let mut total = 0;
    for date in Date::new(2020, 3, 1).range_inclusive(Date::new(2020, 3, 31)) {
        let (Some(a), Some(b)) = (
            clf_full.classify(&full, date),
            clf_sampled.classify(&sampled, date),
        ) else {
            continue;
        };
        total += 1;
        if a == b {
            agree += 1;
        }
    }
    assert!(total >= 28);
    assert!(
        agree as f64 >= 0.9 * total as f64,
        "verdicts agree on only {agree}/{total} days"
    );
}

#[test]
fn port_mix_shares_survive_sampling() {
    let ctx = Context::new(Fidelity::Standard);
    let generator = ctx.generator();
    let flows = generator.generate_day(VantagePoint::IxpCe, Date::new(2020, 3, 25));
    let sampler = FlowSampler::new(8, 3);
    let sampled = sampler.sample_all(&flows);

    let region = VantagePoint::IxpCe.region();
    let mut p_full = PortProfile::new();
    p_full.add_all(&flows, region);
    let mut p_sampled = PortProfile::new();
    p_sampled.add_all(&sampled, region);

    // The web-port share (a headline §4 statistic) moves by at most a few
    // points under sampling.
    let full_share = p_full.share_of(&[tcp443(), tcp80()]);
    let sampled_share = p_sampled.share_of(&[tcp443(), tcp80()]);
    assert!(
        (full_share - sampled_share).abs() < 0.05,
        "web share {full_share:.3} vs sampled {sampled_share:.3}"
    );
    // The top non-web port is stable.
    assert_eq!(
        p_full.top_services(1, &[tcp443(), tcp80()]),
        p_sampled.top_services(1, &[tcp443(), tcp80()])
    );
}
