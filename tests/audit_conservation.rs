//! Conservation-audit harness: the ledger must balance *exactly* for any
//! fault schedule, sampling rate, restart cadence, and — critically — any
//! starting position of the exporters' u32 sequence counters and uptime
//! clocks, including positions that wrap mid-session.
//!
//! Every run here threads the audit ledger through the whole
//! export → transport → collect → consume path and asserts that not a
//! single conservation identity is violated: whatever the pipeline loses
//! it must account for, and whatever it accounts for it must have lost.

use lockdown::collect::{audit, CollectionPlane, FaultProfile, WireConfig};
use lockdown::flow::prelude::*;
use lockdown::flow::protocol::IpProtocol;
use lockdown::topology::vantage::VantagePoint;
use lockdown::traffic::plan::{Cell, Stream};
use proptest::prelude::*;
use std::net::Ipv4Addr;
use std::sync::OnceLock;

/// Just under the u32-ms uptime wrap (~49.71 days), in seconds: exporters
/// booted this long ago cross the wrap during the exported hour.
const NEAR_UPTIME_WRAP_SECS: u64 = (u32::MAX as u64) / 1000 - 1_800;

fn cell() -> Cell {
    Cell {
        stream: Stream::Vantage(VantagePoint::IxpCe),
        date: Date::new(2020, 3, 25),
        hour: 14,
    }
}

/// A deterministic synthetic cell of `n` flows (shared across cases).
fn flows() -> &'static Vec<FlowRecord> {
    static FLOWS: OnceLock<Vec<FlowRecord>> = OnceLock::new();
    FLOWS.get_or_init(|| {
        let t = Date::new(2020, 3, 25).at_hour(14);
        (0..900u32)
            .map(|i| {
                FlowRecord::builder(
                    FlowKey {
                        src_addr: Ipv4Addr::from(0xC000_0200 | (i % 241)),
                        dst_addr: Ipv4Addr::from(0x0A02_0000 | (i / 5)),
                        src_port: (1024 + i % 48_000) as u16,
                        dst_port: if i % 3 == 0 { 443 } else { 80 },
                        protocol: if i % 5 == 0 {
                            IpProtocol::Udp
                        } else {
                            IpProtocol::Tcp
                        },
                    },
                    t.add_secs(u64::from(i % 3_200)),
                )
                .end(t.add_secs(u64::from(i % 3_200) + 55))
                .bytes(1_200 + u64::from(i) * 13)
                .packets(2 + u64::from(i % 70))
                .build()
            })
            .collect()
    })
}

/// Push the shared cell through an audited plane and return the audit
/// report plus what came out the far end.
fn run_audited(mut cfg: WireConfig) -> (Vec<FlowRecord>, audit::Report) {
    cfg.audit = true;
    let plane = CollectionPlane::new(cfg);
    let out = plane.process_cell(cell(), flows());
    plane.note_consumed(&cell(), &out);
    let report = plane.audit_report().expect("auditing is on");
    (out, report)
}

#[test]
fn zero_faults_are_clean_for_every_format_even_across_both_wraps() {
    for format in [
        ExportFormat::NetflowV5,
        ExportFormat::NetflowV9,
        ExportFormat::Ipfix,
    ] {
        let mut cfg = WireConfig::new();
        cfg.format = format;
        // Start the sequence counters 17 units below the wrap and the
        // uptime clocks just below the 2^32 ms wrap: both wrap mid-cell.
        cfg.initial_sequence = u32::MAX - 17;
        cfg.boot_age_secs = NEAR_UPTIME_WRAP_SECS;
        let (out, report) = run_audited(cfg);
        assert_eq!(out.len(), flows().len(), "{format:?}");
        assert!(
            report.is_clean(),
            "{format:?} violated conservation:\n{}",
            report.render()
        );
        assert_eq!(report.cells, 1);
        assert_eq!(report.totals.generated.records, flows().len() as u64);
        assert_eq!(report.totals.est_lost, 0, "{format:?}");
    }
}

#[test]
fn faulted_runs_balance_exactly_against_transport_ground_truth() {
    let mut cfg = WireConfig::new();
    // Template in every datagram: nothing buffers, so the only loss is
    // transport drops and the audit's loss-exactness identity pins the
    // estimate to the ground truth with zero tolerance.
    cfg.template_refresh = 1;
    cfg.seed = 23;
    cfg.initial_sequence = u32::MAX - 100;
    cfg.faults = FaultProfile {
        loss: 0.15,
        duplicate: 0.08,
        reorder: 0.1,
        restart_every: 0,
    };
    let (out, report) = run_audited(cfg);
    assert!(report.is_clean(), "{}", report.render());
    let t = &report.totals;
    assert!(t.dropped_records > 0, "seeded loss should fire");
    assert_eq!(t.est_lost, t.dropped_records);
    assert_eq!(t.accepted.records + t.est_lost, t.generated.records);
    assert_eq!(out.len() as u64, t.accepted.records);
}

#[test]
fn v9_restarts_near_the_uptime_wrap_stay_conservative() {
    // The hardest disambiguation: scheduled restarts *and* an uptime clock
    // that wraps mid-session. Mistaking the wrap for a restart flushes
    // collector state and loses records; mistaking a restart for a wrap
    // corrupts timestamps. Either way a conservation identity breaks.
    let mut cfg = WireConfig::new();
    cfg.format = ExportFormat::NetflowV9;
    cfg.exporters = 2;
    cfg.boot_age_secs = NEAR_UPTIME_WRAP_SECS;
    cfg.faults = FaultProfile {
        loss: 0.0,
        duplicate: 0.0,
        reorder: 0.0,
        restart_every: 3,
    };
    let (out, report) = run_audited(cfg);
    assert!(report.is_clean(), "{}", report.render());
    assert_eq!(out.len(), flows().len(), "no faults: nothing may be lost");
    assert_eq!(report.totals.est_lost, 0);
}

#[test]
fn sampled_export_balances_in_record_space() {
    let mut cfg = WireConfig::new();
    cfg.template_refresh = 1;
    cfg.sampling = Some(4);
    cfg.seed = 31;
    cfg.faults = FaultProfile {
        loss: 0.1,
        duplicate: 0.0,
        reorder: 0.0,
        restart_every: 0,
    };
    let (_, report) = run_audited(cfg);
    assert!(report.is_clean(), "{}", report.render());
    let t = &report.totals;
    assert!(t.sampled_out > 0, "1-in-4 sampling must drop records");
    assert_eq!(
        t.accepted.records + t.est_lost + t.sampled_out,
        t.generated.records
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The tentpole property: for ANY combination of format, fault
    /// schedule, restart cadence, sampling rate, template cadence, fleet
    /// shape, and wrap-crossing sequence/uptime starting offsets, the
    /// ledger balances exactly — every conservation identity holds.
    #[test]
    fn any_schedule_balances_the_ledger(
        format_pick in 0u8..3,
        loss in prop_oneof![Just(0.0f64), 0.0..0.35f64],
        duplicate in prop_oneof![Just(0.0f64), 0.0..0.2f64],
        reorder in prop_oneof![Just(0.0f64), 0.0..0.2f64],
        restart_every in prop_oneof![Just(0u32), 2u32..8],
        template_refresh in prop_oneof![Just(0u32), Just(1u32), 2u32..10],
        sample in prop_oneof![Just(1u32), 2u32..8],
        exporters in 1usize..5,
        shards in 1usize..5,
        batch in 8usize..80,
        renormalize in any::<bool>(),
        initial_sequence in prop_oneof![
            Just(0u32),
            (u32::MAX - 2_000)..=u32::MAX,
            any::<u32>(),
        ],
        boot_age in prop_oneof![
            Just(0u64),
            Just(NEAR_UPTIME_WRAP_SECS),
            0u64..(200 * 86_400),
        ],
        seed in any::<u64>(),
    ) {
        let format = match format_pick {
            0 => ExportFormat::NetflowV5,
            1 => ExportFormat::NetflowV9,
            _ => ExportFormat::Ipfix,
        };
        // v5 carries no in-band sampling announcement; sampling requires
        // a template-bearing format.
        let sampling = (sample > 1 && format != ExportFormat::NetflowV5)
            .then_some(sample);
        let mut cfg = WireConfig::new().with_faults(FaultProfile {
            loss,
            duplicate,
            reorder,
            restart_every,
        });
        cfg.format = format;
        cfg.exporters = exporters;
        cfg.shards = shards;
        cfg.batch_size = batch;
        // The sampling announcement rides the options template; keep it in
        // every datagram so a lossy schedule cannot leave scaling unknown.
        cfg.template_refresh = if sampling.is_some() { 1 } else { template_refresh };
        cfg.sampling = sampling;
        cfg.renormalize = renormalize;
        cfg.initial_sequence = initial_sequence;
        cfg.boot_age_secs = boot_age;
        cfg.seed = seed;

        let (out, report) = run_audited(cfg);
        prop_assert!(report.is_clean(), "ledger imbalance:\n{}", report.render());
        prop_assert_eq!(out.len() as u64, report.totals.accepted.records);
        // Nothing generated may vanish unaccounted, whatever the schedule.
        let t = &report.totals;
        prop_assert!(
            t.accepted.records + t.est_lost + t.sampled_out + t.abandoned_records
                >= t.generated.records.saturating_sub(t.dropped_records),
        );
    }
}
