//! Cold vs. warm archive equivalence: an engine pass that replays cells
//! from a columnar archive must be byte-identical to the pass that
//! generated (and spilled) them — per consumer, for the full figure
//! suite, in wire mode, and across worker counts — while doing zero flow
//! generation. Staleness (different seed) and corruption (flipped byte)
//! must be detected, not silently absorbed.

use lockdown::core::engine::{self, EnginePlan};
use lockdown::core::experiments::suite;
use lockdown::core::{Context, Fidelity};
use lockdown::store::StoreError;
use lockdown_analysis::consumer::FlowConsumer;
use lockdown_collect::WireConfig;
use lockdown_flow::record::FlowRecord;
use lockdown_flow::time::Date;
use lockdown_topology::vantage::VantagePoint;
use lockdown_traffic::plan::Stream;
use std::path::{Path, PathBuf};

/// Engine consumer that keeps raw flows sorted into canonical order, so
/// equality is insensitive to worker scheduling.
struct SortedFlows {
    flows: Vec<FlowRecord>,
}

impl FlowConsumer for SortedFlows {
    fn observe(&mut self, record: &FlowRecord) {
        self.flows.push(*record);
    }

    fn merge(&mut self, mut other: Self) {
        self.flows.append(&mut other.flows);
    }
}

impl SortedFlows {
    fn sorted(mut self) -> Vec<FlowRecord> {
        self.flows.sort_by_key(|f| {
            (
                f.start,
                f.end,
                f.key.src_addr,
                f.key.dst_addr,
                f.key.src_port,
                f.key.dst_port,
            )
        });
        self.flows
    }
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("lockdown-replay-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// One `(vantage, window)` pass, optionally archived; returns the sorted
/// flows and the pass stats.
fn pass(
    ctx: &Context,
    vp: VantagePoint,
    start: Date,
    end: Date,
    archive: Option<&Path>,
    wire: bool,
    workers: usize,
) -> (
    Vec<FlowRecord>,
    engine::EngineStats,
    Option<(u64, u64, u64)>,
) {
    let mut plan = EnginePlan::new();
    if wire {
        plan.with_wire(WireConfig::new());
    }
    if let Some(dir) = archive {
        plan.with_archive(dir);
    }
    let d = plan.subscribe(Stream::Vantage(vp), start, end, || SortedFlows {
        flows: Vec::new(),
    });
    let mut out = engine::try_run_with_workers(ctx, plan, workers).expect("pass succeeds");
    let store = out.store_metrics().map(|m| {
        (
            m.segments_written.get(),
            m.segments_read.get(),
            m.segments_pruned.get(),
        )
    });
    let stats = out.stats();
    (out.take(d).sorted(), stats, store)
}

#[test]
fn warm_replay_is_byte_identical_and_generates_nothing() {
    let ctx = Context::with_seed(Fidelity::Test, 41);
    let dir = tmp_dir("identity");
    let (d1, d2) = (Date::new(2020, 3, 9), Date::new(2020, 3, 11));
    let vp = VantagePoint::IxpSe;

    let (plain, _, none) = pass(&ctx, vp, d1, d2, None, false, 2);
    assert!(none.is_none(), "no archive, no store metrics");

    let (cold, cold_stats, cold_store) = pass(&ctx, vp, d1, d2, Some(&dir), false, 2);
    let (written, read, _) = cold_store.expect("archived pass carries store metrics");
    assert_eq!(cold_stats.cells_generated, 3 * 24);
    assert_eq!(cold_stats.cells_replayed, 0);
    assert_eq!(written, 3 * 24);
    assert_eq!(read, 0);

    let (warm, warm_stats, warm_store) = pass(&ctx, vp, d1, d2, Some(&dir), false, 2);
    let (written, read, _) = warm_store.expect("archived pass carries store metrics");
    // The acceptance criterion: replay does ZERO generation...
    assert_eq!(warm_stats.cells_generated, 0);
    assert_eq!(warm_stats.cells_replayed, 3 * 24);
    assert_eq!(written, 0);
    assert_eq!(read, 3 * 24);
    // ...and the flows are bit-identical to both the cold spill and the
    // archive-free baseline.
    assert_eq!(warm, cold);
    assert_eq!(warm, plain);
    assert_eq!(warm_stats.flows_emitted, cold_stats.flows_emitted);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn warm_replay_is_worker_count_invariant() {
    let ctx = Context::with_seed(Fidelity::Test, 43);
    let dir = tmp_dir("workers");
    let (d1, d2) = (Date::new(2020, 2, 17), Date::new(2020, 2, 19));
    let vp = VantagePoint::IspCe;
    let (cold, _, _) = pass(&ctx, vp, d1, d2, Some(&dir), false, 1);
    for workers in [1usize, 2, 5] {
        let (warm, stats, _) = pass(&ctx, vp, d1, d2, Some(&dir), false, workers);
        assert_eq!(stats.cells_generated, 0, "workers={workers}");
        assert_eq!(warm, cold, "workers={workers}");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn superset_archive_serves_subset_plan_with_pruning() {
    let ctx = Context::with_seed(Fidelity::Test, 47);
    let dir = tmp_dir("prune");
    let vp = VantagePoint::IxpCe;
    let (d1, d4) = (Date::new(2020, 3, 2), Date::new(2020, 3, 5));
    pass(&ctx, vp, d1, d4, Some(&dir), false, 2);

    // A narrower demand replays from the same archive: the plan hash
    // differs, but the generation key (seed + scenario) matches.
    let d2 = Date::new(2020, 3, 3);
    let (subset_warm, stats, store) = pass(&ctx, vp, d1, d2, Some(&dir), false, 2);
    let (_, read, pruned) = store.expect("store metrics");
    assert_eq!(stats.cells_generated, 0, "subset must replay, not respill");
    assert_eq!(stats.cells_replayed, 2 * 24);
    assert_eq!(read, 2 * 24);
    assert_eq!(pruned, 2 * 24, "the other two days' segments are pruned");

    let (subset_plain, _, _) = pass(&ctx, vp, d1, d2, None, false, 2);
    assert_eq!(subset_warm, subset_plain);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn stale_seed_invalidates_and_respills() {
    let dir = tmp_dir("stale");
    let (d1, d2) = (Date::new(2020, 3, 23), Date::new(2020, 3, 24));
    let vp = VantagePoint::IxpUs;
    let a = Context::with_seed(Fidelity::Test, 1);
    pass(&a, vp, d1, d2, Some(&dir), false, 2);

    // Different seed → different generation: the archive must NOT be
    // replayed (that would resurrect seed-1 flows under seed 2).
    let b = Context::with_seed(Fidelity::Test, 2);
    let (cold_b, stats, _) = pass(&b, vp, d1, d2, Some(&dir), false, 2);
    assert_eq!(stats.cells_replayed, 0, "stale archive must not replay");
    assert_eq!(stats.cells_generated, 2 * 24);
    let (plain_b, _, _) = pass(&b, vp, d1, d2, None, false, 2);
    assert_eq!(cold_b, plain_b);

    // And the respill re-keyed the archive: seed 2 now replays warm.
    let (warm_b, stats, _) = pass(&b, vp, d1, d2, Some(&dir), false, 2);
    assert_eq!(stats.cells_generated, 0);
    assert_eq!(warm_b, plain_b);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_segment_aborts_the_pass_naming_the_segment() {
    let ctx = Context::with_seed(Fidelity::Test, 53);
    let dir = tmp_dir("corrupt");
    let (d1, d2) = (Date::new(2020, 4, 6), Date::new(2020, 4, 7));
    let vp = VantagePoint::MobileCe;
    pass(&ctx, vp, d1, d2, Some(&dir), false, 2);

    // Flip one byte in one spilled segment.
    let seg_dir = dir.join("segments");
    let mut names: Vec<_> = std::fs::read_dir(&seg_dir)
        .expect("segments dir")
        .map(|e| e.expect("entry").file_name().into_string().expect("utf8"))
        .collect();
    names.sort();
    let victim = names[names.len() / 2].clone();
    let victim_path = seg_dir.join(&victim);
    let mut bytes = std::fs::read(&victim_path).expect("read segment");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x01;
    std::fs::write(&victim_path, &bytes).expect("rewrite segment");

    let mut plan = EnginePlan::new();
    plan.with_archive(&dir);
    plan.subscribe(Stream::Vantage(vp), d1, d2, || SortedFlows {
        flows: Vec::new(),
    });
    match engine::try_run_with_workers(&ctx, plan, 2) {
        Ok(_) => panic!("corrupt archive must abort the pass"),
        Err(StoreError::Corrupt { segment, .. }) => {
            assert_eq!(segment, victim, "error names the corrupt segment");
        }
        Err(other) => panic!("wrong error class: {other}"),
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn wire_mode_cold_and_warm_agree() {
    let ctx = Context::with_seed(Fidelity::Test, 59);
    let dir = tmp_dir("wire");
    let (d1, d2) = (Date::new(2020, 3, 16), Date::new(2020, 3, 17));
    let vp = VantagePoint::IspCe;
    // Archive stores *generated* cells; the wire plane runs on top of the
    // replayed batch, so zero-fault wire output must match cold exactly.
    let (cold, _, _) = pass(&ctx, vp, d1, d2, Some(&dir), true, 2);
    let (warm, stats, _) = pass(&ctx, vp, d1, d2, Some(&dir), true, 2);
    assert_eq!(stats.cells_generated, 0);
    assert_eq!(warm, cold);
    let (plain, _, _) = pass(&ctx, vp, d1, d2, None, true, 2);
    assert_eq!(warm, plain);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn full_suite_renders_identically_cold_and_warm() {
    let ctx = Context::new(Fidelity::Test);
    let dir = tmp_dir("suite");

    let baseline = suite::run_all(&ctx);
    let cold = suite::run_all_archived(&ctx, None, &dir).expect("cold suite");
    assert!(cold.stats.cells_generated > 0);
    assert_eq!(cold.stats.cells_replayed, 0);

    let warm = suite::run_all_archived(&ctx, None, &dir).expect("warm suite");
    assert_eq!(
        warm.stats.cells_generated, 0,
        "warm suite generates nothing"
    );
    assert_eq!(warm.stats.cells_replayed, cold.stats.cells_generated);

    // The tentpole acceptance: rendered figure output is byte-identical
    // across no-archive, cold, and warm paths.
    let b = baseline.renders();
    let c = cold.renders();
    let w = warm.renders();
    assert_eq!(b, c);
    assert_eq!(c, w);
    let _ = std::fs::remove_dir_all(&dir);
}
