//! Socket-plane acceptance: the real-UDP collection daemon must be
//! indistinguishable from the in-process loopback transport on zero-loss
//! runs, and must account every drop it does take — at the kernel, at a
//! shard queue, or as a truncated read — exactly.

use std::net::Ipv4Addr;
use std::time::{Duration, Instant};

use lockdown::collect::daemon::{Collectd, CollectdConfig, SocketPlane};
use lockdown::collect::{CollectMetrics, CollectionPlane, SendSocket, WireConfig};
use lockdown::flow::exporter::ExportFormat;
use lockdown::flow::netflow::v5;
use lockdown::flow::prelude::*;
use lockdown::flow::time::Date;
use lockdown::topology::vantage::VantagePoint;
use lockdown::traffic::plan::{Cell, Stream};

fn cell(hour: u8) -> Cell {
    Cell {
        stream: Stream::Vantage(VantagePoint::IxpCe),
        date: Date::new(2020, 3, 25),
        hour,
    }
}

fn flows(n: u32, hour: u8) -> Vec<FlowRecord> {
    let t = Date::new(2020, 3, 25).at_hour(hour);
    (0..n)
        .map(|i| {
            FlowRecord::builder(
                FlowKey {
                    src_addr: Ipv4Addr::from(0xC000_0200 | (i % 251)),
                    dst_addr: Ipv4Addr::from(0x0A01_0000 | (i / 7)),
                    src_port: (1024 + i % 50_000) as u16,
                    dst_port: if i % 3 == 0 { 443 } else { 80 },
                    protocol: if i % 4 == 0 {
                        IpProtocol::Udp
                    } else {
                        IpProtocol::Tcp
                    },
                },
                t.add_secs(u64::from(i % 3_000)),
            )
            .end(t.add_secs(u64::from(i % 3_000) + 40))
            .bytes(1_400 + u64::from(i) * 17)
            .packets(3 + u64::from(i % 90))
            .build()
        })
        .collect()
}

#[test]
fn zero_loss_socket_runs_are_byte_identical_to_loopback() {
    for format in [
        ExportFormat::NetflowV5,
        ExportFormat::NetflowV9,
        ExportFormat::Ipfix,
    ] {
        let mut cfg = WireConfig::new();
        cfg.format = format;
        cfg.audit = true;

        let loopback = CollectionPlane::new(cfg);
        let mut socket =
            SocketPlane::new(cfg, CollectdConfig::new(format)).expect("daemon binds on localhost");

        // Two cells through the same daemon: cycle isolation must hold.
        for hour in [14u8, 15] {
            let input = flows(700, hour);
            let via_loopback = loopback.process_cell(cell(hour), &input);
            let via_socket = socket.process_cell(cell(hour), &input);
            assert_eq!(
                via_loopback, via_socket,
                "{format:?} hour {hour}: socket output must be byte-identical to loopback"
            );
            loopback.note_consumed(&cell(hour), &via_loopback);
            socket.note_consumed(&cell(hour), &via_socket);
        }

        let audit = socket.audit_report().expect("audit requested");
        assert!(
            audit.is_clean(),
            "{format:?} socket audit violated conservation:\n{}",
            audit.render()
        );
        assert_eq!(audit.totals.socket_cells, 2);
        assert_eq!(audit.totals.socket_kernel_dropped, 0);
        assert_eq!(audit.totals.socket_queue_dropped, 0);
        assert_eq!(audit.totals.socket_truncated, 0);
        let m = socket.metrics();
        assert_eq!(m.socket_datagrams_kernel_dropped.get(), 0, "{format:?}");
        assert_eq!(m.queue_datagrams_dropped.get(), 0, "{format:?}");
        assert_eq!(m.socket_datagrams_truncated.get(), 0, "{format:?}");
        assert_eq!(
            m.socket_datagrams_received.get(),
            m.exporter_datagrams.get(),
            "{format:?}: every exported datagram crossed the socket"
        );
        let loop_audit = loopback.audit_report().expect("audit requested");
        assert!(loop_audit.is_clean());
        assert_eq!(loop_audit.totals.socket_cells, 0);
    }
}

#[test]
fn oversized_datagram_is_counted_truncated_and_never_decoded() {
    // Regression: a datagram larger than the receive buffer must become a
    // counted truncation with its claimed record count attributed — not a
    // silent mis-decode of the surviving prefix.
    let metrics = CollectMetrics::new();
    let mut dcfg = CollectdConfig::new(ExportFormat::NetflowV5);
    dcfg.sockets = 1;
    dcfg.recv_buf_len = 256; // test hook: makes >256-byte datagrams truncate
    let mut daemon = Collectd::bind(&dcfg, std::sync::Arc::clone(&metrics)).unwrap();
    let addr = daemon.addrs()[0];

    let boot = Date::new(2020, 3, 25).midnight();
    let start = boot.add_hours(1);
    let records: Vec<FlowRecord> = flows(10, 1);
    let oversized = v5::encode_with_engine(&records, start.add_secs(60), boot, 5, 0x0007);
    assert!(
        oversized.len() > 256,
        "10 v5 records exceed the test buffer"
    );

    let tx = SendSocket::open().unwrap();
    tx.send_to(&oversized, addr).unwrap();
    let deadline = Instant::now() + Duration::from_secs(5);
    while daemon.accounted() < 1 {
        assert!(Instant::now() < deadline, "daemon never accounted the send");
        std::thread::yield_now();
    }

    let cycle = daemon.close_cycle();
    assert_eq!(cycle.socket_received, 1);
    assert_eq!(cycle.truncated_datagrams, 1);
    assert_eq!(
        cycle.truncated_records, 10,
        "the intact v5 header prefix attributes the claimed record count"
    );
    let t = cycle.shards.totals();
    assert_eq!(t.datagrams, 0, "a truncated datagram must never be decoded");
    assert_eq!(t.records_accepted, 0);
    assert_eq!(t.malformed, 0, "truncation is not misreported as malformed");
    assert_eq!(metrics.socket_datagrams_truncated.get(), 1);
    assert_eq!(metrics.socket_records_truncated.get(), 10);
    daemon.shutdown();
}

#[test]
fn tiny_queue_run_closes_conservation_with_drops_decomposed() {
    // A one-slot queue under a 32-datagram send window makes queue drops
    // likely (not guaranteed — the workers race the receivers); whatever
    // happens, every conservation identity must close, with any datagram
    // loss decomposed exactly into kernel + queue + truncated.
    let mut cfg = WireConfig::new();
    cfg.format = ExportFormat::Ipfix;
    cfg.template_refresh = 1; // self-describing: loss accounting is exact
    cfg.batch_size = 8;
    cfg.renormalize = false;
    cfg.audit = true;
    let mut dcfg = CollectdConfig::new(cfg.format);
    dcfg.queue_capacity = 1;
    dcfg.shards = 2;
    let mut plane = SocketPlane::new(cfg, dcfg).expect("daemon binds on localhost");

    let input = flows(4_000, 14);
    let out = plane.process_cell(cell(14), &input);
    plane.note_consumed(&cell(14), &out);
    let audit = plane.audit_report().expect("audit requested");
    assert!(
        audit.is_clean(),
        "conservation must close even under backpressure:\n{}",
        audit.render()
    );
    let m = plane.metrics();
    let dropped_sites = m.socket_datagrams_kernel_dropped.get()
        + m.queue_datagrams_dropped.get()
        + m.socket_datagrams_truncated.get();
    let delivered = out.len() as u64;
    assert!(delivered <= 4_000);
    // Accepted plus exactly-estimated loss covers the whole input.
    assert_eq!(delivered + m.collector_records_lost_est.get(), 4_000);
    // The audit saw the same decomposition the metrics did.
    assert_eq!(audit.totals.socket_kernel_dropped, {
        m.socket_datagrams_kernel_dropped.get()
    });
    assert_eq!(
        audit.totals.socket_queue_dropped
            + audit.totals.socket_kernel_dropped
            + audit.totals.socket_truncated,
        dropped_sites
    );
}
