//! The scenario DSL's safety rail and the matrix engine's core claims:
//!
//! * golden byte-identity: the full figure suite rendered under the
//!   shipped `scenarios/covid-spring-2020.toml` equals the suite under
//!   the built-in calibration, section for section;
//! * one-pass sweep: a two-scenario matrix generates exactly as many
//!   distinct cells as a single scenario's pass (the scenario axis rides
//!   the shared cell enumeration, it does not multiply it);
//! * lane 0 of a matrix run is byte-identical to a plain run, and a
//!   behaviourally different lane actually diverges;
//! * matrix archives replay per lane: a warm re-run generates nothing.

use lockdown::core::experiments::suite;
use lockdown::core::{run_matrix, Context, Fidelity, MatrixOptions, MatrixScenario};
use lockdown::scenario::measures::ScenarioSpec;
use std::path::PathBuf;

fn shipped(name: &str) -> ScenarioSpec {
    let path = format!("{}/scenarios/{name}", env!("CARGO_MANIFEST_DIR"));
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("reading {path}: {e}"));
    ScenarioSpec::parse_toml(&text).unwrap_or_else(|e| panic!("{path}: {e}"))
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("lockdown-matrix-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn shipped_scenario_file_reproduces_the_builtin_suite() {
    let base = suite::run_all(&Context::new(Fidelity::Test));
    let via_file = suite::run_all(&Context::with_scenario(
        Fidelity::Test,
        0x10CD_2020,
        shipped("covid-spring-2020.toml"),
    ));
    let (a, b) = (base.renders(), via_file.renders());
    assert_eq!(a.len(), b.len());
    for (i, (x, y)) in a.iter().zip(b.iter()).enumerate() {
        assert_eq!(x, y, "section {i} differs under the shipped scenario file");
    }
    assert_eq!(base.stats, via_file.stats);
}

#[test]
fn matrix_shares_one_generation_pass_and_lane0_is_byte_identical() {
    let ctx = Context::new(Fidelity::Test);
    let single = suite::run_all(&ctx);
    let run = run_matrix(
        &ctx,
        vec![
            MatrixScenario {
                label: "covid".into(),
                spec: shipped("covid-spring-2020.toml"),
            },
            MatrixScenario {
                label: "outage".into(),
                spec: shipped("hypergiant-outage.toml"),
            },
        ],
        MatrixOptions::default(),
    )
    .expect("archive-free matrix cannot fail");

    // The tentpole acceptance: sweeping 2 scenarios generates exactly the
    // distinct cells of ONE pass, not twice as many.
    assert_eq!(run.stats.scenarios, 2);
    assert_eq!(run.stats.cells_generated, single.stats.cells_generated);
    assert_eq!(run.stats.cells_replayed, 0);

    // Lane 0 (the reference calibration) is byte-identical to the plain
    // single-scenario run; the counterfactual lane actually diverges.
    let plain = single.renders();
    assert_eq!(run.runs[0].suite.renders(), plain);
    assert_ne!(run.runs[1].suite.renders(), plain);

    // Per-lane stats stay meaningful: each lane saw every cell.
    for lane in &run.runs {
        assert_eq!(
            lane.suite.stats.cells_generated,
            single.stats.cells_generated
        );
        assert_eq!(lane.suite.stats.demands, single.stats.demands);
    }

    let report = run.diff_report();
    assert!(
        report.contains("sections differ"),
        "diff report should quantify divergence: {report}"
    );
}

#[test]
fn matrix_archives_replay_per_lane() {
    let ctx = Context::new(Fidelity::Test);
    let dir = tmp_dir("replay");
    let scenarios = || {
        vec![
            MatrixScenario {
                label: "covid".into(),
                spec: shipped("covid-spring-2020.toml"),
            },
            MatrixScenario {
                label: "outage".into(),
                spec: shipped("hypergiant-outage.toml"),
            },
        ]
    };
    let opts = || MatrixOptions {
        archive: Some(dir.clone()),
        workers: 0,
    };

    let cold = run_matrix(&ctx, scenarios(), opts()).expect("cold matrix");
    assert!(cold.stats.cells_generated > 0);
    let warm = run_matrix(&ctx, scenarios(), opts()).expect("warm matrix");
    assert_eq!(
        warm.stats.cells_generated, 0,
        "warm matrix must not generate"
    );
    assert_eq!(warm.stats.cells_replayed, cold.stats.cells_generated);

    // Replay is byte-identical, per lane.
    for (c, w) in cold.runs.iter().zip(warm.runs.iter()) {
        assert_eq!(c.suite.renders(), w.suite.renders(), "lane {}", c.label);
    }

    // Lanes archive independently: swapping one scenario regenerates
    // only that lane's cells.
    let mut swapped = scenarios();
    swapped[1].spec.baseline.organic_weekly = 1.004;
    let mixed = run_matrix(&ctx, swapped, opts()).expect("mixed matrix");
    assert_eq!(
        mixed.stats.cells_generated, cold.stats.cells_generated,
        "the stale lane regenerates every distinct cell"
    );
    assert_eq!(mixed.runs[0].suite.stats.cells_generated, 0);
    assert_eq!(
        mixed.runs[1].suite.stats.cells_generated,
        cold.stats.cells_generated
    );
    assert_eq!(mixed.runs[0].suite.renders(), cold.runs[0].suite.renders());

    let _ = std::fs::remove_dir_all(&dir);
}
