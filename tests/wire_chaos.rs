//! The fault matrix: every wire-fault kind crossed with every plane
//! that speaks TCP or UDP, through the seeded chaos proxy. The
//! robustness contract under test is absolute:
//!
//! - every cell ends in **byte-identical output** or a **named degraded
//!   outcome** — never a hang (each cell runs under a watchdog), never
//!   a panic, never silently-wrong bytes;
//! - on the shard plane every injected flip is caught by the frame
//!   CRC (a corrupted slice can quarantine, but can never merge);
//! - a transient mid-frame connection cut is *resumed*: the worker's
//!   retained slice is re-adopted over a reconnect, with zero ranges
//!   recomputed and zero reassignments.

use lockdown::core::experiments::suite::{self, ShardSuiteOptions};
use lockdown::core::{Context, Fidelity};
use lockdown::query::{http::Response, QueryMetrics, Server};
use lockdown::shard::coord::{self, CoordOptions, Coordinated};
use lockdown::shard::worker::{serve_worker, WorkerExit};
use lockdown::wirechaos::{TcpProxy, UdpProxy, WireChaosConfig};
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream, UdpSocket};
use std::sync::mpsc;
use std::sync::OnceLock;
use std::time::Duration;

/// Generous per-cell watchdog: a cell that cannot finish inside this is
/// a hang, which is exactly what the protocol hardening forbids.
const WATCHDOG: Duration = Duration::from_secs(120);

fn ctx() -> Context {
    Context::new(Fidelity::Test)
}

/// The single-process oracle, computed once.
fn reference() -> &'static Vec<String> {
    static REF: OnceLock<Vec<String>> = OnceLock::new();
    REF.get_or_init(|| suite::run_all(&ctx()).renders())
}

/// Run `f` under the watchdog; a timeout is a hang and fails loudly.
fn watchdog<T: Send + 'static>(label: &str, f: impl FnOnce() -> T + Send + 'static) -> T {
    let (tx, rx) = mpsc::channel();
    let handle = std::thread::spawn(move || {
        let _ = tx.send(f());
    });
    match rx.recv_timeout(WATCHDOG) {
        Ok(v) => {
            handle.join().expect("cell thread");
            v
        }
        Err(mpsc::RecvTimeoutError::Disconnected) => {
            // The cell thread died without sending: propagate its panic
            // rather than misreporting an assertion failure as a hang.
            match handle.join() {
                Err(payload) => std::panic::resume_unwind(payload),
                Ok(_) => unreachable!("cell dropped the channel without panicking"),
            }
        }
        Err(mpsc::RecvTimeoutError::Timeout) => {
            panic!("fault-matrix cell {label:?} hung past {WATCHDOG:?}")
        }
    }
}

/// A protocol worker's join handle.
type WorkerHandle = std::thread::JoinHandle<Result<WorkerExit, lockdown::shard::ShardError>>;

/// Start `n` in-thread protocol workers, each behind its own chaos
/// proxy configured by `cfg(i)`. Returns the proxy addresses the
/// coordinator should attach to, the proxies (kept alive), and the
/// worker join handles.
fn workers_behind_proxies(
    n: usize,
    cfg: impl Fn(usize) -> WireChaosConfig,
) -> (Vec<String>, Vec<TcpProxy>, Vec<WorkerHandle>) {
    let mut addrs = Vec::with_capacity(n);
    let mut proxies = Vec::with_capacity(n);
    let mut handles = Vec::with_capacity(n);
    for i in 0..n {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind worker");
        let upstream = listener.local_addr().expect("worker addr");
        let opts = ShardSuiteOptions::default();
        handles.push(std::thread::spawn(move || {
            serve_worker(&ctx(), &opts, listener)
        }));
        let proxy = TcpProxy::start("127.0.0.1:0", upstream, cfg(i)).expect("start proxy");
        addrs.push(proxy.addr().to_string());
        proxies.push(proxy);
    }
    (addrs, proxies, handles)
}

/// Run one coordinated pass through per-worker proxies and return the
/// outcome plus worker exits. Panics (named) only on coordinator-level
/// errors that are *not* part of the degraded contract.
fn coordinate_through(
    n: usize,
    cfg: impl Fn(usize) -> WireChaosConfig + Send + 'static,
) -> (Coordinated, Vec<WorkerExit>) {
    let (addrs, mut proxies, handles) = workers_behind_proxies(n, cfg);
    let links = coord::attach_workers(&addrs).expect("attach through proxy");
    let out = coord::coordinate(&ctx(), &CoordOptions::default(), links).expect("coordinate");
    for p in &mut proxies {
        p.shutdown();
    }
    let exits = handles
        .into_iter()
        .map(|h| {
            h.join()
                .expect("worker thread")
                .unwrap_or(WorkerExit::Disconnected)
        })
        .collect();
    (out, exits)
}

/// The terminal contract every cell must satisfy: byte-identical output
/// or a named degraded outcome.
fn assert_identical_or_degraded(label: &str, out: &Coordinated) {
    if out.is_degraded() {
        // Degraded is allowed — but it must be *named*: either the
        // suite's own quarantine report or the assembly-failure section.
        if let Some(suite) = &out.suite {
            let report = suite.degraded.as_ref().expect("degraded names its holes");
            assert!(!report.quarantined.is_empty(), "{label}: empty quarantine");
        } else {
            assert!(
                out.assembly_error.is_some(),
                "{label}: suite-less outcome must carry the assembly error"
            );
        }
    } else {
        assert_eq!(&out.renders(), reference(), "{label}: byte identity");
    }
}

// --- shard plane -----------------------------------------------------------

#[test]
fn shard_passthrough_proxy_is_byte_identical() {
    let (out, _) = watchdog("shard/passthrough", || {
        coordinate_through(2, |_| WireChaosConfig::zero())
    });
    assert!(!out.is_degraded(), "{}", out.stats.summary());
    assert_eq!(&out.renders(), reference());
    assert_eq!(out.stats.reconnects, 0, "{}", out.stats.summary());
}

#[test]
fn shard_split_writes_are_reassembled_byte_identically() {
    // Every chunk relayed one byte per write: the deadline reader must
    // reassemble frames across thousands of tiny reads without ever
    // resetting its whole-frame clock.
    let (out, _) = watchdog("shard/split", || {
        coordinate_through(2, |_| {
            let mut c = WireChaosConfig::zero();
            c.seed = 11;
            c.split = 1.0;
            c
        })
    });
    assert!(!out.is_degraded(), "{}", out.stats.summary());
    assert_eq!(&out.renders(), reference());
}

#[test]
fn shard_added_latency_is_absorbed_byte_identically() {
    let (out, _) = watchdog("shard/delay", || {
        coordinate_through(2, |_| {
            let mut c = WireChaosConfig::zero();
            c.seed = 5;
            c.delay = 0.3;
            c.delay_ms = 120; // well inside the 2s heartbeat budget
            c
        })
    });
    assert!(!out.is_degraded(), "{}", out.stats.summary());
    assert_eq!(&out.renders(), reference());
}

#[test]
fn shard_mid_frame_cut_resumes_the_retained_slice() {
    // Worker 0's proxy severs the first DONE frame halfway through —
    // a deterministic mid-frame connection reset. The coordinator must
    // redial, learn the retained range from HELLO_ACK, re-assign it and
    // adopt the cached outcome: byte-identical output, at least one
    // resumed range, zero reassignments (the wire failed; the work
    // never did).
    let (out, _) = watchdog("shard/cut", || {
        coordinate_through(2, |i| {
            let mut c = WireChaosConfig::zero();
            if i == 0 {
                c.cut_payload = 512; // larger than any control frame
            }
            c
        })
    });
    assert!(!out.is_degraded(), "{}", out.stats.summary());
    assert_eq!(&out.renders(), reference(), "resume must not change a byte");
    assert!(out.stats.reconnects >= 1, "{}", out.stats.summary());
    assert!(out.stats.ranges_resumed >= 1, "{}", out.stats.summary());
    assert_eq!(out.stats.reassignments, 0, "{}", out.stats.summary());
    assert_eq!(
        out.stats.assignments,
        out.stats.chunks,
        "every range computed exactly once: {}",
        out.stats.summary()
    );
}

#[test]
fn shard_certain_corruption_degrades_with_every_flip_caught() {
    // corrupt=1 over every chunk of at least 512 bytes: control frames
    // pass clean, every DONE (fresh or resumed-from-cache) arrives with
    // a flipped byte. The frame CRC must catch every single one — the
    // pass may degrade to quarantine, but corrupt bytes must never
    // merge into figures.
    let (out, _) = watchdog("shard/corrupt", || {
        coordinate_through(2, |_| {
            let mut c = WireChaosConfig::zero();
            c.seed = 3;
            c.corrupt = 1.0;
            c.min_len = 512;
            c
        })
    });
    assert!(out.is_degraded(), "{}", out.stats.summary());
    assert_identical_or_degraded("shard/corrupt", &out);
    assert!(out.stats.workers_lost >= 1, "{}", out.stats.summary());
}

#[test]
fn shard_random_truncation_ends_identical_or_degraded_never_hung() {
    // Probabilistic truncate-and-sever on bulk chunks: whether a given
    // seed recovers through reconnect-resume or exhausts the redial
    // budget and quarantines, the outcome must be one of the two named
    // terminal states, inside the watchdog.
    let (out, _) = watchdog("shard/trunc", || {
        coordinate_through(2, |_| {
            let mut c = WireChaosConfig::zero();
            c.seed = 17;
            c.trunc = 0.4;
            c.min_len = 512;
            c
        })
    });
    assert_identical_or_degraded("shard/trunc", &out);
}

// --- collect (UDP) plane ---------------------------------------------------

#[test]
fn udp_drop_dup_corrupt_conserve_datagrams_and_never_hang() {
    watchdog("udp/faults", || {
        let upstream = UdpSocket::bind("127.0.0.1:0").expect("bind receiver");
        upstream
            .set_read_timeout(Some(Duration::from_millis(200)))
            .expect("timeout");
        let mut cfg = WireChaosConfig::zero();
        cfg.seed = 29;
        cfg.drop = 0.2;
        cfg.dup = 0.2;
        cfg.corrupt = 0.2;
        let mut proxy = UdpProxy::start("127.0.0.1:0", upstream.local_addr().expect("addr"), cfg)
            .expect("start proxy");

        const SENT: u64 = 400;
        let client = UdpSocket::bind("127.0.0.1:0").expect("bind client");
        let proxy_addr = proxy.addr();
        // Send from a side thread and drain concurrently: letting the
        // full burst pile up in kernel socket buffers overflows them,
        // and pre-/post-proxy kernel drops are not the fault model
        // under test.
        let sender = std::thread::spawn(move || {
            for i in 0..SENT {
                // Payload = sequence number + CRC-checkable filler.
                let mut dg = i.to_be_bytes().to_vec();
                dg.extend_from_slice(&[0x5a; 56]);
                client.send_to(&dg, proxy_addr).expect("send");
                if i % 16 == 15 {
                    std::thread::sleep(Duration::from_millis(1));
                }
            }
        });

        let mut received = 0u64;
        let mut corrupted_seen = 0u64;
        let mut buf = [0u8; 1500];
        while let Ok((n, _)) = upstream.recv_from(&mut buf) {
            received += 1;
            let filler_clean = buf[8..n].iter().all(|&b| b == 0x5a);
            let seq = u64::from_be_bytes(buf[..8].try_into().expect("8 bytes"));
            if !filler_clean || seq >= SENT {
                // A flipped byte is *visible* to the consumer — UDP has
                // no wire CRC here; the collect plane's own decoders are
                // what reject it (exercised in socket_collectd tests).
                corrupted_seen += 1;
            }
        }
        sender.join().expect("sender thread");

        let m = proxy.metrics();
        let seen = m.datagrams.load(std::sync::atomic::Ordering::Relaxed);
        let dropped = m.dropped.load(std::sync::atomic::Ordering::Relaxed);
        let duplicated = m.duplicated.load(std::sync::atomic::Ordering::Relaxed);
        let corrupted = m.corrupted.load(std::sync::atomic::Ordering::Relaxed);
        // Conservation over the proxy's own ledger: every datagram the
        // proxy saw was forwarded once, dropped, or forwarded twice —
        // nothing vanishes unaccounted inside the interposer.
        assert_eq!(received, seen - dropped + duplicated, "datagram ledger");
        assert!(
            seen >= SENT / 2,
            "paced burst mostly reached the proxy ({seen}/{SENT})"
        );
        assert!(
            dropped > 0 && duplicated > 0 && corrupted > 0,
            "all faults drawn"
        );
        assert!(corrupted_seen <= corrupted, "flips accounted by the proxy");
        proxy.shutdown();
    });
}

// --- query (HTTP) plane ----------------------------------------------------

fn http_get(addr: std::net::SocketAddr, path: &str) -> std::io::Result<String> {
    let mut s = TcpStream::connect(addr)?;
    s.set_read_timeout(Some(Duration::from_secs(5)))?;
    s.write_all(format!("GET {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n").as_bytes())?;
    let mut out = String::new();
    s.read_to_string(&mut out)?;
    Ok(out)
}

/// A tiny figure server for the HTTP-plane cells.
fn start_http() -> Server {
    let metrics = QueryMetrics::new();
    let handler = std::sync::Arc::new(|req: &lockdown::query::http::Request| {
        Response::json(
            200,
            format!(
                "{{\"path\":\"{}\",\"pad\":\"{}\"}}",
                req.path,
                "f".repeat(2048)
            ),
        )
    });
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind http");
    Server::start(listener, 16, metrics, handler).expect("start http")
}

#[test]
fn http_split_writes_deliver_identical_responses() {
    watchdog("http/split", || {
        let server = start_http();
        let mut cfg = WireChaosConfig::zero();
        cfg.seed = 41;
        cfg.split = 1.0;
        let mut proxy = TcpProxy::start("127.0.0.1:0", server.addr(), cfg).expect("proxy");

        let direct = http_get(server.addr(), "/figures/fig1").expect("direct GET");
        let proxied = http_get(proxy.addr(), "/figures/fig1").expect("proxied GET");
        assert_eq!(direct, proxied, "split relay must be byte-faithful");

        proxy.shutdown();
        server.shutdown(Duration::from_secs(2));
    });
}

#[test]
fn http_resets_and_corruption_leave_the_server_serving() {
    watchdog("http/hostile", || {
        let server = start_http();
        let mut cfg = WireChaosConfig::zero();
        cfg.seed = 43;
        cfg.reset = 0.3;
        cfg.corrupt = 0.3;
        let mut proxy = TcpProxy::start("127.0.0.1:0", server.addr(), cfg).expect("proxy");

        let direct_before = http_get(server.addr(), "/figures/fig1").expect("direct GET");
        let mut failures = 0usize;
        let mut clean = 0usize;
        for _ in 0..20 {
            match http_get(proxy.addr(), "/figures/fig1") {
                // A proxied response either matches the oracle exactly
                // or the client *observes* the fault (error, garbled
                // HTTP) — visible failure, never a silent wrong answer
                // that parses as a clean 200 with different content.
                Ok(body) if body == direct_before => clean += 1,
                Ok(_) | Err(_) => failures += 1,
            }
        }
        assert!(failures > 0, "chaos at 30% must bite within 20 requests");
        assert!(
            clean + failures == 20,
            "every request terminated inside its timeout"
        );

        // The server itself is unharmed: direct requests still answer
        // byte-identically after the bombardment.
        let direct_after = http_get(server.addr(), "/figures/fig1").expect("direct GET after");
        assert_eq!(direct_before, direct_after);

        proxy.shutdown();
        server.shutdown(Duration::from_secs(2));
    });
}
