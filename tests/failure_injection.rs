//! Failure injection at the transport layer: UDP flow export is lossy and
//! unordered in the real world; collectors must degrade proportionally and
//! never corrupt what they do accept.
//!
//! With `template_refresh = 1` every datagram is self-describing, so the
//! expected record counts under loss are *exact*: each datagram carries a
//! full `batch` of records except the last (the partial tail), and a kept
//! datagram always decodes.

use lockdown::core::{Context, Fidelity};
use lockdown::flow::prelude::*;
use lockdown::topology::vantage::VantagePoint;
use lockdown_flow::time::Date;
use proptest::prelude::*;
use rand::prelude::*;
use rand::rngs::StdRng;
use std::collections::HashSet;
use std::sync::OnceLock;

const BATCH: usize = 40;

/// One Test-fidelity day of flows, generated once.
fn flows_once() -> &'static Vec<FlowRecord> {
    static FLOWS: OnceLock<Vec<FlowRecord>> = OnceLock::new();
    FLOWS.get_or_init(|| {
        let ctx = Context::new(Fidelity::Test);
        ctx.generator()
            .generate_day(VantagePoint::IxpCe, Date::new(2020, 3, 25))
    })
}

/// Export the shared day with the given refresh cadence and starting
/// sequence. Non-zero starts model long-lived exporters, including
/// counters about to wrap the u32 wire field.
fn export(template_refresh: u32, initial_sequence: u32) -> Vec<Vec<u8>> {
    let date = Date::new(2020, 3, 25);
    let mut cfg = ExporterConfig::new(ExportFormat::Ipfix, date.midnight());
    cfg.batch_size = BATCH;
    cfg.template_refresh = template_refresh;
    cfg.initial_sequence = initial_sequence;
    let mut exporter = Exporter::new(cfg);
    exporter.export_all(flows_once(), date.at_hour(23).add_secs(3_599))
}

/// The day's export with a template in every datagram, generated once.
fn self_describing() -> &'static Vec<Vec<u8>> {
    static PKTS: OnceLock<Vec<Vec<u8>>> = OnceLock::new();
    PKTS.get_or_init(|| export(1, 0))
}

/// Exact records inside datagram `i` of `n` when `total` flows were
/// exported in full batches: every datagram is full except the last.
fn records_in(i: usize, n: usize, total: usize) -> usize {
    if i + 1 < n {
        BATCH
    } else {
        total - BATCH * (n - 1)
    }
}

#[test]
fn datagram_loss_drops_exactly_the_lost_batches() {
    let (flows, pkts) = (flows_once(), self_describing());
    let mut rng = StdRng::seed_from_u64(1);
    let keep: Vec<bool> = pkts.iter().map(|_| rng.gen_bool(0.8)).collect();
    let kept: Vec<&Vec<u8>> = pkts
        .iter()
        .zip(&keep)
        .filter_map(|(p, &k)| k.then_some(p))
        .collect();
    assert!(kept.len() < pkts.len(), "the schedule must drop something");

    let mut collector = Collector::new();
    collector.ingest_all(kept.iter().map(|p| p.as_slice()));

    // Every kept datagram is self-describing, so the surviving record
    // count is exactly the sum over kept datagrams — no tolerance.
    let expected: usize = keep
        .iter()
        .enumerate()
        .filter(|&(_, &k)| k)
        .map(|(i, _)| records_in(i, pkts.len(), flows.len()))
        .sum();
    assert_eq!(collector.stats().records as usize, expected);
    assert_eq!(collector.stats().packets_ok as usize, kept.len());
    assert_eq!(collector.stats().malformed, 0);

    // Whatever survived is intact (spot check: all records appear in the
    // original set).
    let originals: HashSet<_> = flows.iter().map(|f| (f.key, f.bytes, f.start)).collect();
    for r in collector.records() {
        assert!(originals.contains(&(r.key, r.bytes, r.start)));
    }
}

#[test]
fn reordering_is_harmless_once_template_known() {
    let (flows, pkts) = (flows_once(), self_describing());
    let mut pkts = pkts.clone();
    let mut rng = StdRng::seed_from_u64(2);
    pkts.shuffle(&mut rng);
    let mut collector = Collector::new();
    collector.ingest_all(pkts.iter().map(|p| p.as_slice()));
    assert_eq!(collector.stats().records as usize, flows.len());
    assert_eq!(collector.stats().missing_template, 0);
}

#[test]
fn losing_template_packets_costs_exactly_the_refresh_window() {
    // With a refresh every 4 datagrams, templates ride in datagrams
    // 0, 4, 8, …. Dropping datagram 0 loses its own batch outright and
    // leaves datagrams 1–3 undecodable (their data sets are skipped and
    // counted per set); datagram 4 re-announces and everything after
    // decodes. The damage is exactly the refresh window.
    let (flows, pkts) = (flows_once(), export(4, 0));
    let mut collector = Collector::new();
    collector.ingest_all(pkts.iter().skip(1).map(|p| p.as_slice()));
    let lost = flows.len() - collector.stats().records as usize;
    assert_eq!(lost, 4 * BATCH, "exactly the refresh window is lost");
    // Datagrams 1–3 each contribute one skipped data set; they are still
    // structurally valid, so none of them is malformed.
    assert_eq!(collector.stats().missing_template, 3);
    assert_eq!(collector.stats().malformed, 0);
    assert_eq!(collector.stats().packets_ok as usize, pkts.len() - 1);
}

#[test]
fn corruption_never_panics_and_is_counted() {
    let pkts = self_describing();
    let mut rng = StdRng::seed_from_u64(3);
    let mut collector = Collector::new();
    let mut corrupted = 0u64;
    for p in pkts {
        let mut bytes = p.clone();
        // Flip a random byte in ~half the packets.
        if rng.gen_bool(0.5) {
            let idx = rng.gen_range(0..bytes.len());
            bytes[idx] ^= 0xFF;
            corrupted += 1;
        }
        collector.ingest(&bytes); // must not panic
    }
    let stats = collector.stats();
    // Every datagram is either structurally accepted or malformed —
    // skipped sets are accounted separately in `missing_template`.
    assert_eq!(stats.packets_ok + stats.malformed, pkts.len() as u64);
    // Corruption in the header/length region is detected; flips inside
    // record payloads decode to (wrong) values — flow telemetry has no
    // integrity protection, which is why real deployments run it on
    // dedicated networks. At minimum, no corrupted run may *crash*.
    assert!(corrupted > 0);
}

#[test]
fn truncated_tails_rejected_cleanly() {
    let pkts = self_describing();
    let mut collector = Collector::new();
    for p in pkts.iter().take(20) {
        for cut in [1usize, 7, p.len() / 2] {
            if cut < p.len() {
                collector.ingest(&p[..p.len() - cut]);
            }
        }
    }
    assert_eq!(collector.stats().packets_ok, 0);
    assert!(collector.stats().malformed > 0);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any drop/duplicate/reorder schedule leaves the accepted records a
    /// sub-multiset of what was sent: faults lose data, they never invent
    /// or mutate it. The exporter's starting sequence is fuzzed across the
    /// whole u32 range — including values a few datagrams below the wrap —
    /// because wrapped sequence headers must never corrupt decoding.
    #[test]
    fn fault_schedules_never_corrupt_accepted_records(
        actions in prop::collection::vec(0u8..3u8, 0..600usize),
        shuffle_seed in any::<u64>(),
        initial_sequence in prop_oneof![
            Just(0u32),
            (u32::MAX - 5_000)..=u32::MAX,
            any::<u32>(),
        ],
    ) {
        let flows = flows_once();
        let exported;
        let pkts = if initial_sequence == 0 {
            self_describing()
        } else {
            exported = export(1, initial_sequence);
            &exported
        };
        // 0 = deliver, 1 = drop, 2 = duplicate; missing tail delivers.
        let mut wire: Vec<&[u8]> = Vec::new();
        for (i, p) in pkts.iter().enumerate() {
            match actions.get(i).copied().unwrap_or(0) {
                1 => {}
                2 => {
                    wire.push(p);
                    wire.push(p);
                }
                _ => wire.push(p),
            }
        }
        let mut rng = StdRng::seed_from_u64(shuffle_seed);
        wire.shuffle(&mut rng);

        let mut collector = Collector::new();
        collector.ingest_all(wire.iter().copied());
        let stats = collector.stats();
        prop_assert_eq!(stats.packets_ok + stats.malformed, wire.len() as u64);
        prop_assert_eq!(stats.malformed, 0);
        prop_assert_eq!(stats.missing_template, 0);

        let originals: HashSet<_> = flows
            .iter()
            .map(|f| (f.key, f.start, f.end, f.bytes, f.packets))
            .collect();
        for r in collector.records() {
            prop_assert!(
                originals.contains(&(r.key, r.start, r.end, r.bytes, r.packets)),
                "accepted record not in the sent set: {:?}",
                r
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Shard sequence accounting: duplicates arriving after their gap was
// counted must not double-credit the loss estimate.
// ---------------------------------------------------------------------------

use lockdown::collect::{CollectorShard, DomainTruth, WireDatagram};

const SHARD_DOMAIN: u32 = 9;

/// Wrap the self-describing export (or a fuzzed-sequence variant) in
/// `WireDatagram`s carrying exact ground-truth record tags.
fn wire_datagrams(pkts: &[Vec<u8>], total: usize) -> Vec<WireDatagram> {
    pkts.iter()
        .enumerate()
        .map(|(i, bytes)| WireDatagram {
            domain: SHARD_DOMAIN,
            records: records_in(i, pkts.len(), total) as u32,
            flow_bytes: 0,
            flow_packets: 0,
            bytes: bytes.clone(),
        })
        .collect()
}

#[test]
fn duplicate_after_counted_gap_does_not_double_credit_loss() {
    // Datagram 1 is dropped in place; by the time its copies show up at
    // the tail, datagrams 2.. have forced the gap into the tracker. The
    // first late copy fills the gap (no loss); the second is a duplicate.
    // The historical failure mode: the gap stays credited to `est_lost`
    // even though a copy eventually delivered — loss and duplicate both
    // counted, breaking the ledger by one batch.
    let flows = flows_once();
    let pkts = self_describing();
    let datagrams = wire_datagrams(pkts, flows.len());
    assert!(datagrams.len() > 4, "need a few datagrams");

    let mut shard = CollectorShard::new(ExportFormat::Ipfix);
    for (i, dg) in datagrams.iter().enumerate() {
        if i != 1 {
            shard.ingest(dg);
        }
    }
    shard.ingest(&datagrams[1]); // late copy: fills the counted gap
    shard.ingest(&datagrams[1]); // true duplicate of the late copy

    let out = shard.close_domain(
        &DomainTruth {
            domain: SHARD_DOMAIN,
            first_seq: 0,
            units_sent: flows.len() as u64,
        },
        false,
    );
    let t = shard.totals();
    assert_eq!(out.len(), flows.len(), "every record delivered eventually");
    assert_eq!(t.records_lost_est, 0, "a filled gap is not a loss");
    assert_eq!(
        t.records_duplicate,
        u64::from(datagrams[1].records),
        "exactly one copy is a duplicate"
    );
    assert_eq!(t.records_anomalous, 0);
    assert_eq!(t.records_malformed, 0);
    assert_eq!(t.records_undecoded, 0);
    assert_eq!(t.records_abandoned, 0);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Any dup × reorder × gap schedule balances the shard ledger exactly
    /// (IPFIX, template in every datagram, so sequence units are records
    /// and nothing is an estimate):
    ///   accepted == sent − never_delivered
    ///   est_lost == never_delivered
    ///   duplicates == extra delivered copies
    /// with zero anomalous / malformed / undecoded / abandoned records.
    /// "Never delivered" is per ground truth — a datagram whose only
    /// surviving copy arrives late, after its gap was counted, was still
    /// delivered.
    #[test]
    fn dup_reorder_gap_schedules_balance_exactly(
        // 0 = deliver; 1 = drop; 2 = deliver + late dup;
        // 3 = drop in place but deliver a late copy (dup-after-gap);
        // 4 = deliver + two late dups.
        actions in prop::collection::vec(0u8..5u8, 0..600usize),
        swap_seed in any::<u64>(),
        initial_sequence in prop_oneof![
            Just(0u32),
            (u32::MAX - 5_000)..=u32::MAX,
            any::<u32>(),
        ],
    ) {
        let flows = flows_once();
        let exported;
        let pkts = if initial_sequence == 0 {
            self_describing()
        } else {
            exported = export(1, initial_sequence);
            &exported
        };
        let datagrams = wire_datagrams(pkts, flows.len());

        let mut in_place: Vec<usize> = Vec::new();
        let mut late: Vec<usize> = Vec::new();
        let mut copies = vec![0u32; datagrams.len()];
        for (i, _) in datagrams.iter().enumerate() {
            match actions.get(i).copied().unwrap_or(0) {
                1 => {}
                2 => {
                    in_place.push(i);
                    late.push(i);
                }
                3 => late.push(i),
                4 => {
                    in_place.push(i);
                    late.push(i);
                    late.push(i);
                }
                _ => in_place.push(i),
            }
        }
        // Bounded reorder of the in-order stream: adjacent swaps, the
        // same fault the transport injects.
        let mut rng = StdRng::seed_from_u64(swap_seed);
        let mut k = 0;
        while k + 1 < in_place.len() {
            if rng.gen_bool(0.3) {
                in_place.swap(k, k + 1);
                k += 2;
            } else {
                k += 1;
            }
        }
        // Late copies arrive after everything in-place, interleaved
        // arbitrarily among themselves: the strongest dup-after-gap
        // schedule the loopback transport cannot produce.
        late.shuffle(&mut rng);

        let mut shard = CollectorShard::new(ExportFormat::Ipfix);
        for &i in in_place.iter().chain(&late) {
            copies[i] += 1;
            shard.ingest(&datagrams[i]);
        }
        let out = shard.close_domain(
            &DomainTruth {
                domain: SHARD_DOMAIN,
                first_seq: initial_sequence,
                units_sent: flows.len() as u64,
            },
            false,
        );
        let t = shard.totals();

        let never_delivered: u64 = copies
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c == 0)
            .map(|(i, _)| u64::from(datagrams[i].records))
            .sum();
        let extra_copies: u64 = copies
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 1)
            .map(|(i, &c)| u64::from(c - 1) * u64::from(datagrams[i].records))
            .sum();

        prop_assert_eq!(t.records_accepted, flows.len() as u64 - never_delivered);
        prop_assert_eq!(out.len() as u64, t.records_accepted);
        prop_assert_eq!(
            t.records_lost_est, never_delivered,
            "loss must equal never-delivered ground truth (no double credit \
             for gaps later filled by duplicates)"
        );
        prop_assert_eq!(t.records_duplicate, extra_copies);
        prop_assert_eq!(t.records_anomalous, 0);
        prop_assert_eq!(t.records_malformed, 0);
        prop_assert_eq!(t.records_undecoded, 0);
        prop_assert_eq!(t.records_abandoned, 0);
        // Exact partition: every delivered tag landed in exactly one bucket.
        let delivered_tags: u64 = copies
            .iter()
            .enumerate()
            .map(|(i, &c)| u64::from(c) * u64::from(datagrams[i].records))
            .sum();
        prop_assert_eq!(t.records_accepted + t.records_duplicate, delivered_tags);
    }
}

// ---------------------------------------------------------------------------
// Supervised engine: chaos-injected worker faults, quarantine, resume.
// ---------------------------------------------------------------------------

use lockdown::chaos::{ChaosConfig, ChaosInjector};
use lockdown::core::engine::{self, EnginePlan};
use lockdown::store::{JOURNAL_NAME, MANIFEST_NAME, SEGMENTS_DIR};
use lockdown_analysis::timeseries::HourlyVolume;
use lockdown_traffic::plan::Stream;
use std::path::PathBuf;

fn chaos_tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("lockdown-chaos-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A supervised pass with zero fault rates is the plain pass: same
/// consumer bytes, no quarantine, no retries — supervision must be free
/// when chaos is off.
#[test]
fn zero_chaos_supervised_pass_matches_baseline() {
    let ctx = Context::new(Fidelity::Test);
    let vp = VantagePoint::IspCe;
    let (d1, d2) = (Date::new(2020, 3, 16), Date::new(2020, 3, 18));

    let mut base_plan = EnginePlan::new();
    let bd = base_plan.subscribe(Stream::Vantage(vp), d1, d2, HourlyVolume::new);
    let mut base = engine::run(&ctx, base_plan).expect("baseline pass succeeds");

    let mut sup_plan = EnginePlan::new();
    sup_plan.with_supervisor(ChaosConfig::zero());
    let sd = sup_plan.subscribe(Stream::Vantage(vp), d1, d2, HourlyVolume::new);
    let mut sup = engine::run(&ctx, sup_plan).expect("supervised pass succeeds");

    let sup_stats = sup.stats();
    assert_eq!(sup_stats.cells_quarantined, 0);
    assert_eq!(sup_stats.retries, 0);
    assert!(sup.degraded().is_none());
    assert_eq!(
        base.take(bd).hourly_series(d1, d2),
        sup.take(sd).hourly_series(d1, d2),
    );
}

/// A supervised archived pass killed mid-publication resumes from the
/// journal: only the missing cells are regenerated and the output is
/// identical to the uninterrupted pass.
#[test]
fn killed_archived_pass_resumes_from_journal() {
    let ctx = Context::with_seed(Fidelity::Test, 63);
    let dir = chaos_tmp_dir("resume");
    let vp = VantagePoint::IxpSe;
    let (d1, d2) = (Date::new(2020, 3, 9), Date::new(2020, 3, 10));

    let cold = |supervised: bool| {
        let mut plan = EnginePlan::new();
        if supervised {
            plan.with_supervisor(ChaosConfig::zero());
        }
        plan.with_archive(&dir);
        let d = plan.subscribe(Stream::Vantage(vp), d1, d2, HourlyVolume::new);
        let mut out = engine::run(&ctx, plan).expect("pass succeeds");
        let stats = out.stats();
        (out.take(d).hourly_series(d1, d2), stats)
    };

    let (reference, cold_stats) = cold(false);
    let total = cold_stats.cells_generated;
    assert_eq!(total, 2 * 24);

    // Simulate a kill between the last checkpoint and manifest
    // publication: the journal holds what the manifest held, and some
    // trailing segments never hit the disk. The journal encoding IS the
    // manifest encoding, so a rename builds the crash state exactly.
    std::fs::rename(dir.join(MANIFEST_NAME), dir.join(JOURNAL_NAME)).expect("fake the kill");
    let seg_dir = dir.join(SEGMENTS_DIR);
    let mut segs: Vec<PathBuf> = std::fs::read_dir(&seg_dir)
        .expect("segments dir")
        .map(|e| e.expect("dir entry").path())
        .collect();
    segs.sort();
    let killed = 5usize;
    for path in segs.iter().take(killed) {
        std::fs::remove_file(path).expect("drop a completed segment");
    }

    let (resumed, warm_stats) = cold(true);
    assert_eq!(resumed, reference, "resume must not change the figures");
    assert_eq!(warm_stats.cells_resumed, total - killed as u64);
    assert_eq!(warm_stats.cells_generated, killed as u64);
    // The resumed pass completed, so the manifest is republished and a
    // plain warm replay generates nothing.
    let (replayed, warm2) = cold(false);
    assert_eq!(replayed, reference);
    assert_eq!(warm2.cells_generated, 0);
    let _ = std::fs::remove_dir_all(&dir);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The quarantine set is a pure function of the chaos schedule: it
    /// equals the prediction computed from `ChaosInjector` alone (a cell
    /// is quarantined iff every attempt in its budget draws a panic) and
    /// it is identical across worker counts.
    #[test]
    fn quarantine_set_is_deterministic_and_predicted(
        chaos_seed in any::<u64>(),
        panic_pct in 30u32..90,
        attempts in 1u32..4,
    ) {
        let ctx = Context::with_seed(Fidelity::Test, 11);
        let vp = VantagePoint::IxpSe;
        let (d1, d2) = (Date::new(2020, 3, 2), Date::new(2020, 3, 3));
        let cfg = ChaosConfig {
            seed: chaos_seed,
            panic: f64::from(panic_pct) / 100.0,
            attempts,
            backoff_base_ms: 0,
            backoff_cap_ms: 0,
            ..ChaosConfig::zero()
        };

        let injector = ChaosInjector::new(cfg);
        let mut predicted: Vec<(i64, u8)> = Vec::new();
        for date in d1.range_inclusive(d2) {
            for hour in 0..24u8 {
                let all_panic = (1..=attempts).all(|a| {
                    injector
                        .decide(Stream::Vantage(vp).wire_id(), date.day_number(), hour, a)
                        .panic
                });
                if all_panic {
                    predicted.push((date.day_number(), hour));
                }
            }
        }

        for workers in [1usize, 2, 5] {
            let mut plan = EnginePlan::new();
            plan.with_supervisor(cfg);
            let d = plan.subscribe(Stream::Vantage(vp), d1, d2, HourlyVolume::new);
            let mut out = engine::run_with_workers(&ctx, plan, workers)
                .expect("supervised pass never aborts on injected panics");
            let quarantined: Vec<(i64, u8)> = out
                .degraded()
                .map(|r| {
                    r.quarantined
                        .iter()
                        .map(|q| (q.cell.date.day_number(), q.cell.hour))
                        .collect()
                })
                .unwrap_or_default();
            prop_assert_eq!(
                &quarantined, &predicted,
                "workers={} seed={} panic={} attempts={}",
                workers, chaos_seed, cfg.panic, attempts
            );
            prop_assert_eq!(out.stats().cells_quarantined as usize, predicted.len());
            // Quarantined cells contribute nothing; all other cells are intact.
            let _ = out.take(d);
        }
    }
}
