//! Failure injection at the transport layer: UDP flow export is lossy and
//! unordered in the real world; collectors must degrade proportionally and
//! never corrupt what they do accept.

use lockdown::core::{Context, Fidelity};
use lockdown::flow::prelude::*;
use lockdown::topology::vantage::VantagePoint;
use lockdown_flow::time::Date;
use rand::prelude::*;
use rand::rngs::StdRng;

fn datagrams(template_refresh: u32) -> (Vec<FlowRecord>, Vec<Vec<u8>>) {
    let ctx = Context::new(Fidelity::Test);
    let generator = ctx.generator();
    let date = Date::new(2020, 3, 25);
    let flows = generator.generate_day(VantagePoint::IxpCe, date);
    let boot = date.midnight();
    let mut cfg = ExporterConfig::new(ExportFormat::Ipfix, boot);
    cfg.batch_size = 40;
    cfg.template_refresh = template_refresh;
    let mut exporter = Exporter::new(cfg);
    let pkts = exporter.export_all(&flows, date.at_hour(23).add_secs(3_599));
    (flows, pkts)
}

#[test]
fn datagram_loss_degrades_proportionally() {
    let (flows, pkts) = datagrams(1); // template in every packet
    let mut rng = StdRng::seed_from_u64(1);
    let kept: Vec<&Vec<u8>> = pkts.iter().filter(|_| rng.gen_bool(0.8)).collect();

    let mut collector = Collector::new();
    collector.ingest_all(kept.iter().map(|p| p.as_slice()));
    let got = collector.stats().records as f64;
    let expected = flows.len() as f64 * kept.len() as f64 / pkts.len() as f64;
    assert!(
        (got - expected).abs() < 0.15 * flows.len() as f64,
        "kept {got} records, expected ~{expected}"
    );
    // Whatever survived is intact (spot check: all records appear in the
    // original set).
    use std::collections::HashSet;
    let originals: HashSet<_> = flows.iter().map(|f| (f.key, f.bytes, f.start)).collect();
    for r in collector.records() {
        assert!(originals.contains(&(r.key, r.bytes, r.start)));
    }
}

#[test]
fn reordering_is_harmless_once_template_known() {
    let (flows, mut pkts) = datagrams(1);
    let mut rng = StdRng::seed_from_u64(2);
    pkts.shuffle(&mut rng);
    let mut collector = Collector::new();
    collector.ingest_all(pkts.iter().map(|p| p.as_slice()));
    assert_eq!(collector.stats().records as usize, flows.len());
    assert_eq!(collector.stats().missing_template, 0);
}

#[test]
fn losing_template_packets_costs_only_until_refresh() {
    // With a refresh every 4 packets, dropping the first (template) packet
    // loses at most the pre-refresh window.
    let (flows, pkts) = datagrams(4);
    let mut collector = Collector::new();
    collector.ingest_all(pkts.iter().skip(1).map(|p| p.as_slice()));
    let lost = flows.len() - collector.stats().records as usize;
    let batch = 40;
    // The dropped packet's own batch plus the ≤3 data-only packets before
    // the next refresh.
    assert!(
        lost <= 4 * batch,
        "lost {lost} records; refresh should bound the damage"
    );
    assert!(lost >= batch, "at least the dropped packet's batch is gone");
    assert!(collector.stats().missing_template <= 3);
}

#[test]
fn corruption_never_panics_and_is_counted() {
    let (_, pkts) = datagrams(1);
    let mut rng = StdRng::seed_from_u64(3);
    let mut collector = Collector::new();
    let mut corrupted = 0u64;
    for p in &pkts {
        let mut bytes = p.clone();
        // Flip a random byte in ~half the packets.
        if rng.gen_bool(0.5) {
            let idx = rng.gen_range(0..bytes.len());
            bytes[idx] ^= 0xFF;
            corrupted += 1;
        }
        collector.ingest(&bytes); // must not panic
    }
    let stats = collector.stats();
    // Every datagram is either accepted or accounted as a drop.
    assert_eq!(
        stats.packets_ok + stats.malformed + stats.missing_template,
        pkts.len() as u64
    );
    // Corruption in the header/length region is detected; flips inside
    // record payloads decode to (wrong) values — flow telemetry has no
    // integrity protection, which is why real deployments run it on
    // dedicated networks. At minimum, no corrupted run may *crash*.
    assert!(corrupted > 0);
}

#[test]
fn truncated_tails_rejected_cleanly() {
    let (_, pkts) = datagrams(1);
    let mut collector = Collector::new();
    for p in pkts.iter().take(20) {
        for cut in [1usize, 7, p.len() / 2] {
            if cut < p.len() {
                collector.ingest(&p[..p.len() - cut]);
            }
        }
    }
    assert_eq!(collector.stats().packets_ok, 0);
    assert!(collector.stats().malformed > 0);
}
