//! Failure injection at the transport layer: UDP flow export is lossy and
//! unordered in the real world; collectors must degrade proportionally and
//! never corrupt what they do accept.
//!
//! With `template_refresh = 1` every datagram is self-describing, so the
//! expected record counts under loss are *exact*: each datagram carries a
//! full `batch` of records except the last (the partial tail), and a kept
//! datagram always decodes.

use lockdown::core::{Context, Fidelity};
use lockdown::flow::prelude::*;
use lockdown::topology::vantage::VantagePoint;
use lockdown_flow::time::Date;
use proptest::prelude::*;
use rand::prelude::*;
use rand::rngs::StdRng;
use std::collections::HashSet;
use std::sync::OnceLock;

const BATCH: usize = 40;

/// One Test-fidelity day of flows, generated once.
fn flows_once() -> &'static Vec<FlowRecord> {
    static FLOWS: OnceLock<Vec<FlowRecord>> = OnceLock::new();
    FLOWS.get_or_init(|| {
        let ctx = Context::new(Fidelity::Test);
        ctx.generator()
            .generate_day(VantagePoint::IxpCe, Date::new(2020, 3, 25))
    })
}

/// Export the shared day with the given refresh cadence and starting
/// sequence. Non-zero starts model long-lived exporters, including
/// counters about to wrap the u32 wire field.
fn export(template_refresh: u32, initial_sequence: u32) -> Vec<Vec<u8>> {
    let date = Date::new(2020, 3, 25);
    let mut cfg = ExporterConfig::new(ExportFormat::Ipfix, date.midnight());
    cfg.batch_size = BATCH;
    cfg.template_refresh = template_refresh;
    cfg.initial_sequence = initial_sequence;
    let mut exporter = Exporter::new(cfg);
    exporter.export_all(flows_once(), date.at_hour(23).add_secs(3_599))
}

/// The day's export with a template in every datagram, generated once.
fn self_describing() -> &'static Vec<Vec<u8>> {
    static PKTS: OnceLock<Vec<Vec<u8>>> = OnceLock::new();
    PKTS.get_or_init(|| export(1, 0))
}

/// Exact records inside datagram `i` of `n` when `total` flows were
/// exported in full batches: every datagram is full except the last.
fn records_in(i: usize, n: usize, total: usize) -> usize {
    if i + 1 < n {
        BATCH
    } else {
        total - BATCH * (n - 1)
    }
}

#[test]
fn datagram_loss_drops_exactly_the_lost_batches() {
    let (flows, pkts) = (flows_once(), self_describing());
    let mut rng = StdRng::seed_from_u64(1);
    let keep: Vec<bool> = pkts.iter().map(|_| rng.gen_bool(0.8)).collect();
    let kept: Vec<&Vec<u8>> = pkts
        .iter()
        .zip(&keep)
        .filter_map(|(p, &k)| k.then_some(p))
        .collect();
    assert!(kept.len() < pkts.len(), "the schedule must drop something");

    let mut collector = Collector::new();
    collector.ingest_all(kept.iter().map(|p| p.as_slice()));

    // Every kept datagram is self-describing, so the surviving record
    // count is exactly the sum over kept datagrams — no tolerance.
    let expected: usize = keep
        .iter()
        .enumerate()
        .filter(|&(_, &k)| k)
        .map(|(i, _)| records_in(i, pkts.len(), flows.len()))
        .sum();
    assert_eq!(collector.stats().records as usize, expected);
    assert_eq!(collector.stats().packets_ok as usize, kept.len());
    assert_eq!(collector.stats().malformed, 0);

    // Whatever survived is intact (spot check: all records appear in the
    // original set).
    let originals: HashSet<_> = flows.iter().map(|f| (f.key, f.bytes, f.start)).collect();
    for r in collector.records() {
        assert!(originals.contains(&(r.key, r.bytes, r.start)));
    }
}

#[test]
fn reordering_is_harmless_once_template_known() {
    let (flows, pkts) = (flows_once(), self_describing());
    let mut pkts = pkts.clone();
    let mut rng = StdRng::seed_from_u64(2);
    pkts.shuffle(&mut rng);
    let mut collector = Collector::new();
    collector.ingest_all(pkts.iter().map(|p| p.as_slice()));
    assert_eq!(collector.stats().records as usize, flows.len());
    assert_eq!(collector.stats().missing_template, 0);
}

#[test]
fn losing_template_packets_costs_exactly_the_refresh_window() {
    // With a refresh every 4 datagrams, templates ride in datagrams
    // 0, 4, 8, …. Dropping datagram 0 loses its own batch outright and
    // leaves datagrams 1–3 undecodable (their data sets are skipped and
    // counted per set); datagram 4 re-announces and everything after
    // decodes. The damage is exactly the refresh window.
    let (flows, pkts) = (flows_once(), export(4, 0));
    let mut collector = Collector::new();
    collector.ingest_all(pkts.iter().skip(1).map(|p| p.as_slice()));
    let lost = flows.len() - collector.stats().records as usize;
    assert_eq!(lost, 4 * BATCH, "exactly the refresh window is lost");
    // Datagrams 1–3 each contribute one skipped data set; they are still
    // structurally valid, so none of them is malformed.
    assert_eq!(collector.stats().missing_template, 3);
    assert_eq!(collector.stats().malformed, 0);
    assert_eq!(collector.stats().packets_ok as usize, pkts.len() - 1);
}

#[test]
fn corruption_never_panics_and_is_counted() {
    let pkts = self_describing();
    let mut rng = StdRng::seed_from_u64(3);
    let mut collector = Collector::new();
    let mut corrupted = 0u64;
    for p in pkts {
        let mut bytes = p.clone();
        // Flip a random byte in ~half the packets.
        if rng.gen_bool(0.5) {
            let idx = rng.gen_range(0..bytes.len());
            bytes[idx] ^= 0xFF;
            corrupted += 1;
        }
        collector.ingest(&bytes); // must not panic
    }
    let stats = collector.stats();
    // Every datagram is either structurally accepted or malformed —
    // skipped sets are accounted separately in `missing_template`.
    assert_eq!(stats.packets_ok + stats.malformed, pkts.len() as u64);
    // Corruption in the header/length region is detected; flips inside
    // record payloads decode to (wrong) values — flow telemetry has no
    // integrity protection, which is why real deployments run it on
    // dedicated networks. At minimum, no corrupted run may *crash*.
    assert!(corrupted > 0);
}

#[test]
fn truncated_tails_rejected_cleanly() {
    let pkts = self_describing();
    let mut collector = Collector::new();
    for p in pkts.iter().take(20) {
        for cut in [1usize, 7, p.len() / 2] {
            if cut < p.len() {
                collector.ingest(&p[..p.len() - cut]);
            }
        }
    }
    assert_eq!(collector.stats().packets_ok, 0);
    assert!(collector.stats().malformed > 0);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any drop/duplicate/reorder schedule leaves the accepted records a
    /// sub-multiset of what was sent: faults lose data, they never invent
    /// or mutate it. The exporter's starting sequence is fuzzed across the
    /// whole u32 range — including values a few datagrams below the wrap —
    /// because wrapped sequence headers must never corrupt decoding.
    fn fault_schedules_never_corrupt_accepted_records(
        actions in prop::collection::vec(0u8..3u8, 0..600usize),
        shuffle_seed in any::<u64>(),
        initial_sequence in prop_oneof![
            Just(0u32),
            (u32::MAX - 5_000)..=u32::MAX,
            any::<u32>(),
        ],
    ) {
        let flows = flows_once();
        let exported;
        let pkts = if initial_sequence == 0 {
            self_describing()
        } else {
            exported = export(1, initial_sequence);
            &exported
        };
        // 0 = deliver, 1 = drop, 2 = duplicate; missing tail delivers.
        let mut wire: Vec<&[u8]> = Vec::new();
        for (i, p) in pkts.iter().enumerate() {
            match actions.get(i).copied().unwrap_or(0) {
                1 => {}
                2 => {
                    wire.push(p);
                    wire.push(p);
                }
                _ => wire.push(p),
            }
        }
        let mut rng = StdRng::seed_from_u64(shuffle_seed);
        wire.shuffle(&mut rng);

        let mut collector = Collector::new();
        collector.ingest_all(wire.iter().copied());
        let stats = collector.stats();
        prop_assert_eq!(stats.packets_ok + stats.malformed, wire.len() as u64);
        prop_assert_eq!(stats.malformed, 0);
        prop_assert_eq!(stats.missing_template, 0);

        let originals: HashSet<_> = flows
            .iter()
            .map(|f| (f.key, f.start, f.end, f.bytes, f.packets))
            .collect();
        for r in collector.records() {
            prop_assert!(
                originals.contains(&(r.key, r.start, r.end, r.bytes, r.packets)),
                "accepted record not in the sent set: {:?}",
                r
            );
        }
    }
}
