//! Query-plane integration: predicate pushdown must be *observable*
//! (strictly fewer segments decoded than a full scan, `query_*` counters
//! moving), the cache must serve repeats without re-decoding, query
//! aggregates must match an independent engine-pass oracle, and every
//! figure served from the archive must be byte-identical to the suite's
//! own rendering — the correctness gate behind `lockdown serve`.

use lockdown::app::build_handler;
use lockdown::core::experiments::suite;
use lockdown::core::serve::{figure_names, render_figure};
use lockdown::core::{Context, Fidelity};
use lockdown::query::{loadgen, LoadConfig, QueryEngine, QueryPlan, Server};
use lockdown_analysis::appclass::Classifier;
use lockdown_analysis::consumer::FlowConsumer;
use lockdown_core::engine::{self, EnginePlan};
use lockdown_flow::record::FlowRecord;
use lockdown_flow::time::Date;
use lockdown_topology::registry::Registry;
use lockdown_topology::vantage::VantagePoint;
use lockdown_traffic::plan::Stream;
use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::{Arc, OnceLock};
use std::time::Duration;

/// One shared test-fidelity archive for the whole file: built by the
/// first test that needs it, reused (read-only) by the rest.
fn archive_dir() -> &'static PathBuf {
    static DIR: OnceLock<PathBuf> = OnceLock::new();
    DIR.get_or_init(|| {
        let dir = std::env::temp_dir().join(format!("lockdown-queryplane-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let ctx = Context::new(Fidelity::Test);
        suite::run_all_archived(&ctx, None, &dir).expect("cold archived suite pass");
        dir
    })
}

fn open_engine() -> QueryEngine {
    QueryEngine::open(archive_dir(), 256 * 1024 * 1024)
        .expect("archive opens")
        .expect("archive has a manifest")
}

#[test]
fn pushdown_prunes_strictly_fewer_segments_than_full_scan() {
    let engine = open_engine();
    let total = engine.reader().segment_count() as u64;

    // Narrow query first, against the cold cache: one vantage, one week,
    // one port. Pushdown must skip segments before decode — and the port
    // predicate must reach the zone-map footers (a cached segment would
    // skip the footer read, so cold-cache order matters here).
    let plan = QueryPlan::parse([
        ("vantage", "isp-ce"),
        ("from", "2020-03-09"),
        ("to", "2020-03-16"),
        ("port", "443"),
    ])
    .expect("plan parses");
    let narrow = engine.execute(&plan).expect("narrow scan");
    assert!(narrow.segments_pruned > 0, "pruning must be observable");
    assert_eq!(narrow.segments_scanned + narrow.segments_pruned, total);
    assert!(
        engine.metrics().footer_reads.get() > 0,
        "zone maps were consulted"
    );

    // Full scan: no predicates, everything is decoded.
    let full = engine.execute(&QueryPlan::default()).expect("full scan");
    assert_eq!(full.segments_scanned + full.segments_pruned, total);
    assert!(full.flows > 0);
    assert!(
        narrow.segments_scanned < full.segments_scanned,
        "pushdown must decode strictly fewer segments ({} vs {})",
        narrow.segments_scanned,
        full.segments_scanned
    );
    // A time+stream-only query admits exactly the week of hourly cells.
    let week = QueryPlan::parse([
        ("vantage", "isp-ce"),
        ("from", "2020-03-09"),
        ("to", "2020-03-16"),
    ])
    .expect("plan parses");
    assert_eq!(
        engine.execute(&week).expect("week scan").segments_scanned,
        7 * 24
    );

    // The global counters saw all of it.
    assert!(engine.metrics().segments_pruned.get() > 0);
}

#[test]
fn cache_serves_repeat_queries_without_redecoding() {
    let engine = open_engine();
    let plan = QueryPlan::parse([
        ("vantage", "ixp-ce"),
        ("from", "2020-03-16"),
        ("to", "2020-03-19"),
    ])
    .expect("plan parses");

    let cold = engine.execute(&plan).expect("cold query");
    assert_eq!(cold.segments_cached, 0, "first touch decodes");
    let decoded_after_cold = engine.metrics().segments_decoded.get();

    let warm = engine.execute(&plan).expect("warm query");
    assert_eq!(warm, QueryOutputExpect::identical(&cold), "same answer");
    assert_eq!(
        warm.segments_cached, warm.segments_scanned,
        "every repeat segment comes from the cache"
    );
    assert_eq!(
        engine.metrics().segments_decoded.get(),
        decoded_after_cold,
        "no re-decode on the warm path"
    );
    assert!(engine.metrics().cache_hits.get() >= warm.segments_cached);
}

/// Equality helper: the scan-shape fields legitimately differ between a
/// cold and a warm execution (cached counts), so compare the answer.
struct QueryOutputExpect;
impl QueryOutputExpect {
    fn identical(cold: &lockdown::query::QueryOutput) -> lockdown::query::QueryOutput {
        lockdown::query::QueryOutput {
            segments_cached: cold.segments_scanned,
            ..cold.clone()
        }
    }
}

/// Engine-pass oracle: subscribe to the raw flows of the queried stream
/// and apply the same predicates consumer-side — fresh generation, no
/// archive, no pushdown. The query plane must agree exactly.
struct FilteredAggregate {
    plan: QueryPlan,
    classifier: Classifier,
    flows: u64,
    bytes: u64,
    packets: u64,
    hourly: BTreeMap<u64, u64>,
}

impl FlowConsumer for FilteredAggregate {
    fn observe(&mut self, r: &FlowRecord) {
        if !self.plan.admits_record(r) {
            return;
        }
        if self
            .plan
            .class
            .is_some_and(|c| self.classifier.classify(r) != Some(c))
        {
            return;
        }
        self.flows += 1;
        self.bytes += r.bytes;
        self.packets += r.packets;
        *self.hourly.entry(r.start.floor_hour().unix()).or_insert(0) += r.bytes;
    }

    fn merge(&mut self, other: Self) {
        self.flows += other.flows;
        self.bytes += other.bytes;
        self.packets += other.packets;
        for (h, b) in other.hourly {
            *self.hourly.entry(h).or_insert(0) += b;
        }
    }
}

#[test]
fn execute_matches_engine_pass_oracle() {
    let engine = open_engine();
    let plan = QueryPlan::parse([
        ("vantage", "isp-ce"),
        ("from", "2020-03-09"),
        ("to", "2020-03-12"),
        ("port", "443"),
        ("class", "vod"),
    ])
    .expect("plan parses");
    let got = engine.execute(&plan).expect("query");

    let ctx = Context::new(Fidelity::Test);
    let mut eplan = EnginePlan::new();
    let oracle_plan = plan;
    let d = eplan.subscribe(
        Stream::Vantage(VantagePoint::IspCe),
        Date::new(2020, 3, 9),
        Date::new(2020, 3, 11),
        move || FilteredAggregate {
            plan: oracle_plan,
            classifier: Classifier::from_registry(&Registry::synthesize()),
            flows: 0,
            bytes: 0,
            packets: 0,
            hourly: BTreeMap::new(),
        },
    );
    let mut out = engine::run(&ctx, eplan).expect("oracle pass");
    let oracle = out.take(d);

    assert!(got.flows > 0, "the window must not be degenerate");
    assert_eq!(got.flows, oracle.flows);
    assert_eq!(got.bytes, oracle.bytes);
    assert_eq!(got.packets, oracle.packets);
    assert_eq!(got.hourly, oracle.hourly);
}

#[test]
fn served_figures_are_byte_identical_to_suite_renders() {
    let dir = archive_dir();
    let ctx = Context::new(Fidelity::Test);
    // Warm pass: replays the archive, so these sections are exactly what
    // `lockdown figures --archive` prints.
    let suite_run = suite::run_all_archived(&ctx, None, dir).expect("warm suite pass");
    let sections = suite_run.renders();
    let names = figure_names();
    assert_eq!(names.len(), sections.len(), "catalog covers every section");

    let engine = Arc::new(open_engine());
    let mut fetch = |cell| engine.read_cell(cell);
    for (name, expected) in names.iter().zip(&sections) {
        let served =
            render_figure(&ctx, name, &mut fetch).unwrap_or_else(|e| panic!("serving {name}: {e}"));
        assert_eq!(&served, expected, "figure {name} diverges from the suite");
    }
}

/// Minimal HTTP/1.1 GET over a raw socket (Connection: close).
fn http_get(addr: std::net::SocketAddr, path: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("timeout");
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n"
    )
    .expect("send");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("response");
    let status: u16 = raw
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status line");
    let body = raw
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

#[test]
fn http_server_serves_queries_figures_and_metrics() {
    let ctx = Arc::new(Context::new(Fidelity::Test));
    let engine = Arc::new(open_engine());
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let handler = build_handler(Arc::clone(&engine), Arc::clone(&ctx));
    let server =
        Server::start(listener, 64, Arc::clone(engine.metrics()), handler).expect("server starts");
    let addr = server.addr();

    // Catalog, one figure, a pushdown query, and the metrics page.
    let (status, body) = http_get(addr, "/figures");
    assert_eq!(status, 200);
    assert!(
        body.contains("\"fig9:ISP-CE\""),
        "catalog lists fig9 panels"
    );

    let (status, body) = http_get(addr, "/figures/table2");
    assert_eq!(status, 200);
    assert!(body.contains("\"name\":\"table2\""));

    let (status, body) = http_get(
        addr,
        "/query?vantage=isp-ce&from=2020-03-09&to=2020-03-12&port=443",
    );
    assert_eq!(status, 200);
    assert!(body.contains("\"segments_pruned\":"));

    // 4xx paths: unknown endpoint, unknown figure, bad query key, and an
    // empty window — none of them may take the server down.
    assert_eq!(http_get(addr, "/nope").0, 404);
    assert_eq!(http_get(addr, "/figures/fig99").0, 404);
    assert_eq!(http_get(addr, "/query?frobnicate=1").0, 400);
    assert_eq!(http_get(addr, "/query?from=10&to=10").0, 400);

    let (status, metrics) = http_get(addr, "/metrics");
    assert_eq!(status, 200);
    for family in [
        "query_requests_total",
        "query_responses_2xx_total",
        "query_responses_4xx_total",
        "query_segments_pruned_total",
        "query_segments_decoded_total",
        "query_cache_bytes",
        "query_latency_us_count",
        "store_segments_read_total",
    ] {
        assert!(metrics.contains(family), "metrics page misses {family}");
    }
    let value = |family: &str| -> u64 {
        metrics
            .lines()
            .find(|l| l.starts_with(family) && !l.starts_with('#'))
            .and_then(|l| l.split_whitespace().nth(1))
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| panic!("no value for {family}"))
    };
    assert!(value("query_requests_total") >= 8);
    assert!(value("query_responses_4xx_total") >= 4);
    assert!(
        value("query_segments_pruned_total") > 0,
        "pruning visible on /metrics"
    );

    // The load generator against the live server: the served catalog
    // must reassemble to the suite stdout (zero mismatches).
    let suite_run = suite::run_all_archived(&ctx, None, archive_dir()).expect("warm suite");
    let mut expected = String::new();
    for section in suite_run.renders() {
        expected.push_str(&section);
        expected.push('\n');
    }
    let report = loadgen::run(&LoadConfig {
        target: format!("{addr}"),
        clients: 8,
        duration_secs: 0.3,
        seed: 7,
        expect: Some(expected),
    })
    .expect("loadgen runs");
    assert_eq!(report.mismatches, 0, "served figures diverge");
    assert_eq!(report.figures_verified, figure_names().len() as u64);
    assert!(report.requests > 0);

    server.shutdown(Duration::from_secs(5));
}
