//! Wire-mode acceptance: the export → faulty transport → collect plane
//! keeps figure output byte-identical at zero faults, accounts losses
//! against transport ground truth, and stays deterministic across runs
//! and worker counts.

use lockdown::analysis::timeseries::HourlyVolume;
use lockdown::collect::{FaultProfile, WireConfig};
use lockdown::core::engine::{self, EnginePlan};
use lockdown::core::experiments::suite;
use lockdown::core::{Context, Fidelity};
use lockdown::flow::exporter::ExportFormat;
use lockdown::flow::time::Date;
use lockdown::topology::vantage::VantagePoint;
use lockdown::traffic::plan::Stream;

fn metric(render: &str, name: &str) -> u64 {
    render
        .lines()
        .find(|l| l.starts_with(name) && l[name.len()..].starts_with(' '))
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| panic!("metric {name} missing from snapshot"))
}

/// One small engine pass (two days, one vantage point) in wire mode.
fn wired_pass(
    cfg: WireConfig,
    workers: usize,
) -> (Vec<(lockdown::flow::time::Timestamp, u64)>, String) {
    let ctx = Context::with_seed(Fidelity::Test, 9);
    let d1 = Date::new(2020, 3, 23);
    let d2 = Date::new(2020, 3, 24);
    let mut plan = EnginePlan::new();
    plan.with_wire(cfg);
    let h = plan.subscribe(
        Stream::Vantage(VantagePoint::IxpCe),
        d1,
        d2,
        HourlyVolume::new,
    );
    let mut out = engine::run_with_workers(&ctx, plan, workers).expect("pass succeeds");
    let metrics = out
        .wire_metrics()
        .expect("wire mode carries metrics")
        .render();
    (out.take(h).hourly_series(d1, d2), metrics)
}

#[test]
fn zero_fault_wire_suite_is_byte_identical() {
    let ctx = Context::new(Fidelity::Test);
    let plain = suite::run_all(&ctx);
    let wired = suite::run_all_with(&ctx, Some(WireConfig::new().with_audit(true)));
    assert_eq!(
        plain.renders(),
        wired.renders(),
        "zero-fault wire mode must not change any figure"
    );
    assert_eq!(plain.stats, wired.stats);
    let audit = wired.audit.as_ref().expect("audit requested");
    assert!(
        audit.is_clean(),
        "zero-fault suite violated conservation:\n{}",
        audit.render()
    );
    assert!(audit.cells > 0, "audit must have covered the pass");
    let metrics = wired.wire_metrics.expect("wire metrics present").render();
    assert_eq!(metric(&metrics, "audit_violations"), 0);
    assert!(metric(&metrics, "audit_cells") > 0);
    assert_eq!(metric(&metrics, "transport_datagrams_dropped_total"), 0);
    assert_eq!(metric(&metrics, "collector_records_lost_est_total"), 0);
    assert_eq!(
        metric(&metrics, "engine_flows_wired_total"),
        metric(&metrics, "engine_flows_delivered_total"),
        "zero faults deliver every flow"
    );
}

#[test]
fn est_lost_matches_transport_ground_truth() {
    // v5 has no templates, so every delivered datagram decodes: the only
    // record loss is transport drops, and sequence accounting must agree
    // with the transport's ground truth to within 1%.
    let mut cfg = WireConfig::new().with_faults(FaultProfile {
        loss: 0.12,
        duplicate: 0.05,
        reorder: 0.08,
        restart_every: 0,
    });
    cfg.format = ExportFormat::NetflowV5;
    cfg.seed = 41;
    cfg.renormalize = false;
    let (_, metrics) = wired_pass(cfg, 2);
    let truth = metric(&metrics, "transport_records_dropped_total");
    let est = metric(&metrics, "collector_records_lost_est_total");
    assert!(truth > 0, "profile must actually drop records");
    let err = (est as f64 - truth as f64).abs() / truth as f64;
    assert!(err <= 0.01, "est {est} vs truth {truth} (err {err:.4})");
    assert!(metric(&metrics, "collector_sequence_gaps_total") > 0);
    assert!(metric(&metrics, "collector_duplicates_rejected_total") > 0);
}

#[test]
fn wire_mode_is_deterministic_across_runs_and_workers() {
    let mut cfg = WireConfig::new().with_faults(FaultProfile {
        loss: 0.1,
        duplicate: 0.04,
        reorder: 0.06,
        restart_every: 8,
    });
    cfg.seed = 7;
    let (series1, metrics1) = wired_pass(cfg, 1);
    for workers in [2usize, 3, 8] {
        let (series, metrics) = wired_pass(cfg, workers);
        assert_eq!(series1, series, "series diverged at workers={workers}");
        assert_eq!(metrics1, metrics, "metrics diverged at workers={workers}");
    }
}

#[test]
fn metrics_snapshot_covers_every_layer() {
    let (_, metrics) = wired_pass(WireConfig::new(), 2);
    for family in [
        "exporter_datagrams_total",
        "exporter_fleet_size",
        "transport_datagrams_delivered_total",
        "collector_records_total",
        "engine_cells_wired_total",
        "audit_cells",
        "audit_violations",
    ] {
        assert!(metrics.contains(family), "{family} missing:\n{metrics}");
    }
}

#[test]
fn faulted_suite_audit_balances_across_workers() {
    // A full engine pass with faults, wrap-adjacent sequence counters, and
    // multiple workers posting to the shared ledger concurrently: every
    // per-cell conservation identity must still balance exactly.
    let mut cfg = WireConfig::new().with_faults(FaultProfile {
        loss: 0.1,
        duplicate: 0.05,
        reorder: 0.06,
        restart_every: 6,
    });
    cfg.template_refresh = 1;
    cfg.seed = 13;
    cfg.audit = true;
    cfg.initial_sequence = u32::MAX - 200;
    let ctx = Context::with_seed(Fidelity::Test, 9);
    let d1 = Date::new(2020, 3, 23);
    let d2 = Date::new(2020, 3, 24);
    let mut plan = EnginePlan::new();
    plan.with_wire(cfg);
    let h = plan.subscribe(
        Stream::Vantage(VantagePoint::IxpCe),
        d1,
        d2,
        HourlyVolume::new,
    );
    let mut out = engine::run_with_workers(&ctx, plan, 4).expect("pass succeeds");
    let audit = out.audit().cloned().expect("audit requested");
    assert!(audit.is_clean(), "{}", audit.render());
    assert_eq!(audit.cells, 2 * 24, "one ledger cell per engine cell");
    let t = &audit.totals;
    assert!(t.dropped_records > 0, "faults must have fired");
    // The fleet staggers template cadence per member (base + i), so under
    // loss some members can lose their *last* template announcement and
    // abandon the buffered tail at close. IPFIX loss accounting is still
    // exact: every estimated-lost record is a transport drop, an abandoned
    // buffer unit, or an undecodable set — nothing more, nothing less.
    assert_eq!(
        t.est_lost,
        t.dropped_records + t.abandoned_units + t.undecoded,
        "IPFIX loss estimate decomposes exactly into accounted causes"
    );
    let _ = out.take(h);
}
