//! End-to-end integration: synthetic generation → wire export → collection
//! → analysis, across crates. The wire pipeline must be transparent: every
//! analysis result computed from collected records must equal the result
//! computed from the generator's records directly.

use lockdown::analysis::prelude::*;
use lockdown::core::{Context, Fidelity};
use lockdown::flow::prelude::*;
use lockdown::topology::vantage::VantagePoint;
use lockdown_flow::time::Date;

fn ctx() -> Context {
    Context::new(Fidelity::Test)
}

#[test]
fn wire_pipeline_is_transparent_for_analysis() {
    let ctx = ctx();
    let generator = ctx.generator();
    let date = Date::new(2020, 3, 25);
    let flows = generator.generate_day(VantagePoint::IspCe, date);

    // Ship through IPFIX.
    let boot = date.midnight();
    let mut exporter = Exporter::new(ExporterConfig::new(ExportFormat::Ipfix, boot));
    let datagrams = exporter.export_all(&flows, date.at_hour(23).add_secs(3_599));
    let mut collector = Collector::new();
    collector.ingest_all(datagrams.iter().map(|d| d.as_slice()));
    assert_eq!(collector.stats().records as usize, flows.len());

    // Identical hourly volumes either way.
    let mut direct = HourlyVolume::new();
    direct.add_all(&flows);
    let mut collected = HourlyVolume::new();
    collected.add_all(collector.records());
    for hour in 0..24 {
        assert_eq!(
            direct.get(date, hour),
            collected.get(date, hour),
            "hour {hour} volume must survive the wire"
        );
    }

    // Identical port profile.
    let region = VantagePoint::IspCe.region();
    let mut p_direct = PortProfile::new();
    p_direct.add_all(&flows, region);
    let mut p_wire = PortProfile::new();
    p_wire.add_all(collector.records(), region);
    for key in p_direct.top_services(10, &[]) {
        assert_eq!(p_direct.total(key), p_wire.total(key), "{key}");
    }
}

#[test]
fn netflow_v5_saturates_counters_and_keeps_the_rest() {
    // v5 counters are 32-bit: oversized byte/packet counts saturate at
    // u32::MAX (never wrap); keys, timestamps and 16-bit-safe ASNs
    // survive exactly.
    let ctx = ctx();
    let generator = ctx.generator();
    let date = Date::new(2020, 2, 20);
    let flows = generator.generate_hour(VantagePoint::Edu, date, 12);
    assert!(!flows.is_empty());

    let boot = date.midnight();
    let mut exporter = Exporter::new(ExporterConfig::new(ExportFormat::NetflowV5, boot));
    let datagrams = exporter.export_all(&flows, date.at_hour(13));
    let mut collector = Collector::new();
    collector.ingest_all(datagrams.iter().map(|d| d.as_slice()));
    assert_eq!(collector.records().len(), flows.len());
    for (a, b) in flows.iter().zip(collector.records()) {
        assert_eq!(a.key, b.key);
        assert_eq!(a.bytes.min(u32::MAX as u64), b.bytes, "saturating bytes");
        assert_eq!(a.packets.min(u32::MAX as u64), b.packets);
        assert_eq!(a.start, b.start);
        assert_eq!((a.src_as, a.dst_as), (b.src_as, b.dst_as));
    }
}

#[test]
fn all_generated_addresses_attributable() {
    // Every flow endpoint the generator emits (EDU chaff aside) must
    // LPM-resolve to the AS stamped on the record — the invariant the
    // whole AS-level analysis rests on.
    let ctx = ctx();
    let generator = ctx.generator();
    for vp in [
        VantagePoint::IspCe,
        VantagePoint::IxpSe,
        VantagePoint::MobileCe,
    ] {
        for f in generator.generate_hour(vp, Date::new(2020, 4, 1), 20) {
            assert_eq!(
                ctx.registry.lookup(f.key.src_addr).map(|a| a.0),
                Some(f.src_as),
                "{vp}: src mismatch"
            );
            assert_eq!(
                ctx.registry.lookup(f.key.dst_addr).map(|a| a.0),
                Some(f.dst_as),
                "{vp}: dst mismatch"
            );
        }
    }
}

#[test]
fn anonymization_preserves_as_aggregation() {
    // §2.1: addresses are hashed. Prefix-preserving anonymization must
    // keep per-/16 flow grouping intact (the /16 is the registry's
    // allocation unit).
    let ctx = ctx();
    let generator = ctx.generator();
    let anon = Anonymizer::new(42);
    let flows = generator.generate_hour(VantagePoint::IxpCe, Date::new(2020, 3, 25), 11);
    use std::collections::HashMap;
    let mut plain: HashMap<u32, u64> = HashMap::new();
    let mut anonymized: HashMap<std::net::Ipv4Addr, u64> = HashMap::new();
    for f in &flows {
        *plain.entry(u32::from(f.key.src_addr) >> 16).or_insert(0) += f.bytes;
        let e = anon.anonymize(f.key.src_addr);
        *anonymized
            .entry(std::net::Ipv4Addr::from(u32::from(e) & 0xFFFF_0000))
            .or_insert(0) += f.bytes;
    }
    // Same multiset of per-/16 byte totals.
    let mut a: Vec<u64> = plain.values().copied().collect();
    let mut b: Vec<u64> = anonymized.values().copied().collect();
    a.sort_unstable();
    b.sort_unstable();
    assert_eq!(a, b);
}
