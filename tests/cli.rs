//! Smoke tests for the `lockdown` CLI binary: every subcommand runs,
//! capture→analyze round-trips, and bad input fails cleanly.

use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_lockdown"))
}

#[test]
fn help_prints_usage() {
    let out = bin().arg("help").output().expect("spawn");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("figures"));
    assert!(text.contains("vpn-scan"));
}

#[test]
fn unknown_command_fails() {
    let out = bin().arg("frobnicate").output().expect("spawn");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));
}

#[test]
fn registry_summarizes() {
    let out = bin().arg("registry").output().expect("spawn");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("hypergiant"));
    assert!(text.contains("eyeball ISP"));
}

#[test]
fn figures_single_table_at_test_fidelity() {
    let out = bin()
        .args(["figures", "--fidelity", "test", "table1", "table2"])
        .output()
        .expect("spawn");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("Table 1"));
    assert!(text.contains("Netflix"));
    // Only the requested outputs appear.
    assert!(!text.contains("Fig. 1"));
}

#[test]
fn capture_analyze_roundtrip() {
    let dir = std::env::temp_dir().join(format!("lockdown-cli-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let trace = dir.join("edu.lkdn");

    let out = bin()
        .args([
            "capture",
            "--vantage",
            "EDU",
            "--date",
            "2020-03-17",
            "--format",
            "v5",
            "--out",
        ])
        .arg(&trace)
        .output()
        .expect("spawn");
    assert!(
        out.status.success(),
        "capture failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(trace.exists());

    let out = bin()
        .args(["analyze", "--trace"])
        .arg(&trace)
        .output()
        .expect("spawn");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("records"), "{text}");
    assert!(text.contains("top services"));
    assert!(text.contains("0 malformed"));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn capture_validates_arguments() {
    for bad in [
        vec!["capture", "--date", "2020-03-17", "--out", "/tmp/x"],
        vec!["capture", "--vantage", "IXP-CE", "--out", "/tmp/x"],
        vec![
            "capture",
            "--vantage",
            "NOPE",
            "--date",
            "2020-03-17",
            "--out",
            "/tmp/x",
        ],
        vec![
            "capture",
            "--vantage",
            "IXP-CE",
            "--date",
            "2020-13-01",
            "--out",
            "/tmp/x",
        ],
        vec![
            "capture",
            "--vantage",
            "IXP-CE",
            "--date",
            "2020-02-30",
            "--out",
            "/tmp/x",
        ],
    ] {
        let out = bin().args(&bad).output().expect("spawn");
        assert!(!out.status.success(), "should fail: {bad:?}");
    }
}

#[test]
fn analyze_rejects_garbage() {
    let dir = std::env::temp_dir().join(format!("lockdown-cli-bad-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let path = dir.join("garbage.lkdn");
    std::fs::write(&path, b"this is not a trace").expect("write");
    let out = bin()
        .args(["analyze", "--trace"])
        .arg(&path)
        .output()
        .expect("spawn");
    assert!(!out.status.success());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn figures_rejects_unknown_flags_with_usage() {
    let out = bin()
        .args(["figures", "--fidelity", "test", "--frobnicate"])
        .output()
        .expect("spawn");
    assert!(!out.status.success(), "unknown flag must fail");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown flag: --frobnicate"), "{err}");
    assert!(err.contains("USAGE"), "usage text must follow: {err}");
}

#[test]
fn collect_rejects_unknown_flags_with_usage() {
    // --wire is valid for `figures` but meaningless for `collect` (which
    // is always wired) — it must be rejected, not silently ignored.
    let out = bin()
        .args(["collect", "--fidelity", "test", "--wire"])
        .output()
        .expect("spawn");
    assert!(!out.status.success(), "unknown flag must fail");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown flag: --wire"), "{err}");
    assert!(err.contains("USAGE"), "{err}");
}

#[test]
fn store_subcommand_validates_input() {
    let out = bin().args(["store", "inspect"]).output().expect("spawn");
    assert!(!out.status.success(), "--archive is required");

    let dir = std::env::temp_dir().join(format!("lockdown-cli-store-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let out = bin()
        .args(["store", "verify", "--archive"])
        .arg(&dir)
        .output()
        .expect("spawn");
    assert!(!out.status.success(), "manifest-less dir is not an archive");
    assert!(String::from_utf8_lossy(&out.stderr).contains("no archive manifest"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn figures_under_chaos_exits_degraded_with_report() {
    // High panic rate + 1 attempt quarantines deterministically; the run
    // must still render every figure and exit with the documented
    // degraded code 3 (not 0, not the generic failure 1).
    let out = bin()
        .args([
            "figures",
            "--fidelity",
            "test",
            "--chaos",
            "seed=7,panic=0.9,attempts=1,backoff=0",
        ])
        .output()
        .expect("spawn");
    assert_eq!(out.status.code(), Some(3), "degraded exit code");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("Fig. 1"), "figures still render");
    assert!(
        text.contains("[degraded:"),
        "affected sections carry the partial-data annotation"
    );
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("DEGRADED PASS"), "{err}");
    assert!(err.contains("quarantined [wire"), "{err}");
    assert!(err.contains("supervisor_quarantined_cells"), "{err}");
}

#[test]
fn figures_zero_chaos_supervision_exits_clean() {
    let out = bin()
        .args(["figures", "--fidelity", "test", "--chaos", "seed=0"])
        .output()
        .expect("spawn");
    assert_eq!(out.status.code(), Some(0), "zero chaos is a clean pass");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("supervisor_retries_total 0"), "{err}");
    assert!(!err.contains("DEGRADED"), "{err}");
}

#[test]
fn figures_rejects_bad_chaos_specs() {
    for bad in [
        "panic=1.5",
        "attempts=0",
        "frobnicate=1",
        "panic",
        "seed=notanumber",
    ] {
        let out = bin()
            .args(["figures", "--fidelity", "test", "--chaos", bad])
            .output()
            .expect("spawn");
        assert_eq!(out.status.code(), Some(1), "should fail: {bad}");
        assert!(
            String::from_utf8_lossy(&out.stderr).contains("bad --chaos spec"),
            "{bad}"
        );
    }
}

#[test]
fn scenarios_rejects_unknown_flags_with_usage() {
    let out = bin()
        .args(["scenarios", "list", "--frobnicate"])
        .output()
        .expect("spawn");
    assert!(!out.status.success(), "unknown flag must fail");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown flag: --frobnicate"), "{err}");
    assert!(err.contains("USAGE"), "{err}");
}

#[test]
fn scenarios_requires_an_action() {
    let out = bin().arg("scenarios").output().expect("spawn");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("list | show FILE | --matrix"), "{err}");
    assert!(err.contains("USAGE"), "{err}");
}

#[test]
fn scenarios_list_and_show_shipped_files() {
    let out = bin().args(["scenarios", "list"]).output().expect("spawn");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("covid-spring-2020"), "{text}");
    assert!(text.contains("hypergiant-outage"), "{text}");
    assert!(
        !text.contains("INVALID"),
        "shipped files must parse: {text}"
    );

    let out = bin()
        .args(["scenarios", "show", "scenarios/covid-spring-2020.toml"])
        .output()
        .expect("spawn");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("[scenario]"), "{text}");
    assert!(text.contains("name = \"covid-spring-2020\""), "{text}");
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("fingerprint"),
        "summary goes to stderr"
    );
}

#[test]
fn figures_rejects_bad_scenario_files() {
    let out = bin()
        .args([
            "figures",
            "--fidelity",
            "test",
            "--scenario",
            "/nonexistent/nope.toml",
            "table2",
        ])
        .output()
        .expect("spawn");
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("nope.toml"));

    // A malformed measure file must fail with the offending line named.
    let dir = std::env::temp_dir().join(format!("lockdown-cli-scn-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let bad = dir.join("bad.toml");
    let text = std::fs::read_to_string("scenarios/covid-spring-2020.toml")
        .expect("shipped file")
        .replace("release = 0.55", "release = 7.0");
    std::fs::write(&bad, text).expect("write");
    let out = bin()
        .args(["figures", "--fidelity", "test", "--scenario"])
        .arg(&bad)
        .arg("table2")
        .output()
        .expect("spawn");
    assert_eq!(out.status.code(), Some(1));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("line "), "error must name a line: {err}");
    assert!(err.contains("outside [0, 1]"), "{err}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn scenarios_matrix_sweeps_in_one_pass() {
    let dir = std::env::temp_dir().join(format!("lockdown-cli-matrix-{}", std::process::id()));
    let out_dir = dir.join("out");
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let out = bin()
        .args([
            "scenarios",
            "--matrix",
            "scenarios/covid-spring-2020.toml",
            "scenarios/hypergiant-outage.toml",
            "--fidelity",
            "test",
            "--out",
        ])
        .arg(&out_dir)
        .output()
        .expect("spawn");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("matrix: 2 scenarios"), "{err}");
    assert!(err.contains("cells generated once (shared pass)"), "{err}");
    assert!(err.contains("sections differ"), "{err}");

    let covid = std::fs::read(out_dir.join("00-covid-spring-2020.txt")).expect("lane 0 output");
    let outage = std::fs::read(out_dir.join("01-hypergiant-outage.txt")).expect("lane 1 output");
    assert!(!covid.is_empty());
    assert_ne!(covid, outage, "per-scenario outputs must differ");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn store_gc_dry_run_previews_without_deleting() {
    let dir = std::env::temp_dir().join(format!("lockdown-cli-gc-{}", std::process::id()));
    let seg_dir = dir.join("segments");
    std::fs::create_dir_all(&seg_dir).expect("tmp dir");
    // A manifest-less archive (as a kill -9 leaves behind): every segment
    // is an orphan, and gc must work without a manifest.
    let orphan = seg_dir.join("seg-1-18262-00.lks");
    std::fs::write(&orphan, b"leftover").expect("write orphan");

    let out = bin()
        .args(["store", "gc", "--archive"])
        .arg(&dir)
        .arg("--dry-run")
        .output()
        .expect("spawn");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("would remove 1"), "{text}");
    assert!(orphan.exists(), "dry run must not delete");

    let out = bin()
        .args(["store", "gc", "--archive"])
        .arg(&dir)
        .output()
        .expect("spawn");
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("removed 1"));
    assert!(!orphan.exists(), "real gc deletes the orphan");

    // --dry-run is gc-only.
    let out = bin()
        .args(["store", "inspect", "--archive"])
        .arg(&dir)
        .arg("--dry-run")
        .output()
        .expect("spawn");
    assert!(!out.status.success());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn query_plane_subcommands_reject_unknown_flags_with_usage() {
    for cmd in ["serve", "query", "loadgen", "collectd"] {
        let out = bin().args([cmd, "--frobnicate"]).output().expect("spawn");
        assert_eq!(
            out.status.code(),
            Some(1),
            "{cmd}: unknown flag must exit 1"
        );
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(err.contains("unknown flag: --frobnicate"), "{cmd}: {err}");
        assert!(
            err.contains("USAGE"),
            "{cmd}: usage text must follow: {err}"
        );
    }
}

#[test]
fn serve_bind_failure_exits_2() {
    // Occupy a port, then ask serve to bind it. The bind happens before
    // the archive is opened, so the (nonexistent) archive path is never
    // the failure — the documented bind exit code 2 is.
    let occupied = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = occupied.local_addr().expect("addr").to_string();
    let out = bin()
        .args(["serve", "--archive", "/nonexistent", "--addr", &addr])
        .output()
        .expect("spawn");
    assert_eq!(out.status.code(), Some(2), "bind conflict must exit 2");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("binding"), "{err}");
}

#[test]
fn collectd_bind_failure_exits_2() {
    // Occupy a UDP port, then ask collectd to bind it: the documented
    // bind exit code 2, same contract as serve.
    let occupied = std::net::UdpSocket::bind("127.0.0.1:0").expect("bind");
    let addr = occupied.local_addr().expect("addr").to_string();
    let out = bin()
        .args(["collectd", "--listen", &addr])
        .output()
        .expect("spawn");
    assert_eq!(out.status.code(), Some(2), "bind conflict must exit 2");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("binding"), "{err}");
}

#[test]
fn collectd_stdin_eof_drains_and_accounts_received_datagrams() {
    use std::io::{BufRead, BufReader, Read};

    let mut daemon = bin()
        .args(["collectd", "--sockets", "1", "--shards", "2"])
        .stdin(std::process::Stdio::piped())
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::piped())
        .spawn()
        .expect("spawn collectd");
    let mut stdout = BufReader::new(daemon.stdout.take().expect("collectd stdout"));
    let mut first_line = String::new();
    stdout
        .read_line(&mut first_line)
        .expect("read bound address");
    let addr = first_line
        .trim()
        .strip_prefix("listening on ")
        .unwrap_or_else(|| panic!("unexpected first line: {first_line:?}"))
        .to_string();

    // A garbage datagram must still be accounted: received at the
    // socket, then counted malformed by a shard — never silently lost.
    let sender = std::net::UdpSocket::bind("127.0.0.1:0").expect("sender");
    sender.send_to(b"not a flow export", &addr).expect("send");
    // Loopback delivery is synchronous, but give the receiver thread
    // time to pull the datagram off the socket before the drain.
    std::thread::sleep(std::time::Duration::from_millis(300));

    // Closing stdin is the shutdown signal: drain, summarize, exit 0.
    drop(daemon.stdin.take());
    let mut rest = String::new();
    stdout.read_to_string(&mut rest).expect("read summary");
    let status = daemon.wait().expect("collectd exits");
    assert_eq!(status.code(), Some(0), "graceful drain exits 0");
    assert!(
        rest.contains("1 datagrams received") && rest.contains("1 malformed"),
        "summary must account the garbage datagram: {rest:?}"
    );
    let mut err = String::new();
    daemon
        .stderr
        .take()
        .expect("collectd stderr")
        .read_to_string(&mut err)
        .expect("read metrics");
    assert!(
        err.contains("socket_datagrams_received_total 1"),
        "metrics on stderr must reflect the receive: {err}"
    );
}

#[test]
fn collectd_soak_smoke_reports_clean_audit() {
    let out = bin()
        .args(["collectd", "--soak", "--cells", "1", "--records", "5000"])
        .output()
        .expect("spawn");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let json = String::from_utf8_lossy(&out.stdout);
    assert!(json.contains("\"records_sent\": 5000"), "{json}");
    assert!(json.contains("\"audit_clean\": true"), "{json}");
}

#[test]
fn export_process_feeds_collectd_and_conservation_closes() {
    use std::io::{BufRead, BufReader, Read};

    // A daemon process with a generous kernel buffer (the exporter is a
    // separate process with no flow-control channel back).
    let mut daemon = bin()
        .args(["collectd", "--sockets", "2", "--rcvbuf", "4194304"])
        .stdin(std::process::Stdio::piped())
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("spawn collectd");
    let mut stdout = BufReader::new(daemon.stdout.take().expect("collectd stdout"));
    let mut targets = Vec::new();
    for _ in 0..2 {
        let mut line = String::new();
        stdout.read_line(&mut line).expect("read bound address");
        targets.push(
            line.trim()
                .strip_prefix("listening on ")
                .unwrap_or_else(|| panic!("unexpected line: {line:?}"))
                .to_string(),
        );
    }

    // A separate exporter process pushes one cell at the daemon.
    let out = bin()
        .args(["export", "--target", &targets.join(",")])
        .args(["--cells", "1", "--records", "20000"])
        .output()
        .expect("spawn export");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let summary = String::from_utf8_lossy(&out.stdout);
    // "export: R records in D datagrams (B bytes) over 1 cells"
    let words: Vec<&str> = summary.split_whitespace().collect();
    assert_eq!(words[0], "export:", "{summary}");
    assert_eq!(words[1], "20000", "{summary}");
    let datagrams: u64 = words[4].parse().unwrap_or_else(|_| panic!("{summary}"));
    assert!(datagrams > 0, "{summary}");

    // Let the receivers pull everything off the sockets, then drain.
    std::thread::sleep(std::time::Duration::from_millis(700));
    drop(daemon.stdin.take());
    let mut rest = String::new();
    stdout
        .read_to_string(&mut rest)
        .expect("read drain summary");
    let status = daemon.wait().expect("collectd exits");
    assert_eq!(status.code(), Some(0), "graceful drain exits 0");

    // Cross-process conservation: every datagram and record the exporter
    // printed shows up in the daemon's drain summary, with zero losses
    // at any of the three drop sites.
    assert!(
        rest.contains(&format!("{datagrams} datagrams received (0 truncated)")),
        "sent {datagrams}: {rest:?}"
    );
    assert!(
        rest.contains("20000 records accepted"),
        "all records must land: {rest:?}"
    );
    assert!(rest.contains("0 malformed"), "{rest:?}");
    assert!(rest.contains("0 queue-dropped"), "{rest:?}");
}

#[test]
fn coordinate_validates_worker_topology_flags() {
    // Neither --workers nor --attach: refused with guidance.
    let out = bin()
        .args(["coordinate", "--fidelity", "test"])
        .output()
        .expect("spawn");
    assert_eq!(out.status.code(), Some(1));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(
        err.contains("--workers") && err.contains("--attach"),
        "{err}"
    );

    // Both at once: also refused (ambiguous topology).
    let out = bin()
        .args(["coordinate", "--workers", "2", "--attach", "127.0.0.1:1"])
        .output()
        .expect("spawn");
    assert_eq!(out.status.code(), Some(1));
}

#[test]
fn coordinate_spawned_workers_render_byte_identical_figures() {
    let single = bin()
        .args(["figures", "--fidelity", "test"])
        .output()
        .expect("spawn figures");
    assert!(single.status.success());

    let sharded = bin()
        .args(["coordinate", "--fidelity", "test", "--workers", "3"])
        .output()
        .expect("spawn coordinate");
    assert!(
        sharded.status.success(),
        "{}",
        String::from_utf8_lossy(&sharded.stderr)
    );
    assert_eq!(
        String::from_utf8_lossy(&sharded.stdout),
        String::from_utf8_lossy(&single.stdout),
        "coordinated figures must be byte-identical to the single process"
    );
    let err = String::from_utf8_lossy(&sharded.stderr);
    assert!(err.contains("coordinated 3 workers"), "{err}");
    assert!(err.contains("0 ranges quarantined"), "{err}");
}

#[test]
fn serve_loadgen_roundtrip_and_mismatch_exit_4() {
    use std::io::{BufRead, BufReader};

    let dir = std::env::temp_dir().join(format!("lockdown-cli-serve-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let archive = dir.join("arch");
    std::fs::create_dir_all(&dir).expect("tmp dir");

    // Build the archive and capture the expected suite stdout.
    let out = bin()
        .args(["figures", "--fidelity", "test", "--archive"])
        .arg(&archive)
        .output()
        .expect("spawn");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let expected = dir.join("expected.txt");
    std::fs::write(&expected, &out.stdout).expect("expected stdout");
    let garbage = dir.join("garbage.txt");
    std::fs::write(&garbage, b"not the suite\n").expect("garbage");

    // Serve on an ephemeral port; keep stdin open to keep it running.
    let mut serve = bin()
        .args(["serve", "--fidelity", "test", "--archive"])
        .arg(&archive)
        .args(["--addr", "127.0.0.1:0"])
        .stdin(std::process::Stdio::piped())
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("spawn serve");
    let mut first_line = String::new();
    BufReader::new(serve.stdout.take().expect("serve stdout"))
        .read_line(&mut first_line)
        .expect("read bound address");
    let addr = first_line
        .trim()
        .strip_prefix("serving on ")
        .unwrap_or_else(|| panic!("unexpected first line: {first_line:?}"))
        .to_string();

    // Matching expectation: exit 0, zero mismatches reported.
    let out = bin()
        .args(["loadgen", "--target", &addr, "--clients", "2"])
        .args(["--duration", "0", "--expect"])
        .arg(&expected)
        .output()
        .expect("spawn loadgen");
    assert_eq!(
        out.status.code(),
        Some(0),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let report = String::from_utf8_lossy(&out.stdout);
    assert!(report.contains("\"mismatches\": 0"), "{report}");

    // Garbage expectation: the documented mismatch exit code 4.
    let out = bin()
        .args(["loadgen", "--target", &addr, "--clients", "0"])
        .args(["--duration", "0", "--expect"])
        .arg(&garbage)
        .output()
        .expect("spawn loadgen");
    assert_eq!(out.status.code(), Some(4), "mismatch must exit 4");
    assert!(String::from_utf8_lossy(&out.stderr).contains("diverge"));

    // Closing stdin is the shutdown signal: serve must exit 0.
    drop(serve.stdin.take());
    let status = serve.wait().expect("serve exits");
    assert_eq!(status.code(), Some(0), "graceful shutdown exits 0");

    std::fs::remove_dir_all(&dir).ok();
}
