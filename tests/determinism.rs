//! Reproducibility: the whole stack is deterministic per seed — a design
//! requirement stated in DESIGN.md ("every figure regenerates
//! bit-identically from a seed") and stronger than the paper's own
//! reproducibility.

use lockdown::core::engine::{self, EnginePlan};
use lockdown::core::experiments::{fig1, tables};
use lockdown::core::{Context, Fidelity};
use lockdown::dns::corpus::synthesize as synth_corpus;
use lockdown::topology::registry::Registry;
use lockdown::topology::vantage::VantagePoint;
use lockdown_analysis::timeseries::HourlyVolume;
use lockdown_flow::time::Date;
use lockdown_traffic::plan::Stream;

#[test]
fn generators_identical_per_seed() {
    let r = Registry::synthesize();
    let c = synth_corpus(&r, 5);
    let cfg = lockdown::traffic::config::GeneratorConfig::coarse(5);
    let g1 = lockdown::traffic::generate::TrafficGenerator::new(&r, &c, cfg);
    let g2 = lockdown::traffic::generate::TrafficGenerator::new(&r, &c, cfg);
    let d = Date::new(2020, 3, 25);
    for vp in VantagePoint::ALL {
        assert_eq!(
            g1.generate_hour(vp, d, 9),
            g2.generate_hour(vp, d, 9),
            "{vp}"
        );
    }
}

#[test]
fn different_seeds_differ() {
    let r = Registry::synthesize();
    let c = synth_corpus(&r, 5);
    let g1 = lockdown::traffic::generate::TrafficGenerator::new(
        &r,
        &c,
        lockdown::traffic::config::GeneratorConfig::coarse(5),
    );
    let g2 = lockdown::traffic::generate::TrafficGenerator::new(
        &r,
        &c,
        lockdown::traffic::config::GeneratorConfig::coarse(6),
    );
    let d = Date::new(2020, 3, 25);
    assert_ne!(
        g1.generate_hour(VantagePoint::IspCe, d, 9),
        g2.generate_hour(VantagePoint::IspCe, d, 9)
    );
}

#[test]
fn experiments_render_identically_per_seed() {
    let a = Context::with_seed(Fidelity::Test, 7);
    let b = Context::with_seed(Fidelity::Test, 7);
    assert_eq!(fig1::run(&a).render(), fig1::run(&b).render());
    assert_eq!(tables::table1(&a).render(), tables::table1(&b).render());
}

#[test]
fn edu_generator_deterministic() {
    let ctx = Context::with_seed(Fidelity::Test, 9);
    let g1 = ctx.edu_generator();
    let g2 = ctx.edu_generator();
    let d = Date::new(2020, 3, 12);
    for hour in [0u8, 9, 15, 23] {
        assert_eq!(g1.generate_hour(d, hour), g2.generate_hour(d, hour));
    }
}

#[test]
fn engine_matches_direct_generation() {
    // The engine path (plan + subscribe + fan-out) accumulates exactly the
    // same flows as driving the generator by hand over the same window.
    let ctx = Context::with_seed(Fidelity::Test, 13);
    let vp = VantagePoint::IxpCe;
    let (start, end) = (Date::new(2020, 3, 2), Date::new(2020, 3, 5));

    let mut direct = HourlyVolume::new();
    ctx.generator()
        .for_each_hour(vp, start, end, |_, _, flows| direct.add_all(flows));

    let mut plan = EnginePlan::new();
    let d = plan.subscribe(Stream::Vantage(vp), start, end, HourlyVolume::new);
    let engine_volume = engine::run(&ctx, plan).expect("pass succeeds").take(d);

    assert_eq!(
        direct.hourly_series(start, end),
        engine_volume.hourly_series(start, end)
    );
}

#[test]
fn engine_output_independent_of_worker_count() {
    let ctx = Context::with_seed(Fidelity::Test, 17);
    let (start, end) = (Date::new(2020, 2, 19), Date::new(2020, 2, 25));
    let run = |workers: usize| {
        let mut plan = EnginePlan::new();
        let volume = plan.subscribe(
            Stream::Vantage(VantagePoint::IspCe),
            start,
            end,
            HourlyVolume::new,
        );
        let transit = plan.subscribe(Stream::IspTransit, start, end, HourlyVolume::new);
        let mut out = engine::run_with_workers(&ctx, plan, workers).expect("pass succeeds");
        (
            out.take(volume).hourly_series(start, end),
            out.take(transit).hourly_series(start, end),
        )
    };
    let single = run(1);
    for workers in [2usize, 4, 8] {
        assert_eq!(single, run(workers), "workers={workers}");
    }
}

#[test]
fn engine_generates_overlapping_cells_exactly_once() {
    // Acceptance criterion: the cell counter equals the hand-computed
    // union of the demanded windows, strictly below the overlap-counting
    // total a per-figure path would regenerate.
    let ctx = Context::with_seed(Fidelity::Test, 19);
    let vp = VantagePoint::IxpSe;
    let mut plan = EnginePlan::new();
    // Three overlapping windows on one stream: Feb 1–7, Feb 5–10, Feb 7.
    let a = plan.subscribe(
        Stream::Vantage(vp),
        Date::new(2020, 2, 1),
        Date::new(2020, 2, 7),
        HourlyVolume::new,
    );
    let b = plan.subscribe(
        Stream::Vantage(vp),
        Date::new(2020, 2, 5),
        Date::new(2020, 2, 10),
        HourlyVolume::new,
    );
    let c = plan.subscribe(
        Stream::Vantage(vp),
        Date::new(2020, 2, 7),
        Date::new(2020, 2, 7),
        HourlyVolume::new,
    );
    let mut out = engine::run(&ctx, plan).expect("pass succeeds");
    let stats = out.stats();
    // Union: Feb 1–10 = 10 days. Demanded: 7 + 6 + 1 = 14 days.
    assert_eq!(stats.cells_generated, 10 * 24);
    assert_eq!(stats.cells_demanded, 14 * 24);
    assert!(stats.cells_generated < stats.cells_demanded);
    // And the shared cells feed every subscription identically.
    let (a, b, c) = (out.take(a), out.take(b), out.take(c));
    let feb7 = Date::new(2020, 2, 7);
    assert_eq!(a.daily_total(feb7), b.daily_total(feb7));
    assert_eq!(a.daily_total(feb7), c.daily_total(feb7));
}

#[test]
fn cells_independent_of_generation_order() {
    // Generating hour 9 alone equals hour 9 out of a full-day run: cells
    // are independently seeded, which is what makes slices consistent
    // across experiments.
    let ctx = Context::with_seed(Fidelity::Test, 11);
    let g = ctx.generator();
    let d = Date::new(2020, 2, 20);
    let solo = g.generate_hour(VantagePoint::IxpSe, d, 9);
    let day = g.generate_day(VantagePoint::IxpSe, d);
    let from_day: Vec<_> = day
        .iter()
        .filter(|f| f.start >= d.at_hour(9) && f.start < d.at_hour(10))
        .cloned()
        .collect();
    assert_eq!(solo, from_day);
}
