//! Reproducibility: the whole stack is deterministic per seed — a design
//! requirement stated in DESIGN.md ("every figure regenerates
//! bit-identically from a seed") and stronger than the paper's own
//! reproducibility.

use lockdown::core::experiments::{fig1, tables};
use lockdown::core::{Context, Fidelity};
use lockdown::dns::corpus::synthesize as synth_corpus;
use lockdown::topology::registry::Registry;
use lockdown::topology::vantage::VantagePoint;
use lockdown_flow::time::Date;

#[test]
fn generators_identical_per_seed() {
    let r = Registry::synthesize();
    let c = synth_corpus(&r, 5);
    let cfg = lockdown::traffic::config::GeneratorConfig::coarse(5);
    let g1 = lockdown::traffic::generate::TrafficGenerator::new(&r, &c, cfg);
    let g2 = lockdown::traffic::generate::TrafficGenerator::new(&r, &c, cfg);
    let d = Date::new(2020, 3, 25);
    for vp in VantagePoint::ALL {
        assert_eq!(g1.generate_hour(vp, d, 9), g2.generate_hour(vp, d, 9), "{vp}");
    }
}

#[test]
fn different_seeds_differ() {
    let r = Registry::synthesize();
    let c = synth_corpus(&r, 5);
    let g1 = lockdown::traffic::generate::TrafficGenerator::new(
        &r,
        &c,
        lockdown::traffic::config::GeneratorConfig::coarse(5),
    );
    let g2 = lockdown::traffic::generate::TrafficGenerator::new(
        &r,
        &c,
        lockdown::traffic::config::GeneratorConfig::coarse(6),
    );
    let d = Date::new(2020, 3, 25);
    assert_ne!(
        g1.generate_hour(VantagePoint::IspCe, d, 9),
        g2.generate_hour(VantagePoint::IspCe, d, 9)
    );
}

#[test]
fn experiments_render_identically_per_seed() {
    let a = Context::with_seed(Fidelity::Test, 7);
    let b = Context::with_seed(Fidelity::Test, 7);
    assert_eq!(fig1::run(&a).render(), fig1::run(&b).render());
    assert_eq!(tables::table1(&a).render(), tables::table1(&b).render());
}

#[test]
fn edu_generator_deterministic() {
    let ctx = Context::with_seed(Fidelity::Test, 9);
    let g1 = ctx.edu_generator();
    let g2 = ctx.edu_generator();
    let d = Date::new(2020, 3, 12);
    for hour in [0u8, 9, 15, 23] {
        assert_eq!(g1.generate_hour(d, hour), g2.generate_hour(d, hour));
    }
}

#[test]
fn cells_independent_of_generation_order() {
    // Generating hour 9 alone equals hour 9 out of a full-day run: cells
    // are independently seeded, which is what makes slices consistent
    // across experiments.
    let ctx = Context::with_seed(Fidelity::Test, 11);
    let g = ctx.generator();
    let d = Date::new(2020, 2, 20);
    let solo = g.generate_hour(VantagePoint::IxpSe, d, 9);
    let day = g.generate_day(VantagePoint::IxpSe, d);
    let from_day: Vec<_> = day
        .iter()
        .filter(|f| f.start >= d.at_hour(9) && f.start < d.at_hour(10))
        .cloned()
        .collect();
    assert_eq!(solo, from_day);
}
