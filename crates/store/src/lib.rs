//! Columnar flow archive + replay: spill generated engine cells once,
//! replay them byte-identically forever.
//!
//! The trace engine's cost is dominated by flow generation. This crate
//! adds a persistence layer beneath it: each generated `(stream, date,
//! hour)` cell is encoded as a per-column segment ([`segment`]) with zone
//! maps and a CRC, filed under a manifest ([`archive`]) keyed by seed,
//! scenario hash and plan hash. A later run with the same generation key
//! replays decoded segments through the identical consumer machinery
//! ([`scan`]) and produces byte-identical output without generating a
//! single flow; any key mismatch marks the archive stale and the run
//! regenerates. Everything is dependency-light: the encodings are
//! hand-rolled varints/deltas over `std::fs`, no serialization or
//! compression crates involved.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod archive;
pub mod codec;
pub mod metrics;
pub mod scan;
pub mod segment;

pub use archive::{
    gc_dir, scenario_subdir, segment_file_name, ArchiveReader, ArchiveWriter, GcReport,
    SegmentMeta, SpillFault, StoreKey, VerifyReport, JOURNAL_NAME, MANIFEST_NAME, SEGMENTS_DIR,
};
pub use metrics::StoreMetrics;
pub use scan::{OwnedSegmentScan, SegmentScan, TimeRange};
pub use segment::{Column, SegmentFooter, ZoneMap};

use std::fmt;

/// Errors from the archive layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// A filesystem operation failed.
    Io {
        /// Path the operation touched.
        path: String,
        /// The underlying I/O error, rendered.
        detail: String,
    },
    /// A segment or manifest failed CRC or structural validation. Always
    /// names the offending file so an aborted run points at the culprit.
    Corrupt {
        /// File name of the bad segment (or the manifest).
        segment: String,
        /// What failed.
        detail: String,
    },
    /// Something the caller demanded is not in the archive.
    Missing {
        /// What was demanded.
        what: String,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io { path, detail } => write!(f, "archive I/O error at {path}: {detail}"),
            StoreError::Corrupt { segment, detail } => {
                write!(f, "corrupt archive file {segment}: {detail}")
            }
            StoreError::Missing { what } => write!(f, "missing from archive: {what}"),
        }
    }
}

impl std::error::Error for StoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_render_with_context() {
        let e = StoreError::Corrupt {
            segment: "seg-1-18300-09.lks".into(),
            detail: "CRC mismatch".into(),
        };
        assert_eq!(
            e.to_string(),
            "corrupt archive file seg-1-18300-09.lks: CRC mismatch"
        );
        let e = StoreError::Io {
            path: "/tmp/x".into(),
            detail: "denied".into(),
        };
        assert!(e.to_string().contains("/tmp/x"));
    }
}
