//! The `store_*` metrics family: archive I/O accounting.
//!
//! Built on the collection plane's [`MetricsRegistry`] so one combined
//! Prometheus-style snapshot can carry wire metrics and store metrics
//! side by side (`render_into` composes them).

use lockdown_collect::metrics::{Metric, MetricsRegistry};
use std::sync::Arc;

/// Counters for archive writes, reads, pruning and corruption.
#[derive(Debug)]
pub struct StoreMetrics {
    registry: MetricsRegistry,
    /// Segments encoded and written to the archive.
    pub segments_written: Arc<Metric>,
    /// Bytes of segment data written.
    pub bytes_written: Arc<Metric>,
    /// Flow records spilled into segments.
    pub records_written: Arc<Metric>,
    /// Segments decoded during replay or verification.
    pub segments_read: Arc<Metric>,
    /// Bytes of segment data read back.
    pub bytes_read: Arc<Metric>,
    /// Flow records decoded from segments.
    pub records_read: Arc<Metric>,
    /// Archived segments skipped because no demand covered them.
    pub segments_pruned: Arc<Metric>,
    /// Segments rejected for CRC or structural corruption.
    pub crc_failures: Arc<Metric>,
    /// Segments adopted from a journal or stale manifest during resume.
    pub segments_resumed: Arc<Metric>,
    /// Resume candidates rejected (corrupt index, missing or short file).
    pub resume_rejected: Arc<Metric>,
    /// Journal snapshots published (automatic and explicit checkpoints).
    pub journal_checkpoints: Arc<Metric>,
}

impl StoreMetrics {
    /// Build the metric set inside a fresh registry.
    pub fn new() -> Arc<StoreMetrics> {
        let mut r = MetricsRegistry::new();
        Arc::new(StoreMetrics {
            segments_written: r.counter("store_segments_written_total", "Segments written"),
            bytes_written: r.counter("store_bytes_written_total", "Segment bytes written"),
            records_written: r.counter(
                "store_records_written_total",
                "Flow records spilled into segments",
            ),
            segments_read: r.counter("store_segments_read_total", "Segments decoded"),
            bytes_read: r.counter("store_bytes_read_total", "Segment bytes read"),
            records_read: r.counter(
                "store_records_read_total",
                "Flow records decoded from segments",
            ),
            segments_pruned: r.counter(
                "store_segments_pruned_total",
                "Archived segments skipped by zone-map/demand pruning",
            ),
            crc_failures: r.counter(
                "store_crc_failures_total",
                "Segments rejected for CRC or structural corruption",
            ),
            segments_resumed: r.counter(
                "store_segments_resumed_total",
                "Segments adopted from a journal or stale manifest during resume",
            ),
            resume_rejected: r.counter(
                "store_resume_rejected_total",
                "Resume candidates rejected (corrupt index, missing or short file)",
            ),
            journal_checkpoints: r.counter(
                "store_journal_checkpoints_total",
                "Journal snapshots published",
            ),
            registry: r,
        })
    }

    /// The underlying registry (for lookups and snapshot composition).
    pub fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// Prometheus-style text snapshot of the `store_*` family.
    pub fn render(&self) -> String {
        self.registry.render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_the_store_family() {
        let m = StoreMetrics::new();
        m.segments_written.add(3);
        m.crc_failures.inc();
        let text = m.render();
        assert!(text.contains("store_segments_written_total 3"));
        assert!(text.contains("store_crc_failures_total 1"));
        assert!(text.contains("# TYPE store_bytes_read_total counter"));
    }
}
