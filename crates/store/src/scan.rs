//! Replay source: serve a plan's cell demands from archived segments.
//!
//! A [`SegmentScan`] sits where the trace emitter sits on the cold path:
//! the engine asks it for one cell at a time (possibly from several
//! crossbeam workers — all methods take `&self`) and fans the decoded
//! batches into the same consumer merge machinery. Archived segments the
//! current plan does not demand are *pruned*: never opened, never
//! decoded, counted in `store_segments_pruned_total`. That is what lets a
//! superset archive (say, the full suite) serve a subset plan (one
//! figure) without paying for the rest.

use crate::archive::ArchiveReader;
use crate::metrics::StoreMetrics;
use crate::StoreError;
use lockdown_flow::record::FlowRecord;
use lockdown_traffic::plan::Cell;
use std::collections::BTreeSet;
use std::sync::Arc;

/// A pruned view of an archive, fixed to one plan's demanded cell set.
#[derive(Debug)]
pub struct SegmentScan<'a> {
    reader: &'a ArchiveReader,
    demanded: BTreeSet<Cell>,
    pruned: u64,
}

impl<'a> SegmentScan<'a> {
    /// Build a scan over `reader` for exactly `demanded`. Counts the
    /// archived segments outside the demand set as pruned (recorded in
    /// `metrics` once, here, so replay workers don't double-count).
    pub fn new(
        reader: &'a ArchiveReader,
        demanded: impl IntoIterator<Item = Cell>,
        metrics: &StoreMetrics,
    ) -> SegmentScan<'a> {
        let demanded: BTreeSet<Cell> = demanded.into_iter().collect();
        let pruned = reader
            .segments()
            .filter(|m| !demanded.contains(&m.cell))
            .count() as u64;
        metrics.segments_pruned.add(pruned);
        SegmentScan {
            reader,
            demanded,
            pruned,
        }
    }

    /// Whether the archive can satisfy every demanded cell.
    pub fn covers_all(&self) -> bool {
        self.reader.covers(self.demanded.iter())
    }

    /// Archived segments the demand set never asks for.
    pub fn pruned(&self) -> u64 {
        self.pruned
    }

    /// The underlying archive reader.
    pub fn reader(&self) -> &ArchiveReader {
        self.reader
    }

    /// Decode one demanded cell's records. Asking for a cell outside the
    /// demand set is a caller bug surfaced as [`StoreError::Missing`].
    pub fn read_cell(&self, cell: Cell) -> Result<Vec<FlowRecord>, StoreError> {
        if !self.demanded.contains(&cell) {
            return Err(StoreError::Missing {
                what: format!("cell {cell:?} is not in the scan's demand set"),
            });
        }
        self.reader.read_cell(cell)
    }
}

/// Shared-ownership variant used by the engine: same pruning semantics,
/// but owns an `Arc` so it can outlive the borrow that built it.
#[derive(Debug, Clone)]
pub struct OwnedSegmentScan {
    reader: Arc<ArchiveReader>,
    demanded: Arc<BTreeSet<Cell>>,
}

impl OwnedSegmentScan {
    /// Build a scan over a shared reader for exactly `demanded`,
    /// recording pruned segments in `metrics`.
    pub fn new(
        reader: Arc<ArchiveReader>,
        demanded: impl IntoIterator<Item = Cell>,
        metrics: &StoreMetrics,
    ) -> OwnedSegmentScan {
        let demanded: BTreeSet<Cell> = demanded.into_iter().collect();
        let pruned = reader
            .segments()
            .filter(|m| !demanded.contains(&m.cell))
            .count() as u64;
        metrics.segments_pruned.add(pruned);
        OwnedSegmentScan {
            reader,
            demanded: Arc::new(demanded),
        }
    }

    /// Whether the archive can satisfy every demanded cell.
    pub fn covers_all(&self) -> bool {
        self.reader.covers(self.demanded.iter())
    }

    /// Decode one demanded cell's records.
    pub fn read_cell(&self, cell: Cell) -> Result<Vec<FlowRecord>, StoreError> {
        if !self.demanded.contains(&cell) {
            return Err(StoreError::Missing {
                what: format!("cell {cell:?} is not in the scan's demand set"),
            });
        }
        self.reader.read_cell(cell)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::archive::{ArchiveWriter, StoreKey};
    use lockdown_flow::record::{FlowKey, FlowRecord};
    use lockdown_flow::time::Date;
    use lockdown_topology::vantage::VantagePoint;
    use lockdown_traffic::plan::Stream;
    use std::net::Ipv4Addr;
    use std::path::PathBuf;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("lockdown-scan-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn cell(hour: u8) -> Cell {
        Cell {
            stream: Stream::Vantage(VantagePoint::IxpCe),
            date: Date::new(2020, 3, 25),
            hour,
        }
    }

    fn one_record(cell: Cell) -> Vec<FlowRecord> {
        vec![FlowRecord::builder(
            FlowKey {
                src_addr: Ipv4Addr::new(10, 0, 0, 1),
                dst_addr: Ipv4Addr::new(10, 0, 0, 2),
                src_port: 1,
                dst_port: 2,
                protocol: lockdown_flow::protocol::IpProtocol::Udp,
            },
            cell.date.at_hour(cell.hour),
        )
        .build()]
    }

    #[test]
    fn subset_demand_prunes_the_rest() {
        let dir = tmp_dir("prune");
        let metrics = StoreMetrics::new();
        let key = StoreKey {
            seed: 1,
            scenario_hash: 2,
            plan_hash: 3,
        };
        let w = ArchiveWriter::create(&dir, key, Arc::clone(&metrics)).unwrap();
        for h in 0..6 {
            w.spill(cell(h), &one_record(cell(h))).unwrap();
        }
        w.finish().unwrap();

        let r = ArchiveReader::open(&dir, Arc::clone(&metrics))
            .unwrap()
            .unwrap();
        let scan = SegmentScan::new(&r, [cell(1), cell(3)], &metrics);
        assert!(scan.covers_all());
        assert_eq!(scan.pruned(), 4);
        assert_eq!(metrics.segments_pruned.get(), 4);
        assert_eq!(scan.read_cell(cell(1)).unwrap().len(), 1);
        // Undemanded cells are refused, not silently served.
        assert!(matches!(
            scan.read_cell(cell(0)),
            Err(StoreError::Missing { .. })
        ));
        // A demand the archive can't satisfy is visible before any read.
        let partial = SegmentScan::new(&r, [cell(1), cell(23)], &metrics);
        assert!(!partial.covers_all());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
