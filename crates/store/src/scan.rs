//! Replay source: serve a plan's cell demands from archived segments.
//!
//! A [`SegmentScan`] sits where the trace emitter sits on the cold path:
//! the engine asks it for one cell at a time (possibly from several
//! crossbeam workers — all methods take `&self`) and fans the decoded
//! batches into the same consumer merge machinery. Archived segments the
//! current plan does not demand are *pruned*: never opened, never
//! decoded, counted in `store_segments_pruned_total`. That is what lets a
//! superset archive (say, the full suite) serve a subset plan (one
//! figure) without paying for the rest.

use crate::archive::{ArchiveReader, SegmentMeta};
use crate::metrics::StoreMetrics;
use crate::StoreError;
use lockdown_flow::record::FlowRecord;
use lockdown_traffic::plan::Cell;
use std::collections::BTreeSet;
use std::sync::Arc;

/// A half-open `[from, to)` window over flow *start* seconds, the
/// normalization every predicate-pushdown scan uses.
///
/// The asymmetry is deliberate and matches how the paper bins traffic:
/// hour bins are `[h, h+1)`, so a record starting exactly at `to` belongs
/// to the *next* window. Segment footers, by contrast, record an
/// *inclusive* `[min_start, max_end]` span — [`TimeRange::admits_span`]
/// translates between the two conventions so boundary segments are never
/// wrongly pruned (a record starting exactly at `from` must survive) and
/// never wrongly scanned (a segment whose earliest start is exactly `to`
/// cannot match).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimeRange {
    /// First admitted start second (inclusive).
    pub from: u64,
    /// First excluded start second (exclusive).
    pub to: u64,
}

impl TimeRange {
    /// The unbounded range: admits every record.
    pub fn all() -> TimeRange {
        TimeRange {
            from: 0,
            to: u64::MAX,
        }
    }

    /// Whether the range admits nothing (`from >= to`).
    pub fn is_empty(&self) -> bool {
        self.from >= self.to
    }

    /// Whether one record start falls inside the window.
    pub fn admits_start(&self, start: u64) -> bool {
        self.from <= start && start < self.to
    }

    /// Whether a segment spanning the *inclusive* `[min_start, max_end]`
    /// footer range may hold a matching record. Conservative in one
    /// direction only: a `true` may still decode to zero matches (the
    /// footer stores `max_end`, not the latest start), but `false` is a
    /// proof — no record in the segment can start inside the window.
    pub fn admits_span(&self, min_start: u64, max_end: u64) -> bool {
        !self.is_empty() && min_start < self.to && self.from <= max_end
    }

    /// Segment-level pruning decision from a manifest entry alone (no
    /// file I/O): empty segments and segments whose time span cannot
    /// overlap the window are pruned.
    pub fn admits_meta(&self, meta: &SegmentMeta) -> bool {
        meta.records > 0 && self.admits_span(meta.min_start, meta.max_end)
    }
}

/// A pruned view of an archive, fixed to one plan's demanded cell set.
#[derive(Debug)]
pub struct SegmentScan<'a> {
    reader: &'a ArchiveReader,
    demanded: BTreeSet<Cell>,
    pruned: u64,
}

impl<'a> SegmentScan<'a> {
    /// Build a scan over `reader` for exactly `demanded`. Counts the
    /// archived segments outside the demand set as pruned (recorded in
    /// `metrics` once, here, so replay workers don't double-count).
    pub fn new(
        reader: &'a ArchiveReader,
        demanded: impl IntoIterator<Item = Cell>,
        metrics: &StoreMetrics,
    ) -> SegmentScan<'a> {
        let demanded: BTreeSet<Cell> = demanded.into_iter().collect();
        let pruned = reader
            .segments()
            .filter(|m| !demanded.contains(&m.cell))
            .count() as u64;
        metrics.segments_pruned.add(pruned);
        SegmentScan {
            reader,
            demanded,
            pruned,
        }
    }

    /// Whether the archive can satisfy every demanded cell.
    pub fn covers_all(&self) -> bool {
        self.reader.covers(self.demanded.iter())
    }

    /// Archived segments the demand set never asks for.
    pub fn pruned(&self) -> u64 {
        self.pruned
    }

    /// The underlying archive reader.
    pub fn reader(&self) -> &ArchiveReader {
        self.reader
    }

    /// Decode one demanded cell's records. Asking for a cell outside the
    /// demand set is a caller bug surfaced as [`StoreError::Missing`].
    pub fn read_cell(&self, cell: Cell) -> Result<Vec<FlowRecord>, StoreError> {
        if !self.demanded.contains(&cell) {
            return Err(StoreError::Missing {
                what: format!("cell {cell:?} is not in the scan's demand set"),
            });
        }
        self.reader.read_cell(cell)
    }
}

/// Shared-ownership variant used by the engine: same pruning semantics,
/// but owns an `Arc` so it can outlive the borrow that built it.
#[derive(Debug, Clone)]
pub struct OwnedSegmentScan {
    reader: Arc<ArchiveReader>,
    demanded: Arc<BTreeSet<Cell>>,
}

impl OwnedSegmentScan {
    /// Build a scan over a shared reader for exactly `demanded`,
    /// recording pruned segments in `metrics`.
    pub fn new(
        reader: Arc<ArchiveReader>,
        demanded: impl IntoIterator<Item = Cell>,
        metrics: &StoreMetrics,
    ) -> OwnedSegmentScan {
        let demanded: BTreeSet<Cell> = demanded.into_iter().collect();
        let pruned = reader
            .segments()
            .filter(|m| !demanded.contains(&m.cell))
            .count() as u64;
        metrics.segments_pruned.add(pruned);
        OwnedSegmentScan {
            reader,
            demanded: Arc::new(demanded),
        }
    }

    /// Whether the archive can satisfy every demanded cell.
    pub fn covers_all(&self) -> bool {
        self.reader.covers(self.demanded.iter())
    }

    /// Decode one demanded cell's records.
    pub fn read_cell(&self, cell: Cell) -> Result<Vec<FlowRecord>, StoreError> {
        if !self.demanded.contains(&cell) {
            return Err(StoreError::Missing {
                what: format!("cell {cell:?} is not in the scan's demand set"),
            });
        }
        self.reader.read_cell(cell)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::archive::{ArchiveWriter, StoreKey};
    use lockdown_flow::record::{FlowKey, FlowRecord};
    use lockdown_flow::time::Date;
    use lockdown_topology::vantage::VantagePoint;
    use lockdown_traffic::plan::Stream;
    use std::net::Ipv4Addr;
    use std::path::PathBuf;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("lockdown-scan-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn cell(hour: u8) -> Cell {
        Cell {
            stream: Stream::Vantage(VantagePoint::IxpCe),
            date: Date::new(2020, 3, 25),
            hour,
        }
    }

    fn one_record(cell: Cell) -> Vec<FlowRecord> {
        vec![FlowRecord::builder(
            FlowKey {
                src_addr: Ipv4Addr::new(10, 0, 0, 1),
                dst_addr: Ipv4Addr::new(10, 0, 0, 2),
                src_port: 1,
                dst_port: 2,
                protocol: lockdown_flow::protocol::IpProtocol::Udp,
            },
            cell.date.at_hour(cell.hour),
        )
        .build()]
    }

    #[test]
    fn subset_demand_prunes_the_rest() {
        let dir = tmp_dir("prune");
        let metrics = StoreMetrics::new();
        let key = StoreKey {
            seed: 1,
            scenario_hash: 2,
            plan_hash: 3,
        };
        let w = ArchiveWriter::create(&dir, key, Arc::clone(&metrics)).unwrap();
        for h in 0..6 {
            w.spill(cell(h), &one_record(cell(h))).unwrap();
        }
        w.finish().unwrap();

        let r = ArchiveReader::open(&dir, Arc::clone(&metrics))
            .unwrap()
            .unwrap();
        let scan = SegmentScan::new(&r, [cell(1), cell(3)], &metrics);
        assert!(scan.covers_all());
        assert_eq!(scan.pruned(), 4);
        assert_eq!(metrics.segments_pruned.get(), 4);
        assert_eq!(scan.read_cell(cell(1)).unwrap().len(), 1);
        // Undemanded cells are refused, not silently served.
        assert!(matches!(
            scan.read_cell(cell(0)),
            Err(StoreError::Missing { .. })
        ));
        // A demand the archive can't satisfy is visible before any read.
        let partial = SegmentScan::new(&r, [cell(1), cell(23)], &metrics);
        assert!(!partial.covers_all());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn time_range_boundaries_are_half_open() {
        let t = 1_584_000_000u64; // some instant
        let r = TimeRange { from: t, to: t + 1 };
        // Exactly-at-from is admitted; exactly-at-to is not.
        assert!(r.admits_start(t));
        assert!(!r.admits_start(t + 1));
        assert!(!r.admits_start(t.wrapping_sub(1)));

        // A single-instant segment (min_start == max_end == t, the
        // min==max degenerate case) is admitted only by windows that
        // contain t.
        assert!(r.admits_span(t, t));
        assert!(TimeRange {
            from: t,
            to: u64::MAX
        }
        .admits_span(t, t));
        // Window starting one past the instant: pruned.
        assert!(!TimeRange {
            from: t + 1,
            to: u64::MAX
        }
        .admits_span(t, t));
        // Window ending exactly at the instant (to == t, exclusive):
        // pruned — no start in [from, t) can be t.
        assert!(!TimeRange { from: 0, to: t }.admits_span(t, t));
        // Window ending one past: admitted.
        assert!(TimeRange { from: 0, to: t + 1 }.admits_span(t, t));

        // Predicate edges against a real span [t, t+3600]: from == max_end
        // still admits (a record could start at max_end when duration 0),
        // from == max_end + 1 prunes; to == min_start prunes, to ==
        // min_start + 1 admits.
        let (lo, hi) = (t, t + 3600);
        assert!(TimeRange {
            from: hi,
            to: u64::MAX
        }
        .admits_span(lo, hi));
        assert!(!TimeRange {
            from: hi + 1,
            to: u64::MAX
        }
        .admits_span(lo, hi));
        assert!(!TimeRange { from: 0, to: lo }.admits_span(lo, hi));
        assert!(TimeRange {
            from: 0,
            to: lo + 1
        }
        .admits_span(lo, hi));

        // Empty ranges admit nothing, whatever the span.
        let empty = TimeRange { from: t, to: t };
        assert!(empty.is_empty());
        assert!(!empty.admits_start(t));
        assert!(!empty.admits_span(0, u64::MAX));
        let inverted = TimeRange {
            from: t + 10,
            to: t,
        };
        assert!(inverted.is_empty());
        assert!(!inverted.admits_span(lo, hi));
    }

    #[test]
    fn zone_and_meta_pruning_boundaries() {
        use crate::segment::Column;

        let dir = tmp_dir("zones");
        let metrics = StoreMetrics::new();
        let key = StoreKey {
            seed: 4,
            scenario_hash: 5,
            plan_hash: 6,
        };
        let w = ArchiveWriter::create(&dir, key, Arc::clone(&metrics)).unwrap();
        // cell(0): one record, single-valued columns (src_port == 1,
        // dst_port == 2); cell(1): empty segment.
        w.spill(cell(0), &one_record(cell(0))).unwrap();
        w.spill(cell(1), &[]).unwrap();
        w.finish().unwrap();
        let r = ArchiveReader::open(&dir, Arc::clone(&metrics))
            .unwrap()
            .unwrap();

        // Single-value column: min == max, and the zone admits exactly
        // that value — one below and one above are excluded.
        let footer = r.read_footer(cell(0)).unwrap();
        let src = footer.zone(Column::SrcPort).unwrap();
        assert_eq!((src.min, src.max), (1, 1));
        assert!(src.admits(1));
        assert!(!src.admits(0));
        assert!(!src.admits(2));
        let dst = footer.zone(Column::DstPort).unwrap();
        assert!(dst.admits(2) && !dst.admits(1) && !dst.admits(3));

        // The footer path reports the same counts/span as the manifest.
        let meta = r.meta(cell(0)).unwrap();
        assert_eq!(footer.records, meta.records);
        assert_eq!(footer.min_start, meta.min_start);
        assert_eq!(footer.max_end, meta.max_end);

        // Meta-level pruning: the record starts exactly at the cell hour;
        // a window starting there admits, the empty segment never does.
        let start = cell(0).date.at_hour(0).unix();
        let window = TimeRange {
            from: start,
            to: start + 1,
        };
        assert!(window.admits_meta(meta));
        assert!(!window.admits_meta(r.meta(cell(1)).unwrap()));
        // Even an all-admitting window prunes the empty segment (its
        // zeroed footer span must not be mistaken for the epoch).
        assert!(!TimeRange::all().admits_meta(r.meta(cell(1)).unwrap()));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
