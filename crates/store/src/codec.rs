//! Byte-level primitives for the columnar segment format: LEB128 varints,
//! zigzag signed mapping, and CRC-32.
//!
//! Column arrays are sequences of small deltas most of the time, so LEB128
//! keeps the common case at one byte while still carrying full `u64` range.
//! The CRC is the standard IEEE polynomial (the one zlib, PNG and Ethernet
//! use), table-driven; it exists to make "one flipped byte anywhere"
//! detectable, not to resist adversaries.

use lockdown_flow::wire::{Cursor, WireError, WireResult};

/// Append `v` as an LEB128 varint (1–10 bytes).
pub fn put_varint(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

/// Read one LEB128 varint; rejects encodings longer than 10 bytes.
pub fn get_varint(cursor: &mut Cursor<'_>, what: &'static str) -> WireResult<u64> {
    let mut v: u64 = 0;
    for shift in (0..64).step_by(7) {
        let byte = cursor.read_u8(what)?;
        v |= u64::from(byte & 0x7F) << shift;
        if byte & 0x80 == 0 {
            // The 10th byte may only carry the single remaining bit.
            if shift == 63 && byte > 1 {
                return Err(WireError::BadField { what });
            }
            return Ok(v);
        }
    }
    Err(WireError::BadField { what })
}

/// Map a signed delta onto unsigned so small magnitudes of either sign
/// stay small varints.
pub fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
pub fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// CRC-32 (IEEE 802.3 polynomial, reflected), the checksum every segment
/// and manifest carries over its own bytes.
pub fn crc32(bytes: &[u8]) -> u32 {
    const TABLE: [u32; 256] = crc_table();
    let mut crc = !0u32;
    for &b in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ u32::from(b)) & 0xFF) as usize];
    }
    !crc
}

const fn crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_roundtrips_edge_values() {
        for v in [
            0u64,
            1,
            127,
            128,
            16_383,
            16_384,
            u64::from(u32::MAX),
            u64::MAX - 1,
            u64::MAX,
        ] {
            let mut buf = Vec::new();
            put_varint(&mut buf, v);
            let mut c = Cursor::new(&buf);
            assert_eq!(get_varint(&mut c, "v").unwrap(), v);
            assert_eq!(c.remaining(), 0);
        }
    }

    #[test]
    fn varint_rejects_overlong_encodings() {
        // 11 continuation bytes can never be a valid u64.
        let buf = [0x80u8; 11];
        let mut c = Cursor::new(&buf);
        assert!(get_varint(&mut c, "v").is_err());
        // A 10-byte encoding whose last byte overflows 64 bits.
        let mut buf = vec![0x80u8; 9];
        buf.push(0x02);
        let mut c = Cursor::new(&buf);
        assert!(matches!(
            get_varint(&mut c, "v"),
            Err(WireError::BadField { .. })
        ));
    }

    #[test]
    fn zigzag_roundtrips() {
        for v in [0i64, 1, -1, 63, -64, i64::MAX, i64::MIN] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
        assert_eq!(zigzag(0), 0);
        assert_eq!(zigzag(-1), 1);
        assert_eq!(zigzag(1), 2);
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // The classic check value for the IEEE polynomial.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_ne!(crc32(b"a"), crc32(b"b"));
    }
}
