//! The columnar segment: one engine cell's flow records, encoded column by
//! column with a zone-map footer and a CRC.
//!
//! Layout (all integers big-endian, varints LEB128):
//!
//! ```text
//! header   magic "LKSG" | version u16 | flags u16          (shared 8-byte
//!          container header, same idiom as flow::tracefile)
//! body     ncols u8
//!          repeat: col_id u8 | byte_len u32 | column bytes
//! footer   records varint | min_start varint | max_end varint
//!          nzones u8, repeat: col_id u8 | min varint | max varint
//! trailer  footer_len u32 | crc u32                        (fixed 8 bytes)
//! ```
//!
//! The CRC covers every byte before itself (header + body + footer +
//! footer_len), so flipping any single byte of a stored segment is
//! detected. Column encodings are chosen per field: timestamps are
//! zigzag-delta varints (records are nearly time-sorted, so deltas are
//! tiny), durations/counters are varints, addresses are raw 4-byte values
//! (high entropy — varints would pessimize), and enums are single bytes.
//! Decoding rebuilds [`FlowRecord`]s bit-exactly; the replay path depends
//! on that for byte-identical figure output.

use crate::codec::{crc32, get_varint, put_varint, unzigzag, zigzag};
use crate::StoreError;
use lockdown_flow::protocol::{IpProtocol, TcpFlags};
use lockdown_flow::record::{Direction, FlowKey, FlowRecord};
use lockdown_flow::time::Timestamp;
use lockdown_flow::tracefile::{read_container_header, write_container_header};
use lockdown_flow::wire::{Cursor, PutBe, WireResult};
use std::net::Ipv4Addr;

/// Segment file magic.
pub const SEGMENT_MAGIC: [u8; 4] = *b"LKSG";
/// Segment format version.
pub const SEGMENT_VERSION: u16 = 1;
/// Fixed trailer size: `footer_len u32 | crc u32`.
pub const TRAILER_LEN: usize = 8;

/// Column identifiers (stable on disk; do not renumber).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
#[allow(missing_docs)] // one variant per FlowRecord field
pub enum Column {
    SrcAddr = 1,
    DstAddr = 2,
    SrcPort = 3,
    DstPort = 4,
    Protocol = 5,
    Start = 6,
    Duration = 7,
    Bytes = 8,
    Packets = 9,
    TcpFlags = 10,
    InputIf = 11,
    OutputIf = 12,
    SrcAs = 13,
    DstAs = 14,
    Direction = 15,
}

/// Every column, in on-disk order.
const ALL_COLUMNS: [Column; 15] = [
    Column::SrcAddr,
    Column::DstAddr,
    Column::SrcPort,
    Column::DstPort,
    Column::Protocol,
    Column::Start,
    Column::Duration,
    Column::Bytes,
    Column::Packets,
    Column::TcpFlags,
    Column::InputIf,
    Column::OutputIf,
    Column::SrcAs,
    Column::DstAs,
    Column::Direction,
];

/// `min..=max` of one column's values, for scan pruning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ZoneMap {
    /// Which column the range describes.
    pub col: u8,
    /// Smallest value present (0 in an empty segment).
    pub min: u64,
    /// Largest value present (0 in an empty segment).
    pub max: u64,
}

impl ZoneMap {
    /// Whether a point predicate `v` can match inside this zone. The
    /// bounds are inclusive on both ends: a single-value column has
    /// `min == max` and still admits exactly that value.
    pub fn admits(&self, v: u64) -> bool {
        self.min <= v && v <= self.max
    }
}

/// The decoded footer: counts and zone maps.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegmentFooter {
    /// Records stored in the segment.
    pub records: u64,
    /// Earliest flow start (0 in an empty segment).
    pub min_start: u64,
    /// Latest flow end (0 in an empty segment).
    pub max_end: u64,
    /// Per-column value ranges.
    pub zones: Vec<ZoneMap>,
}

impl SegmentFooter {
    /// The zone map recorded for one column, if that column is zoned.
    pub fn zone(&self, col: Column) -> Option<&ZoneMap> {
        self.zones.iter().find(|z| z.col == col as u8)
    }
}

/// Which columns get a zone map beyond the dedicated time range: the ones
/// analyses filter on.
const ZONED: [Column; 4] = [
    Column::Bytes,
    Column::Packets,
    Column::SrcPort,
    Column::DstPort,
];

fn column_value(r: &FlowRecord, col: Column) -> u64 {
    match col {
        Column::SrcAddr => u64::from(u32::from(r.key.src_addr)),
        Column::DstAddr => u64::from(u32::from(r.key.dst_addr)),
        Column::SrcPort => u64::from(r.key.src_port),
        Column::DstPort => u64::from(r.key.dst_port),
        Column::Protocol => u64::from(r.key.protocol.number()),
        Column::Start => r.start.unix(),
        Column::Duration => zigzag(r.end.unix() as i64 - r.start.unix() as i64),
        Column::Bytes => r.bytes,
        Column::Packets => r.packets,
        Column::TcpFlags => u64::from(r.tcp_flags.0),
        Column::InputIf => u64::from(r.input_if),
        Column::OutputIf => u64::from(r.output_if),
        Column::SrcAs => u64::from(r.src_as),
        Column::DstAs => u64::from(r.dst_as),
        Column::Direction => match r.direction {
            Direction::Ingress => 0,
            Direction::Egress => 1,
            Direction::Unknown => 2,
        },
    }
}

fn encode_column(records: &[FlowRecord], col: Column, out: &mut Vec<u8>) {
    match col {
        // Raw 4-byte addresses: high entropy, varints would inflate them.
        Column::SrcAddr | Column::DstAddr => {
            for r in records {
                out.put_u32_be(column_value(r, col) as u32);
            }
        }
        // Single-byte enums and flag sets.
        Column::Protocol | Column::TcpFlags | Column::Direction => {
            for r in records {
                out.push(column_value(r, col) as u8);
            }
        }
        // Timestamps: zigzag delta from the previous record's start.
        Column::Start => {
            let mut prev = 0i64;
            for r in records {
                let v = r.start.unix() as i64;
                put_varint(out, zigzag(v - prev));
                prev = v;
            }
        }
        // Everything else: plain varints (Duration is pre-zigzagged).
        _ => {
            for r in records {
                put_varint(out, column_value(r, col));
            }
        }
    }
}

/// Encode one cell's records into a self-contained segment.
pub fn encode_segment(records: &[FlowRecord]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(64 + records.len() * 24);
    write_container_header(&mut buf, SEGMENT_MAGIC, SEGMENT_VERSION, 0);

    buf.push(ALL_COLUMNS.len() as u8);
    let mut col_buf = Vec::new();
    for col in ALL_COLUMNS {
        col_buf.clear();
        encode_column(records, col, &mut col_buf);
        buf.push(col as u8);
        buf.put_u32_be(col_buf.len() as u32);
        buf.extend_from_slice(&col_buf);
    }

    let footer_start = buf.len();
    put_varint(&mut buf, records.len() as u64);
    let min_start = records.iter().map(|r| r.start.unix()).min().unwrap_or(0);
    let max_end = records.iter().map(|r| r.end.unix()).max().unwrap_or(0);
    put_varint(&mut buf, min_start);
    put_varint(&mut buf, max_end);
    buf.push(ZONED.len() as u8);
    for col in ZONED {
        let mut min = u64::MAX;
        let mut max = 0u64;
        for r in records {
            let v = column_value(r, col);
            min = min.min(v);
            max = max.max(v);
        }
        if records.is_empty() {
            min = 0;
        }
        buf.push(col as u8);
        put_varint(&mut buf, min);
        put_varint(&mut buf, max);
    }

    let footer_len = (buf.len() - footer_start) as u32;
    buf.put_u32_be(footer_len);
    let crc = crc32(&buf);
    buf.put_u32_be(crc);
    buf
}

fn corrupt(segment: &str, detail: impl Into<String>) -> StoreError {
    StoreError::Corrupt {
        segment: segment.to_string(),
        detail: detail.into(),
    }
}

fn wire_err(segment: &str, e: lockdown_flow::wire::WireError) -> StoreError {
    corrupt(segment, e.to_string())
}

/// Validate the trailer CRC and return `(footer_start, stored_crc)`.
fn check_trailer(segment: &str, bytes: &[u8]) -> Result<(usize, u32), StoreError> {
    if bytes.len() < 8 + TRAILER_LEN {
        return Err(corrupt(segment, "shorter than header + trailer"));
    }
    let crc_off = bytes.len() - 4;
    let stored = u32::from_be_bytes(bytes[crc_off..].try_into().expect("4 bytes"));
    let actual = crc32(&bytes[..crc_off]);
    if stored != actual {
        return Err(corrupt(
            segment,
            format!("CRC mismatch: stored {stored:#010x}, computed {actual:#010x}"),
        ));
    }
    let flen_off = bytes.len() - TRAILER_LEN;
    let footer_len = u32::from_be_bytes(bytes[flen_off..crc_off].try_into().expect("4 bytes"));
    let footer_start = flen_off
        .checked_sub(footer_len as usize)
        .filter(|&s| s >= 8)
        .ok_or_else(|| corrupt(segment, format!("bad footer length {footer_len}")))?;
    Ok((footer_start, stored))
}

fn parse_footer(segment: &str, bytes: &[u8]) -> Result<SegmentFooter, StoreError> {
    let mut c = Cursor::new(bytes);
    let parse = |c: &mut Cursor<'_>| -> WireResult<SegmentFooter> {
        let records = get_varint(c, "footer records")?;
        let min_start = get_varint(c, "footer min_start")?;
        let max_end = get_varint(c, "footer max_end")?;
        let nzones = c.read_u8("footer zone count")?;
        let mut zones = Vec::with_capacity(nzones as usize);
        for _ in 0..nzones {
            let col = c.read_u8("zone column")?;
            let min = get_varint(c, "zone min")?;
            let max = get_varint(c, "zone max")?;
            zones.push(ZoneMap { col, min, max });
        }
        Ok(SegmentFooter {
            records,
            min_start,
            max_end,
            zones,
        })
    };
    let footer = parse(&mut c).map_err(|e| wire_err(segment, e))?;
    if c.remaining() != 0 {
        return Err(corrupt(segment, "trailing bytes after footer"));
    }
    Ok(footer)
}

/// Read only the footer (CRC-checked): what `store inspect`/`verify` use
/// without materializing records.
pub fn read_footer(segment: &str, bytes: &[u8]) -> Result<SegmentFooter, StoreError> {
    let (footer_start, _) = check_trailer(segment, bytes)?;
    parse_footer(segment, &bytes[footer_start..bytes.len() - TRAILER_LEN])
}

/// Decode a segment back into records, verifying the CRC, the header, and
/// that every column carries exactly the footer's record count.
pub fn decode_segment(
    segment: &str,
    bytes: &[u8],
) -> Result<(Vec<FlowRecord>, SegmentFooter), StoreError> {
    let (footer_start, _) = check_trailer(segment, bytes)?;
    let footer = parse_footer(segment, &bytes[footer_start..bytes.len() - TRAILER_LEN])?;
    let n = usize::try_from(footer.records)
        .map_err(|_| corrupt(segment, "record count exceeds usize"))?;

    let mut c = Cursor::new(&bytes[..footer_start]);
    read_container_header(&mut c, SEGMENT_MAGIC, SEGMENT_VERSION)
        .map_err(|e| wire_err(segment, e))?;
    let ncols = c
        .read_u8("column count")
        .map_err(|e| wire_err(segment, e))?;

    // Column payloads, collected by id so on-disk order is free to change.
    let mut cols: [Option<Cursor<'_>>; 16] = Default::default();
    for _ in 0..ncols {
        let id = c.read_u8("column id").map_err(|e| wire_err(segment, e))?;
        let len = c
            .read_u32("column length")
            .map_err(|e| wire_err(segment, e))? as usize;
        let sub = c
            .sub(len, "column bytes")
            .map_err(|e| wire_err(segment, e))?;
        let slot = cols
            .get_mut(id as usize)
            .ok_or_else(|| corrupt(segment, format!("unknown column id {id}")))?;
        if slot.replace(sub).is_some() {
            return Err(corrupt(segment, format!("duplicate column id {id}")));
        }
    }
    if c.remaining() != 0 {
        return Err(corrupt(segment, "trailing bytes after columns"));
    }

    let mut take = |col: Column| -> Result<Cursor<'_>, StoreError> {
        cols[col as usize]
            .take()
            .ok_or_else(|| corrupt(segment, format!("missing column {col:?}")))
    };
    let mut src_addr = take(Column::SrcAddr)?;
    let mut dst_addr = take(Column::DstAddr)?;
    let mut src_port = take(Column::SrcPort)?;
    let mut dst_port = take(Column::DstPort)?;
    let mut protocol = take(Column::Protocol)?;
    let mut start = take(Column::Start)?;
    let mut duration = take(Column::Duration)?;
    let mut bytes_col = take(Column::Bytes)?;
    let mut packets = take(Column::Packets)?;
    let mut tcp_flags = take(Column::TcpFlags)?;
    let mut input_if = take(Column::InputIf)?;
    let mut output_if = take(Column::OutputIf)?;
    let mut src_as = take(Column::SrcAs)?;
    let mut dst_as = take(Column::DstAs)?;
    let mut direction = take(Column::Direction)?;

    let mut out = Vec::with_capacity(n);
    let mut prev_start = 0i64;
    for _ in 0..n {
        let we = |e: lockdown_flow::wire::WireError| wire_err(segment, e);
        let start_v = prev_start
            .checked_add(unzigzag(get_varint(&mut start, "start delta").map_err(we)?))
            .filter(|&v| v >= 0)
            .ok_or_else(|| corrupt(segment, "start delta out of range"))?;
        prev_start = start_v;
        let dur = unzigzag(get_varint(&mut duration, "duration").map_err(we)?);
        let end_v = (start_v)
            .checked_add(dur)
            .filter(|&v| v >= 0)
            .ok_or_else(|| corrupt(segment, "duration out of range"))?;
        let dir = match direction.read_u8("direction").map_err(we)? {
            0 => Direction::Ingress,
            1 => Direction::Egress,
            2 => Direction::Unknown,
            other => return Err(corrupt(segment, format!("bad direction {other}"))),
        };
        out.push(FlowRecord {
            key: FlowKey {
                src_addr: Ipv4Addr::from(src_addr.read_u32("src_addr").map_err(we)?),
                dst_addr: Ipv4Addr::from(dst_addr.read_u32("dst_addr").map_err(we)?),
                src_port: get_varint(&mut src_port, "src_port").map_err(we)? as u16,
                dst_port: get_varint(&mut dst_port, "dst_port").map_err(we)? as u16,
                protocol: IpProtocol::from_number(protocol.read_u8("protocol").map_err(we)?),
            },
            start: Timestamp::from_unix(start_v as u64),
            end: Timestamp::from_unix(end_v as u64),
            bytes: get_varint(&mut bytes_col, "bytes").map_err(we)?,
            packets: get_varint(&mut packets, "packets").map_err(we)?,
            tcp_flags: TcpFlags(tcp_flags.read_u8("tcp_flags").map_err(we)?),
            input_if: get_varint(&mut input_if, "input_if").map_err(we)? as u16,
            output_if: get_varint(&mut output_if, "output_if").map_err(we)? as u16,
            src_as: get_varint(&mut src_as, "src_as").map_err(we)? as u32,
            dst_as: get_varint(&mut dst_as, "dst_as").map_err(we)? as u32,
            direction: dir,
        });
    }
    for (cur, name) in [
        (&src_addr, "src_addr"),
        (&dst_addr, "dst_addr"),
        (&src_port, "src_port"),
        (&dst_port, "dst_port"),
        (&protocol, "protocol"),
        (&start, "start"),
        (&duration, "duration"),
        (&bytes_col, "bytes"),
        (&packets, "packets"),
        (&tcp_flags, "tcp_flags"),
        (&input_if, "input_if"),
        (&output_if, "output_if"),
        (&src_as, "src_as"),
        (&dst_as, "dst_as"),
        (&direction, "direction"),
    ] {
        if cur.remaining() != 0 {
            return Err(corrupt(
                segment,
                format!("column {name} longer than record count"),
            ));
        }
    }
    Ok((out, footer))
}

#[cfg(test)]
mod tests {
    use super::*;
    use lockdown_flow::time::Date;

    fn sample(n: u32) -> Vec<FlowRecord> {
        let t = Date::new(2020, 3, 25).at_hour(9);
        (0..n)
            .map(|i| {
                FlowRecord::builder(
                    FlowKey {
                        src_addr: Ipv4Addr::from(0xC633_6400 | i),
                        dst_addr: Ipv4Addr::from(0x0A00_0000 | (i * 7)),
                        src_port: (1024 + i * 3) as u16,
                        dst_port: if i % 2 == 0 { 443 } else { 4500 },
                        protocol: if i % 3 == 0 {
                            IpProtocol::Udp
                        } else {
                            IpProtocol::Tcp
                        },
                    },
                    t.add_secs(u64::from(i % 600)),
                )
                .end(t.add_secs(u64::from(i % 600) + u64::from(i % 90)))
                .bytes(1_000 + u64::from(i) * 1_234)
                .packets(1 + u64::from(i % 40))
                .tcp_flags(TcpFlags(i as u8))
                .interfaces(i as u16 % 8, (i as u16 + 1) % 8)
                .asns(64_496 + i, 15_169)
                .direction(match i % 3 {
                    0 => Direction::Ingress,
                    1 => Direction::Egress,
                    _ => Direction::Unknown,
                })
                .build()
            })
            .collect()
    }

    #[test]
    fn roundtrip_is_exact() {
        let records = sample(500);
        let bytes = encode_segment(&records);
        let (decoded, footer) = decode_segment("test", &bytes).unwrap();
        assert_eq!(decoded, records);
        assert_eq!(footer.records, 500);
        assert_eq!(
            footer.min_start,
            records.iter().map(|r| r.start.unix()).min().unwrap()
        );
        assert_eq!(
            footer.max_end,
            records.iter().map(|r| r.end.unix()).max().unwrap()
        );
    }

    #[test]
    fn empty_segment_roundtrips() {
        let bytes = encode_segment(&[]);
        let (decoded, footer) = decode_segment("empty", &bytes).unwrap();
        assert!(decoded.is_empty());
        assert_eq!(footer.records, 0);
        assert_eq!(footer.min_start, 0);
    }

    #[test]
    fn zone_maps_cover_column_ranges() {
        let records = sample(64);
        let bytes = encode_segment(&records);
        let footer = read_footer("test", &bytes).unwrap();
        let zone = |c: Column| {
            footer
                .zones
                .iter()
                .find(|z| z.col == c as u8)
                .copied()
                .unwrap()
        };
        let b = zone(Column::Bytes);
        assert_eq!(b.min, records.iter().map(|r| r.bytes).min().unwrap());
        assert_eq!(b.max, records.iter().map(|r| r.bytes).max().unwrap());
        let p = zone(Column::DstPort);
        assert_eq!(p.min, 443);
        assert_eq!(p.max, 4500);
    }

    #[test]
    fn every_flipped_byte_is_detected() {
        let records = sample(40);
        let bytes = encode_segment(&records);
        // Flip each byte in turn: decode must never silently succeed with
        // different records.
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x40;
            match decode_segment("seg-x", &bad) {
                Err(e) => assert!(e.to_string().contains("seg-x"), "{e}"),
                Ok((decoded, _)) => assert_eq!(decoded, records, "flip at {i} changed data"),
            }
        }
    }

    #[test]
    fn truncation_is_detected() {
        let bytes = encode_segment(&sample(10));
        for cut in [0, 5, 8, bytes.len() - 1] {
            assert!(decode_segment("t", &bytes[..cut]).is_err());
        }
    }
}
