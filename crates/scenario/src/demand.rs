//! The calibrated traffic demand model.
//!
//! For every `(vantage point, application class, date, hour)` this model
//! yields the *expected* traffic volume in Gbps. It composes five factors:
//!
//! 1. the vantage point's nominal peak and the class's base share of its
//!    traffic mix (§4: TCP/443+80 ≈ 80% at the ISP, ≈ 60% at IXP-CE);
//! 2. a diurnal shape per class, morphing from the workday to the
//!    weekend-like lockdown shape as stay-at-home intensity rises (Fig. 2);
//! 3. a per-class COVID growth multiplier keyed on region, lockdown
//!    intensity, day type and hour — calibrated to every growth figure the
//!    paper reports (§4, §5, Fig. 9's heatmaps);
//! 4. a vantage-level factor (mobile dips, roaming collapses — Fig. 1);
//! 5. discrete events: the EU streaming resolution reduction of Mar 19
//!    (§1, §3.2) and the gaming-provider outage in the first lockdown week
//!    at IXP-SE (§5, Fig. 8).
//!
//! The generator draws flows from these expectations; the analysis pipeline
//! recovers the paper's figures from the flows. Nothing in the *analysis*
//! reads this model — calibration numbers flow only through generated
//! traffic.

use crate::apps::AppClass;
use crate::calendar::{day_type, DayType};
use crate::diurnal::{blend, shape, DiurnalProfile};
use crate::measures::{MeasureEvent, ScenarioSpec};
use crate::phases::RegionTimeline;
use lockdown_flow::time::Date;
use lockdown_topology::asn::Region;
use lockdown_topology::vantage::{VantageKind, VantagePoint};

/// The demand model: an interpreter over one scenario's timelines, events
/// and baseline drift. Cheap to construct and `Copy`-free on purpose
/// (benches construct one per run).
#[derive(Debug, Clone)]
pub struct DemandModel {
    timelines: [RegionTimeline; 3],
    events: Vec<MeasureEvent>,
    organic_anchor: Date,
    organic_weekly: f64,
}

impl Default for DemandModel {
    fn default() -> Self {
        Self::new()
    }
}

impl DemandModel {
    /// Build the standard model with the paper's shipped calibration.
    pub fn new() -> DemandModel {
        DemandModel::from_spec(&ScenarioSpec::covid_spring_2020())
    }

    /// Build a model interpreting an arbitrary scenario.
    pub fn from_spec(spec: &ScenarioSpec) -> DemandModel {
        DemandModel {
            timelines: spec.timelines(),
            events: spec.events.clone(),
            organic_anchor: spec.baseline.organic_anchor,
            organic_weekly: spec.baseline.organic_weekly,
        }
    }

    /// The timeline for a region.
    pub fn timeline(&self, region: Region) -> &RegionTimeline {
        match region {
            Region::CentralEurope => &self.timelines[0],
            Region::SouthernEurope => &self.timelines[1],
            Region::UsEast => &self.timelines[2],
        }
    }

    /// Stay-at-home intensity at a vantage point's region on a date.
    pub fn intensity(&self, vp: VantagePoint, date: Date) -> f64 {
        self.timeline(vp.region()).intensity(date)
    }

    /// Intensity as *experienced by this vantage point's traffic*.
    ///
    /// §3.1: once restrictions relax, ISP-CE growth falls back to ~6%
    /// while the IXPs' gains persist — residential behaviour reverts
    /// faster than the wholesale traffic mix. Residential-facing vantage
    /// points therefore discount intensity during the relaxation phase.
    pub fn effective_intensity(&self, vp: VantagePoint, date: Date) -> f64 {
        let tl = self.timeline(vp.region());
        let i = tl.intensity(date);
        match vp.kind() {
            VantageKind::Isp | VantageKind::Mobile | VantageKind::Roaming | VantageKind::Edu => {
                if date >= tl.relaxation {
                    let days = tl.relaxation.days_until(date) as f64;
                    i * (1.0 - tl.curve.reversion * (days / tl.curve.reversion_days).min(1.0))
                } else {
                    i
                }
            }
            _ => i,
        }
    }

    /// Expected volume in Gbps for one class at one vantage point and hour.
    pub fn volume_gbps(&self, vp: VantagePoint, app: AppClass, date: Date, hour: u8) -> f64 {
        let share = app_share(vp, app);
        if share == 0.0 {
            return 0.0;
        }
        let base = vp.peak_gbps() * 0.55; // mean level relative to peak
        let weekend = day_type(date, vp.region()).is_weekend_like();
        let level = if weekend { weekend_level(app) } else { 1.0 };
        base * share
            * level
            * self.diurnal_weight(vp, app, date, hour)
            * self.growth(vp, app, date, hour)
            * self.vantage_factor(vp, date)
            * self.organic_factor(date)
            * self.event_factor(vp, app, date)
    }

    /// Combined multiplier of the scenario's discrete events on this
    /// (vantage, class, date) — events multiply in file order.
    pub fn event_factor(&self, vp: VantagePoint, app: AppClass, date: Date) -> f64 {
        let mut f = 1.0;
        for e in &self.events {
            if e.applies(vp, app, date) {
                f *= e.factor;
            }
        }
        f
    }

    /// The scenario's organic week-over-week baseline drift.
    pub fn organic_factor(&self, date: Date) -> f64 {
        let weeks = self.organic_anchor.days_until(date) as f64 / 7.0;
        self.organic_weekly.powf(weeks)
    }

    /// Expected total volume (all classes) in Gbps.
    pub fn total_volume_gbps(&self, vp: VantagePoint, date: Date, hour: u8) -> f64 {
        AppClass::ALL
            .iter()
            .map(|&a| self.volume_gbps(vp, a, date, hour))
            .sum()
    }

    /// The diurnal weight of a class at an hour, after lockdown morphing.
    pub fn diurnal_weight(&self, vp: VantagePoint, app: AppClass, date: Date, hour: u8) -> f64 {
        let dt = day_type(date, vp.region());
        let i = self.effective_intensity(vp, date);
        let (workday_profile, weekend_profile) = class_profiles(app);
        match dt {
            DayType::Workday => {
                // Under lockdown, workday shapes morph toward the weekend-
                // like lockdown shape (Fig. 2b/2c: almost all days classify
                // as weekend-like from mid-March).
                let lockdown_profile = lockdown_profile_for(app);
                blend(workday_profile, lockdown_profile, i, hour)
            }
            DayType::Weekend | DayType::Holiday => shape(weekend_profile, hour),
        }
    }

    /// COVID growth multiplier for a class. 1.0 = no change vs. baseline.
    pub fn growth(&self, vp: VantagePoint, app: AppClass, date: Date, hour: u8) -> f64 {
        let region = vp.region();
        let i = self.effective_intensity(vp, date);
        if i == 0.0 {
            return 1.0;
        }
        let dt = day_type(date, region);
        let workday = dt == DayType::Workday;
        let work_hours = (9..17).contains(&hour);
        let kind = vp.kind();
        let eu = region != Region::UsEast;

        match app {
            AppClass::Web => 1.0 + 0.15 * i,
            // §4: alternative HTTP ports stay flat in *absolute* volume
            // while total traffic rises — so relative to the growing
            // aggregate they must shed the lockdown growth, not ride it.
            AppClass::AltHttp | AppClass::CloudflareLb => 1.0 - 0.15 * i,
            // §4: QUIC +30–80% at the ISP (morning hours largest), ~+50% at
            // the IXP-CE.
            AppClass::Quic => {
                // The morning boost is the families-at-home effect: a
                // lockdown-workday phenomenon.
                let morning = if workday && (8..13).contains(&hour) {
                    1.0
                } else {
                    0.0
                };
                match kind {
                    // §3.2: the other-AS curve dominates the hypergiants'
                    // in every day part after the lockdown — QUIC (all
                    // hypergiant-served) keeps its morning peak but its
                    // baseline stays below the aggregate's growth.
                    VantageKind::Isp => 1.0 + i * (0.30 + 0.55 * morning),
                    _ => 1.0 + 0.50 * i,
                }
            }
            // §5: Web conferencing "more than 200% during business hours" at
            // all vantage points; weekends too at ISP-CE/IXP-SE/IXP-US.
            AppClass::WebConf => {
                if workday && work_hours {
                    1.0 + 3.2 * i
                } else if workday {
                    1.0 + 1.6 * i
                } else if vp == VantagePoint::IxpCe {
                    1.0 + 0.8 * i
                } else {
                    1.0 + 2.2 * i
                }
            }
            // §5: VoD +~100% at European IXPs, ~+30% at the ISP, decline in
            // the US (traffic-engineering of a large AS).
            AppClass::Vod => match (eu, kind) {
                (true, VantageKind::Ixp) => 1.0 + 1.0 * i,
                // Gross growth; the Mar-19 resolution reduction (event
                // factor) nets this out to the paper's ~+30% at the ISP.
                (true, _) => 1.0 + 0.50 * i,
                (false, VantageKind::Ixp) => 1.0 - 0.25 * i,
                (false, _) => 1.0 + 0.1 * i,
            },
            // §4: TV streaming spreads across the day and grows on weekends
            // in March; a phenomenon of the IXP-CE's international base.
            AppClass::TvStreaming => {
                if vp == VantagePoint::IxpCe {
                    if workday && (9..20).contains(&hour) {
                        1.0 + 0.9 * i
                    } else {
                        1.0 + 0.5 * i
                    }
                } else {
                    1.0 + 0.15 * i
                }
            }
            // §5: strong coherent gaming growth at all three IXPs,
            // throughout the day; only ~10% at the ISP.
            AppClass::Gaming => match kind {
                VantageKind::Ixp => 1.0 + 1.3 * i,
                _ => 1.0 + 0.10 * i,
            },
            // §5: social media spikes in stage 1 and flattens in stage 2
            // (people allowed outside again); ISP-CE sees +70% in stage 1.
            AppClass::SocialMedia => {
                let lockdown = self.timeline(region).lockdown;
                let since = lockdown.days_until(date).max(0) as f64;
                // The novelty pulse decays fast enough that the stage-2
                // analysis week (Apr 9 at the ISP) sits clearly below
                // stage 1 even as overall demand keeps rising (Fig. 9).
                let pulse = (-since / 12.0).exp2();
                1.0 + i * (0.22 + 0.58 * pulse)
            }
            // §5: Europe prefers messaging (>+200%), the US email — and
            // vice versa each *falls* on the other side of the Atlantic.
            AppClass::Messaging => {
                if eu {
                    1.0 + i * if work_hours { 2.5 } else { 2.2 }
                } else {
                    1.0 - 0.50 * i
                }
            }
            AppClass::Email => {
                if eu {
                    // §4: TCP/993 +60% during working hours at the ISP-CE.
                    1.0 + i * if workday && work_hours { 0.65 } else { 0.2 }
                } else {
                    1.0 + i * if work_hours { 1.7 } else { 0.8 }
                }
            }
            // §5: educational traffic +200% at the ISP-CE (NREN-hosted
            // conferencing used from home), stable/slight growth at IXP-CE,
            // significant decrease in the US.
            AppClass::Educational => match (vp, eu) {
                (VantagePoint::IspCe, _) => 1.0 + 2.2 * i,
                (VantagePoint::IxpUs, _) | (_, false) => 1.0 - 0.5 * i,
                (VantagePoint::IxpCe, _) => 1.0 + 0.15 * i,
                _ => 1.0 + 0.3 * i,
            },
            // §5: collaborative working grows mainly at IXP-SE and IXP-US;
            // at the ISP-CE a Thursday/Friday-morning pattern stands out.
            AppClass::CollabWork => {
                let thu_fri_morning = workday
                    && matches!(
                        date.weekday(),
                        lockdown_flow::time::Weekday::Thursday
                            | lockdown_flow::time::Weekday::Friday
                    )
                    && (8..12).contains(&hour);
                match vp {
                    VantagePoint::IxpSe | VantagePoint::IxpUs => {
                        1.0 + i * if work_hours { 1.6 } else { 0.8 }
                    }
                    VantagePoint::IspCe if thu_fri_morning => 1.0 + 1.9 * i,
                    _ => 1.0 + 0.5 * i,
                }
            }
            // §5: CDN grows in Europe, stagnates/declines in the US.
            // §3.2 attributes much of the other-AS growth to CDNs and
            // entertainment providers outside the hypergiant set.
            AppClass::Cdn => {
                if eu {
                    1.0 + 0.62 * i
                } else {
                    1.0 - 0.15 * i
                }
            }
            // §4: road-warrior VPN ports grow during working hours; weekend
            // growth "almost negligible".
            AppClass::VpnUser => {
                if workday && work_hours {
                    1.0 + 0.9 * i
                } else if workday {
                    1.0 + 0.3 * i
                } else {
                    1.0 + 0.05 * i
                }
            }
            // §4: GRE/ESP *decrease* at the IXP-CE after the lockdown while
            // GRE sees a slight increase at the ISP-CE.
            AppClass::VpnSiteToSite => match kind {
                VantageKind::Ixp => 1.0 - 0.40 * i,
                _ => 1.0 + 0.10 * i,
            },
            // §6: domain-identified VPN over TCP/443 grows >200% during
            // working hours in March; weekends less pronounced.
            AppClass::VpnTls => {
                if workday && work_hours {
                    1.0 + 2.6 * i
                } else if workday {
                    1.0 + 1.2 * i
                } else {
                    1.0 + 0.6 * i
                }
            }
            AppClass::UnknownHosting => 1.0 + 0.40 * i,
            AppClass::PushNotif => 1.0 + 0.2 * i,
            AppClass::RemoteDesktop => {
                if workday && work_hours {
                    1.0 + 1.6 * i
                } else {
                    1.0 + 0.5 * i
                }
            }
            AppClass::Ssh => 1.0 + 0.8 * i,
            AppClass::MusicStreaming => 1.0 + 0.5 * i,
            // The unclassified long tail (smaller ASes) grows with people
            // at home — this is the bulk of Fig. 4's "other" curve lift.
            AppClass::Other => 1.0 + 0.40 * i,
        }
    }

    /// Vantage-level demand factor: mobile traffic dips while people sit on
    /// home Wi-Fi; roaming collapses with travel (Fig. 1's bottom curves).
    pub fn vantage_factor(&self, vp: VantagePoint, date: Date) -> f64 {
        let i = self.effective_intensity(vp, date);
        match vp.kind() {
            VantageKind::Mobile => 1.0 - 0.30 * i,
            VantageKind::Roaming => 1.0 - 0.60 * i,
            // The EDU vantage's drastic volume drop is modelled by the
            // dedicated EDU model (crate module `edu`); at the demand level
            // the campus factor removes the on-premise population.
            VantageKind::Edu => 1.0 - 0.52 * i,
            _ => 1.0,
        }
    }
}

/// The shipped calibration's event factor: the EU streaming resolution
/// reduction (Mar 19 on) and its partial lift (May 12, §1); the pre-Mar-9
/// conferencing pre-adoption discount; and the IXP-SE gaming-provider
/// outage in the first lockdown week (Fig. 8: "the accounted volume
/// plunges for two days"). The events themselves are data — see
/// [`ScenarioSpec::covid_spring_2020`]; this free function evaluates them
/// for the shipped scenario (tests use it as a fixed reference).
pub fn event_factor(vp: VantagePoint, app: AppClass, date: Date) -> f64 {
    DemandModel::new().event_factor(vp, app, date)
}

/// The shipped calibration's mild organic week-over-week growth (Fig. 1
/// shows a drifting baseline even before the outbreak; annual Internet
/// growth is ~30%, §9).
pub fn organic_growth(date: Date) -> f64 {
    DemandModel::new().organic_factor(date)
}

/// Weekend volume level of a class relative to its workday level.
///
/// Entertainment runs hotter on weekends, office traffic collapses, the
/// web baseline barely moves — the asymmetry §3.4's workday/weekend-ratio
/// grouping extracts (companies vs. entertainment vs. balanced ASes).
pub fn weekend_level(app: AppClass) -> f64 {
    use AppClass::*;
    match app {
        Vod | Gaming | TvStreaming | SocialMedia | MusicStreaming => 1.30,
        Email | VpnUser | VpnTls | WebConf | CollabWork | RemoteDesktop | Educational | Ssh => 0.40,
        VpnSiteToSite => 0.55,
        _ => 0.95,
    }
}

/// Base share (relative weight) of a class in a vantage point's mix.
/// Weights are normalized so shares sum to 1 per vantage point.
pub fn app_share(vp: VantagePoint, app: AppClass) -> f64 {
    let weights = share_weights(vp.kind());
    let total: f64 = AppClass::ALL.iter().map(|&a| raw_weight(weights, a)).sum();
    raw_weight(weights, app) / total
}

fn raw_weight(weights: &[(AppClass, f64)], app: AppClass) -> f64 {
    weights
        .iter()
        .find(|(a, _)| *a == app)
        .map(|(_, w)| *w)
        .unwrap_or(0.0)
}

/// Raw mix weights per vantage kind. ISP: §4 "TCP/443 and TCP/80 …
/// making up 80% … in traffic at the ISP-CE" (Web + the 443-riding
/// classes); IXP: 60%, with a much longer tail of member traffic.
fn share_weights(kind: VantageKind) -> &'static [(AppClass, f64)] {
    use AppClass::*;
    match kind {
        VantageKind::Isp => &[
            (Web, 0.465),
            (Quic, 0.130),
            (Vod, 0.090),
            (SocialMedia, 0.050),
            (Cdn, 0.070),
            (Gaming, 0.035),
            (TvStreaming, 0.002),
            (WebConf, 0.006),
            (Messaging, 0.012),
            (Email, 0.008),
            (Educational, 0.008),
            (CollabWork, 0.010),
            (VpnUser, 0.012),
            (VpnSiteToSite, 0.008),
            (VpnTls, 0.010),
            (AltHttp, 0.020),
            (CloudflareLb, 0.004),
            (UnknownHosting, 0.010),
            (PushNotif, 0.004),
            (RemoteDesktop, 0.004),
            (Ssh, 0.002),
            (MusicStreaming, 0.012),
            (Other, 0.038),
        ],
        VantageKind::Ixp => &[
            (Web, 0.370),
            (Quic, 0.100),
            (Vod, 0.080),
            (Cdn, 0.100),
            (Gaming, 0.050),
            (TvStreaming, 0.015),
            (SocialMedia, 0.050),
            (WebConf, 0.012),
            (Messaging, 0.010),
            (Email, 0.008),
            (Educational, 0.012),
            (CollabWork, 0.010),
            (VpnUser, 0.012),
            (VpnSiteToSite, 0.040),
            (VpnTls, 0.015),
            (AltHttp, 0.025),
            (CloudflareLb, 0.006),
            (UnknownHosting, 0.020),
            (PushNotif, 0.004),
            (RemoteDesktop, 0.005),
            (Ssh, 0.003),
            (MusicStreaming, 0.010),
            (Other, 0.043),
        ],
        VantageKind::Edu => &[
            (Web, 0.500),
            (Quic, 0.090),
            (Educational, 0.090),
            (Email, 0.040),
            (Ssh, 0.020),
            (RemoteDesktop, 0.012),
            (VpnUser, 0.020),
            (PushNotif, 0.012),
            (MusicStreaming, 0.020),
            (Cdn, 0.050),
            (SocialMedia, 0.030),
            (Vod, 0.030),
            (Gaming, 0.015),
            (Messaging, 0.008),
            (CollabWork, 0.008),
            (VpnTls, 0.008),
            (Other, 0.047),
        ],
        VantageKind::Mobile | VantageKind::Roaming => &[
            (Web, 0.430),
            (Quic, 0.200),
            (Vod, 0.090),
            (SocialMedia, 0.120),
            (Messaging, 0.030),
            (PushNotif, 0.020),
            (Gaming, 0.030),
            (MusicStreaming, 0.020),
            (Email, 0.010),
            (Cdn, 0.020),
            (Other, 0.030),
        ],
    }
}

/// Workday/weekend diurnal profile pair per class.
fn class_profiles(app: AppClass) -> (DiurnalProfile, DiurnalProfile) {
    use DiurnalProfile::*;
    match app {
        AppClass::Web | AppClass::Quic | AppClass::Cdn | AppClass::SocialMedia => {
            (ResidentialWorkday, ResidentialWeekend)
        }
        AppClass::Vod | AppClass::TvStreaming | AppClass::MusicStreaming => {
            (EveningEntertainment, ResidentialWeekend)
        }
        AppClass::Gaming => (GamingEvening, ResidentialWeekend),
        AppClass::WebConf
        | AppClass::CollabWork
        | AppClass::Email
        | AppClass::VpnUser
        | AppClass::VpnTls
        | AppClass::RemoteDesktop => (BusinessHours, ResidentialWeekend),
        AppClass::Educational | AppClass::Ssh => (Campus, ResidentialWeekend),
        AppClass::VpnSiteToSite | AppClass::CloudflareLb | AppClass::PushNotif => (Flat, Flat),
        AppClass::AltHttp | AppClass::UnknownHosting | AppClass::Messaging | AppClass::Other => {
            (ResidentialWorkday, ResidentialWeekend)
        }
    }
}

/// Profile a class's *workday* shape morphs toward under lockdown.
fn lockdown_profile_for(app: AppClass) -> DiurnalProfile {
    use DiurnalProfile::*;
    match app {
        // Business-hours classes keep business hours (people still work,
        // just from home) — their shape is not weekend-morphing.
        AppClass::WebConf
        | AppClass::CollabWork
        | AppClass::Email
        | AppClass::VpnUser
        | AppClass::VpnTls
        | AppClass::RemoteDesktop => BusinessHours,
        AppClass::Educational | AppClass::Ssh => BusinessHours,
        AppClass::VpnSiteToSite | AppClass::CloudflareLb | AppClass::PushNotif => Flat,
        // Entertainment and general residential traffic spreads across the
        // day: the Fig. 2a/3a lockdown shape.
        _ => ResidentialLockdown,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> DemandModel {
        DemandModel::new()
    }

    /// Mean daily volume of a vantage point on a date.
    fn daily(m: &DemandModel, vp: VantagePoint, date: Date) -> f64 {
        (0..24)
            .map(|h| m.total_volume_gbps(vp, date, h))
            .sum::<f64>()
            / 24.0
    }

    /// Weekly mean centred on a Wednesday.
    fn weekly(m: &DemandModel, vp: VantagePoint, wednesday: Date) -> f64 {
        (-2..5)
            .map(|d| daily(m, vp, wednesday.add_days(d)))
            .sum::<f64>()
            / 7.0
    }

    #[test]
    fn shares_sum_to_one() {
        for vp in VantagePoint::ALL {
            let sum: f64 = AppClass::ALL.iter().map(|&a| app_share(vp, a)).sum();
            assert!((sum - 1.0).abs() < 1e-9, "{vp}: shares sum to {sum}");
        }
    }

    #[test]
    fn web_dominates_everywhere() {
        // §4: TCP/443+80 ≈ 80% at the ISP (Web + VoD + social + CDN all ride
        // those ports), ≈ 60% at the IXP.
        let isp_web: f64 = [
            AppClass::Web,
            AppClass::Vod,
            AppClass::SocialMedia,
            AppClass::Cdn,
            AppClass::Educational,
            AppClass::CollabWork,
            AppClass::VpnTls,
        ]
        .iter()
        .map(|&a| app_share(VantagePoint::IspCe, a))
        .sum();
        assert!(
            isp_web > 0.60 && isp_web < 0.80,
            "ISP web-port share {isp_web}"
        );
    }

    #[test]
    fn isp_lockdown_growth_matches_paper() {
        // §3.1: ISP-CE grows >20% after the lockdown (stage 1/2)…
        let m = model();
        let base = weekly(&m, VantagePoint::IspCe, Date::new(2020, 2, 19));
        let stage1 = weekly(&m, VantagePoint::IspCe, Date::new(2020, 3, 25));
        let growth = stage1 / base - 1.0;
        assert!(
            (0.15..0.40).contains(&growth),
            "ISP stage-1 growth = {:.3}",
            growth
        );
        // …and relaxes to ~6% by mid-May.
        let stage3 = weekly(&m, VantagePoint::IspCe, Date::new(2020, 5, 13));
        let late = stage3 / base - 1.0;
        assert!(
            late < growth * 0.75,
            "ISP growth must decay: {late} vs {growth}"
        );
    }

    #[test]
    fn ixp_ce_growth_persists() {
        let m = model();
        let base = weekly(&m, VantagePoint::IxpCe, Date::new(2020, 2, 19));
        let stage1 = weekly(&m, VantagePoint::IxpCe, Date::new(2020, 3, 25));
        let stage3 = weekly(&m, VantagePoint::IxpCe, Date::new(2020, 5, 13));
        let g1 = stage1 / base - 1.0;
        let g3 = stage3 / base - 1.0;
        assert!(g1 > 0.18, "IXP-CE stage-1 growth = {g1}");
        assert!(g3 > 0.12, "IXP-CE growth must persist, got {g3}");
    }

    #[test]
    fn ixp_us_growth_is_delayed() {
        let m = model();
        let base = weekly(&m, VantagePoint::IxpUs, Date::new(2020, 2, 19));
        let march = weekly(&m, VantagePoint::IxpUs, Date::new(2020, 3, 18));
        let april = weekly(&m, VantagePoint::IxpUs, Date::new(2020, 4, 22));
        let g_mar = march / base - 1.0;
        let g_apr = april / base - 1.0;
        assert!(g_mar < 0.12, "US March growth should be small: {g_mar}");
        assert!(
            g_apr > g_mar + 0.03,
            "US April must exceed March: {g_apr} vs {g_mar}"
        );
    }

    #[test]
    fn mobile_dips_roaming_collapses() {
        let m = model();
        let base = weekly(&m, VantagePoint::MobileCe, Date::new(2020, 2, 19));
        let apr = weekly(&m, VantagePoint::MobileCe, Date::new(2020, 4, 1));
        assert!(apr < base, "mobile traffic should dip");
        let rbase = weekly(&m, VantagePoint::RoamingIpx, Date::new(2020, 2, 19));
        let rapr = weekly(&m, VantagePoint::RoamingIpx, Date::new(2020, 4, 1));
        assert!(
            rapr / rbase < 0.75,
            "roaming should collapse: {}",
            rapr / rbase
        );
    }

    #[test]
    fn webconf_exceeds_200_percent_in_business_hours() {
        let m = model();
        let g = m.growth(
            VantagePoint::IxpCe,
            AppClass::WebConf,
            Date::new(2020, 4, 1),
            11,
        );
        assert!(g > 3.0, "Webconf growth {g} must exceed 200%");
        // Weekend growth at IXP-CE is much smaller.
        let gw = m.growth(
            VantagePoint::IxpCe,
            AppClass::WebConf,
            Date::new(2020, 4, 4),
            11,
        );
        assert!(gw < g / 2.0);
    }

    #[test]
    fn messaging_email_antipattern() {
        let m = model();
        let d = Date::new(2020, 4, 1);
        let eu_msg = m.growth(VantagePoint::IxpCe, AppClass::Messaging, d, 11);
        let us_msg = m.growth(VantagePoint::IxpUs, AppClass::Messaging, d, 11);
        let eu_mail = m.growth(VantagePoint::IxpCe, AppClass::Email, d, 11);
        let us_mail = m.growth(VantagePoint::IxpUs, AppClass::Email, d, 11);
        assert!(
            eu_msg > 3.0 && us_msg < 1.0,
            "messaging: EU {eu_msg}, US {us_msg}"
        );
        assert!(
            us_mail > 2.0 && eu_mail < 1.8,
            "email: EU {eu_mail}, US {us_mail}"
        );
    }

    #[test]
    fn vod_resolution_reduction_dips_then_lifts() {
        let d_pre = Date::new(2020, 3, 18);
        let d_in = Date::new(2020, 4, 1);
        let d_post = Date::new(2020, 5, 13);
        assert_eq!(event_factor(VantagePoint::IxpCe, AppClass::Vod, d_pre), 1.0);
        assert!(event_factor(VantagePoint::IxpCe, AppClass::Vod, d_in) < 1.0);
        assert_eq!(
            event_factor(VantagePoint::IxpCe, AppClass::Vod, d_post),
            1.0
        );
        // US streams were not degraded.
        assert_eq!(event_factor(VantagePoint::IxpUs, AppClass::Vod, d_in), 1.0);
    }

    #[test]
    fn gaming_outage_at_ixp_se_only() {
        let d = Date::new(2020, 3, 16);
        assert!(event_factor(VantagePoint::IxpSe, AppClass::Gaming, d) < 0.2);
        assert_eq!(event_factor(VantagePoint::IxpCe, AppClass::Gaming, d), 1.0);
        assert_eq!(
            event_factor(
                VantagePoint::IxpSe,
                AppClass::Gaming,
                Date::new(2020, 3, 20)
            ),
            1.0
        );
    }

    #[test]
    fn social_media_pulse_decays() {
        let m = model();
        let g_early = m.growth(
            VantagePoint::IspCe,
            AppClass::SocialMedia,
            Date::new(2020, 3, 24),
            20,
        );
        let g_late = m.growth(
            VantagePoint::IspCe,
            AppClass::SocialMedia,
            Date::new(2020, 4, 28),
            20,
        );
        assert!(g_early > 1.4, "stage-1 social growth {g_early}");
        assert!(g_late < g_early, "social pulse must decay");
        assert!(g_late > 1.05, "some growth persists");
    }

    #[test]
    fn vpn_tls_grows_port_vpn_mixed() {
        let m = model();
        let d = Date::new(2020, 3, 25);
        let tls = m.growth(VantagePoint::IxpCe, AppClass::VpnTls, d, 11);
        assert!(tls > 3.0, "domain-identified VPN {tls}");
        // Port-based aggregate ≈ flat at the IXP: user VPN up, GRE/ESP down.
        let user = m.growth(VantagePoint::IxpCe, AppClass::VpnUser, d, 11);
        let s2s = m.growth(VantagePoint::IxpCe, AppClass::VpnSiteToSite, d, 11);
        assert!(user > 1.5);
        assert!(s2s < 0.9);
        let user_share = app_share(VantagePoint::IxpCe, AppClass::VpnUser);
        let s2s_share = app_share(VantagePoint::IxpCe, AppClass::VpnSiteToSite);
        let agg = (user * user_share + s2s * s2s_share) / (user_share + s2s_share);
        assert!((0.8..1.35).contains(&agg), "port-based aggregate {agg}");
    }

    #[test]
    fn diurnal_morphs_to_weekend_like() {
        let m = model();
        // Pre-lockdown workday at 10:00: low. Lockdown workday: high.
        let pre = m.diurnal_weight(
            VantagePoint::IspCe,
            AppClass::Web,
            Date::new(2020, 2, 19),
            10,
        );
        let post = m.diurnal_weight(
            VantagePoint::IspCe,
            AppClass::Web,
            Date::new(2020, 3, 25),
            10,
        );
        assert!(
            post > 1.3 * pre,
            "morning weight must rise: {pre} -> {post}"
        );
        // Evening peaks comparable.
        let pre_e = m.diurnal_weight(
            VantagePoint::IspCe,
            AppClass::Web,
            Date::new(2020, 2, 19),
            21,
        );
        let post_e = m.diurnal_weight(
            VantagePoint::IspCe,
            AppClass::Web,
            Date::new(2020, 3, 25),
            21,
        );
        // Shapes are mean-normalized, so the evening weight of the flatter
        // lockdown profile sits a bit below the workday one; Fig. 2a's
        // "roughly the same volume during evening" comes from growth ×
        // shape, checked in the integration tests.
        assert!((post_e / pre_e - 1.0).abs() < 0.25);
    }

    #[test]
    fn volume_positive_and_finite() {
        let m = model();
        for vp in VantagePoint::ALL {
            for d in [
                Date::new(2020, 1, 10),
                Date::new(2020, 3, 25),
                Date::new(2020, 5, 15),
            ] {
                for h in [0u8, 6, 12, 18, 23] {
                    let v = m.total_volume_gbps(vp, d, h);
                    assert!(v.is_finite() && v > 0.0, "{vp} {d:?} {h}: {v}");
                }
            }
        }
    }

    #[test]
    fn organic_growth_is_mild() {
        let g = organic_growth(Date::new(2020, 5, 17));
        assert!(g > 1.0 && g < 1.10, "organic growth to May = {g}");
        assert!(organic_growth(Date::new(2020, 1, 1)) < 1.0);
    }
}
