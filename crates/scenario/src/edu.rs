//! The educational-network (§7) behavioural model.
//!
//! The EDU vantage point is "antagonistic, yet complementary" to the
//! residential ones: when campuses close (Mar 11), on-campus demand — and
//! with it the *incoming* content volume — collapses, while *incoming
//! connections* from users working at home surge. This module models the
//! per-class, per-direction expected volumes and connection counts the §7
//! analysis recovers, including:
//!
//! * workday volume drop of up to 55%, slight weekend increase (Fig. 11a);
//! * ingress/egress volume ratio collapsing from ~15× (Fig. 11b);
//! * median daily connections +24%; incoming ×2, outgoing ×½;
//! * per-class incoming connection growth: web 1.7×, email 1.8×, VPN 4.8×,
//!   remote desktop 5.9×, SSH 9.1× (Fig. 12);
//! * outgoing collapses: push notifications −65%, Spotify −83%,
//!   hypergiant web and QUIC below pre-COVID weekend levels;
//! * night/overseas access patterns (Latin-American students, 3–4 am peak).

use crate::calendar::{day_type, DayType};
use crate::diurnal::{shape, DiurnalProfile};
use crate::phases::RegionTimeline;
use lockdown_flow::time::Date;
use serde::{Deserialize, Serialize};

/// Traffic classes tracked in the §7 connection-level analysis
/// (Appendix B, condensed to the classes Fig. 12 plots plus the ones the
/// prose quotes growth factors for).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum EduClass {
    /// Web served *by* the universities (incoming from eyeballs).
    WebIn,
    /// Web fetched by on-campus clients (outgoing).
    WebOut,
    /// Outgoing web to hypergiants specifically.
    HypergiantWebOut,
    /// Outgoing QUIC.
    QuicOut,
    /// Incoming email connections.
    EmailIn,
    /// Incoming VPN connections.
    VpnIn,
    /// Incoming remote-desktop connections.
    RemoteDesktopIn,
    /// Incoming SSH connections.
    SshIn,
    /// Outgoing push-notification/mobile-services connections.
    PushNotifOut,
    /// Outgoing Spotify connections.
    SpotifyOut,
}

impl EduClass {
    /// All tracked classes.
    pub const ALL: [EduClass; 10] = [
        EduClass::WebIn,
        EduClass::WebOut,
        EduClass::HypergiantWebOut,
        EduClass::QuicOut,
        EduClass::EmailIn,
        EduClass::VpnIn,
        EduClass::RemoteDesktopIn,
        EduClass::SshIn,
        EduClass::PushNotifOut,
        EduClass::SpotifyOut,
    ];

    /// Whether this class counts *incoming* connections.
    pub fn is_incoming(self) -> bool {
        matches!(
            self,
            EduClass::WebIn
                | EduClass::EmailIn
                | EduClass::VpnIn
                | EduClass::RemoteDesktopIn
                | EduClass::SshIn
        )
    }

    /// Baseline median daily connections (relative units; only ratios
    /// matter for Fig. 12, which normalizes to Feb 27).
    pub fn base_daily_connections(self) -> f64 {
        match self {
            EduClass::WebIn => 900_000.0,
            EduClass::WebOut => 4_000_000.0,
            EduClass::HypergiantWebOut => 1_800_000.0,
            EduClass::QuicOut => 900_000.0,
            EduClass::EmailIn => 300_000.0,
            EduClass::VpnIn => 25_000.0,
            EduClass::RemoteDesktopIn => 8_000.0,
            EduClass::SshIn => 30_000.0,
            EduClass::PushNotifOut => 500_000.0,
            EduClass::SpotifyOut => 120_000.0,
        }
    }

    /// Asymptotic growth factor once fully in the online-lecturing regime
    /// (§7's quoted medians).
    pub fn lockdown_factor(self) -> f64 {
        match self {
            EduClass::WebIn => 1.7,
            EduClass::WebOut => 0.45,
            EduClass::HypergiantWebOut => 0.30,
            EduClass::QuicOut => 0.28,
            EduClass::EmailIn => 1.8,
            EduClass::VpnIn => 4.8,
            EduClass::RemoteDesktopIn => 5.9,
            EduClass::SshIn => 9.1,
            EduClass::PushNotifOut => 0.35,
            EduClass::SpotifyOut => 0.17,
        }
    }

    /// Report label.
    pub fn label(self) -> &'static str {
        match self {
            EduClass::WebIn => "Eyeball ISPs (Web, In)",
            EduClass::WebOut => "Web (Out)",
            EduClass::HypergiantWebOut => "Hypergiants (Web, Out)",
            EduClass::QuicOut => "QUIC (Out)",
            EduClass::EmailIn => "Eyeball ISPs (Email, In)",
            EduClass::VpnIn => "Eyeball ISPs (VPN, In)",
            EduClass::RemoteDesktopIn => "Remote desktop (In)",
            EduClass::SshIn => "SSH (In)",
            EduClass::PushNotifOut => "Push notifications (Out)",
            EduClass::SpotifyOut => "Spotify (Out)",
        }
    }
}

/// The EDU behavioural model: an interpreter over a scenario's
/// educational-system measures.
#[derive(Debug, Clone)]
pub struct EduModel {
    timeline: RegionTimeline,
    /// Campus closure date: Mar 11 (announced Mar 9, §7).
    pub closure: Date,
    /// Campus-presence loss per day after the closure.
    winddown_per_day: f64,
    /// Skeleton-crew presence floor.
    presence_floor: f64,
    /// Days for teaching to move fully online.
    remote_ramp_days: f64,
}

impl Default for EduModel {
    fn default() -> Self {
        Self::new()
    }
}

impl EduModel {
    /// Standard model (Southern-Europe timeline, Mar 11 closure).
    pub fn new() -> EduModel {
        EduModel::from_spec(&crate::measures::ScenarioSpec::covid_spring_2020())
    }

    /// Build a model interpreting an arbitrary scenario's `[edu]` block.
    pub fn from_spec(spec: &crate::measures::ScenarioSpec) -> EduModel {
        EduModel {
            timeline: spec.region(spec.edu.region).timeline(),
            closure: spec.edu.closure,
            winddown_per_day: spec.edu.winddown_per_day,
            presence_floor: spec.edu.presence_floor,
            remote_ramp_days: spec.edu.remote_ramp_days,
        }
    }

    /// Campus-presence factor in `[0, 1]`: 1 = normal occupancy.
    /// Only critical-maintenance staff remain after the closure.
    pub fn campus_presence(&self, date: Date) -> f64 {
        if date < self.closure {
            1.0
        } else {
            // Sharp wind-down to the skeleton crew.
            let days = self.closure.days_until(date) as f64;
            (1.0 - self.winddown_per_day * days).max(self.presence_floor)
        }
    }

    /// Remote-activity factor: 0 before closure, ramping to 1 as teaching
    /// moves online over the ramp window.
    pub fn remote_activity(&self, date: Date) -> f64 {
        if date < self.closure {
            0.0
        } else {
            (self.closure.days_until(date) as f64 / self.remote_ramp_days).min(1.0)
        }
    }

    /// Expected (ingress, egress) volume in Gbps for one hour.
    ///
    /// Ingress is content flowing *into* the network — pre-COVID this is
    /// campus users fetching the Internet, up to 15× egress on workdays.
    /// Egress is content served out of the universities, which grows with
    /// remote access.
    pub fn volume_gbps(&self, date: Date, hour: u8) -> (f64, f64) {
        let dt = day_type(date, self.timeline.region);
        let presence = self.campus_presence(date);
        let remote = self.remote_activity(date);

        // On-campus demand follows the campus profile on workdays; weekends
        // were always low-occupancy.
        let campus_shape = match dt {
            DayType::Workday => shape(DiurnalProfile::Campus, hour),
            _ => 0.25 * shape(DiurnalProfile::ResidentialWeekend, hour),
        };
        // Remote users hit the campus servers on a spread-out schedule:
        // national users by day/evening, overseas students overnight
        // (§7: Latin-American peak from midnight to 7 am).
        let remote_shape = 0.65 * shape(DiurnalProfile::BusinessHours, hour)
            + 0.15 * shape(DiurnalProfile::ResidentialLockdown, hour)
            + 0.20 * shape(DiurnalProfile::OverseasNight, hour);
        // Weekend remote work runs below workday levels.
        let remote_scale = if dt == DayType::Workday { 1.0 } else { 0.9 };

        let campus_in = 22.0 * campus_shape * presence; // content pulled in
        let campus_out = 1.5 * campus_shape * presence; // campus serving out
        let remote_in = 1.5 * remote_shape * remote * remote_scale; // uploads, VPN in
        let remote_out = 5.5 * remote_shape * remote * remote_scale; // material out
        let infra_in = 1.2; // automated systems keep running
        let infra_out = 0.4;

        (
            campus_in + remote_in + infra_in,
            campus_out + remote_out + infra_out,
        )
    }

    /// Expected daily total volume in Gbps-days (mean of hourly volumes).
    pub fn daily_volume_gbps(&self, date: Date) -> f64 {
        (0..24)
            .map(|h| {
                let (i, e) = self.volume_gbps(date, h);
                i + e
            })
            .sum::<f64>()
            / 24.0
    }

    /// Expected daily connection count for one class (Fig. 12's unit,
    /// before normalization to Feb 27).
    pub fn daily_connections(&self, class: EduClass, date: Date) -> f64 {
        let dt = day_type(date, self.timeline.region);
        let base = class.base_daily_connections();
        // Weekends always ran at a fraction of workday activity.
        let weekend_scale = if dt.is_weekend_like() { 0.45 } else { 1.0 };
        let presence = self.campus_presence(date);
        let remote = self.remote_activity(date);

        let factor = class.lockdown_factor();
        let level = if class.is_incoming() {
            // Incoming connections: campus-era level plus the remote surge.
            presence + remote * factor
        } else {
            // Outgoing connections track people on campus, with a floor
            // from automated systems; the lockdown factor is the asymptote.
            presence * (1.0 - factor).max(0.0) + factor
        };
        base * weekend_scale * level
    }

    /// Total daily connections across classes, split (incoming, outgoing).
    pub fn total_daily_connections(&self, date: Date) -> (f64, f64) {
        let mut inc = 0.0;
        let mut out = 0.0;
        for c in EduClass::ALL {
            let n = self.daily_connections(c, date);
            if c.is_incoming() {
                inc += n;
            } else {
                out += n;
            }
        }
        (inc, out)
    }

    /// The lockdown timeline used (exposed for analysis alignment).
    pub fn timeline(&self) -> &RegionTimeline {
        &self.timeline
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> EduModel {
        EduModel::new()
    }

    #[test]
    fn presence_collapses_after_closure() {
        let m = model();
        assert_eq!(m.campus_presence(Date::new(2020, 3, 10)), 1.0);
        assert!(m.campus_presence(Date::new(2020, 3, 20)) < 0.1);
    }

    #[test]
    fn workday_volume_drops_by_half() {
        // Fig. 11a: up to −55% on Tue/Wed between base and later weeks.
        let m = model();
        let base = m.daily_volume_gbps(Date::new(2020, 3, 3)); // Tue base week
        let online = m.daily_volume_gbps(Date::new(2020, 4, 21)); // Tue online
        let drop = 1.0 - online / base;
        assert!(
            (0.40..0.65).contains(&drop),
            "workday volume drop = {drop:.3}"
        );
    }

    #[test]
    fn weekend_volume_rises_slightly() {
        let m = model();
        let base = m.daily_volume_gbps(Date::new(2020, 2, 29)); // Sat base
        let online = m.daily_volume_gbps(Date::new(2020, 4, 18)); // Sat online
        let change = online / base - 1.0;
        assert!(
            (0.0..0.40).contains(&change),
            "weekend volume change = {change:.3}"
        );
    }

    #[test]
    fn in_out_ratio_collapses() {
        // Fig. 11b: ~15× on workdays before, far smaller after.
        let m = model();
        let ratio = |d: Date| {
            let (i, e): (f64, f64) = (0..24)
                .map(|h| m.volume_gbps(d, h))
                .fold((0.0, 0.0), |(a, b), (i, e)| (a + i, b + e));
            i / e
        };
        let before = ratio(Date::new(2020, 3, 3));
        let after = ratio(Date::new(2020, 4, 21));
        assert!(before > 10.0, "pre-closure in/out ratio = {before:.1}");
        assert!(after < before / 3.0, "ratio must collapse: {after:.1}");
    }

    #[test]
    fn night_hours_gain() {
        // §7: +11% to +24% between 9 pm and 7 am (overseas students).
        let m = model();
        let night_sum = |d: Date| -> f64 {
            (0..24)
                .filter(|h| *h >= 21 || *h < 7)
                .map(|h| {
                    let (i, e) = m.volume_gbps(d, h);
                    i + e
                })
                .sum()
        };
        let base = night_sum(Date::new(2020, 3, 3));
        let online = night_sum(Date::new(2020, 4, 21));
        let change = online / base - 1.0;
        assert!(change > 0.0 && change < 0.6, "night change = {change:.3}");
    }

    #[test]
    fn connection_growth_factors() {
        let m = model();
        let base = Date::new(2020, 2, 27); // §7 baseline day (Thu)
        let online = Date::new(2020, 4, 23); // Thu, online regime
        for (class, lo, hi) in [
            (EduClass::WebIn, 1.4, 2.0),
            (EduClass::EmailIn, 1.5, 2.1),
            (EduClass::VpnIn, 3.5, 5.5),
            (EduClass::RemoteDesktopIn, 4.5, 6.5),
            (EduClass::SshIn, 7.0, 10.0),
        ] {
            let g = m.daily_connections(class, online) / m.daily_connections(class, base);
            assert!(
                (lo..hi).contains(&g),
                "{}: growth {g:.2} outside [{lo}, {hi}]",
                class.label()
            );
        }
    }

    #[test]
    fn outgoing_collapses() {
        let m = model();
        let base = Date::new(2020, 2, 27);
        let online = Date::new(2020, 4, 23);
        let g = |c: EduClass| m.daily_connections(c, online) / m.daily_connections(c, base);
        assert!(
            g(EduClass::SpotifyOut) < 0.30,
            "Spotify {}",
            g(EduClass::SpotifyOut)
        );
        assert!(
            g(EduClass::PushNotifOut) < 0.50,
            "push {}",
            g(EduClass::PushNotifOut)
        );
        assert!(
            g(EduClass::WebOut) < 0.65,
            "web out {}",
            g(EduClass::WebOut)
        );
    }

    #[test]
    fn incoming_doubles_outgoing_halves() {
        // §7: median incoming ×2, outgoing ×½ after the state of emergency.
        let m = model();
        let (bi, bo) = m.total_daily_connections(Date::new(2020, 3, 4));
        let (oi, oo) = m.total_daily_connections(Date::new(2020, 4, 22));
        let gi = oi / bi;
        let go = oo / bo;
        assert!((1.5..2.6).contains(&gi), "incoming growth {gi:.2}");
        assert!((0.3..0.7).contains(&go), "outgoing shrink {go:.2}");
    }

    #[test]
    fn hypergiant_out_below_precovid_weekend() {
        // §7: outgoing hypergiant web/QUIC fall below pre-COVID *weekend*
        // levels.
        let m = model();
        let pre_weekend = m.daily_connections(EduClass::HypergiantWebOut, Date::new(2020, 2, 29));
        let online_workday =
            m.daily_connections(EduClass::HypergiantWebOut, Date::new(2020, 4, 21));
        assert!(online_workday < pre_weekend);
        let q_pre = m.daily_connections(EduClass::QuicOut, Date::new(2020, 2, 29));
        let q_post = m.daily_connections(EduClass::QuicOut, Date::new(2020, 4, 21));
        assert!(q_post < q_pre);
    }
}
