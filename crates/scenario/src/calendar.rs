//! The 2020 study calendar: day types, holidays, and the exact analysis
//! weeks the paper selects.

use lockdown_flow::time::Date;
use lockdown_topology::asn::Region;
use serde::{Deserialize, Serialize};

/// Classification of a civil day for traffic purposes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DayType {
    /// Monday–Friday, not a holiday.
    Workday,
    /// Saturday/Sunday.
    Weekend,
    /// Public holiday — traffic behaves weekend-like. The paper explicitly
    /// categorizes the Easter holidays (April 10–13) as weekend days (§4).
    Holiday,
}

impl DayType {
    /// Whether traffic on this day follows the weekend regime.
    pub fn is_weekend_like(self) -> bool {
        !matches!(self, DayType::Workday)
    }
}

/// First day of the study window (the paper's plots start Jan 1).
pub fn study_start() -> Date {
    Date::new(2020, 1, 1)
}

/// Last day of the study window (Fig. 2 runs to May 11; Fig. 3 stage 3 to
/// May 17).
pub fn study_end() -> Date {
    Date::new(2020, 5, 17)
}

/// Public holidays observed in the study regions during the window.
///
/// Only holidays that shape the paper's figures are modelled: the New Year
/// period (the "Christmas holiday effect" that makes week 1 unusable as a
/// baseline) and Easter (categorized as weekend days in §4's ISP analysis;
/// visible as a shaded break in Fig. 12).
pub fn is_holiday(date: Date, region: Region) -> bool {
    let y = date.year;
    if y != 2020 {
        return false;
    }
    // New Year / Christmas-break tail: Jan 1–6 (Epiphany Jan 6 is a holiday
    // in parts of Central and Southern Europe; US only Jan 1).
    let new_year_end = match region {
        Region::UsEast => Date::new(2020, 1, 1),
        _ => Date::new(2020, 1, 6),
    };
    if date >= Date::new(2020, 1, 1) && date <= new_year_end {
        return true;
    }
    // Easter 2020: Good Friday Apr 10 – Easter Monday Apr 13 (Europe).
    // The US markets do not observe Easter Monday.
    let easter_end = match region {
        Region::UsEast => Date::new(2020, 4, 12),
        _ => Date::new(2020, 4, 13),
    };
    date >= Date::new(2020, 4, 10) && date <= easter_end
}

/// Day type of a date in a region.
pub fn day_type(date: Date, region: Region) -> DayType {
    if is_holiday(date, region) {
        DayType::Holiday
    } else if date.weekday().is_weekend() {
        DayType::Weekend
    } else {
        DayType::Workday
    }
}

/// One of the paper's selected analysis weeks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct AnalysisWeek {
    /// The paper's name for the week ("base", "stage1", …).
    pub label: &'static str,
    /// First day of the 7-day window.
    pub start: Date,
}

impl AnalysisWeek {
    /// The 7 dates of this week, starting at `start`.
    pub fn dates(&self) -> Vec<Date> {
        (0..7).map(|i| self.start.add_days(i)).collect()
    }

    /// Inclusive end date.
    pub fn end(&self) -> Date {
        self.start.add_days(6)
    }

    /// Whether a date falls in this week.
    pub fn contains(&self, date: Date) -> bool {
        date >= self.start && date <= self.end()
    }
}

/// Fig. 3 week selection: "February 19–26 … March 18–25 … April 23–29 …
/// May 10–17" (base / stage 1 / stage 2 / stage 3). The figure legends for
/// the ISP run Thu–Wed starting Feb 19 (a Wednesday); we anchor each week
/// at the paper's first named day.
pub const FIG3_WEEKS: [AnalysisWeek; 4] = [
    AnalysisWeek {
        label: "base",
        start: Date {
            year: 2020,
            month: 2,
            day: 19,
        },
    },
    AnalysisWeek {
        label: "stage1",
        start: Date {
            year: 2020,
            month: 3,
            day: 18,
        },
    },
    AnalysisWeek {
        label: "stage2",
        start: Date {
            year: 2020,
            month: 4,
            day: 22,
        },
    },
    AnalysisWeek {
        label: "stage3",
        start: Date {
            year: 2020,
            month: 5,
            day: 10,
        },
    },
];

/// §4 port-analysis weeks at the ISP-CE: Feb 20–26, Mar 19–25, Apr 9–15.
pub const PORTS_ISP_WEEKS: [AnalysisWeek; 3] = [
    AnalysisWeek {
        label: "february",
        start: Date {
            year: 2020,
            month: 2,
            day: 20,
        },
    },
    AnalysisWeek {
        label: "march",
        start: Date {
            year: 2020,
            month: 3,
            day: 19,
        },
    },
    AnalysisWeek {
        label: "april",
        start: Date {
            year: 2020,
            month: 4,
            day: 9,
        },
    },
];

/// §4/§5 weeks at the IXPs: Feb 20–26, Mar 19–25 (§5 uses Mar 12), Apr 23–29.
pub const PORTS_IXP_WEEKS: [AnalysisWeek; 3] = [
    AnalysisWeek {
        label: "february",
        start: Date {
            year: 2020,
            month: 2,
            day: 20,
        },
    },
    AnalysisWeek {
        label: "march",
        start: Date {
            year: 2020,
            month: 3,
            day: 19,
        },
    },
    AnalysisWeek {
        label: "april",
        start: Date {
            year: 2020,
            month: 4,
            day: 23,
        },
    },
];

/// §5 application-class weeks for the IXPs: "Feb 20, Mar 12, Apr 23".
pub const APPCLASS_IXP_WEEKS: [AnalysisWeek; 3] = [
    AnalysisWeek {
        label: "base",
        start: Date {
            year: 2020,
            month: 2,
            day: 20,
        },
    },
    AnalysisWeek {
        label: "stage1",
        start: Date {
            year: 2020,
            month: 3,
            day: 12,
        },
    },
    AnalysisWeek {
        label: "stage2",
        start: Date {
            year: 2020,
            month: 4,
            day: 23,
        },
    },
];

/// §5 application-class weeks for the ISP: "Feb 20, Mar 19, Apr 9".
pub const APPCLASS_ISP_WEEKS: [AnalysisWeek; 3] = [
    AnalysisWeek {
        label: "base",
        start: Date {
            year: 2020,
            month: 2,
            day: 20,
        },
    },
    AnalysisWeek {
        label: "stage1",
        start: Date {
            year: 2020,
            month: 3,
            day: 19,
        },
    },
    AnalysisWeek {
        label: "stage2",
        start: Date {
            year: 2020,
            month: 4,
            day: 9,
        },
    },
];

/// §7 EDU weeks: baseline Feb 27–Mar 4, transition Mar 12–18,
/// online-lecturing Apr 16–22.
pub const EDU_WEEKS: [AnalysisWeek; 3] = [
    AnalysisWeek {
        label: "base",
        start: Date {
            year: 2020,
            month: 2,
            day: 27,
        },
    },
    AnalysisWeek {
        label: "transition",
        start: Date {
            year: 2020,
            month: 3,
            day: 12,
        },
    },
    AnalysisWeek {
        label: "online-lecturing",
        start: Date {
            year: 2020,
            month: 4,
            day: 16,
        },
    },
];

#[cfg(test)]
mod tests {
    use super::*;
    use lockdown_flow::time::Weekday;

    #[test]
    fn easter_is_holiday_in_europe() {
        for d in [10, 11, 12, 13] {
            assert_eq!(
                day_type(Date::new(2020, 4, d), Region::CentralEurope),
                DayType::Holiday
            );
        }
        // Easter Monday is a workday in the US model.
        assert_eq!(
            day_type(Date::new(2020, 4, 13), Region::UsEast),
            DayType::Workday
        );
    }

    #[test]
    fn ordinary_days() {
        assert_eq!(
            day_type(Date::new(2020, 2, 19), Region::CentralEurope),
            DayType::Workday
        );
        assert_eq!(
            day_type(Date::new(2020, 2, 22), Region::CentralEurope),
            DayType::Weekend
        );
    }

    #[test]
    fn new_year_week() {
        assert_eq!(
            day_type(Date::new(2020, 1, 1), Region::UsEast),
            DayType::Holiday
        );
        assert_eq!(
            day_type(Date::new(2020, 1, 6), Region::SouthernEurope),
            DayType::Holiday
        );
        assert_eq!(
            day_type(Date::new(2020, 1, 6), Region::UsEast),
            DayType::Workday // Monday, not a US holiday
        );
    }

    #[test]
    fn weekend_like() {
        assert!(DayType::Holiday.is_weekend_like());
        assert!(DayType::Weekend.is_weekend_like());
        assert!(!DayType::Workday.is_weekend_like());
    }

    #[test]
    fn analysis_week_shape() {
        let w = FIG3_WEEKS[0];
        assert_eq!(w.label, "base");
        assert_eq!(w.start.weekday(), Weekday::Wednesday);
        assert_eq!(w.dates().len(), 7);
        assert!(w.contains(Date::new(2020, 2, 25)));
        assert!(!w.contains(Date::new(2020, 2, 26))); // Feb 19 + 6 = Feb 25
    }

    #[test]
    fn edu_weeks_match_paper() {
        assert_eq!(EDU_WEEKS[0].start, Date::new(2020, 2, 27));
        assert_eq!(EDU_WEEKS[1].end(), Date::new(2020, 3, 18));
        assert_eq!(EDU_WEEKS[2].start, Date::new(2020, 4, 16));
    }

    #[test]
    fn study_window() {
        assert!(study_start() < study_end());
        assert_eq!(study_start().days_until(study_end()), 137);
    }
}
