//! Lockdown phases per region, with the dates the paper anchors on.
//!
//! The demand model needs to know, for every (region, date), how far into
//! the lockdown a population is: traffic growth tracks the *behavioural*
//! intensity of stay-at-home measures, ramping up over the first lockdown
//! week and relaxing gradually from late April (Central Europe: shop
//! re-openings mid-April, school openings in May, §1; Southern Europe:
//! school closure Mar 11, state of emergency Mar 14, §7; US East Coast:
//! lockdown "later", §3.1).
//!
//! Since the scenario DSL landed, this module is an *interpreter*: the
//! dates and curve parameters live in [`crate::measures`] (authorable as
//! TOML), and [`RegionTimeline`] merely evaluates the piecewise intensity
//! curve they describe. [`RegionTimeline::for_region`] returns the shipped
//! COVID spring-2020 calibration.

use lockdown_flow::time::Date;
use lockdown_topology::asn::Region;
use serde::{Deserialize, Serialize};

/// Coarse phase of the pandemic response.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LockdownPhase {
    /// Before the outbreak influenced behaviour.
    PreCovid,
    /// Outbreak known, behaviour beginning to change (Europe: from late
    /// January, week 4–5 in Fig. 1).
    Outbreak,
    /// Initial responses: advisories, event cancellations, first closures.
    InitialResponse,
    /// Full stay-at-home lockdown.
    Lockdown,
    /// Gradual relaxation ("containment" in Fig. 1): shops, later schools.
    Relaxation,
}

/// Parameters of the piecewise behavioural-intensity curve.
///
/// Every constant of the old hard-coded curve is a field here, so a
/// scenario file can re-shape the response without touching code — and so
/// the shipped COVID calibration ([`IntensityCurve::paper`]) evaluates
/// *bit-identically* to the pre-DSL literals.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IntensityCurve {
    /// Intensity reached as awareness builds (end of the outbreak phase).
    pub awareness_gain: f64,
    /// Additional intensity gained across the initial-response window.
    pub restrictions_gain: f64,
    /// Intensity on the first day of the stay-at-home order.
    pub stay_home_from: f64,
    /// Additional intensity gained over the stay-at-home ramp.
    pub stay_home_gain: f64,
    /// Days the stay-at-home ramp takes to saturate.
    pub stay_home_ramp_days: f64,
    /// Intensity released (from 1.0) across the reopening window.
    pub reopening_release: f64,
    /// Days the reopening decay runs before flooring.
    pub reopening_days: f64,
    /// Intensity floor during reopening (behaviour only partially reverts).
    pub reopening_floor: f64,
    /// Residential reversion fraction applied by the demand model once
    /// reopening starts (§3.1: ISP growth falls back faster than IXPs').
    pub reversion: f64,
    /// Days over which the residential reversion saturates.
    pub reversion_days: f64,
}

impl IntensityCurve {
    /// The paper's calibration (identical to the pre-DSL constants).
    pub const fn paper() -> IntensityCurve {
        IntensityCurve {
            awareness_gain: 0.10,
            restrictions_gain: 0.30,
            stay_home_from: 0.40,
            stay_home_gain: 0.60,
            stay_home_ramp_days: 4.0,
            reopening_release: 0.55,
            reopening_days: 42.0,
            reopening_floor: 0.45,
            reversion: 0.70,
            reversion_days: 28.0,
        }
    }
}

/// The date anchors of one region's timeline, plus its intensity curve.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RegionTimeline {
    /// The region this timeline describes.
    pub region: Region,
    /// Outbreak becomes publicly salient.
    pub outbreak: Date,
    /// First closures/advisories.
    pub initial_response: Date,
    /// Stay-at-home lockdown in force.
    pub lockdown: Date,
    /// First relaxation steps.
    pub relaxation: Date,
    /// Parameters of the behavioural-intensity curve.
    pub curve: IntensityCurve,
}

impl RegionTimeline {
    /// The timeline for a region, from the paper's narrative — the shipped
    /// COVID spring-2020 calibration (see
    /// [`crate::measures::ScenarioSpec::covid_spring_2020`] for the
    /// narrative behind each date).
    pub fn for_region(region: Region) -> RegionTimeline {
        crate::measures::ScenarioSpec::covid_spring_2020()
            .region(region)
            .timeline()
    }

    /// Phase in force on a date.
    pub fn phase(&self, date: Date) -> LockdownPhase {
        if date < self.outbreak {
            LockdownPhase::PreCovid
        } else if date < self.initial_response {
            LockdownPhase::Outbreak
        } else if date < self.lockdown {
            LockdownPhase::InitialResponse
        } else if date < self.relaxation {
            LockdownPhase::Lockdown
        } else {
            LockdownPhase::Relaxation
        }
    }

    /// Behavioural stay-at-home intensity in `[0, 1]`.
    ///
    /// 0 = normal life, 1 = full lockdown compliance. Ramps linearly over
    /// the first week of each escalation and decays slowly during
    /// relaxation (the paper: "once the lockdown was further relaxed …
    /// the growth decreased to 6% for the ISP-CE but persisted for the
    /// IXP-CE", i.e. behaviour only partially reverts within the window).
    pub fn intensity(&self, date: Date) -> f64 {
        let c = &self.curve;
        match self.phase(date) {
            LockdownPhase::PreCovid => 0.0,
            LockdownPhase::Outbreak => {
                // Slow drift up to the awareness gain as awareness builds.
                let total = self.outbreak.days_until(self.initial_response) as f64;
                let done = self.outbreak.days_until(date) as f64;
                c.awareness_gain * (done / total.max(1.0)).clamp(0.0, 1.0)
            }
            LockdownPhase::InitialResponse => {
                // awareness → awareness + restrictions across the window.
                let total = self.initial_response.days_until(self.lockdown) as f64;
                let done = self.initial_response.days_until(date) as f64;
                c.awareness_gain + c.restrictions_gain * (done / total.max(1.0)).clamp(0.0, 1.0)
            }
            LockdownPhase::Lockdown => {
                // Ramp to 1.0 over the first days, then hold (the paper's
                // week-over-week jump at the lockdown is sharp).
                let done = self.lockdown.days_until(date) as f64;
                (c.stay_home_from + c.stay_home_gain * (done / c.stay_home_ramp_days))
                    .clamp(0.0, 1.0)
            }
            LockdownPhase::Relaxation => {
                // Decay from 1.0 toward the floor: much of the behaviour
                // change persists within the study window.
                let done = self.relaxation.days_until(date) as f64;
                (1.0 - c.reopening_release * (done / c.reopening_days))
                    .clamp(c.reopening_floor, 1.0)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_progression_central_europe() {
        let t = RegionTimeline::for_region(Region::CentralEurope);
        assert_eq!(t.phase(Date::new(2020, 1, 15)), LockdownPhase::PreCovid);
        assert_eq!(t.phase(Date::new(2020, 2, 10)), LockdownPhase::Outbreak);
        assert_eq!(
            t.phase(Date::new(2020, 3, 10)),
            LockdownPhase::InitialResponse
        );
        assert_eq!(t.phase(Date::new(2020, 3, 25)), LockdownPhase::Lockdown);
        assert_eq!(t.phase(Date::new(2020, 5, 1)), LockdownPhase::Relaxation);
    }

    #[test]
    fn us_lockdown_trails_europe() {
        let ce = RegionTimeline::for_region(Region::CentralEurope);
        let us = RegionTimeline::for_region(Region::UsEast);
        assert!(us.lockdown > ce.lockdown);
        // Mid-April: US still in full lockdown while CE is about to relax.
        let apr25 = Date::new(2020, 4, 25);
        assert_eq!(us.phase(apr25), LockdownPhase::Lockdown);
        assert_eq!(ce.phase(apr25), LockdownPhase::Relaxation);
    }

    #[test]
    fn intensity_monotone_through_lockdown() {
        let t = RegionTimeline::for_region(Region::CentralEurope);
        let mut last = -1.0;
        let mut d = Date::new(2020, 1, 1);
        while d <= t.relaxation {
            let i = t.intensity(d);
            assert!(i >= last - 1e-9, "intensity dipped at {}", d.iso());
            assert!((0.0..=1.0).contains(&i));
            last = i;
            d = d.add_days(1);
        }
    }

    #[test]
    fn intensity_saturates_and_relaxes() {
        let t = RegionTimeline::for_region(Region::CentralEurope);
        assert_eq!(t.intensity(Date::new(2020, 1, 10)), 0.0);
        assert!((t.intensity(Date::new(2020, 4, 1)) - 1.0).abs() < 1e-9);
        let may = t.intensity(Date::new(2020, 5, 15));
        assert!(may < 1.0 && may > 0.45, "relaxation intensity = {may}");
    }

    #[test]
    fn southern_europe_locks_down_before_central() {
        let se = RegionTimeline::for_region(Region::SouthernEurope);
        let ce = RegionTimeline::for_region(Region::CentralEurope);
        assert!(se.lockdown < ce.lockdown);
    }

    #[test]
    fn intensity_is_bit_identical_to_the_pre_dsl_literals() {
        // The old hard-coded curve, kept verbatim as the safety rail.
        fn old_intensity(t: &RegionTimeline, date: Date) -> f64 {
            match t.phase(date) {
                LockdownPhase::PreCovid => 0.0,
                LockdownPhase::Outbreak => {
                    let total = t.outbreak.days_until(t.initial_response) as f64;
                    let done = t.outbreak.days_until(date) as f64;
                    0.10 * (done / total.max(1.0)).clamp(0.0, 1.0)
                }
                LockdownPhase::InitialResponse => {
                    let total = t.initial_response.days_until(t.lockdown) as f64;
                    let done = t.initial_response.days_until(date) as f64;
                    0.10 + 0.30 * (done / total.max(1.0)).clamp(0.0, 1.0)
                }
                LockdownPhase::Lockdown => {
                    let done = t.lockdown.days_until(date) as f64;
                    (0.40 + 0.60 * (done / 4.0)).clamp(0.0, 1.0)
                }
                LockdownPhase::Relaxation => {
                    let done = t.relaxation.days_until(date) as f64;
                    (1.0 - 0.55 * (done / 42.0)).clamp(0.45, 1.0)
                }
            }
        }
        for region in Region::ALL {
            let t = RegionTimeline::for_region(region);
            let mut d = Date::new(2020, 1, 1);
            while d <= Date::new(2020, 6, 30) {
                assert_eq!(
                    t.intensity(d).to_bits(),
                    old_intensity(&t, d).to_bits(),
                    "{region:?} {}",
                    d.iso()
                );
                d = d.add_days(1);
            }
        }
    }
}
