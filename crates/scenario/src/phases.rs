//! Lockdown phases per region, with the dates the paper anchors on.
//!
//! The demand model needs to know, for every (region, date), how far into
//! the lockdown a population is: traffic growth tracks the *behavioural*
//! intensity of stay-at-home measures, ramping up over the first lockdown
//! week and relaxing gradually from late April (Central Europe: shop
//! re-openings mid-April, school openings in May, §1; Southern Europe:
//! school closure Mar 11, state of emergency Mar 14, §7; US East Coast:
//! lockdown "later", §3.1).

use lockdown_flow::time::Date;
use lockdown_topology::asn::Region;
use serde::{Deserialize, Serialize};

/// Coarse phase of the pandemic response.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LockdownPhase {
    /// Before the outbreak influenced behaviour.
    PreCovid,
    /// Outbreak known, behaviour beginning to change (Europe: from late
    /// January, week 4–5 in Fig. 1).
    Outbreak,
    /// Initial responses: advisories, event cancellations, first closures.
    InitialResponse,
    /// Full stay-at-home lockdown.
    Lockdown,
    /// Gradual relaxation ("containment" in Fig. 1): shops, later schools.
    Relaxation,
}

/// The date anchors of one region's timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RegionTimeline {
    /// The region this timeline describes.
    pub region: Region,
    /// Outbreak becomes publicly salient.
    pub outbreak: Date,
    /// First closures/advisories.
    pub initial_response: Date,
    /// Stay-at-home lockdown in force.
    pub lockdown: Date,
    /// First relaxation steps.
    pub relaxation: Date,
}

impl RegionTimeline {
    /// The timeline for a region, from the paper's narrative.
    pub fn for_region(region: Region) -> RegionTimeline {
        match region {
            // "The COVID-19 outbreak reached Europe in late January (week 4)
            // and first lockdowns were imposed in early March (week 10)" —
            // Central Europe locked down in week 12 (Mar 16–22); shops
            // reopened mid-April, schools in May.
            Region::CentralEurope => RegionTimeline {
                region,
                outbreak: Date::new(2020, 1, 27),
                initial_response: Date::new(2020, 3, 9),
                lockdown: Date::new(2020, 3, 16),
                relaxation: Date::new(2020, 4, 20),
            },
            // §7: closure of the educational system announced Mar 9,
            // effective Mar 11; national state of emergency Mar 14.
            Region::SouthernEurope => RegionTimeline {
                region,
                outbreak: Date::new(2020, 1, 31),
                initial_response: Date::new(2020, 3, 9),
                lockdown: Date::new(2020, 3, 14),
                relaxation: Date::new(2020, 4, 27),
            },
            // "The traffic increase at the IXP at US East Coast trails the
            // other data sources as the lockdown occurred later" — NY-area
            // stay-at-home orders arrived Mar 22, and restrictions persisted
            // past the study window.
            Region::UsEast => RegionTimeline {
                region,
                outbreak: Date::new(2020, 2, 25),
                initial_response: Date::new(2020, 3, 16),
                lockdown: Date::new(2020, 3, 22),
                relaxation: Date::new(2020, 5, 15),
            },
        }
    }

    /// Phase in force on a date.
    pub fn phase(&self, date: Date) -> LockdownPhase {
        if date < self.outbreak {
            LockdownPhase::PreCovid
        } else if date < self.initial_response {
            LockdownPhase::Outbreak
        } else if date < self.lockdown {
            LockdownPhase::InitialResponse
        } else if date < self.relaxation {
            LockdownPhase::Lockdown
        } else {
            LockdownPhase::Relaxation
        }
    }

    /// Behavioural stay-at-home intensity in `[0, 1]`.
    ///
    /// 0 = normal life, 1 = full lockdown compliance. Ramps linearly over
    /// the first week of each escalation and decays slowly during
    /// relaxation (the paper: "once the lockdown was further relaxed …
    /// the growth decreased to 6% for the ISP-CE but persisted for the
    /// IXP-CE", i.e. behaviour only partially reverts within the window).
    pub fn intensity(&self, date: Date) -> f64 {
        match self.phase(date) {
            LockdownPhase::PreCovid => 0.0,
            LockdownPhase::Outbreak => {
                // Slow drift up to 0.1 as awareness builds.
                let total = self.outbreak.days_until(self.initial_response) as f64;
                let done = self.outbreak.days_until(date) as f64;
                0.10 * (done / total.max(1.0)).clamp(0.0, 1.0)
            }
            LockdownPhase::InitialResponse => {
                // 0.1 → 0.4 across the response window.
                let total = self.initial_response.days_until(self.lockdown) as f64;
                let done = self.initial_response.days_until(date) as f64;
                0.10 + 0.30 * (done / total.max(1.0)).clamp(0.0, 1.0)
            }
            LockdownPhase::Lockdown => {
                // Ramp 0.4 → 1.0 over the first 4 days, then hold (the
                // paper's week-over-week jump at the lockdown is sharp).
                let done = self.lockdown.days_until(date) as f64;
                (0.40 + 0.60 * (done / 4.0)).clamp(0.0, 1.0)
            }
            LockdownPhase::Relaxation => {
                // Decay from 1.0 toward 0.45 over ~6 weeks: much of the
                // behaviour change persists within the study window.
                let done = self.relaxation.days_until(date) as f64;
                (1.0 - 0.55 * (done / 42.0)).clamp(0.45, 1.0)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_progression_central_europe() {
        let t = RegionTimeline::for_region(Region::CentralEurope);
        assert_eq!(t.phase(Date::new(2020, 1, 15)), LockdownPhase::PreCovid);
        assert_eq!(t.phase(Date::new(2020, 2, 10)), LockdownPhase::Outbreak);
        assert_eq!(
            t.phase(Date::new(2020, 3, 10)),
            LockdownPhase::InitialResponse
        );
        assert_eq!(t.phase(Date::new(2020, 3, 25)), LockdownPhase::Lockdown);
        assert_eq!(t.phase(Date::new(2020, 5, 1)), LockdownPhase::Relaxation);
    }

    #[test]
    fn us_lockdown_trails_europe() {
        let ce = RegionTimeline::for_region(Region::CentralEurope);
        let us = RegionTimeline::for_region(Region::UsEast);
        assert!(us.lockdown > ce.lockdown);
        // Mid-April: US still in full lockdown while CE is about to relax.
        let apr25 = Date::new(2020, 4, 25);
        assert_eq!(us.phase(apr25), LockdownPhase::Lockdown);
        assert_eq!(ce.phase(apr25), LockdownPhase::Relaxation);
    }

    #[test]
    fn intensity_monotone_through_lockdown() {
        let t = RegionTimeline::for_region(Region::CentralEurope);
        let mut last = -1.0;
        let mut d = Date::new(2020, 1, 1);
        while d <= t.relaxation {
            let i = t.intensity(d);
            assert!(i >= last - 1e-9, "intensity dipped at {}", d.iso());
            assert!((0.0..=1.0).contains(&i));
            last = i;
            d = d.add_days(1);
        }
    }

    #[test]
    fn intensity_saturates_and_relaxes() {
        let t = RegionTimeline::for_region(Region::CentralEurope);
        assert_eq!(t.intensity(Date::new(2020, 1, 10)), 0.0);
        assert!((t.intensity(Date::new(2020, 4, 1)) - 1.0).abs() < 1e-9);
        let may = t.intensity(Date::new(2020, 5, 15));
        assert!(may < 1.0 && may > 0.45, "relaxation intensity = {may}");
    }

    #[test]
    fn southern_europe_locks_down_before_central() {
        let se = RegionTimeline::for_region(Region::SouthernEurope);
        let ce = RegionTimeline::for_region(Region::CentralEurope);
        assert!(se.lockdown < ce.lockdown);
    }
}
