//! Declarative scenario specifications: dated measures + discrete events.
//!
//! This module is the data the rest of the crate interprets. A
//! [`ScenarioSpec`] describes one intervention regime — per-region dated
//! measures (awareness, restrictions, stay-at-home orders, reopenings by
//! percentage), the educational-system closure, a baseline organic-growth
//! drift, and discrete [`MeasureEvent`]s (resolution reductions, provider
//! outages, flash crowds). The shipped spring-2020 calibration is both a
//! built-in ([`ScenarioSpec::covid_spring_2020`]) and a TOML file
//! (`scenarios/covid-spring-2020.toml`); a golden test pins the two to be
//! equal, and the interpreter layers (`phases`, `demand`, `edu`) evaluate
//! a spec bit-identically to the pre-DSL hard-coded model.
//!
//! Scenario files are parsed by the in-crate TOML subset parser
//! ([`crate::toml`]); every parse or validation error names the offending
//! source line.

use crate::phases::{IntensityCurve, RegionTimeline};
use crate::toml::{self, Entry, Table, Value};
use lockdown_flow::time::Date;
use lockdown_topology::asn::Region;
use lockdown_topology::vantage::{VantageKind, VantagePoint};

use crate::apps::AppClass;

/// A scenario-file error, carrying the 1-based line it occurred on
/// (0 when the spec was built programmatically and has no source).
#[derive(Debug, Clone, PartialEq)]
pub struct SpecError {
    /// 1-based source line (0 = no source text).
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.line == 0 {
            write!(f, "{}", self.message)
        } else {
            write!(f, "line {}: {}", self.line, self.message)
        }
    }
}

impl std::error::Error for SpecError {}

impl From<toml::ParseError> for SpecError {
    fn from(e: toml::ParseError) -> SpecError {
        SpecError {
            line: e.line,
            message: e.message,
        }
    }
}

fn spec_err<T>(line: usize, message: impl Into<String>) -> Result<T, SpecError> {
    Err(SpecError {
        line,
        message: message.into(),
    })
}

/// Baseline (non-intervention) drift parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BaselineSpec {
    /// Anchor date of the organic-growth power curve.
    pub organic_anchor: Date,
    /// Week-over-week organic growth factor (1.0035 ≈ the paper's drifting
    /// pre-outbreak baseline, §9's ~30% annual growth).
    pub organic_weekly: f64,
}

/// One region's dated measures and curve parameters.
///
/// The four dates are strictly ordered (awareness < restrictions <
/// stay-at-home < reopening); [`RegionMeasures::timeline`] lowers them to
/// the [`RegionTimeline`] interpreter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RegionMeasures {
    /// The region these measures apply to.
    pub region: Region,
    /// Outbreak becomes publicly salient; awareness starts building.
    pub awareness: Date,
    /// Intensity reached by the end of the awareness build-up.
    pub awareness_gain: f64,
    /// First closures/advisories (schools, large events).
    pub restrictions: Date,
    /// Additional intensity gained across the restrictions window.
    pub restrictions_gain: f64,
    /// Stay-at-home order in force.
    pub stay_home: Date,
    /// Intensity on the order's first day.
    pub stay_home_from: f64,
    /// Additional intensity gained over the stay-at-home ramp.
    pub stay_home_gain: f64,
    /// Days the stay-at-home ramp takes to saturate.
    pub stay_home_ramp_days: f64,
    /// First partial reopening.
    pub reopening: Date,
    /// Intensity released across the reopening window.
    pub reopening_release: f64,
    /// Days the reopening decay runs before flooring.
    pub reopening_days: f64,
    /// Intensity floor during reopening.
    pub reopening_floor: f64,
    /// Residential reversion fraction once reopening starts (§3.1).
    pub reversion: f64,
    /// Days over which the residential reversion saturates.
    pub reversion_days: f64,
}

impl RegionMeasures {
    /// Lower these measures to the timeline interpreter.
    pub fn timeline(&self) -> RegionTimeline {
        RegionTimeline {
            region: self.region,
            outbreak: self.awareness,
            initial_response: self.restrictions,
            lockdown: self.stay_home,
            relaxation: self.reopening,
            curve: IntensityCurve {
                awareness_gain: self.awareness_gain,
                restrictions_gain: self.restrictions_gain,
                stay_home_from: self.stay_home_from,
                stay_home_gain: self.stay_home_gain,
                stay_home_ramp_days: self.stay_home_ramp_days,
                reopening_release: self.reopening_release,
                reopening_days: self.reopening_days,
                reopening_floor: self.reopening_floor,
                reversion: self.reversion,
                reversion_days: self.reversion_days,
            },
        }
    }
}

/// The educational-system measures (§7's campus model).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EduSpec {
    /// Region whose timeline the campus follows.
    pub region: Region,
    /// Campus closure date (announced Mar 9, effective Mar 11, §7).
    pub closure: Date,
    /// Campus-presence loss per day after the closure.
    pub winddown_per_day: f64,
    /// Skeleton-crew presence floor.
    pub presence_floor: f64,
    /// Days for teaching to move fully online.
    pub remote_ramp_days: f64,
}

/// A discrete multiplicative event: an outage, a resolution reduction, a
/// flash crowd. Applies its `factor` to the demanded volume of every
/// matching (vantage point, application class, date).
///
/// Empty scope lists match everything; a populated list restricts the
/// event to its members. `start` is inclusive, `until` exclusive; `None`
/// leaves that end open. Events multiply in file order.
#[derive(Debug, Clone, PartialEq)]
pub struct MeasureEvent {
    /// Event name (kebab-case by convention; shown in listings).
    pub name: String,
    /// First day the event applies (inclusive); open start when `None`.
    pub start: Option<Date>,
    /// First day the event no longer applies (exclusive); open end when
    /// `None`.
    pub until: Option<Date>,
    /// Volume multiplier (< 1 = outage/degradation, > 1 = flash crowd).
    pub factor: f64,
    /// Application classes in scope (empty = all).
    pub classes: Vec<AppClass>,
    /// Regions in scope (empty = all).
    pub regions: Vec<Region>,
    /// Vantage kinds in scope (empty = all).
    pub kinds: Vec<VantageKind>,
    /// Specific vantage points in scope (empty = all).
    pub vantages: Vec<VantagePoint>,
}

impl MeasureEvent {
    /// Whether the event applies to this (vantage, class, date).
    pub fn applies(&self, vp: VantagePoint, app: AppClass, date: Date) -> bool {
        if let Some(s) = self.start {
            if date < s {
                return false;
            }
        }
        if let Some(u) = self.until {
            if date >= u {
                return false;
            }
        }
        (self.classes.is_empty() || self.classes.contains(&app))
            && (self.regions.is_empty() || self.regions.contains(&vp.region()))
            && (self.kinds.is_empty() || self.kinds.contains(&vp.kind()))
            && (self.vantages.is_empty() || self.vantages.contains(&vp))
    }
}

/// A complete scenario: baseline drift, per-region measures, the campus
/// closure, and discrete events.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSpec {
    /// Scenario name (kebab-case by convention).
    pub name: String,
    /// One-line description for listings.
    pub description: String,
    /// Baseline drift parameters.
    pub baseline: BaselineSpec,
    /// Per-region measures — exactly one entry per [`Region`].
    pub regions: Vec<RegionMeasures>,
    /// Educational-system measures.
    pub edu: EduSpec,
    /// Discrete events, applied in order.
    pub events: Vec<MeasureEvent>,
}

impl ScenarioSpec {
    /// The shipped spring-2020 calibration, from the paper's narrative.
    ///
    /// Dates: "the COVID-19 outbreak reached Europe in late January (week
    /// 4) and first lockdowns were imposed in early March (week 10)" —
    /// Central Europe locked down in week 12 (Mar 16–22), shops reopened
    /// mid-April; Southern Europe closed schools Mar 11 and declared a
    /// state of emergency Mar 14 (§7); the US East Coast trailed, with
    /// NY-area stay-at-home orders from Mar 22 (§3.1).
    pub fn covid_spring_2020() -> ScenarioSpec {
        let c = IntensityCurve::paper();
        let measures = |region, awareness, restrictions, stay_home, reopening| RegionMeasures {
            region,
            awareness,
            awareness_gain: c.awareness_gain,
            restrictions,
            restrictions_gain: c.restrictions_gain,
            stay_home,
            stay_home_from: c.stay_home_from,
            stay_home_gain: c.stay_home_gain,
            stay_home_ramp_days: c.stay_home_ramp_days,
            reopening,
            reopening_release: c.reopening_release,
            reopening_days: c.reopening_days,
            reopening_floor: c.reopening_floor,
            reversion: c.reversion,
            reversion_days: c.reversion_days,
        };
        ScenarioSpec {
            name: "covid-spring-2020".to_string(),
            description: "The paper's calibration: European lockdowns in March 2020, \
                          the US East Coast trailing, relaxation from late April"
                .to_string(),
            baseline: BaselineSpec {
                organic_anchor: Date::new(2020, 1, 15),
                organic_weekly: 1.0035,
            },
            regions: vec![
                measures(
                    Region::CentralEurope,
                    Date::new(2020, 1, 27),
                    Date::new(2020, 3, 9),
                    Date::new(2020, 3, 16),
                    Date::new(2020, 4, 20),
                ),
                measures(
                    Region::SouthernEurope,
                    Date::new(2020, 1, 31),
                    Date::new(2020, 3, 9),
                    Date::new(2020, 3, 14),
                    Date::new(2020, 4, 27),
                ),
                measures(
                    Region::UsEast,
                    Date::new(2020, 2, 25),
                    Date::new(2020, 3, 16),
                    Date::new(2020, 3, 22),
                    Date::new(2020, 5, 15),
                ),
            ],
            edu: EduSpec {
                region: Region::SouthernEurope,
                closure: Date::new(2020, 3, 11),
                winddown_per_day: 0.31,
                presence_floor: 0.07,
                remote_ramp_days: 14.0,
            },
            events: vec![
                // §4: Zoom "became commonly used in Europe only with the
                // lockdown"; the ISP's February conferencing baseline is
                // pre-adoption.
                MeasureEvent {
                    name: "webconf-pre-adoption".to_string(),
                    start: None,
                    until: Some(Date::new(2020, 3, 9)),
                    factor: 0.55,
                    classes: vec![AppClass::WebConf],
                    regions: vec![Region::CentralEurope, Region::SouthernEurope],
                    kinds: vec![VantageKind::Isp],
                    vantages: vec![],
                },
                // §1, §3.2: the EU streaming resolution reduction of Mar 19
                // (SD instead of HD for the big streamers), lifted May 12.
                MeasureEvent {
                    name: "streaming-resolution-reduction".to_string(),
                    start: Some(Date::new(2020, 3, 19)),
                    until: Some(Date::new(2020, 5, 12)),
                    factor: 0.88,
                    classes: vec![AppClass::Vod, AppClass::Quic],
                    regions: vec![Region::CentralEurope, Region::SouthernEurope],
                    kinds: vec![],
                    vantages: vec![],
                },
                // §5, Fig. 8: the gaming-provider outage in the first
                // lockdown week at IXP-SE ("the accounted volume plunges
                // for two days").
                MeasureEvent {
                    name: "gaming-provider-outage".to_string(),
                    start: Some(Date::new(2020, 3, 16)),
                    until: Some(Date::new(2020, 3, 18)),
                    factor: 0.15,
                    classes: vec![AppClass::Gaming],
                    regions: vec![],
                    kinds: vec![],
                    vantages: vec![VantagePoint::IxpSe],
                },
            ],
        }
    }

    /// The measures for a region. Panics when absent — [`validate`]
    /// (and every parse) guarantees one entry per region.
    ///
    /// [`validate`]: ScenarioSpec::validate
    pub fn region(&self, region: Region) -> &RegionMeasures {
        self.regions
            .iter()
            .find(|m| m.region == region)
            .unwrap_or_else(|| panic!("scenario {:?} lacks region {region:?}", self.name))
    }

    /// Timelines for all regions, in [`Region::ALL`] order.
    pub fn timelines(&self) -> [RegionTimeline; 3] {
        [
            self.region(Region::CentralEurope).timeline(),
            self.region(Region::SouthernEurope).timeline(),
            self.region(Region::UsEast).timeline(),
        ]
    }

    /// A stable fingerprint over everything *behavioural* in the spec.
    ///
    /// Folds every date (as a day number), every curve parameter (as f64
    /// bits), every event (factor, window, scopes — order-sensitive) with
    /// a splitmix64 chain. `name` and `description` are deliberately
    /// excluded: renaming a scenario must not invalidate its archived
    /// cells, but any behavioural edit must.
    pub fn fingerprint(&self) -> u64 {
        let mut h: u64 = 0x5CE9_A810_2020_0001;
        let mut fold = |v: u64| h = splitmix64(h ^ v.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let fold_date = |f: &mut dyn FnMut(u64), d: Date| f(d.day_number() as u64);
        let fold_f64 = |f: &mut dyn FnMut(u64), x: f64| f(x.to_bits());

        fold_date(&mut fold, self.baseline.organic_anchor);
        fold_f64(&mut fold, self.baseline.organic_weekly);
        for region in Region::ALL {
            let m = self.region(region);
            fold(region_index(region) as u64);
            for d in [m.awareness, m.restrictions, m.stay_home, m.reopening] {
                fold_date(&mut fold, d);
            }
            for x in [
                m.awareness_gain,
                m.restrictions_gain,
                m.stay_home_from,
                m.stay_home_gain,
                m.stay_home_ramp_days,
                m.reopening_release,
                m.reopening_days,
                m.reopening_floor,
                m.reversion,
                m.reversion_days,
            ] {
                fold_f64(&mut fold, x);
            }
        }
        fold(region_index(self.edu.region) as u64);
        fold_date(&mut fold, self.edu.closure);
        for x in [
            self.edu.winddown_per_day,
            self.edu.presence_floor,
            self.edu.remote_ramp_days,
        ] {
            fold_f64(&mut fold, x);
        }
        fold(self.events.len() as u64);
        for e in &self.events {
            // +1 so "no bound" and "day 0" cannot collide.
            fold(e.start.map_or(0, |d| d.day_number() as u64 + 1));
            fold(e.until.map_or(0, |d| d.day_number() as u64 + 1));
            fold_f64(&mut fold, e.factor);
            fold(e.classes.len() as u64);
            for c in &e.classes {
                fold(class_index(*c) as u64);
            }
            fold(e.regions.len() as u64);
            for r in &e.regions {
                fold(region_index(*r) as u64);
            }
            fold(e.kinds.len() as u64);
            for k in &e.kinds {
                fold(kind_index(*k) as u64);
            }
            fold(e.vantages.len() as u64);
            for v in &e.vantages {
                fold(vantage_index(*v) as u64);
            }
        }
        h
    }

    /// Validate a programmatically-built spec (parsing validates with
    /// line numbers; this re-checks the same rules without them).
    pub fn validate(&self) -> Result<(), SpecError> {
        if self.name.is_empty() {
            return spec_err(0, "scenario name must not be empty");
        }
        if !(self.baseline.organic_weekly.is_finite() && self.baseline.organic_weekly > 0.0) {
            return spec_err(0, "organic-weekly-growth must be a positive number");
        }
        for region in Region::ALL {
            let n = self.regions.iter().filter(|m| m.region == region).count();
            if n != 1 {
                return spec_err(
                    0,
                    format!(
                        "scenario must define region {} exactly once (found {n})",
                        region_name(region)
                    ),
                );
            }
        }
        for m in &self.regions {
            let frac = [
                ("awareness gain", m.awareness_gain),
                ("restrictions gain", m.restrictions_gain),
                ("stay-at-home from", m.stay_home_from),
                ("stay-at-home gain", m.stay_home_gain),
                ("reopening release", m.reopening_release),
                ("reopening floor", m.reopening_floor),
                ("reversion", m.reversion),
            ];
            for (what, x) in frac {
                check_fraction(0, what, x)?;
            }
            for (what, x) in [
                ("stay-at-home ramp-days", m.stay_home_ramp_days),
                ("reopening over-days", m.reopening_days),
                ("reversion-days", m.reversion_days),
            ] {
                check_positive(0, what, x)?;
            }
            check_measure_order(0, m)?;
        }
        check_fraction(0, "edu winddown-per-day", self.edu.winddown_per_day)?;
        check_fraction(0, "edu presence-floor", self.edu.presence_floor)?;
        check_positive(0, "edu remote-ramp-days", self.edu.remote_ramp_days)?;
        for e in &self.events {
            if e.name.is_empty() {
                return spec_err(0, "event name must not be empty");
            }
            check_factor(0, e.factor)?;
            if let (Some(s), Some(u)) = (e.start, e.until) {
                if s >= u {
                    return spec_err(
                        0,
                        format!(
                            "event {:?}: start ({}) must precede until ({})",
                            e.name,
                            s.iso(),
                            u.iso()
                        ),
                    );
                }
            }
        }
        Ok(())
    }

    /// Render the spec as a scenario file. Floats are rendered so they
    /// parse back bit-identically; `parse_toml(to_toml(s)) == s`.
    pub fn to_toml(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "[scenario]");
        let _ = writeln!(out, "name = {}", toml::quote(&self.name));
        let _ = writeln!(out, "description = {}", toml::quote(&self.description));
        let _ = writeln!(out, "\n[baseline]");
        let _ = writeln!(
            out,
            "organic-anchor = {}",
            self.baseline.organic_anchor.iso()
        );
        let _ = writeln!(
            out,
            "organic-weekly-growth = {}",
            toml::render_float(self.baseline.organic_weekly)
        );
        for region in Region::ALL {
            let m = self.region(region);
            let f = toml::render_float;
            let _ = writeln!(out, "\n[[region]]");
            let _ = writeln!(out, "name = {}", toml::quote(region_name(region)));
            let _ = writeln!(out, "\n[[region.measure]]");
            let _ = writeln!(out, "kind = \"awareness\"");
            let _ = writeln!(out, "date = {}", m.awareness.iso());
            let _ = writeln!(out, "gain = {}", f(m.awareness_gain));
            let _ = writeln!(out, "\n[[region.measure]]");
            let _ = writeln!(out, "kind = \"restrictions\"");
            let _ = writeln!(out, "date = {}", m.restrictions.iso());
            let _ = writeln!(out, "gain = {}", f(m.restrictions_gain));
            let _ = writeln!(out, "\n[[region.measure]]");
            let _ = writeln!(out, "kind = \"stay-at-home\"");
            let _ = writeln!(out, "date = {}", m.stay_home.iso());
            let _ = writeln!(out, "from = {}", f(m.stay_home_from));
            let _ = writeln!(out, "gain = {}", f(m.stay_home_gain));
            let _ = writeln!(out, "ramp-days = {}", f(m.stay_home_ramp_days));
            let _ = writeln!(out, "\n[[region.measure]]");
            let _ = writeln!(out, "kind = \"reopening\"");
            let _ = writeln!(out, "date = {}", m.reopening.iso());
            let _ = writeln!(out, "release = {}", f(m.reopening_release));
            let _ = writeln!(out, "over-days = {}", f(m.reopening_days));
            let _ = writeln!(out, "floor = {}", f(m.reopening_floor));
            let _ = writeln!(out, "reversion = {}", f(m.reversion));
            let _ = writeln!(out, "reversion-days = {}", f(m.reversion_days));
        }
        let _ = writeln!(out, "\n[edu]");
        let _ = writeln!(
            out,
            "region = {}",
            toml::quote(region_name(self.edu.region))
        );
        let _ = writeln!(out, "closure = {}", self.edu.closure.iso());
        let _ = writeln!(
            out,
            "winddown-per-day = {}",
            toml::render_float(self.edu.winddown_per_day)
        );
        let _ = writeln!(
            out,
            "presence-floor = {}",
            toml::render_float(self.edu.presence_floor)
        );
        let _ = writeln!(
            out,
            "remote-ramp-days = {}",
            toml::render_float(self.edu.remote_ramp_days)
        );
        for e in &self.events {
            let _ = writeln!(out, "\n[[event]]");
            let _ = writeln!(out, "name = {}", toml::quote(&e.name));
            if let Some(s) = e.start {
                let _ = writeln!(out, "start = {}", s.iso());
            }
            if let Some(u) = e.until {
                let _ = writeln!(out, "until = {}", u.iso());
            }
            let _ = writeln!(out, "factor = {}", toml::render_float(e.factor));
            if !e.classes.is_empty() {
                let names: Vec<String> = e
                    .classes
                    .iter()
                    .map(|c| toml::quote(class_name(*c)))
                    .collect();
                let _ = writeln!(out, "classes = [{}]", names.join(", "));
            }
            if !e.regions.is_empty() {
                let names: Vec<String> = e
                    .regions
                    .iter()
                    .map(|r| toml::quote(region_name(*r)))
                    .collect();
                let _ = writeln!(out, "regions = [{}]", names.join(", "));
            }
            if !e.kinds.is_empty() {
                let names: Vec<String> =
                    e.kinds.iter().map(|k| toml::quote(kind_name(*k))).collect();
                let _ = writeln!(out, "kinds = [{}]", names.join(", "));
            }
            if !e.vantages.is_empty() {
                let names: Vec<String> = e
                    .vantages
                    .iter()
                    .map(|v| toml::quote(&vantage_name(*v)))
                    .collect();
                let _ = writeln!(out, "vantages = [{}]", names.join(", "));
            }
        }
        out
    }

    /// Parse a scenario file, validating as it goes; every error names
    /// the offending source line.
    pub fn parse_toml(text: &str) -> Result<ScenarioSpec, SpecError> {
        let doc = toml::parse(text)?;
        let mut name: Option<String> = None;
        let mut description = String::new();
        let mut baseline: Option<BaselineSpec> = None;
        let mut edu: Option<EduSpec> = None;
        let mut regions: Vec<RegionBuilder> = Vec::new();
        let mut events: Vec<MeasureEvent> = Vec::new();

        for t in &doc.tables {
            let path: Vec<&str> = t.path.iter().map(String::as_str).collect();
            match (path.as_slice(), t.is_array) {
                ([], _) => {
                    let line = t.entries.first().map_or(0, |e| e.line);
                    return spec_err(line, "top-level keys must live in a table");
                }
                (["scenario"], false) => {
                    name = Some(req_str(t, "name")?);
                    description = opt_str(t, "description")?.unwrap_or_default();
                    reject_unknown(t, &["name", "description"])?;
                }
                (["baseline"], false) => {
                    let weekly = req_float(t, "organic-weekly-growth")?;
                    if !(weekly.is_finite() && weekly > 0.0) {
                        return spec_err(
                            entry_line(t, "organic-weekly-growth"),
                            "organic-weekly-growth must be a positive number",
                        );
                    }
                    baseline = Some(BaselineSpec {
                        organic_anchor: req_date(t, "organic-anchor")?,
                        organic_weekly: weekly,
                    });
                    reject_unknown(t, &["organic-anchor", "organic-weekly-growth"])?;
                }
                (["region"], true) => {
                    let rn = req_str(t, "name")?;
                    let region = parse_region(&rn, entry_line(t, "name"))?;
                    if regions.iter().any(|r| r.region == region) {
                        return spec_err(t.line, format!("region {rn:?} defined twice"));
                    }
                    reject_unknown(t, &["name"])?;
                    regions.push(RegionBuilder::new(region, t.line));
                }
                (["region", "measure"], true) => {
                    let Some(rb) = regions.last_mut() else {
                        return spec_err(
                            t.line,
                            "[[region.measure]] must follow a [[region]] table",
                        );
                    };
                    rb.add_measure(t)?;
                }
                (["edu"], false) => {
                    let rn = req_str(t, "region")?;
                    edu = Some(EduSpec {
                        region: parse_region(&rn, entry_line(t, "region"))?,
                        closure: req_date(t, "closure")?,
                        winddown_per_day: req_fraction(t, "winddown-per-day")?,
                        presence_floor: req_fraction(t, "presence-floor")?,
                        remote_ramp_days: req_positive(t, "remote-ramp-days")?,
                    });
                    reject_unknown(
                        t,
                        &[
                            "region",
                            "closure",
                            "winddown-per-day",
                            "presence-floor",
                            "remote-ramp-days",
                        ],
                    )?;
                }
                (["event"], true) => {
                    events.push(parse_event(t)?);
                }
                _ => {
                    return spec_err(t.line, format!("unknown table: [{}]", t.path.join(".")));
                }
            }
        }

        let Some(name) = name else {
            return spec_err(0, "missing [scenario] table with a name");
        };
        let Some(baseline) = baseline else {
            return spec_err(0, "missing [baseline] table");
        };
        let Some(edu) = edu else {
            return spec_err(0, "missing [edu] table");
        };
        let mut built = Vec::with_capacity(regions.len());
        for rb in regions {
            built.push(rb.finish()?);
        }
        for region in Region::ALL {
            if !built.iter().any(|m: &RegionMeasures| m.region == region) {
                return spec_err(
                    0,
                    format!("scenario must define region {}", region_name(region)),
                );
            }
        }
        let spec = ScenarioSpec {
            name,
            description,
            baseline,
            regions: built,
            edu,
            events,
        };
        // Backstop for anything the line-attributed checks missed.
        spec.validate()?;
        Ok(spec)
    }
}

/// splitmix64's finalizer: a cheap, well-mixed 64-bit permutation.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

// ---------------------------------------------------------------------------
// Name maps (the DSL's vocabulary).

/// Scenario-file name of a region.
pub fn region_name(region: Region) -> &'static str {
    match region {
        Region::CentralEurope => "central-europe",
        Region::SouthernEurope => "southern-europe",
        Region::UsEast => "us-east",
    }
}

fn parse_region(s: &str, line: usize) -> Result<Region, SpecError> {
    Region::ALL
        .into_iter()
        .find(|r| region_name(*r) == s)
        .ok_or_else(|| SpecError {
            line,
            message: format!(
                "unknown region {s:?} (known: central-europe, southern-europe, us-east)"
            ),
        })
}

fn region_index(region: Region) -> usize {
    Region::ALL.iter().position(|r| *r == region).unwrap()
}

/// Scenario-file name of a vantage kind.
pub fn kind_name(kind: VantageKind) -> &'static str {
    match kind {
        VantageKind::Isp => "isp",
        VantageKind::Ixp => "ixp",
        VantageKind::Edu => "edu",
        VantageKind::Mobile => "mobile",
        VantageKind::Roaming => "roaming",
    }
}

const ALL_KINDS: [VantageKind; 5] = [
    VantageKind::Isp,
    VantageKind::Ixp,
    VantageKind::Edu,
    VantageKind::Mobile,
    VantageKind::Roaming,
];

fn parse_kind(s: &str, line: usize) -> Result<VantageKind, SpecError> {
    ALL_KINDS
        .into_iter()
        .find(|k| kind_name(*k) == s)
        .ok_or_else(|| SpecError {
            line,
            message: format!("unknown vantage kind {s:?} (known: isp, ixp, edu, mobile, roaming)"),
        })
}

fn kind_index(kind: VantageKind) -> usize {
    ALL_KINDS.iter().position(|k| *k == kind).unwrap()
}

/// Scenario-file name of a vantage point (its report label, lowercased).
pub fn vantage_name(vp: VantagePoint) -> String {
    vp.label().to_ascii_lowercase()
}

fn parse_vantage(s: &str, line: usize) -> Result<VantagePoint, SpecError> {
    VantagePoint::ALL
        .into_iter()
        .find(|v| v.label().eq_ignore_ascii_case(s))
        .ok_or_else(|| SpecError {
            line,
            message: format!("unknown vantage point {s:?} (known: isp-ce, ixp-ce, ixp-se, ixp-us, edu, mobile-ce, ipx)"),
        })
}

fn vantage_index(vp: VantagePoint) -> usize {
    VantagePoint::ALL.iter().position(|v| *v == vp).unwrap()
}

/// Scenario-file name of an application class.
pub fn class_name(app: AppClass) -> &'static str {
    match app {
        AppClass::Web => "web",
        AppClass::Quic => "quic",
        AppClass::AltHttp => "alt-http",
        AppClass::WebConf => "web-conf",
        AppClass::Vod => "vod",
        AppClass::TvStreaming => "tv-streaming",
        AppClass::Gaming => "gaming",
        AppClass::SocialMedia => "social-media",
        AppClass::Messaging => "messaging",
        AppClass::Email => "email",
        AppClass::Educational => "educational",
        AppClass::CollabWork => "collab-work",
        AppClass::Cdn => "cdn",
        AppClass::VpnUser => "vpn-user",
        AppClass::VpnSiteToSite => "vpn-site-to-site",
        AppClass::VpnTls => "vpn-tls",
        AppClass::CloudflareLb => "cloudflare-lb",
        AppClass::UnknownHosting => "unknown-hosting",
        AppClass::PushNotif => "push-notif",
        AppClass::RemoteDesktop => "remote-desktop",
        AppClass::Ssh => "ssh",
        AppClass::MusicStreaming => "music-streaming",
        AppClass::Other => "other",
    }
}

fn parse_class(s: &str, line: usize) -> Result<AppClass, SpecError> {
    AppClass::ALL
        .into_iter()
        .find(|c| class_name(*c) == s)
        .ok_or_else(|| SpecError {
            line,
            message: format!("unknown application class {s:?} (e.g. web, quic, vod, gaming)"),
        })
}

fn class_index(app: AppClass) -> usize {
    AppClass::ALL.iter().position(|c| *c == app).unwrap()
}

// ---------------------------------------------------------------------------
// Shared semantic checks.

fn check_fraction(line: usize, what: &str, x: f64) -> Result<(), SpecError> {
    if x.is_finite() && (0.0..=1.0).contains(&x) {
        Ok(())
    } else {
        spec_err(line, format!("{what} = {x} is outside [0, 1]"))
    }
}

fn check_positive(line: usize, what: &str, x: f64) -> Result<(), SpecError> {
    if x.is_finite() && x > 0.0 {
        Ok(())
    } else {
        spec_err(line, format!("{what} = {x} must be positive"))
    }
}

fn check_factor(line: usize, x: f64) -> Result<(), SpecError> {
    if x.is_finite() && x >= 0.0 {
        Ok(())
    } else {
        spec_err(line, format!("event factor = {x} must be finite and >= 0"))
    }
}

fn check_measure_order(fallback_line: usize, m: &RegionMeasures) -> Result<(), SpecError> {
    let seq = [
        ("awareness", m.awareness),
        ("restrictions", m.restrictions),
        ("stay-at-home", m.stay_home),
        ("reopening", m.reopening),
    ];
    for w in seq.windows(2) {
        if w[0].1 >= w[1].1 {
            return spec_err(
                fallback_line,
                format!(
                    "overlapping measure dates in {}: {} ({}) must come after {} ({})",
                    region_name(m.region),
                    w[1].0,
                    w[1].1.iso(),
                    w[0].0,
                    w[0].1.iso()
                ),
            );
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Typed table access.

fn entry_line(t: &Table, key: &str) -> usize {
    t.get(key).map_or(t.line, |e| e.line)
}

fn req<'a>(t: &'a Table, key: &str) -> Result<&'a Entry, SpecError> {
    t.get(key).ok_or_else(|| SpecError {
        line: t.line,
        message: format!("missing key {key:?} in [{}]", t.path.join(".")),
    })
}

fn req_str(t: &Table, key: &str) -> Result<String, SpecError> {
    let e = req(t, key)?;
    match &e.value {
        Value::Str(s) => Ok(s.clone()),
        v => spec_err(
            e.line,
            format!("{key} must be a string, got {}", v.type_name()),
        ),
    }
}

fn opt_str(t: &Table, key: &str) -> Result<Option<String>, SpecError> {
    match t.get(key) {
        None => Ok(None),
        Some(e) => match &e.value {
            Value::Str(s) => Ok(Some(s.clone())),
            v => spec_err(
                e.line,
                format!("{key} must be a string, got {}", v.type_name()),
            ),
        },
    }
}

fn req_date(t: &Table, key: &str) -> Result<Date, SpecError> {
    let e = req(t, key)?;
    match e.value {
        Value::Date(d) => Ok(d),
        ref v => spec_err(
            e.line,
            format!("{key} must be a YYYY-MM-DD date, got {}", v.type_name()),
        ),
    }
}

fn opt_date(t: &Table, key: &str) -> Result<Option<Date>, SpecError> {
    match t.get(key) {
        None => Ok(None),
        Some(e) => match e.value {
            Value::Date(d) => Ok(Some(d)),
            ref v => spec_err(
                e.line,
                format!("{key} must be a YYYY-MM-DD date, got {}", v.type_name()),
            ),
        },
    }
}

fn req_float(t: &Table, key: &str) -> Result<f64, SpecError> {
    let e = req(t, key)?;
    match e.value {
        Value::Float(f) => Ok(f),
        Value::Int(i) => Ok(i as f64),
        ref v => spec_err(
            e.line,
            format!("{key} must be a number, got {}", v.type_name()),
        ),
    }
}

fn req_fraction(t: &Table, key: &str) -> Result<f64, SpecError> {
    let x = req_float(t, key)?;
    check_fraction(entry_line(t, key), key, x)?;
    Ok(x)
}

fn req_positive(t: &Table, key: &str) -> Result<f64, SpecError> {
    let x = req_float(t, key)?;
    check_positive(entry_line(t, key), key, x)?;
    Ok(x)
}

fn str_array(t: &Table, key: &str) -> Result<Vec<(String, usize)>, SpecError> {
    match t.get(key) {
        None => Ok(Vec::new()),
        Some(e) => match &e.value {
            Value::StrArray(items) => Ok(items.iter().map(|s| (s.clone(), e.line)).collect()),
            v => spec_err(
                e.line,
                format!("{key} must be an array of strings, got {}", v.type_name()),
            ),
        },
    }
}

fn reject_unknown(t: &Table, known: &[&str]) -> Result<(), SpecError> {
    for e in &t.entries {
        if !known.contains(&e.key.as_str()) {
            return spec_err(
                e.line,
                format!("unknown key {:?} in [{}]", e.key, t.path.join(".")),
            );
        }
    }
    Ok(())
}

fn parse_event(t: &Table) -> Result<MeasureEvent, SpecError> {
    reject_unknown(
        t,
        &[
            "name", "start", "until", "factor", "classes", "regions", "kinds", "vantages",
        ],
    )?;
    let factor = req_float(t, "factor")?;
    check_factor(entry_line(t, "factor"), factor)?;
    let start = opt_date(t, "start")?;
    let until = opt_date(t, "until")?;
    if let (Some(s), Some(u)) = (start, until) {
        if s >= u {
            return spec_err(
                entry_line(t, "until"),
                format!(
                    "event window is empty: start ({}) must precede until ({})",
                    s.iso(),
                    u.iso()
                ),
            );
        }
    }
    let mut classes = Vec::new();
    for (s, line) in str_array(t, "classes")? {
        classes.push(parse_class(&s, line)?);
    }
    let mut regions = Vec::new();
    for (s, line) in str_array(t, "regions")? {
        regions.push(parse_region(&s, line)?);
    }
    let mut kinds = Vec::new();
    for (s, line) in str_array(t, "kinds")? {
        kinds.push(parse_kind(&s, line)?);
    }
    let mut vantages = Vec::new();
    for (s, line) in str_array(t, "vantages")? {
        vantages.push(parse_vantage(&s, line)?);
    }
    Ok(MeasureEvent {
        name: req_str(t, "name")?,
        start,
        until,
        factor,
        classes,
        regions,
        kinds,
        vantages,
    })
}

/// Accumulates one `[[region]]` and its `[[region.measure]]` tables.
struct RegionBuilder {
    region: Region,
    header_line: usize,
    awareness: Option<(Date, f64, usize)>,
    restrictions: Option<(Date, f64, usize)>,
    stay_home: Option<(Date, f64, f64, f64, usize)>,
    reopening: Option<(Date, f64, f64, f64, f64, f64, usize)>,
}

impl RegionBuilder {
    fn new(region: Region, header_line: usize) -> RegionBuilder {
        RegionBuilder {
            region,
            header_line,
            awareness: None,
            restrictions: None,
            stay_home: None,
            reopening: None,
        }
    }

    fn add_measure(&mut self, t: &Table) -> Result<(), SpecError> {
        let kind = req_str(t, "kind")?;
        let date_line = entry_line(t, "date");
        let dup = |slot: bool| -> Result<(), SpecError> {
            if slot {
                spec_err(
                    t.line,
                    format!(
                        "duplicate {kind:?} measure for region {}",
                        region_name(self.region)
                    ),
                )
            } else {
                Ok(())
            }
        };
        match kind.as_str() {
            "awareness" => {
                dup(self.awareness.is_some())?;
                reject_unknown(t, &["kind", "date", "gain"])?;
                self.awareness = Some((req_date(t, "date")?, req_fraction(t, "gain")?, date_line));
            }
            "restrictions" => {
                dup(self.restrictions.is_some())?;
                reject_unknown(t, &["kind", "date", "gain"])?;
                self.restrictions =
                    Some((req_date(t, "date")?, req_fraction(t, "gain")?, date_line));
            }
            "stay-at-home" => {
                dup(self.stay_home.is_some())?;
                reject_unknown(t, &["kind", "date", "from", "gain", "ramp-days"])?;
                self.stay_home = Some((
                    req_date(t, "date")?,
                    req_fraction(t, "from")?,
                    req_fraction(t, "gain")?,
                    req_positive(t, "ramp-days")?,
                    date_line,
                ));
            }
            "reopening" => {
                dup(self.reopening.is_some())?;
                reject_unknown(
                    t,
                    &[
                        "kind",
                        "date",
                        "release",
                        "over-days",
                        "floor",
                        "reversion",
                        "reversion-days",
                    ],
                )?;
                self.reopening = Some((
                    req_date(t, "date")?,
                    req_fraction(t, "release")?,
                    req_positive(t, "over-days")?,
                    req_fraction(t, "floor")?,
                    req_fraction(t, "reversion")?,
                    req_positive(t, "reversion-days")?,
                    date_line,
                ));
            }
            other => {
                return spec_err(
                    entry_line(t, "kind"),
                    format!(
                        "unknown measure kind {other:?} \
                         (known: awareness, restrictions, stay-at-home, reopening)"
                    ),
                );
            }
        }
        Ok(())
    }

    fn finish(self) -> Result<RegionMeasures, SpecError> {
        let name = region_name(self.region);
        let missing = |what: &str| SpecError {
            line: self.header_line,
            message: format!("region {name} lacks a {what:?} measure"),
        };
        let (awareness, awareness_gain, _) = self.awareness.ok_or_else(|| missing("awareness"))?;
        let (restrictions, restrictions_gain, restr_line) =
            self.restrictions.ok_or_else(|| missing("restrictions"))?;
        let (stay_home, stay_home_from, stay_home_gain, stay_home_ramp_days, stay_line) =
            self.stay_home.ok_or_else(|| missing("stay-at-home"))?;
        let (
            reopening,
            reopening_release,
            reopening_days,
            reopening_floor,
            reversion,
            reversion_days,
            reopen_line,
        ) = self.reopening.ok_or_else(|| missing("reopening"))?;
        let m = RegionMeasures {
            region: self.region,
            awareness,
            awareness_gain,
            restrictions,
            restrictions_gain,
            stay_home,
            stay_home_from,
            stay_home_gain,
            stay_home_ramp_days,
            reopening,
            reopening_release,
            reopening_days,
            reopening_floor,
            reversion,
            reversion_days,
        };
        // Attribute an ordering violation to the *later* date's line.
        if m.awareness >= m.restrictions {
            return check_measure_order(restr_line, &m).map(|_| m);
        }
        if m.restrictions >= m.stay_home {
            return check_measure_order(stay_line, &m).map(|_| m);
        }
        check_measure_order(reopen_line, &m)?;
        Ok(m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_validates_and_matches_paper_timelines() {
        let spec = ScenarioSpec::covid_spring_2020();
        spec.validate().expect("builtin validates");
        let tl = spec.region(Region::CentralEurope).timeline();
        assert_eq!(tl.lockdown, Date::new(2020, 3, 16));
        assert_eq!(tl.curve, IntensityCurve::paper());
    }

    #[test]
    fn builtin_events_match_the_old_predicates() {
        let spec = ScenarioSpec::covid_spring_2020();
        let factor = |vp, app, date| -> f64 {
            spec.events
                .iter()
                .filter(|e| e.applies(vp, app, date))
                .map(|e| e.factor)
                .product()
        };
        // Pre-adoption conferencing: EU ISP only, before Mar 9.
        assert_eq!(
            factor(
                VantagePoint::IspCe,
                AppClass::WebConf,
                Date::new(2020, 2, 1)
            ),
            0.55
        );
        assert_eq!(
            factor(
                VantagePoint::IxpCe,
                AppClass::WebConf,
                Date::new(2020, 2, 1)
            ),
            1.0
        );
        assert_eq!(
            factor(
                VantagePoint::IspCe,
                AppClass::WebConf,
                Date::new(2020, 3, 9)
            ),
            1.0
        );
        // Resolution reduction: EU VoD/QUIC, Mar 19 .. May 12.
        assert_eq!(
            factor(VantagePoint::IxpCe, AppClass::Vod, Date::new(2020, 4, 1)),
            0.88
        );
        assert_eq!(
            factor(VantagePoint::IxpUs, AppClass::Vod, Date::new(2020, 4, 1)),
            1.0
        );
        assert_eq!(
            factor(VantagePoint::IxpCe, AppClass::Vod, Date::new(2020, 5, 12)),
            1.0
        );
        // Gaming outage: IXP-SE, Mar 16–17 only.
        assert_eq!(
            factor(
                VantagePoint::IxpSe,
                AppClass::Gaming,
                Date::new(2020, 3, 17)
            ),
            0.15
        );
        assert_eq!(
            factor(
                VantagePoint::IxpSe,
                AppClass::Gaming,
                Date::new(2020, 3, 18)
            ),
            1.0
        );
        assert_eq!(
            factor(
                VantagePoint::IxpCe,
                AppClass::Gaming,
                Date::new(2020, 3, 16)
            ),
            1.0
        );
    }

    #[test]
    fn fingerprint_ignores_naming_but_not_behaviour() {
        let spec = ScenarioSpec::covid_spring_2020();
        let mut renamed = spec.clone();
        renamed.name = "renamed".into();
        renamed.description = "other".into();
        assert_eq!(spec.fingerprint(), renamed.fingerprint());
        let mut tweaked = spec.clone();
        tweaked.events[0].factor = 0.56;
        assert_ne!(spec.fingerprint(), tweaked.fingerprint());
        let mut moved = spec.clone();
        moved.regions[0].stay_home = Date::new(2020, 3, 17);
        assert_ne!(spec.fingerprint(), moved.fingerprint());
    }

    #[test]
    fn toml_roundtrip_is_exact() {
        let spec = ScenarioSpec::covid_spring_2020();
        let text = spec.to_toml();
        let back = ScenarioSpec::parse_toml(&text).expect("rendered spec parses");
        assert_eq!(spec, back);
        assert_eq!(spec.fingerprint(), back.fingerprint());
    }

    #[test]
    fn overlapping_dates_are_rejected_with_a_line() {
        let mut text = ScenarioSpec::covid_spring_2020().to_toml();
        // Move central-europe's restrictions before its awareness date.
        text = text.replacen("date = 2020-03-09", "date = 2020-01-02", 1);
        let err = ScenarioSpec::parse_toml(&text).unwrap_err();
        assert!(
            err.message.contains("overlapping measure dates"),
            "{}",
            err.message
        );
        let offending = text.lines().position(|l| l == "date = 2020-01-02").unwrap() + 1;
        assert_eq!(err.line, offending, "{err}");
    }

    #[test]
    fn out_of_range_fractions_are_rejected_with_a_line() {
        let mut text = ScenarioSpec::covid_spring_2020().to_toml();
        text = text.replacen("gain = 0.1", "gain = 1.5", 1);
        let err = ScenarioSpec::parse_toml(&text).unwrap_err();
        assert!(err.message.contains("outside [0, 1]"), "{}", err.message);
        let offending = text.lines().position(|l| l == "gain = 1.5").unwrap() + 1;
        assert_eq!(err.line, offending, "{err}");
    }

    #[test]
    fn unknown_names_are_rejected() {
        let base = ScenarioSpec::covid_spring_2020().to_toml();
        let bad_class = base.replacen("\"web-conf\"", "\"webconf\"", 1);
        assert!(ScenarioSpec::parse_toml(&bad_class)
            .unwrap_err()
            .message
            .contains("unknown application class"));
        let bad_key = base.replacen("ramp-days =", "rampdays =", 1);
        assert!(ScenarioSpec::parse_toml(&bad_key)
            .unwrap_err()
            .message
            .contains("unknown key"));
    }

    #[test]
    fn empty_event_window_is_rejected() {
        let mut text = ScenarioSpec::covid_spring_2020().to_toml();
        text = text.replacen("until = 2020-03-18", "until = 2020-03-16", 1);
        let err = ScenarioSpec::parse_toml(&text).unwrap_err();
        assert!(err.message.contains("window is empty"), "{}", err.message);
        assert!(err.line > 0);
    }

    #[test]
    fn missing_region_is_rejected() {
        let spec = ScenarioSpec::covid_spring_2020();
        let text = spec.to_toml();
        // Drop the us-east region block (from its [[region]] header to the
        // [edu] table).
        let start = text.find("name = \"us-east\"").unwrap();
        let header = text[..start].rfind("[[region]]").unwrap();
        let end = text.find("[edu]").unwrap();
        let cut = format!("{}{}", &text[..header], &text[end..]);
        let err = ScenarioSpec::parse_toml(&cut).unwrap_err();
        assert!(err.message.contains("us-east"), "{}", err.message);
    }

    #[test]
    fn scope_name_maps_roundtrip() {
        for r in Region::ALL {
            assert_eq!(parse_region(region_name(r), 1).unwrap(), r);
        }
        for k in ALL_KINDS {
            assert_eq!(parse_kind(kind_name(k), 1).unwrap(), k);
        }
        for c in AppClass::ALL {
            assert_eq!(parse_class(class_name(c), 1).unwrap(), c);
        }
        for v in VantagePoint::ALL {
            assert_eq!(parse_vantage(&vantage_name(v), 1).unwrap(), v);
        }
    }
}
