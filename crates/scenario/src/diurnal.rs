//! Diurnal (hour-of-day) traffic shape profiles.
//!
//! The paper's core observation about *patterns* (Fig. 2, Fig. 3a): workday
//! residential traffic peaks in the evening; weekend traffic "gains
//! significant momentum at about 9 to 10 am already"; under lockdown,
//! workdays morph into a weekend-like shape with a strong morning rise, a
//! small lunch dip, and an unchanged evening peak. These shapes are encoded
//! as 24-bucket profiles normalized to mean 1.0, plus a blending operator
//! the demand model uses to morph workdays toward the lockdown shape as
//! stay-at-home intensity rises.

use serde::{Deserialize, Serialize};

/// A named hour-of-day profile.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DiurnalProfile {
    /// Pre-pandemic residential workday: quiet day, evening peak 20–22h.
    ResidentialWorkday,
    /// Residential weekend: activity from 9–10 am, sustained, evening peak.
    ResidentialWeekend,
    /// Lockdown workday at a residential network: weekend-like morning
    /// rise, small lunch dip, evening peak (Fig. 2a, Mar 25).
    ResidentialLockdown,
    /// Business traffic: 9–17h plateau with a lunch dip.
    BusinessHours,
    /// On-campus educational network: teaching-hours heavy.
    Campus,
    /// Entertainment (VoD/TV): strongly evening-centric.
    EveningEntertainment,
    /// Gaming, pre-pandemic: after-school/evening heavy.
    GamingEvening,
    /// Flat profile (infrastructure chatter, e.g. Cloudflare LB probes).
    Flat,
    /// Overseas access into the EDU network (Latin-American time zones,
    /// §7: "peak from midnight until 7 am, peak hours are 3 and 4 am").
    OverseasNight,
}

/// Raw (un-normalized) 24-hour templates. Values are relative weights;
/// [`shape`] normalizes them to mean 1.0 at compile-time-fixed precision.
fn template(profile: DiurnalProfile) -> [f64; 24] {
    match profile {
        // Hours:            0    1    2    3    4    5    6    7    8    9   10   11   12   13   14   15   16   17   18   19   20   21   22   23
        DiurnalProfile::ResidentialWorkday => [
            0.45, 0.32, 0.25, 0.22, 0.20, 0.22, 0.30, 0.42, 0.52, 0.58, 0.62, 0.66, 0.68, 0.66,
            0.68, 0.72, 0.82, 0.98, 1.18, 1.42, 1.62, 1.68, 1.40, 0.90,
        ],
        DiurnalProfile::ResidentialWeekend => [
            0.55, 0.40, 0.30, 0.25, 0.22, 0.22, 0.26, 0.36, 0.55, 0.85, 1.05, 1.15, 1.18, 1.12,
            1.10, 1.12, 1.18, 1.25, 1.35, 1.50, 1.62, 1.65, 1.40, 0.95,
        ],
        DiurnalProfile::ResidentialLockdown => [
            0.55, 0.40, 0.30, 0.25, 0.22, 0.24, 0.30, 0.48, 0.80, 1.08, 1.22, 1.26, 1.15, 1.20,
            1.25, 1.28, 1.30, 1.32, 1.38, 1.50, 1.62, 1.66, 1.42, 0.98,
        ],
        DiurnalProfile::BusinessHours => [
            0.25, 0.20, 0.18, 0.18, 0.18, 0.22, 0.35, 0.65, 1.20, 1.75, 1.90, 1.85, 1.45, 1.65,
            1.85, 1.80, 1.60, 1.25, 0.85, 0.60, 0.50, 0.45, 0.38, 0.30,
        ],
        DiurnalProfile::Campus => [
            0.12, 0.10, 0.08, 0.08, 0.08, 0.10, 0.25, 0.70, 1.40, 1.95, 2.10, 2.05, 1.70, 1.80,
            2.00, 1.95, 1.75, 1.45, 1.05, 0.70, 0.45, 0.30, 0.20, 0.15,
        ],
        DiurnalProfile::EveningEntertainment => [
            0.50, 0.32, 0.22, 0.18, 0.15, 0.15, 0.18, 0.25, 0.35, 0.45, 0.55, 0.65, 0.75, 0.75,
            0.78, 0.85, 1.00, 1.25, 1.60, 2.00, 2.30, 2.25, 1.75, 1.00,
        ],
        DiurnalProfile::GamingEvening => [
            0.60, 0.40, 0.25, 0.18, 0.15, 0.15, 0.18, 0.25, 0.40, 0.55, 0.70, 0.85, 0.95, 1.00,
            1.10, 1.25, 1.50, 1.75, 1.95, 2.05, 2.00, 1.80, 1.40, 0.90,
        ],
        DiurnalProfile::Flat => [1.0; 24],
        DiurnalProfile::OverseasNight => [
            1.90, 1.95, 2.00, 2.10, 2.10, 1.95, 1.70, 1.30, 0.80, 0.50, 0.40, 0.35, 0.35, 0.40,
            0.45, 0.50, 0.60, 0.80, 1.00, 1.15, 1.25, 1.35, 1.55, 1.75,
        ],
    }
}

/// The profile's weight at a given hour, normalized so the 24-hour mean of
/// every profile is exactly 1.0 (volume scaling stays orthogonal to shape).
pub fn shape(profile: DiurnalProfile, hour: u8) -> f64 {
    assert!(hour < 24, "hour out of range: {hour}");
    let t = template(profile);
    let mean: f64 = t.iter().sum::<f64>() / 24.0;
    t[hour as usize] / mean
}

/// Linear blend of two profiles at one hour: `(1-t)·a + t·b` with
/// `t ∈ [0, 1]`. Used to morph workday shapes toward the lockdown shape as
/// stay-at-home intensity rises.
pub fn blend(a: DiurnalProfile, b: DiurnalProfile, t: f64, hour: u8) -> f64 {
    let t = t.clamp(0.0, 1.0);
    (1.0 - t) * shape(a, hour) + t * shape(b, hour)
}

/// Hour of the evening peak for a profile (argmax of the template).
pub fn peak_hour(profile: DiurnalProfile) -> u8 {
    let t = template(profile);
    let mut best = 0usize;
    for h in 1..24 {
        if t[h] > t[best] {
            best = h;
        }
    }
    best as u8
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALL: [DiurnalProfile; 9] = [
        DiurnalProfile::ResidentialWorkday,
        DiurnalProfile::ResidentialWeekend,
        DiurnalProfile::ResidentialLockdown,
        DiurnalProfile::BusinessHours,
        DiurnalProfile::Campus,
        DiurnalProfile::EveningEntertainment,
        DiurnalProfile::GamingEvening,
        DiurnalProfile::Flat,
        DiurnalProfile::OverseasNight,
    ];

    #[test]
    fn all_profiles_mean_one() {
        for p in ALL {
            let mean: f64 = (0..24).map(|h| shape(p, h)).sum::<f64>() / 24.0;
            assert!((mean - 1.0).abs() < 1e-12, "{p:?} mean = {mean}");
        }
    }

    #[test]
    fn workday_peaks_in_evening() {
        let peak = peak_hour(DiurnalProfile::ResidentialWorkday);
        assert!((20..=22).contains(&peak), "peak at {peak}");
    }

    #[test]
    fn weekend_has_morning_momentum() {
        // Fig. 2: weekend pattern "gains significant momentum at about
        // 9 to 10 am" — 10 am weekend level far exceeds workday 10 am.
        let wd = shape(DiurnalProfile::ResidentialWorkday, 10);
        let we = shape(DiurnalProfile::ResidentialWeekend, 10);
        assert!(we > 1.3 * wd, "weekend {we} vs workday {wd}");
    }

    #[test]
    fn lockdown_shape_is_weekend_like_with_lunch_dip() {
        let l = DiurnalProfile::ResidentialLockdown;
        // Morning rise like a weekend.
        assert!(shape(l, 10) > 1.0);
        // Small dip at lunch relative to its neighbours (Fig. 3a narrative:
        // "a small dip at lunchtime").
        assert!(shape(l, 12) < shape(l, 11));
        assert!(shape(l, 12) < shape(l, 14));
        // Evening still spikes.
        assert!(shape(l, 21) > shape(l, 12));
    }

    #[test]
    fn business_hours_daytime_heavy() {
        let b = DiurnalProfile::BusinessHours;
        assert!(shape(b, 10) > 2.0 * shape(b, 21));
        assert!(shape(b, 12) < shape(b, 10), "lunch dip expected");
    }

    #[test]
    fn overseas_peaks_at_night() {
        let p = peak_hour(DiurnalProfile::OverseasNight);
        assert!(p <= 7, "overseas peak at {p}, expected small hours");
    }

    #[test]
    fn blend_endpoints_and_midpoint() {
        let a = DiurnalProfile::ResidentialWorkday;
        let b = DiurnalProfile::ResidentialLockdown;
        for h in 0..24u8 {
            assert!((blend(a, b, 0.0, h) - shape(a, h)).abs() < 1e-12);
            assert!((blend(a, b, 1.0, h) - shape(b, h)).abs() < 1e-12);
            let mid = blend(a, b, 0.5, h);
            let (lo, hi) = (shape(a, h).min(shape(b, h)), shape(a, h).max(shape(b, h)));
            assert!(mid >= lo - 1e-12 && mid <= hi + 1e-12);
        }
    }

    #[test]
    fn blend_clamps_t() {
        let a = DiurnalProfile::Flat;
        let b = DiurnalProfile::BusinessHours;
        assert_eq!(blend(a, b, -3.0, 10), shape(a, 10));
        assert_eq!(blend(a, b, 9.0, 10), shape(b, 10));
    }

    #[test]
    #[should_panic(expected = "hour out of range")]
    fn bad_hour_panics() {
        shape(DiurnalProfile::Flat, 24);
    }
}
