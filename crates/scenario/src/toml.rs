//! A hand-rolled parser for the TOML subset scenario files use.
//!
//! The dependency set is deliberately small (the CLI parses its own flags
//! for the same reason), so scenario files are read by this module instead
//! of a full TOML crate. The subset is exactly what the scenario schema
//! needs — tables, arrays of tables, bare keys, and string / float /
//! integer / boolean / date / string-array values — and every parse error
//! carries the 1-based line it occurred on, which the measure validator
//! reuses to name the offending line of a semantic error.
//!
//! Deliberate omissions (each rejected with a line-numbered error rather
//! than silently misread): dotted keys, inline tables, multi-line strings,
//! datetimes with a time component, and non-string arrays.

use lockdown_flow::time::{days_in_month, Date};

/// A parsed scalar (or string-array) value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// A quoted string.
    Str(String),
    /// A float. Integers written with a decimal point land here.
    Float(f64),
    /// An integer without a decimal point or exponent.
    Int(i64),
    /// `true` / `false`.
    Bool(bool),
    /// A bare `YYYY-MM-DD` date.
    Date(Date),
    /// An array of quoted strings.
    StrArray(Vec<String>),
}

impl Value {
    /// Human name of the value's type, for "expected X, got Y" errors.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Str(_) => "string",
            Value::Float(_) => "float",
            Value::Int(_) => "integer",
            Value::Bool(_) => "boolean",
            Value::Date(_) => "date",
            Value::StrArray(_) => "string array",
        }
    }
}

/// One `key = value` entry, with the line it was written on.
#[derive(Debug, Clone, PartialEq)]
pub struct Entry {
    /// The bare key.
    pub key: String,
    /// The parsed value.
    pub value: Value,
    /// 1-based source line of the entry.
    pub line: usize,
}

/// One table instance: a `[header]` or `[[header]]` and the entries that
/// follow it (up to the next header). Keys before any header belong to an
/// implicit root table with an empty path.
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    /// Dotted header path, split on `.` (empty for the root table).
    pub path: Vec<String>,
    /// Whether the header was the `[[...]]` array-of-tables form.
    pub is_array: bool,
    /// 1-based source line of the header (0 for the root table).
    pub line: usize,
    /// Entries in source order.
    pub entries: Vec<Entry>,
}

impl Table {
    /// Look up an entry by key.
    pub fn get(&self, key: &str) -> Option<&Entry> {
        self.entries.iter().find(|e| e.key == key)
    }
}

/// A parsed document: tables in source order (root table first when any
/// top-level keys exist).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Document {
    /// Tables in source order.
    pub tables: Vec<Table>,
}

/// A parse error, carrying the 1-based line it occurred on.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// 1-based source line.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

fn err<T>(line: usize, message: impl Into<String>) -> Result<T, ParseError> {
    Err(ParseError {
        line,
        message: message.into(),
    })
}

fn is_bare_key_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '-' || c == '_'
}

/// Strip a trailing comment (a `#` outside of any quoted string) and
/// surrounding whitespace.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    let mut escaped = false;
    for (i, c) in line.char_indices() {
        if in_str {
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                in_str = false;
            }
        } else if c == '"' {
            in_str = true;
        } else if c == '#' {
            return line[..i].trim();
        }
    }
    line.trim()
}

fn parse_quoted(s: &str, line: usize) -> Result<(String, &str), ParseError> {
    debug_assert!(s.starts_with('"'));
    let mut out = String::new();
    let mut chars = s[1..].char_indices();
    while let Some((i, c)) = chars.next() {
        match c {
            '"' => return Ok((out, &s[1 + i + 1..])),
            '\\' => match chars.next() {
                Some((_, '"')) => out.push('"'),
                Some((_, '\\')) => out.push('\\'),
                Some((_, 'n')) => out.push('\n'),
                Some((_, 't')) => out.push('\t'),
                Some((_, other)) => {
                    return err(line, format!("unsupported string escape: \\{other}"))
                }
                None => return err(line, "unterminated string escape"),
            },
            _ => out.push(c),
        }
    }
    err(line, "unterminated string")
}

/// Parse a bare `YYYY-MM-DD` date, validating the calendar.
fn parse_date(s: &str, line: usize) -> Result<Date, ParseError> {
    let bad = || ParseError {
        line,
        message: format!("bad date (want YYYY-MM-DD): {s}"),
    };
    let parts: Vec<&str> = s.split('-').collect();
    if parts.len() != 3 || parts[0].len() != 4 || parts[1].len() != 2 || parts[2].len() != 2 {
        return Err(bad());
    }
    let y: i32 = parts[0].parse().map_err(|_| bad())?;
    let m: u8 = parts[1].parse().map_err(|_| bad())?;
    let d: u8 = parts[2].parse().map_err(|_| bad())?;
    if !(1..=12).contains(&m) || d < 1 || d > days_in_month(y, m) {
        return err(line, format!("impossible calendar date: {s}"));
    }
    Ok(Date::new(y, m, d))
}

fn looks_like_date(s: &str) -> bool {
    let b = s.as_bytes();
    b.len() == 10
        && b[4] == b'-'
        && b[7] == b'-'
        && b.iter()
            .enumerate()
            .all(|(i, c)| matches!(i, 4 | 7) || c.is_ascii_digit())
}

fn parse_scalar(s: &str, line: usize) -> Result<Value, ParseError> {
    if s == "true" {
        return Ok(Value::Bool(true));
    }
    if s == "false" {
        return Ok(Value::Bool(false));
    }
    if looks_like_date(s) {
        return Ok(Value::Date(parse_date(s, line)?));
    }
    if s.contains('.') || s.contains('e') || s.contains('E') {
        if let Ok(f) = s.parse::<f64>() {
            if f.is_finite() {
                return Ok(Value::Float(f));
            }
            return err(line, format!("non-finite float: {s}"));
        }
    } else if let Ok(i) = s.parse::<i64>() {
        return Ok(Value::Int(i));
    }
    err(line, format!("unrecognized value: {s}"))
}

fn parse_value(s: &str, line: usize) -> Result<Value, ParseError> {
    if let Some(rest) = s.strip_prefix('[') {
        // Single-line array of quoted strings.
        let mut items = Vec::new();
        let mut rest = rest.trim_start();
        loop {
            if let Some(after) = rest.strip_prefix(']') {
                if !after.trim().is_empty() {
                    return err(line, format!("trailing characters after array: {after}"));
                }
                return Ok(Value::StrArray(items));
            }
            if !rest.starts_with('"') {
                return err(line, "arrays may contain only quoted strings");
            }
            let (item, after) = parse_quoted(rest, line)?;
            items.push(item);
            rest = after.trim_start();
            if let Some(after_comma) = rest.strip_prefix(',') {
                rest = after_comma.trim_start();
            } else if !rest.starts_with(']') {
                return err(line, "expected ',' or ']' in array");
            }
        }
    }
    if s.starts_with('"') {
        let (v, after) = parse_quoted(s, line)?;
        if !after.trim().is_empty() {
            return err(line, format!("trailing characters after string: {after}"));
        }
        return Ok(Value::Str(v));
    }
    parse_scalar(s, line)
}

fn parse_header(body: &str, line: usize) -> Result<Vec<String>, ParseError> {
    let mut path = Vec::new();
    for part in body.split('.') {
        let part = part.trim();
        if part.is_empty() || !part.chars().all(is_bare_key_char) {
            return err(line, format!("bad table header: [{body}]"));
        }
        path.push(part.to_string());
    }
    Ok(path)
}

/// Parse a document from source text.
pub fn parse(text: &str) -> Result<Document, ParseError> {
    let mut doc = Document::default();
    let mut current: Option<Table> = None;
    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = strip_comment(raw);
        if line.is_empty() {
            continue;
        }
        if let Some(body) = line
            .strip_prefix("[[")
            .and_then(|rest| rest.strip_suffix("]]"))
        {
            if let Some(t) = current.take() {
                doc.tables.push(t);
            }
            current = Some(Table {
                path: parse_header(body, line_no)?,
                is_array: true,
                line: line_no,
                entries: Vec::new(),
            });
            continue;
        }
        if let Some(body) = line
            .strip_prefix('[')
            .and_then(|rest| rest.strip_suffix(']'))
        {
            if let Some(t) = current.take() {
                doc.tables.push(t);
            }
            current = Some(Table {
                path: parse_header(body, line_no)?,
                is_array: false,
                line: line_no,
                entries: Vec::new(),
            });
            continue;
        }
        let Some(eq) = line.find('=') else {
            return err(line_no, format!("expected `key = value`, got: {line}"));
        };
        let key = line[..eq].trim();
        if key.is_empty() || !key.chars().all(is_bare_key_char) {
            return err(
                line_no,
                format!("bad key (bare keys use [A-Za-z0-9_-]): {key}"),
            );
        }
        let value = parse_value(line[eq + 1..].trim(), line_no)?;
        let entry = Entry {
            key: key.to_string(),
            value,
            line: line_no,
        };
        match &mut current {
            Some(t) => {
                if t.entries.iter().any(|e| e.key == entry.key) {
                    return err(line_no, format!("duplicate key: {}", entry.key));
                }
                t.entries.push(entry);
            }
            None => {
                let root = Table {
                    path: Vec::new(),
                    is_array: false,
                    line: 0,
                    entries: vec![entry],
                };
                current = Some(root);
            }
        }
    }
    if let Some(t) = current.take() {
        doc.tables.push(t);
    }
    Ok(doc)
}

/// Render a string with the escapes [`parse`] understands.
pub fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            _ => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Render a float so it parses back bit-identically and is always read as
/// a float (a trailing `.0` is appended to integral values without one).
pub fn render_float(f: f64) -> String {
    let s = format!("{f:?}");
    if s.contains('.') || s.contains('e') || s.contains('E') {
        s
    } else {
        format!("{s}.0")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_tables_arrays_and_scalars() {
        let doc = parse(
            r#"
# top comment
[scenario]
name = "x" # trailing comment
level = 0.10
count = 4
flag = true
when = 2020-03-16

[[event]]
classes = ["web", "quic"]

[[event]]
classes = []
"#,
        )
        .expect("parses");
        assert_eq!(doc.tables.len(), 3);
        let s = &doc.tables[0];
        assert_eq!(s.path, ["scenario"]);
        assert_eq!(s.get("name").unwrap().value, Value::Str("x".into()));
        assert_eq!(s.get("level").unwrap().value, Value::Float(0.10));
        assert_eq!(s.get("count").unwrap().value, Value::Int(4));
        assert_eq!(s.get("flag").unwrap().value, Value::Bool(true));
        assert_eq!(
            s.get("when").unwrap().value,
            Value::Date(Date::new(2020, 3, 16))
        );
        assert!(doc.tables[1].is_array);
        assert_eq!(
            doc.tables[1].get("classes").unwrap().value,
            Value::StrArray(vec!["web".into(), "quic".into()])
        );
        assert_eq!(
            doc.tables[2].get("classes").unwrap().value,
            Value::StrArray(Vec::new())
        );
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = parse("[scenario]\nname = \"unterminated").unwrap_err();
        assert_eq!(e.line, 2);
        let e = parse("\n\nnot a key value").unwrap_err();
        assert_eq!(e.line, 3);
        let e = parse("[t]\nwhen = 2020-13-01").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("impossible"), "{}", e.message);
        let e = parse("[t]\nx = 1\nx = 2").unwrap_err();
        assert!(e.message.contains("duplicate"), "{}", e.message);
        assert_eq!(e.line, 3);
    }

    #[test]
    fn float_rendering_roundtrips() {
        for f in [0.1, 0.3, 1.0035, 4.0, 42.0, 1e-9, 123.456e7] {
            let s = render_float(f);
            match parse(&format!("x = {s}")).unwrap().tables[0]
                .get("x")
                .unwrap()
                .value
            {
                Value::Float(back) => assert_eq!(back.to_bits(), f.to_bits(), "{s}"),
                ref v => panic!("rendered float parsed as {}", v.type_name()),
            }
        }
    }

    #[test]
    fn date_like_strings_must_be_valid() {
        assert!(parse("x = 2020-02-30").is_err());
        assert!(matches!(
            parse("x = 2020-02-29").unwrap().tables[0]
                .get("x")
                .unwrap()
                .value,
            Value::Date(_)
        ));
    }
}
