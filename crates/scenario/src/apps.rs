//! Application traffic classes and their transport-port signatures.
//!
//! This is the generator-side taxonomy: every synthetic flow belongs to one
//! [`AppClass`], which fixes its transport ports (from §4, Table 1, and
//! Appendix B of the paper) and the AS categories it is exchanged with.
//! The *analysis* side (crate `lockdown-analysis`) re-derives classes from
//! ports and ASNs exactly the way the paper does — the two sides meeting is
//! what the integration tests check.

use lockdown_flow::protocol::IpProtocol;
use lockdown_topology::asn::AsCategory;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A transport endpoint signature: protocol + server-side port.
/// GRE and ESP carry no ports; their signature is the protocol alone.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct PortSig {
    /// IP protocol of the signature.
    pub protocol: IpProtocol,
    /// Server port; ignored (0) for port-less protocols.
    pub port: u16,
}

impl PortSig {
    /// TCP port shorthand.
    pub const fn tcp(port: u16) -> PortSig {
        PortSig {
            protocol: IpProtocol::Tcp,
            port,
        }
    }

    /// UDP port shorthand.
    pub const fn udp(port: u16) -> PortSig {
        PortSig {
            protocol: IpProtocol::Udp,
            port,
        }
    }
}

impl fmt::Display for PortSig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.protocol.has_ports() {
            write!(f, "{}/{}", self.protocol, self.port)
        } else {
            write!(f, "{}", self.protocol)
        }
    }
}

/// Generator-level application classes.
///
/// Superset of the paper's nine Table 1 classes: the §4 port analysis and
/// the §6/§7 studies need finer classes (QUIC vs. Web, the two VPN flavors,
/// push notifications, remote desktop, …).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum AppClass {
    /// HTTP(S) on TCP/80 + TCP/443 — the dominant share everywhere.
    Web,
    /// QUIC on UDP/443 (streaming by Google, Akamai, … §4).
    Quic,
    /// Alternative HTTP on TCP/8080 (flat through the pandemic, §4).
    AltHttp,
    /// Web conferencing & telephony: UDP/3480 (Teams/Skype STUN),
    /// UDP/8801 (Zoom connector).
    WebConf,
    /// Video-on-demand from VoD provider ASes (no distinctive port).
    Vod,
    /// Russian-TV style online streaming on TCP/8200 (IXP-CE, §4).
    TvStreaming,
    /// Gaming: 5 provider ASes and 57 typical ports (Table 1).
    Gaming,
    /// Social networks.
    SocialMedia,
    /// Messaging services.
    Messaging,
    /// Email: IMAP/TLS TCP/993 and friends (Appendix B).
    Email,
    /// Educational network traffic.
    Educational,
    /// Collaborative working suites.
    CollabWork,
    /// Content delivery networks (non-hypergiant classes of Table 1).
    Cdn,
    /// Road-warrior VPNs: IPsec NAT-traversal UDP/4500, IKE UDP/500,
    /// OpenVPN 1194, L2TP 1701, PPTP 1723.
    VpnUser,
    /// Site-to-site VPN transport: GRE and ESP (decline at the IXP, §4).
    VpnSiteToSite,
    /// TLS-tunnelled VPN on TCP/443 to `*vpn*` hosts — invisible to
    /// port-based classification (§6's headline point).
    VpnTls,
    /// Cloudflare load-balancer probes on UDP/2408 (flat, §4).
    CloudflareLb,
    /// The unattributable TCP/25461 traffic from hosting prefixes (§4).
    UnknownHosting,
    /// Mobile push notification channels TCP/5223 + TCP/5228 (App. B).
    PushNotif,
    /// Remote desktop: RDP TCP/3389, Citrix 1494, TeamViewer 5938.
    RemoteDesktop,
    /// SSH (TCP/22) — 9.1× incoming growth at the EDU network (§7).
    Ssh,
    /// Music streaming (Spotify: TCP/4070 or AS8403, App. B).
    MusicStreaming,
    /// Everything else (P2P-ish, marginal protocols, random high ports).
    Other,
}

impl AppClass {
    /// All classes.
    pub const ALL: [AppClass; 23] = [
        AppClass::Web,
        AppClass::Quic,
        AppClass::AltHttp,
        AppClass::WebConf,
        AppClass::Vod,
        AppClass::TvStreaming,
        AppClass::Gaming,
        AppClass::SocialMedia,
        AppClass::Messaging,
        AppClass::Email,
        AppClass::Educational,
        AppClass::CollabWork,
        AppClass::Cdn,
        AppClass::VpnUser,
        AppClass::VpnSiteToSite,
        AppClass::VpnTls,
        AppClass::CloudflareLb,
        AppClass::UnknownHosting,
        AppClass::PushNotif,
        AppClass::RemoteDesktop,
        AppClass::Ssh,
        AppClass::MusicStreaming,
        AppClass::Other,
    ];

    /// Server-side port signatures this class uses on the wire.
    pub fn port_signatures(self) -> &'static [PortSig] {
        const WEB: &[PortSig] = &[PortSig::tcp(443), PortSig::tcp(80)];
        const QUIC: &[PortSig] = &[PortSig::udp(443)];
        const ALT_HTTP: &[PortSig] = &[PortSig::tcp(8080), PortSig::tcp(8000)];
        const WEBCONF: &[PortSig] = &[PortSig::udp(3480), PortSig::udp(8801)];
        // VoD rides HTTPS; identified by AS, not port (Table 1).
        const VOD: &[PortSig] = &[PortSig::tcp(443)];
        const TV: &[PortSig] = &[PortSig::tcp(8200)];
        const SOCIAL: &[PortSig] = &[PortSig::tcp(443)];
        const MESSAGING: &[PortSig] = &[
            PortSig::tcp(1863), // classic messenger protocol
            PortSig::tcp(6667), // IRC
            PortSig::tcp(4443),
            PortSig::udp(4443),
            PortSig::tcp(5269), // XMPP server-to-server
        ];
        const EMAIL: &[PortSig] = &[
            PortSig::tcp(993),
            PortSig::tcp(25),
            PortSig::tcp(110),
            PortSig::tcp(143),
            PortSig::tcp(465),
            PortSig::tcp(587),
            PortSig::tcp(995),
        ];
        const COLLAB: &[PortSig] = &[PortSig::tcp(8443), PortSig::udp(8443), PortSig::tcp(7443)];
        const VPN_USER: &[PortSig] = &[
            PortSig::udp(4500),
            PortSig::udp(500),
            PortSig::udp(1194),
            PortSig::tcp(1194),
            PortSig::udp(1701),
            PortSig::tcp(1723),
        ];
        const VPN_S2S: &[PortSig] = &[
            PortSig {
                protocol: IpProtocol::Gre,
                port: 0,
            },
            PortSig {
                protocol: IpProtocol::Esp,
                port: 0,
            },
        ];
        const CF_LB: &[PortSig] = &[PortSig::udp(2408)];
        const UNKNOWN: &[PortSig] = &[PortSig::tcp(25461)];
        const PUSH: &[PortSig] = &[PortSig::tcp(5223), PortSig::tcp(5228)];
        const RDP: &[PortSig] = &[
            PortSig::tcp(3389),
            PortSig::tcp(1494),
            PortSig::udp(1494),
            PortSig::tcp(5938),
            PortSig::udp(5938),
        ];
        const SSH: &[PortSig] = &[PortSig::tcp(22)];
        const MUSIC: &[PortSig] = &[PortSig::tcp(4070), PortSig::tcp(443)];
        match self {
            AppClass::Web => WEB,
            AppClass::Quic => QUIC,
            AppClass::AltHttp => ALT_HTTP,
            AppClass::WebConf => WEBCONF,
            AppClass::Vod => VOD,
            AppClass::TvStreaming => TV,
            AppClass::Gaming => GAMING_PORTS,
            AppClass::SocialMedia => SOCIAL,
            AppClass::Messaging => MESSAGING,
            AppClass::Email => EMAIL,
            AppClass::Educational => WEB,
            AppClass::CollabWork => COLLAB,
            AppClass::Cdn => WEB,
            AppClass::VpnUser => VPN_USER,
            AppClass::VpnSiteToSite => VPN_S2S,
            AppClass::VpnTls => VOD,
            AppClass::CloudflareLb => CF_LB,
            AppClass::UnknownHosting => UNKNOWN,
            AppClass::PushNotif => PUSH,
            AppClass::RemoteDesktop => RDP,
            AppClass::Ssh => SSH,
            AppClass::MusicStreaming => MUSIC,
            AppClass::Other => OTHER_PORTS,
        }
    }

    /// AS categories that *serve* this class's traffic (the content side of
    /// each flow). Used by the generator to pick server ASes and by Fig. 4
    /// to produce the hypergiant/other split.
    pub fn server_categories(self) -> &'static [AsCategory] {
        match self {
            AppClass::Web => &[
                AsCategory::Hypergiant,
                AsCategory::Cdn,
                AsCategory::CloudProvider,
                AsCategory::Hosting,
            ],
            AppClass::Quic => &[AsCategory::Hypergiant],
            AppClass::AltHttp => &[AsCategory::Hosting, AsCategory::CloudProvider],
            AppClass::WebConf => &[AsCategory::ConferencingProvider, AsCategory::Hypergiant],
            AppClass::Vod => &[AsCategory::VodProvider],
            AppClass::TvStreaming => &[AsCategory::TvBroadcaster],
            AppClass::Gaming => &[AsCategory::GamingProvider],
            AppClass::SocialMedia => &[AsCategory::SocialMedia],
            AppClass::Messaging => &[AsCategory::MessagingProvider, AsCategory::Hypergiant],
            AppClass::Email => &[
                AsCategory::CloudProvider,
                AsCategory::Enterprise,
                AsCategory::Hypergiant,
            ],
            AppClass::Educational => &[AsCategory::Educational],
            AppClass::CollabWork => &[AsCategory::CollaborationProvider, AsCategory::CloudProvider],
            AppClass::Cdn => &[AsCategory::Cdn],
            AppClass::VpnUser => &[AsCategory::Enterprise, AsCategory::CloudProvider],
            AppClass::VpnSiteToSite => &[AsCategory::Enterprise, AsCategory::CloudProvider],
            AppClass::VpnTls => &[AsCategory::Enterprise, AsCategory::CloudProvider],
            AppClass::CloudflareLb => &[AsCategory::Hypergiant], // Cloudflare is in Table 2
            AppClass::UnknownHosting => &[AsCategory::Hosting],
            AppClass::PushNotif => &[AsCategory::Hypergiant], // Apple/Google
            AppClass::RemoteDesktop => &[AsCategory::Enterprise, AsCategory::CloudProvider],
            AppClass::Ssh => &[AsCategory::CloudProvider, AsCategory::Enterprise],
            AppClass::MusicStreaming => &[AsCategory::MusicStreaming],
            AppClass::Other => &[
                AsCategory::Hosting,
                AsCategory::Transit,
                AsCategory::Enterprise,
            ],
        }
    }

    /// Fraction of this class's bytes served by hypergiant ASes — drives
    /// the Fig. 4 hypergiant/other growth split.
    pub fn hypergiant_share(self) -> f64 {
        match self {
            AppClass::Quic | AppClass::PushNotif | AppClass::CloudflareLb => 0.95,
            AppClass::Web => 0.72,
            AppClass::Vod => 0.75,
            AppClass::SocialMedia => 0.85,
            AppClass::Cdn => 0.35,     // Table 1 CDNs are the non-HG ones
            AppClass::WebConf => 0.45, // Teams/Skype (MS) vs Zoom
            AppClass::Messaging => 0.40,
            AppClass::Email => 0.30,
            AppClass::CollabWork => 0.25,
            AppClass::Gaming => 0.15,
            AppClass::AltHttp | AppClass::Other | AppClass::UnknownHosting => 0.10,
            AppClass::MusicStreaming => 0.0,
            AppClass::TvStreaming => 0.0,
            AppClass::Educational => 0.0,
            AppClass::VpnUser | AppClass::VpnSiteToSite | AppClass::VpnTls => 0.05,
            AppClass::RemoteDesktop | AppClass::Ssh => 0.05,
        }
    }

    /// Which hypergiant ASNs serve this class. The generator draws the
    /// hypergiant share of a class's traffic from this pool, so the
    /// analysis-side Table 1 filters (which enumerate concrete ASNs) can
    /// recover it.
    pub fn hypergiant_pool(self) -> &'static [u32] {
        match self {
            // Google, Akamai, Cloudflare, Facebook run QUIC at scale.
            AppClass::Quic => &[15_169, 20_940, 13_335, 32_934],
            // Netflix and Amazon are Table 2's VoD hypergiants.
            AppClass::Vod => &[2_906, 16_509],
            AppClass::SocialMedia => &[32_934, 13_414],
            AppClass::WebConf => &[8_075],
            AppClass::Messaging => &[32_934, 8_075],
            AppClass::Email => &[8_075, 15_169, 10_310],
            AppClass::CloudflareLb => &[13_335],
            AppClass::PushNotif => &[714, 15_169],
            AppClass::Cdn => &[20_940, 13_335, 22_822, 15_133],
            AppClass::CollabWork => &[8_075, 15_169],
            AppClass::Gaming => &[8_075, 16_509], // Xbox Live, Amazon-hosted games
            // Everything else draws from the full Table 2 list.
            _ => &[
                714, 16_509, 32_934, 15_169, 20_940, 10_310, 2_906, 6_939, 16_276, 22_822, 8_075,
                13_414, 46_489, 13_335, 15_133,
            ],
        }
    }

    /// Short label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            AppClass::Web => "Web",
            AppClass::Quic => "QUIC",
            AppClass::AltHttp => "alt-HTTP",
            AppClass::WebConf => "Web conf",
            AppClass::Vod => "VoD",
            AppClass::TvStreaming => "TV streaming",
            AppClass::Gaming => "gaming",
            AppClass::SocialMedia => "social media",
            AppClass::Messaging => "messaging",
            AppClass::Email => "email",
            AppClass::Educational => "educational",
            AppClass::CollabWork => "coll. working",
            AppClass::Cdn => "CDN",
            AppClass::VpnUser => "VPN (user)",
            AppClass::VpnSiteToSite => "VPN (site-to-site)",
            AppClass::VpnTls => "VPN (TLS)",
            AppClass::CloudflareLb => "Cloudflare LB",
            AppClass::UnknownHosting => "unknown (hosting)",
            AppClass::PushNotif => "push notifications",
            AppClass::RemoteDesktop => "remote desktop",
            AppClass::Ssh => "SSH",
            AppClass::MusicStreaming => "music streaming",
            AppClass::Other => "other",
        }
    }
}

impl fmt::Display for AppClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// The 57 "typical gaming transport ports" of Table 1: the union of
/// well-known multiplayer/cloud-gaming port ranges (game-industry defaults:
/// Steam, consoles, major titles).
pub const GAMING_PORTS: &[PortSig] = &[
    // Steam & Source engine
    PortSig::udp(27015),
    PortSig::tcp(27015),
    PortSig::udp(27016),
    PortSig::udp(27017),
    PortSig::udp(27018),
    PortSig::udp(27019),
    PortSig::udp(27020),
    PortSig::udp(27031),
    PortSig::udp(27036),
    PortSig::tcp(27036),
    PortSig::udp(4380),
    // Xbox Live / PSN
    PortSig::udp(3074),
    PortSig::tcp(3074),
    PortSig::udp(3075),
    PortSig::udp(3076),
    PortSig::udp(3478),
    PortSig::udp(3479),
    PortSig::tcp(3480),
    PortSig::udp(9308),
    // Riot (League of Legends; referenced in Table 1's sources)
    PortSig::udp(5000),
    PortSig::udp(5100),
    PortSig::udp(5200),
    PortSig::udp(5300),
    PortSig::udp(5500),
    PortSig::tcp(5222),
    PortSig::tcp(5223),
    PortSig::tcp(2099),
    PortSig::tcp(8393),
    PortSig::tcp(8400),
    // Blizzard
    PortSig::tcp(1119),
    PortSig::udp(1119),
    PortSig::udp(6113),
    PortSig::tcp(6113),
    PortSig::tcp(3724),
    PortSig::udp(3724),
    // Fortnite / Epic
    PortSig::udp(9000),
    PortSig::udp(9001),
    PortSig::udp(9002),
    PortSig::udp(5795),
    PortSig::udp(5796),
    PortSig::udp(5797),
    // Minecraft / misc
    PortSig::tcp(25565),
    PortSig::udp(19132),
    PortSig::udp(19133),
    // Cloud gaming (Stadia/GeForce Now style RTP ranges)
    PortSig::udp(44700),
    PortSig::udp(44800),
    PortSig::udp(44810),
    PortSig::tcp(49005),
    PortSig::udp(49006),
    // Voice for gaming (Discord/TeamSpeak/Mumble)
    PortSig::udp(50000),
    PortSig::udp(9987),
    PortSig::tcp(30033),
    PortSig::udp(64738),
    PortSig::tcp(64738),
    // Classic shooters
    PortSig::udp(27960),
    PortSig::udp(28960),
    PortSig::udp(7777),
];

/// Port pool for the long tail of unclassified traffic.
const OTHER_PORTS: &[PortSig] = &[
    PortSig::tcp(8333),
    PortSig::udp(6881),
    PortSig::tcp(6881),
    PortSig::udp(51413),
    PortSig::tcp(9001),
    PortSig::udp(123),
    PortSig::tcp(21),
    PortSig::udp(53),
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gaming_port_count_matches_table1() {
        // Table 1: "57 distinct transport ports" for the gaming class.
        assert_eq!(GAMING_PORTS.len(), 57);
        let mut set: Vec<_> = GAMING_PORTS.to_vec();
        set.sort_by_key(|p| (p.protocol.number(), p.port));
        set.dedup();
        assert_eq!(set.len(), 57, "gaming ports must be distinct");
    }

    #[test]
    fn every_class_has_signatures_and_servers() {
        for c in AppClass::ALL {
            assert!(!c.port_signatures().is_empty(), "{c} has no ports");
            assert!(!c.server_categories().is_empty(), "{c} has no servers");
            let share = c.hypergiant_share();
            assert!((0.0..=1.0).contains(&share));
        }
    }

    #[test]
    fn vpn_user_ports_match_section6() {
        let sigs = AppClass::VpnUser.port_signatures();
        for p in [4500u16, 500, 1194, 1701, 1723] {
            assert!(
                sigs.iter().any(|s| s.port == p),
                "§6 port {p} missing from VpnUser"
            );
        }
    }

    #[test]
    fn site_to_site_is_portless() {
        for s in AppClass::VpnSiteToSite.port_signatures() {
            assert!(!s.protocol.has_ports());
        }
    }

    #[test]
    fn port_sig_display() {
        assert_eq!(PortSig::tcp(443).to_string(), "TCP/443");
        assert_eq!(PortSig::udp(4500).to_string(), "UDP/4500");
        assert_eq!(
            PortSig {
                protocol: IpProtocol::Gre,
                port: 0
            }
            .to_string(),
            "GRE"
        );
    }

    #[test]
    fn labels_unique() {
        let mut labels: Vec<_> = AppClass::ALL.iter().map(|c| c.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), AppClass::ALL.len());
    }
}
