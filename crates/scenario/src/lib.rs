//! # lockdown-scenario
//!
//! The COVID-19 scenario model: *when* behaviour changed and *how much*,
//! per region, application class, and hour of day.
//!
//! This crate is the reproduction's substitute for reality. The paper
//! measures what the pandemic did to traffic; this crate encodes those
//! measured effects as a generative model, so the synthetic traces the
//! `lockdown-traffic` crate emits carry the same structure the paper's
//! pipeline extracts back out:
//!
//! * [`calendar`] — 2020 day types, holidays (Easter is weekend-like, §4),
//!   and the exact analysis weeks each figure selects;
//! * [`phases`] — per-region lockdown timelines (Europe in March, the US
//!   East Coast trailing) and a behavioural intensity curve;
//! * [`diurnal`] — hour-of-day shapes: workday evening peaks, weekend
//!   morning momentum, the lockdown morph (Fig. 2);
//! * [`apps`] — the application-class taxonomy with port signatures from
//!   §4, Table 1 and Appendix B;
//! * [`demand`] — the calibrated demand model: expected Gbps per
//!   (vantage, class, date, hour), with events (resolution reduction,
//!   gaming outage) and vantage-level factors (mobile dip, roaming
//!   collapse);
//! * [`edu`] — the §7 educational-network model: campus presence, remote
//!   activity, per-class connection growth (VPN 4.8×, SSH 9.1×, …);
//! * [`measures`] — the scenario DSL: declarative dated measures and
//!   events that the phase/demand/edu interpreters evaluate, with the
//!   spring-2020 calibration shipped as both a built-in and
//!   `scenarios/covid-spring-2020.toml`;
//! * [`toml`] — the in-crate TOML subset parser scenario files use.
//!
//! Calibration numbers flow *only* through generated traffic: the analysis
//! crate never reads this model, so reproducing a figure means the pipeline
//! actually recovered the effect from flow data.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod apps;
pub mod calendar;
pub mod demand;
pub mod diurnal;
pub mod edu;
pub mod measures;
pub mod phases;
pub mod toml;

/// Convenient glob-import surface.
pub mod prelude {
    pub use crate::apps::{AppClass, PortSig, GAMING_PORTS};
    pub use crate::calendar::{
        day_type, is_holiday, study_end, study_start, AnalysisWeek, DayType, APPCLASS_ISP_WEEKS,
        APPCLASS_IXP_WEEKS, EDU_WEEKS, FIG3_WEEKS, PORTS_ISP_WEEKS, PORTS_IXP_WEEKS,
    };
    pub use crate::demand::{app_share, event_factor, organic_growth, DemandModel};
    pub use crate::diurnal::{blend, peak_hour, shape, DiurnalProfile};
    pub use crate::edu::{EduClass, EduModel};
    pub use crate::measures::{
        BaselineSpec, EduSpec, MeasureEvent, RegionMeasures, ScenarioSpec, SpecError,
    };
    pub use crate::phases::{IntensityCurve, LockdownPhase, RegionTimeline};
}
