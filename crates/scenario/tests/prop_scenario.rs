//! Property tests for the scenario model's invariants: demand is always
//! positive and finite, intensity stays in [0, 1], shapes stay normalized,
//! and the calendar's day types partition every date.

use lockdown_flow::time::Date;
use lockdown_scenario::apps::AppClass;
use lockdown_scenario::calendar::{day_type, DayType};
use lockdown_scenario::demand::{app_share, DemandModel};
use lockdown_scenario::diurnal::{blend, shape, DiurnalProfile};
use lockdown_scenario::edu::{EduClass, EduModel};
use lockdown_scenario::phases::RegionTimeline;
use lockdown_topology::asn::Region;
use lockdown_topology::vantage::VantagePoint;
use proptest::prelude::*;

fn arb_date() -> impl Strategy<Value = Date> {
    // The study window plus margins.
    (0i64..200).prop_map(|d| Date::new(2019, 12, 15).add_days(d))
}

fn arb_vantage() -> impl Strategy<Value = VantagePoint> {
    prop::sample::select(VantagePoint::ALL.to_vec())
}

fn arb_app() -> impl Strategy<Value = AppClass> {
    prop::sample::select(AppClass::ALL.to_vec())
}

proptest! {
    /// Demand is finite and non-negative for every cell in the window.
    #[test]
    #[test]
    fn demand_finite_nonnegative(vp in arb_vantage(), app in arb_app(), d in arb_date(), h in 0u8..24) {
        let m = DemandModel::new();
        let v = m.volume_gbps(vp, app, d, h);
        prop_assert!(v.is_finite());
        prop_assert!(v >= 0.0);
    }

    /// Growth multipliers are positive and bounded (nothing grows 100×,
    /// nothing goes negative — the clamps the paper's ±[100, 200]% range
    /// presumes).
    #[test]
    #[test]
    fn growth_bounded(vp in arb_vantage(), app in arb_app(), d in arb_date(), h in 0u8..24) {
        let m = DemandModel::new();
        let g = m.growth(vp, app, d, h);
        prop_assert!(g > 0.0, "{vp}/{app} {d:?}: growth {g}");
        prop_assert!(g < 6.0, "{vp}/{app} {d:?}: growth {g}");
    }

    /// Intensity (raw and effective) stays in [0, 1], and effective never
    /// exceeds raw.
    #[test]
    #[test]
    fn intensity_bounds(vp in arb_vantage(), d in arb_date()) {
        let m = DemandModel::new();
        let raw = m.intensity(vp, d);
        let eff = m.effective_intensity(vp, d);
        prop_assert!((0.0..=1.0).contains(&raw));
        prop_assert!((0.0..=1.0).contains(&eff));
        prop_assert!(eff <= raw + 1e-12);
    }

    /// Phase timelines are monotone: intensity never decreases before the
    /// relaxation date.
    #[test]
    #[test]
    fn intensity_monotone_until_relaxation(
        region in prop::sample::select(Region::ALL.to_vec()),
        offset in 0i64..120,
    ) {
        let t = RegionTimeline::for_region(region);
        let d = Date::new(2020, 1, 1).add_days(offset);
        if d.add_days(1) < t.relaxation {
            prop_assert!(t.intensity(d.add_days(1)) >= t.intensity(d) - 1e-12);
        }
    }

    /// Day types partition every date (calendar totality).
    #[test]
    #[test]
    fn day_types_total(d in arb_date(), region in prop::sample::select(Region::ALL.to_vec())) {
        let dt = day_type(d, region);
        // Weekends are weekend-typed or holiday-typed, never workdays.
        if d.weekday().is_weekend() {
            prop_assert!(dt != DayType::Workday);
        }
    }

    /// Blending any two profiles stays within their pointwise envelope.
    #[test]
    #[test]
    fn blend_envelope(t in 0.0f64..1.0, h in 0u8..24) {
        for (a, b) in [
            (DiurnalProfile::ResidentialWorkday, DiurnalProfile::ResidentialLockdown),
            (DiurnalProfile::BusinessHours, DiurnalProfile::Flat),
        ] {
            let lo = shape(a, h).min(shape(b, h));
            let hi = shape(a, h).max(shape(b, h));
            let v = blend(a, b, t, h);
            prop_assert!(v >= lo - 1e-12 && v <= hi + 1e-12);
        }
    }

    /// App shares form a probability distribution per vantage point.
    #[test]
    #[test]
    fn shares_are_distribution(vp in arb_vantage()) {
        let sum: f64 = AppClass::ALL.iter().map(|&a| app_share(vp, a)).sum();
        prop_assert!((sum - 1.0).abs() < 1e-9);
        for app in AppClass::ALL {
            prop_assert!((0.0..=1.0).contains(&app_share(vp, app)));
        }
    }

    /// EDU model: volumes and connection counts are finite and positive,
    /// presence/remote stay in [0, 1].
    #[test]
    #[test]
    fn edu_model_bounds(d in arb_date(), h in 0u8..24) {
        let m = EduModel::new();
        prop_assert!((0.0..=1.0).contains(&m.campus_presence(d)));
        prop_assert!((0.0..=1.0).contains(&m.remote_activity(d)));
        let (i, e) = m.volume_gbps(d, h);
        prop_assert!(i.is_finite() && i >= 0.0);
        prop_assert!(e.is_finite() && e > 0.0);
        for c in EduClass::ALL {
            let n = m.daily_connections(c, d);
            prop_assert!(n.is_finite() && n >= 0.0);
        }
    }
}
