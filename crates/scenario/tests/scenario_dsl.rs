//! The shipped scenario files are the source of truth for the DSL:
//! `scenarios/covid-spring-2020.toml` must parse to exactly the built-in
//! calibration (the byte-identity safety rail rests on this), and
//! malformed measure files must be rejected with an error naming the
//! offending line.

use lockdown_scenario::measures::ScenarioSpec;

fn shipped(name: &str) -> String {
    let path = format!("{}/../../scenarios/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("reading {path}: {e}"))
}

#[test]
fn shipped_covid_file_is_the_builtin_calibration() {
    let parsed = ScenarioSpec::parse_toml(&shipped("covid-spring-2020.toml"))
        .expect("shipped reference scenario parses");
    let builtin = ScenarioSpec::covid_spring_2020();
    assert_eq!(parsed, builtin, "shipped TOML drifted from the builtin");
    assert_eq!(parsed.fingerprint(), builtin.fingerprint());
}

#[test]
fn shipped_covid_file_roundtrips_through_render() {
    let parsed = ScenarioSpec::parse_toml(&shipped("covid-spring-2020.toml")).expect("parses");
    let rendered = parsed.to_toml();
    let reparsed = ScenarioSpec::parse_toml(&rendered).expect("rendering parses back");
    assert_eq!(parsed, reparsed);
}

#[test]
fn shipped_outage_file_is_a_distinct_valid_scenario() {
    let outage = ScenarioSpec::parse_toml(&shipped("hypergiant-outage.toml"))
        .expect("shipped counterfactual scenario parses");
    let builtin = ScenarioSpec::covid_spring_2020();
    assert_ne!(
        outage.fingerprint(),
        builtin.fingerprint(),
        "the counterfactual must be behaviourally distinct"
    );
    assert!(outage
        .events
        .iter()
        .any(|e| e.name == "hypergiant-cdn-outage"));
}

/// The builtin, rendered, with one line rewritten — for malformed-input
/// probes that stay valid TOML.
fn rendered_with(from: &str, to: &str) -> String {
    let base = ScenarioSpec::covid_spring_2020().to_toml();
    assert!(
        base.contains(from),
        "probe anchor {from:?} not in rendering"
    );
    base.replacen(from, to, 1)
}

#[test]
fn overlapping_measure_dates_are_rejected_with_a_line() {
    // Move central-europe's stay-at-home before its restrictions date.
    let text = rendered_with(
        "date = 2020-03-16\nfrom = 0.4",
        "date = 2020-03-01\nfrom = 0.4",
    );
    let err = ScenarioSpec::parse_toml(&text).expect_err("out-of-order measures must not parse");
    assert!(
        err.message.contains("overlapping measure dates"),
        "unexpected message: {}",
        err.message
    );
    assert!(err.line > 0, "error must name a source line");
    assert!(err.to_string().starts_with(&format!("line {}:", err.line)));
}

#[test]
fn fractions_outside_unit_interval_are_rejected_with_a_line() {
    let text = rendered_with("release = 0.55", "release = 1.55");
    let err = ScenarioSpec::parse_toml(&text).expect_err("release > 1 must not parse");
    assert!(
        err.message.contains("outside [0, 1]"),
        "unexpected message: {}",
        err.message
    );
    let line_no = err.line;
    assert!(line_no > 0);
    let named = text.lines().nth(line_no - 1).expect("line exists");
    assert!(
        named.contains("release = 1.55"),
        "error line {line_no} should be the bad entry, got {named:?}"
    );
}

#[test]
fn unknown_application_class_is_rejected_with_a_line() {
    let text = rendered_with("classes = [\"gaming\"]", "classes = [\"gamign\"]");
    let err = ScenarioSpec::parse_toml(&text).expect_err("typo'd class must not parse");
    assert!(
        err.message.contains("unknown application class"),
        "unexpected message: {}",
        err.message
    );
    assert!(err.line > 0);
}
