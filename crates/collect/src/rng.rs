//! Minimal splitmix64 generator for deterministic fault schedules.
//!
//! The collection plane deliberately carries its own tiny PRNG instead of
//! depending on `rand`: fault schedules are part of the deterministic-output
//! contract ("same seed + same profile = same figures"), so they must not
//! drift with an external crate's stream implementation.

/// Splitmix64 state.
#[derive(Debug, Clone)]
pub(crate) struct SplitMix {
    state: u64,
}

impl SplitMix {
    pub(crate) fn new(seed: u64) -> SplitMix {
        SplitMix { state: seed }
    }

    pub(crate) fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, 1)` with 53 bits of precision.
    pub(crate) fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Hash a tuple of values into one seed by folding them through splitmix64.
pub(crate) fn mix(parts: &[u64]) -> u64 {
    let mut acc = 0x51_7C_C1_B7_27_22_0A_95u64;
    for &p in parts {
        acc = SplitMix::new(acc ^ p).next_u64();
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<u64> = (0..8)
            .map(|_| 0)
            .scan(SplitMix::new(42), |r, _| Some(r.next_u64()))
            .collect();
        let b: Vec<u64> = (0..8)
            .map(|_| 0)
            .scan(SplitMix::new(42), |r, _| Some(r.next_u64()))
            .collect();
        assert_eq!(a, b);
        let c: Vec<u64> = (0..8)
            .map(|_| 0)
            .scan(SplitMix::new(43), |r, _| Some(r.next_u64()))
            .collect();
        assert_ne!(a, c);
    }

    #[test]
    fn mix_separates_argument_positions() {
        assert_ne!(mix(&[1, 2]), mix(&[2, 1]));
        assert_ne!(mix(&[0, 0]), mix(&[0]));
    }

    #[test]
    fn unit_draws_stay_in_range() {
        let mut r = SplitMix::new(7);
        for _ in 0..1000 {
            let f = r.next_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }
}
