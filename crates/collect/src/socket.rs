//! UDP socket edge of the collection daemon.
//!
//! Wraps `std::net::UdpSocket` with the two things a flow collector must
//! get right at the wire edge:
//!
//! * **Truncation safety.** A UDP read into a too-small buffer silently
//!   discards the datagram's tail; decoding the surviving prefix would
//!   mis-parse records. [`RecvSocket::recv`] therefore reads into a
//!   buffer strictly larger than the maximum UDP payload, and any read
//!   that *fills* the buffer — only possible when the buffer is smaller
//!   than the payload, i.e. the datagram was cut — is reported as
//!   [`Recv::Truncated`] and never decoded. The truncated prefix still
//!   carries the (intact) header, so the drop can be attributed to an
//!   observation domain and a claimed record count.
//! * **Header peeking.** Fan-out by observation domain must not wait for
//!   template state: [`peek`] reads domain, sequence and the claimed
//!   record count straight from the format header.
//!
//! * **Kernel buffer tuning.** `SO_RCVBUF` defaults to the kernel's
//!   `rmem_default`, which a burst of large datagrams overruns long
//!   before the receiver thread falls behind. [`RecvSocket::set_rcvbuf`]
//!   grows it through a raw `setsockopt` call (a two-symbol
//!   `extern "C"` binding — no libc dependency) and reads the granted
//!   size back, so callers see exactly what the kernel clamped them to
//!   (`net.core.rmem_max`). Senders that must not lose datagrams still
//!   bound their in-flight window (see [`crate::daemon`]); the buffer is
//!   the margin for senders that cannot.

use std::io;
use std::net::{SocketAddr, ToSocketAddrs, UdpSocket};
use std::time::Duration;

/// Raw `SO_RCVBUF` get/set on an already-bound socket.
///
/// `std::net` exposes no buffer-size API and the workspace links no libc
/// crate, so the two syscall wrappers are declared directly: on Linux
/// both live in the C runtime the binary is linked against anyway. The
/// `unsafe` surface is exactly two FFI calls on stack-owned integers —
/// no pointers outlive the call.
#[cfg(target_os = "linux")]
#[allow(unsafe_code)]
mod sockopt {
    use std::ffi::{c_int, c_void};
    use std::io;
    use std::os::fd::AsRawFd;

    /// `SOL_SOCKET` on Linux.
    const SOL_SOCKET: c_int = 1;
    /// `SO_RCVBUF` on Linux.
    const SO_RCVBUF: c_int = 8;

    extern "C" {
        fn setsockopt(
            fd: c_int,
            level: c_int,
            name: c_int,
            value: *const c_void,
            len: u32,
        ) -> c_int;
        fn getsockopt(
            fd: c_int,
            level: c_int,
            name: c_int,
            value: *mut c_void,
            len: *mut u32,
        ) -> c_int;
    }

    /// Request a receive buffer of `bytes`; returns what the kernel
    /// granted (it doubles the request for bookkeeping overhead and
    /// clamps it to `net.core.rmem_max`).
    pub fn set_rcvbuf(sock: &impl AsRawFd, bytes: usize) -> io::Result<usize> {
        let requested = bytes.min(c_int::MAX as usize) as c_int;
        let len = std::mem::size_of::<c_int>() as u32;
        let rc = unsafe {
            setsockopt(
                sock.as_raw_fd(),
                SOL_SOCKET,
                SO_RCVBUF,
                (&requested as *const c_int).cast(),
                len,
            )
        };
        if rc != 0 {
            return Err(io::Error::last_os_error());
        }
        rcvbuf(sock)
    }

    /// The socket's current receive-buffer size as the kernel reports it.
    pub fn rcvbuf(sock: &impl AsRawFd) -> io::Result<usize> {
        let mut value: c_int = 0;
        let mut len = std::mem::size_of::<c_int>() as u32;
        let rc = unsafe {
            getsockopt(
                sock.as_raw_fd(),
                SOL_SOCKET,
                SO_RCVBUF,
                (&mut value as *mut c_int).cast(),
                &mut len,
            )
        };
        if rc != 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(value.max(0) as usize)
    }
}

/// Non-Linux fallback: buffer tuning is a no-op request the caller sees
/// as unsupported rather than silently ignored.
#[cfg(not(target_os = "linux"))]
mod sockopt {
    use std::io;
    use std::os::fd::AsRawFd;

    pub fn set_rcvbuf(_sock: &impl AsRawFd, _bytes: usize) -> io::Result<usize> {
        Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "SO_RCVBUF tuning is only wired up for Linux",
        ))
    }

    pub fn rcvbuf(_sock: &impl AsRawFd) -> io::Result<usize> {
        Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "SO_RCVBUF tuning is only wired up for Linux",
        ))
    }
}

use lockdown_flow::ipfix;
use lockdown_flow::netflow::{v5, v9};
use lockdown_flow::prelude::*;

/// Largest possible UDP payload (65535 minus IP and UDP headers).
pub const MAX_UDP_PAYLOAD: usize = 65_507;

/// Default receive buffer: strictly larger than [`MAX_UDP_PAYLOAD`], so a
/// full-buffer read is impossible and truncation cannot go undetected.
pub const RECV_BUF_LEN: usize = 65_536;

/// How long a receiver blocks in one `recv` before checking for shutdown.
pub const POLL: Duration = Duration::from_millis(25);

/// Format-level header fields readable without template state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WirePeek {
    /// Observation domain: v9 source id, IPFIX domain id, v5 engine
    /// type/id pair (16 bits — see `v5::encode`).
    pub domain: u32,
    /// Wire sequence number.
    pub sequence: u32,
    /// Records the datagram claims to carry: exact for v5 (header count),
    /// an upper bound for v9 (header count includes template records),
    /// and 0 for IPFIX (no header count; the decoder learns it).
    pub claimed_records: u32,
}

/// Peek `(domain, sequence, claimed records)` from a datagram header.
/// `None` when the bytes do not parse as a `format` header.
pub fn peek(format: ExportFormat, bytes: &[u8]) -> Option<WirePeek> {
    match format {
        ExportFormat::NetflowV5 => {
            // check() validates the length arithmetic of the whole packet,
            // which a truncated prefix fails; decode the fixed header
            // fields directly so attribution survives truncation.
            header_v5(bytes)
        }
        ExportFormat::NetflowV9 => v9::check(bytes).ok().map(|h| WirePeek {
            domain: h.source_id,
            sequence: h.sequence,
            claimed_records: u32::from(h.count),
        }),
        ExportFormat::Ipfix => ipfix::check(bytes).ok().map(|h| WirePeek {
            domain: h.domain_id,
            sequence: h.sequence,
            claimed_records: 0,
        }),
    }
}

/// v5 header fields from the fixed 24-byte prefix, without requiring the
/// record payload to be present (truncation attribution needs this).
fn header_v5(bytes: &[u8]) -> Option<WirePeek> {
    if let Ok(h) = v5::check(bytes) {
        return Some(WirePeek {
            domain: (u32::from(h.engine_type) << 8) | u32::from(h.engine_id),
            sequence: h.flow_sequence,
            claimed_records: u32::from(h.count),
        });
    }
    if bytes.len() < 24 || u16::from_be_bytes([bytes[0], bytes[1]]) != 5 {
        return None;
    }
    Some(WirePeek {
        domain: (u32::from(bytes[20]) << 8) | u32::from(bytes[21]),
        sequence: u32::from_be_bytes([bytes[16], bytes[17], bytes[18], bytes[19]]),
        claimed_records: u32::from(u16::from_be_bytes([bytes[2], bytes[3]])),
    })
}

/// One `recv` outcome.
#[derive(Debug)]
pub enum Recv {
    /// A complete datagram.
    Datagram(Vec<u8>),
    /// A datagram that filled the receive buffer: its tail was cut by the
    /// kernel, so only the (header-bearing) prefix is available and it
    /// must not be decoded.
    Truncated(Vec<u8>),
    /// The poll interval elapsed with nothing to read.
    TimedOut,
}

/// A bound, polling UDP receive socket.
#[derive(Debug)]
pub struct RecvSocket {
    socket: UdpSocket,
    buf: Vec<u8>,
}

impl RecvSocket {
    /// Bind `addr` with the full-size (truncation-proof) receive buffer.
    pub fn bind<A: ToSocketAddrs>(addr: A) -> io::Result<RecvSocket> {
        RecvSocket::bind_with_buffer(addr, RECV_BUF_LEN)
    }

    /// Bind with an explicit buffer length. Buffers smaller than
    /// [`RECV_BUF_LEN`] make truncation *possible* — used by tests to
    /// exercise the truncation path without crafting >64 KiB datagrams.
    pub fn bind_with_buffer<A: ToSocketAddrs>(addr: A, buf_len: usize) -> io::Result<RecvSocket> {
        let socket = UdpSocket::bind(addr)?;
        socket.set_read_timeout(Some(POLL))?;
        Ok(RecvSocket {
            socket,
            buf: vec![0u8; buf_len.max(64)],
        })
    }

    /// The bound local address.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.socket.local_addr()
    }

    /// Grow the kernel receive buffer (`SO_RCVBUF`) to `bytes`; returns
    /// the size actually granted. The kernel doubles the request for its
    /// own bookkeeping and clamps it to `net.core.rmem_max`, so the
    /// return value is how callers learn the clamp bit.
    pub fn set_rcvbuf(&self, bytes: usize) -> io::Result<usize> {
        sockopt::set_rcvbuf(&self.socket, bytes)
    }

    /// The kernel receive-buffer size currently in effect.
    pub fn rcvbuf(&self) -> io::Result<usize> {
        sockopt::rcvbuf(&self.socket)
    }

    /// Receive one datagram, classifying truncation; blocks at most
    /// [`POLL`]. Interrupted reads surface as [`Recv::TimedOut`] so the
    /// caller's poll loop simply retries.
    pub fn recv(&mut self) -> io::Result<Recv> {
        match self.socket.recv(&mut self.buf) {
            Ok(n) if n >= self.buf.len() => Ok(Recv::Truncated(self.buf[..n].to_vec())),
            Ok(n) => Ok(Recv::Datagram(self.buf[..n].to_vec())),
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock
                        | io::ErrorKind::TimedOut
                        | io::ErrorKind::Interrupted
                ) =>
            {
                Ok(Recv::TimedOut)
            }
            Err(e) => Err(e),
        }
    }
}

/// An unbound sending socket for exporter-side emission to a collectd.
#[derive(Debug)]
pub struct SendSocket {
    socket: UdpSocket,
}

impl SendSocket {
    /// An ephemeral local socket to send from.
    pub fn open() -> io::Result<SendSocket> {
        Ok(SendSocket {
            socket: UdpSocket::bind("127.0.0.1:0")?,
        })
    }

    /// Send one datagram to `target`.
    pub fn send_to(&self, bytes: &[u8], target: SocketAddr) -> io::Result<()> {
        let n = self.socket.send_to(bytes, target)?;
        if n != bytes.len() {
            return Err(io::Error::other(format!(
                "short UDP send: {n} of {} bytes",
                bytes.len()
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_timeout() {
        let mut rx = RecvSocket::bind("127.0.0.1:0").unwrap();
        let addr = rx.local_addr().unwrap();
        let tx = SendSocket::open().unwrap();
        tx.send_to(b"hello", addr).unwrap();
        loop {
            match rx.recv().unwrap() {
                Recv::Datagram(b) => {
                    assert_eq!(b, b"hello");
                    break;
                }
                Recv::TimedOut => continue,
                Recv::Truncated(_) => panic!("full-size buffer cannot truncate"),
            }
        }
        assert!(matches!(rx.recv().unwrap(), Recv::TimedOut));
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn rcvbuf_request_is_granted_and_readable() {
        let rx = RecvSocket::bind("127.0.0.1:0").unwrap();
        let default = rx.rcvbuf().expect("getsockopt");
        assert!(default > 0, "kernel always grants some buffer");
        // A small request is always under rmem_max, so the grant must be
        // at least the request (Linux doubles it).
        let granted = rx.set_rcvbuf(64 * 1024).expect("setsockopt");
        assert!(granted >= 64 * 1024, "granted {granted} for a 64 KiB ask");
        assert_eq!(rx.rcvbuf().unwrap(), granted, "readback is stable");
        // An absurd request is clamped, not an error.
        let clamped = rx.set_rcvbuf(1 << 40).expect("clamped setsockopt");
        assert!(
            clamped >= granted,
            "clamp never shrinks below a prior grant"
        );
    }

    #[test]
    fn small_buffer_flags_truncation() {
        let mut rx = RecvSocket::bind_with_buffer("127.0.0.1:0", 64).unwrap();
        let addr = rx.local_addr().unwrap();
        let tx = SendSocket::open().unwrap();
        tx.send_to(&[0xAB; 300], addr).unwrap();
        loop {
            match rx.recv().unwrap() {
                Recv::Truncated(prefix) => {
                    assert_eq!(prefix.len(), 64);
                    break;
                }
                Recv::TimedOut => continue,
                Recv::Datagram(_) => panic!("300-byte datagram must truncate in a 64-byte buffer"),
            }
        }
    }

    #[test]
    fn peeks_all_three_formats() {
        use lockdown_flow::exporter::{Exporter, ExporterConfig};
        use lockdown_flow::time::Date;
        use std::net::Ipv4Addr;
        let boot = Date::new(2020, 3, 25).midnight();
        let start = boot.add_hours(1);
        let record = FlowRecord::builder(
            FlowKey {
                src_addr: Ipv4Addr::new(203, 0, 113, 7),
                dst_addr: Ipv4Addr::new(192, 0, 2, 1),
                src_port: 55_000,
                dst_port: 443,
                protocol: IpProtocol::Tcp,
            },
            start,
        )
        .end(start.add_secs(12))
        .bytes(90_000)
        .packets(70)
        .build();
        for format in [
            ExportFormat::NetflowV5,
            ExportFormat::NetflowV9,
            ExportFormat::Ipfix,
        ] {
            let mut cfg = ExporterConfig::new(format, boot);
            cfg.domain_id = 0x0102;
            cfg.initial_sequence = 7;
            let mut ex = Exporter::new(cfg);
            let pkts = ex.export_all(&[record], start.add_secs(60));
            assert_eq!(pkts.len(), 1, "{format:?}: one record, one datagram");
            let p = peek(format, &pkts[0]).expect("header must peek");
            assert_eq!(p.domain, 0x0102, "{format:?} domain");
            assert_eq!(p.sequence, 7, "{format:?} first-packet sequence");
            match format {
                // v5 header count is the exact record count.
                ExportFormat::NetflowV5 => assert_eq!(p.claimed_records, 1),
                // v9 header count includes template records: upper bound.
                ExportFormat::NetflowV9 => assert!(p.claimed_records >= 1),
                // IPFIX has no header count.
                ExportFormat::Ipfix => assert_eq!(p.claimed_records, 0),
            }
        }
    }

    #[test]
    fn v5_peek_survives_truncation_to_header_prefix() {
        use lockdown_flow::netflow::v5;
        use lockdown_flow::time::Date;
        use std::net::Ipv4Addr;
        let boot = Date::new(2020, 3, 25).midnight();
        let start = boot.add_hours(1);
        let record = FlowRecord::builder(
            FlowKey {
                src_addr: Ipv4Addr::new(203, 0, 113, 7),
                dst_addr: Ipv4Addr::new(192, 0, 2, 1),
                src_port: 55_000,
                dst_port: 443,
                protocol: IpProtocol::Tcp,
            },
            start,
        )
        .end(start.add_secs(12))
        .bytes(90_000)
        .packets(70)
        .build();
        let pkt = v5::encode_with_engine(&[record, record], start.add_secs(60), boot, 41, 0x0304);
        // A kernel-truncated read keeps only a prefix; the fixed header
        // still attributes domain, sequence and claimed count.
        let p = peek(ExportFormat::NetflowV5, &pkt[..32]).expect("prefix must peek");
        assert_eq!(p.domain, 0x0304);
        assert_eq!(p.sequence, 41);
        assert_eq!(p.claimed_records, 2);
        // But an intact decode of the full packet still works.
        assert!(peek(ExportFormat::NetflowV5, &pkt).is_some());
        assert!(peek(ExportFormat::NetflowV5, &[0u8; 10]).is_none());
    }
}
