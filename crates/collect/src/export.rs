//! Exporter-side feeder: the sending half of the socket plane as its own
//! entry point.
//!
//! [`SocketPlane`](crate::SocketPlane) keeps exporter and daemon in one
//! process, which is what the byte-identity tests want but not what a
//! deployment looks like. This module is the other topology: a *separate
//! process* (`lockdown export`) encodes synthetic flows through the real
//! [`ExporterFleet`] and pushes the datagrams at a running
//! `lockdown collectd` over the loopback wire. Conservation is then a
//! cross-process identity: the summary this side prints (records and
//! datagrams sent) must reconcile with the ingest summary the daemon
//! prints at drain — the CLI test diffs exactly those two lines.
//!
//! Routing contract: datagram for domain `d` goes to
//! `targets[d % targets.len()]`, the same rule [`crate::SocketPlane`]
//! uses, so per-domain ordering is preserved through one socket and one
//! shard queue.

use std::io;
use std::net::SocketAddr;

use lockdown_flow::exporter::ExportFormat;
use lockdown_flow::time::Date;
use lockdown_topology::vantage::VantagePoint;
use lockdown_traffic::plan::{Cell, Stream};

use crate::fleet::{ExporterFleet, FleetConfig};
use crate::soak::soak_flows;
use crate::socket::SendSocket;

/// Shape of one export run against a remote collectd.
#[derive(Debug, Clone)]
pub struct ExportConfig {
    /// Export format on the wire (must match the daemon's).
    pub format: ExportFormat,
    /// The daemon's bound socket addresses, in `listening on` order.
    pub targets: Vec<SocketAddr>,
    /// Cells (export sessions) to run.
    pub cells: usize,
    /// Flow records exported per cell.
    pub records_per_cell: usize,
    /// Records per datagram.
    pub batch_size: usize,
    /// Exporters (observation domains) per cell.
    pub exporters: usize,
}

impl ExportConfig {
    /// Defaults sized like the small soak: 2 cells × 20k records in
    /// 200-record batches from 2 domains.
    pub fn new(format: ExportFormat, targets: Vec<SocketAddr>) -> ExportConfig {
        ExportConfig {
            format,
            targets,
            cells: 2,
            records_per_cell: 20_000,
            batch_size: 200,
            exporters: 2,
        }
    }
}

/// What one export run put on the wire — the sender's half of the
/// cross-process conservation identity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExportSummary {
    /// Cells exported.
    pub cells: usize,
    /// Flow records encoded and sent.
    pub records_sent: u64,
    /// Datagrams sent.
    pub datagrams_sent: u64,
    /// Payload bytes sent.
    pub bytes_sent: u64,
}

impl ExportSummary {
    /// The one-line summary `lockdown export` prints; the CLI test
    /// reconciles it against the daemon's drain summary.
    pub fn render(&self) -> String {
        format!(
            "export: {} records in {} datagrams ({} bytes) over {} cells",
            self.records_sent, self.datagrams_sent, self.bytes_sent, self.cells
        )
    }
}

/// Encode and send every configured cell. Errors only on socket failure;
/// whether the datagrams *arrive* is the receiving daemon's ledger to
/// keep (that asymmetry is the point of the exercise).
pub fn run(cfg: &ExportConfig) -> io::Result<ExportSummary> {
    if cfg.targets.is_empty() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "export needs at least one target address",
        ));
    }
    let sender = SendSocket::open()?;
    let flows = soak_flows(cfg.records_per_cell, 12);
    let now = flows
        .iter()
        .map(|f| f.end)
        .max()
        .unwrap_or_else(|| Date::new(2020, 3, 25).at_hour(13))
        .add_secs(1);

    let mut summary = ExportSummary {
        cells: cfg.cells,
        records_sent: 0,
        datagrams_sent: 0,
        bytes_sent: 0,
    };
    for c in 0..cfg.cells {
        let cell = Cell {
            stream: Stream::Vantage(VantagePoint::IxpCe),
            date: Date::new(2020, 3, 25),
            hour: (c % 24) as u8,
        };
        let mut fleet = ExporterFleet::new(
            FleetConfig {
                format: cfg.format,
                exporters: cfg.exporters,
                batch_size: cfg.batch_size,
                // Self-describing datagrams: the daemon decodes every
                // arrival without needing to have seen session start.
                template_refresh: 1,
                restart_every: 0,
                initial_sequence: 0,
                boot_age_secs: 0,
                sampling: None,
            },
            cell.stream.wire_id(),
            cell.date.at_hour(cell.hour),
        );
        let (datagrams, truth) = fleet.export_cell(&flows, now);
        for dg in &datagrams {
            sender.send_to(
                &dg.bytes,
                cfg.targets[dg.domain as usize % cfg.targets.len()],
            )?;
            summary.bytes_sent += dg.bytes.len() as u64;
        }
        summary.records_sent += truth.sent_records;
        summary.datagrams_sent += truth.datagrams;
    }
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::daemon::{Collectd, CollectdConfig};
    use crate::metrics::CollectMetrics;
    use std::sync::Arc;
    use std::time::{Duration, Instant};

    /// In-process version of the two-process topology: a daemon on real
    /// sockets, an export run feeding it, counts reconciled at drain.
    #[test]
    fn export_run_reconciles_with_a_daemon() {
        let metrics = CollectMetrics::new();
        let mut dcfg = CollectdConfig::new(ExportFormat::Ipfix);
        dcfg.sockets = 2;
        dcfg.rcvbuf = Some(4 << 20);
        let mut daemon = Collectd::bind(&dcfg, Arc::clone(&metrics)).unwrap();

        let mut cfg = ExportConfig::new(ExportFormat::Ipfix, daemon.addrs().to_vec());
        cfg.cells = 1;
        cfg.records_per_cell = 5_000;
        let out = run(&cfg).expect("export over loopback");
        assert_eq!(out.records_sent, 5_000);
        assert!(out.datagrams_sent > 0);
        assert!(out.render().contains("export: 5000 records"));

        // Wait for the daemon to account everything sent, then drain.
        let t0 = Instant::now();
        while daemon.accounted() < out.datagrams_sent {
            assert!(t0.elapsed() < Duration::from_secs(10), "ingest timed out");
            std::thread::yield_now();
        }
        let cycle = daemon.close_cycle();
        assert_eq!(cycle.socket_received, out.datagrams_sent);
        assert_eq!(cycle.shards.totals().records_accepted, out.records_sent);
        daemon.shutdown();
    }
}
