//! Per-stream exporter fleets.
//!
//! One engine cell's flows are partitioned across `N` exporters — distinct
//! observation domains, boot times and template-refresh cadences — exactly
//! as a vantage point with several border routers would export them.
//! Partitioning is a stable FNV-1a hash of the flow key, so a flow always
//! leaves through the same exporter regardless of batch boundaries.
//!
//! The fleet also applies the profile's scheduled restarts: after every
//! `restart_every` datagrams an exporter reboots, resetting its uptime base
//! and re-announcing its template on the next datagram (sequence numbers
//! survive the reboot; collectors spot the boot-epoch shift instead).

use lockdown_flow::prelude::*;

/// One datagram leaving the fleet, tagged with its observation domain and
/// ground-truth record count (the tag models the exporter's source socket,
/// which real collectors use to demultiplex v5 streams that carry no
/// domain id in the header).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireDatagram {
    /// Observation domain / source id of the emitting exporter.
    pub domain: u32,
    /// Ground-truth flow records inside this datagram.
    pub records: u32,
    /// Ground-truth sum of the flow-record byte counters inside this
    /// datagram (raw, pre-renormalization under sampled export).
    pub flow_bytes: u64,
    /// Ground-truth sum of the flow-record packet counters inside this
    /// datagram (raw, pre-renormalization under sampled export).
    pub flow_packets: u64,
    /// Encoded datagram bytes.
    pub bytes: Vec<u8>,
}

/// Ground truth about one observation domain's export session: where its
/// sequence counter started on the wire and how many units it really sent.
/// Collectors are closed against this — never against the wrapped u32
/// counter alone, which aliases every 2^32 units.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DomainTruth {
    /// Observation domain / source id.
    pub domain: u32,
    /// Sequence value the first datagram carried (wire width).
    pub first_seq: u32,
    /// Unwrapped total sequence units the domain sent: flows (v5),
    /// packets (v9), records (IPFIX).
    pub units_sent: u64,
}

/// Ground truth about one cell's export session, used to close collector
/// sessions and to validate loss estimates.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct FleetTruth {
    /// Records pushed through the fleet (equals the cell's flow count).
    pub sent_records: u64,
    /// Records the in-band samplers dropped before the wire (0 unless the
    /// fleet exports sampled).
    pub sampled_out: u64,
    /// Datagrams emitted.
    pub datagrams: u64,
    /// Scheduled restarts applied.
    pub restarts: u64,
    /// Per-domain session ground truth, in domain order.
    pub sessions: Vec<DomainTruth>,
}

/// Configuration for one cell's exporter fleet.
#[derive(Debug, Clone, Copy)]
pub struct FleetConfig {
    /// Export format for every member.
    pub format: ExportFormat,
    /// Number of exporters the cell's flows are partitioned across.
    pub exporters: usize,
    /// Records per datagram (v5 caps this at its packet maximum).
    pub batch_size: usize,
    /// Base template-refresh cadence; member `i` refreshes every
    /// `base + i` datagrams so the fleet's cadences are distinct.
    pub template_refresh: u32,
    /// Restart each member after this many datagrams (0 = never).
    pub restart_every: u32,
    /// Sequence value every member's first datagram carries. Non-zero
    /// values model long-lived exporters joined mid-session, including
    /// counters about to wrap the u32 wire field.
    pub initial_sequence: u32,
    /// Extra seconds added to every member's boot age. Large values push
    /// the uptime clock past its 2^32 ms wrap (~49.7 days), exercising the
    /// wrap-aware timestamp path end to end.
    pub boot_age_secs: u64,
    /// In-band 1-in-N sampling for every member (v9/IPFIX only);
    /// `None`/1 exports everything.
    pub sampling: Option<u32>,
}

struct Member {
    exporter: Exporter,
    domain: u32,
    pushed_since_emit: u32,
    bytes_since_emit: u64,
    packets_since_emit: u64,
    datagrams_emitted: u32,
    restarts: u64,
}

/// A fleet of exporters serving one engine cell.
pub struct ExporterFleet {
    members: Vec<Member>,
    restart_every: u32,
}

/// Stable FNV-1a hash of a flow key, used to pick the exporting member.
fn key_hash(key: &FlowKey) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    let mut eat = |b: u8| {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    };
    for b in key.src_addr.octets() {
        eat(b);
    }
    for b in key.dst_addr.octets() {
        eat(b);
    }
    for b in key.src_port.to_be_bytes() {
        eat(b);
    }
    for b in key.dst_port.to_be_bytes() {
        eat(b);
    }
    eat(key.protocol.number());
    // FNV's multiply only carries entropy upward, so the low bits (which
    // `% n` consumes) mix poorly; finish with an avalanche (murmur3 fmix64).
    h ^= h >> 33;
    h = h.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    h ^= h >> 33;
    h = h.wrapping_mul(0xC4CE_B9FE_1A85_EC53);
    h ^ (h >> 33)
}

impl ExporterFleet {
    /// Build the fleet for one cell of `stream_wire_id`, booting member `i`
    /// at `boot_base - (i + 1) hours` so uptimes are distinct.
    pub fn new(cfg: FleetConfig, stream_wire_id: u32, boot_base: Timestamp) -> ExporterFleet {
        assert!(cfg.exporters >= 1, "fleet needs at least one exporter");
        assert!(
            cfg.exporters < 256,
            "domain space allots 256 ids per stream"
        );
        let members = (0..cfg.exporters)
            .map(|i| {
                let domain = stream_wire_id * 256 + i as u32;
                let boot = Timestamp::from_unix(
                    boot_base
                        .unix()
                        .saturating_sub((i as u64 + 1) * 3_600 + cfg.boot_age_secs),
                );
                let mut ecfg = ExporterConfig::new(cfg.format, boot);
                ecfg.domain_id = domain;
                ecfg.initial_sequence = cfg.initial_sequence;
                ecfg.sampling = cfg.sampling;
                // v5 packets hold at most MAX_RECORDS records; other formats
                // take the requested batch as-is.
                ecfg.batch_size = match cfg.format {
                    ExportFormat::NetflowV5 => cfg
                        .batch_size
                        .clamp(1, lockdown_flow::netflow::v5::MAX_RECORDS),
                    _ => cfg.batch_size.max(1),
                };
                if cfg.template_refresh > 0 {
                    ecfg.template_refresh = cfg.template_refresh + i as u32;
                } else {
                    ecfg.template_refresh = 0;
                }
                Member {
                    exporter: Exporter::new(ecfg),
                    domain,
                    pushed_since_emit: 0,
                    bytes_since_emit: 0,
                    packets_since_emit: 0,
                    datagrams_emitted: 0,
                    restarts: 0,
                }
            })
            .collect();
        ExporterFleet {
            members,
            restart_every: cfg.restart_every,
        }
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the fleet is empty (it never is; kept for API symmetry).
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Export one cell's flows, returning the emitted datagrams (members in
    /// domain order, each member's datagrams in emission order) plus the
    /// session ground truth.
    pub fn export_cell(
        &mut self,
        flows: &[FlowRecord],
        now: Timestamp,
    ) -> (Vec<WireDatagram>, FleetTruth) {
        let n = self.members.len();
        let mut partitions: Vec<Vec<FlowRecord>> = vec![Vec::new(); n];
        for f in flows {
            partitions[(key_hash(&f.key) % n as u64) as usize].push(*f);
        }

        let mut out = Vec::new();
        let mut truth = FleetTruth {
            sent_records: flows.len() as u64,
            ..FleetTruth::default()
        };
        for (member, part) in self.members.iter_mut().zip(partitions) {
            for r in part {
                let sampled_before = member.exporter.sampled_out();
                let emitted = member.exporter.push(r, now);
                if member.exporter.sampled_out() == sampled_before {
                    // Selected for export: the record will appear in a
                    // datagram, so it belongs in the ground-truth tags.
                    member.pushed_since_emit += 1;
                    member.bytes_since_emit += r.bytes;
                    member.packets_since_emit += r.packets;
                }
                if let Some(bytes) = emitted {
                    Self::emit(member, bytes, now, self.restart_every, &mut out);
                }
            }
            if let Some(bytes) = member.exporter.flush(now) {
                Self::emit(member, bytes, now, self.restart_every, &mut out);
            }
            truth.restarts += member.restarts;
            truth.sampled_out += member.exporter.sampled_out();
            truth.sessions.push(DomainTruth {
                domain: member.domain,
                first_seq: member.exporter.initial_sequence(),
                units_sent: member.exporter.units_sent(),
            });
        }
        truth.datagrams = out.len() as u64;
        (out, truth)
    }

    fn emit(
        member: &mut Member,
        bytes: Vec<u8>,
        now: Timestamp,
        restart_every: u32,
        out: &mut Vec<WireDatagram>,
    ) {
        out.push(WireDatagram {
            domain: member.domain,
            records: member.pushed_since_emit,
            flow_bytes: member.bytes_since_emit,
            flow_packets: member.packets_since_emit,
            bytes,
        });
        member.pushed_since_emit = 0;
        member.bytes_since_emit = 0;
        member.packets_since_emit = 0;
        member.datagrams_emitted += 1;
        if restart_every > 0 && member.datagrams_emitted.is_multiple_of(restart_every) {
            member.exporter.restart(now);
            member.restarts += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lockdown_flow::protocol::IpProtocol;
    use std::net::Ipv4Addr;

    fn flows(n: u32, t: Timestamp) -> Vec<FlowRecord> {
        (0..n)
            .map(|i| {
                FlowRecord::builder(
                    FlowKey {
                        src_addr: Ipv4Addr::from(0x0A00_0000 | i),
                        dst_addr: Ipv4Addr::new(198, 51, 100, 9),
                        src_port: (1024 + i % 40_000) as u16,
                        dst_port: 443,
                        protocol: IpProtocol::Tcp,
                    },
                    t,
                )
                .end(t.add_secs(30))
                .bytes(1_000 + u64::from(i))
                .packets(5)
                .build()
            })
            .collect()
    }

    fn cfg(format: ExportFormat) -> FleetConfig {
        FleetConfig {
            format,
            exporters: 4,
            batch_size: 16,
            template_refresh: 4,
            restart_every: 0,
            initial_sequence: 0,
            boot_age_secs: 0,
            sampling: None,
        }
    }

    #[test]
    fn partition_is_stable_and_complete() {
        let t = Date::new(2020, 3, 25).at_hour(10);
        let input = flows(200, t);
        let now = t.add_hours(1);
        let run = |input: &[FlowRecord]| {
            let mut fleet = ExporterFleet::new(cfg(ExportFormat::Ipfix), 3, t);
            fleet.export_cell(input, now)
        };
        let (dgs_a, truth_a) = run(&input);
        let (dgs_b, truth_b) = run(&input);
        assert_eq!(dgs_a, dgs_b, "export must be deterministic");
        assert_eq!(truth_a, truth_b);
        assert_eq!(truth_a.sent_records, 200);
        let per_dg: u64 = dgs_a.iter().map(|d| u64::from(d.records)).sum();
        assert_eq!(per_dg, 200, "record tags must cover every flow");
        let tag_bytes: u64 = dgs_a.iter().map(|d| d.flow_bytes).sum();
        let true_bytes: u64 = input.iter().map(|f| f.bytes).sum();
        assert_eq!(tag_bytes, true_bytes, "byte tags must cover every flow");
        let tag_packets: u64 = dgs_a.iter().map(|d| d.flow_packets).sum();
        assert_eq!(tag_packets, 200 * 5, "packet tags must cover every flow");
        // All four domains participate for a 200-flow cell.
        let mut domains: Vec<u32> = dgs_a.iter().map(|d| d.domain).collect();
        domains.dedup();
        assert_eq!(domains, vec![768, 769, 770, 771]);
    }

    #[test]
    fn session_truth_counts_format_units() {
        let t = Date::new(2020, 3, 25).at_hour(10);
        let input = flows(100, t);
        let now = t.add_hours(1);
        // IPFIX counts records: per-domain unit totals sum to the flow count.
        let mut fleet = ExporterFleet::new(cfg(ExportFormat::Ipfix), 1, t);
        let (_, truth) = fleet.export_cell(&input, now);
        assert_eq!(
            truth.sessions.iter().map(|s| s.units_sent).sum::<u64>(),
            100
        );
        // v9 counts packets: unit totals sum to the datagram count.
        let mut fleet = ExporterFleet::new(cfg(ExportFormat::NetflowV9), 1, t);
        let (dgs, truth) = fleet.export_cell(&input, now);
        assert_eq!(
            truth.sessions.iter().map(|s| s.units_sent).sum::<u64>(),
            dgs.len() as u64
        );
        assert!(truth.sessions.iter().all(|s| s.first_seq == 0));
    }

    #[test]
    fn session_truth_survives_sequence_wrap() {
        let t = Date::new(2020, 3, 25).at_hour(10);
        let input = flows(100, t);
        let now = t.add_hours(1);
        let mut c = cfg(ExportFormat::Ipfix);
        c.exporters = 1;
        c.initial_sequence = u32::MAX - 40;
        let mut fleet = ExporterFleet::new(c, 1, t);
        let (_, truth) = fleet.export_cell(&input, now);
        // The u32 wire counter wraps mid-session; the truth does not.
        assert_eq!(truth.sessions.len(), 1);
        assert_eq!(truth.sessions[0].first_seq, u32::MAX - 40);
        assert_eq!(truth.sessions[0].units_sent, 100);
    }

    #[test]
    fn restarts_fire_on_schedule() {
        let t = Date::new(2020, 3, 25).at_hour(10);
        let input = flows(160, t);
        let now = t.add_hours(1);
        let mut c = cfg(ExportFormat::Ipfix);
        c.exporters = 1;
        c.restart_every = 3;
        let mut fleet = ExporterFleet::new(c, 3, t);
        let (dgs, truth) = fleet.export_cell(&input, now);
        // 160 flows / batch 16 = 10 datagrams; restarts after #3, #6, #9.
        assert_eq!(dgs.len(), 10);
        assert_eq!(truth.restarts, 3);
    }
}
