//! Wire-mode collection plane.
//!
//! The in-process pipeline hands generated [`FlowRecord`]s straight to the
//! analysis consumers. This crate inserts the measurement path a real
//! deployment has in between: per-stream *exporter fleets* encode each
//! engine cell onto the wire, a seeded fault-injecting *transport* drops,
//! duplicates and reorders datagrams, and sequence-tracking *collector
//! shards* decode what survives, detect losses and exporter restarts, and
//! renormalize the accepted records so downstream aggregates degrade
//! proportionally. An atomic [`metrics::CollectMetrics`] registry observes
//! every layer.
//!
//! Determinism contract: with a fixed `(seed, FaultProfile)` the whole
//! plane is a pure function of cell content — figure output and the
//! metrics snapshot are identical across runs and worker counts, and with
//! [`transport::FaultProfile::zero`] the delivered records are exactly the
//! generated ones, so wire-mode figures match in-process figures byte for
//! byte.

// `deny`, not `forbid`: the socket edge carries one scoped allowance for
// the raw `setsockopt`/`getsockopt` FFI pair behind `SO_RCVBUF` tuning
// (see `socket::sockopt`); everything else stays unsafe-free.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod daemon;
pub mod export;
pub mod fleet;
pub mod metrics;
pub mod queue;
mod rng;
pub mod shard;
pub mod soak;
pub mod socket;
pub mod transport;

use std::sync::Arc;

use lockdown_flow::prelude::*;
use lockdown_traffic::plan::Cell;

pub use daemon::{Collectd, CollectdConfig, Cycle, ReceivedDatagram, SocketPlane};
pub use export::{ExportConfig, ExportSummary};
pub use fleet::{DomainTruth, ExporterFleet, FleetConfig, FleetTruth, WireDatagram};
pub use lockdown_audit as audit;
pub use metrics::{CollectMetrics, Metric, MetricKind, MetricsRegistry};
pub use queue::BoundedQueue;
pub use shard::{
    CollectorShard, Observation, SequenceTracker, SequenceUnits, ShardSet, ShardTotals,
};
pub use socket::{peek, Recv, RecvSocket, SendSocket, WirePeek, MAX_UDP_PAYLOAD, RECV_BUF_LEN};
pub use transport::{FaultProfile, Transport, TransportReport};

/// Domain separator so transport fault draws never correlate with any
/// other consumer of the cell seed.
const TRANSPORT_SALT: u64 = 0x7472_616E_7370_6F72; // "transpor"

/// Configuration of the whole wire path.
#[derive(Debug, Clone, Copy)]
pub struct WireConfig {
    /// Export format used by every fleet.
    pub format: ExportFormat,
    /// Exporters per stream (each cell's flows are partitioned across them).
    pub exporters: usize,
    /// Records per datagram (v5 caps this at its packet maximum).
    pub batch_size: usize,
    /// Base template-refresh cadence; fleet member `i` refreshes every
    /// `base + i` datagrams. 0 announces templates only at session start
    /// (and after restarts).
    pub template_refresh: u32,
    /// Collector shards the observation domains are routed across.
    pub shards: usize,
    /// Injected transport faults and restart cadence.
    pub faults: FaultProfile,
    /// Root seed for all fault schedules (mixed per cell with the stream's
    /// wire id, date and hour).
    pub seed: u64,
    /// Scale accepted records by estimated loss at session close so
    /// aggregates degrade proportionally instead of silently.
    pub renormalize: bool,
    /// Thread a conservation-audit ledger through every stage and verify
    /// the pipeline's conservation identities at the end of the run.
    pub audit: bool,
    /// Sequence value every exporter's first datagram carries. Non-zero
    /// values model long-lived exporters whose u32 counters sit anywhere,
    /// including just below the wrap.
    pub initial_sequence: u32,
    /// Extra seconds of boot age for every exporter; values above ~4.3M
    /// push the uptime clock past its 2^32 ms wrap.
    pub boot_age_secs: u64,
    /// In-band 1-in-N sampling at the exporters (`None`/1 exports all).
    pub sampling: Option<u32>,
}

impl WireConfig {
    /// Defaults: IPFIX, 4 exporters, batch 64, refresh every 8 datagrams,
    /// 4 shards, no faults, renormalization on.
    pub fn new() -> WireConfig {
        WireConfig {
            format: ExportFormat::Ipfix,
            exporters: 4,
            batch_size: 64,
            template_refresh: 8,
            shards: 4,
            faults: FaultProfile::zero(),
            seed: 0,
            renormalize: true,
            audit: false,
            initial_sequence: 0,
            boot_age_secs: 0,
            sampling: None,
        }
    }

    /// Same configuration with a different fault profile.
    pub fn with_faults(mut self, faults: FaultProfile) -> WireConfig {
        self.faults = faults.clamped();
        self
    }

    /// Same configuration with conservation auditing switched on or off.
    pub fn with_audit(mut self, audit: bool) -> WireConfig {
        self.audit = audit;
        self
    }
}

impl Default for WireConfig {
    fn default() -> WireConfig {
        WireConfig::new()
    }
}

/// The export → transport → collect path for engine cells.
///
/// The plane is `Sync`: per-cell state (fleet, transport, shards) is built
/// inside [`CollectionPlane::process_cell`] from the cell's deterministic
/// seed, and the shared metrics are atomic, so engine workers can process
/// disjoint cells concurrently without coordination.
#[derive(Debug)]
pub struct CollectionPlane {
    cfg: WireConfig,
    metrics: Arc<CollectMetrics>,
    ledger: Option<Arc<lockdown_audit::Ledger>>,
}

/// The audit key of one engine cell.
pub(crate) fn cell_key(cell: &Cell) -> lockdown_audit::CellKey {
    lockdown_audit::CellKey {
        wire_id: cell.stream.wire_id(),
        day_number: cell.date.day_number(),
        hour: cell.hour,
    }
}

/// Record/byte/packet volume of a record slice.
pub(crate) fn volume(records: &[FlowRecord]) -> lockdown_audit::Counts {
    lockdown_audit::Counts {
        records: records.len() as u64,
        bytes: records.iter().map(|r| r.bytes).sum(),
        packets: records.iter().map(|r| r.packets).sum(),
    }
}

impl CollectionPlane {
    /// A plane with a fresh metrics registry (and, when the configuration
    /// asks for auditing, a fresh conservation ledger).
    pub fn new(cfg: WireConfig) -> CollectionPlane {
        CollectionPlane {
            metrics: CollectMetrics::new(),
            ledger: cfg.audit.then(|| Arc::new(lockdown_audit::Ledger::new())),
            cfg,
        }
    }

    /// The plane's configuration.
    pub fn config(&self) -> &WireConfig {
        &self.cfg
    }

    /// Shared handle to the plane's metrics.
    pub fn metrics(&self) -> Arc<CollectMetrics> {
        Arc::clone(&self.metrics)
    }

    /// Shared handle to the conservation ledger, if auditing is on.
    pub fn ledger(&self) -> Option<Arc<lockdown_audit::Ledger>> {
        self.ledger.clone()
    }

    /// Post what the analysis layer actually consumed for one cell. Called
    /// by the engine after [`CollectionPlane::process_cell`], closing the
    /// last link of the conservation chain. No-op without auditing.
    pub fn note_consumed(&self, cell: &Cell, records: &[FlowRecord]) {
        if let Some(ledger) = &self.ledger {
            let consumed = volume(records);
            ledger.record(cell_key(cell), |c| c.consumed.add(consumed));
        }
    }

    /// Record an injected exporter stall for one cell: the fleet timed
    /// out before delivering, so the attempt is abandoned and the
    /// supervisor retries. Only the stall counter moves — conservation
    /// stages are posted by the (later, successful) attempt.
    pub fn note_stalled(&self, _cell: &Cell) {
        self.metrics.exporter_stalls.inc();
    }

    /// Mark one cell quarantined in the conservation ledger: it exhausted
    /// its attempt budget and never delivered, so the auditor must not
    /// hold it to the usual conservation identities. No-op without
    /// auditing.
    pub fn note_quarantined(&self, cell: &Cell) {
        if let Some(ledger) = &self.ledger {
            ledger.record(cell_key(cell), |c| c.quarantined = true);
        }
    }

    /// Audit every cell ledger and return the report (None without
    /// auditing). Also mirrors the outcome into the `audit_*` metrics.
    pub fn audit_report(&self) -> Option<lockdown_audit::Report> {
        let report = self.ledger.as_ref()?.report();
        self.metrics.audit_cells.set_max(report.cells);
        self.metrics
            .audit_violations
            .set_max(report.violations.len() as u64);
        Some(report)
    }

    /// Push one engine cell's flows through the wire and return what the
    /// collector shards accepted (possibly renormalized under loss).
    pub fn process_cell(&self, cell: Cell, flows: &[FlowRecord]) -> Vec<FlowRecord> {
        let m = &*self.metrics;
        m.engine_cells_wired.inc();
        m.engine_flows_wired.add(flows.len() as u64);

        let sid = cell.stream.wire_id();
        let hour_start = cell.date.at_hour(cell.hour);
        let cell_seed = rng::mix(&[
            self.cfg.seed,
            u64::from(sid),
            cell.date.day_number() as u64,
            u64::from(cell.hour),
        ]);
        // Export strictly after the last flow ends so uptime-relative
        // encodings (v5/v9) can express every timestamp.
        let now = flows
            .iter()
            .map(|f| f.end)
            .max()
            .unwrap_or_else(|| hour_start.add_hours(1))
            .add_secs(1);

        let mut fleet = ExporterFleet::new(
            FleetConfig {
                format: self.cfg.format,
                exporters: self.cfg.exporters,
                batch_size: self.cfg.batch_size,
                template_refresh: self.cfg.template_refresh,
                restart_every: self.cfg.faults.restart_every,
                initial_sequence: self.cfg.initial_sequence,
                boot_age_secs: self.cfg.boot_age_secs,
                sampling: self.cfg.sampling,
            },
            sid,
            hour_start,
        );
        let (datagrams, truth) = fleet.export_cell(flows, now);
        m.exporter_sessions.add(fleet.len() as u64);
        m.exporter_datagrams.add(truth.datagrams);
        m.exporter_records.add(truth.sent_records);
        m.exporter_restarts.add(truth.restarts);
        m.exporter_fleet_size.set_max(fleet.len() as u64);

        // Snapshot the export-side ground truth before the transport takes
        // ownership of the datagrams.
        let wire_truth = self.ledger.is_some().then(|| {
            let exported = lockdown_audit::Counts {
                records: datagrams.iter().map(|d| u64::from(d.records)).sum(),
                bytes: datagrams.iter().map(|d| d.flow_bytes).sum(),
                packets: datagrams.iter().map(|d| d.flow_packets).sum(),
            };
            let units: u64 = truth.sessions.iter().map(|s| s.units_sent).sum();
            (exported, datagrams.len() as u64, units)
        });

        let transport = Transport::new(self.cfg.faults, cell_seed ^ TRANSPORT_SALT);
        let (delivered, tr) = transport.deliver(datagrams);
        m.transport_datagrams_delivered.add(tr.delivered);
        m.transport_datagrams_dropped.add(tr.dropped_datagrams);
        m.transport_records_dropped.add(tr.dropped_records);
        m.transport_datagrams_duplicated.add(tr.duplicated);
        m.transport_datagrams_reordered.add(tr.reordered);

        let mut shards = ShardSet::new(self.cfg.shards, self.cfg.format);
        for dg in &delivered {
            shards.ingest(dg);
        }
        let records = shards.close(&truth.sessions, self.cfg.renormalize);
        let t = shards.totals();
        m.collector_datagrams.add(t.datagrams);
        m.collector_records.add(t.records_accepted);
        m.collector_sequence_gaps.add(t.sequence_gaps);
        m.collector_records_lost_est.add(t.records_lost_est);
        m.collector_missing_template_sets
            .add(t.missing_template_sets);
        m.collector_datagrams_buffered.add(t.buffered);
        m.collector_duplicates_rejected.add(t.duplicates);
        m.collector_malformed.add(t.malformed);
        m.collector_restarts_detected.add(t.restarts_detected);
        m.collector_records_renormalized.add(t.records_renormalized);
        m.collector_shards.set_max(self.cfg.shards as u64);
        m.engine_flows_delivered.add(records.len() as u64);

        if let Some(ledger) = &self.ledger {
            let (exported, offered, export_units) =
                wire_truth.expect("wire truth snapshot exists when auditing");
            let generated = volume(flows);
            let units_exact = SequenceUnits::for_format(self.cfg.format) != SequenceUnits::Packets;
            let sampling = self.cfg.sampling.is_some_and(|r| r > 1);
            ledger.record(cell_key(&cell), |c| {
                c.generated.add(generated);
                c.sampled_out += truth.sampled_out;
                c.exported.add(exported);
                c.export_units += export_units;
                c.offered_datagrams += offered;
                c.delivered_datagrams += tr.delivered;
                c.dropped_datagrams += tr.dropped_datagrams;
                c.dropped.add(lockdown_audit::Counts {
                    records: tr.dropped_records,
                    bytes: tr.dropped_bytes,
                    packets: tr.dropped_packets,
                });
                c.duplicated_datagrams += tr.duplicated;
                c.duplicated_records += tr.duplicated_records;
                c.accepted.add(lockdown_audit::Counts {
                    records: t.records_accepted,
                    bytes: t.bytes_accepted,
                    packets: t.packets_accepted,
                });
                c.rejected_duplicate += t.records_duplicate;
                c.rejected_anomalous += t.records_anomalous;
                c.rejected_malformed += t.records_malformed;
                c.undecoded += t.records_undecoded;
                c.abandoned_records += t.records_abandoned;
                c.abandoned_units += t.units_abandoned;
                c.est_lost += t.records_lost_est;
                c.renorm_bytes_added += t.renorm_bytes_added;
                c.renorm_packets_added += t.renorm_packets_added;
                c.renorm_clipped += t.renorm_clipped;
                c.units_exact = units_exact;
                c.sampling = sampling;
            });
        }
        records
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lockdown_flow::protocol::IpProtocol;
    use lockdown_topology::vantage::VantagePoint;
    use lockdown_traffic::plan::Stream;
    use std::collections::HashMap;
    use std::net::Ipv4Addr;

    fn cell() -> Cell {
        Cell {
            stream: Stream::Vantage(VantagePoint::IxpCe),
            date: Date::new(2020, 3, 25),
            hour: 14,
        }
    }

    fn flows(n: u32) -> Vec<FlowRecord> {
        let t = Date::new(2020, 3, 25).at_hour(14);
        (0..n)
            .map(|i| {
                FlowRecord::builder(
                    FlowKey {
                        src_addr: Ipv4Addr::from(0xC000_0200 | (i % 251)),
                        dst_addr: Ipv4Addr::from(0x0A01_0000 | (i / 7)),
                        src_port: (1024 + i % 50_000) as u16,
                        dst_port: if i % 3 == 0 { 443 } else { 80 },
                        protocol: if i % 4 == 0 {
                            IpProtocol::Udp
                        } else {
                            IpProtocol::Tcp
                        },
                    },
                    t.add_secs(u64::from(i % 3_000)),
                )
                .end(t.add_secs(u64::from(i % 3_000) + 40))
                .bytes(1_400 + u64::from(i) * 17)
                .packets(3 + u64::from(i % 90))
                .build()
            })
            .collect()
    }

    fn key_multiset(records: &[FlowRecord]) -> HashMap<(FlowKey, u64, u64), u32> {
        let mut m = HashMap::new();
        for r in records {
            *m.entry((r.key, r.bytes, r.packets)).or_insert(0) += 1;
        }
        m
    }

    #[test]
    fn zero_faults_deliver_exactly_the_input() {
        for format in [
            ExportFormat::NetflowV5,
            ExportFormat::NetflowV9,
            ExportFormat::Ipfix,
        ] {
            let mut cfg = WireConfig::new();
            cfg.format = format;
            let plane = CollectionPlane::new(cfg);
            let input = flows(500);
            let out = plane.process_cell(cell(), &input);
            assert_eq!(out.len(), 500, "{format:?}");
            assert_eq!(
                key_multiset(&out),
                key_multiset(&input),
                "{format:?}: payloads must survive the wire untouched"
            );
            let m = plane.metrics();
            assert_eq!(m.collector_records_lost_est.get(), 0);
            assert_eq!(m.collector_sequence_gaps.get(), 0);
            assert_eq!(m.transport_datagrams_dropped.get(), 0);
        }
    }

    #[test]
    fn loss_estimate_matches_transport_ground_truth() {
        let mut cfg = WireConfig::new();
        // Template in every datagram: every delivered datagram is decodable
        // immediately, so sequence accounting must match the transport's
        // ground truth exactly.
        cfg.template_refresh = 1;
        cfg.renormalize = false;
        cfg.seed = 11;
        cfg.faults = FaultProfile {
            loss: 0.12,
            duplicate: 0.05,
            reorder: 0.08,
            restart_every: 0,
        };
        let plane = CollectionPlane::new(cfg);
        let input = flows(4_000);
        let out = plane.process_cell(cell(), &input);
        let m = plane.metrics();
        let dropped = m.transport_records_dropped.get();
        assert!(dropped > 0, "seeded loss should fire");
        assert_eq!(m.collector_records_lost_est.get(), dropped);
        assert_eq!(out.len() as u64 + dropped, 4_000);
        assert!(m.collector_sequence_gaps.get() > 0);
        assert!(m.collector_duplicates_rejected.get() > 0);
    }

    #[test]
    fn renormalization_conserves_volume_proportionally() {
        let mut cfg = WireConfig::new();
        cfg.template_refresh = 1;
        cfg.seed = 5;
        cfg.faults = FaultProfile {
            loss: 0.2,
            duplicate: 0.0,
            reorder: 0.0,
            restart_every: 0,
        };
        let plane = CollectionPlane::new(cfg);
        let input = flows(4_000);
        let out = plane.process_cell(cell(), &input);
        let sent: u64 = input.iter().map(|r| r.bytes).sum();
        let got: u64 = out.iter().map(|r| r.bytes).sum();
        // Scaled-up survivors should land near the true volume. Whole
        // batches are dropped at a time, so the sampling error of the
        // estimate is a few percent; 10% bounds it comfortably.
        let err = (got as f64 - sent as f64).abs() / sent as f64;
        assert!(err < 0.10, "renormalized volume off by {:.1}%", err * 100.0);
        assert!(plane.metrics().collector_records_renormalized.get() > 0);
    }

    #[test]
    fn deterministic_per_seed_and_profile() {
        let mut cfg = WireConfig::new();
        cfg.seed = 3;
        cfg.faults = FaultProfile {
            loss: 0.1,
            duplicate: 0.1,
            reorder: 0.1,
            restart_every: 4,
        };
        let input = flows(1_000);
        let run = || {
            let plane = CollectionPlane::new(cfg);
            let out = plane.process_cell(cell(), &input);
            (out, plane.metrics().render())
        };
        let (a, ma) = run();
        let (b, mb) = run();
        assert_eq!(a, b);
        assert_eq!(ma, mb);
        let mut cfg2 = cfg;
        cfg2.seed = 4;
        let plane = CollectionPlane::new(cfg2);
        let c = plane.process_cell(cell(), &input);
        assert_ne!(a, c, "a different seed must give a different schedule");
    }

    #[test]
    fn v9_restarts_are_detected() {
        let mut cfg = WireConfig::new();
        cfg.format = ExportFormat::NetflowV9;
        cfg.exporters = 2;
        cfg.faults = FaultProfile {
            loss: 0.0,
            duplicate: 0.0,
            reorder: 0.0,
            restart_every: 3,
        };
        let plane = CollectionPlane::new(cfg);
        let input = flows(2_000);
        let out = plane.process_cell(cell(), &input);
        let m = plane.metrics();
        assert!(m.exporter_restarts.get() > 0);
        // Every restart except possibly one after a member's final datagram
        // is visible as a boot-epoch shift.
        assert!(m.collector_restarts_detected.get() > 0);
        assert!(m.collector_restarts_detected.get() <= m.exporter_restarts.get());
        // Restarted exporters re-announce templates at once, so nothing is
        // lost even though caches were flushed.
        assert_eq!(out.len(), 2_000);
        assert_eq!(m.collector_records_lost_est.get(), 0);
    }
}
