//! Atomic metrics registry with a Prometheus-style text rendering.
//!
//! Every counter is a plain [`AtomicU64`] updated with relaxed ordering:
//! all increments are sums of per-cell, content-derived event counts, so a
//! snapshot taken after an engine run is identical regardless of how many
//! worker threads processed the cells.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Whether a metric is a monotonically increasing counter or a
/// last-write/maximum gauge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonically increasing event count (rendered as `counter`).
    Counter,
    /// Point-in-time value (rendered as `gauge`).
    Gauge,
}

impl MetricKind {
    fn as_str(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
        }
    }
}

/// One named metric backed by an atomic value.
#[derive(Debug)]
pub struct Metric {
    name: &'static str,
    help: &'static str,
    kind: MetricKind,
    value: AtomicU64,
}

impl Metric {
    /// Metric name as rendered in the snapshot.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// One-line description rendered as the `# HELP` comment.
    pub fn help(&self) -> &'static str {
        self.help
    }

    /// Counter or gauge.
    pub fn kind(&self) -> MetricKind {
        self.kind
    }

    /// Add `v` to the metric.
    pub fn add(&self, v: u64) {
        self.value.fetch_add(v, Ordering::Relaxed);
    }

    /// Add one to the metric.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Set a gauge to `v` unconditionally.
    pub fn set(&self, v: u64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Raise a gauge to `v` if larger (commutative, so safe across workers).
    pub fn set_max(&self, v: u64) {
        self.value.fetch_max(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// An ordered collection of metrics, rendered sorted by name.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    metrics: Vec<Arc<Metric>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Register a counter and return a shared handle to it.
    pub fn counter(&mut self, name: &'static str, help: &'static str) -> Arc<Metric> {
        self.register(name, help, MetricKind::Counter)
    }

    /// Register a gauge and return a shared handle to it.
    pub fn gauge(&mut self, name: &'static str, help: &'static str) -> Arc<Metric> {
        self.register(name, help, MetricKind::Gauge)
    }

    fn register(
        &mut self,
        name: &'static str,
        help: &'static str,
        kind: MetricKind,
    ) -> Arc<Metric> {
        assert!(
            self.find(name).is_none(),
            "duplicate metric registration: {name}"
        );
        let m = Arc::new(Metric {
            name,
            help,
            kind,
            value: AtomicU64::new(0),
        });
        self.metrics.push(Arc::clone(&m));
        m
    }

    /// Look up a metric by name.
    pub fn find(&self, name: &str) -> Option<&Arc<Metric>> {
        self.metrics.iter().find(|m| m.name == name)
    }

    /// All registered metrics in registration order.
    pub fn metrics(&self) -> &[Arc<Metric>] {
        &self.metrics
    }

    /// Render a Prometheus-style text snapshot, sorted by metric name so the
    /// output is stable regardless of registration order.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    /// Append this registry's snapshot to `out`. Lets callers that hold
    /// several registries (the wire plane's plus the archive store's)
    /// compose one combined snapshot.
    pub fn render_into(&self, out: &mut String) {
        let mut sorted: Vec<&Arc<Metric>> = self.metrics.iter().collect();
        sorted.sort_by_key(|m| m.name);
        for m in sorted {
            out.push_str(&format!("# HELP {} {}\n", m.name, m.help));
            out.push_str(&format!("# TYPE {} {}\n", m.name, m.kind.as_str()));
            out.push_str(&format!("{} {}\n", m.name, m.get()));
        }
    }
}

/// The full metric set of the collection plane, grouped by pipeline layer:
/// `exporter_*`, `transport_*`, `collector_*` and `engine_*` families.
#[derive(Debug)]
pub struct CollectMetrics {
    registry: MetricsRegistry,
    /// Per-cell exporter sessions opened (one per fleet member per cell).
    pub exporter_sessions: Arc<Metric>,
    /// Datagrams emitted by exporters.
    pub exporter_datagrams: Arc<Metric>,
    /// Flow records pushed through exporters.
    pub exporter_records: Arc<Metric>,
    /// Scheduled exporter restarts applied.
    pub exporter_restarts: Arc<Metric>,
    /// Configured exporters per stream (gauge).
    pub exporter_fleet_size: Arc<Metric>,
    /// Datagrams the transport delivered (duplicates included).
    pub transport_datagrams_delivered: Arc<Metric>,
    /// Datagrams the transport dropped.
    pub transport_datagrams_dropped: Arc<Metric>,
    /// Ground-truth flow records inside dropped datagrams.
    pub transport_records_dropped: Arc<Metric>,
    /// Datagrams duplicated in flight.
    pub transport_datagrams_duplicated: Arc<Metric>,
    /// Adjacent datagram swaps applied in flight.
    pub transport_datagrams_reordered: Arc<Metric>,
    /// Datagrams read off collectd's UDP sockets (truncated reads included).
    pub socket_datagrams_received: Arc<Metric>,
    /// Payload bytes read off collectd's UDP sockets.
    pub socket_bytes_received: Arc<Metric>,
    /// Datagrams cut by the kernel at recv (dropped at the socket, never
    /// decoded; counted separately from queue drops).
    pub socket_datagrams_truncated: Arc<Metric>,
    /// Header-claimed records inside truncated datagrams.
    pub socket_records_truncated: Arc<Metric>,
    /// Datagrams the kernel dropped before recv (sent minus received,
    /// settled at cycle drain).
    pub socket_datagrams_kernel_dropped: Arc<Metric>,
    /// Datagrams dropped at a full shard queue (dropped at the queue, not
    /// the socket; backpressure made explicit).
    pub queue_datagrams_dropped: Arc<Metric>,
    /// Configured per-shard queue bound (gauge).
    pub queue_capacity: Arc<Metric>,
    /// Bound collectd receive sockets (gauge).
    pub socket_receivers: Arc<Metric>,
    /// Kernel-granted `SO_RCVBUF` per receive socket, in bytes (gauge;
    /// the kernel default when no `--rcvbuf` tuning was requested).
    pub socket_rcvbuf_bytes: Arc<Metric>,
    /// Datagrams presented to collector shards.
    pub collector_datagrams: Arc<Metric>,
    /// Flow records accepted by collector shards.
    pub collector_records: Arc<Metric>,
    /// Sequence-gap events observed across all domain sessions.
    pub collector_sequence_gaps: Arc<Metric>,
    /// Estimated records lost, from sequence accounting at session close.
    pub collector_records_lost_est: Arc<Metric>,
    /// Data sets skipped because their template was not yet known.
    pub collector_missing_template_sets: Arc<Metric>,
    /// Undecodable datagrams buffered awaiting a template.
    pub collector_datagrams_buffered: Arc<Metric>,
    /// Duplicate datagrams rejected by sequence tracking.
    pub collector_duplicates_rejected: Arc<Metric>,
    /// Malformed datagrams rejected by shards.
    pub collector_malformed: Arc<Metric>,
    /// Exporter restarts detected from boot-epoch shifts (v9 only).
    pub collector_restarts_detected: Arc<Metric>,
    /// Records scaled by loss-aware renormalization at session close.
    pub collector_records_renormalized: Arc<Metric>,
    /// Configured collector shards (gauge).
    pub collector_shards: Arc<Metric>,
    /// Engine cells routed through the wire path.
    pub engine_cells_wired: Arc<Metric>,
    /// Generated flow records entering the wire path.
    pub engine_flows_wired: Arc<Metric>,
    /// Flow records delivered back to the engine after collection.
    pub engine_flows_delivered: Arc<Metric>,
    /// Injected exporter stall timeouts (the chaos surface; the attempt
    /// is abandoned and the supervisor retries the cell).
    pub exporter_stalls: Arc<Metric>,
    /// Cells covered by the conservation audit (gauge; 0 when auditing
    /// is off).
    pub audit_cells: Arc<Metric>,
    /// Conservation-identity violations found by the audit (gauge).
    pub audit_violations: Arc<Metric>,
}

impl CollectMetrics {
    /// Build the full metric set inside a fresh registry.
    pub fn new() -> Arc<CollectMetrics> {
        let mut r = MetricsRegistry::new();
        Arc::new(CollectMetrics {
            exporter_sessions: r.counter(
                "exporter_sessions_total",
                "Per-cell exporter sessions opened",
            ),
            exporter_datagrams: r.counter("exporter_datagrams_total", "Datagrams emitted"),
            exporter_records: r.counter("exporter_records_total", "Flow records exported"),
            exporter_restarts: r.counter("exporter_restarts_total", "Scheduled exporter restarts"),
            exporter_fleet_size: r.gauge("exporter_fleet_size", "Configured exporters per stream"),
            transport_datagrams_delivered: r.counter(
                "transport_datagrams_delivered_total",
                "Datagrams delivered (duplicates included)",
            ),
            transport_datagrams_dropped: r.counter(
                "transport_datagrams_dropped_total",
                "Datagrams dropped in flight",
            ),
            transport_records_dropped: r.counter(
                "transport_records_dropped_total",
                "Ground-truth records inside dropped datagrams",
            ),
            transport_datagrams_duplicated: r.counter(
                "transport_datagrams_duplicated_total",
                "Datagrams duplicated in flight",
            ),
            transport_datagrams_reordered: r.counter(
                "transport_datagrams_reordered_total",
                "Adjacent datagram swaps applied",
            ),
            socket_datagrams_received: r.counter(
                "socket_datagrams_received_total",
                "Datagrams read off collectd UDP sockets",
            ),
            socket_bytes_received: r.counter(
                "socket_bytes_received_total",
                "Payload bytes read off collectd UDP sockets",
            ),
            socket_datagrams_truncated: r.counter(
                "socket_datagrams_truncated_total",
                "Datagrams cut by the kernel at recv (never decoded)",
            ),
            socket_records_truncated: r.counter(
                "socket_records_truncated_total",
                "Header-claimed records inside truncated datagrams",
            ),
            socket_datagrams_kernel_dropped: r.counter(
                "socket_datagrams_kernel_dropped_total",
                "Datagrams dropped by the kernel before recv",
            ),
            queue_datagrams_dropped: r.counter(
                "queue_datagrams_dropped_total",
                "Datagrams dropped at a full shard queue",
            ),
            queue_capacity: r.gauge("queue_capacity", "Configured per-shard queue bound"),
            socket_receivers: r.gauge("socket_receivers", "Bound collectd receive sockets"),
            socket_rcvbuf_bytes: r.gauge(
                "socket_rcvbuf_bytes",
                "Kernel-granted SO_RCVBUF per receive socket",
            ),
            collector_datagrams: r
                .counter("collector_datagrams_total", "Datagrams presented to shards"),
            collector_records: r.counter("collector_records_total", "Records accepted by shards"),
            collector_sequence_gaps: r.counter(
                "collector_sequence_gaps_total",
                "Sequence-gap events observed",
            ),
            collector_records_lost_est: r.counter(
                "collector_records_lost_est_total",
                "Estimated records lost (sequence accounting)",
            ),
            collector_missing_template_sets: r.counter(
                "collector_missing_template_sets_total",
                "Data sets skipped for lack of a template",
            ),
            collector_datagrams_buffered: r.counter(
                "collector_datagrams_buffered_total",
                "Undecodable datagrams buffered awaiting a template",
            ),
            collector_duplicates_rejected: r.counter(
                "collector_duplicates_rejected_total",
                "Duplicate datagrams rejected",
            ),
            collector_malformed: r.counter("collector_malformed_total", "Malformed datagrams"),
            collector_restarts_detected: r.counter(
                "collector_restarts_detected_total",
                "Exporter restarts detected from boot-epoch shifts",
            ),
            collector_records_renormalized: r.counter(
                "collector_records_renormalized_total",
                "Records scaled by loss-aware renormalization",
            ),
            collector_shards: r.gauge("collector_shards", "Configured collector shards"),
            engine_cells_wired: r.counter(
                "engine_cells_wired_total",
                "Engine cells routed through the wire path",
            ),
            engine_flows_wired: r.counter(
                "engine_flows_wired_total",
                "Generated records entering the wire path",
            ),
            engine_flows_delivered: r.counter(
                "engine_flows_delivered_total",
                "Records delivered back to the engine",
            ),
            exporter_stalls: r.counter(
                "exporter_stalls_total",
                "Injected exporter stall timeouts (attempt abandoned and retried)",
            ),
            audit_cells: r.gauge("audit_cells", "Cells covered by the conservation audit"),
            audit_violations: r.gauge(
                "audit_violations",
                "Conservation-identity violations found by the audit",
            ),
            registry: r,
        })
    }

    /// The underlying registry (for lookups and custom rendering).
    pub fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// Prometheus-style text snapshot of every metric, sorted by name.
    pub fn render(&self) -> String {
        self.registry.render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_is_sorted_and_typed() {
        let m = CollectMetrics::new();
        m.exporter_datagrams.add(7);
        m.collector_shards.set(4);
        let text = m.render();
        assert!(text.contains("# TYPE exporter_datagrams_total counter"));
        assert!(text.contains("exporter_datagrams_total 7"));
        assert!(text.contains("# TYPE collector_shards gauge"));
        assert!(text.contains("collector_shards 4"));
        // Sorted by name: sample lines appear in lexicographic order.
        let names: Vec<&str> = text
            .lines()
            .filter(|l| !l.starts_with('#'))
            .map(|l| l.split(' ').next().unwrap())
            .collect();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        assert_eq!(names, sorted);
    }

    #[test]
    fn set_max_is_commutative() {
        let m = CollectMetrics::new();
        m.collector_shards.set_max(2);
        m.collector_shards.set_max(8);
        m.collector_shards.set_max(4);
        assert_eq!(m.collector_shards.get(), 8);
    }

    #[test]
    #[should_panic(expected = "duplicate metric registration")]
    fn duplicate_names_rejected() {
        let mut r = MetricsRegistry::new();
        let _ = r.counter("x_total", "first");
        let _ = r.counter("x_total", "second");
    }
}
