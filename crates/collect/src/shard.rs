//! Sequence-tracking collector shards.
//!
//! Each shard wraps a [`Collector`] and adds what the base collector lacks:
//! per-source sequence accounting. NetFlow v5 sequence numbers count
//! *flows*, v9 counts *packets*, and IPFIX counts *data records* — the
//! tracker works in whichever unit the format defines and reports gaps,
//! duplicates and estimated record loss per observation domain.
//!
//! Datagrams that cannot be decoded yet (data sets before the template) are
//! buffered and replayed once a template arrives, so transient reordering
//! costs nothing. At session close, units still missing are converted into
//! an estimated record loss, and — when enabled — the accepted records are
//! renormalized so downstream aggregates degrade proportionally with loss
//! instead of silently undercounting.

use lockdown_flow::netflow::v9;
use lockdown_flow::prelude::*;

use crate::fleet::{DomainTruth, WireDatagram};
use std::collections::BTreeMap;

/// What a format's sequence numbers count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SequenceUnits {
    /// v5: the header sequence counts exported flows.
    Flows,
    /// v9: the header sequence counts exported packets.
    Packets,
    /// IPFIX: the header sequence counts exported data records.
    Records,
}

impl SequenceUnits {
    /// The unit a format's sequence field advances in.
    pub fn for_format(format: ExportFormat) -> SequenceUnits {
        match format {
            ExportFormat::NetflowV5 => SequenceUnits::Flows,
            ExportFormat::NetflowV9 => SequenceUnits::Packets,
            ExportFormat::Ipfix => SequenceUnits::Records,
        }
    }
}

/// Outcome of presenting one datagram's sequence range to the tracker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Observation {
    /// In-order (or past a gap): accepted, advancing the session.
    New,
    /// Filled part of a previously missing range: accepted late.
    Late,
    /// Entirely inside already-accepted space: rejected as a duplicate.
    Duplicate,
    /// Partially overlaps accepted space: rejected as inconsistent.
    Anomaly,
}

/// Unwrapped position the first observed wire sequence `s` is pinned to:
/// `ANCHOR + s`. Keeping positions congruent to wire sequences mod 2^32
/// lets [`SequenceTracker::unwrap_near`] work directly on the low 32 bits,
/// and the 2^32 headroom means below-anchor arrivals (reordered session
/// heads, even just behind a wrap) never underflow position space.
const ANCHOR: u64 = 1 << 32;

/// Serial-number arithmetic window: a wire sequence within 2^31 ahead of
/// the reference is "forward", otherwise it is "behind" (RFC 1982 style).
const HALF_WRAP: u64 = 1 << 31;

/// Per-domain sequence accounting over half-open unit ranges, in the
/// native u32 width of the wire counter.
///
/// NetFlow/IPFIX sequence fields are 32-bit and wrap: a long-lived
/// exporter rolls from `u32::MAX - 10` to `5` as ordinary continuity, not
/// a four-billion-unit gap. The tracker therefore unwraps each observed
/// sequence into a monotone u64 *position* space using serial-number
/// arithmetic around the running session state, anchored at the first
/// datagram seen (exporters join mid-count; sessions do not start at 0).
/// `observe` classifies each datagram's `[seq, seq + units)` range and
/// `close` reconciles the session against the exporter's ground truth —
/// its first wire sequence and unwrapped unit total — converting unseen
/// head/tail ranges into gaps.
#[derive(Debug, Default)]
pub struct SequenceTracker {
    /// Position one past the highest accepted unit; `None` until anchored.
    expected: Option<u64>,
    /// Lowest accepted position (the session floor).
    low: u64,
    missing: BTreeMap<u64, u64>,
    gap_events: u64,
}

impl SequenceTracker {
    /// A tracker that will anchor on the first sequence it observes.
    pub fn new() -> SequenceTracker {
        SequenceTracker::default()
    }

    /// Resolve wire sequence `seq` to the unwrapped position nearest
    /// `reference`: forward if within 2^31 ahead, otherwise behind.
    /// `reference` is always `>= HALF_WRAP` (positions are anchored at
    /// [`ANCHOR`] and only ever lowered by `< 2^31`), so the backward
    /// branch cannot underflow.
    fn unwrap_near(reference: u64, seq: u32) -> u64 {
        let forward = u64::from(seq.wrapping_sub(reference as u32));
        if forward < HALF_WRAP {
            reference + forward
        } else {
            reference - u64::from((reference as u32).wrapping_sub(seq))
        }
    }

    /// Unwrapped position `seq` would resolve to right now (anchoring
    /// rule applied if the tracker is fresh). Used to order replay queues
    /// consistently across a wrap.
    pub fn position_hint(&self, seq: u32) -> u64 {
        match self.expected {
            Some(e) => Self::unwrap_near(e, seq),
            None => ANCHOR + u64::from(seq),
        }
    }

    /// Classify a datagram covering `[seq, seq + units)` in wire width.
    pub fn observe(&mut self, seq: u32, units: u64) -> Observation {
        let Some(expected) = self.expected else {
            let pos = ANCHOR + u64::from(seq);
            self.low = pos;
            self.expected = Some(pos + units);
            return Observation::New;
        };
        let pos = Self::unwrap_near(expected, seq);
        let end = pos + units;
        if pos == expected {
            self.expected = Some(end);
            return Observation::New;
        }
        if pos > expected {
            // Something in between never arrived (yet): open a gap.
            self.gap_events += 1;
            self.missing.insert(expected, pos);
            self.expected = Some(end);
            return Observation::New;
        }
        // pos < expected: before the anchor, a late fill, a duplicate, or
        // an inconsistency.
        if pos < self.low {
            if end <= self.low {
                // The session head arrived after a later datagram (e.g. an
                // adjacent reorder of the first two): accept it below the
                // floor, leaving any space in between as a gap.
                self.gap_events += 1;
                if end < self.low {
                    self.missing.insert(end, self.low);
                }
                self.low = pos;
                return Observation::New;
            }
            return Observation::Anomaly;
        }
        if end > expected {
            return Observation::Anomaly;
        }
        if let Some((&s, &e)) = self.missing.range(..=pos).next_back() {
            if pos >= s && end <= e && units > 0 {
                self.missing.remove(&s);
                if s < pos {
                    self.missing.insert(s, pos);
                }
                if end < e {
                    self.missing.insert(end, e);
                }
                return Observation::Late;
            }
        }
        // Ranges are disjoint and sorted, so checking the last range that
        // starts before `end` suffices for overlap detection.
        let overlaps = self
            .missing
            .range(..end)
            .next_back()
            .is_some_and(|(&s, &e)| e > pos && s < end);
        if overlaps {
            Observation::Anomaly
        } else {
            Observation::Duplicate
        }
    }

    /// Close the session against the exporter's ground truth: the wire
    /// sequence its first datagram carried and the unwrapped number of
    /// units it sent in total. Units before the anchor (lost session
    /// heads) and after the highest acceptance (lost tails) become gaps.
    /// If nothing was ever observed, the whole session is missing.
    pub fn close(&mut self, first_seq: u32, units_sent: u64) {
        let Some(expected) = self.expected else {
            if units_sent > 0 {
                let start = ANCHOR + u64::from(first_seq);
                self.gap_events += 1;
                self.missing.insert(start, start + units_sent);
                self.low = start;
                self.expected = Some(start + units_sent);
            }
            return;
        };
        let start = Self::unwrap_near(self.low, first_seq);
        if start < self.low {
            self.gap_events += 1;
            self.missing.insert(start, self.low);
            self.low = start;
        }
        let fin = start + units_sent;
        if fin > expected {
            self.gap_events += 1;
            self.missing.insert(expected, fin);
            self.expected = Some(fin);
        }
    }

    /// Units currently missing (gaps minus late fills).
    pub fn missing_units(&self) -> u64 {
        self.missing
            .values()
            .zip(self.missing.keys())
            .map(|(e, s)| e - s)
            .sum()
    }

    /// Gap events observed, including gaps later filled by late arrivals.
    pub fn gap_events(&self) -> u64 {
        self.gap_events
    }
}

/// Counter totals across everything a shard (or shard set) has seen.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ShardTotals {
    /// Datagrams presented.
    pub datagrams: u64,
    /// Structurally malformed datagrams rejected.
    pub malformed: u64,
    /// Data sets skipped because their template was unknown (first arrival
    /// only; replay attempts are not re-counted).
    pub missing_template_sets: u64,
    /// Datagrams buffered awaiting a template.
    pub buffered: u64,
    /// Duplicate datagrams rejected by sequence tracking.
    pub duplicates: u64,
    /// Sequence anomalies rejected (partial overlap with accepted space).
    pub anomalies: u64,
    /// Exporter restarts detected from boot-epoch shifts (v9 only).
    pub restarts_detected: u64,
    /// Sequence-gap events (counted at session close, transient included).
    pub sequence_gaps: u64,
    /// Records accepted.
    pub records_accepted: u64,
    /// Flow-record byte counters accepted (pre loss-renormalization).
    pub bytes_accepted: u64,
    /// Flow-record packet counters accepted (pre loss-renormalization).
    pub packets_accepted: u64,
    /// Ground-truth records (datagram tags) inside duplicate-rejected
    /// datagrams.
    pub records_duplicate: u64,
    /// Ground-truth records inside anomaly-rejected datagrams.
    pub records_anomalous: u64,
    /// Ground-truth records inside malformed datagrams.
    pub records_malformed: u64,
    /// Ground-truth records in accepted datagrams whose sets could not be
    /// decoded (template-missing shortfall inside mixed datagrams).
    pub records_undecoded: u64,
    /// Ground-truth records in buffered datagrams abandoned at close
    /// (their template never arrived).
    pub records_abandoned: u64,
    /// Distinct sequence units abandoned at close (duplicates of the same
    /// buffered datagram counted once — the unit of loss accounting).
    pub units_abandoned: u64,
    /// Estimated records lost, from missing units at session close.
    pub records_lost_est: u64,
    /// Records whose counters were scaled by loss-aware renormalization.
    pub records_renormalized: u64,
    /// Bytes added to accepted records by loss-aware renormalization.
    pub renorm_bytes_added: u64,
    /// Packets added to accepted records by loss-aware renormalization.
    pub renorm_packets_added: u64,
    /// Records whose renormalized counters clipped at the `u64::MAX`
    /// clamp (totals below them are a lower bound).
    pub renorm_clipped: u64,
}

impl ShardTotals {
    fn merge(&mut self, other: &ShardTotals) {
        self.datagrams += other.datagrams;
        self.malformed += other.malformed;
        self.missing_template_sets += other.missing_template_sets;
        self.buffered += other.buffered;
        self.duplicates += other.duplicates;
        self.anomalies += other.anomalies;
        self.restarts_detected += other.restarts_detected;
        self.sequence_gaps += other.sequence_gaps;
        self.records_accepted += other.records_accepted;
        self.bytes_accepted += other.bytes_accepted;
        self.packets_accepted += other.packets_accepted;
        self.records_duplicate += other.records_duplicate;
        self.records_anomalous += other.records_anomalous;
        self.records_malformed += other.records_malformed;
        self.records_undecoded += other.records_undecoded;
        self.records_abandoned += other.records_abandoned;
        self.units_abandoned += other.units_abandoned;
        self.records_lost_est += other.records_lost_est;
        self.records_renormalized += other.records_renormalized;
        self.renorm_bytes_added += other.renorm_bytes_added;
        self.renorm_packets_added += other.renorm_packets_added;
        self.renorm_clipped += other.renorm_clipped;
    }
}

/// Exporters whose boot epoch moves forward by more than this are treated
/// as restarted (small forward drift is just export-clock jitter).
const RESTART_EPOCH_TOLERANCE_MS: u64 = 1_500;

#[derive(Debug, Default)]
struct DomainSession {
    tracker: SequenceTracker,
    records: Vec<FlowRecord>,
    units_accepted: u64,
    /// Buffered undecodable datagrams: (wire sequence, ground-truth record
    /// tag, raw bytes).
    pending: Vec<(u32, u32, Vec<u8>)>,
    last_epoch_ms: Option<u64>,
}

/// One collector shard: a [`Collector`] extended with per-domain sequence
/// tracking, restart detection, replay buffering and loss estimation.
#[derive(Debug, Default)]
pub struct CollectorShard {
    units: Option<SequenceUnits>,
    inner: Collector,
    sessions: BTreeMap<u32, DomainSession>,
    totals: ShardTotals,
}

fn accept_into(
    session: &mut DomainSession,
    totals: &mut ShardTotals,
    seq: u32,
    units: u64,
    record_tag: u32,
    recs: Vec<FlowRecord>,
) -> Observation {
    let obs = session.tracker.observe(seq, units);
    match obs {
        Observation::New | Observation::Late => {
            session.units_accepted += units;
            totals.records_accepted += recs.len() as u64;
            totals.bytes_accepted += recs.iter().map(|r| r.bytes).sum::<u64>();
            totals.packets_accepted += recs.iter().map(|r| r.packets).sum::<u64>();
            // Mixed datagrams (some sets decodable, some template-less)
            // accept fewer records than the ground-truth tag says they
            // carry; the shortfall is accounted, not silently dropped.
            totals.records_undecoded += u64::from(record_tag).saturating_sub(recs.len() as u64);
            session.records.extend(recs);
        }
        Observation::Duplicate => {
            totals.duplicates += 1;
            totals.records_duplicate += u64::from(record_tag);
        }
        Observation::Anomaly => {
            totals.anomalies += 1;
            totals.records_anomalous += u64::from(record_tag);
        }
    }
    obs
}

impl CollectorShard {
    /// A shard expecting datagrams of `format`.
    pub fn new(format: ExportFormat) -> CollectorShard {
        CollectorShard {
            units: Some(SequenceUnits::for_format(format)),
            ..CollectorShard::default()
        }
    }

    fn units_of(&self, records: u64) -> u64 {
        match self.units.unwrap_or(SequenceUnits::Records) {
            SequenceUnits::Flows | SequenceUnits::Records => records,
            SequenceUnits::Packets => 1,
        }
    }

    /// Ingest one delivered datagram.
    pub fn ingest(&mut self, dg: &WireDatagram) {
        self.ingest_impl(dg.domain, Some(dg.records), 0, &dg.bytes);
    }

    /// Ingest one datagram as received from a real socket.
    ///
    /// No ground-truth record tag rides along a real wire, so the tag is
    /// derived from the datagram itself: the decoded record count when it
    /// decodes, otherwise `claimed_records` from the header peek (exact
    /// for v5, an upper bound for v9, 0 for IPFIX). On the zero-loss path
    /// the derived tag equals the ground truth, so socket runs stay
    /// byte- and ledger-identical to the in-process loopback transport.
    pub fn ingest_bytes(&mut self, domain: u32, claimed_records: u32, bytes: &[u8]) {
        self.ingest_impl(domain, None, claimed_records, bytes);
    }

    fn ingest_impl(&mut self, domain: u32, truth_tag: Option<u32>, claimed: u32, bytes: &[u8]) {
        self.totals.datagrams += 1;

        // v9 restart detection must run *before* decoding: the stale
        // template cache is flushed so the restart packet's fresh template
        // announcement is learned cleanly. The boot-epoch estimate
        // `unix_ms - uptime_ms` is computed from the u32-ms uptime field,
        // so when the uptime clock wraps (every ~49.7 days) the estimate
        // jumps forward by exactly 2^32 ms even though the exporter never
        // rebooted. A jump congruent to a multiple of 2^32 ms (within the
        // export-clock jitter tolerance) is therefore a *wrap*, not a
        // restart — conflating the two flushes a perfectly good template
        // cache and miscounts a restart.
        if self.units == Some(SequenceUnits::Packets) {
            if let Ok(hdr) = v9::check(bytes) {
                let epoch =
                    (u64::from(hdr.unix_secs) * 1000).saturating_sub(u64::from(hdr.sys_uptime_ms));
                let session = self.sessions.entry(domain).or_default();
                match session.last_epoch_ms {
                    Some(prev) if epoch > prev + RESTART_EPOCH_TOLERANCE_MS => {
                        session.last_epoch_ms = Some(epoch);
                        let jump = epoch - prev;
                        let rem = jump % (1u64 << 32);
                        let near_wrap_multiple = rem <= RESTART_EPOCH_TOLERANCE_MS
                            || (1u64 << 32) - rem <= RESTART_EPOCH_TOLERANCE_MS;
                        if !near_wrap_multiple {
                            self.inner.forget_domain(domain);
                            self.totals.restarts_detected += 1;
                        }
                    }
                    Some(prev) if epoch > prev => session.last_epoch_ms = Some(epoch),
                    Some(_) => {}
                    None => session.last_epoch_ms = Some(epoch),
                }
            }
        }

        let report = self.inner.ingest_detailed(bytes);
        let recs = self.inner.take_records();
        if !report.ok {
            self.totals.malformed += 1;
            self.totals.records_malformed += u64::from(truth_tag.unwrap_or(claimed));
            return;
        }
        let seq = report.sequence.unwrap_or(0);
        if report.missed_sets > 0 {
            self.totals.missing_template_sets += u64::from(report.missed_sets);
            if recs.is_empty() {
                // Nothing decodable yet: buffer the raw datagram and retry
                // once a template arrives. The tracker is left untouched —
                // if the datagram is never resolved, its sequence range
                // surfaces as a gap and is counted as loss.
                let session = self.sessions.entry(domain).or_default();
                session
                    .pending
                    .push((seq, truth_tag.unwrap_or(claimed), bytes.to_vec()));
                self.totals.buffered += 1;
                return;
            }
            // Mixed datagram: accept the decodable sets. The skipped sets'
            // units surface as a sequence gap at the next datagram, so the
            // lost-record estimate still covers them.
        }
        let units = self.units_of(recs.len() as u64);
        // Wire-side tag: what actually decoded. Undecoded shortfall inside
        // a mixed datagram is unknowable without ground truth; it surfaces
        // through the sequence gap (est_lost) instead of `undecoded`.
        let tag = truth_tag.unwrap_or(recs.len() as u32);
        let session = self.sessions.entry(domain).or_default();
        accept_into(session, &mut self.totals, seq, units, tag, recs);
        self.try_replay(domain);
    }

    /// Retry buffered datagrams for `domain` until no further progress;
    /// each success may itself carry templates that unlock the next.
    fn try_replay(&mut self, domain: u32) {
        loop {
            let Some(session) = self.sessions.get_mut(&domain) else {
                return;
            };
            if session.pending.is_empty() {
                return;
            }
            let mut pending = std::mem::take(&mut session.pending);
            // Replay in session order; raw u32 order would be wrong for a
            // queue straddling the sequence wrap.
            pending.sort_by_key(|&(seq, _, _)| session.tracker.position_hint(seq));
            let mut keep = Vec::with_capacity(pending.len());
            let mut progressed = false;
            for (seq, record_tag, bytes) in pending {
                let report = self.inner.ingest_detailed(&bytes);
                let recs = self.inner.take_records();
                if report.ok && (report.missed_sets == 0 || !recs.is_empty()) {
                    let units = self.units_of(recs.len() as u64);
                    let session = self.sessions.entry(domain).or_default();
                    accept_into(session, &mut self.totals, seq, units, record_tag, recs);
                    progressed = true;
                } else {
                    keep.push((seq, record_tag, bytes));
                }
            }
            let session = self.sessions.entry(domain).or_default();
            session.pending.extend(keep);
            if !progressed {
                return;
            }
        }
    }

    /// Close one domain's session against the exporter's ground truth
    /// (first wire sequence and unwrapped units sent), returning the
    /// accepted (possibly renormalized) records.
    pub fn close_domain(&mut self, truth: &DomainTruth, renormalize: bool) -> Vec<FlowRecord> {
        let mut session = self.sessions.remove(&truth.domain).unwrap_or_default();
        // Buffered datagrams that never found their template are abandoned;
        // their ranges stay missing and count as loss. Records are counted
        // per datagram; units once per distinct sequence, so a duplicated
        // then abandoned datagram is not double-counted as loss.
        let mut abandoned: BTreeMap<u32, u32> = BTreeMap::new();
        for (seq, record_tag, _) in session.pending.drain(..) {
            self.totals.records_abandoned += u64::from(record_tag);
            abandoned.entry(seq).or_insert(record_tag);
        }
        for (_, record_tag) in abandoned {
            self.totals.units_abandoned += self.units_of(u64::from(record_tag));
        }
        session.tracker.close(truth.first_seq, truth.units_sent);
        self.totals.sequence_gaps += session.tracker.gap_events();
        let missing = session.tracker.missing_units();
        let accepted_records = session.records.len() as u64;
        let est_lost = match self.units.unwrap_or(SequenceUnits::Records) {
            SequenceUnits::Flows | SequenceUnits::Records => missing,
            // v9 units are packets: scale by the mean records per accepted
            // packet, falling back to one record per packet if nothing was
            // accepted.
            SequenceUnits::Packets if session.units_accepted > 0 => {
                (missing * accepted_records + session.units_accepted / 2) / session.units_accepted
            }
            SequenceUnits::Packets => missing,
        };
        self.totals.records_lost_est += est_lost;
        if renormalize && est_lost > 0 && accepted_records > 0 {
            let total = u128::from(accepted_records + est_lost);
            let accepted = u128::from(accepted_records);
            let cap = u128::from(u64::MAX);
            for r in &mut session.records {
                let bw = u128::from(r.bytes) * total / accepted;
                let pw = u128::from(r.packets) * total / accepted;
                if bw > cap || pw > cap {
                    self.totals.renorm_clipped += 1;
                }
                let b = bw.min(cap) as u64;
                let p = pw.min(cap) as u64;
                if b != r.bytes || p != r.packets {
                    self.totals.records_renormalized += 1;
                }
                self.totals.renorm_bytes_added += b - r.bytes;
                self.totals.renorm_packets_added += p - r.packets;
                r.bytes = b;
                r.packets = p;
            }
        }
        session.records
    }

    /// Counter totals so far (loss estimates appear after `close_domain`).
    pub fn totals(&self) -> ShardTotals {
        self.totals
    }
}

/// A set of shards with datagrams routed by observation domain.
#[derive(Debug)]
pub struct ShardSet {
    shards: Vec<CollectorShard>,
}

impl ShardSet {
    /// `count` shards expecting `format` datagrams.
    pub fn new(count: usize, format: ExportFormat) -> ShardSet {
        assert!(count >= 1, "need at least one shard");
        ShardSet {
            shards: (0..count).map(|_| CollectorShard::new(format)).collect(),
        }
    }

    /// A set over shards that already ingested elsewhere (the collection
    /// daemon's workers own one shard each and hand them back at a cycle
    /// barrier). Shard `i` must have seen exactly the domains with
    /// `domain % len == i` — the same routing [`ShardSet::ingest`] applies.
    pub fn from_shards(shards: Vec<CollectorShard>) -> ShardSet {
        assert!(!shards.is_empty(), "need at least one shard");
        ShardSet { shards }
    }

    /// Number of shards.
    pub fn len(&self) -> usize {
        self.shards.len()
    }

    /// Whether the set has no shards (never true; kept for API symmetry).
    pub fn is_empty(&self) -> bool {
        self.shards.is_empty()
    }

    fn route(&mut self, domain: u32) -> &mut CollectorShard {
        let n = self.shards.len();
        &mut self.shards[domain as usize % n]
    }

    /// Route one delivered datagram to its shard.
    pub fn ingest(&mut self, dg: &WireDatagram) {
        self.route(dg.domain).ingest(dg);
    }

    /// Close every session against the fleet's per-domain ground truth.
    /// Records come back grouped by ascending domain, each domain's records
    /// in acceptance order — an ordering independent of the shard count.
    pub fn close(&mut self, sessions: &[DomainTruth], renormalize: bool) -> Vec<FlowRecord> {
        let mut sorted = sessions.to_vec();
        sorted.sort_unstable_by_key(|s| s.domain);
        let mut out = Vec::new();
        for truth in &sorted {
            out.extend(self.route(truth.domain).close_domain(truth, renormalize));
        }
        out
    }

    /// Summed counter totals across all shards.
    pub fn totals(&self) -> ShardTotals {
        let mut t = ShardTotals::default();
        for s in &self.shards {
            t.merge(&s.totals());
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracker_in_order_session_has_no_gaps() {
        let mut t = SequenceTracker::new();
        assert_eq!(t.observe(0, 10), Observation::New);
        assert_eq!(t.observe(10, 10), Observation::New);
        assert_eq!(t.observe(20, 5), Observation::New);
        t.close(0, 25);
        assert_eq!(t.missing_units(), 0);
        assert_eq!(t.gap_events(), 0);
    }

    #[test]
    fn tracker_gap_then_late_fill() {
        let mut t = SequenceTracker::new();
        assert_eq!(t.observe(0, 10), Observation::New);
        // Datagram [10, 20) delayed; [20, 30) arrives first.
        assert_eq!(t.observe(20, 10), Observation::New);
        assert_eq!(t.missing_units(), 10);
        assert_eq!(t.observe(10, 10), Observation::Late);
        assert_eq!(t.missing_units(), 0);
        t.close(0, 30);
        assert_eq!(t.missing_units(), 0);
        // The transient gap is still recorded as an event.
        assert_eq!(t.gap_events(), 1);
    }

    #[test]
    fn tracker_partial_fill_splits_range() {
        let mut t = SequenceTracker::new();
        assert_eq!(t.observe(0, 5), Observation::New);
        assert_eq!(t.observe(30, 5), Observation::New);
        // Fill the middle of the [5, 30) hole.
        assert_eq!(t.observe(10, 5), Observation::Late);
        assert_eq!(t.missing_units(), 20);
        assert_eq!(t.observe(5, 5), Observation::Late);
        assert_eq!(t.observe(15, 15), Observation::Late);
        assert_eq!(t.missing_units(), 0);
    }

    #[test]
    fn tracker_duplicates_and_anomalies() {
        let mut t = SequenceTracker::new();
        assert_eq!(t.observe(0, 10), Observation::New);
        assert_eq!(t.observe(0, 10), Observation::Duplicate);
        assert_eq!(t.observe(3, 4), Observation::Duplicate);
        // Extends beyond what was ever sent at this point.
        assert_eq!(t.observe(5, 10), Observation::Anomaly);
        // Straddles accepted space and a gap.
        assert_eq!(t.observe(20, 10), Observation::New);
        assert_eq!(t.observe(8, 4), Observation::Anomaly);
    }

    #[test]
    fn tracker_close_counts_tail_loss() {
        let mut t = SequenceTracker::new();
        assert_eq!(t.observe(0, 10), Observation::New);
        t.close(0, 40);
        assert_eq!(t.missing_units(), 30);
        assert_eq!(t.gap_events(), 1);
    }

    #[test]
    fn tracker_anchors_at_first_sequence_not_zero() {
        // Exporters joined mid-count do not start at 0: the range before
        // the ground-truth first sequence is not loss.
        let mut t = SequenceTracker::new();
        assert_eq!(t.observe(1_000_000, 10), Observation::New);
        assert_eq!(t.observe(1_000_010, 10), Observation::New);
        t.close(1_000_000, 20);
        assert_eq!(t.missing_units(), 0);
        assert_eq!(t.gap_events(), 0);
    }

    #[test]
    fn tracker_wrap_is_continuity_not_a_gap() {
        // seq u32::MAX - 10 then the post-wrap successor is ordinary
        // continuity — the pre-fix tracker saw a ~4-billion-unit gap here.
        let mut t = SequenceTracker::new();
        assert_eq!(t.observe(u32::MAX - 10, 11), Observation::New);
        assert_eq!(t.observe(0, 5), Observation::New);
        assert_eq!(t.observe(5, 5), Observation::New);
        t.close(u32::MAX - 10, 21);
        assert_eq!(t.missing_units(), 0);
        assert_eq!(t.gap_events(), 0);
    }

    #[test]
    fn tracker_gap_and_late_fill_across_the_wrap() {
        let mut t = SequenceTracker::new();
        assert_eq!(t.observe(u32::MAX - 5, 2), Observation::New);
        // The wrap-straddling datagram [MAX-3, 6) is delayed.
        assert_eq!(t.observe(6, 4), Observation::New);
        assert_eq!(t.missing_units(), 10);
        assert_eq!(t.observe(u32::MAX - 3, 10), Observation::Late);
        assert_eq!(t.missing_units(), 0);
        t.close(u32::MAX - 5, 16);
        assert_eq!(t.missing_units(), 0);
        assert_eq!(t.gap_events(), 1);
    }

    #[test]
    fn tracker_duplicate_across_the_wrap() {
        let mut t = SequenceTracker::new();
        assert_eq!(t.observe(u32::MAX - 10, 11), Observation::New);
        assert_eq!(t.observe(0, 5), Observation::New);
        assert_eq!(t.observe(u32::MAX - 10, 11), Observation::Duplicate);
        assert_eq!(t.observe(0, 5), Observation::Duplicate);
        // Straddling accepted space and beyond is still anomalous.
        assert_eq!(t.observe(2, 10), Observation::Anomaly);
    }

    #[test]
    fn tracker_close_counts_losses_around_the_wrap() {
        // Head datagram [MAX-10, 5) lost: only the post-wrap one arrives.
        let mut t = SequenceTracker::new();
        assert_eq!(t.observe(4, 10), Observation::New);
        t.close(u32::MAX - 10, 25);
        assert_eq!(t.missing_units(), 15, "lost head straddling the wrap");
        assert_eq!(t.gap_events(), 1);

        // Tail lost across the wrap.
        let mut t = SequenceTracker::new();
        assert_eq!(t.observe(u32::MAX - 10, 5), Observation::New);
        t.close(u32::MAX - 10, 40);
        assert_eq!(t.missing_units(), 35, "lost tail straddling the wrap");
    }

    #[test]
    fn tracker_reordered_head_is_accepted_below_the_anchor() {
        // Adjacent reorder swaps the first two datagrams; the true head
        // arrives second and lands below the anchor.
        let mut t = SequenceTracker::new();
        assert_eq!(t.observe(10, 10), Observation::New);
        assert_eq!(t.observe(0, 10), Observation::New);
        t.close(0, 20);
        assert_eq!(t.missing_units(), 0);
        // The swap shows up as a (filled) gap event, same as before.
        assert_eq!(t.gap_events(), 1);

        // Same shape straddling the wrap.
        let mut t = SequenceTracker::new();
        assert_eq!(t.observe(2, 10), Observation::New);
        assert_eq!(t.observe(u32::MAX - 7, 10), Observation::New);
        t.close(u32::MAX - 7, 20);
        assert_eq!(t.missing_units(), 0);
    }

    #[test]
    fn tracker_nothing_observed_is_all_loss() {
        let mut t = SequenceTracker::new();
        t.close(u32::MAX - 3, 17);
        assert_eq!(t.missing_units(), 17);
        assert_eq!(t.gap_events(), 1);
    }
}
