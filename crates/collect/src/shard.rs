//! Sequence-tracking collector shards.
//!
//! Each shard wraps a [`Collector`] and adds what the base collector lacks:
//! per-source sequence accounting. NetFlow v5 sequence numbers count
//! *flows*, v9 counts *packets*, and IPFIX counts *data records* — the
//! tracker works in whichever unit the format defines and reports gaps,
//! duplicates and estimated record loss per observation domain.
//!
//! Datagrams that cannot be decoded yet (data sets before the template) are
//! buffered and replayed once a template arrives, so transient reordering
//! costs nothing. At session close, units still missing are converted into
//! an estimated record loss, and — when enabled — the accepted records are
//! renormalized so downstream aggregates degrade proportionally with loss
//! instead of silently undercounting.

use lockdown_flow::netflow::v9;
use lockdown_flow::prelude::*;

use crate::fleet::WireDatagram;
use std::collections::BTreeMap;

/// What a format's sequence numbers count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SequenceUnits {
    /// v5: the header sequence counts exported flows.
    Flows,
    /// v9: the header sequence counts exported packets.
    Packets,
    /// IPFIX: the header sequence counts exported data records.
    Records,
}

impl SequenceUnits {
    /// The unit a format's sequence field advances in.
    pub fn for_format(format: ExportFormat) -> SequenceUnits {
        match format {
            ExportFormat::NetflowV5 => SequenceUnits::Flows,
            ExportFormat::NetflowV9 => SequenceUnits::Packets,
            ExportFormat::Ipfix => SequenceUnits::Records,
        }
    }
}

/// Outcome of presenting one datagram's sequence range to the tracker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Observation {
    /// In-order (or past a gap): accepted, advancing the session.
    New,
    /// Filled part of a previously missing range: accepted late.
    Late,
    /// Entirely inside already-accepted space: rejected as a duplicate.
    Duplicate,
    /// Partially overlaps accepted space: rejected as inconsistent.
    Anomaly,
}

/// Per-domain sequence accounting over half-open unit ranges.
///
/// Sessions start at sequence 0 (fresh exporters); `observe` classifies
/// each datagram's `[seq, seq + units)` range and `close` converts the
/// exporter's final counter into a trailing gap if datagrams at the tail
/// never arrived.
#[derive(Debug, Default)]
pub struct SequenceTracker {
    expected: u64,
    missing: BTreeMap<u64, u64>,
    gap_events: u64,
}

impl SequenceTracker {
    /// A tracker expecting a session that starts at sequence 0.
    pub fn new() -> SequenceTracker {
        SequenceTracker::default()
    }

    /// Classify a datagram covering `[seq, seq + units)`.
    pub fn observe(&mut self, seq: u64, units: u64) -> Observation {
        let end = seq + units;
        if seq == self.expected {
            self.expected = end;
            return Observation::New;
        }
        if seq > self.expected {
            // Something in between never arrived (yet): open a gap.
            self.gap_events += 1;
            self.missing.insert(self.expected, seq);
            self.expected = end;
            return Observation::New;
        }
        // seq < expected: late fill, duplicate, or inconsistency.
        if end > self.expected {
            return Observation::Anomaly;
        }
        if let Some((&s, &e)) = self.missing.range(..=seq).next_back() {
            if seq >= s && end <= e && units > 0 {
                self.missing.remove(&s);
                if s < seq {
                    self.missing.insert(s, seq);
                }
                if end < e {
                    self.missing.insert(end, e);
                }
                return Observation::Late;
            }
        }
        // Ranges are disjoint and sorted, so checking the last range that
        // starts before `end` suffices for overlap detection.
        let overlaps = self
            .missing
            .range(..end)
            .next_back()
            .is_some_and(|(&s, &e)| e > seq && s < end);
        if overlaps {
            Observation::Anomaly
        } else {
            Observation::Duplicate
        }
    }

    /// Close the session against the exporter's final sequence counter,
    /// opening a trailing gap for any tail units that never arrived.
    pub fn close(&mut self, final_units: u64) {
        if final_units > self.expected {
            self.gap_events += 1;
            self.missing.insert(self.expected, final_units);
            self.expected = final_units;
        }
    }

    /// Units currently missing (gaps minus late fills).
    pub fn missing_units(&self) -> u64 {
        self.missing
            .values()
            .zip(self.missing.keys())
            .map(|(e, s)| e - s)
            .sum()
    }

    /// Gap events observed, including gaps later filled by late arrivals.
    pub fn gap_events(&self) -> u64 {
        self.gap_events
    }
}

/// Counter totals across everything a shard (or shard set) has seen.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ShardTotals {
    /// Datagrams presented.
    pub datagrams: u64,
    /// Structurally malformed datagrams rejected.
    pub malformed: u64,
    /// Data sets skipped because their template was unknown (first arrival
    /// only; replay attempts are not re-counted).
    pub missing_template_sets: u64,
    /// Datagrams buffered awaiting a template.
    pub buffered: u64,
    /// Duplicate datagrams rejected by sequence tracking.
    pub duplicates: u64,
    /// Sequence anomalies rejected (partial overlap with accepted space).
    pub anomalies: u64,
    /// Exporter restarts detected from boot-epoch shifts (v9 only).
    pub restarts_detected: u64,
    /// Sequence-gap events (counted at session close, transient included).
    pub sequence_gaps: u64,
    /// Records accepted.
    pub records_accepted: u64,
    /// Estimated records lost, from missing units at session close.
    pub records_lost_est: u64,
    /// Records whose counters were scaled by loss-aware renormalization.
    pub records_renormalized: u64,
}

impl ShardTotals {
    fn merge(&mut self, other: &ShardTotals) {
        self.datagrams += other.datagrams;
        self.malformed += other.malformed;
        self.missing_template_sets += other.missing_template_sets;
        self.buffered += other.buffered;
        self.duplicates += other.duplicates;
        self.anomalies += other.anomalies;
        self.restarts_detected += other.restarts_detected;
        self.sequence_gaps += other.sequence_gaps;
        self.records_accepted += other.records_accepted;
        self.records_lost_est += other.records_lost_est;
        self.records_renormalized += other.records_renormalized;
    }
}

/// Exporters whose boot epoch moves forward by more than this are treated
/// as restarted (small forward drift is just export-clock jitter).
const RESTART_EPOCH_TOLERANCE_MS: u64 = 1_500;

#[derive(Debug, Default)]
struct DomainSession {
    tracker: SequenceTracker,
    records: Vec<FlowRecord>,
    units_accepted: u64,
    pending: Vec<(u64, Vec<u8>)>,
    last_epoch_ms: Option<u64>,
}

/// One collector shard: a [`Collector`] extended with per-domain sequence
/// tracking, restart detection, replay buffering and loss estimation.
#[derive(Debug, Default)]
pub struct CollectorShard {
    units: Option<SequenceUnits>,
    inner: Collector,
    sessions: BTreeMap<u32, DomainSession>,
    totals: ShardTotals,
}

fn accept_into(
    session: &mut DomainSession,
    totals: &mut ShardTotals,
    seq: u64,
    units: u64,
    recs: Vec<FlowRecord>,
) -> Observation {
    let obs = session.tracker.observe(seq, units);
    match obs {
        Observation::New | Observation::Late => {
            session.units_accepted += units;
            totals.records_accepted += recs.len() as u64;
            session.records.extend(recs);
        }
        Observation::Duplicate => totals.duplicates += 1,
        Observation::Anomaly => totals.anomalies += 1,
    }
    obs
}

impl CollectorShard {
    /// A shard expecting datagrams of `format`.
    pub fn new(format: ExportFormat) -> CollectorShard {
        CollectorShard {
            units: Some(SequenceUnits::for_format(format)),
            ..CollectorShard::default()
        }
    }

    fn units_of(&self, records: u64) -> u64 {
        match self.units.unwrap_or(SequenceUnits::Records) {
            SequenceUnits::Flows | SequenceUnits::Records => records,
            SequenceUnits::Packets => 1,
        }
    }

    /// Ingest one delivered datagram.
    pub fn ingest(&mut self, dg: &WireDatagram) {
        self.totals.datagrams += 1;
        let domain = dg.domain;

        // v9 restart detection must run *before* decoding: the stale
        // template cache is flushed so the restart packet's fresh template
        // announcement is learned cleanly.
        if self.units == Some(SequenceUnits::Packets) {
            if let Ok(hdr) = v9::check(&dg.bytes) {
                let epoch =
                    (u64::from(hdr.unix_secs) * 1000).saturating_sub(u64::from(hdr.sys_uptime_ms));
                let session = self.sessions.entry(domain).or_default();
                match session.last_epoch_ms {
                    Some(prev) if epoch > prev + RESTART_EPOCH_TOLERANCE_MS => {
                        session.last_epoch_ms = Some(epoch);
                        self.inner.forget_domain(domain);
                        self.totals.restarts_detected += 1;
                    }
                    Some(prev) if epoch > prev => session.last_epoch_ms = Some(epoch),
                    Some(_) => {}
                    None => session.last_epoch_ms = Some(epoch),
                }
            }
        }

        let report = self.inner.ingest_detailed(&dg.bytes);
        let recs = self.inner.take_records();
        if !report.ok {
            self.totals.malformed += 1;
            return;
        }
        let seq = u64::from(report.sequence.unwrap_or(0));
        if report.missed_sets > 0 {
            self.totals.missing_template_sets += u64::from(report.missed_sets);
            if recs.is_empty() {
                // Nothing decodable yet: buffer the raw datagram and retry
                // once a template arrives. The tracker is left untouched —
                // if the datagram is never resolved, its sequence range
                // surfaces as a gap and is counted as loss.
                let session = self.sessions.entry(domain).or_default();
                session.pending.push((seq, dg.bytes.clone()));
                self.totals.buffered += 1;
                return;
            }
            // Mixed datagram: accept the decodable sets. The skipped sets'
            // units surface as a sequence gap at the next datagram, so the
            // lost-record estimate still covers them.
        }
        let units = self.units_of(recs.len() as u64);
        let session = self.sessions.entry(domain).or_default();
        accept_into(session, &mut self.totals, seq, units, recs);
        self.try_replay(domain);
    }

    /// Retry buffered datagrams for `domain` until no further progress;
    /// each success may itself carry templates that unlock the next.
    fn try_replay(&mut self, domain: u32) {
        loop {
            let Some(session) = self.sessions.get_mut(&domain) else {
                return;
            };
            if session.pending.is_empty() {
                return;
            }
            let mut pending = std::mem::take(&mut session.pending);
            pending.sort_by_key(|&(seq, _)| seq);
            let mut keep = Vec::with_capacity(pending.len());
            let mut progressed = false;
            for (seq, bytes) in pending {
                let report = self.inner.ingest_detailed(&bytes);
                let recs = self.inner.take_records();
                if report.ok && (report.missed_sets == 0 || !recs.is_empty()) {
                    let units = self.units_of(recs.len() as u64);
                    let session = self.sessions.entry(domain).or_default();
                    accept_into(session, &mut self.totals, seq, units, recs);
                    progressed = true;
                } else {
                    keep.push((seq, bytes));
                }
            }
            let session = self.sessions.entry(domain).or_default();
            session.pending.extend(keep);
            if !progressed {
                return;
            }
        }
    }

    /// Close one domain's session against the exporter's final sequence
    /// counter, returning the accepted (possibly renormalized) records.
    pub fn close_domain(
        &mut self,
        domain: u32,
        final_units: u64,
        renormalize: bool,
    ) -> Vec<FlowRecord> {
        let mut session = self.sessions.remove(&domain).unwrap_or_default();
        // Buffered datagrams that never found their template are abandoned;
        // their ranges stay missing and count as loss.
        session.pending.clear();
        session.tracker.close(final_units);
        self.totals.sequence_gaps += session.tracker.gap_events();
        let missing = session.tracker.missing_units();
        let accepted_records = session.records.len() as u64;
        let est_lost = match self.units.unwrap_or(SequenceUnits::Records) {
            SequenceUnits::Flows | SequenceUnits::Records => missing,
            // v9 units are packets: scale by the mean records per accepted
            // packet, falling back to one record per packet if nothing was
            // accepted.
            SequenceUnits::Packets if session.units_accepted > 0 => {
                (missing * accepted_records + session.units_accepted / 2) / session.units_accepted
            }
            SequenceUnits::Packets => missing,
        };
        self.totals.records_lost_est += est_lost;
        if renormalize && est_lost > 0 && accepted_records > 0 {
            let total = u128::from(accepted_records + est_lost);
            let accepted = u128::from(accepted_records);
            let cap = u128::from(u64::MAX);
            for r in &mut session.records {
                let b = (u128::from(r.bytes) * total / accepted).min(cap) as u64;
                let p = (u128::from(r.packets) * total / accepted).min(cap) as u64;
                if b != r.bytes || p != r.packets {
                    self.totals.records_renormalized += 1;
                }
                r.bytes = b;
                r.packets = p;
            }
        }
        session.records
    }

    /// Counter totals so far (loss estimates appear after `close_domain`).
    pub fn totals(&self) -> ShardTotals {
        self.totals
    }
}

/// A set of shards with datagrams routed by observation domain.
#[derive(Debug)]
pub struct ShardSet {
    shards: Vec<CollectorShard>,
}

impl ShardSet {
    /// `count` shards expecting `format` datagrams.
    pub fn new(count: usize, format: ExportFormat) -> ShardSet {
        assert!(count >= 1, "need at least one shard");
        ShardSet {
            shards: (0..count).map(|_| CollectorShard::new(format)).collect(),
        }
    }

    /// Number of shards.
    pub fn len(&self) -> usize {
        self.shards.len()
    }

    /// Whether the set has no shards (never true; kept for API symmetry).
    pub fn is_empty(&self) -> bool {
        self.shards.is_empty()
    }

    fn route(&mut self, domain: u32) -> &mut CollectorShard {
        let n = self.shards.len();
        &mut self.shards[domain as usize % n]
    }

    /// Route one delivered datagram to its shard.
    pub fn ingest(&mut self, dg: &WireDatagram) {
        self.route(dg.domain).ingest(dg);
    }

    /// Close every session against the fleet's final sequence counters.
    /// Records come back grouped by ascending domain, each domain's records
    /// in acceptance order — an ordering independent of the shard count.
    pub fn close(&mut self, final_seqs: &[(u32, u64)], renormalize: bool) -> Vec<FlowRecord> {
        let mut sorted = final_seqs.to_vec();
        sorted.sort_unstable();
        let mut out = Vec::new();
        for (domain, final_units) in sorted {
            out.extend(
                self.route(domain)
                    .close_domain(domain, final_units, renormalize),
            );
        }
        out
    }

    /// Summed counter totals across all shards.
    pub fn totals(&self) -> ShardTotals {
        let mut t = ShardTotals::default();
        for s in &self.shards {
            t.merge(&s.totals());
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracker_in_order_session_has_no_gaps() {
        let mut t = SequenceTracker::new();
        assert_eq!(t.observe(0, 10), Observation::New);
        assert_eq!(t.observe(10, 10), Observation::New);
        assert_eq!(t.observe(20, 5), Observation::New);
        t.close(25);
        assert_eq!(t.missing_units(), 0);
        assert_eq!(t.gap_events(), 0);
    }

    #[test]
    fn tracker_gap_then_late_fill() {
        let mut t = SequenceTracker::new();
        assert_eq!(t.observe(0, 10), Observation::New);
        // Datagram [10, 20) delayed; [20, 30) arrives first.
        assert_eq!(t.observe(20, 10), Observation::New);
        assert_eq!(t.missing_units(), 10);
        assert_eq!(t.observe(10, 10), Observation::Late);
        assert_eq!(t.missing_units(), 0);
        t.close(30);
        assert_eq!(t.missing_units(), 0);
        // The transient gap is still recorded as an event.
        assert_eq!(t.gap_events(), 1);
    }

    #[test]
    fn tracker_partial_fill_splits_range() {
        let mut t = SequenceTracker::new();
        assert_eq!(t.observe(0, 5), Observation::New);
        assert_eq!(t.observe(30, 5), Observation::New);
        // Fill the middle of the [5, 30) hole.
        assert_eq!(t.observe(10, 5), Observation::Late);
        assert_eq!(t.missing_units(), 20);
        assert_eq!(t.observe(5, 5), Observation::Late);
        assert_eq!(t.observe(15, 15), Observation::Late);
        assert_eq!(t.missing_units(), 0);
    }

    #[test]
    fn tracker_duplicates_and_anomalies() {
        let mut t = SequenceTracker::new();
        assert_eq!(t.observe(0, 10), Observation::New);
        assert_eq!(t.observe(0, 10), Observation::Duplicate);
        assert_eq!(t.observe(3, 4), Observation::Duplicate);
        // Extends beyond what was ever sent at this point.
        assert_eq!(t.observe(5, 10), Observation::Anomaly);
        // Straddles accepted space and a gap.
        assert_eq!(t.observe(20, 10), Observation::New);
        assert_eq!(t.observe(8, 4), Observation::Anomaly);
    }

    #[test]
    fn tracker_close_counts_tail_loss() {
        let mut t = SequenceTracker::new();
        assert_eq!(t.observe(0, 10), Observation::New);
        t.close(40);
        assert_eq!(t.missing_units(), 30);
        assert_eq!(t.gap_events(), 1);
    }
}
