//! Bounded MPSC queues between socket receivers and shard workers.
//!
//! The collection daemon fans datagrams out from socket receiver threads
//! to shard worker threads. The queue in between is deliberately *bounded*
//! and *lossy at the producer*: when a shard falls behind, the receiver
//! must not block (that would back the kernel socket buffer up into
//! silent, uncounted kernel drops) — it drops the datagram itself and the
//! drop is counted explicitly. [`BoundedQueue::try_push`] is that lossy
//! edge; [`BoundedQueue::push`] is the blocking variant reserved for
//! control messages (cycle barriers) that must never be dropped.
//!
//! Hand-rolled on `Mutex` + `Condvar` so the crate stays dependency-free
//! and `forbid(unsafe_code)`.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// A bounded multi-producer queue with explicit, counted overflow.
#[derive(Debug)]
pub struct BoundedQueue<T> {
    state: Mutex<State<T>>,
    not_empty: Condvar,
    not_full: Condvar,
    capacity: usize,
}

#[derive(Debug)]
struct State<T> {
    items: VecDeque<T>,
    closed: bool,
}

impl<T> BoundedQueue<T> {
    /// A queue holding at most `capacity` items (at least 1).
    pub fn new(capacity: usize) -> BoundedQueue<T> {
        let capacity = capacity.max(1);
        BoundedQueue {
            state: Mutex::new(State {
                items: VecDeque::with_capacity(capacity),
                closed: false,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity,
        }
    }

    /// The queue's bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Items currently queued.
    pub fn len(&self) -> usize {
        self.state.lock().expect("queue poisoned").items.len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Non-blocking push: `Err(item)` hands the item back when the queue
    /// is full (or closed) so the caller can count the drop.
    pub fn try_push(&self, item: T) -> Result<(), T> {
        let mut s = self.state.lock().expect("queue poisoned");
        if s.closed || s.items.len() >= self.capacity {
            return Err(item);
        }
        s.items.push_back(item);
        drop(s);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Blocking push for control messages that must not be dropped; waits
    /// for space. Returns `Err(item)` only if the queue was closed.
    pub fn push(&self, item: T) -> Result<(), T> {
        let mut s = self.state.lock().expect("queue poisoned");
        loop {
            if s.closed {
                return Err(item);
            }
            if s.items.len() < self.capacity {
                s.items.push_back(item);
                drop(s);
                self.not_empty.notify_one();
                return Ok(());
            }
            s = self.not_full.wait(s).expect("queue poisoned");
        }
    }

    /// Blocking pop; `None` once the queue is closed *and* drained, so a
    /// consumer loop processes everything enqueued before shutdown.
    pub fn pop(&self) -> Option<T> {
        let mut s = self.state.lock().expect("queue poisoned");
        loop {
            if let Some(item) = s.items.pop_front() {
                drop(s);
                self.not_full.notify_one();
                return Some(item);
            }
            if s.closed {
                return None;
            }
            s = self.not_empty.wait(s).expect("queue poisoned");
        }
    }

    /// Close the queue: producers fail fast, consumers drain then stop.
    pub fn close(&self) {
        self.state.lock().expect("queue poisoned").closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn try_push_overflow_hands_the_item_back() {
        let q = BoundedQueue::new(2);
        assert!(q.try_push(1).is_ok());
        assert!(q.try_push(2).is_ok());
        assert_eq!(q.try_push(3), Err(3));
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop(), Some(1));
        assert!(q.try_push(3).is_ok());
    }

    #[test]
    fn close_drains_then_stops() {
        let q = BoundedQueue::new(4);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        q.close();
        assert_eq!(q.try_push(3), Err(3));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn blocking_push_waits_for_space() {
        let q = Arc::new(BoundedQueue::new(1));
        q.try_push(1).unwrap();
        let producer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.push(2))
        };
        // The producer is blocked until this pop frees a slot.
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert_eq!(q.pop(), Some(1));
        assert!(producer.join().unwrap().is_ok());
        assert_eq!(q.pop(), Some(2));
    }

    #[test]
    fn cross_thread_fifo() {
        let q = Arc::new(BoundedQueue::new(8));
        let consumer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                let mut got = Vec::new();
                while let Some(v) = q.pop() {
                    got.push(v);
                }
                got
            })
        };
        for i in 0..100 {
            while q.try_push(i).is_err() {
                std::thread::yield_now();
            }
        }
        q.close();
        assert_eq!(consumer.join().unwrap(), (0..100).collect::<Vec<_>>());
    }
}
