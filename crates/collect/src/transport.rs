//! Fault-injecting datagram transport.
//!
//! Models the UDP path between exporter and collector with three seeded
//! fault classes — drop, duplicate, and adjacent reorder — plus the restart
//! cadence the fleet applies to its exporters. Faults are decided by a
//! splitmix64 stream over the per-cell seed, so a given `(seed, profile)`
//! pair always yields the same delivery schedule.
//!
//! Drops are decided *first*, before duplication, so the ground-truth count
//! of lost records is exactly the record total of dropped datagrams: a
//! dropped datagram never leaves a duplicate behind, and a duplicated
//! datagram is never retroactively dropped. This makes the transport report
//! an exact reference for validating collector-side loss estimates.

use crate::fleet::WireDatagram;
use crate::rng::SplitMix;

/// Probabilities and cadences for injected faults. All probabilities are
/// per-datagram and clamped to `[0, 0.95]` on construction paths that parse
/// user input; `FaultProfile::zero()` is the identity transport.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultProfile {
    /// Probability that a datagram is dropped in flight.
    pub loss: f64,
    /// Probability that a delivered datagram is followed by a duplicate.
    pub duplicate: f64,
    /// Probability that adjacent delivered datagrams are swapped.
    pub reorder: f64,
    /// Restart each exporter after this many emitted datagrams
    /// (0 disables restarts). Applied by the fleet, not the transport,
    /// but carried here so one profile describes the whole fault surface.
    pub restart_every: u32,
}

impl FaultProfile {
    /// The identity profile: nothing dropped, duplicated, reordered or
    /// restarted. Wire mode with this profile must reproduce in-process
    /// figure output byte for byte.
    pub fn zero() -> FaultProfile {
        FaultProfile {
            loss: 0.0,
            duplicate: 0.0,
            reorder: 0.0,
            restart_every: 0,
        }
    }

    /// Whether this profile injects no faults at all.
    pub fn is_zero(&self) -> bool {
        self.loss == 0.0 && self.duplicate == 0.0 && self.reorder == 0.0 && self.restart_every == 0
    }

    /// Clamp probabilities into `[0, 0.95]` (a transport that drops
    /// everything would make loss accounting vacuous).
    pub fn clamped(mut self) -> FaultProfile {
        for p in [&mut self.loss, &mut self.duplicate, &mut self.reorder] {
            if !p.is_finite() || *p < 0.0 {
                *p = 0.0;
            } else if *p > 0.95 {
                *p = 0.95;
            }
        }
        self
    }
}

impl Default for FaultProfile {
    fn default() -> FaultProfile {
        FaultProfile::zero()
    }
}

/// Ground truth of what one transport pass did to a datagram sequence.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct TransportReport {
    /// Datagrams delivered (duplicates included).
    pub delivered: u64,
    /// Datagrams dropped.
    pub dropped_datagrams: u64,
    /// Flow records inside dropped datagrams — the exact loss ground truth.
    pub dropped_records: u64,
    /// Flow-record byte counters inside dropped datagrams.
    pub dropped_bytes: u64,
    /// Flow-record packet counters inside dropped datagrams.
    pub dropped_packets: u64,
    /// Duplicates injected.
    pub duplicated: u64,
    /// Flow records inside injected duplicates — what a collector that
    /// failed to deduplicate would double-count.
    pub duplicated_records: u64,
    /// Adjacent swaps applied.
    pub reordered: u64,
}

/// A seeded single-use transport for one cell's datagram sequence.
#[derive(Debug)]
pub struct Transport {
    profile: FaultProfile,
    rng: SplitMix,
}

impl Transport {
    /// A transport applying `profile`, seeded for one cell.
    pub fn new(profile: FaultProfile, seed: u64) -> Transport {
        Transport {
            profile,
            rng: SplitMix::new(seed),
        }
    }

    /// Push a datagram sequence through the faulty path, returning what the
    /// collector will actually see plus the ground-truth fault report.
    pub fn deliver(mut self, datagrams: Vec<WireDatagram>) -> (Vec<WireDatagram>, TransportReport) {
        let mut report = TransportReport::default();
        let mut out = Vec::with_capacity(datagrams.len());
        for dg in datagrams {
            if self.profile.loss > 0.0 && self.rng.next_f64() < self.profile.loss {
                report.dropped_datagrams += 1;
                report.dropped_records += u64::from(dg.records);
                report.dropped_bytes += dg.flow_bytes;
                report.dropped_packets += dg.flow_packets;
                continue;
            }
            let duplicate =
                self.profile.duplicate > 0.0 && self.rng.next_f64() < self.profile.duplicate;
            if duplicate {
                report.duplicated += 1;
                report.duplicated_records += u64::from(dg.records);
                out.push(dg.clone());
            }
            out.push(dg);
        }
        if self.profile.reorder > 0.0 {
            for i in 1..out.len() {
                if self.rng.next_f64() < self.profile.reorder {
                    out.swap(i - 1, i);
                    report.reordered += 1;
                }
            }
        }
        report.delivered = out.len() as u64;
        (out, report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dgs(n: u32) -> Vec<WireDatagram> {
        (0..n)
            .map(|i| WireDatagram {
                domain: 1,
                records: 10,
                flow_bytes: 1_000,
                flow_packets: 20,
                bytes: vec![i as u8; 4],
            })
            .collect()
    }

    #[test]
    fn zero_profile_is_identity() {
        let input = dgs(50);
        let (out, report) = Transport::new(FaultProfile::zero(), 99).deliver(input.clone());
        assert_eq!(out, input);
        assert_eq!(report.dropped_datagrams, 0);
        assert_eq!(report.duplicated, 0);
        assert_eq!(report.reordered, 0);
        assert_eq!(report.delivered, 50);
    }

    #[test]
    fn same_seed_same_schedule() {
        let profile = FaultProfile {
            loss: 0.2,
            duplicate: 0.1,
            reorder: 0.15,
            restart_every: 0,
        };
        let (a, ra) = Transport::new(profile, 7).deliver(dgs(200));
        let (b, rb) = Transport::new(profile, 7).deliver(dgs(200));
        assert_eq!(a, b);
        assert_eq!(ra, rb);
        let (c, _) = Transport::new(profile, 8).deliver(dgs(200));
        assert_ne!(a, c);
    }

    #[test]
    fn dropped_records_match_dropped_datagrams() {
        let profile = FaultProfile {
            loss: 0.3,
            duplicate: 0.2,
            reorder: 0.0,
            restart_every: 0,
        };
        let (out, report) = Transport::new(profile, 3).deliver(dgs(500));
        // Every datagram carries 10 records; ground truth must be exact.
        assert_eq!(report.dropped_records, report.dropped_datagrams * 10);
        assert_eq!(report.dropped_bytes, report.dropped_datagrams * 1_000);
        assert_eq!(report.dropped_packets, report.dropped_datagrams * 20);
        assert_eq!(report.duplicated_records, report.duplicated * 10);
        assert!(report.dropped_datagrams > 0, "seeded loss should fire");
        assert_eq!(
            out.len() as u64,
            500 - report.dropped_datagrams + report.duplicated
        );
    }

    #[test]
    fn clamp_bounds_probabilities() {
        let p = FaultProfile {
            loss: 2.0,
            duplicate: -1.0,
            reorder: f64::NAN,
            restart_every: 5,
        }
        .clamped();
        assert_eq!(p.loss, 0.95);
        assert_eq!(p.duplicate, 0.0);
        assert_eq!(p.reorder, 0.0);
    }
}
