//! The collection daemon: real UDP sockets in front of the collector
//! shards.
//!
//! [`Collectd`] binds one or more receive sockets and runs two thread
//! layers connected by bounded queues:
//!
//! ```text
//!   socket 0 ─ receiver ─┐            ┌─ queue 0 ─ worker 0 ─ shard 0
//!   socket 1 ─ receiver ─┼─ peek/route┼─ queue 1 ─ worker 1 ─ shard 1
//!   ...                  ┘ domain % n └─ ...
//! ```
//!
//! Each receiver peeks the observation domain out of the format header
//! (no template state needed) and routes the datagram to the shard queue
//! `domain % shards`. The queues are bounded and *lossy at the producer*:
//! a full queue drops the datagram and counts it, instead of blocking the
//! receiver and backing datagrams up into silent kernel drops. The three
//! drop sites are accounted separately — kernel (sent but never received),
//! queue (received, shard behind), truncated (received cut, never decoded)
//! — and their sum must equal the total datagram loss; the conservation
//! auditor checks exactly that (`socket-conservation`).
//!
//! [`SocketPlane`] is the cell driver: the same export → deliver → collect
//! pipeline as [`crate::CollectionPlane`], but with the in-process
//! [`crate::Transport`] replaced by real localhost UDP. On a zero-loss run
//! its output is byte-identical to the loopback plane's: per-domain
//! ordering is preserved end to end (one sender, one receiver per socket,
//! one worker per shard), and the shard's wire-side record tags equal the
//! loopback ground-truth tags whenever every datagram decodes.

use std::collections::HashMap;
use std::io;
use std::mem;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use lockdown_flow::prelude::*;
use lockdown_traffic::plan::Cell;

use crate::fleet::{ExporterFleet, FleetConfig};
use crate::metrics::CollectMetrics;
use crate::queue::BoundedQueue;
use crate::shard::{CollectorShard, SequenceUnits, ShardSet};
use crate::socket::{peek, Recv, RecvSocket, SendSocket, RECV_BUF_LEN};
use crate::{cell_key, volume, WireConfig};

/// In-flight window for the loopback sender: at most this many datagrams
/// unaccounted between send and shard ingest. Far below both the queue
/// bound and the kernel receive buffer, so a flow-controlled run cannot
/// lose a datagram — the precondition for byte-identity with the
/// in-process transport.
pub const SEND_WINDOW: u64 = 32;

/// How long the sender waits without any accounting progress before it
/// writes the in-flight remainder off as kernel-dropped. Loopback drops
/// happen synchronously at send time, so quiescence means nothing more is
/// coming.
const QUIESCENCE: Duration = Duration::from_millis(250);

/// Hard cap on one drain barrier, in case the daemon is wedged.
const DRAIN_DEADLINE: Duration = Duration::from_secs(10);

/// Configuration of a [`Collectd`] daemon.
#[derive(Debug, Clone, Copy)]
pub struct CollectdConfig {
    /// Export format the daemon decodes.
    pub format: ExportFormat,
    /// Receive sockets to bind. With an explicit (non-zero) port, socket
    /// `i` binds `port + i`; port 0 binds ephemeral ports.
    pub sockets: usize,
    /// Shard workers (and queues) the domains are routed across.
    pub shards: usize,
    /// Bound of each shard queue, in datagrams.
    pub queue_capacity: usize,
    /// Receive buffer length; [`RECV_BUF_LEN`] makes truncation
    /// impossible, smaller values (tests) make it observable.
    pub recv_buf_len: usize,
    /// Kernel receive-buffer request (`SO_RCVBUF`) applied to every
    /// socket at bind; `None` keeps the kernel default. The kernel clamps
    /// the grant to `net.core.rmem_max` — the effective size lands in the
    /// `socket_rcvbuf_bytes` gauge.
    pub rcvbuf: Option<usize>,
    /// Address the first socket binds.
    pub listen: SocketAddr,
}

impl CollectdConfig {
    /// Defaults: 2 sockets on ephemeral localhost ports, 4 shards,
    /// 1024-datagram queues, truncation-proof receive buffer.
    pub fn new(format: ExportFormat) -> CollectdConfig {
        CollectdConfig {
            format,
            sockets: 2,
            shards: 4,
            queue_capacity: 1024,
            recv_buf_len: RECV_BUF_LEN,
            rcvbuf: None,
            listen: SocketAddr::from(([127, 0, 0, 1], 0)),
        }
    }
}

/// One datagram as logged by a shard worker: the identity triple the
/// cycle-close accounting diffs against the sender's manifest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ReceivedDatagram {
    /// Observation domain from the header peek.
    pub domain: u32,
    /// Wire sequence from the header peek.
    pub sequence: u32,
    /// Payload length in bytes.
    pub len: u32,
}

/// What flows through a shard queue.
#[derive(Debug)]
enum QueueItem {
    /// One received datagram, pre-routed by domain.
    Datagram {
        domain: u32,
        sequence: u32,
        claimed: u32,
        bytes: Vec<u8>,
    },
    /// Cycle barrier: the worker hands its shard and received log back
    /// through the channel and continues with fresh ones.
    Close(mpsc::Sender<CycleSlice>),
}

/// One worker's contribution to a closed cycle.
struct CycleSlice {
    index: usize,
    shard: CollectorShard,
    received: Vec<ReceivedDatagram>,
}

/// Counters shared between receivers, workers and the cycle driver.
#[derive(Debug, Default)]
struct DaemonShared {
    /// Datagrams fully accounted: ingested by a worker, dropped at a
    /// queue, or truncated. The sender's flow-control window and the
    /// drain barrier both watch this.
    accounted: AtomicU64,
    /// Datagrams read off any socket (truncated reads included); the
    /// kernel-drop count is `sent - socket_received` at drain.
    socket_received: AtomicU64,
    /// Datagrams dropped at a full shard queue.
    queue_dropped: AtomicU64,
    /// Datagrams truncated at recv.
    truncated_datagrams: AtomicU64,
    /// Header-claimed records inside truncated datagrams.
    truncated_records: AtomicU64,
    /// Shutdown flag for the receiver poll loops.
    stop: AtomicBool,
}

/// Per-cycle counter snapshot, for delta computation at cycle close.
#[derive(Debug, Default, Clone, Copy)]
struct CounterSnapshot {
    socket_received: u64,
    queue_dropped: u64,
    truncated_datagrams: u64,
    truncated_records: u64,
}

/// Everything one closed cycle collected: the reassembled shards, the
/// received-datagram log, and this cycle's drop-site counter deltas.
pub struct Cycle {
    /// The shard set as of the barrier (workers continue with fresh ones).
    pub shards: ShardSet,
    /// Every datagram the workers ingested this cycle.
    pub received: Vec<ReceivedDatagram>,
    /// Datagrams read off the sockets this cycle (truncated included).
    pub socket_received: u64,
    /// Datagrams dropped at full shard queues this cycle.
    pub queue_dropped: u64,
    /// Datagrams truncated at recv this cycle.
    pub truncated_datagrams: u64,
    /// Header-claimed records inside this cycle's truncated datagrams.
    pub truncated_records: u64,
}

/// The socket collection daemon. See the module docs for the thread
/// topology; [`Collectd::close_cycle`] is the barrier that hands the
/// accumulated shard state back for session close.
#[derive(Debug)]
pub struct Collectd {
    format: ExportFormat,
    shared: Arc<DaemonShared>,
    queues: Vec<Arc<BoundedQueue<QueueItem>>>,
    addrs: Vec<SocketAddr>,
    receivers: Vec<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    prev: CounterSnapshot,
}

impl Collectd {
    /// Bind the daemon's sockets and start its receiver and worker
    /// threads. Fails (without leaking threads) if any bind fails.
    pub fn bind(cfg: &CollectdConfig, metrics: Arc<CollectMetrics>) -> io::Result<Collectd> {
        assert!(cfg.sockets >= 1, "need at least one socket");
        assert!(cfg.shards >= 1, "need at least one shard");

        // Bind every socket before spawning anything, so a bind failure
        // is a clean error.
        let mut sockets = Vec::with_capacity(cfg.sockets);
        let mut addrs = Vec::with_capacity(cfg.sockets);
        for i in 0..cfg.sockets {
            let mut addr = cfg.listen;
            if addr.port() != 0 {
                addr.set_port(addr.port() + i as u16);
            }
            let sock = RecvSocket::bind_with_buffer(addr, cfg.recv_buf_len)?;
            let granted = match cfg.rcvbuf {
                Some(bytes) => sock.set_rcvbuf(bytes)?,
                None => sock.rcvbuf().unwrap_or(0),
            };
            metrics.socket_rcvbuf_bytes.set_max(granted as u64);
            addrs.push(sock.local_addr()?);
            sockets.push(sock);
        }

        let shared = Arc::new(DaemonShared::default());
        let queues: Vec<Arc<BoundedQueue<QueueItem>>> = (0..cfg.shards)
            .map(|_| Arc::new(BoundedQueue::new(cfg.queue_capacity)))
            .collect();
        metrics.socket_receivers.set_max(cfg.sockets as u64);
        metrics.queue_capacity.set_max(cfg.queue_capacity as u64);

        let receivers = sockets
            .into_iter()
            .map(|sock| {
                let queues = queues.clone();
                let shared = Arc::clone(&shared);
                let metrics = Arc::clone(&metrics);
                let format = cfg.format;
                std::thread::spawn(move || receiver_loop(sock, format, &queues, &shared, &metrics))
            })
            .collect();
        let workers = queues
            .iter()
            .enumerate()
            .map(|(index, queue)| {
                let queue = Arc::clone(queue);
                let shared = Arc::clone(&shared);
                let format = cfg.format;
                std::thread::spawn(move || worker_loop(index, &queue, format, &shared))
            })
            .collect();

        Ok(Collectd {
            format: cfg.format,
            shared,
            queues,
            addrs,
            receivers,
            workers,
            prev: CounterSnapshot::default(),
        })
    }

    /// The bound socket addresses. Senders must route datagrams by
    /// `addrs()[domain % addrs().len()]` so each domain stays on one
    /// socket and per-domain ordering is preserved.
    pub fn addrs(&self) -> &[SocketAddr] {
        &self.addrs
    }

    /// Datagrams fully accounted so far (ingested + queue-dropped +
    /// truncated). A flow-controlled sender bounds `sent - accounted()`.
    pub fn accounted(&self) -> u64 {
        self.shared.accounted.load(Ordering::Acquire)
    }

    /// Datagrams read off the sockets so far (truncated included).
    pub fn socket_received(&self) -> u64 {
        self.shared.socket_received.load(Ordering::Acquire)
    }

    /// Cycle barrier: every worker hands back its shard and received log
    /// (after draining everything enqueued before the barrier) and
    /// continues with fresh state. Callers must quiesce the senders first
    /// — datagrams still in the sockets when the barrier passes land in
    /// the *next* cycle.
    pub fn close_cycle(&mut self) -> Cycle {
        let (tx, rx) = mpsc::channel();
        let mut expected = 0;
        for q in &self.queues {
            if q.push(QueueItem::Close(tx.clone())).is_ok() {
                expected += 1;
            }
        }
        drop(tx);
        let mut slices: Vec<CycleSlice> = rx.iter().take(expected).collect();
        slices.sort_by_key(|s| s.index);

        let mut received = Vec::new();
        let mut shards = Vec::with_capacity(slices.len());
        for s in slices {
            received.extend(s.received);
            shards.push(s.shard);
        }
        if shards.is_empty() {
            // Daemon already shut down: an empty, well-formed cycle.
            shards.push(CollectorShard::new(self.format));
        }

        let now = CounterSnapshot {
            socket_received: self.shared.socket_received.load(Ordering::Acquire),
            queue_dropped: self.shared.queue_dropped.load(Ordering::Acquire),
            truncated_datagrams: self.shared.truncated_datagrams.load(Ordering::Acquire),
            truncated_records: self.shared.truncated_records.load(Ordering::Acquire),
        };
        let prev = mem::replace(&mut self.prev, now);
        Cycle {
            shards: ShardSet::from_shards(shards),
            received,
            socket_received: now.socket_received - prev.socket_received,
            queue_dropped: now.queue_dropped - prev.queue_dropped,
            truncated_datagrams: now.truncated_datagrams - prev.truncated_datagrams,
            truncated_records: now.truncated_records - prev.truncated_records,
        }
    }

    /// Stop the receivers, drain and stop the workers, join everything.
    /// Idempotent; also runs on drop.
    pub fn shutdown(&mut self) {
        self.shared.stop.store(true, Ordering::Release);
        for h in self.receivers.drain(..) {
            let _ = h.join();
        }
        for q in &self.queues {
            q.close();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for Collectd {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Socket receiver: peek, route, push; count what cannot be pushed.
fn receiver_loop(
    mut sock: RecvSocket,
    format: ExportFormat,
    queues: &[Arc<BoundedQueue<QueueItem>>],
    shared: &DaemonShared,
    metrics: &CollectMetrics,
) {
    while !shared.stop.load(Ordering::Acquire) {
        match sock.recv() {
            Ok(Recv::Datagram(bytes)) => {
                shared.socket_received.fetch_add(1, Ordering::AcqRel);
                metrics.socket_datagrams_received.inc();
                metrics.socket_bytes_received.add(bytes.len() as u64);
                // Unpeekable datagrams (foreign senders, corruption) still
                // go to a shard — domain 0 — where they are counted as
                // malformed rather than silently vanishing.
                let (domain, sequence, claimed) = match peek(format, &bytes) {
                    Some(p) => (p.domain, p.sequence, p.claimed_records),
                    None => (0, 0, 0),
                };
                let item = QueueItem::Datagram {
                    domain,
                    sequence,
                    claimed,
                    bytes,
                };
                if queues[domain as usize % queues.len()]
                    .try_push(item)
                    .is_err()
                {
                    // Dropped at the queue: the shard is behind and the
                    // receiver must not block. Counted, and accounted so
                    // flow-controlled senders make progress.
                    shared.queue_dropped.fetch_add(1, Ordering::AcqRel);
                    shared.accounted.fetch_add(1, Ordering::AcqRel);
                    metrics.queue_datagrams_dropped.inc();
                }
            }
            Ok(Recv::Truncated(prefix)) => {
                // Dropped at the socket: the kernel cut the tail, so the
                // datagram must never reach a decoder. The intact header
                // prefix still attributes the claimed record count.
                shared.socket_received.fetch_add(1, Ordering::AcqRel);
                metrics.socket_datagrams_received.inc();
                metrics.socket_bytes_received.add(prefix.len() as u64);
                let claimed = peek(format, &prefix).map_or(0, |p| p.claimed_records);
                shared.truncated_datagrams.fetch_add(1, Ordering::AcqRel);
                shared
                    .truncated_records
                    .fetch_add(u64::from(claimed), Ordering::AcqRel);
                shared.accounted.fetch_add(1, Ordering::AcqRel);
                metrics.socket_datagrams_truncated.inc();
                metrics.socket_records_truncated.add(u64::from(claimed));
            }
            Ok(Recv::TimedOut) => {}
            Err(_) => break,
        }
    }
}

/// Shard worker: ingest datagrams, log their identity for cycle-close
/// accounting, hand the shard back at each barrier.
fn worker_loop(
    index: usize,
    queue: &BoundedQueue<QueueItem>,
    format: ExportFormat,
    shared: &DaemonShared,
) {
    let mut shard = CollectorShard::new(format);
    let mut received: Vec<ReceivedDatagram> = Vec::new();
    while let Some(item) = queue.pop() {
        match item {
            QueueItem::Datagram {
                domain,
                sequence,
                claimed,
                bytes,
            } => {
                shard.ingest_bytes(domain, claimed, &bytes);
                received.push(ReceivedDatagram {
                    domain,
                    sequence,
                    len: bytes.len() as u32,
                });
                shared.accounted.fetch_add(1, Ordering::AcqRel);
            }
            QueueItem::Close(tx) => {
                let slice = CycleSlice {
                    index,
                    shard: mem::replace(&mut shard, CollectorShard::new(format)),
                    received: mem::take(&mut received),
                };
                let _ = tx.send(slice);
            }
        }
    }
}

/// Spin until `current()` reaches `target`, giving up after the value
/// stops changing for [`QUIESCENCE`] (whatever is missing was dropped by
/// the kernel and will never arrive) or after [`DRAIN_DEADLINE`]. Returns
/// the last observed value.
fn await_progress(mut current: impl FnMut() -> u64, target: u64) -> u64 {
    let deadline = Instant::now() + DRAIN_DEADLINE;
    let mut last = current();
    let mut last_change = Instant::now();
    while last < target {
        std::thread::yield_now();
        let v = current();
        if v != last {
            last = v;
            last_change = Instant::now();
        } else if last_change.elapsed() > QUIESCENCE || Instant::now() > deadline {
            break;
        }
    }
    last
}

/// The export → real UDP → collect path for engine cells: the socket
/// counterpart of [`crate::CollectionPlane`].
///
/// Differences from the loopback plane: the fault-injecting transport is
/// replaced by the kernel (faults are whatever the sockets actually do —
/// the configured [`crate::FaultProfile`] is ignored except for its
/// restart cadence), drop ground truth comes from diffing the sender's
/// datagram manifest against the workers' received log, and every drop is
/// attributed to kernel, queue, or truncation. Cells are processed
/// sequentially (`&mut self`): one daemon, one cycle at a time.
pub struct SocketPlane {
    cfg: WireConfig,
    daemon: Collectd,
    sender: SendSocket,
    metrics: Arc<CollectMetrics>,
    ledger: Option<Arc<lockdown_audit::Ledger>>,
}

impl SocketPlane {
    /// Bind a daemon per `dcfg` (its format is overridden by
    /// `cfg.format`) and open the sending socket.
    pub fn new(cfg: WireConfig, dcfg: CollectdConfig) -> io::Result<SocketPlane> {
        let metrics = CollectMetrics::new();
        let daemon = Collectd::bind(
            &CollectdConfig {
                format: cfg.format,
                ..dcfg
            },
            Arc::clone(&metrics),
        )?;
        Ok(SocketPlane {
            ledger: cfg.audit.then(|| Arc::new(lockdown_audit::Ledger::new())),
            cfg,
            daemon,
            sender: SendSocket::open()?,
            metrics,
        })
    }

    /// The plane's configuration.
    pub fn config(&self) -> &WireConfig {
        &self.cfg
    }

    /// Shared handle to the plane's (and daemon's) metrics.
    pub fn metrics(&self) -> Arc<CollectMetrics> {
        Arc::clone(&self.metrics)
    }

    /// Shared handle to the conservation ledger, if auditing is on.
    pub fn ledger(&self) -> Option<Arc<lockdown_audit::Ledger>> {
        self.ledger.clone()
    }

    /// The daemon's bound socket addresses.
    pub fn addrs(&self) -> &[SocketAddr] {
        self.daemon.addrs()
    }

    /// Post what the analysis layer actually consumed for one cell
    /// (mirrors [`crate::CollectionPlane::note_consumed`]).
    pub fn note_consumed(&self, cell: &Cell, records: &[FlowRecord]) {
        if let Some(ledger) = &self.ledger {
            let consumed = volume(records);
            ledger.record(cell_key(cell), |c| c.consumed.add(consumed));
        }
    }

    /// Audit every cell ledger and return the report (None without
    /// auditing). Also mirrors the outcome into the `audit_*` metrics.
    pub fn audit_report(&self) -> Option<lockdown_audit::Report> {
        let report = self.ledger.as_ref()?.report();
        self.metrics.audit_cells.set_max(report.cells);
        self.metrics
            .audit_violations
            .set_max(report.violations.len() as u64);
        Some(report)
    }

    /// Push one engine cell's flows through real UDP sockets and return
    /// what the collector shards accepted (possibly renormalized under
    /// loss). Mirrors [`crate::CollectionPlane::process_cell`] stage for
    /// stage.
    pub fn process_cell(&mut self, cell: Cell, flows: &[FlowRecord]) -> Vec<FlowRecord> {
        let m = &*self.metrics;
        m.engine_cells_wired.inc();
        m.engine_flows_wired.add(flows.len() as u64);

        let sid = cell.stream.wire_id();
        let hour_start = cell.date.at_hour(cell.hour);
        let now = flows
            .iter()
            .map(|f| f.end)
            .max()
            .unwrap_or_else(|| hour_start.add_hours(1))
            .add_secs(1);

        let mut fleet = ExporterFleet::new(
            FleetConfig {
                format: self.cfg.format,
                exporters: self.cfg.exporters,
                batch_size: self.cfg.batch_size,
                template_refresh: self.cfg.template_refresh,
                restart_every: self.cfg.faults.restart_every,
                initial_sequence: self.cfg.initial_sequence,
                boot_age_secs: self.cfg.boot_age_secs,
                sampling: self.cfg.sampling,
            },
            sid,
            hour_start,
        );
        let (datagrams, truth) = fleet.export_cell(flows, now);
        m.exporter_sessions.add(fleet.len() as u64);
        m.exporter_datagrams.add(truth.datagrams);
        m.exporter_records.add(truth.sent_records);
        m.exporter_restarts.add(truth.restarts);
        m.exporter_fleet_size.set_max(fleet.len() as u64);

        let exported = lockdown_audit::Counts {
            records: datagrams.iter().map(|d| u64::from(d.records)).sum(),
            bytes: datagrams.iter().map(|d| d.flow_bytes).sum(),
            packets: datagrams.iter().map(|d| d.flow_packets).sum(),
        };
        let offered = datagrams.len() as u64;
        let export_units: u64 = truth.sessions.iter().map(|s| s.units_sent).sum();

        // The sender's manifest: identity triple → ground-truth volume.
        // Diffed against the workers' received log after the drain, this
        // yields the exact per-datagram drop ground truth the loopback
        // transport reports natively.
        let mut manifest: HashMap<(u32, u32, u32), lockdown_audit::Counts> =
            HashMap::with_capacity(datagrams.len());
        for dg in &datagrams {
            if self.cfg.format == ExportFormat::NetflowV5 {
                assert!(
                    dg.domain <= 0xFFFF,
                    "v5 carries the domain in 16 engine bits; domain {} does not fit",
                    dg.domain
                );
            }
            let seq = peek(self.cfg.format, &dg.bytes).map_or(0, |p| p.sequence);
            let prior = manifest.insert(
                (dg.domain, seq, dg.bytes.len() as u32),
                lockdown_audit::Counts {
                    records: u64::from(dg.records),
                    bytes: dg.flow_bytes,
                    packets: dg.flow_packets,
                },
            );
            debug_assert!(prior.is_none(), "datagram identity triple collided");
        }

        // Flow-controlled send: per-domain ordering is already guaranteed
        // (sequential sends, one socket per domain, one worker per shard);
        // the window additionally guarantees zero loss by keeping the
        // in-flight count far below every buffer bound.
        let addrs = self.daemon.addrs().to_vec();
        let base_accounted = self.daemon.accounted();
        let base_received = self.daemon.socket_received();
        let mut sent: u64 = 0;
        let mut written_off: u64 = 0;
        for dg in &datagrams {
            if sent >= SEND_WINDOW {
                let target = sent - SEND_WINDOW + 1;
                let got = await_progress(
                    || self.daemon.accounted() - base_accounted + written_off,
                    target,
                );
                // Quiescence with the window still full: the remainder was
                // kernel-dropped and will never be accounted.
                written_off += target.saturating_sub(got);
            }
            let _ = self
                .sender
                .send_to(&dg.bytes, addrs[dg.domain as usize % addrs.len()]);
            sent += 1;
        }
        // Drain barrier: everything sent is accounted (or written off as
        // kernel-dropped) before the cycle closes.
        let got = await_progress(
            || self.daemon.accounted() - base_accounted + written_off,
            sent,
        );
        let _ = got;

        let cycle = self.daemon.close_cycle();
        let received_now = self.daemon.socket_received();
        let kernel_dropped = sent.saturating_sub(received_now - base_received);
        m.socket_datagrams_kernel_dropped.add(kernel_dropped);

        // Manifest diff: what the workers logged is delivered; the
        // remainder is dropped, with exact record/byte/packet volume.
        let mut delivered: u64 = 0;
        for r in &cycle.received {
            if manifest.remove(&(r.domain, r.sequence, r.len)).is_some() {
                delivered += 1;
            }
        }
        let dropped_datagrams = manifest.len() as u64;
        let mut dropped = lockdown_audit::Counts::default();
        for counts in manifest.values() {
            dropped.add(*counts);
        }

        let mut shards = cycle.shards;
        let records = shards.close(&truth.sessions, self.cfg.renormalize);
        let t = shards.totals();
        m.collector_datagrams.add(t.datagrams);
        m.collector_records.add(t.records_accepted);
        m.collector_sequence_gaps.add(t.sequence_gaps);
        m.collector_records_lost_est.add(t.records_lost_est);
        m.collector_missing_template_sets
            .add(t.missing_template_sets);
        m.collector_datagrams_buffered.add(t.buffered);
        m.collector_duplicates_rejected.add(t.duplicates);
        m.collector_malformed.add(t.malformed);
        m.collector_restarts_detected.add(t.restarts_detected);
        m.collector_records_renormalized.add(t.records_renormalized);
        m.collector_shards.set_max(self.cfg.shards as u64);
        m.engine_flows_delivered.add(records.len() as u64);

        if let Some(ledger) = &self.ledger {
            let generated = volume(flows);
            let units_exact = SequenceUnits::for_format(self.cfg.format) != SequenceUnits::Packets;
            let sampling = self.cfg.sampling.is_some_and(|r| r > 1);
            ledger.record(cell_key(&cell), |c| {
                c.generated.add(generated);
                c.sampled_out += truth.sampled_out;
                c.exported.add(exported);
                c.export_units += export_units;
                c.offered_datagrams += offered;
                c.delivered_datagrams += delivered;
                c.dropped_datagrams += dropped_datagrams;
                c.dropped.add(dropped);
                c.accepted.add(lockdown_audit::Counts {
                    records: t.records_accepted,
                    bytes: t.bytes_accepted,
                    packets: t.packets_accepted,
                });
                c.rejected_duplicate += t.records_duplicate;
                c.rejected_anomalous += t.records_anomalous;
                c.rejected_malformed += t.records_malformed;
                c.undecoded += t.records_undecoded;
                c.abandoned_records += t.records_abandoned;
                c.abandoned_units += t.units_abandoned;
                c.est_lost += t.records_lost_est;
                c.renorm_bytes_added += t.renorm_bytes_added;
                c.renorm_packets_added += t.renorm_packets_added;
                c.renorm_clipped += t.renorm_clipped;
                c.units_exact = units_exact;
                c.sampling = sampling;
                c.socket = true;
                c.socket_kernel_dropped += kernel_dropped;
                c.socket_queue_dropped += cycle.queue_dropped;
                c.socket_truncated += cycle.truncated_datagrams;
            });
        }
        records
    }

    /// Shut the daemon down (joins every thread). Also runs on drop.
    pub fn shutdown(&mut self) {
        self.daemon.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn daemon_ingests_and_closes_cycles() {
        let metrics = CollectMetrics::new();
        let mut cfg = CollectdConfig::new(ExportFormat::Ipfix);
        cfg.sockets = 1;
        cfg.shards = 2;
        let mut daemon = Collectd::bind(&cfg, Arc::clone(&metrics)).unwrap();
        let addr = daemon.addrs()[0];
        let tx = SendSocket::open().unwrap();

        // Garbage: routes to shard 0 as domain 0 and counts as malformed.
        tx.send_to(&[0xFF; 40], addr).unwrap();
        let base = std::time::Instant::now();
        while daemon.accounted() < 1 {
            assert!(base.elapsed() < Duration::from_secs(5), "ingest timed out");
            std::thread::yield_now();
        }
        let cycle = daemon.close_cycle();
        assert_eq!(cycle.socket_received, 1);
        assert_eq!(cycle.received.len(), 1);
        assert_eq!(cycle.shards.totals().malformed, 1);

        // A second cycle starts from zero.
        let cycle2 = daemon.close_cycle();
        assert_eq!(cycle2.socket_received, 0);
        assert!(cycle2.received.is_empty());
        assert_eq!(cycle2.shards.totals().datagrams, 0);

        daemon.shutdown();
        assert_eq!(metrics.socket_datagrams_received.get(), 1);
    }

    #[test]
    fn shutdown_is_idempotent_and_drop_safe() {
        let metrics = CollectMetrics::new();
        let cfg = CollectdConfig::new(ExportFormat::NetflowV5);
        let mut daemon = Collectd::bind(&cfg, metrics).unwrap();
        daemon.shutdown();
        daemon.shutdown();
        // close_cycle after shutdown yields an empty, well-formed cycle.
        let cycle = daemon.close_cycle();
        assert!(cycle.received.is_empty());
    }

    #[test]
    fn bind_failure_reports_io_error() {
        // Occupy a port, then ask the daemon to bind it.
        let taken = std::net::UdpSocket::bind("127.0.0.1:0").unwrap();
        let mut cfg = CollectdConfig::new(ExportFormat::Ipfix);
        cfg.listen = taken.local_addr().unwrap();
        cfg.sockets = 1;
        assert!(Collectd::bind(&cfg, CollectMetrics::new()).is_err());
    }
}
