//! Socket-plane soak: push a sustained flow load through the real-UDP
//! collection daemon and prove the conservation audit closes at speed.
//!
//! The soak is the load-bearing acceptance check for `lockdown collectd`:
//! a localhost run must sustain at least a million flow records per
//! second end-to-end (export encode → UDP send → receiver fan-out →
//! shard decode → session close) while every datagram the run loses is
//! decomposed exactly into kernel, queue and truncation drops. The flows
//! themselves are synthetic — the soak measures the wire plane, not the
//! traffic model — but they ride the exact production path:
//! [`SocketPlane::process_cell`] with the audit ledger threaded through.

use std::io;
use std::net::Ipv4Addr;
use std::time::Instant;

use lockdown_flow::exporter::ExportFormat;
use lockdown_flow::protocol::IpProtocol;
use lockdown_flow::record::{FlowKey, FlowRecord};
use lockdown_flow::time::Date;
use lockdown_topology::vantage::VantagePoint;
use lockdown_traffic::plan::{Cell, Stream};

use crate::daemon::{CollectdConfig, SocketPlane};
use crate::WireConfig;

/// Soak-run shape: cells, per-cell load and daemon topology.
#[derive(Debug, Clone, Copy)]
pub struct SoakConfig {
    /// Export format on the wire.
    pub format: ExportFormat,
    /// Cells (daemon cycles) to run.
    pub cells: usize,
    /// Flow records exported per cell.
    pub records_per_cell: usize,
    /// Records per datagram (large batches amortize per-datagram cost).
    pub batch_size: usize,
    /// Receiver sockets.
    pub sockets: usize,
    /// Collector shards (worker threads).
    pub shards: usize,
    /// Bounded-queue capacity per shard.
    pub queue_capacity: usize,
    /// Kernel receive-buffer request (`SO_RCVBUF`) for every daemon
    /// socket; `None` keeps the kernel default.
    pub rcvbuf: Option<usize>,
}

impl SoakConfig {
    /// Default soak: 4 cells × 500k IPFIX records through 2 sockets and
    /// 4 shards — 2M records total, enough to time steady state without
    /// making CI wait.
    pub fn new() -> SoakConfig {
        SoakConfig {
            format: ExportFormat::Ipfix,
            cells: 4,
            records_per_cell: 500_000,
            batch_size: 200,
            sockets: 2,
            shards: 4,
            queue_capacity: 4_096,
            rcvbuf: None,
        }
    }
}

impl Default for SoakConfig {
    fn default() -> SoakConfig {
        SoakConfig::new()
    }
}

/// What a soak run measured.
#[derive(Debug, Clone)]
pub struct SoakOutcome {
    /// Export format used.
    pub format: ExportFormat,
    /// Cells run.
    pub cells: usize,
    /// Flow records exported.
    pub records_sent: u64,
    /// Datagrams that left the exporter fleet.
    pub datagrams_sent: u64,
    /// Records delivered out of session close.
    pub records_delivered: u64,
    /// Exactly-estimated records lost to dropped datagrams.
    pub records_lost_est: u64,
    /// Datagrams written off as kernel drops.
    pub kernel_dropped: u64,
    /// Datagrams rejected by full shard queues.
    pub queue_dropped: u64,
    /// Datagrams truncated at the receive buffer.
    pub truncated: u64,
    /// Kernel-granted `SO_RCVBUF` per daemon socket, in bytes.
    pub rcvbuf_bytes: u64,
    /// End-to-end wall clock, export encode through session close.
    pub secs: f64,
    /// Whether every conservation identity closed.
    pub audit_clean: bool,
}

impl SoakOutcome {
    /// Records per second, end to end.
    pub fn flows_per_sec(&self) -> f64 {
        self.records_sent as f64 / self.secs.max(1e-9)
    }

    /// Datagrams per second, end to end.
    pub fn datagrams_per_sec(&self) -> f64 {
        self.datagrams_sent as f64 / self.secs.max(1e-9)
    }

    /// Hand-formatted JSON (no serialization dependency), the shape
    /// `BENCH_collect.json` commits.
    pub fn render_json(&self) -> String {
        let mut s = String::from("{\n");
        s.push_str(&format!("  \"format\": \"{:?}\",\n", self.format));
        s.push_str(&format!("  \"cells\": {},\n", self.cells));
        s.push_str(&format!("  \"records_sent\": {},\n", self.records_sent));
        s.push_str(&format!("  \"datagrams_sent\": {},\n", self.datagrams_sent));
        s.push_str(&format!(
            "  \"records_delivered\": {},\n",
            self.records_delivered
        ));
        s.push_str(&format!(
            "  \"records_lost_est\": {},\n",
            self.records_lost_est
        ));
        s.push_str(&format!("  \"kernel_dropped\": {},\n", self.kernel_dropped));
        s.push_str(&format!("  \"queue_dropped\": {},\n", self.queue_dropped));
        s.push_str(&format!("  \"truncated\": {},\n", self.truncated));
        s.push_str(&format!("  \"rcvbuf_bytes\": {},\n", self.rcvbuf_bytes));
        s.push_str(&format!("  \"secs\": {:.4},\n", self.secs));
        s.push_str(&format!(
            "  \"flows_per_sec\": {:.0},\n",
            self.flows_per_sec()
        ));
        s.push_str(&format!(
            "  \"datagrams_per_sec\": {:.0},\n",
            self.datagrams_per_sec()
        ));
        s.push_str(&format!("  \"audit_clean\": {}\n", self.audit_clean));
        s.push('}');
        s
    }
}

/// Synthetic soak flows: deterministic, key-diverse, one hour wide.
/// Shared with [`crate::export`] so a separate exporter process pushes
/// exactly the load the in-process soak does.
pub(crate) fn soak_flows(n: usize, hour: u8) -> Vec<FlowRecord> {
    let t = Date::new(2020, 3, 25).at_hour(hour);
    (0..n as u32)
        .map(|i| {
            FlowRecord::builder(
                FlowKey {
                    src_addr: Ipv4Addr::from(0xC000_0200 | (i % 4_093)),
                    dst_addr: Ipv4Addr::from(0x0A00_0000 | (i % 65_521)),
                    src_port: (1_024 + i % 60_000) as u16,
                    dst_port: if i % 3 == 0 { 443 } else { 80 },
                    protocol: if i % 4 == 0 {
                        IpProtocol::Udp
                    } else {
                        IpProtocol::Tcp
                    },
                },
                t.add_secs(u64::from(i % 3_000)),
            )
            .end(t.add_secs(u64::from(i % 3_000) + 30))
            .bytes(1_000 + u64::from(i % 9_000))
            .packets(2 + u64::from(i % 60))
            .build()
        })
        .collect()
}

/// Run a soak. Flow generation happens before the clock starts; the
/// timed region is the full wire path per cell.
pub fn run(cfg: &SoakConfig) -> io::Result<SoakOutcome> {
    let mut wire = WireConfig::new();
    wire.format = cfg.format;
    wire.batch_size = cfg.batch_size;
    wire.template_refresh = 1; // self-describing: loss accounting is exact
    wire.renormalize = false;
    wire.audit = true;

    let mut dcfg = CollectdConfig::new(cfg.format);
    dcfg.sockets = cfg.sockets;
    dcfg.shards = cfg.shards;
    dcfg.queue_capacity = cfg.queue_capacity;
    dcfg.rcvbuf = cfg.rcvbuf;

    let mut plane = SocketPlane::new(wire, dcfg)?;
    let flows = soak_flows(cfg.records_per_cell, 12);

    let mut delivered = 0u64;
    let t0 = Instant::now();
    for c in 0..cfg.cells {
        let cell = Cell {
            stream: Stream::Vantage(VantagePoint::IxpCe),
            date: Date::new(2020, 3, 25),
            hour: (c % 24) as u8,
        };
        let out = plane.process_cell(cell, &flows);
        delivered += out.len() as u64;
        plane.note_consumed(&cell, &out);
    }
    let secs = t0.elapsed().as_secs_f64();

    let audit = plane.audit_report().expect("soak always audits");
    let m = plane.metrics();
    Ok(SoakOutcome {
        format: cfg.format,
        cells: cfg.cells,
        records_sent: m.exporter_records.get(),
        datagrams_sent: m.exporter_datagrams.get(),
        records_delivered: delivered,
        records_lost_est: m.collector_records_lost_est.get(),
        kernel_dropped: m.socket_datagrams_kernel_dropped.get(),
        queue_dropped: m.queue_datagrams_dropped.get(),
        truncated: m.socket_datagrams_truncated.get(),
        rcvbuf_bytes: m.socket_rcvbuf_bytes.get(),
        secs,
        audit_clean: audit.is_clean(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_soak_closes_clean() {
        let mut cfg = SoakConfig::new();
        cfg.cells = 2;
        cfg.records_per_cell = 20_000;
        let out = run(&cfg).expect("soak binds on localhost");
        assert!(out.audit_clean, "soak audit must close");
        assert_eq!(out.records_sent, 40_000);
        assert_eq!(
            out.records_delivered + out.records_lost_est,
            out.records_sent,
            "every record accounted: delivered or exactly-estimated lost"
        );
        assert!(out.secs > 0.0);
        let json = out.render_json();
        assert!(json.contains("\"audit_clean\": true"));
        assert!(json.contains("\"records_sent\": 40000"));
    }

    /// With a generously tuned `SO_RCVBUF` the flow-controlled soak must
    /// not lose a single datagram to the kernel: the buffer holds a full
    /// send window with room to spare, so `kernel_dropped` settles at 0.
    #[cfg(target_os = "linux")]
    #[test]
    fn generous_rcvbuf_soak_has_zero_kernel_drops() {
        let mut cfg = SoakConfig::new();
        cfg.cells = 2;
        cfg.records_per_cell = 20_000;
        cfg.rcvbuf = Some(4 << 20);
        let out = run(&cfg).expect("soak binds on localhost");
        assert!(out.rcvbuf_bytes > 0, "granted buffer is observable");
        assert_eq!(
            out.kernel_dropped, 0,
            "generous kernel buffer leaves no room for kernel drops"
        );
        assert!(out.audit_clean, "soak audit must close");
        assert!(out.render_json().contains("\"kernel_dropped\": 0"));
    }
}
