//! Conservation-audit ledger for the measurement pipeline.
//!
//! The wire-mode pipeline moves flow records through four stages — traffic
//! generation, exporter fleets, the fault-injecting transport, and the
//! collector shards — before the analysis consumers see them. Every stage
//! keeps exact ground truth about what it passed on, rejected, or lost, so
//! the whole pipeline obeys *conservation identities*: nothing appears or
//! disappears except through an explicitly accounted channel (a sampled-out
//! flow, a dropped datagram, an abandoned buffer, a rejected duplicate).
//!
//! This crate is the ledger those stages post to, plus the checker. Each
//! engine cell — one `(vantage, date, hour)` — gets its own [`CellLedger`];
//! [`Ledger::report`] verifies every identity in every cell and renders a
//! human-readable violation report. The identities are chosen so that the
//! u32-wraparound bug family this subsystem guards against (wrapped
//! sequence counters read as 4-billion-unit gaps, wrapped uptime clocks
//! read as exporter restarts, narrowing renormalization arithmetic) shows
//! up as an exact imbalance instead of a silent drift.
//!
//! The crate is dependency-free and knows nothing about flows or datagrams
//! — only counts — so every pipeline layer can post to it without cycles.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::Mutex;

/// A records/bytes/packets triple — the three units volume accounting
/// happens in.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct Counts {
    /// Flow records.
    pub records: u64,
    /// Flow byte counters.
    pub bytes: u64,
    /// Flow packet counters.
    pub packets: u64,
}

impl Counts {
    /// Element-wise accumulate.
    pub fn add(&mut self, other: Counts) {
        self.records += other.records;
        self.bytes += other.bytes;
        self.packets += other.packets;
    }
}

/// Identifies one engine cell: a stream's wire id and the hour it covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct CellKey {
    /// Stream wire id (stable across runs).
    pub wire_id: u32,
    /// Day number of the cell's date (days since the civil epoch).
    pub day_number: i64,
    /// Hour of day, 0..24.
    pub hour: u8,
}

/// Everything the pipeline stages posted about one cell.
///
/// Fields are grouped by the stage that owns them; the checker in
/// [`CellLedger::violations`] relates adjacent stages.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CellLedger {
    // --- traffic generation ---
    /// Flow records (and their volume) generated for the cell.
    pub generated: Counts,

    // --- exporter fleet ---
    /// Records the in-band samplers dropped before the wire.
    pub sampled_out: u64,
    /// Ground-truth record tags (and raw volume) placed on the wire.
    pub exported: Counts,
    /// Unwrapped sequence units sent across all observation domains.
    pub export_units: u64,
    /// Datagrams the fleet emitted (what the transport was offered).
    pub offered_datagrams: u64,

    // --- transport (exact fault ground truth) ---
    /// Datagrams delivered to the collector (duplicates included).
    pub delivered_datagrams: u64,
    /// Datagrams dropped in flight.
    pub dropped_datagrams: u64,
    /// Records (and volume) inside dropped datagrams.
    pub dropped: Counts,
    /// Duplicate datagrams injected.
    pub duplicated_datagrams: u64,
    /// Record tags inside injected duplicates.
    pub duplicated_records: u64,

    // --- socket edge (real-UDP transport only) ---
    /// Whether the cell crossed real UDP sockets: the transport drop
    /// ground truth is then a *decomposition* — every dropped datagram is
    /// attributed to the kernel, a full shard queue, or a truncated read.
    pub socket: bool,
    /// Datagrams the kernel dropped before `recv` (sent minus received,
    /// settled at cycle drain).
    pub socket_kernel_dropped: u64,
    /// Datagrams dropped at a full shard queue after being received.
    pub socket_queue_dropped: u64,
    /// Datagrams cut by the kernel at `recv` and discarded undecoded.
    pub socket_truncated: u64,

    // --- collector shards ---
    /// Records (and volume) accepted, before loss renormalization.
    pub accepted: Counts,
    /// Record tags in duplicate-rejected datagrams.
    pub rejected_duplicate: u64,
    /// Record tags in anomaly-rejected datagrams.
    pub rejected_anomalous: u64,
    /// Record tags in malformed datagrams.
    pub rejected_malformed: u64,
    /// Record tags in accepted datagrams whose sets stayed undecodable.
    pub undecoded: u64,
    /// Record tags in buffered datagrams abandoned at close.
    pub abandoned_records: u64,
    /// Distinct sequence units abandoned at close.
    pub abandoned_units: u64,
    /// Estimated records lost (sequence accounting at close).
    pub est_lost: u64,
    /// Bytes added by loss-aware renormalization.
    pub renorm_bytes_added: u64,
    /// Packets added by loss-aware renormalization.
    pub renorm_packets_added: u64,
    /// Records whose renormalized counters clipped at `u64::MAX`.
    pub renorm_clipped: u64,

    // --- analysis ---
    /// Records (and volume) handed to the analysis consumers.
    pub consumed: Counts,

    // --- context flags ---
    /// Whether one sequence unit is one record (v5 flows / IPFIX records).
    /// v9 counts packets, making the loss estimate an estimate.
    pub units_exact: bool,
    /// Whether in-band sampling (rate > 1) was active — byte/packet
    /// volumes are then unbiased estimates, not identities.
    pub sampling: bool,
    /// Whether the supervisor quarantined this cell: it exhausted its
    /// retry budget and never delivered. A quarantined cell is a
    /// first-class conservation outcome — its only obligation is that
    /// nothing was consumed downstream.
    pub quarantined: bool,
}

/// One failed conservation identity in one cell.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Violation {
    /// The cell the identity failed in.
    pub cell: CellKey,
    /// Short identity name (stable, machine-matchable).
    pub identity: &'static str,
    /// Human-readable `lhs != rhs` expansion.
    pub detail: String,
}

impl CellLedger {
    /// Check every applicable conservation identity, returning one
    /// [`Violation`] per failed identity.
    pub fn violations(&self, cell: CellKey) -> Vec<Violation> {
        let mut out = Vec::new();
        let mut check = |identity: &'static str, lhs: u64, rhs: u64, what: &str| {
            if lhs != rhs {
                out.push(Violation {
                    cell,
                    identity,
                    detail: format!("{what}: {lhs} != {rhs}"),
                });
            }
        };

        // A quarantined cell never delivered: whatever partial attempts
        // posted, the stage-to-stage identities do not apply. The one
        // thing that must still hold is that analysis consumed nothing.
        if self.quarantined {
            check(
                "quarantine-unconsumed",
                self.consumed.records,
                0,
                "records consumed from a quarantined cell",
            );
            return out;
        }

        // (1) Exporter: what reaches the wire is what was generated minus
        // what the sampler dropped.
        check(
            "export-records",
            self.exported.records + self.sampled_out,
            self.generated.records,
            "exported + sampled_out vs generated records",
        );
        if !self.sampling {
            check(
                "export-bytes",
                self.exported.bytes,
                self.generated.bytes,
                "exported vs generated bytes",
            );
            check(
                "export-packets",
                self.exported.packets,
                self.generated.packets,
                "exported vs generated packets",
            );
        }

        // (2) Transport: datagram flow conservation against exact fault
        // ground truth.
        check(
            "transport-datagrams",
            self.delivered_datagrams + self.dropped_datagrams,
            self.offered_datagrams + self.duplicated_datagrams,
            "delivered + dropped vs offered + duplicated datagrams",
        );

        // (2b) Socket edge: when the cell crossed real UDP sockets, every
        // dropped datagram must be attributed to exactly one of the three
        // drop sites — the kernel socket buffer, a full shard queue, or a
        // truncated read. An unattributed drop means a datagram vanished
        // at the wire edge without being counted anywhere.
        if self.socket {
            check(
                "socket-conservation",
                self.socket_kernel_dropped + self.socket_queue_dropped + self.socket_truncated,
                self.dropped_datagrams,
                "kernel + queue + truncated drops vs dropped datagrams",
            );
        }

        // (3) Collector: every delivered record tag lands in exactly one
        // bucket — accepted, undecodable, rejected, or abandoned.
        let delivered_tags = self.exported.records - self.dropped.records + self.duplicated_records;
        check(
            "collector-partition",
            self.accepted.records
                + self.undecoded
                + self.rejected_duplicate
                + self.rejected_anomalous
                + self.rejected_malformed
                + self.abandoned_records,
            delivered_tags,
            "collector buckets vs delivered record tags",
        );

        // (4) Loss estimate: with record-counting sequence units and no
        // rejected inconsistencies, the estimate is not an estimate — it
        // equals the transport's dropped records plus what the collector
        // itself gave up on.
        if self.units_exact && self.rejected_anomalous == 0 && self.rejected_malformed == 0 {
            check(
                "loss-exactness",
                self.est_lost,
                self.dropped.records + self.abandoned_units + self.undecoded,
                "estimated loss vs dropped + abandoned + undecoded ground truth",
            );
            // (6) End to end: generated records either reach analysis, were
            // sampled out, or are accounted as lost.
            check(
                "end-to-end-records",
                self.accepted.records + self.est_lost + self.sampled_out,
                self.generated.records,
                "accepted + est_lost + sampled_out vs generated records",
            );
        }

        // (5) Analysis hand-off: consumers see exactly the accepted
        // records, with volumes inflated only by accounted renormalization.
        check(
            "consume-records",
            self.consumed.records,
            self.accepted.records,
            "consumed vs accepted records",
        );
        check(
            "consume-bytes",
            self.consumed.bytes,
            self.accepted.bytes + self.renorm_bytes_added,
            "consumed vs accepted + renormalized bytes",
        );
        check(
            "consume-packets",
            self.consumed.packets,
            self.accepted.packets + self.renorm_packets_added,
            "consumed vs accepted + renormalized packets",
        );

        // (7) Fault-free cells must balance *exactly*, volume included:
        // this is the identity a wraparound bug breaks first.
        let fault_free = self.dropped_datagrams == 0
            && self.duplicated_datagrams == 0
            && self.abandoned_records == 0
            && self.undecoded == 0
            && self.rejected_duplicate == 0
            && self.rejected_anomalous == 0
            && self.rejected_malformed == 0
            && self.sampled_out == 0;
        if fault_free {
            check(
                "fault-free-loss",
                self.est_lost,
                0,
                "loss estimated in a fault-free cell",
            );
            check(
                "fault-free-records",
                self.accepted.records,
                self.generated.records,
                "accepted vs generated records without faults",
            );
            if !self.sampling {
                check(
                    "fault-free-bytes",
                    self.accepted.bytes,
                    self.generated.bytes,
                    "accepted vs generated bytes without faults",
                );
                check(
                    "fault-free-packets",
                    self.accepted.packets,
                    self.generated.packets,
                    "accepted vs generated packets without faults",
                );
            }
        }

        out
    }
}

/// Aggregate totals across every cell, carried on the [`Report`] for the
/// summary line.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct Totals {
    /// Generated records/bytes/packets.
    pub generated: Counts,
    /// Records sampled out before the wire.
    pub sampled_out: u64,
    /// Record tags placed on the wire.
    pub exported_records: u64,
    /// Record tags inside dropped datagrams.
    pub dropped_records: u64,
    /// Accepted records/bytes/packets (pre renormalization).
    pub accepted: Counts,
    /// Estimated records lost.
    pub est_lost: u64,
    /// Consumed records/bytes/packets.
    pub consumed: Counts,
    /// Records abandoned in replay buffers.
    pub abandoned_records: u64,
    /// Sequence units abandoned in replay buffers (loss-estimate terms).
    pub abandoned_units: u64,
    /// Record tags that could not be decoded (template-missing shortfall).
    pub undecoded: u64,
    /// Renormalized records whose counters clipped at `u64::MAX`.
    pub renorm_clipped: u64,
    /// Cells the supervisor quarantined (retry budget exhausted).
    pub quarantined_cells: u64,
    /// Cells that crossed real UDP sockets.
    pub socket_cells: u64,
    /// Datagrams the kernel dropped at the socket edge.
    pub socket_kernel_dropped: u64,
    /// Datagrams dropped at full shard queues.
    pub socket_queue_dropped: u64,
    /// Datagrams truncated at recv.
    pub socket_truncated: u64,
}

/// Outcome of auditing a whole run: per-cell violations plus totals.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Report {
    /// Cells audited.
    pub cells: u64,
    /// Every failed identity, sorted by cell then identity name.
    pub violations: Vec<Violation>,
    /// Aggregate stage totals.
    pub totals: Totals,
}

impl Report {
    /// Whether every identity held in every cell.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Human-readable report: a summary header, stage totals, and (capped)
    /// per-violation lines. Deterministic for a given ledger state.
    pub fn render(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(
            s,
            "conservation audit: {} cells, {} violations",
            self.cells,
            self.violations.len()
        );
        let t = &self.totals;
        let _ = writeln!(
            s,
            "  generated {} records / {} bytes / {} packets; sampled out {}",
            t.generated.records, t.generated.bytes, t.generated.packets, t.sampled_out
        );
        let _ = writeln!(
            s,
            "  exported {} record tags; dropped {}; abandoned {}",
            t.exported_records, t.dropped_records, t.abandoned_records
        );
        let _ = writeln!(
            s,
            "  accepted {} records / {} bytes / {} packets; est lost {}; renorm clipped {}",
            t.accepted.records, t.accepted.bytes, t.accepted.packets, t.est_lost, t.renorm_clipped
        );
        let _ = writeln!(
            s,
            "  consumed {} records / {} bytes / {} packets",
            t.consumed.records, t.consumed.bytes, t.consumed.packets
        );
        if t.quarantined_cells > 0 {
            let _ = writeln!(s, "  quarantined {} cells", t.quarantined_cells);
        }
        if t.socket_cells > 0 {
            let _ = writeln!(
                s,
                "  socket edge: {} cells; drops {} kernel / {} queue / {} truncated",
                t.socket_cells, t.socket_kernel_dropped, t.socket_queue_dropped, t.socket_truncated
            );
        }
        const MAX_LINES: usize = 50;
        for v in self.violations.iter().take(MAX_LINES) {
            let _ = writeln!(
                s,
                "  VIOLATION [wire {} day {} hour {:02}] {}: {}",
                v.cell.wire_id, v.cell.day_number, v.cell.hour, v.identity, v.detail
            );
        }
        if self.violations.len() > MAX_LINES {
            let _ = writeln!(
                s,
                "  ... and {} more violations",
                self.violations.len() - MAX_LINES
            );
        }
        if self.is_clean() {
            let _ = writeln!(s, "  all conservation identities hold");
        }
        s
    }
}

/// Thread-safe ledger: one [`CellLedger`] per engine cell, posted to from
/// any worker, audited once at the end of the run.
#[derive(Debug, Default)]
pub struct Ledger {
    cells: Mutex<BTreeMap<CellKey, CellLedger>>,
}

impl Ledger {
    /// An empty ledger.
    pub fn new() -> Ledger {
        Ledger::default()
    }

    /// Post to one cell's ledger. Each engine cell is processed by exactly
    /// one worker, so the closure never races with another writer of the
    /// same cell; the mutex only serializes map access.
    pub fn record<F: FnOnce(&mut CellLedger)>(&self, key: CellKey, f: F) {
        let mut cells = self.cells.lock().expect("audit ledger poisoned");
        f(cells.entry(key).or_default());
    }

    /// Number of cells with ledger entries.
    pub fn cell_count(&self) -> u64 {
        self.cells.lock().expect("audit ledger poisoned").len() as u64
    }

    /// Audit every cell and build the [`Report`].
    pub fn report(&self) -> Report {
        let cells = self.cells.lock().expect("audit ledger poisoned");
        let mut report = Report {
            cells: cells.len() as u64,
            ..Report::default()
        };
        for (&key, cell) in cells.iter() {
            report.violations.extend(cell.violations(key));
            let t = &mut report.totals;
            t.generated.add(cell.generated);
            t.sampled_out += cell.sampled_out;
            t.exported_records += cell.exported.records;
            t.dropped_records += cell.dropped.records;
            t.accepted.add(cell.accepted);
            t.est_lost += cell.est_lost;
            t.consumed.add(cell.consumed);
            t.abandoned_records += cell.abandoned_records;
            t.abandoned_units += cell.abandoned_units;
            t.undecoded += cell.undecoded;
            t.renorm_clipped += cell.renorm_clipped;
            t.quarantined_cells += u64::from(cell.quarantined);
            t.socket_cells += u64::from(cell.socket);
            t.socket_kernel_dropped += cell.socket_kernel_dropped;
            t.socket_queue_dropped += cell.socket_queue_dropped;
            t.socket_truncated += cell.socket_truncated;
        }
        report.violations.sort();
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key() -> CellKey {
        CellKey {
            wire_id: 3,
            day_number: 18_341,
            hour: 14,
        }
    }

    /// A fault-free cell where every stage agrees.
    fn balanced() -> CellLedger {
        let c = Counts {
            records: 100,
            bytes: 150_000,
            packets: 700,
        };
        CellLedger {
            generated: c,
            exported: c,
            export_units: 100,
            offered_datagrams: 4,
            delivered_datagrams: 4,
            accepted: c,
            consumed: c,
            units_exact: true,
            ..CellLedger::default()
        }
    }

    #[test]
    fn balanced_cell_is_clean() {
        assert!(balanced().violations(key()).is_empty());
    }

    #[test]
    fn faulted_cell_balances_when_accounted() {
        // 1 of 4 datagrams (25 records) dropped; loss estimated exactly.
        let mut c = balanced();
        c.offered_datagrams = 4;
        c.delivered_datagrams = 3;
        c.dropped_datagrams = 1;
        c.dropped = Counts {
            records: 25,
            bytes: 37_500,
            packets: 175,
        };
        c.accepted = Counts {
            records: 75,
            bytes: 112_500,
            packets: 525,
        };
        c.est_lost = 25;
        // Renormalization scales survivors back up to the estimate.
        c.renorm_bytes_added = 37_500;
        c.renorm_packets_added = 175;
        c.consumed = Counts {
            records: 75,
            bytes: 150_000,
            packets: 700,
        };
        assert!(c.violations(key()).is_empty(), "{:?}", c.violations(key()));
    }

    #[test]
    fn each_imbalance_is_named() {
        let mut c = balanced();
        c.accepted.records -= 1; // a record vanished without accounting
        let v = c.violations(key());
        assert!(!v.is_empty());
        let names: Vec<&str> = v.iter().map(|v| v.identity).collect();
        assert!(names.contains(&"collector-partition"), "{names:?}");
        assert!(names.contains(&"end-to-end-records"), "{names:?}");
        assert!(names.contains(&"fault-free-records"), "{names:?}");
    }

    #[test]
    fn wraparound_style_losses_trip_the_loss_identity() {
        // A tracker that mistakes a wrap for a 4-billion-unit gap inflates
        // est_lost with no matching transport ground truth.
        let mut c = balanced();
        c.est_lost = 4_294_967_285;
        let v = c.violations(key());
        assert!(v.iter().any(|v| v.identity == "loss-exactness"), "{v:?}");
    }

    #[test]
    fn v9_loss_estimate_is_not_held_exact() {
        let mut c = balanced();
        c.units_exact = false;
        c.dropped_datagrams = 1;
        c.delivered_datagrams = 3;
        c.dropped = Counts {
            records: 25,
            bytes: 37_500,
            packets: 175,
        };
        c.accepted.records = 75;
        c.accepted.bytes = 112_500;
        c.accepted.packets = 525;
        c.consumed = c.accepted;
        c.est_lost = 23; // off-by-two estimate: fine for packet units
        assert!(c
            .violations(key())
            .iter()
            .all(|v| v.identity != "loss-exactness"));
    }

    #[test]
    fn report_aggregates_and_renders() {
        let ledger = Ledger::new();
        ledger.record(key(), |c| *c = balanced());
        let mut k2 = key();
        k2.hour = 15;
        ledger.record(k2, |c| {
            *c = balanced();
            c.accepted.bytes += 7; // bytes appeared from nowhere
        });
        let report = ledger.report();
        assert_eq!(report.cells, 2);
        assert!(!report.is_clean());
        assert_eq!(report.totals.generated.records, 200);
        let text = report.render();
        assert!(text.contains("conservation audit: 2 cells"));
        assert!(text.contains("VIOLATION"));
        assert!(text.contains("fault-free-bytes"));
    }

    #[test]
    fn quarantine_is_a_first_class_outcome() {
        // A cell that panicked mid-pipeline posts wildly unbalanced
        // stages; quarantine waives every identity except "nothing was
        // consumed downstream".
        let mut c = balanced();
        c.accepted = Counts::default();
        c.consumed = Counts::default();
        c.quarantined = true;
        assert!(c.violations(key()).is_empty(), "{:?}", c.violations(key()));

        // Consuming from a quarantined cell is the one thing that still
        // trips the auditor.
        c.consumed.records = 5;
        let v = c.violations(key());
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].identity, "quarantine-unconsumed");

        let ledger = Ledger::new();
        ledger.record(key(), |cl| {
            *cl = balanced();
            cl.accepted = Counts::default();
            cl.consumed = Counts::default();
            cl.quarantined = true;
        });
        let report = ledger.report();
        assert!(report.is_clean());
        assert_eq!(report.totals.quarantined_cells, 1);
        assert!(report.render().contains("quarantined 1 cells"));
    }

    #[test]
    fn socket_drops_must_decompose_exactly() {
        // 2 of 4 datagrams dropped at the socket edge: 1 kernel + 1 queue.
        let mut c = balanced();
        c.socket = true;
        c.delivered_datagrams = 2;
        c.dropped_datagrams = 2;
        c.socket_kernel_dropped = 1;
        c.socket_queue_dropped = 1;
        c.dropped = Counts {
            records: 50,
            bytes: 75_000,
            packets: 350,
        };
        c.accepted = Counts {
            records: 50,
            bytes: 75_000,
            packets: 350,
        };
        c.est_lost = 50;
        c.consumed = c.accepted;
        assert!(c.violations(key()).is_empty(), "{:?}", c.violations(key()));

        // An unattributed drop (kernel count short by one) is a violation.
        c.socket_kernel_dropped = 0;
        let v = c.violations(key());
        assert!(
            v.iter().any(|v| v.identity == "socket-conservation"),
            "{v:?}"
        );

        // The identity is waived entirely off the socket path.
        c.socket = false;
        assert!(c.violations(key()).is_empty());

        let ledger = Ledger::new();
        ledger.record(key(), |cl| {
            *cl = balanced();
            cl.socket = true;
        });
        let report = ledger.report();
        assert_eq!(report.totals.socket_cells, 1);
        assert!(report.render().contains("socket edge: 1 cells"));
    }

    #[test]
    fn clean_report_says_so() {
        let ledger = Ledger::new();
        ledger.record(key(), |c| *c = balanced());
        let report = ledger.report();
        assert!(report.is_clean());
        assert!(report.render().contains("all conservation identities hold"));
    }
}
