//! Deterministic chaos injection for the engine supervisor.
//!
//! A production measurement plane survives worker panics, torn segment
//! writes, full disks and stalled exporters. To *test* that survival the
//! failures have to be reproducible: this crate turns a seed and a cell
//! identity into a fault schedule that is a pure function of
//! `(seed, cell, attempt)` — never of the worker thread, the wall clock or
//! the iteration order. Two runs of the same plan under the same
//! [`ChaosConfig`] inject exactly the same faults into exactly the same
//! cells, whatever the worker count, which is what makes a quarantine set
//! assertable in tests and CI.
//!
//! The crate is dependency-free (like `lockdown-audit`) so every layer —
//! engine, store, CLI — can consume it without cycles.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Splitmix64 chaining over the parts — the same fingerprint construction
/// the trace plan uses, duplicated here so the crate stays dependency-free
/// and fault schedules stay stable across builds.
fn fold_hash(parts: impl IntoIterator<Item = u64>) -> u64 {
    let mut acc = 0x243F_6A88_85A3_08D3u64;
    for p in parts {
        let mut z = acc ^ p;
        z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        acc = z ^ (z >> 31);
    }
    acc
}

/// Map a hash to a uniform draw in `[0, 1)` using the top 53 bits.
fn unit(h: u64) -> f64 {
    (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Domain separators so the four fault families never correlate.
const PANIC_SALT: u64 = 0x7061_6E69_6321_2121; // "panic!!!"
const TORN_SALT: u64 = 0x746F_726E_5F77_7274; // "torn_wrt"
const ENOSPC_SALT: u64 = 0x656E_6F73_7063_2121; // "enospc!!"
const STALL_SALT: u64 = 0x7374_616C_6C5F_7878; // "stall_xx"
const JITTER_SALT: u64 = 0x6A69_7474_6572_2121; // "jitter!!"
const WKILL_SALT: u64 = 0x776B_696C_6C21_2121; // "wkill!!!"
const WSTALL_SALT: u64 = 0x7773_7461_6C6C_2121; // "wstall!!"

/// Payload of an injected worker panic. Carried through
/// `std::panic::panic_any` so the supervisor's panic hook can tell
/// scheduled chaos (silenced) from a genuine bug (reported as usual).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InjectedPanic {
    /// Wire id of the stream whose cell panicked.
    pub wire_id: u32,
    /// Day number of the cell's date.
    pub day_number: i64,
    /// Hour of day.
    pub hour: u8,
    /// Which attempt the panic was scheduled for.
    pub attempt: u32,
}

/// A scheduled fault on the segment-spill path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteFault {
    /// The segment file is written short (a torn write), then the spill
    /// reports an I/O error — what a kill -9 mid-`write` leaves behind.
    Torn,
    /// The spill fails up front with a simulated "no space left on
    /// device"; nothing is written.
    Enospc,
}

/// Everything scheduled for one `(cell, attempt)` slot.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CellChaos {
    /// Panic the worker at the top of the attempt.
    pub panic: bool,
    /// Fault the segment spill (cold archived passes only).
    pub write: Option<WriteFault>,
    /// Stall the exporter fleet past its timeout (wire mode only).
    pub stall: bool,
}

impl CellChaos {
    /// Whether this slot injects nothing.
    pub fn is_clean(&self) -> bool {
        !self.panic && self.write.is_none() && !self.stall
    }
}

/// Faults scheduled for one `(assignment range, attempt)` slot of a shard
/// worker. Unlike [`CellChaos`] these are decided by the *coordinator* —
/// the victim process cannot be trusted to fault itself once it is
/// supposed to be dead — but the decision is still a pure function of
/// `(seed, range, attempt)` so every coordinator replays the same faults.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkerChaos {
    /// Kill the worker process mid-range (SIGKILL semantics: no goodbye
    /// frame, the TCP stream just dies).
    pub kill: bool,
    /// Stall the worker past the coordinator's heartbeat timeout; the
    /// process stays alive but stops answering.
    pub stall: bool,
}

impl WorkerChaos {
    /// Whether this slot injects nothing.
    pub fn is_clean(&self) -> bool {
        !self.kill && !self.stall
    }
}

/// The chaos surface: per-fault probabilities plus the supervisor's retry
/// budget and backoff policy, all parseable from one CLI spec string.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChaosConfig {
    /// Root seed of every fault schedule.
    pub seed: u64,
    /// Per-(cell, attempt) probability of an injected worker panic.
    pub panic: f64,
    /// Per-(cell, attempt) probability of a torn segment write.
    pub torn: f64,
    /// Per-(cell, attempt) probability of a simulated ENOSPC on spill.
    pub enospc: f64,
    /// Per-(cell, attempt) probability of an exporter stall timeout.
    pub stall: f64,
    /// Per-(range, attempt) probability of a shard worker kill.
    pub wkill: f64,
    /// Per-(range, attempt) probability of a shard worker heartbeat stall.
    pub wstall: f64,
    /// Per-cell attempt budget (minimum 1); a cell that fails every
    /// attempt is quarantined.
    pub attempts: u32,
    /// Base backoff delay before retry `n` (milliseconds, doubled per
    /// attempt).
    pub backoff_base_ms: u64,
    /// Upper bound on any single backoff delay (milliseconds).
    pub backoff_cap_ms: u64,
}

impl ChaosConfig {
    /// No injected faults, default budget and backoff: supervision
    /// (panic isolation, retries, checkpoint/resume) without chaos.
    pub fn zero() -> ChaosConfig {
        ChaosConfig {
            seed: 0,
            panic: 0.0,
            torn: 0.0,
            enospc: 0.0,
            stall: 0.0,
            wkill: 0.0,
            wstall: 0.0,
            attempts: 3,
            backoff_base_ms: 10,
            backoff_cap_ms: 1_000,
        }
    }

    /// Whether every fault probability is zero (the schedule never fires).
    pub fn is_zero(&self) -> bool {
        self.panic == 0.0
            && self.torn == 0.0
            && self.enospc == 0.0
            && self.stall == 0.0
            && self.wkill == 0.0
            && self.wstall == 0.0
    }

    /// Parse a CLI spec like
    /// `seed=7,panic=0.05,torn=0.02,enospc=0.01,stall=0.03,wkill=0.1,wstall=0.1,attempts=2,backoff=1,cap=50`.
    /// Every key is optional; unknown keys and out-of-range values are
    /// rejected loudly.
    pub fn parse(spec: &str) -> Result<ChaosConfig, String> {
        let mut cfg = ChaosConfig::zero();
        for part in spec.split(',').filter(|p| !p.is_empty()) {
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("bad chaos spec item (want key=value): {part}"))?;
            let prob = |what: &str| -> Result<f64, String> {
                let p: f64 = value.parse().map_err(|_| format!("bad {what}: {value}"))?;
                if !(0.0..=1.0).contains(&p) {
                    return Err(format!("{what} must be in [0,1]: {value}"));
                }
                Ok(p)
            };
            match key {
                "seed" => cfg.seed = value.parse().map_err(|_| format!("bad seed: {value}"))?,
                "panic" => cfg.panic = prob("panic probability")?,
                "torn" => cfg.torn = prob("torn-write probability")?,
                "enospc" => cfg.enospc = prob("enospc probability")?,
                "stall" => cfg.stall = prob("stall probability")?,
                "wkill" => cfg.wkill = prob("worker-kill probability")?,
                "wstall" => cfg.wstall = prob("worker-stall probability")?,
                "attempts" => {
                    cfg.attempts = value
                        .parse()
                        .map_err(|_| format!("bad attempts: {value}"))?;
                    if cfg.attempts == 0 {
                        return Err("attempts must be at least 1".into());
                    }
                }
                "backoff" => {
                    cfg.backoff_base_ms = value
                        .parse()
                        .map_err(|_| format!("bad backoff (ms): {value}"))?
                }
                "cap" => {
                    cfg.backoff_cap_ms = value
                        .parse()
                        .map_err(|_| format!("bad backoff cap (ms): {value}"))?
                }
                other => return Err(format!("unknown chaos key: {other}")),
            }
        }
        Ok(cfg)
    }
}

/// The seeded fault schedule. Decisions are a pure function of
/// `(config seed, wire_id, day_number, hour, attempt)` — evaluating them
/// twice, in any order, from any thread, gives the same answer.
#[derive(Debug, Clone, Copy)]
pub struct ChaosInjector {
    cfg: ChaosConfig,
}

impl ChaosInjector {
    /// An injector for one configuration.
    pub fn new(cfg: ChaosConfig) -> ChaosInjector {
        ChaosInjector { cfg }
    }

    /// The configuration the schedule is drawn from.
    pub fn config(&self) -> &ChaosConfig {
        &self.cfg
    }

    fn draw(&self, salt: u64, wire_id: u32, day_number: i64, hour: u8, attempt: u32) -> f64 {
        unit(fold_hash([
            self.cfg.seed,
            salt,
            u64::from(wire_id),
            day_number as u64,
            u64::from(hour),
            u64::from(attempt),
        ]))
    }

    /// The faults scheduled for one `(cell, attempt)` slot. Torn and
    /// ENOSPC are mutually exclusive (a write fails one way at a time);
    /// torn is drawn first.
    pub fn decide(&self, wire_id: u32, day_number: i64, hour: u8, attempt: u32) -> CellChaos {
        if self.cfg.is_zero() {
            return CellChaos::default();
        }
        let write = if self.draw(TORN_SALT, wire_id, day_number, hour, attempt) < self.cfg.torn {
            Some(WriteFault::Torn)
        } else if self.draw(ENOSPC_SALT, wire_id, day_number, hour, attempt) < self.cfg.enospc {
            Some(WriteFault::Enospc)
        } else {
            None
        };
        CellChaos {
            panic: self.draw(PANIC_SALT, wire_id, day_number, hour, attempt) < self.cfg.panic,
            write,
            stall: self.draw(STALL_SALT, wire_id, day_number, hour, attempt) < self.cfg.stall,
        }
    }

    /// The worker-level faults scheduled for one `(assignment, attempt)`
    /// slot. The assignment is identified by its half-open cell-index
    /// range `[range_start, range_end)` in the deterministic plan order,
    /// so the schedule survives reassignment: when a range moves to
    /// another worker on attempt 2, the fresh draw is keyed on the same
    /// range and the new attempt number, never on which process runs it.
    /// Kill and stall are mutually exclusive (kill is drawn first) — a
    /// dead worker cannot also stall.
    pub fn decide_worker(&self, range_start: u32, range_end: u32, attempt: u32) -> WorkerChaos {
        if self.cfg.is_zero() {
            return WorkerChaos::default();
        }
        let draw = |salt: u64| {
            unit(fold_hash([
                self.cfg.seed,
                salt,
                u64::from(range_start),
                u64::from(range_end),
                u64::from(attempt),
            ]))
        };
        let kill = draw(WKILL_SALT) < self.cfg.wkill;
        WorkerChaos {
            kill,
            stall: !kill && draw(WSTALL_SALT) < self.cfg.wstall,
        }
    }

    /// Deterministic bounded exponential backoff before retry `attempt`
    /// (1-based): `min(cap, base << (attempt-1))` plus seeded jitter in
    /// `[0, base)`. Milliseconds. Zero base means no delay at all.
    pub fn backoff_ms(&self, wire_id: u32, day_number: i64, hour: u8, attempt: u32) -> u64 {
        let base = self.cfg.backoff_base_ms;
        if base == 0 {
            return 0;
        }
        let shift = attempt.saturating_sub(1).min(16);
        let exp = base
            .saturating_mul(1u64 << shift)
            .min(self.cfg.backoff_cap_ms);
        let jitter = fold_hash([
            self.cfg.seed,
            JITTER_SALT,
            u64::from(wire_id),
            day_number as u64,
            u64::from(hour),
            u64::from(attempt),
        ]) % base;
        exp.saturating_add(jitter).min(self.cfg.backoff_cap_ms)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn zero_config_never_fires() {
        let inj = ChaosInjector::new(ChaosConfig::zero());
        for attempt in 0..4 {
            for hour in 0..24 {
                assert!(inj.decide(3, 18_341, hour, attempt).is_clean());
            }
        }
    }

    #[test]
    fn parse_roundtrips_every_knob() {
        let cfg = ChaosConfig::parse(
            "seed=42,panic=0.1,torn=0.05,enospc=0.02,stall=0.03,wkill=0.2,wstall=0.15,attempts=2,backoff=1,cap=50",
        )
        .unwrap();
        assert_eq!(cfg.seed, 42);
        assert_eq!(cfg.panic, 0.1);
        assert_eq!(cfg.torn, 0.05);
        assert_eq!(cfg.enospc, 0.02);
        assert_eq!(cfg.stall, 0.03);
        assert_eq!(cfg.wkill, 0.2);
        assert_eq!(cfg.wstall, 0.15);
        assert_eq!(cfg.attempts, 2);
        assert_eq!(cfg.backoff_base_ms, 1);
        assert_eq!(cfg.backoff_cap_ms, 50);
        assert!(!cfg.is_zero());
    }

    #[test]
    fn parse_rejects_bad_specs() {
        for bad in [
            "panic",
            "panic=1.5",
            "panic=-0.1",
            "attempts=0",
            "frobnicate=1",
            "seed=x",
        ] {
            assert!(ChaosConfig::parse(bad).is_err(), "should reject: {bad}");
        }
        // The empty spec is the zero config with supervision on.
        assert!(ChaosConfig::parse("").unwrap().is_zero());
    }

    #[test]
    fn decisions_are_pure_functions_of_cell_and_attempt() {
        let cfg = ChaosConfig {
            seed: 7,
            panic: 0.3,
            torn: 0.2,
            enospc: 0.2,
            stall: 0.3,
            ..ChaosConfig::zero()
        };
        let a = ChaosInjector::new(cfg);
        let b = ChaosInjector::new(cfg);
        let mut fired = 0;
        for hour in 0..24 {
            for attempt in 0..3 {
                let d = a.decide(5, 18_400, hour, attempt);
                assert_eq!(d, b.decide(5, 18_400, hour, attempt));
                if !d.is_clean() {
                    fired += 1;
                }
            }
        }
        assert!(fired > 0, "a 30% schedule over 72 slots must fire");
        // A different seed gives a different schedule.
        let other = ChaosInjector::new(ChaosConfig { seed: 8, ..cfg });
        let same = (0..24).all(|h| a.decide(5, 18_400, h, 0) == other.decide(5, 18_400, h, 0));
        assert!(!same, "seed must matter");
    }

    #[test]
    fn worker_decisions_are_pure_and_keyed_on_range() {
        let cfg = ChaosConfig {
            seed: 11,
            wkill: 0.4,
            wstall: 0.4,
            ..ChaosConfig::zero()
        };
        let a = ChaosInjector::new(cfg);
        let b = ChaosInjector::new(cfg);
        let mut kills = 0;
        let mut stalls = 0;
        for start in (0u32..200).step_by(10) {
            for attempt in 0..3 {
                let d = a.decide_worker(start, start + 10, attempt);
                assert_eq!(d, b.decide_worker(start, start + 10, attempt), "pure");
                assert!(!(d.kill && d.stall), "kill and stall are exclusive");
                kills += u32::from(d.kill);
                stalls += u32::from(d.stall);
            }
        }
        assert!(kills > 0, "a 40% kill schedule over 60 slots must fire");
        assert!(stalls > 0, "a 40% stall schedule over 60 slots must fire");
        // The range bounds are part of the key: shifting the range end
        // re-draws the schedule.
        let shifted =
            (0..40).any(|s| a.decide_worker(s, s + 10, 0) != a.decide_worker(s, s + 11, 0));
        assert!(shifted, "range end must matter");
        // Worker faults never leak into the per-cell schedule.
        assert!(a.decide(3, 18_341, 7, 0).is_clean());
        // And a zero config never kills anyone.
        let calm = ChaosInjector::new(ChaosConfig::zero());
        assert!(calm.decide_worker(0, 10, 0).is_clean());
    }

    #[test]
    fn backoff_is_bounded_and_monotone_in_expectation() {
        let cfg = ChaosConfig {
            backoff_base_ms: 10,
            backoff_cap_ms: 100,
            ..ChaosConfig::zero()
        };
        let inj = ChaosInjector::new(cfg);
        for attempt in 1..12 {
            let d = inj.backoff_ms(1, 18_341, 3, attempt);
            assert!(d <= 100, "cap must bound every delay, got {d}");
            assert_eq!(d, inj.backoff_ms(1, 18_341, 3, attempt), "deterministic");
        }
        // Zero base means no sleeping at all (the test configuration).
        let fast = ChaosInjector::new(ChaosConfig {
            backoff_base_ms: 0,
            ..ChaosConfig::zero()
        });
        assert_eq!(fast.backoff_ms(1, 18_341, 3, 5), 0);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Empirical fault rates track the configured probabilities: the
        /// schedule is a real Bernoulli draw, not a degenerate constant.
        #[test]
        fn rates_track_probabilities(seed in any::<u64>(), p in 0.05f64..0.95) {
            let cfg = ChaosConfig { seed, panic: p, ..ChaosConfig::zero() };
            let inj = ChaosInjector::new(cfg);
            let n = 2_000u32;
            let fired = (0..n)
                .filter(|&i| inj.decide(i % 7, i64::from(i / 7), (i % 24) as u8, i % 3).panic)
                .count() as f64;
            let rate = fired / f64::from(n);
            prop_assert!((rate - p).abs() < 0.08, "rate {rate:.3} vs p {p:.3}");
        }
    }
}
