//! The worker side: serve one coordinator connection.
//!
//! A worker is a single-purpose process: it binds a TCP listener,
//! answers exactly one coordinator, and runs whatever cell ranges it is
//! assigned through [`suite::run_suite_slice`] — sequentially, because
//! worker *processes* are the parallelism of a coordinated pass. While
//! a slice runs, a sidecar thread heartbeats every
//! [`HEARTBEAT_MS`] milliseconds so the coordinator can tell "slow" from
//! "dead" without guessing at cell runtimes.
//!
//! Injected faults arrive *in the assignment* (the coordinator draws
//! them from the seeded schedule, keyed on the range, so they survive
//! reassignment): `kill` drops the connection and reports
//! [`WorkerExit::ChaosKilled`] — observationally identical to a crashed
//! process; a stall goes silent for the requested window first.

use lockdown_core::experiments::suite::{
    self, suite_shard_cell_count, suite_shard_plan_hash, ShardSuiteOptions,
};
use lockdown_core::Context;
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crate::proto::{self, Identity};
use crate::ShardError;

/// Heartbeat cadence while an assignment is running.
pub const HEARTBEAT_MS: u64 = 100;

/// Why `serve_worker` returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkerExit {
    /// The coordinator sent SHUTDOWN: clean end of a finished pass.
    Shutdown,
    /// The coordinator hung up without SHUTDOWN (it died, or abandoned
    /// this worker after a timeout). Nothing left to serve.
    Disconnected,
    /// An injected fault terminated this worker mid-pass.
    ChaosKilled,
}

/// The worker's own identity under `opts` — what it echoes in
/// HELLO_ACK for the coordinator to verify.
pub fn worker_identity(ctx: &Context, opts: &ShardSuiteOptions) -> Identity {
    Identity {
        seed: ctx.config.seed,
        scenario_hash: ctx.scenario_hash(),
        plan_hash: suite_shard_plan_hash(ctx, opts),
        cells: suite_shard_cell_count(ctx, opts) as u64,
    }
}

/// Accept one coordinator on `listener` and serve assignments until
/// shutdown, disconnect or an injected kill.
pub fn serve_worker(
    ctx: &Context,
    opts: &ShardSuiteOptions,
    listener: TcpListener,
) -> Result<WorkerExit, ShardError> {
    let (stream, _peer) = listener
        .accept()
        .map_err(|e| ShardError::io("accepting coordinator connection", &e))?;
    drop(listener); // one coordinator per worker; stop advertising
    serve_connection(ctx, opts, stream)
}

/// Serve an already-accepted coordinator connection (the testable core
/// of [`serve_worker`]).
pub fn serve_connection(
    ctx: &Context,
    opts: &ShardSuiteOptions,
    mut stream: TcpStream,
) -> Result<WorkerExit, ShardError> {
    // Heartbeats are tiny and latency-sensitive; don't batch them.
    let _ = stream.set_nodelay(true);
    let identity = worker_identity(ctx, opts);

    match proto::read_frame(&mut stream)? {
        Some((proto::T_HELLO, _payload)) => {
            // The coordinator's identity is informational here — the
            // *coordinator* enforces the match (it owns the merged
            // output); the worker just announces honestly.
            proto::write_frame(
                &mut stream,
                proto::T_HELLO_ACK,
                &proto::encode_identity(&identity),
            )
            .map_err(|e| ShardError::io("sending hello ack", &e))?;
        }
        Some((kind, _)) => {
            return Err(ShardError::Protocol(format!(
                "expected HELLO, got frame type {kind}"
            )))
        }
        None => return Ok(WorkerExit::Disconnected),
    }

    loop {
        match proto::read_frame(&mut stream)? {
            Some((proto::T_ASSIGN, payload)) => {
                let assign = proto::decode_assign(&payload)?;
                if assign.kill {
                    // Simulated crash: vanish without a goodbye. The
                    // coordinator sees EOF exactly as for a real death.
                    return Ok(WorkerExit::ChaosKilled);
                }
                if assign.stall_ms > 0 {
                    // Simulated wedge: silence past the coordinator's
                    // heartbeat timeout, then die.
                    std::thread::sleep(Duration::from_millis(u64::from(assign.stall_ms)));
                    return Ok(WorkerExit::ChaosKilled);
                }
                run_assignment(ctx, opts, &mut stream, assign)?;
            }
            Some((proto::T_SHUTDOWN, _)) => return Ok(WorkerExit::Shutdown),
            Some((kind, _)) => {
                return Err(ShardError::Protocol(format!(
                    "unexpected frame type {kind} while idle"
                )))
            }
            None => return Ok(WorkerExit::Disconnected),
        }
    }
}

/// Run one assigned range with heartbeats, then report DONE or FAILED.
fn run_assignment(
    ctx: &Context,
    opts: &ShardSuiteOptions,
    stream: &mut TcpStream,
    assign: proto::Assign,
) -> Result<(), ShardError> {
    let stop = Arc::new(AtomicBool::new(false));
    let beat_stream = stream
        .try_clone()
        .map_err(|e| ShardError::io("cloning stream for heartbeats", &e))?;
    let beat_stop = Arc::clone(&stop);
    let beats = std::thread::spawn(move || {
        let mut s = beat_stream;
        while !beat_stop.load(Ordering::Relaxed) {
            if proto::write_frame(&mut s, proto::T_HEARTBEAT, &[]).is_err() {
                // Coordinator gone; the main thread will find out when
                // it tries to send the outcome.
                break;
            }
            std::thread::sleep(Duration::from_millis(HEARTBEAT_MS));
        }
    });

    let result = suite::run_suite_slice(ctx, opts, assign.start as usize..assign.end as usize);

    stop.store(true, Ordering::Relaxed);
    beats.join().expect("heartbeat thread never panics");

    match result {
        Ok(outcome) => proto::write_frame(stream, proto::T_DONE, &proto::encode_outcome(&outcome))
            .map_err(|e| ShardError::io("sending slice outcome", &e)),
        Err(e) => {
            // The slice failed but this process is healthy: report and
            // stay in rotation — the coordinator charges the attempt.
            proto::write_frame(
                stream,
                proto::T_FAILED,
                &proto::encode_failed(&e.to_string()),
            )
            .map_err(|e| ShardError::io("sending slice failure", &e))
        }
    }
}
