//! The worker side: serve coordinator connections, retain finished work.
//!
//! A worker is a single-purpose process: it binds a TCP listener,
//! answers one coordinator at a time, and runs whatever cell ranges it
//! is assigned through [`suite::run_suite_slice`] — sequentially,
//! because worker *processes* are the parallelism of a coordinated
//! pass. While a slice runs, a sidecar thread heartbeats every
//! [`HEARTBEAT_MS`] milliseconds so the coordinator can tell "slow"
//! from "dead" without guessing at cell runtimes.
//!
//! **Reconnect-and-resume.** The wire between coordinator and worker is
//! allowed to fail without costing compute. Every completed slice is
//! retained — as its already-encoded DONE payload — for the lifetime of
//! the process, and when a connection dies (reset, corrupt frame, EOF)
//! the worker goes back to its listener for up to [`RECONNECT_WAIT`]
//! instead of exiting. The next HELLO_ACK advertises the retained range
//! inventory, and a re-ASSIGN of a retained range is answered straight
//! from the cache: zero cells recomputed, byte-identical payload. Only
//! a coordinator that never returns ends the worker.
//!
//! Injected faults arrive *in the assignment* (the coordinator draws
//! them from the seeded schedule, keyed on the range, so they survive
//! reassignment): `kill` drops the connection and reports
//! [`WorkerExit::ChaosKilled`] — observationally identical to a crashed
//! process; a stall goes silent for the requested window first.

use lockdown_core::experiments::suite::{
    self, suite_shard_cell_count, suite_shard_plan_hash, ShardSuiteOptions,
};
use lockdown_core::Context;
use std::collections::HashMap;
use std::io::ErrorKind;
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::proto::{self, Identity};
use crate::ShardError;

/// Heartbeat cadence while an assignment is running.
pub const HEARTBEAT_MS: u64 = 100;

/// How long a worker that lost its coordinator waits at the listener
/// for a reconnect before giving up and exiting.
pub const RECONNECT_WAIT: Duration = Duration::from_secs(5);

/// Budget for one inbound frame once its first byte lands. Generous —
/// assignments are tiny — but finite, so a trickling coordinator can
/// never wedge a worker.
const FRAME_BUDGET: Duration = Duration::from_secs(10);

/// Why `serve_worker` returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkerExit {
    /// The coordinator sent SHUTDOWN: clean end of a finished pass.
    Shutdown,
    /// The coordinator hung up without SHUTDOWN and never reconnected
    /// within [`RECONNECT_WAIT`]. Nothing left to serve.
    Disconnected,
    /// An injected fault terminated this worker mid-pass.
    ChaosKilled,
}

/// Completed slices this worker still holds, as encoded DONE payloads
/// keyed by `(start, end)`. Serving one is a write, not a recompute.
pub type Retained = HashMap<(u32, u32), Vec<u8>>;

/// The worker's own identity under `opts` — what it echoes in
/// HELLO_ACK for the coordinator to verify.
pub fn worker_identity(ctx: &Context, opts: &ShardSuiteOptions) -> Identity {
    Identity {
        seed: ctx.config.seed,
        scenario_hash: ctx.scenario_hash(),
        plan_hash: suite_shard_plan_hash(ctx, opts),
        cells: suite_shard_cell_count(ctx, opts) as u64,
    }
}

/// Serve coordinator connections on `listener` until a clean shutdown,
/// an injected kill, or a disconnect that outlives the reconnect
/// window. Finished slices survive connection churn.
pub fn serve_worker(
    ctx: &Context,
    opts: &ShardSuiteOptions,
    listener: TcpListener,
) -> Result<WorkerExit, ShardError> {
    let mut retained = Retained::new();
    let (stream, _peer) = listener
        .accept()
        .map_err(|e| ShardError::io("accepting coordinator connection", &e))?;
    // Later accepts are reconnect polls; they must not block forever.
    listener
        .set_nonblocking(true)
        .map_err(|e| ShardError::io("unblocking worker listener", &e))?;
    let mut stream = stream;
    loop {
        match serve_connection(ctx, opts, stream, &mut retained) {
            Ok(WorkerExit::Shutdown) => return Ok(WorkerExit::Shutdown),
            Ok(WorkerExit::ChaosKilled) => return Ok(WorkerExit::ChaosKilled),
            // A lost or garbled connection is a *wire* failure, not a
            // work failure: hold the finished slices and wait for the
            // coordinator to come back.
            Ok(WorkerExit::Disconnected) | Err(_) => match await_reconnect(&listener) {
                Some(next) => stream = next,
                None => return Ok(WorkerExit::Disconnected),
            },
        }
    }
}

/// Poll the listener for a reconnecting coordinator, up to
/// [`RECONNECT_WAIT`].
fn await_reconnect(listener: &TcpListener) -> Option<TcpStream> {
    let deadline = Instant::now() + RECONNECT_WAIT;
    while Instant::now() < deadline {
        match listener.accept() {
            Ok((stream, _peer)) => {
                // The accepted socket may inherit the listener's
                // non-blocking mode; frame reads expect blocking.
                let _ = stream.set_nonblocking(false);
                return Some(stream);
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => return None,
        }
    }
    None
}

/// Serve one already-accepted coordinator connection (the testable core
/// of [`serve_worker`]). `retained` carries finished slices across
/// connections; re-assigned retained ranges are answered from it
/// without recomputation.
pub fn serve_connection(
    ctx: &Context,
    opts: &ShardSuiteOptions,
    mut stream: TcpStream,
    retained: &mut Retained,
) -> Result<WorkerExit, ShardError> {
    // Heartbeats are tiny and latency-sensitive; don't batch them.
    let _ = stream.set_nodelay(true);
    let identity = worker_identity(ctx, opts);

    match proto::read_frame_deadline(&mut stream, None, FRAME_BUDGET)? {
        Some((proto::T_HELLO, _payload)) => {
            // The coordinator's identity is informational here — the
            // *coordinator* enforces the match (it owns the merged
            // output); the worker just announces honestly, including
            // which finished ranges it can re-serve.
            let mut inventory: Vec<(u32, u32)> = retained.keys().copied().collect();
            inventory.sort_unstable();
            proto::write_frame(
                &mut stream,
                proto::T_HELLO_ACK,
                &proto::encode_hello_ack(&identity, &inventory),
            )
            .map_err(|e| ShardError::io("sending hello ack", &e))?;
        }
        Some((kind, _)) => {
            return Err(ShardError::Protocol(format!(
                "expected HELLO, got frame type {kind}"
            )))
        }
        None => return Ok(WorkerExit::Disconnected),
    }

    loop {
        match proto::read_frame_deadline(&mut stream, None, FRAME_BUDGET)? {
            Some((proto::T_ASSIGN, payload)) => {
                let assign = proto::decode_assign(&payload)?;
                if assign.kill {
                    // Simulated crash: vanish without a goodbye. The
                    // coordinator sees EOF exactly as for a real death.
                    return Ok(WorkerExit::ChaosKilled);
                }
                if assign.stall_ms > 0 {
                    // Simulated wedge: silence past the coordinator's
                    // heartbeat timeout, then die.
                    std::thread::sleep(Duration::from_millis(u64::from(assign.stall_ms)));
                    return Ok(WorkerExit::ChaosKilled);
                }
                if let Some(encoded) = retained.get(&(assign.start, assign.end)) {
                    // Resume: the slice already ran to completion on
                    // this process; replay its encoded outcome verbatim.
                    proto::write_frame(&mut stream, proto::T_DONE, encoded)
                        .map_err(|e| ShardError::io("re-sending retained outcome", &e))?;
                    continue;
                }
                run_assignment(ctx, opts, &mut stream, assign, retained)?;
            }
            Some((proto::T_SHUTDOWN, _)) => return Ok(WorkerExit::Shutdown),
            Some((kind, _)) => {
                return Err(ShardError::Protocol(format!(
                    "unexpected frame type {kind} while idle"
                )))
            }
            None => return Ok(WorkerExit::Disconnected),
        }
    }
}

/// Run one assigned range with heartbeats, then report DONE or FAILED.
/// A completed outcome is retained *before* the send is attempted, so a
/// wire failure during DONE still leaves the slice resumable.
fn run_assignment(
    ctx: &Context,
    opts: &ShardSuiteOptions,
    stream: &mut TcpStream,
    assign: proto::Assign,
    retained: &mut Retained,
) -> Result<(), ShardError> {
    let stop = Arc::new(AtomicBool::new(false));
    let beat_stream = stream
        .try_clone()
        .map_err(|e| ShardError::io("cloning stream for heartbeats", &e))?;
    let beat_stop = Arc::clone(&stop);
    let beats = std::thread::spawn(move || {
        let mut s = beat_stream;
        while !beat_stop.load(Ordering::Relaxed) {
            if proto::write_frame(&mut s, proto::T_HEARTBEAT, &[]).is_err() {
                // Coordinator gone; the main thread will find out when
                // it tries to send the outcome.
                break;
            }
            std::thread::sleep(Duration::from_millis(HEARTBEAT_MS));
        }
    });

    let result = suite::run_suite_slice(ctx, opts, assign.start as usize..assign.end as usize);

    stop.store(true, Ordering::Relaxed);
    beats.join().expect("heartbeat thread never panics");

    match result {
        Ok(outcome) => {
            let key = (assign.start, assign.end);
            retained.insert(key, proto::encode_outcome(&outcome));
            let encoded = retained.get(&key).expect("just inserted");
            proto::write_frame(stream, proto::T_DONE, encoded)
                .map_err(|e| ShardError::io("sending slice outcome", &e))
        }
        Err(e) => {
            // The slice failed but this process is healthy: report and
            // stay in rotation — the coordinator charges the attempt.
            proto::write_frame(
                stream,
                proto::T_FAILED,
                &proto::encode_failed(&e.to_string()),
            )
            .map_err(|e| ShardError::io("sending slice failure", &e))
        }
    }
}
