//! The coordinator/worker wire protocol: length-prefixed frames.
//!
//! Same school as the HTTP plane and the collection daemon — explicit
//! bytes over `std::net`, explicit limits, no serialization dependency.
//! Every frame is
//!
//! ```text
//! "LKSH" ‖ version u8 ‖ type u8 ‖ payload_len u32 BE ‖ payload
//! ```
//!
//! and payload integers are big-endian via the analysis codec's
//! primitives, so the consumer-state frames riding inside [`T_DONE`]
//! use the very same byte conventions as their envelope.
//!
//! The conversation is strictly coordinator-driven:
//!
//! ```text
//! coordinator                         worker
//!   HELLO{identity}          ->
//!                            <-  HELLO_ACK{identity, cells}
//!   ASSIGN{range, attempt}   ->
//!                            <-  HEARTBEAT  (every ~100 ms while busy)
//!                            <-  DONE{slice outcome} | FAILED{message}
//!   ...more ASSIGNs...
//!   SHUTDOWN                 ->       (worker exits)
//! ```
//!
//! Identity (seed, scenario hash, plan hash) is exchanged both ways and
//! checked by the coordinator before any assignment: a worker built
//! against a different scenario or fidelity must be rejected up front,
//! not discovered as silently-wrong figures.

use lockdown_analysis::codec::{self, StateReader};
use lockdown_core::engine::SliceOutcome;
use lockdown_core::supervisor::QuarantinedCell;
use lockdown_flow::time::Date;
use lockdown_store::SegmentMeta;
use lockdown_topology::vantage::VantagePoint;
use lockdown_traffic::plan::{Cell, Stream};
use std::io::{ErrorKind, Read, Write};

use crate::ShardError;

/// Frame magic: every frame starts with these four bytes.
pub const MAGIC: [u8; 4] = *b"LKSH";

/// Protocol version byte; bumped on any incompatible frame change.
pub const PROTO_VERSION: u8 = 1;

/// Hard ceiling on a frame payload. A full-suite slice outcome at high
/// fidelity is a few MB of consumer state; 256 MiB is "corrupt peer",
/// not "big slice".
pub const MAX_PAYLOAD: u32 = 256 << 20;

/// Coordinator → worker: identity announcement.
pub const T_HELLO: u8 = 1;
/// Worker → coordinator: identity echo plus cell count.
pub const T_HELLO_ACK: u8 = 2;
/// Coordinator → worker: run one cell-index range.
pub const T_ASSIGN: u8 = 3;
/// Worker → coordinator: still alive, still computing.
pub const T_HEARTBEAT: u8 = 4;
/// Worker → coordinator: the slice outcome (states, tallies, segments).
pub const T_DONE: u8 = 5;
/// Worker → coordinator: the slice failed but the worker is healthy.
pub const T_FAILED: u8 = 6;
/// Coordinator → worker: no more work; exit cleanly.
pub const T_SHUTDOWN: u8 = 7;

/// Bytes of frame header preceding the payload.
pub const HEADER_LEN: usize = 4 + 1 + 1 + 4;

/// Identity of one side of the shard conversation. Mirrors the archive
/// manifest key: two processes with equal identities generate equal
/// flows for equal cells.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Identity {
    /// Generator seed.
    pub seed: u64,
    /// Scenario fingerprint (config + measure-file behaviour).
    pub scenario_hash: u64,
    /// Full-suite cell-plan fingerprint.
    pub plan_hash: u64,
    /// Cells in the full-suite plan — the assignment index space.
    pub cells: u64,
}

/// One range assignment: run plan cells `start..end` (indices into the
/// deduplicated sorted cell list).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Assign {
    /// First cell index.
    pub start: u32,
    /// One past the last cell index.
    pub end: u32,
    /// Zero-based attempt number (for the worker's own fault schedule).
    pub attempt: u32,
    /// Chaos: die immediately instead of running (simulated crash).
    pub kill: bool,
    /// Chaos: go silent for this many milliseconds, then die. Zero
    /// means no stall.
    pub stall_ms: u32,
}

/// Write one frame.
pub fn write_frame(w: &mut impl Write, kind: u8, payload: &[u8]) -> std::io::Result<()> {
    assert!(
        payload.len() <= MAX_PAYLOAD as usize,
        "frame payload over limit: {}",
        payload.len()
    );
    let mut header = [0u8; HEADER_LEN];
    header[..4].copy_from_slice(&MAGIC);
    header[4] = PROTO_VERSION;
    header[5] = kind;
    header[6..].copy_from_slice(&(payload.len() as u32).to_be_bytes());
    w.write_all(&header)?;
    w.write_all(payload)?;
    w.flush()
}

/// Read one frame. Returns `Ok(None)` on a clean EOF at a frame
/// boundary (the peer hung up between messages); any other truncation
/// or malformation is an error.
pub fn read_frame(r: &mut impl Read) -> Result<Option<(u8, Vec<u8>)>, ShardError> {
    let mut first = [0u8; 1];
    loop {
        match r.read(&mut first) {
            Ok(0) => return Ok(None),
            Ok(_) => break,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(e) => return Err(ShardError::io("reading frame header", &e)),
        }
    }
    let mut rest = [0u8; HEADER_LEN - 1];
    r.read_exact(&mut rest)
        .map_err(|e| ShardError::io("reading frame header", &e))?;
    let mut header = [0u8; HEADER_LEN];
    header[0] = first[0];
    header[1..].copy_from_slice(&rest);
    if header[..4] != MAGIC {
        return Err(ShardError::Protocol(format!(
            "bad frame magic {:02x?}",
            &header[..4]
        )));
    }
    if header[4] != PROTO_VERSION {
        return Err(ShardError::Protocol(format!(
            "protocol version {} (this build speaks {PROTO_VERSION})",
            header[4]
        )));
    }
    let kind = header[5];
    let len = u32::from_be_bytes(header[6..].try_into().expect("4 bytes"));
    if len > MAX_PAYLOAD {
        return Err(ShardError::Protocol(format!(
            "frame payload of {len} bytes exceeds the {MAX_PAYLOAD}-byte limit"
        )));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)
        .map_err(|e| ShardError::io("reading frame payload", &e))?;
    Ok(Some((kind, payload)))
}

fn reader<'a>(buf: &'a [u8]) -> StateReader<'a> {
    StateReader::new("shard frame", buf)
}

fn proto_err(e: impl std::fmt::Display) -> ShardError {
    ShardError::Protocol(e.to_string())
}

/// Encode an identity (HELLO / HELLO_ACK payload).
pub fn encode_identity(id: &Identity) -> Vec<u8> {
    let mut out = Vec::with_capacity(32);
    codec::put_u64(&mut out, id.seed);
    codec::put_u64(&mut out, id.scenario_hash);
    codec::put_u64(&mut out, id.plan_hash);
    codec::put_u64(&mut out, id.cells);
    out
}

/// Decode an identity.
pub fn decode_identity(buf: &[u8]) -> Result<Identity, ShardError> {
    let mut r = reader(buf);
    Ok(Identity {
        seed: r.u64("seed").map_err(proto_err)?,
        scenario_hash: r.u64("scenario hash").map_err(proto_err)?,
        plan_hash: r.u64("plan hash").map_err(proto_err)?,
        cells: r.u64("cell count").map_err(proto_err)?,
    })
}

/// Encode an assignment.
pub fn encode_assign(a: &Assign) -> Vec<u8> {
    let mut out = Vec::with_capacity(17);
    codec::put_u32(&mut out, a.start);
    codec::put_u32(&mut out, a.end);
    codec::put_u32(&mut out, a.attempt);
    codec::put_bool(&mut out, a.kill);
    codec::put_u32(&mut out, a.stall_ms);
    out
}

/// Decode an assignment.
pub fn decode_assign(buf: &[u8]) -> Result<Assign, ShardError> {
    let mut r = reader(buf);
    Ok(Assign {
        start: r.u32("range start").map_err(proto_err)?,
        end: r.u32("range end").map_err(proto_err)?,
        attempt: r.u32("attempt").map_err(proto_err)?,
        kill: r.bool("kill flag").map_err(proto_err)?,
        stall_ms: r.u32("stall ms").map_err(proto_err)?,
    })
}

/// Encode a FAILED message.
pub fn encode_failed(message: &str) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + message.len());
    put_str(&mut out, message);
    out
}

/// Decode a FAILED message.
pub fn decode_failed(buf: &[u8]) -> Result<String, ShardError> {
    get_str(&mut reader(buf), "failure message")
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    codec::put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

fn get_str(r: &mut StateReader<'_>, what: &'static str) -> Result<String, ShardError> {
    let len = r.u32(what).map_err(proto_err)? as usize;
    let mut bytes = Vec::with_capacity(len.min(4096));
    for _ in 0..len {
        bytes.push(r.u8(what).map_err(proto_err)?);
    }
    String::from_utf8(bytes).map_err(|_| ShardError::Protocol(format!("{what} is not UTF-8")))
}

/// Stream → stable wire code. Indices 0..7 are `VantagePoint::ALL`
/// order; the two non-vantage streams follow.
fn stream_code(stream: Stream) -> u8 {
    match stream {
        Stream::Vantage(vp) => VantagePoint::ALL
            .iter()
            .position(|v| *v == vp)
            .expect("every vantage point is in ALL") as u8,
        Stream::IspTransit => VantagePoint::ALL.len() as u8,
        Stream::Edu => VantagePoint::ALL.len() as u8 + 1,
    }
}

fn stream_from_code(code: u8) -> Result<Stream, ShardError> {
    let n = VantagePoint::ALL.len() as u8;
    match code {
        c if c < n => Ok(Stream::Vantage(VantagePoint::ALL[c as usize])),
        c if c == n => Ok(Stream::IspTransit),
        c if c == n + 1 => Ok(Stream::Edu),
        other => Err(ShardError::Protocol(format!("unknown stream code {other}"))),
    }
}

fn put_cell(out: &mut Vec<u8>, cell: Cell) {
    out.push(stream_code(cell.stream));
    codec::put_i64(out, cell.date.day_number());
    out.push(cell.hour);
}

fn get_cell(r: &mut StateReader<'_>) -> Result<Cell, ShardError> {
    let stream = stream_from_code(r.u8("stream code").map_err(proto_err)?)?;
    let date = Date::from_day_number(r.i64("cell date").map_err(proto_err)?);
    let hour = r.u8("cell hour").map_err(proto_err)?;
    if hour >= 24 {
        return Err(ShardError::Protocol(format!(
            "cell hour {hour} out of range"
        )));
    }
    Ok(Cell { stream, date, hour })
}

/// Encode a slice outcome (DONE payload).
pub fn encode_outcome(o: &SliceOutcome) -> Vec<u8> {
    let state_bytes: usize = o.states.iter().map(|s| s.len() + 4).sum();
    let mut out = Vec::with_capacity(64 + state_bytes + o.segments.len() * 48);
    codec::put_u64(&mut out, o.flows);
    codec::put_u64(&mut out, o.generated);
    codec::put_u64(&mut out, o.replayed);
    codec::put_u64(&mut out, o.resumed);
    codec::put_u64(&mut out, o.retries);
    codec::put_u64(&mut out, o.states.len() as u64);
    for state in &o.states {
        codec::put_u32(&mut out, state.len() as u32);
        out.extend_from_slice(state);
    }
    codec::put_u64(&mut out, o.segments.len() as u64);
    for m in &o.segments {
        put_cell(&mut out, m.cell);
        codec::put_u64(&mut out, m.records);
        codec::put_u64(&mut out, m.file_len);
        codec::put_u32(&mut out, m.crc);
        codec::put_u64(&mut out, m.min_start);
        codec::put_u64(&mut out, m.max_end);
    }
    codec::put_u64(&mut out, o.quarantined.len() as u64);
    for q in &o.quarantined {
        put_cell(&mut out, q.cell);
        codec::put_u32(&mut out, q.attempts);
        put_str(&mut out, &q.error);
    }
    out
}

/// Decode a slice outcome.
pub fn decode_outcome(buf: &[u8]) -> Result<SliceOutcome, ShardError> {
    let mut r = reader(buf);
    let mut o = SliceOutcome {
        flows: r.u64("flow tally").map_err(proto_err)?,
        generated: r.u64("generated tally").map_err(proto_err)?,
        replayed: r.u64("replayed tally").map_err(proto_err)?,
        resumed: r.u64("resumed tally").map_err(proto_err)?,
        retries: r.u64("retry tally").map_err(proto_err)?,
        ..SliceOutcome::default()
    };
    let n_states = r.len("consumer states", 4).map_err(proto_err)?;
    for _ in 0..n_states {
        let len = r.u32("state frame length").map_err(proto_err)? as usize;
        let mut frame = Vec::with_capacity(len.min(1 << 20));
        for _ in 0..len {
            frame.push(r.u8("state frame byte").map_err(proto_err)?);
        }
        o.states.push(frame);
    }
    let n_segments = r.len("segment inventory", 10 + 36).map_err(proto_err)?;
    for _ in 0..n_segments {
        let cell = get_cell(&mut r)?;
        o.segments.push(SegmentMeta {
            cell,
            records: r.u64("segment records").map_err(proto_err)?,
            file_len: r.u64("segment file length").map_err(proto_err)?,
            crc: r.u32("segment crc").map_err(proto_err)?,
            min_start: r.u64("segment min start").map_err(proto_err)?,
            max_end: r.u64("segment max end").map_err(proto_err)?,
        });
    }
    let n_quar = r.len("quarantine list", 10 + 8).map_err(proto_err)?;
    for _ in 0..n_quar {
        let cell = get_cell(&mut r)?;
        let attempts = r.u32("quarantine attempts").map_err(proto_err)?;
        let error = get_str(&mut r, "quarantine error")?;
        o.quarantined.push(QuarantinedCell {
            cell,
            attempts,
            error,
        });
    }
    Ok(o)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_outcome() -> SliceOutcome {
        SliceOutcome {
            flows: 123_456,
            generated: 96,
            replayed: 3,
            resumed: 1,
            retries: 2,
            states: vec![vec![1, 2, 3], Vec::new(), vec![0xff; 300]],
            segments: vec![SegmentMeta {
                cell: Cell {
                    stream: Stream::Edu,
                    date: Date::new(2020, 3, 25),
                    hour: 13,
                },
                records: 42,
                file_len: 1024,
                crc: 0xdead_beef,
                min_start: 7,
                max_end: 9,
            }],
            quarantined: vec![QuarantinedCell {
                cell: Cell {
                    stream: Stream::Vantage(VantagePoint::IxpSe),
                    date: Date::new(2020, 4, 1),
                    hour: 0,
                },
                attempts: 3,
                error: "worker died (heartbeat timeout)".into(),
            }],
        }
    }

    #[test]
    fn frames_roundtrip_over_a_byte_pipe() {
        let mut wire = Vec::new();
        let id = Identity {
            seed: 0x10CD_2020,
            scenario_hash: 7,
            plan_hash: 9,
            cells: 2640,
        };
        write_frame(&mut wire, T_HELLO, &encode_identity(&id)).unwrap();
        let assign = Assign {
            start: 10,
            end: 20,
            attempt: 1,
            kill: false,
            stall_ms: 0,
        };
        write_frame(&mut wire, T_ASSIGN, &encode_assign(&assign)).unwrap();
        write_frame(&mut wire, T_DONE, &encode_outcome(&sample_outcome())).unwrap();
        write_frame(&mut wire, T_SHUTDOWN, &[]).unwrap();

        let mut r = &wire[..];
        let (k, p) = read_frame(&mut r).unwrap().unwrap();
        assert_eq!(k, T_HELLO);
        assert_eq!(decode_identity(&p).unwrap(), id);
        let (k, p) = read_frame(&mut r).unwrap().unwrap();
        assert_eq!(k, T_ASSIGN);
        assert_eq!(decode_assign(&p).unwrap(), assign);
        let (k, p) = read_frame(&mut r).unwrap().unwrap();
        assert_eq!(k, T_DONE);
        let got = decode_outcome(&p).unwrap();
        let want = sample_outcome();
        assert_eq!(got.states, want.states);
        assert_eq!(got.segments, want.segments);
        assert_eq!(got.flows, want.flows);
        assert_eq!(got.quarantined.len(), 1);
        assert_eq!(got.quarantined[0].error, want.quarantined[0].error);
        let (k, p) = read_frame(&mut r).unwrap().unwrap();
        assert_eq!((k, p.len()), (T_SHUTDOWN, 0));
        assert!(read_frame(&mut r).unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn malformed_frames_are_named_not_crashed() {
        // Bad magic.
        let mut r = &b"NOPE\x01\x01\x00\x00\x00\x00"[..];
        let err = read_frame(&mut r).unwrap_err();
        assert!(err.to_string().contains("magic"), "{err}");
        // Wrong version.
        let mut wire = Vec::new();
        write_frame(&mut wire, T_HEARTBEAT, &[]).unwrap();
        wire[4] = 99;
        let err = read_frame(&mut &wire[..]).unwrap_err();
        assert!(err.to_string().contains("version 99"), "{err}");
        // Oversized payload claim.
        let mut wire = Vec::new();
        write_frame(&mut wire, T_DONE, &[]).unwrap();
        wire[6..10].copy_from_slice(&u32::MAX.to_be_bytes());
        let err = read_frame(&mut &wire[..]).unwrap_err();
        assert!(err.to_string().contains("limit"), "{err}");
        // Truncated payload: an error, not a silent None.
        let mut wire = Vec::new();
        write_frame(&mut wire, T_DONE, &[1, 2, 3, 4]).unwrap();
        wire.truncate(wire.len() - 2);
        assert!(read_frame(&mut &wire[..]).is_err());
        // Truncated outcome payload names the missing field.
        let full = encode_outcome(&sample_outcome());
        let err = decode_outcome(&full[..12]).unwrap_err();
        assert!(err.to_string().contains("generated tally"), "{err}");
    }

    #[test]
    fn every_stream_code_roundtrips() {
        let mut streams: Vec<Stream> = VantagePoint::ALL.into_iter().map(Stream::Vantage).collect();
        streams.push(Stream::IspTransit);
        streams.push(Stream::Edu);
        for s in streams {
            assert_eq!(stream_from_code(stream_code(s)).unwrap(), s);
        }
        assert!(stream_from_code(200).is_err());
    }
}
