//! The coordinator/worker wire protocol: length-prefixed frames.
//!
//! Same school as the HTTP plane and the collection daemon — explicit
//! bytes over `std::net`, explicit limits, no serialization dependency.
//! Every v2 frame is
//!
//! ```text
//! "LKSH" ‖ version u8 ‖ type u8 ‖ payload_len u32 BE ‖ check u32 BE ‖ payload
//! ```
//!
//! `check` is the CRC-32 (IEEE, the archive's checksum) of the payload,
//! xor-folded with a constant derived from the type byte — so a flipped
//! payload byte fails the CRC and a flipped type byte shifts the fold,
//! and neither can decode as a silently-wrong frame. Payload integers
//! are big-endian via the analysis codec's primitives, so the
//! consumer-state frames riding inside [`T_DONE`] use the very same
//! byte conventions as their envelope.
//!
//! The conversation is strictly coordinator-driven:
//!
//! ```text
//! coordinator                         worker
//!   HELLO{identity}          ->
//!                            <-  HELLO_ACK{identity, retained ranges}
//!   ASSIGN{range, attempt}   ->
//!                            <-  HEARTBEAT  (every ~100 ms while busy)
//!                            <-  DONE{slice outcome} | FAILED{message}
//!   ...more ASSIGNs...
//!   SHUTDOWN                 ->       (worker exits)
//! ```
//!
//! Identity (seed, scenario hash, plan hash) is exchanged both ways and
//! checked by the coordinator before any assignment: a worker built
//! against a different scenario or fidelity must be rejected up front,
//! not discovered as silently-wrong figures. The HELLO_ACK additionally
//! carries the worker's *retained range inventory* — slices it has
//! already completed and still holds encoded — so a coordinator that
//! reconnects after a wire failure can re-adopt finished work instead
//! of recomputing it (see [`crate::worker`]).
//!
//! Reads are hostile-wire hardened: [`read_frame_deadline`] holds a
//! monotonic whole-frame deadline across every `read` call (a peer
//! trickling one byte per poll tick cannot reset the clock), and
//! payloads are read in capped chunks so a corrupt length field costs
//! bounded memory before the check rejects the frame.

use lockdown_analysis::codec::{self, StateReader};
use lockdown_core::engine::SliceOutcome;
use lockdown_core::supervisor::QuarantinedCell;
use lockdown_flow::time::Date;
use lockdown_store::SegmentMeta;
use lockdown_topology::vantage::VantagePoint;
use lockdown_traffic::plan::{Cell, Stream};
use std::io::{ErrorKind, Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use crate::ShardError;

/// Frame magic: every frame starts with these four bytes.
pub const MAGIC: [u8; 4] = *b"LKSH";

/// Protocol version byte; bumped on any incompatible frame change.
/// v2 added the per-frame CRC-32 check and the HELLO_ACK retained-range
/// inventory; v1 frames are rejected by name.
pub const PROTO_VERSION: u8 = 2;

/// Hard ceiling on a frame payload. A full-suite slice outcome at high
/// fidelity is a few MB of consumer state; 256 MiB is "corrupt peer",
/// not "big slice".
pub const MAX_PAYLOAD: u32 = 256 << 20;

/// Payloads are read in increments of at most this much, so a flipped
/// length byte claiming (say) 200 MiB costs one chunk of allocation per
/// chunk actually received, not an eager up-front `vec![0; claim]`.
pub const READ_CHUNK: usize = 64 << 10;

/// Coordinator → worker: identity announcement.
pub const T_HELLO: u8 = 1;
/// Worker → coordinator: identity echo plus retained-range inventory.
pub const T_HELLO_ACK: u8 = 2;
/// Coordinator → worker: run one cell-index range.
pub const T_ASSIGN: u8 = 3;
/// Worker → coordinator: still alive, still computing.
pub const T_HEARTBEAT: u8 = 4;
/// Worker → coordinator: the slice outcome (states, tallies, segments).
pub const T_DONE: u8 = 5;
/// Worker → coordinator: the slice failed but the worker is healthy.
pub const T_FAILED: u8 = 6;
/// Coordinator → worker: no more work; exit cleanly.
pub const T_SHUTDOWN: u8 = 7;

/// Bytes of frame header preceding the payload.
pub const HEADER_LEN: usize = 4 + 1 + 1 + 4 + 4;

/// Poll tick for deadline-guarded socket reads.
const POLL: Duration = Duration::from_millis(50);

/// Identity of one side of the shard conversation. Mirrors the archive
/// manifest key: two processes with equal identities generate equal
/// flows for equal cells.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Identity {
    /// Generator seed.
    pub seed: u64,
    /// Scenario fingerprint (config + measure-file behaviour).
    pub scenario_hash: u64,
    /// Full-suite cell-plan fingerprint.
    pub plan_hash: u64,
    /// Cells in the full-suite plan — the assignment index space.
    pub cells: u64,
}

/// One range assignment: run plan cells `start..end` (indices into the
/// deduplicated sorted cell list).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Assign {
    /// First cell index.
    pub start: u32,
    /// One past the last cell index.
    pub end: u32,
    /// Zero-based attempt number (for the worker's own fault schedule).
    pub attempt: u32,
    /// Chaos: die immediately instead of running (simulated crash).
    pub kill: bool,
    /// Chaos: go silent for this many milliseconds, then die. Zero
    /// means no stall.
    pub stall_ms: u32,
}

/// The frame check value: CRC-32 of the payload, xor-folded with a
/// splitmix-derived constant of the type byte. One flipped byte in
/// either fails verification; the fold means a (kind, payload) pair can
/// never verify as a different kind with the same payload.
pub fn frame_check(kind: u8, payload: &[u8]) -> u32 {
    lockdown_store::codec::crc32(payload)
        ^ 0x9e37_79b9u32.wrapping_mul(u32::from(kind).wrapping_add(1))
}

/// Write one frame.
pub fn write_frame(w: &mut impl Write, kind: u8, payload: &[u8]) -> std::io::Result<()> {
    assert!(
        payload.len() <= MAX_PAYLOAD as usize,
        "frame payload over limit: {}",
        payload.len()
    );
    let mut header = [0u8; HEADER_LEN];
    header[..4].copy_from_slice(&MAGIC);
    header[4] = PROTO_VERSION;
    header[5] = kind;
    header[6..10].copy_from_slice(&(payload.len() as u32).to_be_bytes());
    header[10..].copy_from_slice(&frame_check(kind, payload).to_be_bytes());
    w.write_all(&header)?;
    w.write_all(payload)?;
    w.flush()
}

/// Validate a complete header; returns `(kind, payload_len, check)`.
fn parse_header(header: &[u8; HEADER_LEN]) -> Result<(u8, u32, u32), ShardError> {
    if header[..4] != MAGIC {
        return Err(ShardError::Protocol(format!(
            "bad frame magic {:02x?}",
            &header[..4]
        )));
    }
    if header[4] != PROTO_VERSION {
        return Err(ShardError::Protocol(format!(
            "protocol version {} (this build speaks {PROTO_VERSION})",
            header[4]
        )));
    }
    let kind = header[5];
    let len = u32::from_be_bytes(header[6..10].try_into().expect("4 bytes"));
    if len > MAX_PAYLOAD {
        return Err(ShardError::Protocol(format!(
            "frame payload of {len} bytes exceeds the {MAX_PAYLOAD}-byte limit"
        )));
    }
    let check = u32::from_be_bytes(header[10..].try_into().expect("4 bytes"));
    Ok((kind, len, check))
}

/// Verify a received payload against the header's check value.
fn verify_check(kind: u8, payload: &[u8], check: u32) -> Result<(), ShardError> {
    let computed = frame_check(kind, payload);
    if computed != check {
        return Err(ShardError::Protocol(format!(
            "frame CRC mismatch on type {kind}: header says {check:#010x}, \
             payload is {computed:#010x} — corrupt wire"
        )));
    }
    Ok(())
}

/// Read the payload in capped increments (see [`READ_CHUNK`]).
fn read_payload(r: &mut impl Read, len: usize) -> Result<Vec<u8>, ShardError> {
    let mut payload = Vec::with_capacity(len.min(READ_CHUNK));
    while payload.len() < len {
        let take = (len - payload.len()).min(READ_CHUNK);
        let filled = payload.len();
        payload.resize(filled + take, 0);
        r.read_exact(&mut payload[filled..])
            .map_err(|e| ShardError::io("reading frame payload", &e))?;
    }
    Ok(payload)
}

/// Read one frame from a plain byte stream. Returns `Ok(None)` on a
/// clean EOF at a frame boundary (the peer hung up between messages);
/// any other truncation or malformation is an error.
///
/// This variant has no deadline — it trusts the reader's own blocking
/// discipline. Socket readers should use [`read_frame_deadline`].
pub fn read_frame(r: &mut impl Read) -> Result<Option<(u8, Vec<u8>)>, ShardError> {
    let mut first = [0u8; 1];
    loop {
        match r.read(&mut first) {
            Ok(0) => return Ok(None),
            Ok(_) => break,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(e) => return Err(ShardError::io("reading frame header", &e)),
        }
    }
    let mut header = [0u8; HEADER_LEN];
    header[0] = first[0];
    r.read_exact(&mut header[1..])
        .map_err(|e| ShardError::io("reading frame header", &e))?;
    let (kind, len, check) = parse_header(&header)?;
    let payload = read_payload(r, len as usize)?;
    verify_check(kind, &payload, check)?;
    Ok(Some((kind, payload)))
}

/// Fill `buf` from the socket under a monotonic deadline. The deadline
/// is *absolute*: progress does not extend it, so a peer delivering one
/// byte per poll tick still runs out of clock.
fn read_full_deadline(
    stream: &mut TcpStream,
    buf: &mut [u8],
    deadline: Instant,
    what: &str,
) -> Result<(), ShardError> {
    let mut filled = 0;
    while filled < buf.len() {
        let now = Instant::now();
        if now >= deadline {
            return Err(ShardError::Timeout(format!(
                "{what}: whole-frame deadline exceeded after {filled} of {} bytes",
                buf.len()
            )));
        }
        let tick = (deadline - now).min(POLL);
        stream
            .set_read_timeout(Some(tick))
            .map_err(|e| ShardError::io("arming frame deadline", &e))?;
        match stream.read(&mut buf[filled..]) {
            Ok(0) => {
                return Err(ShardError::Protocol(format!(
                    "{what}: peer closed the connection mid-frame \
                     ({filled} of {} bytes)",
                    buf.len()
                )))
            }
            Ok(n) => filled += n,
            Err(e)
                if matches!(
                    e.kind(),
                    ErrorKind::WouldBlock | ErrorKind::TimedOut | ErrorKind::Interrupted
                ) => {}
            Err(e) => return Err(ShardError::io(what, &e)),
        }
    }
    Ok(())
}

/// Read one frame from a socket with an idle budget and a whole-frame
/// budget.
///
/// * `idle` bounds the silence *before* the first byte — `None` waits
///   forever (a worker idling between assignments), `Some(d)` turns
///   silence past `d` into [`ShardError::Timeout`] (a coordinator
///   holding a heartbeat clock).
/// * `frame` bounds the whole frame *after* its first byte lands, as
///   one monotonic deadline across every read. A trickling or stalled
///   peer surfaces as a named timeout, never a hang — per-`read`
///   timeouts alone would reset with every byte delivered.
///
/// Returns `Ok(None)` on a clean EOF at a frame boundary. The socket's
/// read-timeout setting is clobbered by this call.
pub fn read_frame_deadline(
    stream: &mut TcpStream,
    idle: Option<Duration>,
    frame: Duration,
) -> Result<Option<(u8, Vec<u8>)>, ShardError> {
    // Phase one: await the first byte under the idle budget.
    let idle_deadline = idle.map(|d| Instant::now() + d);
    let mut first = [0u8; 1];
    loop {
        let tick = match idle_deadline {
            Some(deadline) => {
                let now = Instant::now();
                if now >= deadline {
                    return Err(ShardError::Timeout(format!(
                        "no frame within {}ms",
                        idle.expect("deadline implies budget").as_millis()
                    )));
                }
                (deadline - now).min(POLL)
            }
            None => POLL,
        };
        stream
            .set_read_timeout(Some(tick))
            .map_err(|e| ShardError::io("arming idle timeout", &e))?;
        match stream.read(&mut first) {
            Ok(0) => return Ok(None),
            Ok(_) => break,
            Err(e)
                if matches!(
                    e.kind(),
                    ErrorKind::WouldBlock | ErrorKind::TimedOut | ErrorKind::Interrupted
                ) => {}
            Err(e) => return Err(ShardError::io("reading frame header", &e)),
        }
    }

    // Phase two: the frame has started; everything else must land
    // before one absolute deadline.
    let deadline = Instant::now() + frame;
    let mut header = [0u8; HEADER_LEN];
    header[0] = first[0];
    read_full_deadline(stream, &mut header[1..], deadline, "reading frame header")?;
    let (kind, len, check) = parse_header(&header)?;
    let len = len as usize;
    let mut payload = Vec::with_capacity(len.min(READ_CHUNK));
    while payload.len() < len {
        let take = (len - payload.len()).min(READ_CHUNK);
        let filled = payload.len();
        payload.resize(filled + take, 0);
        read_full_deadline(
            stream,
            &mut payload[filled..],
            deadline,
            "reading frame payload",
        )?;
    }
    verify_check(kind, &payload, check)?;
    Ok(Some((kind, payload)))
}

fn reader<'a>(buf: &'a [u8]) -> StateReader<'a> {
    StateReader::new("shard frame", buf)
}

fn proto_err(e: impl std::fmt::Display) -> ShardError {
    ShardError::Protocol(e.to_string())
}

/// Encode an identity (HELLO payload).
pub fn encode_identity(id: &Identity) -> Vec<u8> {
    let mut out = Vec::with_capacity(32);
    codec::put_u64(&mut out, id.seed);
    codec::put_u64(&mut out, id.scenario_hash);
    codec::put_u64(&mut out, id.plan_hash);
    codec::put_u64(&mut out, id.cells);
    out
}

/// Decode an identity.
pub fn decode_identity(buf: &[u8]) -> Result<Identity, ShardError> {
    let mut r = reader(buf);
    decode_identity_from(&mut r)
}

fn decode_identity_from(r: &mut StateReader<'_>) -> Result<Identity, ShardError> {
    Ok(Identity {
        seed: r.u64("seed").map_err(proto_err)?,
        scenario_hash: r.u64("scenario hash").map_err(proto_err)?,
        plan_hash: r.u64("plan hash").map_err(proto_err)?,
        cells: r.u64("cell count").map_err(proto_err)?,
    })
}

/// Encode a HELLO_ACK: the worker's identity plus the inventory of
/// completed ranges it still retains and can re-serve without
/// recomputation.
pub fn encode_hello_ack(id: &Identity, retained: &[(u32, u32)]) -> Vec<u8> {
    let mut out = Vec::with_capacity(32 + 8 + retained.len() * 8);
    codec::put_u64(&mut out, id.seed);
    codec::put_u64(&mut out, id.scenario_hash);
    codec::put_u64(&mut out, id.plan_hash);
    codec::put_u64(&mut out, id.cells);
    codec::put_u64(&mut out, retained.len() as u64);
    for &(start, end) in retained {
        codec::put_u32(&mut out, start);
        codec::put_u32(&mut out, end);
    }
    out
}

/// Decode a HELLO_ACK into `(identity, retained ranges)`.
pub fn decode_hello_ack(buf: &[u8]) -> Result<(Identity, Vec<(u32, u32)>), ShardError> {
    let mut r = reader(buf);
    let id = decode_identity_from(&mut r)?;
    let n = r.len("retained ranges", 8).map_err(proto_err)?;
    let mut retained = Vec::with_capacity(n);
    for _ in 0..n {
        let start = r.u32("retained range start").map_err(proto_err)?;
        let end = r.u32("retained range end").map_err(proto_err)?;
        if end <= start {
            return Err(ShardError::Protocol(format!(
                "retained range {start}..{end} is empty or inverted"
            )));
        }
        retained.push((start, end));
    }
    Ok((id, retained))
}

/// Encode an assignment.
pub fn encode_assign(a: &Assign) -> Vec<u8> {
    let mut out = Vec::with_capacity(17);
    codec::put_u32(&mut out, a.start);
    codec::put_u32(&mut out, a.end);
    codec::put_u32(&mut out, a.attempt);
    codec::put_bool(&mut out, a.kill);
    codec::put_u32(&mut out, a.stall_ms);
    out
}

/// Decode an assignment.
pub fn decode_assign(buf: &[u8]) -> Result<Assign, ShardError> {
    let mut r = reader(buf);
    Ok(Assign {
        start: r.u32("range start").map_err(proto_err)?,
        end: r.u32("range end").map_err(proto_err)?,
        attempt: r.u32("attempt").map_err(proto_err)?,
        kill: r.bool("kill flag").map_err(proto_err)?,
        stall_ms: r.u32("stall ms").map_err(proto_err)?,
    })
}

/// Encode a FAILED message.
pub fn encode_failed(message: &str) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + message.len());
    put_str(&mut out, message);
    out
}

/// Decode a FAILED message.
pub fn decode_failed(buf: &[u8]) -> Result<String, ShardError> {
    get_str(&mut reader(buf), "failure message")
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    codec::put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

fn get_str(r: &mut StateReader<'_>, what: &'static str) -> Result<String, ShardError> {
    let len = r.u32(what).map_err(proto_err)? as usize;
    let mut bytes = Vec::with_capacity(len.min(4096));
    for _ in 0..len {
        bytes.push(r.u8(what).map_err(proto_err)?);
    }
    String::from_utf8(bytes).map_err(|_| ShardError::Protocol(format!("{what} is not UTF-8")))
}

/// Stream → stable wire code. Indices 0..7 are `VantagePoint::ALL`
/// order; the two non-vantage streams follow.
fn stream_code(stream: Stream) -> u8 {
    match stream {
        Stream::Vantage(vp) => VantagePoint::ALL
            .iter()
            .position(|v| *v == vp)
            .expect("every vantage point is in ALL") as u8,
        Stream::IspTransit => VantagePoint::ALL.len() as u8,
        Stream::Edu => VantagePoint::ALL.len() as u8 + 1,
    }
}

fn stream_from_code(code: u8) -> Result<Stream, ShardError> {
    let n = VantagePoint::ALL.len() as u8;
    match code {
        c if c < n => Ok(Stream::Vantage(VantagePoint::ALL[c as usize])),
        c if c == n => Ok(Stream::IspTransit),
        c if c == n + 1 => Ok(Stream::Edu),
        other => Err(ShardError::Protocol(format!("unknown stream code {other}"))),
    }
}

fn put_cell(out: &mut Vec<u8>, cell: Cell) {
    out.push(stream_code(cell.stream));
    codec::put_i64(out, cell.date.day_number());
    out.push(cell.hour);
}

fn get_cell(r: &mut StateReader<'_>) -> Result<Cell, ShardError> {
    let stream = stream_from_code(r.u8("stream code").map_err(proto_err)?)?;
    let date = Date::from_day_number(r.i64("cell date").map_err(proto_err)?);
    let hour = r.u8("cell hour").map_err(proto_err)?;
    if hour >= 24 {
        return Err(ShardError::Protocol(format!(
            "cell hour {hour} out of range"
        )));
    }
    Ok(Cell { stream, date, hour })
}

/// Encode a slice outcome (DONE payload).
pub fn encode_outcome(o: &SliceOutcome) -> Vec<u8> {
    let state_bytes: usize = o.states.iter().map(|s| s.len() + 4).sum();
    let mut out = Vec::with_capacity(64 + state_bytes + o.segments.len() * 48);
    codec::put_u64(&mut out, o.flows);
    codec::put_u64(&mut out, o.generated);
    codec::put_u64(&mut out, o.replayed);
    codec::put_u64(&mut out, o.resumed);
    codec::put_u64(&mut out, o.retries);
    codec::put_u64(&mut out, o.states.len() as u64);
    for state in &o.states {
        codec::put_u32(&mut out, state.len() as u32);
        out.extend_from_slice(state);
    }
    codec::put_u64(&mut out, o.segments.len() as u64);
    for m in &o.segments {
        put_cell(&mut out, m.cell);
        codec::put_u64(&mut out, m.records);
        codec::put_u64(&mut out, m.file_len);
        codec::put_u32(&mut out, m.crc);
        codec::put_u64(&mut out, m.min_start);
        codec::put_u64(&mut out, m.max_end);
    }
    codec::put_u64(&mut out, o.quarantined.len() as u64);
    for q in &o.quarantined {
        put_cell(&mut out, q.cell);
        codec::put_u32(&mut out, q.attempts);
        put_str(&mut out, &q.error);
    }
    out
}

/// Decode a slice outcome.
pub fn decode_outcome(buf: &[u8]) -> Result<SliceOutcome, ShardError> {
    let mut r = reader(buf);
    let mut o = SliceOutcome {
        flows: r.u64("flow tally").map_err(proto_err)?,
        generated: r.u64("generated tally").map_err(proto_err)?,
        replayed: r.u64("replayed tally").map_err(proto_err)?,
        resumed: r.u64("resumed tally").map_err(proto_err)?,
        retries: r.u64("retry tally").map_err(proto_err)?,
        ..SliceOutcome::default()
    };
    let n_states = r.len("consumer states", 4).map_err(proto_err)?;
    for _ in 0..n_states {
        let len = r.u32("state frame length").map_err(proto_err)? as usize;
        let mut frame = Vec::with_capacity(len.min(1 << 20));
        for _ in 0..len {
            frame.push(r.u8("state frame byte").map_err(proto_err)?);
        }
        o.states.push(frame);
    }
    let n_segments = r.len("segment inventory", 10 + 36).map_err(proto_err)?;
    for _ in 0..n_segments {
        let cell = get_cell(&mut r)?;
        o.segments.push(SegmentMeta {
            cell,
            records: r.u64("segment records").map_err(proto_err)?,
            file_len: r.u64("segment file length").map_err(proto_err)?,
            crc: r.u32("segment crc").map_err(proto_err)?,
            min_start: r.u64("segment min start").map_err(proto_err)?,
            max_end: r.u64("segment max end").map_err(proto_err)?,
        });
    }
    let n_quar = r.len("quarantine list", 10 + 8).map_err(proto_err)?;
    for _ in 0..n_quar {
        let cell = get_cell(&mut r)?;
        let attempts = r.u32("quarantine attempts").map_err(proto_err)?;
        let error = get_str(&mut r, "quarantine error")?;
        o.quarantined.push(QuarantinedCell {
            cell,
            attempts,
            error,
        });
    }
    Ok(o)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    fn sample_outcome() -> SliceOutcome {
        SliceOutcome {
            flows: 123_456,
            generated: 96,
            replayed: 3,
            resumed: 1,
            retries: 2,
            states: vec![vec![1, 2, 3], Vec::new(), vec![0xff; 300]],
            segments: vec![SegmentMeta {
                cell: Cell {
                    stream: Stream::Edu,
                    date: Date::new(2020, 3, 25),
                    hour: 13,
                },
                records: 42,
                file_len: 1024,
                crc: 0xdead_beef,
                min_start: 7,
                max_end: 9,
            }],
            quarantined: vec![QuarantinedCell {
                cell: Cell {
                    stream: Stream::Vantage(VantagePoint::IxpSe),
                    date: Date::new(2020, 4, 1),
                    hour: 0,
                },
                attempts: 3,
                error: "worker died (heartbeat timeout)".into(),
            }],
        }
    }

    #[test]
    fn frames_roundtrip_over_a_byte_pipe() {
        let mut wire = Vec::new();
        let id = Identity {
            seed: 0x10CD_2020,
            scenario_hash: 7,
            plan_hash: 9,
            cells: 2640,
        };
        write_frame(&mut wire, T_HELLO, &encode_identity(&id)).unwrap();
        let assign = Assign {
            start: 10,
            end: 20,
            attempt: 1,
            kill: false,
            stall_ms: 0,
        };
        write_frame(&mut wire, T_ASSIGN, &encode_assign(&assign)).unwrap();
        write_frame(&mut wire, T_DONE, &encode_outcome(&sample_outcome())).unwrap();
        write_frame(&mut wire, T_SHUTDOWN, &[]).unwrap();

        let mut r = &wire[..];
        let (k, p) = read_frame(&mut r).unwrap().unwrap();
        assert_eq!(k, T_HELLO);
        assert_eq!(decode_identity(&p).unwrap(), id);
        let (k, p) = read_frame(&mut r).unwrap().unwrap();
        assert_eq!(k, T_ASSIGN);
        assert_eq!(decode_assign(&p).unwrap(), assign);
        let (k, p) = read_frame(&mut r).unwrap().unwrap();
        assert_eq!(k, T_DONE);
        let got = decode_outcome(&p).unwrap();
        let want = sample_outcome();
        assert_eq!(got.states, want.states);
        assert_eq!(got.segments, want.segments);
        assert_eq!(got.flows, want.flows);
        assert_eq!(got.quarantined.len(), 1);
        assert_eq!(got.quarantined[0].error, want.quarantined[0].error);
        let (k, p) = read_frame(&mut r).unwrap().unwrap();
        assert_eq!((k, p.len()), (T_SHUTDOWN, 0));
        assert!(read_frame(&mut r).unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn hello_ack_roundtrips_inventory() {
        let id = Identity {
            seed: 1,
            scenario_hash: 2,
            plan_hash: 3,
            cells: 96,
        };
        for retained in [vec![], vec![(0u32, 8u32)], vec![(0, 8), (16, 24), (88, 96)]] {
            let bytes = encode_hello_ack(&id, &retained);
            let (got_id, got_ranges) = decode_hello_ack(&bytes).unwrap();
            assert_eq!(got_id, id);
            assert_eq!(got_ranges, retained);
        }
        // A plain identity (v1-era HELLO payload shape) is NOT a valid
        // hello-ack: the inventory count is mandatory.
        assert!(decode_hello_ack(&encode_identity(&id)).is_err());
        // Inverted ranges are rejected by name.
        let bad = encode_hello_ack(&id, &[(9, 9)]);
        let err = decode_hello_ack(&bad).unwrap_err();
        assert!(err.to_string().contains("empty or inverted"), "{err}");
    }

    #[test]
    fn malformed_frames_are_named_not_crashed() {
        // Bad magic.
        let mut r = &b"NOPE\x02\x01\x00\x00\x00\x00\x00\x00\x00\x00"[..];
        let err = read_frame(&mut r).unwrap_err();
        assert!(err.to_string().contains("magic"), "{err}");
        // Wrong version (v1 peers are rejected by name, not misread).
        let mut wire = Vec::new();
        write_frame(&mut wire, T_HEARTBEAT, &[]).unwrap();
        wire[4] = 1;
        let err = read_frame(&mut &wire[..]).unwrap_err();
        assert!(err.to_string().contains("version 1"), "{err}");
        // Oversized payload claim.
        let mut wire = Vec::new();
        write_frame(&mut wire, T_DONE, &[]).unwrap();
        wire[6..10].copy_from_slice(&u32::MAX.to_be_bytes());
        let err = read_frame(&mut &wire[..]).unwrap_err();
        assert!(err.to_string().contains("limit"), "{err}");
        // Truncated payload: an error, not a silent None.
        let mut wire = Vec::new();
        write_frame(&mut wire, T_DONE, &[1, 2, 3, 4]).unwrap();
        wire.truncate(wire.len() - 2);
        assert!(read_frame(&mut &wire[..]).is_err());
        // Truncated outcome payload names the missing field.
        let full = encode_outcome(&sample_outcome());
        let err = decode_outcome(&full[..12]).unwrap_err();
        assert!(err.to_string().contains("generated tally"), "{err}");
    }

    #[test]
    fn a_flipped_payload_byte_is_a_named_crc_mismatch() {
        let mut wire = Vec::new();
        write_frame(
            &mut wire,
            T_ASSIGN,
            &encode_assign(&Assign {
                start: 1,
                end: 2,
                attempt: 0,
                kill: false,
                stall_ms: 0,
            }),
        )
        .unwrap();
        // Flip one payload byte; the header check must catch it.
        let last = wire.len() - 1;
        wire[last] ^= 0x40;
        let err = read_frame(&mut &wire[..]).unwrap_err();
        assert!(err.to_string().contains("CRC mismatch"), "{err}");
        // Flip the *type* byte instead: same payload, same CRC — the
        // kind fold must still reject it.
        let mut wire2 = Vec::new();
        write_frame(&mut wire2, T_HEARTBEAT, &[]).unwrap();
        wire2[5] = T_SHUTDOWN;
        let err = read_frame(&mut &wire2[..]).unwrap_err();
        assert!(err.to_string().contains("CRC mismatch"), "{err}");
    }

    #[test]
    fn a_corrupt_length_costs_bounded_memory_not_256mib() {
        // Claim a large payload but supply almost nothing: the reader
        // must fail on EOF after at most one chunk of allocation, not
        // eagerly allocate the full claim. (The claim passes the size
        // check; only delivery can expose the lie.)
        let mut wire = Vec::new();
        write_frame(&mut wire, T_DONE, &[0u8; 16]).unwrap();
        wire[6..10].copy_from_slice(&(200u32 << 20).to_be_bytes());
        let before = wire.len();
        let err = read_frame(&mut &wire[..]).unwrap_err();
        assert!(err.to_string().contains("payload"), "{err}");
        // The reader consumed what existed; nothing panicked or OOMed.
        assert!(before < READ_CHUNK);
    }

    #[test]
    fn a_trickling_peer_hits_the_whole_frame_deadline() {
        // Satellite regression: one byte per poll tick used to reset a
        // per-read timeout forever; the monotonic deadline must fire.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let trickler = std::thread::spawn(move || {
            let (mut s, _) = listener.accept().unwrap();
            let mut wire = Vec::new();
            write_frame(&mut wire, T_DONE, &vec![7u8; 4096]).unwrap();
            for b in wire {
                if s.write_all(&[b]).is_err() {
                    return; // reader gave up — exactly the point
                }
                let _ = s.flush();
                std::thread::sleep(Duration::from_millis(20));
            }
        });
        let mut stream = TcpStream::connect(addr).unwrap();
        let started = Instant::now();
        let err = read_frame_deadline(
            &mut stream,
            Some(Duration::from_secs(5)),
            Duration::from_millis(300),
        )
        .unwrap_err();
        assert!(
            matches!(err, ShardError::Timeout(_)),
            "wanted a timeout, got {err}"
        );
        assert!(err.to_string().contains("deadline"), "{err}");
        // The clock was monotonic across reads: ~300ms, not 20ms × frame len.
        assert!(started.elapsed() < Duration::from_secs(3));
        drop(stream);
        trickler.join().unwrap();
    }

    #[test]
    fn a_slow_but_live_peer_finishes_within_budget() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let writer = std::thread::spawn(move || {
            let (mut s, _) = listener.accept().unwrap();
            let mut wire = Vec::new();
            write_frame(&mut wire, T_FAILED, &encode_failed("slow but fine")).unwrap();
            // Dribble in three installments, well inside the budget.
            for part in wire.chunks(wire.len() / 3 + 1) {
                s.write_all(part).unwrap();
                s.flush().unwrap();
                std::thread::sleep(Duration::from_millis(40));
            }
        });
        let mut stream = TcpStream::connect(addr).unwrap();
        let (kind, payload) = read_frame_deadline(
            &mut stream,
            Some(Duration::from_secs(5)),
            Duration::from_secs(2),
        )
        .unwrap()
        .unwrap();
        assert_eq!(kind, T_FAILED);
        assert_eq!(decode_failed(&payload).unwrap(), "slow but fine");
        writer.join().unwrap();
    }

    #[test]
    fn idle_budget_times_out_an_utterly_silent_peer() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let holder = std::thread::spawn(move || {
            let (s, _) = listener.accept().unwrap();
            std::thread::sleep(Duration::from_millis(600));
            drop(s);
        });
        let mut stream = TcpStream::connect(addr).unwrap();
        let err = read_frame_deadline(
            &mut stream,
            Some(Duration::from_millis(150)),
            Duration::from_secs(1),
        )
        .unwrap_err();
        assert!(matches!(err, ShardError::Timeout(_)), "{err}");
        assert!(err.to_string().contains("no frame within 150ms"), "{err}");
        holder.join().unwrap();
    }

    #[test]
    fn every_stream_code_roundtrips() {
        let mut streams: Vec<Stream> = VantagePoint::ALL.into_iter().map(Stream::Vantage).collect();
        streams.push(Stream::IspTransit);
        streams.push(Stream::Edu);
        for s in streams {
            assert_eq!(stream_from_code(stream_code(s)).unwrap(), s);
        }
        assert!(stream_from_code(200).is_err());
    }
}
