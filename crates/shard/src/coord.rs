//! The coordinator: dispatch cell ranges, merge streamed state.
//!
//! The coordinator owns the whole pass. It resolves the archive (warm
//! vs. cold) *before* any worker runs, splits the full-suite cell plan
//! into contiguous index ranges, and keeps every worker busy from a
//! shared work queue — a dead worker's range goes back on the queue for
//! a live one, carrying its attempt count so the seeded fault schedule
//! keys on `(range, attempt)` rather than on which process happens to
//! run it. Ranges that outlive the attempt budget are quarantined; the
//! assembled suite then degrades exactly like a single-process
//! supervised pass (same report, same exit-3 contract).
//!
//! Liveness is deadline-based on two clocks: silence past
//! [`CoordOptions::heartbeat_timeout`] between frames, or a single
//! frame whose bytes trickle past the same budget after it started
//! (see [`proto::read_frame_deadline`]) — so neither a dead worker nor
//! a byte-per-tick hostile wire can hold an assignment hostage.
//!
//! A failed link is not immediately a failed worker: the coordinator
//! redials the worker's address and re-handshakes first. Workers retain
//! finished slices across connections (see [`crate::worker`]) and
//! advertise them in HELLO_ACK, so re-driving the same assignment after
//! a transient reset re-adopts completed work — byte-identical, zero
//! cells recomputed — instead of recomputing the range. Only when the
//! redial fails (process dead, listener gone) or the reconnect budget
//! is spent does the range go back on the queue for another worker.

use lockdown_chaos::ChaosInjector;
use lockdown_core::engine::SliceOutcome;
use lockdown_core::experiments::suite::{ShardSuiteOptions, Suite, SuiteAssembler};
use lockdown_core::Context;
use std::collections::VecDeque;
use std::io::BufRead;
use std::net::TcpStream;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::process::{Child, Command, Stdio};
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

use crate::proto::{self, Assign, Identity};
use crate::ShardError;

/// Default attempt budget per range when no chaos spec provides one.
pub const DEFAULT_ATTEMPTS: u32 = 3;

/// Consecutive reconnects the coordinator grants one assignment before
/// declaring the worker dead. Wire failures are not charged against the
/// range's attempt budget — they are the link's fault, not the work's —
/// so this cap is what keeps a persistently hostile wire bounded.
pub const RECONNECTS_PER_ASSIGNMENT: u32 = 2;

/// How long a redial keeps trying when the connection is not being
/// actively refused (a refused dial means the listener is gone and the
/// worker is dead — that fails fast).
const REDIAL_WINDOW: Duration = Duration::from_secs(2);

/// How a coordinated pass is tuned. `suite` must describe the same
/// context the workers were started with — the hello exchange verifies
/// seed, scenario and plan fingerprints before any work is assigned.
#[derive(Debug, Clone)]
pub struct CoordOptions {
    /// Archive/chaos options, shared verbatim with workers.
    pub suite: ShardSuiteOptions,
    /// Target work-queue granularity: ranges per worker. More ranges
    /// mean finer rebalancing after a death, at more protocol round
    /// trips. Zero means one range per worker.
    pub chunks_per_worker: usize,
    /// Declare a worker dead after this long without a frame — and
    /// declare a frame dead this long after it started.
    pub heartbeat_timeout: Duration,
}

impl Default for CoordOptions {
    fn default() -> CoordOptions {
        CoordOptions {
            suite: ShardSuiteOptions::default(),
            chunks_per_worker: 4,
            heartbeat_timeout: Duration::from_millis(2_000),
        }
    }
}

/// One connected worker: the socket, plus the child process handle and
/// its stdout (kept open so the child never takes SIGPIPE) when the
/// coordinator spawned it.
#[derive(Debug)]
pub struct WorkerLink {
    /// The protocol connection.
    pub stream: TcpStream,
    /// The child process, for spawned (not attached) workers.
    pub child: Option<Child>,
    /// Kept alive for the child's lifetime.
    stdout: Option<std::process::ChildStdout>,
    /// Where the worker is, for reports — and for redialing it after a
    /// wire failure.
    pub label: String,
}

/// What the coordinator did, beyond the suite itself.
#[derive(Debug, Clone, Copy, Default)]
pub struct CoordStats {
    /// Worker processes at the start of the pass.
    pub workers: usize,
    /// Ranges the plan was split into.
    pub chunks: u32,
    /// Assignments sent (first attempts plus retries).
    pub assignments: u32,
    /// Ranges reassigned after a worker death or slice failure.
    pub reassignments: u32,
    /// Workers declared dead during the pass.
    pub workers_lost: u32,
    /// Ranges whose attempt budget ran out.
    pub quarantined_ranges: u32,
    /// Successful redial-and-rehandshake recoveries after wire failures.
    pub reconnects: u32,
    /// Ranges re-adopted from a reconnected worker's retained inventory
    /// — completed work that a wire failure did *not* force us to redo.
    pub ranges_resumed: u32,
}

impl CoordStats {
    /// One-line summary for stderr.
    pub fn summary(&self) -> String {
        format!(
            "coordinated {} workers: {} ranges, {} assignments, {} reassigned, \
             {} workers lost, {} ranges quarantined, {} reconnects, {} ranges resumed",
            self.workers,
            self.chunks,
            self.assignments,
            self.reassignments,
            self.workers_lost,
            self.quarantined_ranges,
            self.reconnects,
            self.ranges_resumed
        )
    }
}

/// A finished coordinated pass.
pub struct Coordinated {
    /// The assembled suite — byte-identical to a single-process pass
    /// when nothing was quarantined. `None` when quarantine holes left
    /// the figure assembly unable to run (see `assembly_error`); the
    /// pass still ends in a *named* degraded outcome, never a crash.
    pub suite: Option<Suite>,
    /// Why assembly produced no suite, when it did not: the panic
    /// message of the figure that could not compute from partial data.
    pub assembly_error: Option<String>,
    /// Scheduling statistics.
    pub stats: CoordStats,
}

impl Coordinated {
    /// Whether this pass must exit with the degraded contract (exit 3):
    /// either the suite computed from partial data, or the quarantine
    /// holes were too large for it to compute at all.
    pub fn is_degraded(&self) -> bool {
        self.assembly_error.is_some() || self.suite.as_ref().is_some_and(|s| s.degraded.is_some())
    }

    /// Rendered sections: the suite's own (annotated when degraded), or
    /// a single named degraded section when assembly could not run.
    pub fn renders(&self) -> Vec<String> {
        match &self.suite {
            Some(suite) => suite.renders(),
            None => vec![format!(
                "[degraded: no figures — {} quarantined range(s) left the suite \
                 unable to assemble: {}]",
                self.stats.quarantined_ranges,
                self.assembly_error.as_deref().unwrap_or("unknown failure")
            )],
        }
    }
}

/// Split `cells` indices into up to `workers * chunks_per_worker`
/// contiguous near-equal ranges (never more ranges than cells).
pub fn chunk_ranges(cells: usize, workers: usize, chunks_per_worker: usize) -> Vec<(u32, u32)> {
    if cells == 0 || workers == 0 {
        return Vec::new();
    }
    let n = (workers * chunks_per_worker.max(1)).min(cells);
    let base = cells / n;
    let extra = cells % n;
    let mut out = Vec::with_capacity(n);
    let mut start = 0usize;
    for i in 0..n {
        let len = base + usize::from(i < extra);
        out.push((start as u32, (start + len) as u32));
        start += len;
    }
    out
}

/// Connect to already-running workers at `host:port` addresses.
pub fn attach_workers(addrs: &[String]) -> Result<Vec<WorkerLink>, ShardError> {
    addrs
        .iter()
        .map(|addr| {
            let stream = TcpStream::connect(addr)
                .map_err(|e| ShardError::io(format!("connecting to worker {addr}"), &e))?;
            let _ = stream.set_nodelay(true);
            Ok(WorkerLink {
                stream,
                child: None,
                stdout: None,
                label: addr.clone(),
            })
        })
        .collect()
}

/// Spawn `n` local worker processes (`exe worker <args>`) on ephemeral
/// ports and connect to each. The worker's first stdout line —
/// `listening on HOST:PORT`, the same contract collectd and serve
/// honour — carries the port back.
pub fn spawn_workers(
    exe: &std::path::Path,
    args: &[String],
    n: usize,
) -> Result<Vec<WorkerLink>, ShardError> {
    let mut links = Vec::with_capacity(n);
    for i in 0..n {
        let mut child = Command::new(exe)
            .arg("worker")
            .args(args)
            .args(["--listen", "127.0.0.1:0"])
            .stdin(Stdio::null())
            .stdout(Stdio::piped())
            .spawn()
            .map_err(|e| ShardError::io(format!("spawning worker {i}"), &e))?;
        let mut stdout = child.stdout.take().expect("stdout was piped");
        let mut line = String::new();
        {
            let mut reader = std::io::BufReader::new(&mut stdout);
            reader
                .read_line(&mut line)
                .map_err(|e| ShardError::io(format!("reading worker {i} address"), &e))?;
        }
        let addr = line
            .trim()
            .strip_prefix("listening on ")
            .ok_or_else(|| {
                let _ = child.kill();
                ShardError::Protocol(format!("worker {i} printed {line:?}, not its address"))
            })?
            .to_string();
        let stream = TcpStream::connect(&addr)
            .map_err(|e| ShardError::io(format!("connecting to spawned worker at {addr}"), &e))?;
        let _ = stream.set_nodelay(true);
        links.push(WorkerLink {
            stream,
            child: Some(child),
            stdout: Some(stdout),
            label: addr,
        });
    }
    Ok(links)
}

/// Work-queue state shared by the per-worker dispatch threads.
struct Dispatch {
    /// `(start, end, attempt)` ranges awaiting a worker.
    queue: VecDeque<(u32, u32, u32)>,
    /// Ranges currently running on some worker.
    in_flight: usize,
    /// Workers not yet declared dead.
    live: usize,
    /// Completed `(range start, outcome)` pairs.
    done: Vec<(u32, SliceOutcome)>,
    /// `(start, end, attempts spent, error)` for exhausted ranges.
    quarantined: Vec<(u32, u32, u32, String)>,
    stats: CoordStats,
}

impl Dispatch {
    /// Requeue a failed range, or quarantine it when the budget (or the
    /// worker pool) is exhausted.
    fn fail(&mut self, start: u32, end: u32, attempt: u32, budget: u32, error: &str) {
        let spent = attempt + 1;
        if spent < budget && self.live > 0 {
            self.queue.push_back((start, end, spent));
            self.stats.reassignments += 1;
        } else {
            self.quarantined
                .push((start, end, spent, error.to_string()));
            self.stats.quarantined_ranges += 1;
        }
    }

    /// With no workers left, nothing queued will ever run.
    fn drain_to_quarantine(&mut self) {
        while let Some((start, end, attempt)) = self.queue.pop_front() {
            self.quarantined
                .push((start, end, attempt, "no live workers left".to_string()));
            self.stats.quarantined_ranges += 1;
        }
    }
}

/// What one assignment round-trip produced.
enum Reply {
    Done(SliceOutcome),
    Failed(String),
}

/// Send one assignment and pump frames until DONE/FAILED. Heartbeats
/// reset the idle clock; silence past the timeout, a frame trickling
/// past the same budget, EOF, or protocol garbage mean the link is
/// gone.
fn drive_assignment(
    stream: &mut TcpStream,
    assign: &Assign,
    timeout: Duration,
) -> Result<Reply, ShardError> {
    proto::write_frame(stream, proto::T_ASSIGN, &proto::encode_assign(assign))
        .map_err(|e| ShardError::io("sending assignment", &e))?;
    loop {
        match proto::read_frame_deadline(stream, Some(timeout), timeout) {
            Ok(Some((proto::T_HEARTBEAT, _))) => continue,
            Ok(Some((proto::T_DONE, payload))) => {
                return Ok(Reply::Done(proto::decode_outcome(&payload)?))
            }
            Ok(Some((proto::T_FAILED, payload))) => {
                return Ok(Reply::Failed(proto::decode_failed(&payload)?))
            }
            Ok(Some((kind, _))) => {
                return Err(ShardError::Protocol(format!(
                    "unexpected frame type {kind} during assignment"
                )))
            }
            Ok(None) => {
                return Err(ShardError::Protocol(
                    "worker closed the connection mid-assignment".into(),
                ))
            }
            Err(ShardError::Io { detail, .. }) => {
                return Err(ShardError::Protocol(format!(
                    "connection failed mid-assignment ({detail})"
                )))
            }
            Err(e) => return Err(e),
        }
    }
}

/// Run a coordinated full-suite pass over `links`.
///
/// The hello exchange rejects any worker whose seed, scenario or cell
/// plan differs from the coordinator's; after that, range dispatch,
/// retry, reconnect, quarantine and merge all happen here. Spawned
/// children are shut down (or killed, if dead) before this returns.
///
/// A pass whose quarantine holes are too large for the figure suite to
/// assemble still returns `Ok` — with [`Coordinated::suite`] `None` and
/// the failure named — because "the network lost that much work" is a
/// degraded outcome under the exit-3 contract, not a crash.
pub fn coordinate(
    ctx: &Context,
    opts: &CoordOptions,
    links: Vec<WorkerLink>,
) -> Result<Coordinated, ShardError> {
    if links.is_empty() {
        return Err(ShardError::Protocol("no workers to coordinate".into()));
    }
    // Resolve the archive (delete a stale index, or commit to warm
    // replay) before any worker can open it.
    let mut assembler = SuiteAssembler::new(ctx, &opts.suite)?;
    let identity = Identity {
        seed: ctx.config.seed,
        scenario_hash: ctx.scenario_hash(),
        plan_hash: assembler.plan_hash(),
        cells: assembler.cell_count() as u64,
    };

    let mut links = links;
    for link in &mut links {
        handshake(link, &identity, opts.heartbeat_timeout)?;
    }

    let injector = opts.suite.chaos.map(ChaosInjector::new);
    let budget = opts
        .suite
        .chaos
        .map(|c| c.attempts.max(1))
        .unwrap_or(DEFAULT_ATTEMPTS);
    let chunks = chunk_ranges(assembler.cell_count(), links.len(), opts.chunks_per_worker);
    let dispatch = Mutex::new(Dispatch {
        queue: chunks.iter().map(|&(s, e)| (s, e, 0)).collect(),
        in_flight: 0,
        live: links.len(),
        done: Vec::with_capacity(chunks.len()),
        quarantined: Vec::new(),
        stats: CoordStats {
            workers: links.len(),
            chunks: chunks.len() as u32,
            ..CoordStats::default()
        },
    });
    let ready = Condvar::new();
    let stall_ms = (2 * opts.heartbeat_timeout.as_millis()).min(u128::from(u32::MAX)) as u32;

    std::thread::scope(|scope| {
        for link in links {
            scope.spawn(|| {
                worker_loop(
                    link,
                    &dispatch,
                    &ready,
                    &identity,
                    injector.as_ref(),
                    budget,
                    stall_ms,
                    opts.heartbeat_timeout,
                );
            });
        }
    });

    let state = dispatch.into_inner().expect("no thread held the lock");
    let stats = state.stats;
    let quarantined = !state.quarantined.is_empty();

    // Deterministic merge order — not required for correctness (the
    // merges are additive over disjoint cells) but it keeps two runs of
    // the same pass bit-for-bit alike in every internal ordering.
    let mut done = state.done;
    done.sort_by_key(|(start, _)| *start);
    for (_, outcome) in done {
        assembler.absorb(outcome)?;
    }
    for (start, end, attempts, error) in state.quarantined {
        assembler.quarantine_range(start as usize..end as usize, attempts, &error);
    }

    // Figure assembly asserts it has the data its windows demand; a
    // badly-holed quarantine pattern can make that impossible. Under
    // quarantine, an assembly panic is a *named degraded outcome* — the
    // robustness contract is "recovery or degraded, never a crash" —
    // while a panic on complete data is a genuine bug and re-raised.
    match catch_unwind(AssertUnwindSafe(|| assembler.finish(ctx, stats.workers))) {
        Ok(Ok(suite)) => Ok(Coordinated {
            suite: Some(suite),
            assembly_error: None,
            stats,
        }),
        Ok(Err(e)) => Err(e.into()),
        Err(panic) => {
            if quarantined {
                Ok(Coordinated {
                    suite: None,
                    assembly_error: Some(panic_message(panic)),
                    stats,
                })
            } else {
                resume_unwind(panic)
            }
        }
    }
}

/// Render a panic payload for the degraded report.
fn panic_message(panic: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic during assembly".to_string()
    }
}

/// Exchange identities with one worker and verify them field by field.
/// Returns the worker's retained-range inventory (empty on a first
/// connection; possibly not after a reconnect).
fn handshake(
    link: &mut WorkerLink,
    ours: &Identity,
    timeout: Duration,
) -> Result<Vec<(u32, u32)>, ShardError> {
    proto::write_frame(
        &mut link.stream,
        proto::T_HELLO,
        &proto::encode_identity(ours),
    )
    .map_err(|e| ShardError::io(format!("greeting worker {}", link.label), &e))?;
    // Hello asks the worker to build its suite plan; give it headroom
    // beyond the steady-state heartbeat timeout.
    let budget = timeout.max(Duration::from_secs(10));
    let (theirs, retained) =
        match proto::read_frame_deadline(&mut link.stream, Some(budget), budget)? {
            Some((proto::T_HELLO_ACK, payload)) => proto::decode_hello_ack(&payload)?,
            Some((kind, _)) => {
                return Err(ShardError::Protocol(format!(
                    "worker {} answered HELLO with frame type {kind}",
                    link.label
                )))
            }
            None => {
                return Err(ShardError::Protocol(format!(
                    "worker {} hung up during handshake",
                    link.label
                )))
            }
        };
    if theirs != *ours {
        return Err(ShardError::Protocol(format!(
            "worker {} identity mismatch: worker has seed {:#x} scenario {:#018x} \
             plan {:#018x} ({} cells); coordinator has seed {:#x} scenario {:#018x} \
             plan {:#018x} ({} cells) — start workers with the same \
             --fidelity/--scenario/--archive",
            link.label,
            theirs.seed,
            theirs.scenario_hash,
            theirs.plan_hash,
            theirs.cells,
            ours.seed,
            ours.scenario_hash,
            ours.plan_hash,
            ours.cells,
        )));
    }
    Ok(retained)
}

/// Redial a failed link and re-handshake. A refused dial fails fast —
/// the listener is gone, so the worker process is dead — while other
/// dial errors retry inside [`REDIAL_WINDOW`]. Returns the worker's
/// retained-range inventory on success.
fn reconnect(link: &mut WorkerLink, ours: &Identity, timeout: Duration) -> Option<Vec<(u32, u32)>> {
    let deadline = Instant::now() + REDIAL_WINDOW;
    loop {
        match TcpStream::connect(&link.label) {
            Ok(stream) => {
                let _ = stream.set_nodelay(true);
                link.stream = stream;
                // Connected but garbled (corrupt wire, wrong identity,
                // hang-up): the link is not coming back usable.
                return handshake(link, ours, timeout).ok();
            }
            Err(e) if e.kind() == std::io::ErrorKind::ConnectionRefused => return None,
            Err(_) if Instant::now() < deadline => {
                std::thread::sleep(Duration::from_millis(50));
            }
            Err(_) => return None,
        }
    }
}

/// One worker's dispatch loop: pull ranges until the queue is dry and
/// nothing is in flight, then shut the worker down.
#[allow(clippy::too_many_arguments)]
fn worker_loop(
    mut link: WorkerLink,
    dispatch: &Mutex<Dispatch>,
    ready: &Condvar,
    identity: &Identity,
    injector: Option<&ChaosInjector>,
    budget: u32,
    stall_ms: u32,
    timeout: Duration,
) {
    // Ranges the worker advertised as retained at its last handshake:
    // completing one of these after a reconnect is resumed work, not
    // recomputed work.
    let mut inventory: Vec<(u32, u32)> = Vec::new();
    loop {
        let job = {
            let mut d = dispatch.lock().expect("dispatch lock");
            loop {
                if let Some(job) = d.queue.pop_front() {
                    d.in_flight += 1;
                    d.stats.assignments += 1;
                    break Some(job);
                }
                if d.in_flight == 0 {
                    break None;
                }
                // A running range may yet fail and come back.
                d = ready.wait(d).expect("dispatch lock");
            }
        };
        let Some((start, end, attempt)) = job else {
            shutdown_link(&mut link);
            return;
        };

        let chaos = injector
            .map(|i| i.decide_worker(start, end, attempt))
            .unwrap_or_default();
        let assign = Assign {
            start,
            end,
            attempt,
            kill: chaos.kill,
            stall_ms: if chaos.stall { stall_ms } else { 0 },
        };
        let mut redials_left = RECONNECTS_PER_ASSIGNMENT;
        loop {
            match drive_assignment(&mut link.stream, &assign, timeout) {
                Ok(Reply::Done(outcome)) => {
                    let resumed = inventory.contains(&(start, end));
                    let mut d = dispatch.lock().expect("dispatch lock");
                    d.in_flight -= 1;
                    d.done.push((start, outcome));
                    if resumed {
                        d.stats.ranges_resumed += 1;
                    }
                    ready.notify_all();
                    break;
                }
                Ok(Reply::Failed(message)) => {
                    // The slice failed but the worker is healthy: charge
                    // the attempt and keep the worker in rotation.
                    let mut d = dispatch.lock().expect("dispatch lock");
                    d.in_flight -= 1;
                    d.fail(start, end, attempt, budget, &message);
                    ready.notify_all();
                    break;
                }
                Err(e) => {
                    // The *link* failed (timeout, EOF, garbage). Redial
                    // before declaring the worker dead: a worker that
                    // answers retains its finished slices, so the same
                    // assignment re-adopts work instead of redoing it.
                    // The wire failure is not charged as an attempt.
                    if redials_left > 0 {
                        redials_left -= 1;
                        if let Some(inv) = reconnect(&mut link, identity, timeout) {
                            inventory = inv;
                            let mut d = dispatch.lock().expect("dispatch lock");
                            d.stats.reconnects += 1;
                            continue;
                        }
                    }
                    // Dead for real: release the range, retire the
                    // worker, reap any child.
                    {
                        let mut d = dispatch.lock().expect("dispatch lock");
                        d.in_flight -= 1;
                        d.live -= 1;
                        d.stats.workers_lost += 1;
                        d.fail(start, end, attempt, budget, &e.to_string());
                        if d.live == 0 {
                            d.drain_to_quarantine();
                        }
                        ready.notify_all();
                    }
                    reap_link(&mut link);
                    return;
                }
            }
        }
    }
}

/// Clean shutdown: best-effort SHUTDOWN frame, then wait for a spawned
/// child to exit.
fn shutdown_link(link: &mut WorkerLink) {
    let _ = proto::write_frame(&mut link.stream, proto::T_SHUTDOWN, &[]);
    if let Some(child) = &mut link.child {
        let _ = child.wait();
    }
    let _ = link.stdout.take();
}

/// A dead worker: kill the child (a wedged process won't exit on its
/// own) and reap it.
fn reap_link(link: &mut WorkerLink) {
    if let Some(child) = &mut link.child {
        let _ = child.kill();
        let _ = child.wait();
    }
    let _ = link.stdout.take();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunking_covers_exactly_once() {
        for (cells, workers, cpw) in [(96, 3, 4), (7, 3, 4), (1, 8, 4), (100, 1, 1), (0, 3, 4)] {
            let ranges = chunk_ranges(cells, workers, cpw);
            let mut next = 0u32;
            for &(s, e) in &ranges {
                assert_eq!(s, next, "contiguous");
                assert!(e > s, "non-empty");
                next = e;
            }
            assert_eq!(next as usize, cells, "covers all cells");
            if cells > 0 {
                assert!(ranges.len() <= cells);
                assert!(ranges.len() <= workers * cpw.max(1));
                let sizes: Vec<u32> = ranges.iter().map(|(s, e)| e - s).collect();
                let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
                assert!(max - min <= 1, "near-equal sizes: {sizes:?}");
            }
        }
    }
}
