//! Sharded scale-out: one coordinator, N worker processes.
//!
//! The engine already proves that a figure-suite pass is a fold over
//! disjoint `(stream, date, hour)` cells: consumer merges are additive,
//! so any partition of the cell list produces byte-identical figures.
//! This crate stretches that property across *process* boundaries. A
//! coordinator splits the full-suite cell plan into contiguous index
//! ranges, hands them to workers over a hand-rolled length-prefixed TCP
//! protocol ([`proto`]), and merges the serialized consumer states each
//! worker streams back through the analysis codec. Worker archive
//! segments are adopted into the coordinator's single manifest, so a
//! sharded cold pass leaves exactly the archive a single-process pass
//! would.
//!
//! Failure semantics mirror the in-process supervisor: a worker that
//! stops heartbeating (killed, stalled, unplugged) loses its assignment,
//! the range is retried on a live worker, and a range that outlives its
//! attempt budget is quarantined — the assembled suite then degrades
//! (exit 3) instead of aborting, with every missing cell named.
//!
//! The wire itself is treated as hostile (PR 10): every frame carries a
//! CRC-32 check, every socket read runs under a monotonic whole-frame
//! deadline, and a transient connection loss triggers reconnect —
//! workers retain finished slices and re-offer them in HELLO_ACK, so a
//! reset costs a round trip, not a recomputation.
//!
//! The split of labour:
//!
//! - [`proto`] — frames and message codecs; no sockets, pure bytes.
//! - [`worker`] — serve one coordinator connection; run slices.
//! - [`coord`] — spawn/attach workers, dispatch ranges, merge, report.

pub mod coord;
pub mod proto;
pub mod worker;

use lockdown_store::StoreError;
use std::fmt;

/// Everything that can go wrong across the shard boundary.
#[derive(Debug)]
pub enum ShardError {
    /// A socket or process operation failed.
    Io {
        /// What was being attempted.
        context: String,
        /// The underlying error, rendered.
        detail: String,
    },
    /// The peer spoke the protocol wrong (bad magic, unknown frame,
    /// truncated payload, CRC mismatch, identity mismatch).
    Protocol(String),
    /// The peer went silent (no frame inside the idle budget) or
    /// trickled (a started frame outlived its whole-frame deadline).
    Timeout(String),
    /// The merge or archive side failed.
    Store(StoreError),
}

impl ShardError {
    /// Wrap an I/O error with what was being attempted.
    pub fn io(context: impl Into<String>, err: &std::io::Error) -> ShardError {
        ShardError::Io {
            context: context.into(),
            detail: err.to_string(),
        }
    }
}

impl fmt::Display for ShardError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShardError::Io { context, detail } => write!(f, "{context}: {detail}"),
            ShardError::Protocol(msg) => write!(f, "shard protocol: {msg}"),
            ShardError::Timeout(msg) => write!(f, "shard timeout: {msg}"),
            ShardError::Store(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ShardError {}

impl From<StoreError> for ShardError {
    fn from(e: StoreError) -> ShardError {
        ShardError::Store(e)
    }
}
