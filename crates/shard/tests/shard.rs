//! End-to-end shard tests over real sockets: worker threads serve the
//! protocol on loopback listeners, the coordinator attaches, and the
//! assembled suite must be byte-identical to a single-process pass —
//! the same oracle the engine's in-process tests use, stretched across
//! the TCP boundary. Worker-fault chaos (seeded kills) must only cost
//! reassignment, never bytes.

use lockdown_chaos::{ChaosConfig, ChaosInjector};
use lockdown_core::experiments::suite::{self, suite_shard_cell_count, ShardSuiteOptions};
use lockdown_core::{Context, Fidelity};
use lockdown_shard::coord::{self, chunk_ranges, CoordOptions};
use lockdown_shard::worker::{serve_worker, WorkerExit};
use std::net::TcpListener;
use std::path::PathBuf;
use std::sync::OnceLock;
use std::thread::JoinHandle;

fn ctx() -> Context {
    Context::new(Fidelity::Test)
}

/// The single-process reference: every rendered section of the suite.
fn reference() -> &'static Vec<String> {
    static REF: OnceLock<Vec<String>> = OnceLock::new();
    REF.get_or_init(|| suite::run_all(&ctx()).renders())
}

/// Start `n` protocol workers on loopback listeners; returns their
/// addresses and join handles.
fn start_workers(opts: &ShardSuiteOptions, n: usize) -> (Vec<String>, Vec<JoinHandle<WorkerExit>>) {
    let mut addrs = Vec::with_capacity(n);
    let mut handles = Vec::with_capacity(n);
    for _ in 0..n {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
        addrs.push(listener.local_addr().expect("bound").to_string());
        let opts = opts.clone();
        handles.push(std::thread::spawn(move || {
            serve_worker(&ctx(), &opts, listener).expect("worker protocol error")
        }));
    }
    (addrs, handles)
}

fn coordinate_with(opts: CoordOptions, workers: usize) -> (coord::Coordinated, Vec<WorkerExit>) {
    let (addrs, handles) = start_workers(&opts.suite, workers);
    let links = coord::attach_workers(&addrs).expect("attach");
    let out = coord::coordinate(&ctx(), &opts, links).expect("coordinate");
    let exits = handles
        .into_iter()
        .map(|h| h.join().expect("worker thread"))
        .collect();
    (out, exits)
}

/// Unwrap the assembled suite — these tests expect assembly to succeed
/// (quarantine-hole assembly failure is its own test below).
fn suite(out: &coord::Coordinated) -> &suite::Suite {
    out.suite.as_ref().expect("suite assembled")
}

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("lockdown-shard-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn coordinated_pass_is_byte_identical_and_adopts_segments() {
    let dir = fresh_dir("identity");
    let opts = CoordOptions {
        suite: ShardSuiteOptions {
            archive: Some(dir.clone()),
            chaos: None,
        },
        ..CoordOptions::default()
    };

    // Cold: three workers generate disjoint ranges and spill segments;
    // the coordinator adopts them all into one manifest.
    let (cold, exits) = coordinate_with(opts.clone(), 3);
    assert!(
        exits.iter().all(|e| *e == WorkerExit::Shutdown),
        "{exits:?}"
    );
    assert_eq!(cold.renders(), *reference(), "cold sharded output");
    assert_eq!(cold.stats.workers, 3);
    assert!(suite(&cold).degraded.is_none());
    assert!(!cold.is_degraded());
    assert_eq!(cold.stats.reassignments, 0);
    let total = suite(&cold).stats.cells_generated;
    assert!(total > 0, "cold pass generates");
    assert_eq!(suite(&cold).stats.cells_replayed, 0);

    // Warm: the adopted manifest covers the whole plan, so a re-run —
    // with a different worker count, even — regenerates zero cells.
    let (warm, _) = coordinate_with(opts, 2);
    assert_eq!(warm.renders(), *reference(), "warm sharded output");
    assert_eq!(suite(&warm).stats.cells_generated, 0, "warm pass replays");
    assert_eq!(suite(&warm).stats.cells_replayed, total);

    std::fs::remove_dir_all(&dir).expect("cleanup");
}

/// A chaos seed where, on this plan's ranges, at least one first
/// attempt is killed, no second attempt fails, and at most
/// `workers - 1` workers die — so the pass must reassign and still
/// complete cleanly.
fn seed_with_survivable_kills(cells: usize, workers: usize, cpw: usize) -> ChaosConfig {
    let ranges = chunk_ranges(cells, workers, cpw);
    for seed in 0..10_000 {
        let mut cfg = ChaosConfig::zero();
        cfg.seed = seed;
        cfg.wkill = 0.2;
        let injector = ChaosInjector::new(cfg);
        let mut first_kills = 0;
        let mut retry_trouble = false;
        for &(s, e) in &ranges {
            let a0 = injector.decide_worker(s, e, 0);
            assert!(!a0.stall, "wstall is zero");
            if a0.kill {
                first_kills += 1;
                let a1 = injector.decide_worker(s, e, 1);
                if a1.kill || a1.stall {
                    retry_trouble = true;
                }
            }
        }
        if first_kills >= 1 && first_kills < workers && !retry_trouble {
            return cfg;
        }
    }
    panic!("no survivable-kill seed in range");
}

#[test]
fn seeded_worker_kill_reassigns_and_still_matches() {
    let base = ShardSuiteOptions::default();
    let cells = suite_shard_cell_count(&ctx(), &base);
    let workers = 3;
    let mut opts = CoordOptions::default();
    let cfg = seed_with_survivable_kills(cells, workers, opts.chunks_per_worker);
    opts.suite.chaos = Some(cfg);

    let (out, exits) = coordinate_with(opts, workers);
    assert!(
        exits.contains(&WorkerExit::ChaosKilled),
        "a worker must actually die: {exits:?}"
    );
    assert!(out.stats.workers_lost >= 1, "{}", out.stats.summary());
    assert!(out.stats.reassignments >= 1, "{}", out.stats.summary());
    assert_eq!(out.stats.quarantined_ranges, 0, "{}", out.stats.summary());
    assert!(suite(&out).degraded.is_none());
    assert_eq!(
        out.renders(),
        *reference(),
        "reassignment must not change a byte"
    );
}

#[test]
fn a_fully_dead_range_degrades_instead_of_aborting() {
    let base = ShardSuiteOptions::default();
    let cells = suite_shard_cell_count(&ctx(), &base);
    let workers = 3;
    let cpw = CoordOptions::default().chunks_per_worker;
    let ranges = chunk_ranges(cells, workers, cpw);

    // attempts=1: a range whose only replica dies has exhausted its
    // budget — quarantined, not retried. Find a seed that kills exactly
    // one first attempt; skip seeds whose quarantined hole lands where
    // a figure's assembly cannot tolerate it (an empty classification
    // window asserts) — the CLI smoke does the same seed search.
    'seed: for seed in 0..10_000u64 {
        let mut cfg = ChaosConfig::zero();
        cfg.seed = seed;
        cfg.wkill = 0.08;
        cfg.attempts = 1;
        let injector = ChaosInjector::new(cfg);
        let mut kills = 0;
        for &(s, e) in &ranges {
            let d = injector.decide_worker(s, e, 0);
            if d.stall {
                continue 'seed;
            }
            kills += u32::from(d.kill);
        }
        if kills != 1 {
            continue;
        }
        let mut opts = CoordOptions::default();
        opts.suite.chaos = Some(cfg);
        let (out, exits) = coordinate_with(opts, workers);

        assert!(exits.contains(&WorkerExit::ChaosKilled), "{exits:?}");
        assert_eq!(out.stats.workers_lost, 1, "{}", out.stats.summary());
        assert_eq!(out.stats.quarantined_ranges, 1, "{}", out.stats.summary());
        assert_eq!(out.stats.reassignments, 0, "{}", out.stats.summary());
        assert!(out.is_degraded(), "a quarantined range must degrade");
        if out.suite.is_none() {
            // This seed's hole was too large for figure assembly: the
            // coordinator must still return a *named* degraded outcome
            // (no crash), with its single explanatory section. Keep
            // searching for a seed whose hole the figures tolerate.
            let err = out.assembly_error.as_deref().expect("named failure");
            assert!(!err.is_empty());
            let sections = out.renders();
            assert_eq!(sections.len(), 1, "{sections:?}");
            assert!(sections[0].contains("degraded"), "{}", sections[0]);
            continue;
        }
        let report = suite(&out).degraded.as_ref().expect("degraded report");
        let rendered = report.render();
        assert!(rendered.contains("DEGRADED PASS"), "{rendered}");
        assert!(!report.quarantined.is_empty());
        assert!(
            report.quarantined.iter().all(|q| q.attempts == 1),
            "one replica, one attempt"
        );
        // The suite still renders every section — degraded, not aborted.
        assert_eq!(out.renders().len(), reference().len());
        return;
    }
    panic!("no seed in 0..10000 produced a renderable one-range quarantine");
}
