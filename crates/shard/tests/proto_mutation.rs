//! Mutation-hardening of the shard frame codec: any single-byte flip in
//! an encoded frame must produce a *named* error (Protocol, CRC
//! mismatch, Timeout) or — when the flip lands in dead air the decoder
//! never reads — the exact same decode. Never a panic, never a
//! silently-wrong decode.
//!
//! Two layers: an exhaustive every-position sweep over one encoding of
//! each frame type (cheap, deterministic, catches offset-sensitive
//! bugs), and a proptest layer drawing random frame contents *and*
//! random flips (catches content-dependent holes the fixed samples
//! miss).

use lockdown_core::engine::SliceOutcome;
use lockdown_core::supervisor::QuarantinedCell;
use lockdown_flow::time::Date;
use lockdown_shard::proto::{self, Assign, Identity};
use lockdown_shard::ShardError;
use lockdown_store::SegmentMeta;
use lockdown_traffic::plan::{Cell, Stream};
use proptest::prelude::*;

/// Encode one whole frame (header + payload) into a byte vector.
fn frame_bytes(kind: u8, payload: &[u8]) -> Vec<u8> {
    let mut wire = Vec::new();
    proto::write_frame(&mut wire, kind, payload).expect("vec write");
    wire
}

/// Decode one frame from bytes. The typed payload decoders run too, so
/// a flip that survives the CRC *cannot* survive into a wrong value —
/// it must reproduce the original frame exactly.
fn decode(wire: &[u8]) -> Result<Option<(u8, Vec<u8>)>, ShardError> {
    let mut r = wire;
    proto::read_frame(&mut r)
}

/// The oracle: flipping `wire[pos]` by `xor` either errors by name or
/// decodes to exactly the original `(kind, payload)`.
fn assert_flip_is_caught(wire: &[u8], pos: usize, xor: u8, kind: u8, payload: &[u8]) {
    let mut mutated = wire.to_vec();
    mutated[pos] ^= xor;
    match decode(&mutated) {
        Err(_) => {} // named rejection: the contract
        Ok(None) => {
            // Only a length-field shrink can make the reader see less
            // than a frame; read_frame reports clean EOF only when the
            // *first* header byte is missing — impossible here, the
            // header is present. A flip must never register as EOF.
            panic!("flip at {pos} read as clean EOF");
        }
        Ok(Some((got_kind, got_payload))) => {
            assert_eq!(
                (got_kind, got_payload.as_slice()),
                (kind, payload),
                "flip at byte {pos} (xor {xor:#04x}) decoded as a DIFFERENT frame"
            );
        }
    }
}

fn sample_identity() -> Identity {
    Identity {
        seed: 0x10CD_2020,
        scenario_hash: 0x5eed_f00d,
        plan_hash: 0x0123_4567_89ab_cdef,
        cells: 20_592,
    }
}

fn sample_outcome() -> SliceOutcome {
    SliceOutcome {
        flows: 987_654,
        generated: 128,
        replayed: 16,
        resumed: 2,
        retries: 1,
        states: vec![vec![9, 8, 7, 6], Vec::new(), vec![0xa5; 257]],
        segments: vec![SegmentMeta {
            cell: Cell {
                stream: Stream::Edu,
                date: Date::new(2020, 3, 25),
                hour: 13,
            },
            records: 42,
            file_len: 1024,
            crc: 0xdead_beef,
            min_start: 7,
            max_end: 9,
        }],
        quarantined: vec![QuarantinedCell {
            cell: Cell {
                stream: Stream::Edu,
                date: Date::new(2020, 4, 1),
                hour: 0,
            },
            attempts: 3,
            error: "worker died (heartbeat timeout)".into(),
        }],
    }
}

/// Every frame type's sample `(kind, payload)` pair — the full protocol
/// vocabulary, so no frame type escapes the sweep.
fn vocabulary() -> Vec<(u8, Vec<u8>)> {
    let id = sample_identity();
    vec![
        (proto::T_HELLO, proto::encode_identity(&id)),
        (
            proto::T_HELLO_ACK,
            proto::encode_hello_ack(&id, &[(0, 2574), (5148, 7722)]),
        ),
        (
            proto::T_ASSIGN,
            proto::encode_assign(&Assign {
                start: 2574,
                end: 5148,
                attempt: 1,
                kill: false,
                stall_ms: 0,
            }),
        ),
        (proto::T_HEARTBEAT, Vec::new()),
        (proto::T_DONE, proto::encode_outcome(&sample_outcome())),
        (
            proto::T_FAILED,
            proto::encode_failed("segment write failed"),
        ),
        (proto::T_SHUTDOWN, Vec::new()),
    ]
}

#[test]
fn every_byte_position_flip_is_caught_or_harmless() {
    for (kind, payload) in vocabulary() {
        let wire = frame_bytes(kind, &payload);
        // The DONE frame is ~100 KB of consumer state; sweep every
        // header byte and a stride through the payload to keep the
        // exhaustive layer fast. Small frames sweep every byte.
        let positions: Vec<usize> = if wire.len() <= 4096 {
            (0..wire.len()).collect()
        } else {
            (0..proto::HEADER_LEN)
                .chain((proto::HEADER_LEN..wire.len()).step_by(97))
                .chain([wire.len() - 1])
                .collect()
        };
        for pos in positions {
            for xor in [0x01, 0x80, 0xff] {
                assert_flip_is_caught(&wire, pos, xor, kind, &payload);
            }
        }
    }
}

#[test]
fn typed_decoders_reject_flipped_payloads_by_name_not_panic() {
    // Even when handed a payload that (hypothetically) slipped past the
    // frame CRC, the typed decoders must reject or round-trip — this
    // guards the decoders themselves against panics on garbled input.
    type GarbleCheck = Box<dyn Fn(&[u8]) -> bool>;
    let id = sample_identity();
    let cases: Vec<(Vec<u8>, GarbleCheck)> = vec![
        // A flip in a fixed-width integer field decodes to a different
        // value by construction; the *frame CRC* is what rules wrong
        // values out on the real wire (tested above). The typed
        // decoders' own contract is narrower: never panic on garble.
        (
            proto::encode_identity(&id),
            Box::new(move |b| matches!(proto::decode_identity(b), Ok(_) | Err(_))),
        ),
        (
            proto::encode_hello_ack(&id, &[(8, 16)]),
            Box::new(move |b| matches!(proto::decode_hello_ack(b), Ok(_) | Err(_))),
        ),
        (
            proto::encode_outcome(&sample_outcome()),
            Box::new(move |b| matches!(proto::decode_outcome(b), Ok(_) | Err(_))),
        ),
    ];
    for (payload, check) in cases {
        for pos in 0..payload.len().min(512) {
            let mut mutated = payload.clone();
            mutated[pos] ^= 0xff;
            assert!(check(&mutated), "flip at {pos} violated the contract");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random frame contents, random flip position, random flip mask:
    /// named error or byte-identical decode, never a panic.
    #[test]
    fn random_single_byte_flips_never_decode_silently_wrong(
        seed in any::<u64>(),
        scenario in any::<u64>(),
        plan in any::<u64>(),
        cells in any::<u64>(),
        start in 0u32..1_000_000,
        len in 1u32..1_000_000,
        attempt in 0u32..16,
        kill in any::<bool>(),
        stall in 0u32..60_000,
        msg_seed in any::<u64>(),
        pos_seed in any::<u64>(),
        xor in 1u8..=255,
        which in 0usize..4,
    ) {
        let id = Identity { seed, scenario_hash: scenario, plan_hash: plan, cells };
        let (kind, payload) = match which {
            0 => (proto::T_HELLO, proto::encode_identity(&id)),
            1 => (
                proto::T_HELLO_ACK,
                proto::encode_hello_ack(&id, &[(start, start.saturating_add(len).max(start + 1))]),
            ),
            2 => (
                proto::T_ASSIGN,
                proto::encode_assign(&Assign {
                    start,
                    end: start.saturating_add(len),
                    attempt,
                    kill,
                    stall_ms: stall,
                }),
            ),
            _ => (
                proto::T_FAILED,
                proto::encode_failed(&format!("slice failed: code {msg_seed:#018x}")),
            ),
        };
        let wire = frame_bytes(kind, &payload);
        let pos = (pos_seed % wire.len() as u64) as usize;
        assert_flip_is_caught(&wire, pos, xor, kind, &payload);

        // And the unmutated frame must still round-trip — the oracle is
        // meaningless if the baseline doesn't hold.
        let (got_kind, got_payload) = decode(&wire)
            .expect("clean frame decodes")
            .expect("clean frame is not EOF");
        prop_assert_eq!((got_kind, got_payload), (kind, payload));
    }

    /// Truncating a frame at any point is an error or clean EOF at a
    /// frame boundary — never a partial decode.
    #[test]
    fn random_truncation_never_yields_a_frame(
        cut_seed in any::<u64>(),
        start in 0u32..1_000_000,
        len in 1u32..1_000_000,
    ) {
        let payload = proto::encode_assign(&Assign {
            start,
            end: start.saturating_add(len),
            attempt: 0,
            kill: false,
            stall_ms: 0,
        });
        let wire = frame_bytes(proto::T_ASSIGN, &payload);
        let cut = (cut_seed % wire.len() as u64) as usize;
        match decode(&wire[..cut]) {
            Err(_) => {}
            Ok(None) => prop_assert_eq!(cut, 0, "EOF only at the frame boundary"),
            Ok(Some(_)) => prop_assert!(false, "truncated frame decoded"),
        }
    }
}
