//! Generator configuration and scaling knobs.

use serde::{Deserialize, Serialize};

/// Tuning knobs for the synthetic trace generator.
///
/// The real vantage points carry Tbps and billions of flows; a reproduction
/// must *scale down* without changing the statistics any figure depends on.
/// Every figure in the paper is either normalized (volumes relative to a
/// baseline) or a ratio, so a global flows-per-volume scale cancels out.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GeneratorConfig {
    /// Master RNG seed; all generation is deterministic given this.
    pub seed: u64,
    /// Flow records generated per Gbps of expected hourly demand. Higher
    /// values give smoother statistics at linear cost.
    pub flows_per_gbps: f64,
    /// Online-user population per Gbps of demand, controlling unique-IP
    /// statistics (Fig. 8 counts distinct addresses).
    pub users_per_gbps: f64,
    /// Lower bound on flows per non-empty (class, hour) cell so tiny
    /// classes stay observable.
    pub min_flows: usize,
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        GeneratorConfig {
            seed: 0x10CD_07E0,
            flows_per_gbps: 0.35,
            users_per_gbps: 6.0,
            min_flows: 2,
        }
    }
}

impl GeneratorConfig {
    /// A configuration with a specific seed and default scaling.
    pub fn with_seed(seed: u64) -> GeneratorConfig {
        GeneratorConfig {
            seed,
            ..GeneratorConfig::default()
        }
    }

    /// A high-resolution configuration for statistics-hungry experiments
    /// (port distributions, unique-IP counts).
    pub fn high_resolution(seed: u64) -> GeneratorConfig {
        GeneratorConfig {
            seed,
            flows_per_gbps: 2.0,
            users_per_gbps: 25.0,
            min_flows: 4,
        }
    }

    /// A coarse configuration for long time-range sweeps (Fig. 1's
    /// 20 weeks × 7 vantage points).
    pub fn coarse(seed: u64) -> GeneratorConfig {
        GeneratorConfig {
            seed,
            flows_per_gbps: 0.1,
            users_per_gbps: 2.0,
            min_flows: 1,
        }
    }

    /// Stable fingerprint of every knob that shapes generated traffic
    /// *except* the seed (archives key on the seed separately). Two
    /// configurations hash equal exactly when they would emit identical
    /// cells for identical seeds, so an archive written at one fidelity is
    /// never replayed into a run at another.
    pub fn scenario_hash(&self) -> u64 {
        crate::plan::fold_hash([
            self.flows_per_gbps.to_bits(),
            self.users_per_gbps.to_bits(),
            self.min_flows as u64,
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_hash_ignores_seed_but_not_scaling() {
        assert_eq!(
            GeneratorConfig::coarse(1).scenario_hash(),
            GeneratorConfig::coarse(99).scenario_hash()
        );
        assert_ne!(
            GeneratorConfig::coarse(1).scenario_hash(),
            GeneratorConfig::with_seed(1).scenario_hash()
        );
        assert_ne!(
            GeneratorConfig::with_seed(1).scenario_hash(),
            GeneratorConfig::high_resolution(1).scenario_hash()
        );
    }

    #[test]
    fn presets_ordered_by_resolution() {
        let c = GeneratorConfig::coarse(1);
        let d = GeneratorConfig::with_seed(1);
        let h = GeneratorConfig::high_resolution(1);
        assert!(c.flows_per_gbps < d.flows_per_gbps);
        assert!(d.flows_per_gbps < h.flows_per_gbps);
        assert_eq!(c.seed, h.seed);
    }
}
