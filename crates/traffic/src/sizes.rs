//! Flow size and duration distributions.
//!
//! Internet flow sizes are famously heavy-tailed (a few elephants carry
//! most bytes, many mice carry few). The generator draws per-flow weights
//! from a bounded Pareto and normalizes them to hit the hour's expected
//! byte total exactly, so figure-level volumes are noise-free while
//! per-flow statistics stay realistic.

use rand::Rng;

/// Pareto shape parameter for flow-size weights. α ≈ 1.2 reproduces the
/// classic elephants-and-mice skew without divergent variance in samples.
pub const SIZE_ALPHA: f64 = 1.2;

/// Draw a bounded Pareto(α) variate in `[1, cap]` by inverse transform.
pub fn bounded_pareto<R: Rng + ?Sized>(rng: &mut R, alpha: f64, cap: f64) -> f64 {
    let u: f64 = rng.gen_range(0.0..1.0);
    // Inverse CDF of Pareto with x_m = 1, truncated at cap.
    let raw = (1.0 - u * (1.0 - cap.powf(-alpha))).powf(-1.0 / alpha);
    raw.min(cap)
}

/// Split `total_bytes` across `n` flows with heavy-tailed proportions.
/// The sizes sum to exactly `total_bytes` (remainder goes to the largest
/// flow). Every flow gets at least 1 byte when `total_bytes >= n`.
pub fn split_bytes<R: Rng + ?Sized>(rng: &mut R, total_bytes: u64, n: usize) -> Vec<u64> {
    assert!(n > 0, "cannot split across zero flows");
    if n == 1 {
        return vec![total_bytes];
    }
    let weights: Vec<f64> = (0..n)
        .map(|_| bounded_pareto(rng, SIZE_ALPHA, 10_000.0))
        .collect();
    let sum: f64 = weights.iter().sum();
    let mut sizes: Vec<u64> = weights
        .iter()
        .map(|w| ((w / sum) * total_bytes as f64) as u64)
        .collect();
    let assigned: u64 = sizes.iter().sum();
    let remainder = total_bytes - assigned;
    // Give the remainder to the biggest flow to keep the tail heavy.
    if let Some(max) = sizes.iter_mut().max() {
        *max += remainder;
    }
    sizes
}

/// Packets for a flow of `bytes` bytes: MTU-ish mean packet size with some
/// spread, at least 1 packet for non-empty flows.
pub fn packets_for<R: Rng + ?Sized>(rng: &mut R, bytes: u64) -> u64 {
    if bytes == 0 {
        return 0;
    }
    let mean_pkt = rng.gen_range(400.0..1400.0);
    ((bytes as f64 / mean_pkt).ceil() as u64).max(1)
}

/// Flow duration in seconds: log-uniform over [1, cap], so short flows
/// dominate but long-lived tunnels appear.
pub fn duration_secs<R: Rng + ?Sized>(rng: &mut R, cap_secs: u64) -> u64 {
    let cap = cap_secs.max(1) as f64;
    let u: f64 = rng.gen_range(0.0..1.0);
    cap.powf(u) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn split_is_exact() {
        let mut rng = StdRng::seed_from_u64(1);
        for n in [1usize, 2, 7, 100] {
            for total in [0u64, 5, 1_000, 123_456_789] {
                let sizes = split_bytes(&mut rng, total, n);
                assert_eq!(sizes.len(), n);
                assert_eq!(sizes.iter().sum::<u64>(), total, "n={n} total={total}");
            }
        }
    }

    #[test]
    fn split_is_heavy_tailed() {
        let mut rng = StdRng::seed_from_u64(2);
        let sizes = split_bytes(&mut rng, 1_000_000_000, 1_000);
        let mut sorted = sizes.clone();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        let top10: u64 = sorted.iter().take(100).sum(); // top 10%
        let total: u64 = sorted.iter().sum();
        assert!(
            top10 as f64 > 0.4 * total as f64,
            "top decile carries {:.2} of bytes — not heavy-tailed",
            top10 as f64 / total as f64
        );
    }

    #[test]
    fn pareto_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x = bounded_pareto(&mut rng, SIZE_ALPHA, 100.0);
            assert!((1.0..=100.0).contains(&x), "out of bounds: {x}");
        }
    }

    #[test]
    fn packets_plausible() {
        let mut rng = StdRng::seed_from_u64(4);
        assert_eq!(packets_for(&mut rng, 0), 0);
        for bytes in [1u64, 1_500, 1_000_000] {
            let p = packets_for(&mut rng, bytes);
            assert!(p >= 1);
            assert!(
                p <= bytes.max(1),
                "more packets than bytes: {p} for {bytes}"
            );
        }
    }

    #[test]
    fn duration_bounds() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..1_000 {
            let d = duration_secs(&mut rng, 3_600);
            assert!(d <= 3_600);
        }
        // Degenerate cap.
        assert_eq!(duration_secs(&mut rng, 0), 1);
    }

    #[test]
    fn short_flows_dominate_durations() {
        let mut rng = StdRng::seed_from_u64(6);
        let short = (0..10_000)
            .filter(|_| duration_secs(&mut rng, 3_600) < 60)
            .count();
        assert!(short > 4_000, "only {short} short flows of 10000");
    }
}
