//! Shared generation plan: deduplicated trace cells across demands.
//!
//! The figure drivers overlap heavily in the trace slices they consume —
//! Fig. 1/2 alone cover 120+ days that Figs. 3–10 re-cover week by week.
//! A [`TracePlan`] collects every requested `(stream, window)` demand,
//! merges the overlaps, and enumerates each distinct generation cell
//! exactly once. A [`TraceEmitter`] then materializes any cell on demand;
//! because every cell is independently seeded, the deduplicated enumeration
//! is bit-identical to per-figure regeneration.

use crate::config::GeneratorConfig;
use crate::edu_gen::EduGenerator;
use crate::generate::TrafficGenerator;
use lockdown_dns::corpus::Corpus;
use lockdown_flow::record::FlowRecord;
use lockdown_flow::time::Date;
use lockdown_scenario::measures::ScenarioSpec;
use lockdown_topology::registry::Registry;
use lockdown_topology::vantage::VantagePoint;
use std::collections::{BTreeMap, BTreeSet};

/// One of the generator's independent flow streams.
///
/// Regular vantage points share one generator; the ISP transit view (§3.4)
/// and the EDU network (§7) are separately modelled streams with their own
/// seeding, so they are distinct cells even on overlapping dates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Stream {
    /// The standard per-vantage-point trace.
    Vantage(VantagePoint),
    /// ISP-CE including transit (per-AS residential + B2B flows).
    IspTransit,
    /// The educational metropolitan network's directional trace.
    Edu,
}

impl Stream {
    /// Short label for stats and reports.
    pub fn label(self) -> &'static str {
        match self {
            Stream::Vantage(vp) => vp.label(),
            Stream::IspTransit => "ISP-CE (transit)",
            Stream::Edu => "EDU (directional)",
        }
    }

    /// Stable small integer identifying this stream on the wire, used to
    /// derive observation-domain ids and per-cell fault seeds in wire mode.
    /// Values are part of the deterministic-output contract: do not reorder.
    pub fn wire_id(self) -> u32 {
        match self {
            Stream::Vantage(vp) => {
                1 + VantagePoint::ALL
                    .iter()
                    .position(|&v| v == vp)
                    .expect("vantage point missing from ALL") as u32
            }
            Stream::IspTransit => 62,
            Stream::Edu => 63,
        }
    }

    /// Inverse of [`Stream::wire_id`]: `None` for ids no stream carries.
    /// Archive manifests persist streams by wire id, so reopening one has
    /// to map the ids back.
    pub fn from_wire_id(id: u32) -> Option<Stream> {
        match id {
            62 => Some(Stream::IspTransit),
            63 => Some(Stream::Edu),
            _ => VantagePoint::ALL
                .get(id.checked_sub(1)? as usize)
                .map(|&vp| Stream::Vantage(vp)),
        }
    }
}

/// Fold `parts` into one stable 64-bit hash (splitmix64 chaining). Not a
/// general hasher — just enough to fingerprint plans, generator
/// configurations and scenario specs for archive-staleness checks, with a
/// fixed algorithm so fingerprints stay comparable across builds.
pub fn fold_hash(parts: impl IntoIterator<Item = u64>) -> u64 {
    let mut acc = 0x243F_6A88_85A3_08D3u64; // pi digits, nothing up the sleeve
    for p in parts {
        let mut z = acc ^ p;
        z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        acc = z ^ (z >> 31);
    }
    acc
}

/// One deduplicated generation cell: a single hour of a single stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Cell {
    /// Which flow stream the cell belongs to.
    pub stream: Stream,
    /// The cell's date.
    pub date: Date,
    /// The cell's hour of day, `0..24`.
    pub hour: u8,
}

/// A consumer of emitted cell batches.
///
/// Implemented for closures so `emit_cell(cell, &mut |c, flows| …)` works.
pub trait FlowSink {
    /// Receive one cell's complete flow batch.
    fn accept(&mut self, cell: Cell, flows: &[FlowRecord]);
}

impl<F: FnMut(Cell, &[FlowRecord])> FlowSink for F {
    fn accept(&mut self, cell: Cell, flows: &[FlowRecord]) {
        self(cell, flows)
    }
}

/// The union of requested `(stream, window)` demands.
///
/// Demands are recorded verbatim (so the dedup ratio can be reported) and
/// merged into per-stream date sets; [`TracePlan::cells`] enumerates each
/// distinct cell exactly once, in a deterministic order (stream, date,
/// hour).
#[derive(Debug, Clone, Default)]
pub struct TracePlan {
    demands: Vec<(Stream, Date, Date)>,
    dates: BTreeMap<Stream, BTreeSet<Date>>,
}

impl TracePlan {
    /// An empty plan.
    pub fn new() -> TracePlan {
        TracePlan::default()
    }

    /// Demand an inclusive date window of one stream.
    pub fn demand(&mut self, stream: Stream, start: Date, end: Date) {
        self.demands.push((stream, start, end));
        let dates = self.dates.entry(stream).or_default();
        for date in start.range_inclusive(end) {
            dates.insert(date);
        }
    }

    /// The raw demands, in insertion order.
    pub fn demands(&self) -> &[(Stream, Date, Date)] {
        &self.demands
    }

    /// Total cells requested across all demands, counting overlap
    /// multiplicity — what per-figure regeneration would materialize.
    pub fn cells_demanded(&self) -> u64 {
        self.demands
            .iter()
            .map(|&(_, start, end)| (start.days_until(end) + 1) as u64 * 24)
            .sum()
    }

    /// Number of distinct cells the plan will generate.
    pub fn cell_count(&self) -> u64 {
        self.dates.values().map(|d| d.len() as u64 * 24).sum()
    }

    /// Whether no demands have been recorded.
    pub fn is_empty(&self) -> bool {
        self.demands.is_empty()
    }

    /// Stable fingerprint of the deduplicated cell set. Two plans hash
    /// equal exactly when they generate the same cells, regardless of how
    /// their demands overlapped; archives record it so a replay knows the
    /// stored segments came from the same plan shape.
    pub fn plan_hash(&self) -> u64 {
        fold_hash(self.dates.iter().flat_map(|(stream, dates)| {
            let id = u64::from(stream.wire_id());
            dates
                .iter()
                .map(move |d| fold_hash([id, d.day_number() as u64]))
        }))
    }

    /// Enumerate every distinct cell exactly once, ordered by
    /// `(stream, date, hour)`.
    pub fn cells(&self) -> Vec<Cell> {
        let mut out = Vec::with_capacity(self.cell_count() as usize);
        for (&stream, dates) in &self.dates {
            for &date in dates {
                for hour in 0..24 {
                    out.push(Cell { stream, date, hour });
                }
            }
        }
        out
    }
}

/// Materializes any [`Cell`] of any stream. Cheap to construct; all
/// methods take `&self`, so one emitter can be shared across worker
/// threads.
#[derive(Debug)]
pub struct TraceEmitter<'a> {
    vantage: TrafficGenerator<'a>,
    edu: EduGenerator<'a>,
}

impl<'a> TraceEmitter<'a> {
    /// Build an emitter over a registry and DNS corpus, calibrated to the
    /// built-in COVID spring-2020 scenario.
    pub fn new(registry: &'a Registry, corpus: &'a Corpus, config: GeneratorConfig) -> Self {
        TraceEmitter {
            vantage: TrafficGenerator::new(registry, corpus, config),
            edu: EduGenerator::new(registry, config),
        }
    }

    /// Build an emitter whose demand and EDU models interpret `spec`
    /// instead of the built-in calibration. With
    /// [`ScenarioSpec::covid_spring_2020`] this is byte-identical to
    /// [`TraceEmitter::new`].
    pub fn with_scenario(
        registry: &'a Registry,
        corpus: &'a Corpus,
        config: GeneratorConfig,
        spec: &ScenarioSpec,
    ) -> Self {
        TraceEmitter {
            vantage: TrafficGenerator::with_scenario(registry, corpus, config, spec),
            edu: EduGenerator::with_scenario(registry, config, spec),
        }
    }

    /// The vantage-point generator backing non-EDU streams.
    pub fn generator(&self) -> &TrafficGenerator<'a> {
        &self.vantage
    }

    /// The EDU generator backing [`Stream::Edu`].
    pub fn edu_generator(&self) -> &EduGenerator<'a> {
        &self.edu
    }

    /// Generate one cell's flows into `out` (cleared first).
    pub fn generate_cell(&self, cell: Cell, out: &mut Vec<FlowRecord>) {
        match cell.stream {
            Stream::Edu => {
                out.clear();
                out.extend(self.edu.generate_hour(cell.date, cell.hour));
            }
            _ => self.vantage.generate_cell(cell, out),
        }
    }

    /// Generate one cell and hand the batch to a sink.
    pub fn emit_cell(&self, cell: Cell, sink: &mut dyn FlowSink) {
        let mut buf = Vec::new();
        self.generate_cell(cell, &mut buf);
        sink.accept(cell, &buf);
    }

    /// Emit every distinct cell of a plan, reusing one buffer.
    pub fn emit_plan(&self, plan: &TracePlan, sink: &mut dyn FlowSink) {
        let mut buf = Vec::new();
        for cell in plan.cells() {
            self.generate_cell(cell, &mut buf);
            sink.accept(cell, &buf);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lockdown_dns::corpus::synthesize;

    fn plan_basic() -> TracePlan {
        let mut plan = TracePlan::new();
        plan.demand(
            Stream::Vantage(VantagePoint::IspCe),
            Date::new(2020, 2, 1),
            Date::new(2020, 2, 10),
        );
        plan.demand(
            Stream::Vantage(VantagePoint::IspCe),
            Date::new(2020, 2, 5),
            Date::new(2020, 2, 14),
        );
        plan
    }

    #[test]
    fn overlapping_demands_dedupe() {
        let plan = plan_basic();
        assert_eq!(plan.cells_demanded(), 20 * 24);
        assert_eq!(plan.cell_count(), 14 * 24);
        let cells = plan.cells();
        assert_eq!(cells.len(), 14 * 24);
        // No duplicates, sorted order.
        let mut sorted = cells.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted, cells);
    }

    #[test]
    fn wire_id_roundtrips_and_rejects_unknown() {
        for stream in VantagePoint::ALL
            .into_iter()
            .map(Stream::Vantage)
            .chain([Stream::IspTransit, Stream::Edu])
        {
            assert_eq!(Stream::from_wire_id(stream.wire_id()), Some(stream));
        }
        assert_eq!(Stream::from_wire_id(0), None);
        assert_eq!(Stream::from_wire_id(40), None);
        assert_eq!(Stream::from_wire_id(u32::MAX), None);
    }

    #[test]
    fn plan_hash_tracks_the_cell_set_not_the_demands() {
        let a = plan_basic();
        // A differently-overlapped route to the same cell set.
        let mut b = TracePlan::new();
        b.demand(
            Stream::Vantage(VantagePoint::IspCe),
            Date::new(2020, 2, 1),
            Date::new(2020, 2, 14),
        );
        b.demand(
            Stream::Vantage(VantagePoint::IspCe),
            Date::new(2020, 2, 3),
            Date::new(2020, 2, 3),
        );
        assert_eq!(a.plan_hash(), b.plan_hash());
        // One extra day or a different stream changes the fingerprint.
        let mut c = plan_basic();
        c.demand(
            Stream::Vantage(VantagePoint::IspCe),
            Date::new(2020, 2, 15),
            Date::new(2020, 2, 15),
        );
        assert_ne!(a.plan_hash(), c.plan_hash());
        let mut d = TracePlan::new();
        d.demand(Stream::Edu, Date::new(2020, 2, 1), Date::new(2020, 2, 14));
        assert_ne!(a.plan_hash(), d.plan_hash());
    }

    #[test]
    fn distinct_streams_do_not_merge() {
        let mut plan = TracePlan::new();
        let d = Date::new(2020, 3, 1);
        plan.demand(Stream::Vantage(VantagePoint::IspCe), d, d);
        plan.demand(Stream::IspTransit, d, d);
        plan.demand(Stream::Edu, d, d);
        assert_eq!(plan.cell_count(), 3 * 24);
    }

    #[test]
    fn emitter_matches_standalone_generators() {
        let registry = Registry::synthesize();
        let corpus = synthesize(&registry, 7);
        let config = GeneratorConfig::coarse(11);
        let emitter = TraceEmitter::new(&registry, &corpus, config);
        let generator = TrafficGenerator::new(&registry, &corpus, config);
        let edu = EduGenerator::new(&registry, config);
        let date = Date::new(2020, 3, 2);

        let mut buf = Vec::new();
        emitter.generate_cell(
            Cell {
                stream: Stream::Vantage(VantagePoint::IxpCe),
                date,
                hour: 9,
            },
            &mut buf,
        );
        assert_eq!(buf, generator.generate_hour(VantagePoint::IxpCe, date, 9));

        emitter.generate_cell(
            Cell {
                stream: Stream::IspTransit,
                date,
                hour: 9,
            },
            &mut buf,
        );
        assert_eq!(buf, generator.generate_isp_transit_hour(date, 9));

        emitter.generate_cell(
            Cell {
                stream: Stream::Edu,
                date,
                hour: 9,
            },
            &mut buf,
        );
        assert_eq!(buf, edu.generate_hour(date, 9));
    }

    #[test]
    fn emit_plan_visits_each_cell_once() {
        let registry = Registry::synthesize();
        let corpus = synthesize(&registry, 7);
        let emitter = TraceEmitter::new(&registry, &corpus, GeneratorConfig::coarse(3));
        let mut plan = TracePlan::new();
        let d = Date::new(2020, 2, 3);
        plan.demand(Stream::Vantage(VantagePoint::IxpSe), d, d);
        plan.demand(Stream::Vantage(VantagePoint::IxpSe), d, d);
        let mut seen = Vec::new();
        emitter.emit_plan(&plan, &mut |cell: Cell, _flows: &[FlowRecord]| {
            seen.push(cell);
        });
        assert_eq!(seen.len(), 24);
        assert_eq!(plan.cells(), seen);
    }
}
