//! Parallel trace generation.
//!
//! Generation cells are independently seeded (see [`crate::generate`]), so
//! a date range can be fanned out across threads and merged with *no*
//! change in output — the merge is deterministic because each worker owns
//! a disjoint, ordered chunk of days. Per the session's networking guides,
//! CPU-bound fan-out uses scoped threads (crossbeam), not async.

use crate::generate::TrafficGenerator;
use crate::plan::{Stream, TracePlan};
use lockdown_flow::record::FlowRecord;
use lockdown_flow::time::Date;
use lockdown_topology::vantage::VantagePoint;

/// Default worker count: physical parallelism, capped to keep small
/// sweeps from paying spawn overhead.
pub fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(16)
}

impl TrafficGenerator<'_> {
    /// Fold every hour of `[start, end]` for a vantage point, in parallel
    /// over days, combining per-worker accumulators at the end.
    ///
    /// `fold` consumes one hourly flow batch into the worker-local
    /// accumulator; `merge` combines two accumulators. The result equals
    /// the sequential fold as long as `merge` is commutative over disjoint
    /// date ranges (byte sums, histograms and time-keyed maps all are).
    #[allow(clippy::too_many_arguments)] // (range, workers, fold triple) is the natural shape
    pub fn fold_hours_parallel<Acc, Fold, Merge>(
        &self,
        vp: VantagePoint,
        start: Date,
        end: Date,
        workers: usize,
        make_acc: impl Fn() -> Acc + Sync,
        fold: Fold,
        merge: Merge,
    ) -> Acc
    where
        Acc: Send,
        Fold: Fn(&mut Acc, Date, u8, &[FlowRecord]) + Sync,
        Merge: Fn(Acc, Acc) -> Acc,
    {
        let mut plan = TracePlan::new();
        plan.demand(Stream::Vantage(vp), start, end);
        let cells = plan.cells();
        let total_days = start.days_until(end) + 1;
        let workers = workers.max(1).min(total_days.max(1) as usize);
        if workers == 1 {
            let mut acc = make_acc();
            let mut buf = Vec::new();
            for cell in &cells {
                self.generate_cell(*cell, &mut buf);
                fold(&mut acc, cell.date, cell.hour, &buf);
            }
            return acc;
        }
        let chunk = cells.len().div_ceil(workers);
        let mut results: Vec<Option<Acc>> = Vec::new();
        for _ in 0..workers {
            results.push(None);
        }
        crossbeam::thread::scope(|scope| {
            for (slot, chunk_cells) in results.iter_mut().zip(cells.chunks(chunk)) {
                let fold = &fold;
                let make_acc = &make_acc;
                scope.spawn(move |_| {
                    let mut acc = make_acc();
                    let mut buf = Vec::new();
                    for cell in chunk_cells {
                        self.generate_cell(*cell, &mut buf);
                        fold(&mut acc, cell.date, cell.hour, &buf);
                    }
                    *slot = Some(acc);
                });
            }
        })
        .expect("generation workers do not panic");
        results
            .into_iter()
            .flatten()
            .reduce(merge)
            .unwrap_or_else(make_acc)
    }

    /// Parallel day generation: all flows of `[start, end]`, identical to
    /// concatenating sequential [`TrafficGenerator::generate_day`] calls.
    pub fn generate_days_parallel(
        &self,
        vp: VantagePoint,
        start: Date,
        end: Date,
        workers: usize,
    ) -> Vec<FlowRecord> {
        // Per-day vectors keyed by day index keep the merge order-stable.
        let total_days = (start.days_until(end) + 1) as usize;
        let mut per_day: Vec<Vec<FlowRecord>> = (0..total_days).map(|_| Vec::new()).collect();
        let workers = workers.max(1).min(total_days.max(1));
        crossbeam::thread::scope(|scope| {
            for (w, chunk) in per_day
                .chunks_mut((total_days).div_ceil(workers))
                .enumerate()
            {
                let chunk_days = chunk.len();
                let first = start.add_days((w * total_days.div_ceil(workers)) as i64);
                scope.spawn(move |_| {
                    for (i, slot) in chunk.iter_mut().enumerate().take(chunk_days) {
                        *slot = self.generate_day(vp, first.add_days(i as i64));
                    }
                });
            }
        })
        .expect("generation workers do not panic");
        per_day.into_iter().flatten().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GeneratorConfig;
    use lockdown_dns::corpus::synthesize;
    use lockdown_topology::registry::Registry;

    fn setup() -> (Registry, lockdown_dns::corpus::Corpus) {
        let r = Registry::synthesize();
        let c = synthesize(&r, 7);
        (r, c)
    }

    #[test]
    fn parallel_equals_sequential_generation() {
        let (r, c) = setup();
        let g = TrafficGenerator::new(&r, &c, GeneratorConfig::coarse(3));
        let start = Date::new(2020, 3, 20);
        let end = Date::new(2020, 3, 27);
        let mut sequential = Vec::new();
        for d in start.range_inclusive(end) {
            sequential.extend(g.generate_day(VantagePoint::IxpSe, d));
        }
        for workers in [1usize, 2, 3, 8, 32] {
            let parallel = g.generate_days_parallel(VantagePoint::IxpSe, start, end, workers);
            assert_eq!(parallel, sequential, "workers={workers}");
        }
    }

    #[test]
    fn parallel_fold_equals_sequential_fold() {
        let (r, c) = setup();
        let g = TrafficGenerator::new(&r, &c, GeneratorConfig::coarse(5));
        let start = Date::new(2020, 2, 1);
        let end = Date::new(2020, 2, 14);
        let mut seq_bytes = 0u64;
        g.for_each_hour(VantagePoint::IspCe, start, end, |_, _, flows| {
            seq_bytes += flows.iter().map(|f| f.bytes).sum::<u64>();
        });
        let par_bytes = g.fold_hours_parallel(
            VantagePoint::IspCe,
            start,
            end,
            4,
            || 0u64,
            |acc, _, _, flows| *acc += flows.iter().map(|f| f.bytes).sum::<u64>(),
            |a, b| a + b,
        );
        assert_eq!(par_bytes, seq_bytes);
    }

    #[test]
    fn single_day_range_works() {
        let (r, c) = setup();
        let g = TrafficGenerator::new(&r, &c, GeneratorConfig::coarse(5));
        let d = Date::new(2020, 4, 1);
        let a = g.generate_days_parallel(VantagePoint::MobileCe, d, d, 8);
        let b = g.generate_day(VantagePoint::MobileCe, d);
        assert_eq!(a, b);
    }
}
