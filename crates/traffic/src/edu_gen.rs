//! EDU vantage-point generation (§7).
//!
//! The educational network's traffic is structurally different from the
//! other vantage points — directionality is the story — so it gets its own
//! generator driven by [`EduModel`]: per-class connection counts (Fig. 12),
//! ingress/egress volume (Fig. 11), overseas-student night access, and the
//! 39% of flows whose direction cannot be determined (§7).

use crate::config::GeneratorConfig;
use crate::sizes;
use lockdown_flow::protocol::{IpProtocol, TcpFlags};
use lockdown_flow::record::{Direction, FlowKey, FlowRecord};
use lockdown_flow::time::Date;
use lockdown_scenario::diurnal::{shape, DiurnalProfile};
use lockdown_scenario::edu::{EduClass, EduModel};
use lockdown_scenario::measures::ScenarioSpec;
use lockdown_topology::asn::{AsCategory, Asn, Region};
use lockdown_topology::registry::{Registry, EDU_ASN, SPOTIFY_ASN};
use rand::prelude::*;
use rand::rngs::StdRng;
use std::net::Ipv4Addr;

/// Scale factor from modelled connection counts to generated records.
/// Fig. 12 plots *relative* growth, so the factor cancels; it only trades
/// statistical smoothness against cost.
pub const CONN_SCALE: f64 = 1.0 / 1_500.0;

/// Port signature for one EDU traffic class (protocol, server port).
fn class_signature(class: EduClass, rng: &mut StdRng) -> (IpProtocol, u16) {
    match class {
        EduClass::WebIn | EduClass::WebOut | EduClass::HypergiantWebOut => {
            (IpProtocol::Tcp, if rng.gen_bool(0.85) { 443 } else { 80 })
        }
        EduClass::QuicOut => (IpProtocol::Udp, 443),
        EduClass::EmailIn => (
            IpProtocol::Tcp,
            *[993u16, 25, 587, 143, 465, 995, 110]
                .choose(rng)
                .expect("non-empty"),
        ),
        EduClass::VpnIn => {
            if rng.gen_bool(0.15) {
                // Some institutional VPN rides ESP (Appendix B lists it).
                (IpProtocol::Esp, 0)
            } else {
                (
                    IpProtocol::Udp,
                    *[4500u16, 500, 1194].choose(rng).expect("non-empty"),
                )
            }
        }
        EduClass::RemoteDesktopIn => (
            IpProtocol::Tcp,
            *[3389u16, 1494, 5938].choose(rng).expect("non-empty"),
        ),
        EduClass::SshIn => (IpProtocol::Tcp, 22),
        EduClass::PushNotifOut => (
            IpProtocol::Tcp,
            *[5223u16, 5228].choose(rng).expect("non-empty"),
        ),
        EduClass::SpotifyOut => (IpProtocol::Tcp, 4070),
    }
}

/// The EDU trace generator.
#[derive(Debug)]
pub struct EduGenerator<'a> {
    registry: &'a Registry,
    model: EduModel,
    config: GeneratorConfig,
    national_eyeballs: Vec<Asn>,
    overseas_eyeballs: Vec<Asn>,
    hypergiants: Vec<Asn>,
    web_servers: Vec<Asn>,
}

impl<'a> EduGenerator<'a> {
    /// Build an EDU generator over the shared registry, calibrated to the
    /// built-in COVID spring-2020 scenario.
    pub fn new(registry: &'a Registry, config: GeneratorConfig) -> EduGenerator<'a> {
        EduGenerator::with_model(registry, config, EduModel::new())
    }

    /// Build an EDU generator whose model interprets `spec` instead of
    /// the built-in calibration. With
    /// [`ScenarioSpec::covid_spring_2020`] this is byte-identical to
    /// [`EduGenerator::new`].
    pub fn with_scenario(
        registry: &'a Registry,
        config: GeneratorConfig,
        spec: &ScenarioSpec,
    ) -> EduGenerator<'a> {
        EduGenerator::with_model(registry, config, EduModel::from_spec(spec))
    }

    fn with_model(
        registry: &'a Registry,
        config: GeneratorConfig,
        model: EduModel,
    ) -> EduGenerator<'a> {
        let eyeballs = |region: Region| -> Vec<Asn> {
            registry
                .in_region(region)
                .filter(|a| a.category == AsCategory::EyeballIsp)
                .map(|a| a.asn)
                .collect()
        };
        EduGenerator {
            registry,
            model,
            config,
            national_eyeballs: eyeballs(Region::SouthernEurope),
            // The paper's overseas students connect from Latin America and
            // North America; the US region stands in for both.
            overseas_eyeballs: eyeballs(Region::UsEast),
            hypergiants: registry
                .in_category(AsCategory::Hypergiant)
                .map(|a| a.asn)
                .collect(),
            web_servers: registry
                .in_category(AsCategory::Cdn)
                .chain(registry.in_category(AsCategory::CloudProvider))
                .map(|a| a.asn)
                .collect(),
        }
    }

    /// The behavioural model in use.
    pub fn model(&self) -> &EduModel {
        &self.model
    }

    /// Hourly weight (mean 1.0 across the day) for a class's connections.
    fn hour_weight(&self, class: EduClass, date: Date, hour: u8) -> f64 {
        let remote = self.model.remote_activity(date);
        if class.is_incoming() {
            // Incoming shifts from business hours toward a remote mix with
            // a visible overseas night component (§7: Latin-American users
            // peak at 3–4 am).
            let pre = shape(DiurnalProfile::BusinessHours, hour);
            let post = 0.65 * shape(DiurnalProfile::BusinessHours, hour)
                + 0.15 * shape(DiurnalProfile::ResidentialLockdown, hour)
                + 0.20 * shape(DiurnalProfile::OverseasNight, hour);
            (1.0 - remote) * pre + remote * post
        } else {
            // Outgoing connections track people on campus.
            shape(DiurnalProfile::Campus, hour)
        }
    }

    /// Cell RNG (per date/hour).
    fn cell_rng(&self, date: Date, hour: u8, salt: u64) -> StdRng {
        let mut z = self.config.seed ^ salt.wrapping_mul(0xA24B_AED4_963E_E407);
        z ^= (date.day_number() as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        z = z.rotate_left(17).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z ^= u64::from(hour) << 7;
        StdRng::seed_from_u64(z)
    }

    /// Generate one hour of EDU traffic.
    pub fn generate_hour(&self, date: Date, hour: u8) -> Vec<FlowRecord> {
        let mut out = Vec::new();
        let (ingress_gbps, egress_gbps) = self.model.volume_gbps(date, hour);

        // Per-class connection records.
        let mut n_in = 0usize;
        let mut n_out = 0usize;
        for class in EduClass::ALL {
            let daily = self.model.daily_connections(class, date);
            let weight = self.hour_weight(class, date, hour);
            let mut rng = self.cell_rng(date, hour, class as u64 + 1);
            let raw = daily * CONN_SCALE * weight / 24.0;
            let mut n = raw.floor() as usize;
            if rng.gen_bool((raw - n as f64).clamp(0.0, 1.0)) {
                n += 1;
            }
            if n == 0 {
                continue;
            }
            if class.is_incoming() {
                n_in += n;
            } else {
                n_out += n;
            }
            self.emit_class(class, n, date, hour, &mut rng, &mut out);
        }

        // Direction-unknown chaff: §7 cannot determine directionality for
        // 39% of flows. unknown / (unknown + known) = 0.39.
        let known = n_in + n_out;
        let n_unknown = ((known as f64) * 0.39 / 0.61).round() as usize;
        let mut rng = self.cell_rng(date, hour, 0xFF);
        self.emit_unknown(n_unknown, date, hour, &mut rng, &mut out);

        // Attach volume: split the hour's ingress/egress bytes over the
        // flows of each direction so Fig. 11 recovers the volume story.
        let in_bytes = (ingress_gbps * crate::generate::BYTES_PER_GBPS_HOUR) as u64;
        let eg_bytes = (egress_gbps * crate::generate::BYTES_PER_GBPS_HOUR) as u64;
        let mut rng = self.cell_rng(date, hour, 0xAB);
        distribute_bytes(&mut out, Direction::Ingress, in_bytes, &mut rng);
        distribute_bytes(&mut out, Direction::Egress, eg_bytes, &mut rng);
        out
    }

    /// Emit `n` connection records of one class.
    fn emit_class(
        &self,
        class: EduClass,
        n: usize,
        date: Date,
        hour: u8,
        rng: &mut StdRng,
        out: &mut Vec<FlowRecord>,
    ) {
        let hour_start = date.at_hour(hour);
        let remote = self.model.remote_activity(date);
        // Client origin correlates with the hour: overseas students (the
        // §7 Latin-American cohort) dominate the small hours once teaching
        // moves online, because of the time-zone offset.
        let w_dom = 0.65 * shape(DiurnalProfile::BusinessHours, hour)
            + 0.15 * shape(DiurnalProfile::ResidentialLockdown, hour);
        let w_ov = 0.20 * shape(DiurnalProfile::OverseasNight, hour);
        let overseas_now = w_ov / (w_dom + w_ov);
        for _ in 0..n {
            let (protocol, server_port) = class_signature(class, rng);
            let start = hour_start.add_secs(rng.gen_range(0..3_600));
            let flags = if protocol == IpProtocol::Tcp {
                TcpFlags::complete_connection()
            } else {
                TcpFlags::default()
            };
            let record = if class.is_incoming() {
                // External client → EDU server.
                let overseas_p = 0.05 * (1.0 - remote) + remote * overseas_now;
                let ext_asn = if rng.gen_bool(overseas_p) {
                    self.overseas_eyeballs[rng.gen_range(0..self.overseas_eyeballs.len())]
                } else {
                    self.national_eyeballs[rng.gen_range(0..self.national_eyeballs.len())]
                };
                let ext_ip = self
                    .registry
                    .host_addr(ext_asn, 1_000 + rng.gen_range(0..20_000))
                    .expect("eyeball prefixes");
                let edu_ip = self.edu_server_ip(class, rng);
                FlowRecord::builder(
                    FlowKey {
                        src_addr: ext_ip,
                        dst_addr: edu_ip,
                        src_port: if protocol.has_ports() {
                            rng.gen_range(32_768..61_000)
                        } else {
                            0
                        },
                        dst_port: if protocol.has_ports() { server_port } else { 0 },
                        protocol,
                    },
                    start,
                )
                .asns(ext_asn.0, EDU_ASN.0)
                .direction(Direction::Ingress)
            } else {
                // Campus client → external service.
                let presence = self.model.campus_presence(date);
                let pool = ((8_000.0 * presence) as u64).max(50);
                let campus_ip = self
                    .registry
                    .host_addr(EDU_ASN, 1_000 + rng.gen_range(0..pool))
                    .expect("EDU prefixes");
                let dst_asn = match class {
                    EduClass::SpotifyOut => SPOTIFY_ASN,
                    EduClass::PushNotifOut | EduClass::HypergiantWebOut | EduClass::QuicOut => {
                        self.hypergiants[rng.gen_range(0..self.hypergiants.len())]
                    }
                    _ => {
                        if rng.gen_bool(0.5) {
                            self.hypergiants[rng.gen_range(0..self.hypergiants.len())]
                        } else {
                            self.web_servers[rng.gen_range(0..self.web_servers.len())]
                        }
                    }
                };
                let dst_ip = self
                    .registry
                    .host_addr(dst_asn, rng.gen_range(0..64))
                    .expect("server prefixes");
                FlowRecord::builder(
                    FlowKey {
                        src_addr: campus_ip,
                        dst_addr: dst_ip,
                        src_port: if protocol.has_ports() {
                            rng.gen_range(32_768..61_000)
                        } else {
                            0
                        },
                        dst_port: if protocol.has_ports() { server_port } else { 0 },
                        protocol,
                    },
                    start,
                )
                .asns(EDU_ASN.0, dst_asn.0)
                .direction(Direction::Egress)
            };
            out.push(
                record
                    .end(start.add_secs(sizes::duration_secs(rng, 300)))
                    .bytes(2_000) // placeholder; volume attached afterwards
                    .packets(6)
                    .tcp_flags(flags)
                    .build(),
            );
        }
    }

    /// Emit flows whose direction the §7 pipeline cannot determine:
    /// P2P-like traffic on unregistered high ports, marginal protocols.
    fn emit_unknown(
        &self,
        n: usize,
        date: Date,
        hour: u8,
        rng: &mut StdRng,
        out: &mut Vec<FlowRecord>,
    ) {
        let hour_start = date.at_hour(hour);
        for _ in 0..n {
            let start = hour_start.add_secs(rng.gen_range(0..3_600));
            let protocol = if rng.gen_bool(0.8) {
                if rng.gen_bool(0.5) {
                    IpProtocol::Udp
                } else {
                    IpProtocol::Tcp
                }
            } else {
                IpProtocol::Other(rng.gen_range(90..130))
            };
            let edu_ip = self
                .registry
                .host_addr(EDU_ASN, 1_000 + rng.gen_range(0..8_000))
                .expect("EDU prefixes");
            let peer = Ipv4Addr::from(rng.gen_range(0x0B00_0000u32..0x5F00_0000));
            let (src, dst) = if rng.gen_bool(0.5) {
                (edu_ip, peer)
            } else {
                (peer, edu_ip)
            };
            out.push(
                FlowRecord::builder(
                    FlowKey {
                        src_addr: src,
                        dst_addr: dst,
                        src_port: if protocol.has_ports() {
                            rng.gen_range(20_000..65_000)
                        } else {
                            0
                        },
                        dst_port: if protocol.has_ports() {
                            rng.gen_range(20_000..65_000)
                        } else {
                            0
                        },
                        protocol,
                    },
                    start,
                )
                .end(start.add_secs(sizes::duration_secs(rng, 600)))
                .bytes(rng.gen_range(500..50_000))
                .packets(rng.gen_range(2..50))
                .direction(Direction::Unknown)
                .build(),
            );
        }
    }

    /// A stable EDU-side server address for a class, spread across the 16
    /// institutions.
    fn edu_server_ip(&self, class: EduClass, rng: &mut StdRng) -> Ipv4Addr {
        let institution = rng.gen_range(0..lockdown_topology::registry::EDU_INSTITUTIONS as u64);
        let service = class as u64;
        self.registry
            .host_addr(EDU_ASN, institution * 8 + service % 8)
            .expect("EDU prefixes")
    }
}

/// Re-split `total_bytes` across all flows of one direction, heavy-tailed.
fn distribute_bytes(
    flows: &mut [FlowRecord],
    direction: Direction,
    total_bytes: u64,
    rng: &mut StdRng,
) {
    let idx: Vec<usize> = flows
        .iter()
        .enumerate()
        .filter(|(_, f)| f.direction == direction)
        .map(|(i, _)| i)
        .collect();
    if idx.is_empty() {
        return;
    }
    let sizes = sizes::split_bytes(rng, total_bytes, idx.len());
    for (slot, bytes) in idx.into_iter().zip(sizes) {
        flows[slot].bytes = bytes.max(1);
        flows[slot].packets = (bytes / 1_000).max(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gen() -> (Registry, GeneratorConfig) {
        (Registry::synthesize(), GeneratorConfig::with_seed(11))
    }

    fn day_flows(g: &EduGenerator<'_>, date: Date) -> Vec<FlowRecord> {
        (0..24).flat_map(|h| g.generate_hour(date, h)).collect()
    }

    #[test]
    fn unknown_direction_share_is_39_percent() {
        let (r, cfg) = gen();
        let g = EduGenerator::new(&r, cfg);
        let flows = day_flows(&g, Date::new(2020, 3, 3));
        let unknown = flows
            .iter()
            .filter(|f| f.direction == Direction::Unknown)
            .count();
        let share = unknown as f64 / flows.len() as f64;
        assert!(
            (0.33..0.45).contains(&share),
            "unknown-direction share = {share:.3}"
        );
    }

    #[test]
    fn volume_matches_model() {
        let (r, cfg) = gen();
        let g = EduGenerator::new(&r, cfg);
        let date = Date::new(2020, 3, 3);
        let flows = g.generate_hour(date, 11);
        let in_bytes: u64 = flows
            .iter()
            .filter(|f| f.direction == Direction::Ingress)
            .map(|f| f.bytes)
            .sum();
        let (in_gbps, _) = g.model().volume_gbps(date, 11);
        let expected = in_gbps * crate::generate::BYTES_PER_GBPS_HOUR;
        let err = (in_bytes as f64 - expected).abs() / expected;
        assert!(err < 0.01, "ingress volume error {err}");
    }

    #[test]
    fn incoming_connections_double_after_lockdown() {
        let (r, cfg) = gen();
        let g = EduGenerator::new(&r, cfg);
        let count_in = |d: Date| {
            day_flows(&g, d)
                .iter()
                .filter(|f| f.direction == Direction::Ingress)
                .count() as f64
        };
        let base = count_in(Date::new(2020, 3, 4));
        let online = count_in(Date::new(2020, 4, 22));
        let growth = online / base;
        assert!((1.4..2.8).contains(&growth), "incoming growth {growth:.2}");
    }

    #[test]
    fn ssh_grows_most_among_incoming() {
        let (r, cfg) = gen();
        let g = EduGenerator::new(&r, cfg);
        let count = |d: Date, port: u16| {
            day_flows(&g, d)
                .iter()
                .filter(|f| f.key.dst_port == port && f.direction == Direction::Ingress)
                .count()
                .max(1) as f64
        };
        let ssh_growth = count(Date::new(2020, 4, 23), 22) / count(Date::new(2020, 2, 27), 22);
        let web_growth = count(Date::new(2020, 4, 23), 443) / count(Date::new(2020, 2, 27), 443);
        assert!(
            ssh_growth > 2.0 * web_growth,
            "SSH ({ssh_growth:.1}×) must outgrow web ({web_growth:.1}×)"
        );
    }

    #[test]
    fn spotify_collapses() {
        let (r, cfg) = gen();
        let g = EduGenerator::new(&r, cfg);
        let count = |d: Date| {
            day_flows(&g, d)
                .iter()
                .filter(|f| f.dst_as == SPOTIFY_ASN.0)
                .count() as f64
        };
        let base = count(Date::new(2020, 2, 27)).max(1.0);
        let online = count(Date::new(2020, 4, 23));
        assert!(
            online / base < 0.45,
            "Spotify outgoing should collapse: {}",
            online / base
        );
    }

    #[test]
    fn overseas_night_connections_appear() {
        let (r, cfg) = gen();
        let g = EduGenerator::new(&r, cfg);
        // 3 am connections from overseas eyeballs, before vs. after.
        let overseas_at_3am = |d: Date| {
            g.generate_hour(d, 3)
                .iter()
                .filter(|f| {
                    f.direction == Direction::Ingress
                        && r.get(Asn(f.src_as))
                            .map(|a| a.region == Region::UsEast)
                            .unwrap_or(false)
                })
                .count()
        };
        let pre: usize = (0..7)
            .map(|w| overseas_at_3am(Date::new(2020, 2, 20).add_days(w)))
            .sum();
        let post: usize = (0..7)
            .map(|w| overseas_at_3am(Date::new(2020, 4, 16).add_days(w)))
            .sum();
        assert!(
            post > pre,
            "overseas night access must rise: {pre} -> {post}"
        );
    }

    #[test]
    fn deterministic() {
        let (r, cfg) = gen();
        let g = EduGenerator::new(&r, cfg);
        let a = g.generate_hour(Date::new(2020, 3, 12), 10);
        let b = g.generate_hour(Date::new(2020, 3, 12), 10);
        assert_eq!(a, b);
    }
}
