//! The core synthetic trace generator.
//!
//! For every `(vantage point, application class, date, hour)` cell the
//! generator asks the demand model for the expected volume, converts it to
//! a flow count via the configured resolution, and materializes flow
//! records with realistic endpoints (AS-attributable addresses, canonical
//! ports, heavy-tailed sizes). Every cell is seeded independently, so any
//! hour of any vantage point regenerates bit-identically in isolation —
//! the property that makes per-figure experiments cheap and parallel.

use crate::config::GeneratorConfig;
use crate::picker::{as_jitter, Picker};
use crate::plan::{Cell, Stream, TracePlan};
use crate::sizes;
use lockdown_dns::corpus::Corpus;
use lockdown_flow::protocol::{IpProtocol, TcpFlags};
use lockdown_flow::record::{Direction, FlowKey, FlowRecord};
use lockdown_flow::time::Date;
use lockdown_scenario::apps::AppClass;
use lockdown_scenario::demand::DemandModel;
use lockdown_scenario::measures::ScenarioSpec;
use lockdown_topology::asn::AsCategory;
use lockdown_topology::registry::{Registry, ISP_CE_ASN};
use lockdown_topology::vantage::{VantageKind, VantagePoint};
use rand::prelude::*;
use rand::rngs::StdRng;

/// Bytes carried by 1 Gbps sustained for one hour.
pub const BYTES_PER_GBPS_HOUR: f64 = 3_600.0 / 8.0 * 1e9;

/// Classes whose two directions carry comparable volume (conferencing,
/// tunnels, interactive protocols) — the generator emits both directions.
fn is_symmetric(app: AppClass) -> bool {
    matches!(
        app,
        AppClass::WebConf
            | AppClass::CollabWork
            | AppClass::Messaging
            | AppClass::VpnUser
            | AppClass::VpnSiteToSite
            | AppClass::VpnTls
            | AppClass::RemoteDesktop
            | AppClass::Ssh
    )
}

/// The trace generator. Cheap to construct; all methods take `&self`.
#[derive(Debug)]
pub struct TrafficGenerator<'a> {
    picker: Picker<'a>,
    demand: DemandModel,
    config: GeneratorConfig,
}

impl<'a> TrafficGenerator<'a> {
    /// Build a generator over a registry and DNS corpus, calibrated to the
    /// built-in COVID spring-2020 scenario.
    pub fn new(registry: &'a Registry, corpus: &'a Corpus, config: GeneratorConfig) -> Self {
        TrafficGenerator {
            picker: Picker::new(registry, corpus),
            demand: DemandModel::new(),
            config,
        }
    }

    /// Build a generator whose demand model interprets `spec` instead of
    /// the built-in calibration. With
    /// [`ScenarioSpec::covid_spring_2020`] this is byte-identical to
    /// [`TrafficGenerator::new`].
    pub fn with_scenario(
        registry: &'a Registry,
        corpus: &'a Corpus,
        config: GeneratorConfig,
        spec: &ScenarioSpec,
    ) -> Self {
        TrafficGenerator {
            picker: Picker::new(registry, corpus),
            demand: DemandModel::from_spec(spec),
            config,
        }
    }

    /// The demand model driving this generator.
    pub fn demand(&self) -> &DemandModel {
        &self.demand
    }

    /// The generator's configuration.
    pub fn config(&self) -> &GeneratorConfig {
        &self.config
    }

    /// Deterministic RNG for one generation cell.
    fn cell_rng(&self, vp: VantagePoint, app: Option<AppClass>, date: Date, hour: u8) -> StdRng {
        let mut z = self.config.seed;
        for part in [
            vp as u64 + 1,
            app.map(|a| a as u64 + 10).unwrap_or(1),
            date.day_number() as u64,
            u64::from(hour),
        ] {
            z = (z ^ part.wrapping_mul(0x9E37_79B9_7F4A_7C15)).rotate_left(23);
            z = z.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        }
        StdRng::seed_from_u64(z)
    }

    /// Generate all flows of one class in one hour, appending to `out`.
    pub fn generate_hour_class(
        &self,
        vp: VantagePoint,
        app: AppClass,
        date: Date,
        hour: u8,
        out: &mut Vec<FlowRecord>,
    ) {
        let volume_gbps = self.demand.volume_gbps(vp, app, date, hour);
        if volume_gbps <= 0.0 {
            return;
        }
        let mut rng = self.cell_rng(vp, Some(app), date, hour);
        let bytes_total = (volume_gbps * BYTES_PER_GBPS_HOUR) as u64;

        // Randomized rounding keeps expected flow counts exact.
        let raw = volume_gbps * self.config.flows_per_gbps;
        let mut n = raw.floor() as usize;
        if rng.gen_bool((raw - n as f64).clamp(0.0, 1.0)) {
            n += 1;
        }
        let n = n.max(self.config.min_flows);

        let user_pool = ((volume_gbps * self.config.users_per_gbps) as u64).max(8);
        let bytes = sizes::split_bytes(&mut rng, bytes_total, n);
        let hour_start = date.at_hour(hour);

        for flow_bytes in bytes {
            let (server_asn, server_ip) = self.picker.server(app, &mut rng);
            let (client_asn, client_ip) = self.picker.client(vp, user_pool, &mut rng);
            let sig = self.picker.port_sig(app, &mut rng);
            let client_port = if sig.protocol.has_ports() {
                rng.gen_range(32_768..61_000)
            } else {
                0
            };
            let server_port = if sig.protocol.has_ports() {
                sig.port
            } else {
                0
            };

            // Downstream (server → client) dominates; symmetric classes
            // flip a fair coin, others send 1 in 8 flows upstream.
            let upstream = if is_symmetric(app) {
                rng.gen_bool(0.5)
            } else {
                rng.gen_bool(0.125)
            };
            let (key, src_as, dst_as) = if upstream {
                (
                    FlowKey {
                        src_addr: client_ip,
                        dst_addr: server_ip,
                        src_port: client_port,
                        dst_port: server_port,
                        protocol: sig.protocol,
                    },
                    client_asn.0,
                    server_asn.0,
                )
            } else {
                (
                    FlowKey {
                        src_addr: server_ip,
                        dst_addr: client_ip,
                        src_port: server_port,
                        dst_port: client_port,
                        protocol: sig.protocol,
                    },
                    server_asn.0,
                    client_asn.0,
                )
            };

            // Direction is relative to the observed network: meaningful at
            // the edge (ISP), not on an IXP fabric.
            let direction = match vp.kind() {
                VantageKind::Isp | VantageKind::Mobile | VantageKind::Edu => {
                    if upstream {
                        Direction::Egress
                    } else {
                        Direction::Ingress
                    }
                }
                _ => Direction::Unknown,
            };

            let start_off = rng.gen_range(0..3_600u64);
            let start = hour_start.add_secs(start_off);
            let dur = sizes::duration_secs(&mut rng, (3_600 - start_off).max(1));
            let flags = if sig.protocol == IpProtocol::Tcp {
                TcpFlags::complete_connection()
            } else {
                TcpFlags::default()
            };
            let packets = sizes::packets_for(&mut rng, flow_bytes);

            out.push(
                FlowRecord::builder(key, start)
                    .end(start.add_secs(dur))
                    .bytes(flow_bytes)
                    .packets(packets)
                    .tcp_flags(flags)
                    .interfaces(1, 2)
                    .asns(src_as, dst_as)
                    .direction(direction)
                    .build(),
            );
        }
    }

    /// Generate one full hour at a vantage point (all classes).
    pub fn generate_hour(&self, vp: VantagePoint, date: Date, hour: u8) -> Vec<FlowRecord> {
        let mut out = Vec::new();
        for app in AppClass::ALL {
            self.generate_hour_class(vp, app, date, hour, &mut out);
        }
        out
    }

    /// Generate one full day (24 hourly batches flattened).
    pub fn generate_day(&self, vp: VantagePoint, date: Date) -> Vec<FlowRecord> {
        let mut out = Vec::new();
        for hour in 0..24 {
            for app in AppClass::ALL {
                self.generate_hour_class(vp, app, date, hour, &mut out);
            }
        }
        out
    }

    /// Generate one plan cell into `out` (cleared first). Handles the
    /// streams this generator owns; [`Stream::Edu`] cells belong to
    /// [`crate::edu_gen::EduGenerator`] and panic here — route them
    /// through [`crate::plan::TraceEmitter`] instead.
    pub fn generate_cell(&self, cell: Cell, out: &mut Vec<FlowRecord>) {
        out.clear();
        match cell.stream {
            Stream::Vantage(vp) => {
                for app in AppClass::ALL {
                    self.generate_hour_class(vp, app, cell.date, cell.hour, out);
                }
            }
            Stream::IspTransit => {
                out.extend(self.generate_isp_transit_hour(cell.date, cell.hour));
            }
            Stream::Edu => panic!("EDU cells are generated by EduGenerator"),
        }
    }

    /// Visit every hour of a date range with a fresh flow batch, without
    /// materializing the whole trace (the Fig. 1/2 sweeps cover 140 days).
    /// Thin wrapper over a single-demand [`TracePlan`].
    pub fn for_each_hour<F>(&self, vp: VantagePoint, start: Date, end: Date, mut f: F)
    where
        F: FnMut(Date, u8, &[FlowRecord]),
    {
        let mut plan = TracePlan::new();
        plan.demand(Stream::Vantage(vp), start, end);
        let mut buf = Vec::new();
        for cell in plan.cells() {
            self.generate_cell(cell, &mut buf);
            f(cell.date, cell.hour, &buf);
        }
    }

    /// Generate the ISP-CE's *transit* view for one hour: per-AS traffic
    /// including both residential-facing and business-to-business flows.
    ///
    /// §3.4 uses "the ISP in Central Europe dataset, including its transit
    /// traffic" to classify ASes by workday/weekend ratio and compare total
    /// vs. residential volume shifts (Fig. 6). B2B volume declines under
    /// lockdown (offices empty) while the residential-facing share grows —
    /// with heavy per-AS idiosyncrasy, giving Fig. 6 its quadrant scatter.
    pub fn generate_isp_transit_hour(&self, date: Date, hour: u8) -> Vec<FlowRecord> {
        let mut rng = self.cell_rng(VantagePoint::IspCe, None, date, hour);
        let mut out = Vec::new();
        let registry = self.picker.registry();
        let i = self.demand.effective_intensity(VantagePoint::IspCe, date);
        let dt = lockdown_scenario::calendar::day_type(
            date,
            lockdown_topology::asn::Region::CentralEurope,
        );
        let business: Vec<_> = registry
            .ases()
            .iter()
            .filter(|a| {
                matches!(
                    a.category,
                    AsCategory::Enterprise
                        | AsCategory::CloudProvider
                        | AsCategory::ConferencingProvider
                        | AsCategory::CollaborationProvider
                        | AsCategory::Hosting
                )
            })
            .collect();

        let shape = lockdown_scenario::diurnal::shape(
            lockdown_scenario::diurnal::DiurnalProfile::BusinessHours,
            hour,
        );
        let weekend_damp = if dt.is_weekend_like() { 0.3 } else { 1.0 };

        for a in &business {
            // Per-AS base levels and idiosyncratic responses to lockdown.
            let base_res = 2.0 * as_jitter(a.asn, self.config.seed ^ 0x11, 0.8);
            let base_b2b = 3.0 * as_jitter(a.asn, self.config.seed ^ 0x22, 0.8);
            // Residential delta centred +0.55, spread wide enough that some
            // ASes lose residential traffic (bottom quadrants of Fig. 6).
            let res_delta = 0.55 * as_jitter(a.asn, self.config.seed ^ 0x33, 1.6);
            // B2B delta centred −0.45, a few ASes gain (cloud platforms).
            let b2b_delta = -0.45 * as_jitter(a.asn, self.config.seed ^ 0x44, 1.3);

            let res_gbps = base_res * shape * weekend_damp * (1.0 + res_delta * i).max(0.05);
            let b2b_gbps = base_b2b * shape * weekend_damp * (1.0 + b2b_delta * i).max(0.05);

            self.emit_transit_flows(a.asn, res_gbps, true, &mut rng, date, hour, &mut out);
            self.emit_transit_flows(a.asn, b2b_gbps, false, &mut rng, date, hour, &mut out);
        }
        out
    }

    /// Emit flows between a business AS and either ISP subscribers
    /// (`residential`) or another business AS (B2B transit).
    #[allow(clippy::too_many_arguments)]
    fn emit_transit_flows(
        &self,
        asn: lockdown_topology::asn::Asn,
        gbps: f64,
        residential: bool,
        rng: &mut StdRng,
        date: Date,
        hour: u8,
        out: &mut Vec<FlowRecord>,
    ) {
        if gbps <= 0.0 {
            return;
        }
        let registry = self.picker.registry();
        let bytes_total = (gbps * BYTES_PER_GBPS_HOUR) as u64;
        let raw = (gbps * self.config.flows_per_gbps).max(1.0);
        let n = (raw as usize).max(1);
        let bytes = sizes::split_bytes(rng, bytes_total, n);
        let hour_start = date.at_hour(hour);

        for flow_bytes in bytes {
            let local_ip = registry
                .host_addr(asn, rng.gen_range(0..64))
                .expect("business AS has prefixes");
            let (peer_asn, peer_ip) = if residential {
                let idx = rng.gen_range(0..5_000u64);
                (
                    ISP_CE_ASN,
                    registry
                        .host_addr(ISP_CE_ASN, 1_000 + idx)
                        .expect("ISP has prefixes"),
                )
            } else {
                // Another business AS, deterministic-ish partner choice.
                let partners: Vec<_> = registry
                    .in_category(AsCategory::CloudProvider)
                    .map(|x| x.asn)
                    .collect();
                let p = partners[rng.gen_range(0..partners.len())];
                (
                    p,
                    registry
                        .host_addr(p, rng.gen_range(0..64))
                        .expect("prefixes"),
                )
            };
            let start = hour_start.add_secs(rng.gen_range(0..3_600));
            let outbound = rng.gen_bool(0.5);
            let (src_ip, dst_ip, src_as, dst_as) = if outbound {
                (local_ip, peer_ip, asn.0, peer_asn.0)
            } else {
                (peer_ip, local_ip, peer_asn.0, asn.0)
            };
            out.push(
                FlowRecord::builder(
                    FlowKey {
                        src_addr: src_ip,
                        dst_addr: dst_ip,
                        src_port: 443,
                        dst_port: rng.gen_range(32_768..61_000),
                        protocol: IpProtocol::Tcp,
                    },
                    start,
                )
                .end(start.add_secs(sizes::duration_secs(rng, 600)))
                .bytes(flow_bytes)
                .packets(sizes::packets_for(rng, flow_bytes))
                .tcp_flags(TcpFlags::complete_connection())
                .asns(src_as, dst_as)
                .direction(Direction::Unknown)
                .build(),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lockdown_dns::corpus::synthesize;

    fn setup() -> (Registry, Corpus) {
        let r = Registry::synthesize();
        let c = synthesize(&r, 7);
        (r, c)
    }

    fn total_bytes(flows: &[FlowRecord]) -> u64 {
        flows.iter().map(|f| f.bytes).sum()
    }

    #[test]
    fn hour_volume_matches_demand() {
        let (r, c) = setup();
        let g = TrafficGenerator::new(&r, &c, GeneratorConfig::with_seed(1));
        let date = Date::new(2020, 2, 19);
        let flows = g.generate_hour(VantagePoint::IspCe, date, 20);
        let expected: f64 = AppClass::ALL
            .iter()
            .map(|&a| g.demand().volume_gbps(VantagePoint::IspCe, a, date, 20))
            .sum::<f64>()
            * BYTES_PER_GBPS_HOUR;
        let actual = total_bytes(&flows) as f64;
        let err = (actual - expected).abs() / expected;
        assert!(err < 1e-6, "volume error {err}");
        assert!(flows.len() > 100, "too few flows: {}", flows.len());
    }

    #[test]
    fn deterministic_per_cell() {
        let (r, c) = setup();
        let g = TrafficGenerator::new(&r, &c, GeneratorConfig::with_seed(5));
        let date = Date::new(2020, 3, 25);
        let a = g.generate_hour(VantagePoint::IxpCe, date, 12);
        let b = g.generate_hour(VantagePoint::IxpCe, date, 12);
        assert_eq!(a, b);
        // Different hours differ.
        let c2 = g.generate_hour(VantagePoint::IxpCe, date, 13);
        assert_ne!(a, c2);
    }

    #[test]
    fn flows_fall_within_their_hour() {
        let (r, c) = setup();
        let g = TrafficGenerator::new(&r, &c, GeneratorConfig::with_seed(2));
        let date = Date::new(2020, 3, 25);
        let start = date.at_hour(9);
        let end = date.at_hour(10);
        for f in g.generate_hour(VantagePoint::IspCe, date, 9) {
            assert!(f.start >= start && f.start < end, "start out of hour");
            assert!(f.end <= end, "end spills past the hour");
        }
    }

    #[test]
    fn addresses_attributable_and_ports_canonical() {
        let (r, c) = setup();
        let g = TrafficGenerator::new(&r, &c, GeneratorConfig::with_seed(3));
        let flows = g.generate_hour(VantagePoint::IxpSe, Date::new(2020, 4, 1), 15);
        for f in &flows {
            assert_eq!(
                r.lookup(f.key.src_addr),
                Some(lockdown_topology::asn::Asn(f.src_as))
            );
            assert_eq!(
                r.lookup(f.key.dst_addr),
                Some(lockdown_topology::asn::Asn(f.dst_as))
            );
            if !f.key.protocol.has_ports() {
                assert_eq!((f.key.src_port, f.key.dst_port), (0, 0));
            }
        }
    }

    #[test]
    fn lockdown_raises_isp_volume() {
        let (r, c) = setup();
        let g = TrafficGenerator::new(&r, &c, GeneratorConfig::with_seed(4));
        // Compare same weekday pre/post lockdown, whole day.
        let pre: u64 = (0..24)
            .map(|h| total_bytes(&g.generate_hour(VantagePoint::IspCe, Date::new(2020, 2, 19), h)))
            .sum();
        let post: u64 = (0..24)
            .map(|h| total_bytes(&g.generate_hour(VantagePoint::IspCe, Date::new(2020, 3, 25), h)))
            .sum();
        let growth = post as f64 / pre as f64 - 1.0;
        assert!(
            (0.10..0.45).contains(&growth),
            "lockdown growth at ISP = {growth:.3}"
        );
    }

    #[test]
    fn vpn_tls_flows_hit_gateways() {
        let (r, c) = setup();
        let g = TrafficGenerator::new(&r, &c, GeneratorConfig::high_resolution(6));
        let mut out = Vec::new();
        g.generate_hour_class(
            VantagePoint::IxpCe,
            AppClass::VpnTls,
            Date::new(2020, 3, 25),
            11,
            &mut out,
        );
        assert!(!out.is_empty());
        for f in &out {
            let gw = if f.key.src_port == 443 {
                f.key.src_addr
            } else {
                f.key.dst_addr
            };
            assert!(
                c.truth.gateways.contains_key(&gw),
                "VpnTls endpoint {gw} is not a gateway"
            );
        }
    }

    #[test]
    fn transit_has_residential_and_b2b() {
        let (r, c) = setup();
        let g = TrafficGenerator::new(&r, &c, GeneratorConfig::with_seed(8));
        let flows = g.generate_isp_transit_hour(Date::new(2020, 2, 20), 11);
        assert!(!flows.is_empty());
        let res = flows
            .iter()
            .filter(|f| f.src_as == ISP_CE_ASN.0 || f.dst_as == ISP_CE_ASN.0)
            .count();
        let b2b = flows.len() - res;
        assert!(res > 0, "no residential-facing transit flows");
        assert!(b2b > 0, "no B2B transit flows");
    }

    #[test]
    fn b2b_declines_under_lockdown() {
        let (r, c) = setup();
        let g = TrafficGenerator::new(&r, &c, GeneratorConfig::with_seed(9));
        let sum_b2b = |d: Date| -> u64 {
            (8..18)
                .flat_map(|h| g.generate_isp_transit_hour(d, h))
                .filter(|f| f.src_as != ISP_CE_ASN.0 && f.dst_as != ISP_CE_ASN.0)
                .map(|f| f.bytes)
                .sum()
        };
        let pre = sum_b2b(Date::new(2020, 2, 19));
        let post = sum_b2b(Date::new(2020, 3, 25));
        assert!(
            (post as f64) < 0.9 * pre as f64,
            "B2B should decline: {post} vs {pre}"
        );
    }

    #[test]
    fn streaming_iteration_equals_batch() {
        let (r, c) = setup();
        let g = TrafficGenerator::new(&r, &c, GeneratorConfig::coarse(10));
        let date = Date::new(2020, 2, 20);
        let mut streamed = Vec::new();
        g.for_each_hour(VantagePoint::IxpUs, date, date, |_, _, flows| {
            streamed.extend_from_slice(flows)
        });
        let batch = g.generate_day(VantagePoint::IxpUs, date);
        assert_eq!(streamed, batch);
    }
}
