//! Endpoint selection: which ASes, addresses and ports a flow gets.

use lockdown_dns::corpus::Corpus;
use lockdown_scenario::apps::{AppClass, PortSig};
use lockdown_topology::asn::{AsCategory, Asn, Region};
use lockdown_topology::registry::{Registry, ISP_CE_ASN, MOBILE_ASN};
use lockdown_topology::vantage::{VantageKind, VantagePoint};
use rand::prelude::*;
use std::collections::HashMap;
use std::net::Ipv4Addr;

/// Pre-indexed endpoint chooser shared by all generation cells.
#[derive(Debug)]
pub struct Picker<'a> {
    registry: &'a Registry,
    hypergiants: Vec<Asn>,
    by_category: HashMap<AsCategory, Vec<Asn>>,
    eyeballs_by_region: HashMap<Region, Vec<Asn>>,
    /// Discoverable VPN gateway endpoints (dedicated addresses).
    vpn_gateways: Vec<(Ipv4Addr, Asn)>,
    /// Gateways sharing their address with a `www.` host — traffic to
    /// these is real VPN traffic the §6 procedure deliberately undercounts.
    vpn_gateways_shared: Vec<(Ipv4Addr, Asn)>,
}

impl<'a> Picker<'a> {
    /// Index a registry and DNS corpus.
    pub fn new(registry: &'a Registry, corpus: &'a Corpus) -> Picker<'a> {
        let mut by_category: HashMap<AsCategory, Vec<Asn>> = HashMap::new();
        let mut eyeballs_by_region: HashMap<Region, Vec<Asn>> = HashMap::new();
        for a in registry.ases() {
            by_category.entry(a.category).or_default().push(a.asn);
            if a.category == AsCategory::EyeballIsp {
                eyeballs_by_region.entry(a.region).or_default().push(a.asn);
            }
        }
        let hypergiants = by_category
            .get(&AsCategory::Hypergiant)
            .cloned()
            .unwrap_or_default();
        let mut vpn_gateways = Vec::new();
        let mut vpn_gateways_shared = Vec::new();
        for (ip, asn) in &corpus.truth.gateways {
            if corpus.truth.shared_with_www.contains(ip) {
                vpn_gateways_shared.push((*ip, *asn));
            } else {
                vpn_gateways.push((*ip, *asn));
            }
        }
        Picker {
            registry,
            hypergiants,
            by_category,
            eyeballs_by_region,
            vpn_gateways,
            vpn_gateways_shared,
        }
    }

    /// The underlying registry.
    pub fn registry(&self) -> &Registry {
        self.registry
    }

    /// Pick the content/server side of a flow for an application class:
    /// an AS (hypergiant with the class's hypergiant share) and a stable
    /// server address within it.
    pub fn server<R: Rng + ?Sized>(&self, app: AppClass, rng: &mut R) -> (Asn, Ipv4Addr) {
        // TLS-tunnelled VPN flows terminate at real gateway addresses so
        // the §6 classifier has something to find.
        if app == AppClass::VpnTls {
            let shared = !self.vpn_gateways_shared.is_empty() && rng.gen_bool(0.15);
            let pool = if shared {
                &self.vpn_gateways_shared
            } else {
                &self.vpn_gateways
            };
            let (ip, asn) = pool[rng.gen_range(0..pool.len())];
            return (asn, ip);
        }

        let asn = if rng.gen_bool(app.hypergiant_share()) && !self.hypergiants.is_empty() {
            // Draw from the class-appropriate hypergiant pool (Netflix for
            // VoD, Microsoft for conferencing, …) so AS-based classification
            // on the analysis side can recover the class.
            let pool = app.hypergiant_pool();
            Asn(pool[rng.gen_range(0..pool.len())])
        } else {
            let cats = app.server_categories();
            // Try categories in random order until one is populated.
            let start = rng.gen_range(0..cats.len());
            let mut chosen = None;
            for k in 0..cats.len() {
                let cat = cats[(start + k) % cats.len()];
                if cat == AsCategory::Hypergiant {
                    // Stay within the class-appropriate hypergiant pool so
                    // AS-based classification stays coherent.
                    let pool = app.hypergiant_pool();
                    chosen = Some(Asn(pool[rng.gen_range(0..pool.len())]));
                    break;
                }
                if let Some(list) = self.by_category.get(&cat) {
                    if !list.is_empty() {
                        chosen = Some(list[rng.gen_range(0..list.len())]);
                        break;
                    }
                }
            }
            chosen.unwrap_or_else(|| {
                let pool = app.hypergiant_pool();
                Asn(pool[rng.gen_range(0..pool.len())])
            })
        };
        // Server farms live in a small, stable index range (< 90), disjoint
        // from the VPN gateway index range used by the DNS corpus.
        let ip = self
            .registry
            .host_addr(asn, rng.gen_range(0..64))
            .expect("registry AS has prefixes");
        (asn, ip)
    }

    /// Pick the subscriber/client side for a vantage point. `user_pool` is
    /// the number of concurrently active users; unique-address statistics
    /// (Fig. 8) derive from it.
    pub fn client<R: Rng + ?Sized>(
        &self,
        vp: VantagePoint,
        user_pool: u64,
        rng: &mut R,
    ) -> (Asn, Ipv4Addr) {
        let asn = match vp.kind() {
            VantageKind::Isp => ISP_CE_ASN,
            VantageKind::Mobile | VantageKind::Roaming => MOBILE_ASN,
            _ => {
                // IXPs see many eyeball networks, mostly regional.
                let region = if rng.gen_bool(0.8) {
                    vp.region()
                } else {
                    [
                        Region::CentralEurope,
                        Region::SouthernEurope,
                        Region::UsEast,
                    ][rng.gen_range(0..3)]
                };
                let pool = self
                    .eyeballs_by_region
                    .get(&region)
                    .expect("every region has eyeballs");
                pool[rng.gen_range(0..pool.len())]
            }
        };
        let idx = rng.gen_range(0..user_pool.max(1));
        // Client addresses live above the server/gateway index ranges.
        let ip = self
            .registry
            .host_addr(asn, 1_000 + idx)
            .expect("eyeball AS has prefixes");
        (asn, ip)
    }

    /// Pick a port signature for a class: the first (canonical) signature
    /// dominates, the rest share the remainder.
    pub fn port_sig<R: Rng + ?Sized>(&self, app: AppClass, rng: &mut R) -> PortSig {
        let sigs = app.port_signatures();
        if sigs.len() == 1 || rng.gen_bool(0.6) {
            sigs[0]
        } else {
            sigs[rng.gen_range(1..sigs.len())]
        }
    }

    /// All discoverable gateway addresses (used by tests).
    pub fn vpn_gateway_count(&self) -> (usize, usize) {
        (self.vpn_gateways.len(), self.vpn_gateways_shared.len())
    }
}

/// Deterministic per-AS idiosyncrasy factor in `[1-spread, 1+spread]`,
/// used to scatter per-AS growth (Fig. 6's cloud of points).
pub fn as_jitter(asn: Asn, seed: u64, spread: f64) -> f64 {
    let mut z = (u64::from(asn.0) << 20) ^ seed ^ 0x9E37_79B9_7F4A_7C15;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    let unit = (z as f64) / (u64::MAX as f64); // [0, 1]
    1.0 - spread + 2.0 * spread * unit
}

#[cfg(test)]
mod tests {
    use super::*;
    use lockdown_dns::corpus::synthesize;
    use lockdown_topology::hypergiants::is_hypergiant;
    use rand::rngs::StdRng;

    fn setup() -> (Registry, Corpus) {
        let r = Registry::synthesize();
        let c = synthesize(&r, 7);
        (r, c)
    }

    #[test]
    fn vpn_tls_targets_real_gateways() {
        let (r, c) = setup();
        let p = Picker::new(&r, &c);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..200 {
            let (asn, ip) = p.server(AppClass::VpnTls, &mut rng);
            assert!(c.truth.gateways.contains_key(&ip), "{ip} not a gateway");
            assert_eq!(c.truth.gateways[&ip], asn);
        }
        // Both pools are exercised.
        let (ded, shared) = p.vpn_gateway_count();
        assert!(ded > 0 && shared > 0);
    }

    #[test]
    fn hypergiant_share_respected() {
        let (r, c) = setup();
        let p = Picker::new(&r, &c);
        let mut rng = StdRng::seed_from_u64(2);
        let n = 2_000;
        let hg = (0..n)
            .filter(|_| is_hypergiant(p.server(AppClass::Quic, &mut rng).0))
            .count();
        // QUIC is 95% hypergiant.
        assert!(hg as f64 > 0.9 * n as f64, "only {hg}/{n} hypergiant");
        let hg_gaming = (0..n)
            .filter(|_| is_hypergiant(p.server(AppClass::Gaming, &mut rng).0))
            .count();
        assert!(
            (hg_gaming as f64) < 0.25 * n as f64,
            "{hg_gaming}/{n} gaming HG"
        );
    }

    #[test]
    fn client_pool_bounds_unique_addresses() {
        let (r, c) = setup();
        let p = Picker::new(&r, &c);
        let mut rng = StdRng::seed_from_u64(3);
        let mut distinct = std::collections::HashSet::new();
        for _ in 0..2_000 {
            let (asn, ip) = p.client(VantagePoint::IspCe, 50, &mut rng);
            assert_eq!(asn, ISP_CE_ASN);
            distinct.insert(ip);
        }
        assert!(
            distinct.len() <= 50,
            "{} uniques from a pool of 50",
            distinct.len()
        );
        assert!(distinct.len() > 40);
    }

    #[test]
    fn server_and_client_attributable() {
        let (r, c) = setup();
        let p = Picker::new(&r, &c);
        let mut rng = StdRng::seed_from_u64(4);
        for app in AppClass::ALL {
            let (asn, ip) = p.server(app, &mut rng);
            assert_eq!(r.lookup(ip), Some(asn), "{app}: server IP not in AS");
        }
        let (asn, ip) = p.client(VantagePoint::IxpSe, 1_000, &mut rng);
        assert_eq!(r.lookup(ip), Some(asn));
    }

    #[test]
    fn canonical_port_dominates() {
        let (r, c) = setup();
        let p = Picker::new(&r, &c);
        let mut rng = StdRng::seed_from_u64(5);
        let canonical = AppClass::VpnUser.port_signatures()[0];
        let hits = (0..1_000)
            .filter(|_| p.port_sig(AppClass::VpnUser, &mut rng) == canonical)
            .count();
        assert!(hits > 550, "canonical port picked {hits}/1000");
    }

    #[test]
    fn jitter_deterministic_and_bounded() {
        let j1 = as_jitter(Asn(65_017), 9, 0.4);
        let j2 = as_jitter(Asn(65_017), 9, 0.4);
        assert_eq!(j1, j2);
        for asn in 64_000..64_200u32 {
            let j = as_jitter(Asn(asn), 1, 0.4);
            assert!((0.6..=1.4).contains(&j), "jitter {j}");
        }
        assert_ne!(as_jitter(Asn(1), 1, 0.4), as_jitter(Asn(2), 1, 0.4));
    }
}
