//! # lockdown-traffic
//!
//! Deterministic synthetic flow-trace generation: the stand-in for the
//! paper's proprietary NetFlow/IPFIX feeds.
//!
//! The generator materializes [`lockdown_flow::record::FlowRecord`]s whose
//! aggregate statistics follow the calibrated demand model of
//! `lockdown-scenario`: per-class volumes, diurnal shapes, lockdown growth,
//! per-AS attribution, VPN endpoints from the DNS corpus, and the EDU
//! network's directional flip. Every `(vantage, class, date, hour)` cell is
//! independently seeded, so experiments regenerate any slice of the trace
//! bit-identically and in parallel.
//!
//! * [`config`] — resolution knobs (flows and users per Gbps);
//! * [`sizes`] — heavy-tailed flow sizes, packet counts, durations;
//! * [`picker`] — endpoint selection (AS, address, port) with hypergiant
//!   shares and real VPN gateway addresses;
//! * [`generate`] — the main generator plus the ISP transit view (§3.4);
//! * [`parallel`] — crossbeam-scoped parallel sweeps, bit-identical to the
//!   sequential output thanks to cell seeding;
//! * [`plan`] — deduplicated generation plans shared across consumers
//!   (the substrate of the single-pass trace engine);
//! * [`edu_gen`] — the §7 educational-network generator.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod edu_gen;
pub mod generate;
pub mod parallel;
pub mod picker;
pub mod plan;
pub mod sizes;

/// Convenient glob-import surface.
pub mod prelude {
    pub use crate::config::GeneratorConfig;
    pub use crate::edu_gen::EduGenerator;
    pub use crate::generate::{TrafficGenerator, BYTES_PER_GBPS_HOUR};
    pub use crate::parallel::default_workers;
    pub use crate::picker::{as_jitter, Picker};
    pub use crate::plan::{Cell, FlowSink, Stream, TraceEmitter, TracePlan};
}
