//! Fig. 4 — ISP-CE normalized daily traffic growth for hypergiants vs.
//! other ASes, by day part, across calendar weeks 1–18.
//!
//! The finding this reproduces (§3.2): until the lockdown the two curves
//! coincide; afterwards the *other* ASes' relative growth dominates the
//! hypergiants', with the smallest gap during working hours on workdays.

use crate::context::Context;
use crate::engine::{self, Demand, EngineOutput, EnginePlan};
use crate::report::{opt_norm, TextTable};
use lockdown_analysis::asgroup::{DayPart, HypergiantSplit};
use lockdown_analysis::consumer::HypergiantConsumer;
use lockdown_flow::time::Date;
use lockdown_topology::registry::ISP_CE_ASN;
use lockdown_topology::vantage::VantagePoint;
use lockdown_traffic::plan::Stream;

/// Weeks plotted.
pub const WEEKS: std::ops::RangeInclusive<u8> = 1..=18;
/// Normalization week (consistent with Fig. 1's baseline).
pub const BASE_WEEK: u8 = 3;

/// Fig. 4 result.
#[derive(Debug, Clone)]
pub struct Fig4 {
    /// The accumulated split (exposed for further slicing).
    pub split: HypergiantSplit,
    /// Growth per (day part, hypergiant?) over [`WEEKS`].
    pub series: Vec<(DayPart, bool, Vec<Option<f64>>)>,
}

/// Demand handle of one Fig. 4 pass.
pub struct Plan {
    split: Demand<HypergiantConsumer>,
}

/// Declare Fig. 4's trace demand on a shared engine plan.
pub fn plan(plan: &mut EnginePlan) -> Plan {
    let region = VantagePoint::IspCe.region();
    Plan {
        split: plan.subscribe(
            Stream::Vantage(VantagePoint::IspCe),
            Date::new(2020, 1, 1),
            Date::new(2020, 5, 3),
            move || HypergiantConsumer::new(region, ISP_CE_ASN),
        ),
    }
}

/// Assemble Fig. 4 from a finished engine pass.
pub fn finish(plan: Plan, out: &mut EngineOutput) -> Fig4 {
    let split = out.take(plan.split).split;
    let mut series = Vec::new();
    for part in DayPart::ALL {
        for hg in [true, false] {
            series.push((part, hg, split.growth_series(part, hg, WEEKS, BASE_WEEK)));
        }
    }
    Fig4 { split, series }
}

/// Run Fig. 4 standalone.
pub fn run(ctx: &Context) -> Fig4 {
    let mut eplan = EnginePlan::new();
    let p = plan(&mut eplan);
    finish(
        p,
        &mut engine::run(ctx, eplan).expect("archive-free engine pass cannot fail"),
    )
}

impl Fig4 {
    /// Growth value for (part, hypergiant?, week).
    pub fn at(&self, part: DayPart, hypergiant: bool, week: u8) -> Option<f64> {
        let (_, _, s) = self
            .series
            .iter()
            .find(|(p, h, _)| *p == part && *h == hypergiant)?;
        let idx = (week as usize).checked_sub(*WEEKS.start() as usize)?;
        s.get(idx).copied().flatten()
    }

    /// Render both groups for the workday day parts.
    pub fn render(&self) -> String {
        let mut t = TextTable::new([
            "week",
            "HG wd-work",
            "other wd-work",
            "HG wd-evening",
            "other wd-evening",
            "HG we-work",
            "other we-work",
        ]);
        for w in WEEKS {
            t.row([
                w.to_string(),
                opt_norm(self.at(DayPart::WorkdayWork, true, w)),
                opt_norm(self.at(DayPart::WorkdayWork, false, w)),
                opt_norm(self.at(DayPart::WorkdayEvening, true, w)),
                opt_norm(self.at(DayPart::WorkdayEvening, false, w)),
                opt_norm(self.at(DayPart::WeekendWork, true, w)),
                opt_norm(self.at(DayPart::WeekendWork, false, w)),
            ]);
        }
        format!(
            "Fig. 4 — ISP-CE growth, hypergiants vs other ASes (week {BASE_WEEK} = 1.0)\n{}",
            t.render()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::Fidelity;
    use std::sync::OnceLock;

    fn fig() -> &'static Fig4 {
        static FIG: OnceLock<Fig4> = OnceLock::new();
        // Standard fidelity: the hypergiant/other byte split inherits the
        // heavy-tailed flow-size noise, and the weekly weekend bins need
        // the extra flows for the dominance ordering to be stable.
        FIG.get_or_init(|| run(&Context::new(Fidelity::Standard)))
    }

    #[test]
    fn curves_coincide_before_lockdown() {
        let f = fig();
        for w in [5u8, 7, 9] {
            let hg = f.at(DayPart::WorkdayEvening, true, w).unwrap();
            let other = f.at(DayPart::WorkdayEvening, false, w).unwrap();
            assert!(
                (hg - other).abs() < 0.13,
                "week {w}: HG {hg:.3} vs other {other:.3} should coincide"
            );
        }
    }

    #[test]
    fn others_dominate_after_lockdown() {
        let f = fig();
        // §3.2: after the lockdown, the other-AS curve dominates in every
        // day part. Weekly bins at test fidelity carry heavy-tailed
        // sampling noise, so each individual bin gets a small slack while
        // the weeks-13–16 mean must dominate strictly.
        for part in DayPart::ALL {
            let mut hg_sum = 0.0;
            let mut other_sum = 0.0;
            for w in [13u8, 14, 15, 16] {
                let hg = f.at(part, true, w).unwrap();
                let other = f.at(part, false, w).unwrap();
                hg_sum += hg;
                other_sum += other;
                assert!(
                    other + 0.07 > hg,
                    "{part:?} week {w}: other {other:.3} far below HG {hg:.3}"
                );
            }
            assert!(
                other_sum > hg_sum,
                "{part:?}: mean other {:.3} must exceed mean HG {:.3}",
                other_sum / 4.0,
                hg_sum / 4.0
            );
        }
    }

    #[test]
    fn hypergiants_surge_then_stabilize() {
        let f = fig();
        // Weekend windows are diurnal-shape-stable, so growth shows
        // directly (workday windows fold in the weekend-like morph, which
        // redistributes evening volume into the day).
        let hg_11 = f.at(DayPart::WeekendEvening, true, 11).unwrap();
        let hg_12 = f.at(DayPart::WeekendEvening, true, 12).unwrap();
        // Substantial HG increase into the lockdown week.
        assert!(
            hg_12 > hg_11 + 0.04,
            "HG surge week 11→12: {hg_11} -> {hg_12}"
        );
        // Weekend HG traffic declines or stabilizes week 12→13 (resolution
        // reduction on Mar 19).
        let hg_we_12 = f.at(DayPart::WeekendEvening, true, 12).unwrap();
        let hg_we_13 = f.at(DayPart::WeekendEvening, true, 13).unwrap();
        assert!(
            hg_we_13 < hg_we_12 * 1.06,
            "HG weekend should stabilize/decline: {hg_we_12} -> {hg_we_13}"
        );
    }

    #[test]
    fn smallest_gap_during_work_hours() {
        let f = fig();
        // §3.2: "the smallest difference is during workhours on workdays".
        let gap = |part| {
            let hg = f.at(part, true, 14).unwrap();
            let other = f.at(part, false, 14).unwrap();
            other - hg
        };
        let wd_work = gap(DayPart::WorkdayWork);
        let we_evening = gap(DayPart::WeekendEvening);
        assert!(
            wd_work < we_evening + 0.25,
            "workday-work gap {wd_work:.3} vs weekend-evening {we_evening:.3}"
        );
    }

    #[test]
    fn renders() {
        assert!(fig().render().contains("other wd-work"));
    }
}
