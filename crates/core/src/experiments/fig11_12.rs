//! Figs. 11–12 and the §7 statistics — the educational network.
//!
//! * Fig. 11a: normalized daily volume for the base / transition /
//!   online-lecturing weeks;
//! * Fig. 11b: the ingress/egress volume ratio for the same weeks;
//! * Fig. 12: daily connections relative to Feb 27 for selected traffic
//!   categories;
//! * §7 prose statistics: median incoming/outgoing connection growth and
//!   the per-class factors (web 1.7×, email 1.8×, VPN 4.8×, remote
//!   desktop 5.9×, SSH 9.1×).

use crate::context::Context;
use crate::engine::{self, Demand, EngineOutput, EnginePlan};
use crate::report::TextTable;
use lockdown_analysis::codec::{self, CodecError, ConsumerTag, StateReader};
use lockdown_analysis::consumer::FlowConsumer;
use lockdown_analysis::edu::{orientation, EduAnalysis, EduTrafficClass, Orientation};
use lockdown_flow::record::FlowRecord;
use lockdown_flow::time::Date;
use lockdown_scenario::calendar::{AnalysisWeek, EDU_WEEKS};
use lockdown_topology::asn::Region;
use lockdown_topology::registry::Registry;
use lockdown_traffic::plan::Stream;
use std::collections::HashSet;
use std::sync::Arc;

/// Fig. 12's plotted range (Feb 27 – Apr 22).
pub const F12_START: Date = Date {
    year: 2020,
    month: 2,
    day: 27,
};
/// End of the Fig. 12 range.
pub const F12_END: Date = Date {
    year: 2020,
    month: 4,
    day: 22,
};

/// The categories Fig. 12 plots, as (label, class, orientation).
pub const F12_CLASSES: [(&str, EduTrafficClass, Orientation); 6] = [
    (
        "Eyeball ISPs (Email, In)",
        EduTrafficClass::Email,
        Orientation::Incoming,
    ),
    (
        "Eyeball ISPs (VPN, In)",
        EduTrafficClass::Vpn,
        Orientation::Incoming,
    ),
    (
        "Eyeball ISPs (Web, In)",
        EduTrafficClass::Web,
        Orientation::Incoming,
    ),
    (
        "Hypergiants (Web, Out)",
        EduTrafficClass::Web,
        Orientation::Outgoing,
    ),
    (
        "Push notifications (Out)",
        EduTrafficClass::PushNotif,
        Orientation::Outgoing,
    ),
    ("QUIC (Out)", EduTrafficClass::Quic, Orientation::Outgoing),
];

/// §7's hourly origin split: incoming connections by hour, national vs
/// overseas clients.
#[derive(Debug, Clone, Copy)]
pub struct HourlyOrigins {
    /// Connections from same-country eyeballs, per hour of day.
    pub national: [u64; 24],
    /// Connections from overseas eyeballs.
    pub overseas: [u64; 24],
}

impl HourlyOrigins {
    /// Hour with the most connections for a series.
    pub fn peak_hour(series: &[u64; 24]) -> u8 {
        (0..24).max_by_key(|&h| series[h as usize]).unwrap_or(0) as u8
    }
}

/// Combined EDU result.
#[derive(Debug)]
pub struct EduFigures {
    /// The full streaming analysis over Feb 27 – Apr 26.
    pub analysis: EduAnalysis,
    /// Normalized daily volume per analysis week (7 values each),
    /// normalized to the max across the three weeks.
    pub fig11a: Vec<(&'static str, [f64; 7])>,
    /// Daily in/out ratio per analysis week.
    pub fig11b: Vec<(&'static str, [f64; 7])>,
    /// §7's hourly access pattern in the online-lecturing week.
    pub origins: HourlyOrigins,
}

/// Engine consumer counting incoming connections per hour of day, split
/// by the client's origin region (precomputed ASN sets — the registry
/// itself stays out of the `'static` factory closure).
struct OriginsConsumer {
    national_as: Arc<HashSet<u32>>,
    overseas_as: Arc<HashSet<u32>>,
    national: [u64; 24],
    overseas: [u64; 24],
}

impl OriginsConsumer {
    fn new(national_as: Arc<HashSet<u32>>, overseas_as: Arc<HashSet<u32>>) -> OriginsConsumer {
        OriginsConsumer {
            national_as,
            overseas_as,
            national: [0; 24],
            overseas: [0; 24],
        }
    }
}

impl FlowConsumer for OriginsConsumer {
    fn observe(&mut self, record: &FlowRecord) {
        if orientation(record) != Orientation::Incoming {
            return;
        }
        let hour = record.start.hour() as usize;
        if self.national_as.contains(&record.src_as) {
            self.national[hour] += 1;
        } else if self.overseas_as.contains(&record.src_as) {
            self.overseas[hour] += 1;
        }
    }

    fn merge(&mut self, other: Self) {
        for h in 0..24 {
            self.national[h] += other.national[h];
            self.overseas[h] += other.overseas[h];
        }
    }

    fn state_tag(&self) -> ConsumerTag {
        codec::TAG_HOURLY_ORIGINS
    }

    fn encode_state(&self, out: &mut Vec<u8>) {
        // The ASN sets are constructor parameters; only the two hourly
        // series are mergeable state.
        for series in [&self.national, &self.overseas] {
            for &v in series {
                codec::put_u64(out, v);
            }
        }
    }

    fn merge_state(&mut self, r: &mut StateReader<'_>) -> Result<(), CodecError> {
        for series in [&mut self.national, &mut self.overseas] {
            for slot in series.iter_mut() {
                *slot += r.u64("origins hour bin")?;
            }
        }
        Ok(())
    }
}

/// Demand handles of one EDU pass.
pub struct Plan {
    analysis: Demand<EduAnalysis>,
    origins: Demand<OriginsConsumer>,
}

/// Declare the EDU experiments' trace demands on a shared engine plan.
pub fn plan(plan: &mut EnginePlan, registry: &Registry) -> Plan {
    // Cover the union of the Fig. 11 weeks and the Fig. 12 range.
    let start = Date::new(2020, 2, 27);
    let end = Date::new(2020, 4, 26);
    let analysis = plan.subscribe(Stream::Edu, start, end, EduAnalysis::new);

    let by_region = |region: Region| -> Arc<HashSet<u32>> {
        Arc::new(
            registry
                .ases()
                .iter()
                .filter(|a| a.region == region)
                .map(|a| a.asn.0)
                .collect(),
        )
    };
    let national_as = by_region(Region::SouthernEurope);
    let overseas_as = by_region(Region::UsEast);
    let origins = plan.subscribe(
        Stream::Edu,
        EDU_WEEKS[2].start,
        EDU_WEEKS[2].end(),
        move || OriginsConsumer::new(Arc::clone(&national_as), Arc::clone(&overseas_as)),
    );
    Plan { analysis, origins }
}

/// Assemble the EDU figures from a finished engine pass.
pub fn finish(plan: Plan, out: &mut EngineOutput) -> EduFigures {
    let analysis = out.take(plan.analysis);
    let o = out.take(plan.origins);
    let origins = HourlyOrigins {
        national: o.national,
        overseas: o.overseas,
    };

    // Fig. 11a/b over the paper's three weeks.
    let week_days = |week: &AnalysisWeek| -> Vec<Date> { week.dates() };
    let mut daily: Vec<(&'static str, [f64; 7], [f64; 7])> = Vec::new();
    for week in &EDU_WEEKS {
        let mut volumes = [0.0f64; 7];
        let mut ratios = [0.0f64; 7];
        for (i, date) in week_days(week).into_iter().enumerate() {
            let v = analysis.ingress.daily_total(date) + analysis.egress.daily_total(date);
            volumes[i] = v as f64;
            ratios[i] = analysis.in_out_ratio(date).unwrap_or(0.0);
        }
        daily.push((week.label, volumes, ratios));
    }
    let max = daily
        .iter()
        .flat_map(|(_, v, _)| v.iter())
        .copied()
        .fold(0.0f64, f64::max)
        .max(1.0);
    let fig11a = daily
        .iter()
        .map(|(label, v, _)| {
            let mut out = [0.0; 7];
            for (o, x) in out.iter_mut().zip(v) {
                *o = *x / max * 10.0; // the paper's axis runs 0..10
            }
            (*label, out)
        })
        .collect();
    let fig11b = daily.iter().map(|(label, _, r)| (*label, *r)).collect();

    EduFigures {
        analysis,
        fig11a,
        fig11b,
        origins,
    }
}

/// Run the EDU experiments standalone.
pub fn run(ctx: &Context) -> EduFigures {
    let mut eplan = EnginePlan::new();
    let p = plan(&mut eplan, &ctx.registry);
    finish(
        p,
        &mut engine::run(ctx, eplan).expect("archive-free engine pass cannot fail"),
    )
}

impl EduFigures {
    /// A week's normalized volumes by label.
    pub fn volumes(&self, label: &str) -> &[f64; 7] {
        &self
            .fig11a
            .iter()
            .find(|(l, _)| *l == label)
            .expect("week exists")
            .1
    }

    /// A week's in/out ratios by label.
    pub fn ratios(&self, label: &str) -> &[f64; 7] {
        &self
            .fig11b
            .iter()
            .find(|(l, _)| *l == label)
            .expect("week exists")
            .1
    }

    /// Fig. 12's relative daily growth series for one plotted category.
    pub fn fig12_series(&self, label: &str) -> Vec<(Date, f64)> {
        let (_, class, orient) = F12_CLASSES
            .iter()
            .find(|(l, _, _)| *l == label)
            .expect("category exists");
        self.analysis
            .relative_growth(*class, *orient, F12_START, F12_START, F12_END)
    }

    /// §7 statistic: median daily incoming-connection growth factor for a
    /// class between the base week and the online-lecturing week.
    pub fn median_growth(&self, class: EduTrafficClass, orient: Orientation) -> f64 {
        let base =
            self.analysis
                .median_daily(class, orient, EDU_WEEKS[0].start, EDU_WEEKS[0].end());
        let online =
            self.analysis
                .median_daily(class, orient, EDU_WEEKS[2].start, EDU_WEEKS[2].end());
        online / base.max(1.0)
    }

    /// §7 statistic: total incoming and outgoing growth (medians).
    pub fn total_growth(&self) -> (f64, f64) {
        let med = |orient, week: &AnalysisWeek| {
            let counts: Vec<f64> = week
                .dates()
                .iter()
                .map(|&d| self.analysis.daily_by_orientation(d, orient) as f64)
                .collect();
            lockdown_analysis::timeseries::median(&counts)
        };
        let inc =
            med(Orientation::Incoming, &EDU_WEEKS[2]) / med(Orientation::Incoming, &EDU_WEEKS[0]);
        let out =
            med(Orientation::Outgoing, &EDU_WEEKS[2]) / med(Orientation::Outgoing, &EDU_WEEKS[0]);
        (inc, out)
    }

    /// Render Fig. 11 summaries and the §7 growth factors.
    pub fn render(&self) -> String {
        let mut t = TextTable::new(["week", "volume (Thu..Wed)", "in/out ratio (mean)"]);
        for (label, v) in &self.fig11a {
            let r = self.ratios(label);
            let mean_ratio = r.iter().sum::<f64>() / 7.0;
            let vols = v
                .iter()
                .map(|x| format!("{x:.1}"))
                .collect::<Vec<_>>()
                .join(" ");
            t.row([label.to_string(), vols, format!("{mean_ratio:.1}")]);
        }
        let (inc, out) = self.total_growth();
        let mut s = format!("Fig. 11 — EDU volume & direction\n{}\n", t.render());
        s.push_str(&format!(
            "§7 — incoming connections ×{inc:.2}, outgoing ×{out:.2}\n"
        ));
        let mut t2 = TextTable::new(["class (incoming)", "median growth"]);
        for (label, class) in [
            ("web", EduTrafficClass::Web),
            ("email", EduTrafficClass::Email),
            ("VPN", EduTrafficClass::Vpn),
            ("remote desktop", EduTrafficClass::RemoteDesktop),
            ("SSH", EduTrafficClass::Ssh),
        ] {
            t2.row([
                label.to_string(),
                format!("{:.1}x", self.median_growth(class, Orientation::Incoming)),
            ]);
        }
        s.push_str(&t2.render());
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::Fidelity;
    use std::sync::OnceLock;

    fn fig() -> &'static EduFigures {
        static FIG: OnceLock<EduFigures> = OnceLock::new();
        FIG.get_or_init(|| run(&Context::new(Fidelity::Test)))
    }

    #[test]
    fn volume_drops_on_workdays() {
        // Fig. 11a: up to −55% on Tue/Wed. Week starts Thursday; Tue/Wed
        // are indices 5 and 6.
        let base = fig().volumes("base");
        let online = fig().volumes("online-lecturing");
        for idx in [5usize, 6] {
            let drop = 1.0 - online[idx] / base[idx];
            assert!(
                (0.30..0.70).contains(&drop),
                "day {idx}: drop {drop:.2} outside range"
            );
        }
        // Weekend (indices 2=Sat, 3=Sun) holds or grows slightly.
        for idx in [2usize, 3] {
            let change = online[idx] / base[idx];
            assert!(change > 0.9, "weekend day {idx} fell: {change:.2}");
        }
    }

    #[test]
    fn in_out_ratio_collapses() {
        // Fig. 11b: up to 15× before, halving in transition, smallest in
        // the online-lecturing week.
        let mean = |label: &str| {
            let r = fig().ratios(label);
            r.iter().sum::<f64>() / 7.0
        };
        let base = mean("base");
        let transition = mean("transition");
        let online = mean("online-lecturing");
        assert!(base > 6.0, "base in/out ratio {base:.1}");
        assert!(
            transition < base,
            "transition {transition:.1} < base {base:.1}"
        );
        assert!(
            online < transition,
            "online {online:.1} < transition {transition:.1}"
        );
        assert!(online < base / 3.0);
    }

    #[test]
    fn incoming_doubles_outgoing_halves() {
        let (inc, out) = fig().total_growth();
        assert!((1.4..2.8).contains(&inc), "incoming growth {inc:.2}");
        assert!((0.25..0.75).contains(&out), "outgoing shrink {out:.2}");
    }

    #[test]
    fn class_growth_factors_match_section7() {
        // web 1.7×, email 1.8×, VPN 4.8×, remote desktop 5.9×, SSH 9.1×
        // (generous tolerances: reduced-resolution trace).
        let f = fig();
        let g = |c| f.median_growth(c, Orientation::Incoming);
        let web = g(EduTrafficClass::Web);
        let email = g(EduTrafficClass::Email);
        let vpn = g(EduTrafficClass::Vpn);
        let rdp = g(EduTrafficClass::RemoteDesktop);
        let ssh = g(EduTrafficClass::Ssh);
        assert!((1.2..2.4).contains(&web), "web {web:.2}");
        assert!((1.2..2.6).contains(&email), "email {email:.2}");
        assert!((3.0..7.0).contains(&vpn), "vpn {vpn:.2}");
        assert!((3.5..9.0).contains(&rdp), "rdp {rdp:.2}");
        assert!((6.0..13.0).contains(&ssh), "ssh {ssh:.2}");
        // The ordering the paper reports (RDP's small daily counts are
        // too noisy at reduced resolution for a strict RDP-vs-VPN order).
        assert!(web < vpn && vpn < ssh);
        assert!(rdp > web);
    }

    #[test]
    fn fig12_outgoing_collapses() {
        let f = fig();
        let last = |label: &str| f.fig12_series(label).last().unwrap().1;
        assert!(last("Eyeball ISPs (VPN, In)") > 2.5);
        assert!(last("Push notifications (Out)") < 0.7);
        assert!(last("QUIC (Out)") < 0.7);
        assert!(last("Hypergiants (Web, Out)") < 0.8);
    }

    #[test]
    fn undetermined_fraction_near_39_percent() {
        let frac = fig().analysis.undetermined_fraction();
        assert!(
            (0.30..0.48).contains(&frac),
            "undetermined fraction {frac:.3}"
        );
    }

    #[test]
    fn renders() {
        let s = fig().render();
        assert!(s.contains("incoming connections"));
        assert!(s.contains("SSH"));
    }

    #[test]
    fn overseas_users_connect_at_night() {
        // §7: national users peak in the working day; overseas (Latin
        // American time zones) peak in the small hours.
        let o = fig().origins;
        let national_peak = HourlyOrigins::peak_hour(&o.national);
        assert!(
            (8..=21).contains(&national_peak),
            "national peak at {national_peak}h"
        );
        // Overseas night share: small hours (0-7) carry more than the same
        // count of midday hours.
        let night: u64 = (0..7).map(|h| o.overseas[h]).sum();
        let midday: u64 = (9..16).map(|h| o.overseas[h]).sum();
        assert!(
            night > midday,
            "overseas night {night} must exceed midday {midday}"
        );
        // National traffic dominates overall (§7: overseas is the tail).
        let nat_total: u64 = o.national.iter().sum();
        let ov_total: u64 = o.overseas.iter().sum();
        assert!(nat_total > ov_total);
    }
}
