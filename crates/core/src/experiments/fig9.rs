//! Fig. 9 — application-class heatmaps for the four vantage points: a base
//! week plus the (stage − base) difference for stages 1 and 2, per class,
//! per day-of-week and hour (02:00–07:00 removed), clamped to
//! [−100%, +200%] (§5).

use crate::context::Context;
use crate::engine::{self, Demand, EngineOutput, EnginePlan};
use crate::report::TextTable;
use lockdown_analysis::appclass::{
    heatmap_diff, Classifier, PaperClass, WeekHeatmap, DISPLAY_HOURS,
};
use lockdown_analysis::consumer::HeatmapConsumer;
use lockdown_scenario::calendar::{AnalysisWeek, APPCLASS_ISP_WEEKS, APPCLASS_IXP_WEEKS};
use lockdown_topology::registry::Registry;
use lockdown_topology::vantage::VantagePoint;
use lockdown_traffic::plan::Stream;
use std::sync::Arc;

/// Fig. 9 result for one vantage point.
#[derive(Debug)]
pub struct Fig9 {
    /// The vantage point.
    pub vantage: VantagePoint,
    /// Heatmaps for base / stage 1 / stage 2.
    pub weeks: [WeekHeatmap; 3],
}

/// Demand handles of one Fig. 9 pass.
pub struct Plan {
    vantage: VantagePoint,
    weeks: [Demand<HeatmapConsumer>; 3],
}

/// Declare Fig. 9's trace demands for one vantage point on a shared
/// engine plan.
pub fn plan(plan: &mut EnginePlan, registry: &Registry, vantage: VantagePoint) -> Plan {
    let weeks: &[AnalysisWeek; 3] = if vantage == VantagePoint::IspCe {
        &APPCLASS_ISP_WEEKS
    } else {
        &APPCLASS_IXP_WEEKS
    };
    let classifier = Arc::new(Classifier::from_registry(registry));
    let mut subscribe = |week: &AnalysisWeek| {
        let classifier = Arc::clone(&classifier);
        let start = week.start;
        plan.subscribe(
            Stream::Vantage(vantage),
            week.start,
            week.end(),
            move || HeatmapConsumer::new(Arc::clone(&classifier), start),
        )
    };
    Plan {
        vantage,
        weeks: [
            subscribe(&weeks[0]),
            subscribe(&weeks[1]),
            subscribe(&weeks[2]),
        ],
    }
}

/// Assemble Fig. 9 from a finished engine pass.
pub fn finish(plan: Plan, out: &mut EngineOutput) -> Fig9 {
    let [a, b, c] = plan.weeks;
    Fig9 {
        vantage: plan.vantage,
        weeks: [
            out.take(a).heatmap,
            out.take(b).heatmap,
            out.take(c).heatmap,
        ],
    }
}

/// Run Fig. 9 for one vantage point standalone.
pub fn run(ctx: &Context, vantage: VantagePoint) -> Fig9 {
    let mut eplan = EnginePlan::new();
    let p = plan(&mut eplan, &ctx.registry, vantage);
    finish(
        p,
        &mut engine::run(ctx, eplan).expect("archive-free engine pass cannot fail"),
    )
}

impl Fig9 {
    /// The (stage − base) difference grid for a class; `stage` is 1 or 2.
    pub fn diff(&self, class: PaperClass, stage: usize) -> [[f64; DISPLAY_HOURS]; 7] {
        assert!(stage == 1 || stage == 2, "stage must be 1 or 2");
        heatmap_diff(&self.weeks[0], &self.weeks[stage], class)
    }

    /// Mean difference (percent) over business hours (09:00–17:00) of the
    /// days that are calendar workdays in *both* compared weeks (the ISP's
    /// stage-2 week contains the Easter holidays, which the paper
    /// classifies as weekend days, §4).
    pub fn business_hours_diff(&self, class: PaperClass, stage: usize) -> f64 {
        use lockdown_scenario::calendar::{day_type, DayType};
        let grid = self.diff(class, stage);
        let region = self.vantage.region();
        let mut sum = 0.0;
        let mut n = 0usize;
        for (d, day) in grid.iter().enumerate() {
            let base_day = self.weeks[0].start.add_days(d as i64);
            let stage_day = self.weeks[stage].start.add_days(d as i64);
            if day_type(base_day, region) != DayType::Workday
                || day_type(stage_day, region) != DayType::Workday
            {
                continue;
            }
            for hour in 9..17u8 {
                if let Some(slot) = lockdown_analysis::appclass::display_slot(hour) {
                    sum += day[slot];
                    n += 1;
                }
            }
        }
        sum / n.max(1) as f64
    }

    /// Mean difference over the whole displayed grid.
    pub fn overall_diff(&self, class: PaperClass, stage: usize) -> f64 {
        let grid = self.diff(class, stage);
        let total: f64 = grid.iter().flat_map(|d| d.iter()).sum();
        total / (7 * DISPLAY_HOURS) as f64
    }

    /// Week-over-week volume change (percent) for one class: the ratio of
    /// summed grid bytes, the robust "did this class grow" statistic (the
    /// per-cell mean overweights small cells that the diurnal morph
    /// inflates).
    pub fn volume_diff(&self, class: PaperClass, stage: usize) -> f64 {
        assert!(stage == 1 || stage == 2, "stage must be 1 or 2");
        let sum = |w: &WeekHeatmap| -> f64 {
            let ci = PaperClass::ALL
                .iter()
                .position(|&c| c == class)
                .expect("in ALL");
            w.grid[ci]
                .iter()
                .flat_map(|d| d.iter())
                .map(|&v| v as f64)
                .sum()
        };
        let base = sum(&self.weeks[0]).max(1.0);
        (sum(&self.weeks[stage]) - base) / base * 100.0
    }

    /// Render per-class business-hour differences for both stages.
    pub fn render(&self) -> String {
        let mut t = TextTable::new(["class", "stage1 Δ (bh)", "stage2 Δ (bh)", "stage2 Δ (all)"]);
        for class in PaperClass::ALL {
            t.row([
                class.short().to_string(),
                format!("{:+.0}%", self.business_hours_diff(class, 1)),
                format!("{:+.0}%", self.business_hours_diff(class, 2)),
                format!("{:+.0}%", self.overall_diff(class, 2)),
            ]);
        }
        format!(
            "Fig. 9 — application-class difference heatmap at {} (base vs stages)\n{}",
            self.vantage,
            t.render()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::Fidelity;
    use std::sync::OnceLock;

    fn ctx() -> &'static Context {
        static CTX: OnceLock<Context> = OnceLock::new();
        CTX.get_or_init(|| Context::new(Fidelity::Test))
    }

    fn isp() -> &'static Fig9 {
        static FIG: OnceLock<Fig9> = OnceLock::new();
        FIG.get_or_init(|| run(ctx(), VantagePoint::IspCe))
    }

    fn ixp_ce() -> &'static Fig9 {
        static FIG: OnceLock<Fig9> = OnceLock::new();
        FIG.get_or_init(|| run(ctx(), VantagePoint::IxpCe))
    }

    fn ixp_us() -> &'static Fig9 {
        static FIG: OnceLock<Fig9> = OnceLock::new();
        FIG.get_or_init(|| run(ctx(), VantagePoint::IxpUs))
    }

    #[test]
    fn webconf_explodes_everywhere() {
        // §5: "Web conferencing applications show a dramatic increase of
        // more than 200% during business hours" at all vantage points.
        for f in [isp(), ixp_ce(), ixp_us()] {
            let d = f.business_hours_diff(PaperClass::WebConf, 2);
            assert!(
                d > 120.0,
                "{}: Webconf business-hours Δ {d:+.0}%",
                f.vantage
            );
        }
    }

    #[test]
    fn messaging_email_antipattern() {
        // Europe: messaging soars, email moderate. US: email grows,
        // messaging falls.
        let eu_msg = ixp_ce().volume_diff(PaperClass::Messaging, 2);
        let us_msg = ixp_us().volume_diff(PaperClass::Messaging, 2);
        let eu_mail = ixp_ce().volume_diff(PaperClass::Email, 2);
        let us_mail = ixp_us().volume_diff(PaperClass::Email, 2);
        assert!(eu_msg > 60.0, "EU messaging Δ {eu_msg:+.0}%");
        assert!(us_msg < 0.0, "US messaging Δ {us_msg:+.0}%");
        assert!(
            us_mail > eu_mail,
            "US email {us_mail:+.0}% vs EU {eu_mail:+.0}%"
        );
    }

    #[test]
    fn vod_grows_in_europe_falls_in_us() {
        let eu = ixp_ce().volume_diff(PaperClass::Vod, 2);
        let us = ixp_us().volume_diff(PaperClass::Vod, 2);
        assert!(eu > 20.0, "EU VoD Δ {eu:+.0}%");
        assert!(us < eu - 20.0, "US VoD {us:+.0}% must trail EU {eu:+.0}%");
    }

    #[test]
    fn gaming_coherent_at_ixps_modest_at_isp() {
        let g_ce = ixp_ce().volume_diff(PaperClass::Gaming, 2);
        let g_us = ixp_us().volume_diff(PaperClass::Gaming, 2);
        let g_isp = isp().volume_diff(PaperClass::Gaming, 2);
        assert!(g_ce > 40.0, "IXP-CE gaming Δ {g_ce:+.0}%");
        assert!(g_us > 20.0, "IXP-US gaming Δ {g_us:+.0}%");
        assert!(g_isp < g_ce / 2.0, "ISP gaming {g_isp:+.0}% must be modest");
    }

    #[test]
    fn educational_antipattern() {
        // ISP-CE: drastic increase (NREN-hosted conferencing); US:
        // decrease.
        let isp_edu = isp().volume_diff(PaperClass::Educational, 2);
        let us_edu = ixp_us().volume_diff(PaperClass::Educational, 2);
        assert!(isp_edu > 60.0, "ISP educational Δ {isp_edu:+.0}%");
        assert!(us_edu < 0.0, "US educational Δ {us_edu:+.0}%");
    }

    #[test]
    fn social_media_flattens_by_stage2() {
        let s1 = isp().volume_diff(PaperClass::SocialMedia, 1);
        let s2 = isp().volume_diff(PaperClass::SocialMedia, 2);
        assert!(s1 > 8.0, "stage-1 social Δ {s1:+.0}%");
        assert!(s2 < s1, "social must flatten: {s1:+.0}% -> {s2:+.0}%");
    }

    #[test]
    fn diffs_respect_clamp() {
        for f in [isp(), ixp_ce()] {
            for class in PaperClass::ALL {
                for stage in [1, 2] {
                    for day in f.diff(class, stage) {
                        for v in day {
                            assert!((-100.0..=200.0).contains(&v));
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn renders() {
        assert!(isp().render().contains("Web conf"));
    }
}
