//! Fig. 6 — ISP-CE per-AS traffic shift vs. residential traffic shift
//! (February vs. March), over the ISP's view *including transit* (§3.4).
//!
//! Each point is an AS; x = normalized change in mean total volume,
//! y = normalized change in mean eyeball-facing volume. The findings:
//! a positive correlation for most ASes, plus a populated top-left
//! quadrant (total down, residential up — companies whose office traffic
//! vanished while their remote-work traffic grew).

use crate::context::Context;
use crate::engine::{self, Demand, EngineOutput, EnginePlan};
use crate::report::TextTable;
use lockdown_analysis::asgroup::{
    residential_shift, shift_correlation, QuadrantCounts, RatioGroup, ResidentialShift,
};
use lockdown_analysis::consumer::AsTotalsConsumer;
use lockdown_flow::time::Date;
use lockdown_topology::asn::Asn;
use lockdown_topology::registry::ISP_CE_ASN;
use lockdown_topology::vantage::VantagePoint;
use lockdown_traffic::plan::Stream;

/// Base window (February week).
pub const BASE: (Date, Date) = (
    Date {
        year: 2020,
        month: 2,
        day: 19,
    },
    Date {
        year: 2020,
        month: 2,
        day: 25,
    },
);
/// Lockdown window (March week).
pub const LOCKDOWN: (Date, Date) = (
    Date {
        year: 2020,
        month: 3,
        day: 18,
    },
    Date {
        year: 2020,
        month: 3,
        day: 24,
    },
);

/// Fig. 6 result.
#[derive(Debug, Clone)]
pub struct Fig6 {
    /// The scatter points.
    pub points: Vec<ResidentialShift>,
    /// Quadrant membership counts.
    pub quadrants: QuadrantCounts,
    /// Pearson correlation between the two deltas.
    pub correlation: f64,
    /// Number of workday-dominated ASes in the base window (§3.4's focus
    /// group).
    pub workday_dominated: usize,
}

/// Total and residential-only demands for one window of ISP transit flows.
fn window_demands(
    plan: &mut EnginePlan,
    window: (Date, Date),
) -> (Demand<AsTotalsConsumer>, Demand<AsTotalsConsumer>) {
    let region = VantagePoint::IspCe.region();
    let all = plan.subscribe(Stream::IspTransit, window.0, window.1, move || {
        AsTotalsConsumer::all(region)
    });
    let residential = plan.subscribe(Stream::IspTransit, window.0, window.1, move || {
        AsTotalsConsumer::touching(region, ISP_CE_ASN)
    });
    (all, residential)
}

/// Demand handles of one Fig. 6 pass.
pub struct Plan {
    base: (Demand<AsTotalsConsumer>, Demand<AsTotalsConsumer>),
    lockdown: (Demand<AsTotalsConsumer>, Demand<AsTotalsConsumer>),
}

/// Declare Fig. 6's trace demands on a shared engine plan.
pub fn plan(plan: &mut EnginePlan) -> Plan {
    Plan {
        base: window_demands(plan, BASE),
        lockdown: window_demands(plan, LOCKDOWN),
    }
}

/// Assemble Fig. 6 from a finished engine pass.
pub fn finish(ctx: &Context, plan: Plan, out: &mut EngineOutput) -> Fig6 {
    let base_all = out.take(plan.base.0).totals;
    let base_res = out.take(plan.base.1).totals;
    let lock_all = out.take(plan.lockdown.0).totals;
    let lock_res = out.take(plan.lockdown.1).totals;

    // The §3.4 point set: business ASes seen in the transit view (the ISP
    // itself is the eyeball side, not a point).
    let ases: Vec<Asn> = ctx
        .registry
        .ases()
        .iter()
        .map(|a| a.asn)
        .filter(|&a| a != ISP_CE_ASN)
        .filter(|&a| base_all.mean_daily_bytes(a) > 0.0 || lock_all.mean_daily_bytes(a) > 0.0)
        .collect();

    let points = residential_shift(&base_all, &lock_all, &base_res, &lock_res, ases);
    let quadrants = QuadrantCounts::of(&points);
    let correlation = shift_correlation(&points);
    let workday_dominated = base_all.in_group(RatioGroup::WorkdayDominated).len();
    Fig6 {
        points,
        quadrants,
        correlation,
        workday_dominated,
    }
}

/// Run Fig. 6 standalone.
pub fn run(ctx: &Context) -> Fig6 {
    let mut eplan = EnginePlan::new();
    let p = plan(&mut eplan);
    finish(
        ctx,
        p,
        &mut engine::run(ctx, eplan).expect("archive-free engine pass cannot fail"),
    )
}

impl Fig6 {
    /// Render quadrant counts and correlation.
    pub fn render(&self) -> String {
        let mut t = TextTable::new(["quadrant", "ASes"]);
        t.row([
            "total ↑ / residential ↑",
            &self.quadrants.both_up.to_string(),
        ]);
        t.row([
            "total ↓ / residential ↑",
            &self.quadrants.total_down_res_up.to_string(),
        ]);
        t.row([
            "total ↓ / residential ↓",
            &self.quadrants.both_down.to_string(),
        ]);
        t.row([
            "total ↑ / residential ↓",
            &self.quadrants.total_up_res_down.to_string(),
        ]);
        format!(
            "Fig. 6 — per-AS total vs residential shift (Feb vs Mar)\n{}\ncorrelation = {:.3}, workday-dominated ASes = {}\n",
            t.render(),
            self.correlation,
            self.workday_dominated
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::Fidelity;
    use std::sync::OnceLock;

    fn fig() -> &'static Fig6 {
        static FIG: OnceLock<Fig6> = OnceLock::new();
        FIG.get_or_init(|| run(&Context::new(Fidelity::Test)))
    }

    #[test]
    fn scatter_is_populated() {
        let f = fig();
        assert!(f.points.len() >= 40, "only {} points", f.points.len());
    }

    #[test]
    fn positive_correlation() {
        // §3.4: "for a majority of the ASes, there is a correlation between
        // the increase in traffic involving eyeball networks and the total
        // increase".
        let f = fig();
        assert!(
            f.correlation > 0.2,
            "correlation {:.3} should be positive",
            f.correlation
        );
    }

    #[test]
    fn top_left_quadrant_exists() {
        // "some ASes suffer a decrease in total traffic, yet, the
        // residential traffic grows (top-left quadrant)".
        let f = fig();
        assert!(
            f.quadrants.total_down_res_up > 0,
            "top-left quadrant empty: {:?}",
            f.quadrants
        );
        // But most points see residential growth overall.
        let res_up = f.quadrants.both_up + f.quadrants.total_down_res_up;
        assert!(
            res_up * 2 > f.points.len(),
            "residential growth should dominate"
        );
    }

    #[test]
    fn deltas_in_range() {
        for p in &fig().points {
            assert!((-1.0..=1.0).contains(&p.total_delta));
            assert!((-1.0..=1.0).contains(&p.residential_delta));
        }
    }

    #[test]
    fn workday_group_nonempty() {
        assert!(fig().workday_dominated > 10);
    }

    #[test]
    fn renders() {
        assert!(fig().render().contains("correlation"));
    }
}
