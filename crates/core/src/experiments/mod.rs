//! One driver per figure and table of the paper.
//!
//! Every driver generates its own slice of the synthetic trace (generation
//! is deterministic and cell-seeded, so slices are consistent across
//! experiments), runs the `lockdown-analysis` pipeline over it, and returns
//! a typed result with a plain-text `render()`.
//!
//! | Module | Reproduces |
//! |---|---|
//! | [`fig1`] | Fig. 1 — weekly traffic across vantage points |
//! | [`fig2`] | Fig. 2 — diurnal patterns and day classification |
//! | [`fig3`] | Fig. 3 — hourly volumes for the four analysis weeks |
//! | [`fig4`] | Fig. 4 — hypergiant vs. other-AS growth |
//! | [`fig5`] | Fig. 5 — IXP port-utilization ECDFs |
//! | [`fig6`] | Fig. 6 — per-AS total vs. residential shifts |
//! | [`fig7`] | Fig. 7 — top application ports |
//! | [`fig8`] | Fig. 8 — gaming at IXP-SE |
//! | [`fig9`] | Fig. 9 — application-class heatmaps |
//! | [`fig10`] | Fig. 10 — VPN: port- vs. domain-identified |
//! | [`fig11_12`] | Figs. 11–12 and §7 statistics — the EDU network |
//! | [`sec3_4`] | §3.4 — remote-work AS ratio groups |
//! | [`sec9`] | §9 — peak vs. valley growth decomposition |
//! | [`tables`] | Table 1 (filters) and Table 2 (hypergiants) |

pub mod fig1;
pub mod fig2;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod sec3_4;
pub mod sec9;
pub mod fig10;
pub mod fig11_12;
pub mod tables;

use crate::context::Context;
use lockdown_analysis::timeseries::HourlyVolume;
use lockdown_flow::time::Date;
use lockdown_topology::vantage::VantagePoint;
use lockdown_traffic::parallel::default_workers;

/// Accumulate a vantage point's hourly volume over an inclusive range.
/// Long sweeps (Fig. 1/2 cover 120+ days) fan out over scoped threads;
/// cell seeding makes the result identical to the sequential fold.
pub(crate) fn volume_over(ctx: &Context, vp: VantagePoint, start: Date, end: Date) -> HourlyVolume {
    let generator = ctx.generator();
    let days = start.days_until(end) + 1;
    if days < 14 {
        let mut volume = HourlyVolume::new();
        generator.for_each_hour(vp, start, end, |_, _, flows| {
            volume.add_all(flows);
        });
        return volume;
    }
    generator.fold_hours_parallel(
        vp,
        start,
        end,
        default_workers(),
        HourlyVolume::new,
        |acc, _, _, flows| acc.add_all(flows),
        |mut a, b| {
            a.merge(&b);
            a
        },
    )
}
