//! One driver per figure and table of the paper.
//!
//! Every driver declares its trace demands on an [`crate::engine`] plan
//! (`plan(..)`), and assembles its typed result from the finished pass
//! (`finish(..)`); a back-compat `run(..)` wraps both in a standalone
//! engine pass. [`suite::run_all`] composes *all* drivers onto one shared
//! plan so each overlapping `(stream, date, hour)` cell is generated
//! exactly once. Every result carries a plain-text `render()`.
//!
//! | Module | Reproduces |
//! |---|---|
//! | [`fig1`] | Fig. 1 — weekly traffic across vantage points |
//! | [`fig2`] | Fig. 2 — diurnal patterns and day classification |
//! | [`fig3`] | Fig. 3 — hourly volumes for the four analysis weeks |
//! | [`fig4`] | Fig. 4 — hypergiant vs. other-AS growth |
//! | [`fig5`] | Fig. 5 — IXP port-utilization ECDFs |
//! | [`fig6`] | Fig. 6 — per-AS total vs. residential shifts |
//! | [`fig7`] | Fig. 7 — top application ports |
//! | [`fig8`] | Fig. 8 — gaming at IXP-SE |
//! | [`fig9`] | Fig. 9 — application-class heatmaps |
//! | [`fig10`] | Fig. 10 — VPN: port- vs. domain-identified |
//! | [`fig11_12`] | Figs. 11–12 and §7 statistics — the EDU network |
//! | [`sec3_4`] | §3.4 — remote-work AS ratio groups |
//! | [`sec9`] | §9 — peak vs. valley growth decomposition |
//! | [`tables`] | Table 1 (filters) and Table 2 (hypergiants) |

pub mod fig1;
pub mod fig10;
pub mod fig11_12;
pub mod fig2;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod sec3_4;
pub mod sec9;
pub mod tables;

pub mod suite;
