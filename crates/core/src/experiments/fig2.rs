//! Fig. 2 — "Drastic shift in Internet usage patterns".
//!
//! * 2a: ISP-CE hourly traffic for Wed Feb 19, Sat Feb 22 and Wed Mar 25
//!   (the lockdown workday whose shape turned weekend-like);
//! * 2b/2c: every day from Jan 1 to May 11 at ISP-CE and IXP-CE classified
//!   as workday-like or weekend-like against a February 6-hour baseline.

use crate::context::Context;
use crate::engine::{self, Demand, EngineOutput, EnginePlan};
use crate::report::{sparkline, TextTable};
use lockdown_analysis::dayclass::{
    ClassificationSummary, ClassifiedDay, DayClassifier, DayPattern,
};
use lockdown_analysis::timeseries::HourlyVolume;
use lockdown_flow::time::Date;
use lockdown_topology::vantage::VantagePoint;
use lockdown_traffic::plan::Stream;

/// The three days of Fig. 2a.
pub const FIG2A_DAYS: [(Date, &str); 3] = [
    (
        Date {
            year: 2020,
            month: 2,
            day: 19,
        },
        "Wednesday Feb 19",
    ),
    (
        Date {
            year: 2020,
            month: 2,
            day: 22,
        },
        "Saturday Feb 22",
    ),
    (
        Date {
            year: 2020,
            month: 3,
            day: 25,
        },
        "Wednesday Mar 25 (lockdown)",
    ),
];

/// Fig. 2a result: normalized hourly profiles of the three days.
#[derive(Debug, Clone)]
pub struct Fig2a {
    /// `(label, 24 hourly values normalized to the max across all days)`.
    pub profiles: Vec<(&'static str, [f64; 24])>,
}

/// Demand handles of one Fig. 2a pass.
pub struct Plan2a {
    days: Vec<(Date, &'static str, Demand<HourlyVolume>)>,
}

/// Declare Fig. 2a's trace demands on a shared engine plan.
pub fn plan_2a(plan: &mut EnginePlan) -> Plan2a {
    Plan2a {
        days: FIG2A_DAYS
            .iter()
            .map(|&(date, label)| {
                let d = plan.subscribe(
                    Stream::Vantage(VantagePoint::IspCe),
                    date,
                    date,
                    HourlyVolume::new,
                );
                (date, label, d)
            })
            .collect(),
    }
}

/// Assemble Fig. 2a from a finished engine pass.
pub fn finish_2a(plan: Plan2a, out: &mut EngineOutput) -> Fig2a {
    let mut raw = Vec::new();
    for (date, label, demand) in plan.days {
        let volume = out.take(demand);
        raw.push((label, volume.day_profile(date)));
    }
    let max = raw
        .iter()
        .flat_map(|(_, p)| p.iter())
        .copied()
        .max()
        .unwrap_or(1)
        .max(1) as f64;
    let profiles = raw
        .into_iter()
        .map(|(label, p)| {
            let mut out = [0.0; 24];
            for (o, v) in out.iter_mut().zip(p) {
                *o = v as f64 / max;
            }
            (label, out)
        })
        .collect();
    Fig2a { profiles }
}

/// Run Fig. 2a (ISP-CE) standalone.
pub fn run_2a(ctx: &Context) -> Fig2a {
    let mut eplan = EnginePlan::new();
    let p = plan_2a(&mut eplan);
    finish_2a(
        p,
        &mut engine::run(ctx, eplan).expect("archive-free engine pass cannot fail"),
    )
}

impl Fig2a {
    /// Render as a small table plus sparklines.
    pub fn render(&self) -> String {
        let mut t = TextTable::new(["day", "profile (00..23h)", "10h", "21h"]);
        for (label, p) in &self.profiles {
            t.row([
                label.to_string(),
                sparkline(p),
                format!("{:.2}", p[10]),
                format!("{:.2}", p[21]),
            ]);
        }
        format!(
            "Fig. 2a — ISP-CE hourly traffic, normalized\n{}",
            t.render()
        )
    }
}

/// Fig. 2b/2c result for one vantage point.
#[derive(Debug, Clone)]
pub struct Fig2bc {
    /// The vantage point (ISP-CE for 2b, IXP-CE for 2c).
    pub vantage: VantagePoint,
    /// Every classified day Jan 1 – May 11.
    pub days: Vec<ClassifiedDay>,
}

/// Demand handles of one Fig. 2b/2c pass.
pub struct Plan2bc {
    vantage: VantagePoint,
    volume: Demand<HourlyVolume>,
}

/// Declare Fig. 2b/2c's trace demand on a shared engine plan.
pub fn plan_2bc(plan: &mut EnginePlan, vantage: VantagePoint) -> Plan2bc {
    let start = Date::new(2020, 1, 1);
    let end = Date::new(2020, 5, 11);
    Plan2bc {
        vantage,
        volume: plan.subscribe(Stream::Vantage(vantage), start, end, HourlyVolume::new),
    }
}

/// Assemble Fig. 2b/2c from a finished engine pass.
pub fn finish_2bc(plan: Plan2bc, out: &mut EngineOutput) -> Fig2bc {
    let start = Date::new(2020, 1, 1);
    let end = Date::new(2020, 5, 11);
    let volume = out.take(plan.volume);
    let classifier = DayClassifier::train_february(&volume, plan.vantage.region());
    let days = classifier.classify_range(&volume, start, end);
    Fig2bc {
        vantage: plan.vantage,
        days,
    }
}

/// Run Fig. 2b (ISP-CE) or 2c (IXP-CE) standalone.
pub fn run_2bc(ctx: &Context, vantage: VantagePoint) -> Fig2bc {
    let mut eplan = EnginePlan::new();
    let p = plan_2bc(&mut eplan, vantage);
    finish_2bc(
        p,
        &mut engine::run(ctx, eplan).expect("archive-free engine pass cannot fail"),
    )
}

impl Fig2bc {
    /// Summary over a sub-range.
    pub fn summary(&self, start: Date, end: Date) -> ClassificationSummary {
        let subset: Vec<ClassifiedDay> = self
            .days
            .iter()
            .filter(|d| d.date >= start && d.date <= end)
            .copied()
            .collect();
        ClassificationSummary::of(&subset)
    }

    /// Fraction of *calendar workdays* in a range classified weekend-like
    /// (the paper's headline: "from mid Mar 2020 onward … almost all days
    /// are classified as weekend-like").
    pub fn workdays_turned_weekend(&self, start: Date, end: Date) -> f64 {
        let workdays: Vec<&ClassifiedDay> = self
            .days
            .iter()
            .filter(|d| {
                d.date >= start
                    && d.date <= end
                    && d.calendar == lockdown_scenario::calendar::DayType::Workday
            })
            .collect();
        if workdays.is_empty() {
            return 0.0;
        }
        workdays
            .iter()
            .filter(|d| d.pattern == DayPattern::WeekendLike)
            .count() as f64
            / workdays.len() as f64
    }

    /// Render a per-month summary table.
    pub fn render(&self) -> String {
        let mut t = TextTable::new(["month", "workday-like", "weekend-like", "calendar matches"]);
        for (m, last) in [(1u8, 31u8), (2, 29), (3, 31), (4, 30), (5, 11)] {
            let s = self.summary(Date::new(2020, m, 1), Date::new(2020, m, last));
            t.row([
                format!("2020-{m:02}"),
                s.workday_like.to_string(),
                s.weekend_like.to_string(),
                format!("{}/{}", s.matches, s.matches + s.mismatches),
            ]);
        }
        format!(
            "Fig. 2b/2c — day-pattern classification at {}\n{}",
            self.vantage,
            t.render()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::Fidelity;
    use std::sync::OnceLock;

    fn ctx() -> &'static Context {
        static CTX: OnceLock<Context> = OnceLock::new();
        CTX.get_or_init(|| Context::new(Fidelity::Test))
    }

    #[test]
    fn fig2a_shapes() {
        let f = run_2a(ctx());
        let feb_wed = f.profiles[0].1;
        let feb_sat = f.profiles[1].1;
        let mar_wed = f.profiles[2].1;
        // Weekend and lockdown days gain morning momentum: their
        // morning-to-evening ratio far exceeds the pre-pandemic
        // Wednesday's (the Fig. 2a contrast).
        let ratio = |p: &[f64; 24]| p[10] / p[21];
        assert!(
            ratio(&feb_sat) > 1.2 * ratio(&feb_wed),
            "sat {} wed {}",
            ratio(&feb_sat),
            ratio(&feb_wed)
        );
        assert!(
            ratio(&mar_wed) > 1.2 * ratio(&feb_wed),
            "mar {} feb {}",
            ratio(&mar_wed),
            ratio(&feb_wed)
        );
        // And absolutely more morning traffic, too.
        assert!(feb_sat[10] > 1.1 * feb_wed[10]);
        assert!(mar_wed[10] > 1.1 * feb_wed[10]);
        // All profiles peak in the evening.
        for (label, p) in &f.profiles {
            let peak_hour = (0..24).max_by(|&a, &b| p[a].total_cmp(&p[b])).unwrap();
            assert!((18..=22).contains(&peak_hour), "{label}: peak {peak_hour}");
        }
        // Lockdown Wednesday's total exceeds February Wednesday's.
        let sum = |p: &[f64; 24]| p.iter().sum::<f64>();
        assert!(sum(&mar_wed) > 1.08 * sum(&feb_wed));
    }

    #[test]
    fn fig2bc_classification_flips_mid_march() {
        for vp in [VantagePoint::IspCe, VantagePoint::IxpCe] {
            let f = run_2bc(ctx(), vp);
            // Before the lockdown, classification matches the calendar.
            let feb = f.summary(Date::new(2020, 2, 1), Date::new(2020, 2, 29));
            assert!(
                feb.accuracy() > 0.85,
                "{vp}: Feb accuracy {}",
                feb.accuracy()
            );
            // From April on, almost all workdays classify weekend-like.
            let flipped = f.workdays_turned_weekend(Date::new(2020, 4, 1), Date::new(2020, 4, 30));
            assert!(
                flipped > 0.85,
                "{vp}: only {flipped:.2} of April workdays flipped"
            );
            // Pre-covid February workdays did not flip.
            let feb_flip = f.workdays_turned_weekend(Date::new(2020, 2, 1), Date::new(2020, 2, 29));
            assert!(feb_flip < 0.15, "{vp}: Feb flip {feb_flip:.2}");
        }
    }

    #[test]
    fn renders() {
        let a = run_2a(ctx());
        assert!(a.render().contains("Mar 25"));
        let b = run_2bc(ctx(), VantagePoint::IspCe);
        assert!(b.render().contains("2020-04"));
    }
}
