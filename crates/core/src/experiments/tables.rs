//! Table 1 (application-classification filters) and Table 2 (hypergiants).

use crate::context::Context;
use crate::report::TextTable;
use lockdown_analysis::appclass::{Classifier, PaperClass};
use lockdown_topology::hypergiants::HYPERGIANTS;

/// One Table 1 row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Table1Row {
    /// The application class.
    pub class: PaperClass,
    /// Number of filters.
    pub filters: usize,
    /// Number of distinct ASNs referenced.
    pub asns: usize,
    /// Number of distinct transport ports referenced.
    pub ports: usize,
}

/// Table 1 result.
#[derive(Debug, Clone)]
pub struct Table1 {
    /// Rows in the paper's order.
    pub rows: Vec<Table1Row>,
    /// Total filter combinations ("more than 50").
    pub total_filters: usize,
}

/// Regenerate Table 1 from the classifier's filter inventory.
pub fn table1(ctx: &Context) -> Table1 {
    let classifier = Classifier::from_registry(&ctx.registry);
    let rows = PaperClass::ALL
        .iter()
        .map(|&class| {
            let (filters, asns, ports) = classifier.table1_row(class);
            Table1Row {
                class,
                filters,
                asns,
                ports,
            }
        })
        .collect();
    Table1 {
        rows,
        total_filters: classifier.total_filters(),
    }
}

impl Table1 {
    /// The paper's published counts per class: (filters, ASNs, ports).
    pub fn paper_counts(class: PaperClass) -> (usize, usize, usize) {
        match class {
            PaperClass::WebConf => (7, 1, 6),
            PaperClass::Vod => (5, 5, 0),
            PaperClass::Gaming => (8, 5, 57),
            PaperClass::SocialMedia => (4, 4, 1),
            PaperClass::Messaging => (3, 0, 5),
            PaperClass::Email => (1, 0, 10),
            PaperClass::Educational => (9, 9, 0),
            PaperClass::CollabWorking => (8, 2, 9),
            PaperClass::Cdn => (8, 8, 0),
        }
    }

    /// Render with a paper-vs-ours comparison.
    pub fn render(&self) -> String {
        let mut t = TextTable::new(["application class", "filters", "ASNs", "ports", "paper"]);
        for r in &self.rows {
            let p = Self::paper_counts(r.class);
            t.row([
                r.class.label().to_string(),
                r.filters.to_string(),
                r.asns.to_string(),
                r.ports.to_string(),
                format!("{}/{}/{}", p.0, p.1, p.2),
            ]);
        }
        format!(
            "Table 1 — classification filters ({} combinations total)\n{}",
            self.total_filters,
            t.render()
        )
    }
}

/// Render Table 2 (the hypergiant list, verbatim from the paper).
pub fn table2() -> String {
    let mut t = TextTable::new(["Org. Name", "ASN"]);
    for hg in HYPERGIANTS {
        t.row([hg.name.to_string(), hg.asn.0.to_string()]);
    }
    format!("Table 2 — hypergiant ASes\n{}", t.render())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::Fidelity;

    #[test]
    fn table1_matches_paper_exactly() {
        let ctx = Context::new(Fidelity::Test);
        let t = table1(&ctx);
        for r in &t.rows {
            let paper = Table1::paper_counts(r.class);
            assert_eq!(
                (r.filters, r.asns, r.ports),
                paper,
                "{}: ours vs paper",
                r.class
            );
        }
        assert!(t.total_filters > 50);
    }

    #[test]
    fn table2_lists_fifteen() {
        let s = table2();
        assert!(s.contains("Google Inc."));
        assert!(s.contains("15169"));
        assert_eq!(s.lines().count(), 15 + 3);
    }

    #[test]
    fn table1_renders_comparison() {
        let ctx = Context::new(Fidelity::Test);
        let s = table1(&ctx).render();
        assert!(s.contains("8/5/57"), "gaming paper counts shown");
    }
}
