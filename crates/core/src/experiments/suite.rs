//! The whole figure suite as ONE engine pass.
//!
//! Every driver contributes its demands to a single [`EnginePlan`]; the
//! engine generates each distinct `(stream, date, hour)` cell exactly once
//! and fans it out to every subscribed consumer. The per-figure `run()`
//! wrappers remain for standalone use; this module is what the CLI's
//! `figures` command uses when the full suite is requested.

use crate::context::Context;
use crate::engine::{self, EngineOutput, EnginePlan, EngineStats, ShardAssembler, SliceOutcome};
use crate::experiments::{
    fig1, fig10, fig11_12, fig2, fig3, fig4, fig5, fig6, fig7, fig8, fig9, sec3_4, sec9, tables,
};
use crate::supervisor::{DegradedReport, SupervisorMetrics};
use lockdown_chaos::ChaosConfig;
use lockdown_collect::{CollectMetrics, WireConfig};
use lockdown_store::{StoreError, StoreMetrics};
use lockdown_topology::vantage::VantagePoint;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Every figure and table of the paper, produced by one engine pass.
pub struct Suite {
    /// Table 1 — application-classification filters.
    pub table1: tables::Table1,
    /// Fig. 1 — weekly traffic across vantage points.
    pub fig1: fig1::Fig1,
    /// Fig. 2a — the three days' diurnal profiles.
    pub fig2a: fig2::Fig2a,
    /// Fig. 2b — ISP-CE day classification.
    pub fig2b: fig2::Fig2bc,
    /// Fig. 2c — IXP-CE day classification.
    pub fig2c: fig2::Fig2bc,
    /// Fig. 3a — ISP-CE hourly volumes for the four analysis weeks.
    pub fig3a: fig3::Fig3a,
    /// Fig. 3b — the three IXPs' workday/weekend profiles.
    pub fig3b: fig3::Fig3b,
    /// Fig. 4 — hypergiant vs. other-AS growth.
    pub fig4: fig4::Fig4,
    /// Fig. 5 — IXP port-utilization ECDFs.
    pub fig5: fig5::Fig5,
    /// Fig. 6 — per-AS total vs. residential shifts.
    pub fig6: fig6::Fig6,
    /// §3.4 — remote-work AS ratio groups.
    pub sec34: sec3_4::Sec34,
    /// Fig. 7a — top ports at ISP-CE.
    pub fig7_isp: fig7::Fig7,
    /// Fig. 7b — top ports at IXP-CE.
    pub fig7_ixp: fig7::Fig7,
    /// Fig. 8 — gaming at IXP-SE.
    pub fig8: fig8::Fig8,
    /// Fig. 9 — application-class heatmaps, core-four order.
    pub fig9: Vec<fig9::Fig9>,
    /// Fig. 10 — VPN: port- vs. domain-identified.
    pub fig10: fig10::Fig10,
    /// Figs. 11–12 and §7 — the EDU network.
    pub edu: fig11_12::EduFigures,
    /// §9 — peak vs. valley growth decomposition.
    pub sec9: sec9::Sec9,
    /// What the shared pass did (dedup story included).
    pub stats: EngineStats,
    /// Wire-plane metrics, present when the pass ran in wire mode.
    pub wire_metrics: Option<Arc<CollectMetrics>>,
    /// Conservation-audit report, present when the pass ran in wire mode
    /// with `WireConfig::audit` set.
    pub audit: Option<lockdown_audit::Report>,
    /// Store metrics, present when the pass ran against an archive.
    pub store_metrics: Option<Arc<StoreMetrics>>,
    /// Supervisor metrics, present when the pass ran supervised.
    pub supervisor_metrics: Option<Arc<SupervisorMetrics>>,
    /// Degraded-mode report, present when a supervised pass quarantined
    /// at least one cell. Affected figures are annotated in `renders()`.
    pub degraded: Option<DegradedReport>,
}

/// How to run the suite: wire plane, archive, and chaos supervision are
/// all optional and compose.
#[derive(Default)]
pub struct SuiteOptions {
    /// Route every cell through the wire-mode collection plane.
    pub wire: Option<WireConfig>,
    /// Spill/replay cells against a columnar archive at this directory.
    pub archive: Option<PathBuf>,
    /// Supervise the pass: panic isolation, retries, quarantine, and —
    /// with an archive — checkpoint/resume. `ChaosConfig::zero()` (all
    /// rates 0) supervises without injecting any faults.
    pub chaos: Option<ChaosConfig>,
}

/// Every figure's demand handles, pending redemption after the pass.
pub(crate) struct Plans {
    p1: fig1::Plan,
    p2a: fig2::Plan2a,
    p2b: fig2::Plan2bc,
    p2c: fig2::Plan2bc,
    p3a: fig3::Plan3a,
    p3b: fig3::Plan3b,
    p4: fig4::Plan,
    p5: fig5::Plan,
    p6: fig6::Plan,
    p34: sec3_4::Plan,
    p7_isp: fig7::Plan,
    p7_ixp: fig7::Plan,
    p8: fig8::Plan,
    p9: Vec<fig9::Plan>,
    p10: fig10::Plan,
    pedu: fig11_12::Plan,
    p9s: sec9::Plan,
}

/// Subscribe every figure driver to one shared plan, labelling each
/// driver's subscriptions so a degraded pass can name affected figures.
pub(crate) fn build_plan(ctx: &Context, plan: &mut EnginePlan) -> Plans {
    Plans {
        p1: plan.scoped("fig1", fig1::plan),
        p2a: plan.scoped("fig2a", fig2::plan_2a),
        p2b: plan.scoped("fig2b", |p| fig2::plan_2bc(p, VantagePoint::IspCe)),
        p2c: plan.scoped("fig2c", |p| fig2::plan_2bc(p, VantagePoint::IxpCe)),
        p3a: plan.scoped("fig3a", fig3::plan_3a),
        p3b: plan.scoped("fig3b", fig3::plan_3b),
        p4: plan.scoped("fig4", fig4::plan),
        p5: plan.scoped("fig5", fig5::plan),
        p6: plan.scoped("fig6", fig6::plan),
        p34: plan.scoped("sec3.4", sec3_4::plan),
        p7_isp: plan.scoped("fig7a", |p| fig7::plan(p, VantagePoint::IspCe)),
        p7_ixp: plan.scoped("fig7b", |p| fig7::plan(p, VantagePoint::IxpCe)),
        p8: plan.scoped("fig8", |p| fig8::plan(p, &ctx.registry)),
        p9: VantagePoint::CORE_FOUR
            .into_iter()
            .map(|vp| {
                plan.scoped(&format!("fig9:{}", vp.label()), |p| {
                    fig9::plan(p, &ctx.registry, vp)
                })
            })
            .collect(),
        p10: plan.scoped("fig10", |p| fig10::plan(p, ctx)),
        pedu: plan.scoped("fig11-12", |p| fig11_12::plan(p, &ctx.registry)),
        p9s: plan.scoped("sec9", sec9::plan),
    }
}

/// Redeem every demand against the pass output and assemble the suite.
pub(crate) fn assemble(ctx: &Context, plans: Plans, mut out: EngineOutput) -> Suite {
    Suite {
        table1: tables::table1(ctx),
        fig1: fig1::finish(plans.p1, &mut out),
        fig2a: fig2::finish_2a(plans.p2a, &mut out),
        fig2b: fig2::finish_2bc(plans.p2b, &mut out),
        fig2c: fig2::finish_2bc(plans.p2c, &mut out),
        fig3a: fig3::finish_3a(plans.p3a, &mut out),
        fig3b: fig3::finish_3b(plans.p3b, &mut out),
        fig4: fig4::finish(plans.p4, &mut out),
        fig5: fig5::finish(ctx, plans.p5, &mut out),
        fig6: fig6::finish(ctx, plans.p6, &mut out),
        sec34: sec3_4::finish(plans.p34, &mut out),
        fig7_isp: fig7::finish(plans.p7_isp, &mut out),
        fig7_ixp: fig7::finish(plans.p7_ixp, &mut out),
        fig8: fig8::finish(plans.p8, &mut out),
        fig9: plans
            .p9
            .into_iter()
            .map(|p| fig9::finish(p, &mut out))
            .collect(),
        fig10: fig10::finish(plans.p10, &mut out),
        edu: fig11_12::finish(plans.pedu, &mut out),
        sec9: sec9::finish(plans.p9s, &mut out),
        stats: out.stats(),
        wire_metrics: out.wire_metrics().cloned(),
        audit: out.audit().cloned(),
        store_metrics: out.store_metrics().cloned(),
        supervisor_metrics: out.supervisor_metrics().cloned(),
        degraded: out.degraded().cloned(),
    }
}

/// Run the full suite through one shared engine pass.
pub fn run_all(ctx: &Context) -> Suite {
    run_all_with(ctx, None)
}

/// Run the full suite, optionally routing every cell through the wire-mode
/// collection plane (export → faulty transport → collect) before fan-out.
pub fn run_all_with(ctx: &Context, wire: Option<WireConfig>) -> Suite {
    run_all_opts(
        ctx,
        SuiteOptions {
            wire,
            ..SuiteOptions::default()
        },
    )
    .expect("archive-free engine pass cannot fail")
}

/// Run the full suite against a columnar archive: warm (replay every cell
/// from segments, zero generation) when `dir` holds a covering manifest of
/// the same generation, cold (generate and spill) otherwise. Output is
/// byte-identical either way; archive I/O or corruption surfaces as an
/// error naming the offending file.
pub fn run_all_archived(
    ctx: &Context,
    wire: Option<WireConfig>,
    dir: &Path,
) -> Result<Suite, StoreError> {
    run_all_opts(
        ctx,
        SuiteOptions {
            wire,
            archive: Some(dir.to_path_buf()),
            chaos: None,
        },
    )
}

/// Run the full suite with the full option set: wire plane, archive, and
/// chaos supervision all compose. With `chaos` set the pass never aborts
/// on retriable faults — exhausted cells are quarantined and reported in
/// `Suite::degraded` instead, and figures compute from partial data.
pub fn run_all_opts(ctx: &Context, opts: SuiteOptions) -> Result<Suite, StoreError> {
    let mut plan = EnginePlan::new();
    if let Some(cfg) = opts.wire {
        plan.with_wire(cfg);
    }
    if let Some(dir) = &opts.archive {
        plan.with_archive(dir);
    }
    if let Some(cfg) = opts.chaos {
        plan.with_supervisor(cfg);
    }
    let plans = build_plan(ctx, &mut plan);
    let out = engine::run(ctx, plan)?;
    Ok(assemble(ctx, plans, out))
}

/// How to run a *sharded* suite pass. Wire mode does not cross the shard
/// boundary, so the option set is archive + chaos only. Both sides of a
/// coordinated run — coordinator and every worker — must build from the
/// same options (the plan hash guards the subscription set; archive and
/// chaos must match by construction of the protocol's hello exchange).
#[derive(Debug, Default, Clone)]
pub struct ShardSuiteOptions {
    /// Spill/replay cells against a columnar archive at this directory.
    pub archive: Option<PathBuf>,
    /// Supervise worker slices (and, via `wkill`/`wstall`, schedule
    /// coordinator-side worker faults).
    pub chaos: Option<ChaosConfig>,
}

fn shard_plan(ctx: &Context, opts: &ShardSuiteOptions) -> (EnginePlan, Plans) {
    let mut plan = EnginePlan::new();
    if let Some(dir) = &opts.archive {
        plan.with_archive(dir);
    }
    if let Some(cfg) = opts.chaos {
        plan.with_supervisor(cfg);
    }
    let plans = build_plan(ctx, &mut plan);
    (plan, plans)
}

/// Fingerprint of the full-suite cell plan under these options (the
/// subscriptions alone determine it). Workers echo this back so an
/// assignment can never run against a differently built plan.
pub fn suite_shard_plan_hash(ctx: &Context, opts: &ShardSuiteOptions) -> u64 {
    shard_plan(ctx, opts).0.plan_hash()
}

/// Number of cells in the full-suite plan — the shard assignment index
/// space.
pub fn suite_shard_cell_count(ctx: &Context, opts: &ShardSuiteOptions) -> usize {
    let (plan, _plans) = shard_plan(ctx, opts);
    let (trace, _subs) = plan.into_trace_and_subs();
    trace.cells().len()
}

/// Worker side of a sharded suite pass: run one cell-index slice of the
/// full-suite plan and return the serialized consumer states, tallies and
/// segment inventory for the coordinator to merge.
pub fn run_suite_slice(
    ctx: &Context,
    opts: &ShardSuiteOptions,
    range: std::ops::Range<usize>,
) -> Result<SliceOutcome, StoreError> {
    let (plan, _plans) = shard_plan(ctx, opts);
    engine::run_slice(ctx, plan, range)
}

/// Coordinator side of a sharded suite pass: the engine's
/// [`ShardAssembler`] plus the retained per-figure demand handles, so the
/// merged consumer states assemble into a [`Suite`] exactly as a
/// single-process pass would.
pub struct SuiteAssembler {
    plans: Plans,
    asm: ShardAssembler,
}

impl SuiteAssembler {
    /// Build the full-suite plan and prepare the coordinated pass
    /// (resolving the archive before any worker opens it).
    pub fn new(ctx: &Context, opts: &ShardSuiteOptions) -> Result<SuiteAssembler, StoreError> {
        let (plan, plans) = shard_plan(ctx, opts);
        Ok(SuiteAssembler {
            plans,
            asm: ShardAssembler::new(ctx, plan)?,
        })
    }

    /// The plan fingerprint workers must echo.
    pub fn plan_hash(&self) -> u64 {
        self.asm.plan_hash()
    }

    /// Number of cells in the assignment index space.
    pub fn cell_count(&self) -> usize {
        self.asm.cell_count()
    }

    /// Whether the pass replays a warm archive.
    pub fn is_warm(&self) -> bool {
        self.asm.is_warm()
    }

    /// Merge one worker's completed slice.
    pub fn absorb(&mut self, outcome: SliceOutcome) -> Result<(), StoreError> {
        self.asm.absorb(outcome)
    }

    /// Give up on an assignment range every replica of which died.
    pub fn quarantine_range(&mut self, range: std::ops::Range<usize>, attempts: u32, error: &str) {
        self.asm.quarantine_range(range, attempts, error)
    }

    /// Publish the archive index and assemble the suite. `workers` is the
    /// worker *process* count recorded in the stats.
    pub fn finish(self, ctx: &Context, workers: usize) -> Result<Suite, StoreError> {
        let out = self.asm.finish(workers)?;
        Ok(assemble(ctx, self.plans, out))
    }
}

impl Suite {
    /// Rendered sections in the CLI's print order (Table 2 first — it is
    /// registry-static and needs no trace). After a degraded pass, every
    /// section whose figure lost quarantined cells carries a trailing
    /// annotation naming how many, so partial data is never mistaken for
    /// a complete reproduction.
    pub fn renders(&self) -> Vec<String> {
        let mut labelled: Vec<(Option<String>, String)> = vec![
            (None, tables::table2()),
            (None, self.table1.render()),
            (Some("fig1".into()), self.fig1.render()),
            (Some("fig2a".into()), self.fig2a.render()),
            (Some("fig2b".into()), self.fig2b.render()),
            (Some("fig2c".into()), self.fig2c.render()),
            (Some("fig3a".into()), self.fig3a.render()),
            (Some("fig3b".into()), self.fig3b.render()),
            (Some("fig4".into()), self.fig4.render()),
            (Some("fig5".into()), self.fig5.render()),
            (Some("fig6".into()), self.fig6.render()),
            (Some("sec3.4".into()), self.sec34.render()),
            (Some("fig7a".into()), self.fig7_isp.render()),
            (Some("fig7b".into()), self.fig7_ixp.render()),
            (Some("fig8".into()), self.fig8.render()),
        ];
        labelled.extend(
            VantagePoint::CORE_FOUR
                .into_iter()
                .zip(self.fig9.iter())
                .map(|(vp, f)| (Some(format!("fig9:{}", vp.label())), f.render())),
        );
        labelled.push((Some("fig10".into()), self.fig10.render()));
        labelled.push((Some("fig11-12".into()), self.edu.render()));
        labelled.push((Some("sec9".into()), self.sec9.render()));

        labelled
            .into_iter()
            .map(|(label, mut section)| {
                if let (Some(label), Some(d)) = (label, &self.degraded) {
                    if let Some((_, n)) = d.affected.iter().find(|(l, _)| *l == label) {
                        section.push_str(&format!(
                            "\n[degraded: {n} cell(s) quarantined — computed from partial data]"
                        ));
                    }
                }
                section
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::Fidelity;

    #[test]
    fn one_pass_deduplicates_overlapping_windows() {
        let ctx = Context::new(Fidelity::Test);
        let suite = run_all(&ctx);
        // The acceptance criterion: overlapping (stream, date, hour) cells
        // are generated exactly once — strictly fewer than the per-figure
        // total — while every figure still assembles.
        assert!(
            suite.stats.cells_generated < suite.stats.cells_demanded,
            "dedup must collapse overlap: {} vs {}",
            suite.stats.cells_generated,
            suite.stats.cells_demanded
        );
        assert!(
            suite.stats.dedup_ratio() > 1.5,
            "ratio {:.2}",
            suite.stats.dedup_ratio()
        );
        let sections = suite.renders();
        assert_eq!(sections.len(), 2 + 16 + 4); // tables + figures + 4 heatmaps
        for s in &sections {
            assert!(!s.is_empty());
        }
    }
}
