//! Fig. 3 — normalized hourly volume for the four selected weeks
//! (base / stage 1 / stage 2 / stage 3).
//!
//! * 3a: the ISP-CE's hour-by-hour series per week, normalized by the
//!   minimum across all four weeks;
//! * 3b: the three IXPs, reduced to workday/weekend hourly averages.

use crate::context::Context;
use crate::engine::{self, Demand, EngineOutput, EnginePlan};
use crate::report::TextTable;
use lockdown_analysis::timeseries::HourlyVolume;
use lockdown_scenario::calendar::{day_type, AnalysisWeek, DayType, FIG3_WEEKS};
use lockdown_topology::vantage::VantagePoint;
use lockdown_traffic::plan::Stream;

/// Fig. 3a result: per week, the 168 hourly values normalized by the
/// global minimum positive value.
#[derive(Debug, Clone)]
pub struct Fig3a {
    /// `(week label, 7×24 normalized hourly values)`.
    pub weeks: Vec<(&'static str, Vec<f64>)>,
}

/// Demand handles of one Fig. 3a pass.
pub struct Plan3a {
    weeks: Vec<(AnalysisWeek, Demand<HourlyVolume>)>,
}

/// Declare Fig. 3a's trace demands on a shared engine plan.
pub fn plan_3a(plan: &mut EnginePlan) -> Plan3a {
    Plan3a {
        weeks: FIG3_WEEKS
            .iter()
            .map(|&week| {
                let d = plan.subscribe(
                    Stream::Vantage(VantagePoint::IspCe),
                    week.start,
                    week.end(),
                    HourlyVolume::new,
                );
                (week, d)
            })
            .collect(),
    }
}

/// Assemble Fig. 3a from a finished engine pass.
pub fn finish_3a(plan: Plan3a, out: &mut EngineOutput) -> Fig3a {
    let mut raw: Vec<(&'static str, Vec<u64>)> = Vec::new();
    for (week, demand) in plan.weeks {
        let volume = out.take(demand);
        let series: Vec<u64> = volume
            .hourly_series(week.start, week.end())
            .into_iter()
            .map(|(_, v)| v)
            .collect();
        raw.push((week.label, series));
    }
    let min = raw
        .iter()
        .flat_map(|(_, s)| s.iter())
        .copied()
        .filter(|&v| v > 0)
        .min()
        .unwrap_or(1) as f64;
    Fig3a {
        weeks: raw
            .into_iter()
            .map(|(label, s)| (label, s.into_iter().map(|v| v as f64 / min).collect()))
            .collect(),
    }
}

/// Run Fig. 3a (ISP-CE) standalone.
pub fn run_3a(ctx: &Context) -> Fig3a {
    let mut eplan = EnginePlan::new();
    let p = plan_3a(&mut eplan);
    finish_3a(
        p,
        &mut engine::run(ctx, eplan).expect("archive-free engine pass cannot fail"),
    )
}

impl Fig3a {
    /// Mean normalized volume of one week.
    pub fn week_mean(&self, label: &str) -> f64 {
        let (_, s) = self
            .weeks
            .iter()
            .find(|(l, _)| *l == label)
            .expect("week label exists");
        s.iter().sum::<f64>() / s.len() as f64
    }

    /// Render week means and peaks.
    pub fn render(&self) -> String {
        let mut t = TextTable::new(["week", "mean", "peak", "min"]);
        for (label, s) in &self.weeks {
            let mean = s.iter().sum::<f64>() / s.len() as f64;
            let peak = s.iter().copied().fold(0.0, f64::max);
            let min = s
                .iter()
                .copied()
                .filter(|&v| v > 0.0)
                .fold(f64::MAX, f64::min);
            t.row([
                label.to_string(),
                format!("{mean:.2}"),
                format!("{peak:.2}"),
                format!("{min:.2}"),
            ]);
        }
        format!(
            "Fig. 3a — ISP-CE normalized hourly volume (min across weeks = 1.0)\n{}",
            t.render()
        )
    }
}

/// One IXP's workday/weekend hourly averages for one week.
#[derive(Debug, Clone)]
pub struct IxpWeekProfile {
    /// Week label.
    pub label: &'static str,
    /// Mean hourly bytes on workdays (24 values).
    pub workday: [f64; 24],
    /// Mean hourly bytes on weekend days.
    pub weekend: [f64; 24],
}

/// Fig. 3b result.
#[derive(Debug, Clone)]
pub struct Fig3b {
    /// Per IXP, the four weekly profiles, normalized per IXP by the
    /// global minimum positive hourly mean.
    pub ixps: Vec<(VantagePoint, Vec<IxpWeekProfile>)>,
}

fn week_profile(
    volume: &HourlyVolume,
    week: &AnalysisWeek,
    vp: VantagePoint,
) -> ([f64; 24], [f64; 24]) {
    let mut workday = [0.0f64; 24];
    let mut weekend = [0.0f64; 24];
    let (mut n_wd, mut n_we) = (0usize, 0usize);
    for date in week.start.range_inclusive(week.end()) {
        let profile = volume.day_profile(date);
        if day_type(date, vp.region()) == DayType::Workday {
            n_wd += 1;
            for (o, v) in workday.iter_mut().zip(profile) {
                *o += v as f64;
            }
        } else {
            n_we += 1;
            for (o, v) in weekend.iter_mut().zip(profile) {
                *o += v as f64;
            }
        }
    }
    for o in &mut workday {
        *o /= n_wd.max(1) as f64;
    }
    for o in &mut weekend {
        *o /= n_we.max(1) as f64;
    }
    (workday, weekend)
}

/// One analysis week's volume demand.
type WeekDemands = Vec<(AnalysisWeek, Demand<HourlyVolume>)>;

/// Demand handles of one Fig. 3b pass.
pub struct Plan3b {
    ixps: Vec<(VantagePoint, WeekDemands)>,
}

/// Declare Fig. 3b's trace demands on a shared engine plan.
pub fn plan_3b(plan: &mut EnginePlan) -> Plan3b {
    Plan3b {
        ixps: [
            VantagePoint::IxpCe,
            VantagePoint::IxpUs,
            VantagePoint::IxpSe,
        ]
        .into_iter()
        .map(|vp| {
            let weeks = FIG3_WEEKS
                .iter()
                .map(|&week| {
                    let d = plan.subscribe(
                        Stream::Vantage(vp),
                        week.start,
                        week.end(),
                        HourlyVolume::new,
                    );
                    (week, d)
                })
                .collect();
            (vp, weeks)
        })
        .collect(),
    }
}

/// Assemble Fig. 3b from a finished engine pass.
pub fn finish_3b(plan: Plan3b, out: &mut EngineOutput) -> Fig3b {
    let mut ixps = Vec::new();
    for (vp, weeks) in plan.ixps {
        let mut profiles = Vec::new();
        for (week, demand) in weeks {
            let volume = out.take(demand);
            let (workday, weekend) = week_profile(&volume, &week, vp);
            profiles.push(IxpWeekProfile {
                label: week.label,
                workday,
                weekend,
            });
        }
        // Normalize by the IXP's minimum positive hourly mean.
        let min = profiles
            .iter()
            .flat_map(|p| p.workday.iter().chain(p.weekend.iter()))
            .copied()
            .filter(|&v| v > 0.0)
            .fold(f64::MAX, f64::min);
        for p in &mut profiles {
            for v in p.workday.iter_mut().chain(p.weekend.iter_mut()) {
                *v /= min;
            }
        }
        ixps.push((vp, profiles));
    }
    Fig3b { ixps }
}

/// Run Fig. 3b (the three IXPs) standalone.
pub fn run_3b(ctx: &Context) -> Fig3b {
    let mut eplan = EnginePlan::new();
    let p = plan_3b(&mut eplan);
    finish_3b(
        p,
        &mut engine::run(ctx, eplan).expect("archive-free engine pass cannot fail"),
    )
}

impl Fig3b {
    /// The weekly profiles of one IXP.
    pub fn ixp(&self, vp: VantagePoint) -> &[IxpWeekProfile] {
        &self
            .ixps
            .iter()
            .find(|(v, _)| *v == vp)
            .expect("IXP present")
            .1
    }

    /// Mean across a profile.
    pub fn mean_of(profile: &[f64; 24]) -> f64 {
        profile.iter().sum::<f64>() / 24.0
    }

    /// Render week × (workday mean, weekend mean) per IXP.
    pub fn render(&self) -> String {
        let mut out = String::from("Fig. 3b — IXP normalized hourly means per week\n");
        for (vp, profiles) in &self.ixps {
            let mut t = TextTable::new(["week", "workday mean", "weekend mean", "daily min"]);
            for p in profiles {
                let min = p
                    .workday
                    .iter()
                    .chain(p.weekend.iter())
                    .copied()
                    .filter(|&v| v > 0.0)
                    .fold(f64::MAX, f64::min);
                t.row([
                    p.label.to_string(),
                    format!("{:.2}", Self::mean_of(&p.workday)),
                    format!("{:.2}", Self::mean_of(&p.weekend)),
                    format!("{min:.2}"),
                ]);
            }
            out.push_str(&format!("{vp}\n{}\n", t.render()));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::Fidelity;
    use std::sync::OnceLock;

    fn ctx() -> &'static Context {
        static CTX: OnceLock<Context> = OnceLock::new();
        CTX.get_or_init(|| Context::new(Fidelity::Test))
    }

    #[test]
    fn fig3a_week_ordering() {
        let f = run_3a(ctx());
        let base = f.week_mean("base");
        let stage1 = f.week_mean("stage1");
        let stage2 = f.week_mean("stage2");
        let stage3 = f.week_mean("stage3");
        // §3.1: ISP grows >20% into the lockdown, then decays to ~6%.
        assert!(stage1 / base > 1.12, "stage1/base = {}", stage1 / base);
        assert!(stage2 / base > 1.05);
        assert!(stage3 < stage1, "growth must decay by stage 3");
    }

    #[test]
    fn fig3b_minimum_levels_rise() {
        let f = run_3b(ctx());
        // "not only the peak traffic increased but also the minimum
        // traffic levels" — compare base-week min vs stage2-week min.
        for vp in [VantagePoint::IxpCe, VantagePoint::IxpSe] {
            let profiles = f.ixp(vp);
            let min_of = |p: &IxpWeekProfile| {
                p.workday
                    .iter()
                    .chain(p.weekend.iter())
                    .copied()
                    .filter(|&v| v > 0.0)
                    .fold(f64::MAX, f64::min)
            };
            let base_min = min_of(&profiles[0]);
            let stage2_min = min_of(&profiles[2]);
            assert!(
                stage2_min > base_min,
                "{vp}: min must rise ({base_min} -> {stage2_min})"
            );
        }
    }

    #[test]
    fn fig3b_us_trails() {
        let f = run_3b(ctx());
        let growth = |vp: VantagePoint, idx: usize| {
            let p = f.ixp(vp);
            Fig3b::mean_of(&p[idx].workday) / Fig3b::mean_of(&p[0].workday)
        };
        // Stage 1 (March): US barely moves while IXP-CE jumps.
        assert!(growth(VantagePoint::IxpUs, 1) < growth(VantagePoint::IxpCe, 1));
        // Stage 2 (late April): US has caught up beyond its stage 1.
        assert!(growth(VantagePoint::IxpUs, 2) > growth(VantagePoint::IxpUs, 1));
    }

    #[test]
    fn renders() {
        assert!(run_3a(ctx()).render().contains("stage3"));
        assert!(run_3b(ctx()).render().contains("IXP-US"));
    }
}
