//! Fig. 1 — "Traffic changes during 2020 at multiple vantage points":
//! daily traffic averaged per week, normalized by the third January week,
//! for the ISP, the three IXPs, the mobile operator and the roaming
//! network.

use crate::context::Context;
use crate::engine::{self, Demand, EngineOutput, EnginePlan};
use crate::report::{opt_norm, TextTable};
use lockdown_analysis::timeseries::HourlyVolume;
use lockdown_flow::time::Date;
use lockdown_topology::vantage::VantagePoint;
use lockdown_traffic::plan::Stream;
use std::collections::BTreeMap;

/// The week range Fig. 1 plots (calendar weeks of 2020).
pub const WEEKS: std::ops::RangeInclusive<u8> = 1..=18;
/// The normalization week ("normalized by 3rd week of Jan").
pub const BASE_WEEK: u8 = 3;

/// Fig. 1's vantage points, in legend order.
pub const VANTAGE_POINTS: [VantagePoint; 6] = [
    VantagePoint::IspCe,
    VantagePoint::IxpCe,
    VantagePoint::IxpSe,
    VantagePoint::IxpUs,
    VantagePoint::MobileCe,
    VantagePoint::RoamingIpx,
];

/// One vantage point's normalized weekly series.
#[derive(Debug, Clone)]
pub struct WeeklySeries {
    /// The vantage point.
    pub vantage: VantagePoint,
    /// `(week, normalized volume)`; `None` when the week has no data.
    pub series: Vec<(u8, Option<f64>)>,
}

impl WeeklySeries {
    /// Value at a week.
    pub fn at(&self, week: u8) -> Option<f64> {
        self.series
            .iter()
            .find(|(w, _)| *w == week)
            .and_then(|(_, v)| *v)
    }

    /// Peak normalized value across the plotted weeks.
    pub fn peak(&self) -> f64 {
        self.series
            .iter()
            .filter_map(|(_, v)| *v)
            .fold(0.0, f64::max)
    }
}

/// The full Fig. 1 result.
#[derive(Debug, Clone)]
pub struct Fig1 {
    /// One series per vantage point.
    pub series: Vec<WeeklySeries>,
}

/// Demand handles of one Fig. 1 pass.
pub struct Plan {
    volumes: Vec<(VantagePoint, Demand<HourlyVolume>)>,
}

/// Declare Fig. 1's trace demands on a shared engine plan.
pub fn plan(plan: &mut EnginePlan) -> Plan {
    // The plot starts Jan 1 and the paper's snapshot runs into May.
    let start = Date::new(2020, 1, 1);
    let end = Date::new(2020, 5, 3); // end of week 18
    Plan {
        volumes: VANTAGE_POINTS
            .iter()
            .map(|&vp| {
                (
                    vp,
                    plan.subscribe(Stream::Vantage(vp), start, end, HourlyVolume::new),
                )
            })
            .collect(),
    }
}

/// Assemble the figure from a finished engine pass.
pub fn finish(plan: Plan, out: &mut EngineOutput) -> Fig1 {
    let mut series = Vec::new();
    for (vp, demand) in plan.volumes {
        let volume = out.take(demand);
        let weekly: BTreeMap<(i32, u8), u64> = volume.weekly_totals();
        let base = weekly.get(&(2020, BASE_WEEK)).copied().unwrap_or(0);
        let series_vp: Vec<(u8, Option<f64>)> = WEEKS
            .map(|w| {
                let v = weekly.get(&(2020, w)).copied().unwrap_or(0);
                let norm = if base > 0 && v > 0 {
                    Some(v as f64 / base as f64)
                } else {
                    None
                };
                (w, norm)
            })
            .collect();
        series.push(WeeklySeries {
            vantage: vp,
            series: series_vp,
        });
    }
    Fig1 { series }
}

/// Run the Fig. 1 reproduction standalone (one engine pass of its own).
pub fn run(ctx: &Context) -> Fig1 {
    let mut eplan = EnginePlan::new();
    let p = plan(&mut eplan);
    finish(
        p,
        &mut engine::run(ctx, eplan).expect("archive-free engine pass cannot fail"),
    )
}

impl Fig1 {
    /// Series for one vantage point.
    pub fn vantage(&self, vp: VantagePoint) -> &WeeklySeries {
        self.series
            .iter()
            .find(|s| s.vantage == vp)
            .expect("all Fig. 1 vantage points present")
    }

    /// Render the figure as a text table (weeks × vantage points).
    pub fn render(&self) -> String {
        let mut header = vec!["week".to_string()];
        header.extend(self.series.iter().map(|s| s.vantage.label().to_string()));
        let mut t = TextTable::new(header);
        for w in WEEKS {
            let mut row = vec![format!("{w}")];
            for s in &self.series {
                row.push(opt_norm(s.at(w)));
            }
            t.row(row);
        }
        format!(
            "Fig. 1 — daily traffic averaged per week, normalized to calendar week {BASE_WEEK}\n{}",
            t.render()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::Fidelity;

    #[test]
    fn shape_matches_paper() {
        let ctx = Context::new(Fidelity::Test);
        let f = run(&ctx);

        // Base week is 1.0 by construction.
        for s in &f.series {
            let base = s.at(BASE_WEEK).expect("base week populated");
            assert!((base - 1.0).abs() < 1e-9, "{}: base {base}", s.vantage);
        }

        // Lockdown lifts the European fixed networks by roughly the
        // paper's magnitudes (ISP >15%, IXP-CE >18% at week 13).
        let isp = f.vantage(VantagePoint::IspCe);
        let ixp_ce = f.vantage(VantagePoint::IxpCe);
        assert!(
            isp.at(13).unwrap() > 1.12,
            "ISP wk13 {}",
            isp.at(13).unwrap()
        );
        assert!(
            ixp_ce.at(13).unwrap() > 1.15,
            "IXP-CE wk13 {}",
            ixp_ce.at(13).unwrap()
        );

        // The US IXP trails Europe: its week-12 growth is smaller than
        // IXP-CE's, and its curve keeps rising into late April.
        let us = f.vantage(VantagePoint::IxpUs);
        assert!(us.at(12).unwrap() < ixp_ce.at(12).unwrap());
        assert!(us.at(17).unwrap() > us.at(11).unwrap());

        // Mobile dips below baseline during the lockdown; roaming falls
        // much harder (Fig. 1's bottom curves).
        let mobile = f.vantage(VantagePoint::MobileCe);
        let roaming = f.vantage(VantagePoint::RoamingIpx);
        assert!(mobile.at(14).unwrap() < 1.02);
        assert!(
            roaming.at(14).unwrap() < 0.75,
            "roaming {}",
            roaming.at(14).unwrap()
        );
        assert!(roaming.at(14).unwrap() < mobile.at(14).unwrap());

        // ISP decays toward May while IXP-CE's gain persists (§3.1).
        let isp_late = isp.at(18).unwrap();
        let isp_peak = isp.peak();
        assert!(
            isp_late < isp_peak - 0.04,
            "ISP should decay: {isp_late} vs {isp_peak}"
        );
        assert!(ixp_ce.at(18).unwrap() > 1.10);
    }

    #[test]
    fn render_contains_all_weeks() {
        let ctx = Context::new(Fidelity::Test);
        let f = run(&ctx);
        let s = f.render();
        assert!(s.contains("ISP-CE"));
        assert!(s.contains("IPX"));
        assert_eq!(s.lines().count(), 18 + 3);
    }
}
