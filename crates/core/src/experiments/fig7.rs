//! Fig. 7 — top application ports at ISP-CE and IXP-CE: hourly volume per
//! port for three weeks, split workday/weekend, TCP/443 and TCP/80
//! excluded for readability (§4).

use crate::context::Context;
use crate::engine::{self, Demand, EngineOutput, EnginePlan};
use crate::report::TextTable;
use lockdown_analysis::consumer::PortConsumer;
use lockdown_analysis::ports::{tcp443, tcp80, PortProfile, ServiceKey};
use lockdown_scenario::calendar::{AnalysisWeek, PORTS_ISP_WEEKS, PORTS_IXP_WEEKS};
use lockdown_topology::vantage::VantagePoint;
use lockdown_traffic::plan::Stream;

/// How many ports Fig. 7 shows ("the top 3–12 ports" = 10 rows).
pub const TOP_N: usize = 10;

/// Per-week port profile.
#[derive(Debug, Clone)]
pub struct WeekPorts {
    /// Week label ("february", "march", "april").
    pub label: &'static str,
    /// The aggregated profile.
    pub profile: PortProfile,
}

/// Fig. 7 result for one vantage point.
#[derive(Debug, Clone)]
pub struct Fig7 {
    /// The vantage point (ISP-CE for 7a, IXP-CE for 7b).
    pub vantage: VantagePoint,
    /// One profile per analysis week.
    pub weeks: Vec<WeekPorts>,
    /// The top ports (by total volume across all weeks, web ports
    /// excluded), in rank order.
    pub top_ports: Vec<ServiceKey>,
}

/// Demand handles of one Fig. 7 pass.
pub struct Plan {
    vantage: VantagePoint,
    weeks: Vec<(&'static str, Demand<PortConsumer>)>,
}

/// Declare Fig. 7's trace demands on a shared engine plan.
pub fn plan(plan: &mut EnginePlan, vantage: VantagePoint) -> Plan {
    let week_set: &[AnalysisWeek] = if vantage == VantagePoint::IspCe {
        &PORTS_ISP_WEEKS
    } else {
        &PORTS_IXP_WEEKS
    };
    let region = vantage.region();
    Plan {
        vantage,
        weeks: week_set
            .iter()
            .map(|week| {
                let d = plan.subscribe(
                    Stream::Vantage(vantage),
                    week.start,
                    week.end(),
                    move || PortConsumer::new(region),
                );
                (week.label, d)
            })
            .collect(),
    }
}

/// Assemble Fig. 7 from a finished engine pass.
pub fn finish(plan: Plan, out: &mut EngineOutput) -> Fig7 {
    let mut weeks = Vec::new();
    let mut combined = PortProfile::new();
    for (label, demand) in plan.weeks {
        let profile = out.take(demand).profile;
        combined.merge(&profile);
        weeks.push(WeekPorts { label, profile });
    }
    let top_ports = combined.top_services(TOP_N, &[tcp443(), tcp80()]);
    Fig7 {
        vantage: plan.vantage,
        weeks,
        top_ports,
    }
}

/// Run Fig. 7a (ISP-CE) or 7b (IXP-CE) standalone.
pub fn run(ctx: &Context, vantage: VantagePoint) -> Fig7 {
    let mut eplan = EnginePlan::new();
    let p = plan(&mut eplan, vantage);
    finish(
        p,
        &mut engine::run(ctx, eplan).expect("archive-free engine pass cannot fail"),
    )
}

impl Fig7 {
    /// The profile of a week by label.
    pub fn week(&self, label: &str) -> &PortProfile {
        &self
            .weeks
            .iter()
            .find(|w| w.label == label)
            .expect("week exists")
            .profile
    }

    /// Total-volume growth of one port between two weeks.
    pub fn growth(&self, key: ServiceKey, from: &str, to: &str) -> Option<f64> {
        let a = self.week(from).total(key);
        let b = self.week(to).total(key);
        if a == 0 {
            None
        } else {
            Some(b as f64 / a as f64)
        }
    }

    /// Share of web ports in the last week (§4's 80%/60% claim).
    pub fn web_share(&self) -> f64 {
        self.weeks
            .last()
            .map(|w| w.profile.share_of(&[tcp443(), tcp80()]))
            .unwrap_or(0.0)
    }

    /// Render the top ports with per-week totals and growth.
    pub fn render(&self) -> String {
        let mut t = TextTable::new(["port", "feb", "mar", "apr", "mar/feb", "apr/feb"]);
        for key in &self.top_ports {
            let feb = self.weeks[0].profile.total(*key);
            let mar = self.weeks[1].profile.total(*key);
            let apr = self.weeks[2].profile.total(*key);
            let g = |v: u64| {
                if feb == 0 {
                    "-".to_string()
                } else {
                    format!("{:.2}", v as f64 / feb as f64)
                }
            };
            t.row([
                key.label(),
                feb.to_string(),
                mar.to_string(),
                apr.to_string(),
                g(mar),
                g(apr),
            ]);
        }
        format!(
            "Fig. 7 — top ports at {} (TCP/443+80 excluded; web share {:.0}%)\n{}",
            self.vantage,
            self.web_share() * 100.0,
            t.render()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::{Context, Fidelity};
    use lockdown_flow::protocol::IpProtocol;
    use std::sync::OnceLock;

    fn isp() -> &'static Fig7 {
        static FIG: OnceLock<Fig7> = OnceLock::new();
        FIG.get_or_init(|| run(&Context::new(Fidelity::Test), VantagePoint::IspCe))
    }

    fn ixp() -> &'static Fig7 {
        static FIG: OnceLock<Fig7> = OnceLock::new();
        FIG.get_or_init(|| run(&Context::new(Fidelity::Test), VantagePoint::IxpCe))
    }

    fn quic() -> ServiceKey {
        ServiceKey::Port(IpProtocol::Udp.number(), 443)
    }

    #[test]
    fn quic_tops_the_chart() {
        // UDP/443 is the largest non-web port at both vantage points.
        assert_eq!(isp().top_ports[0], quic());
        assert_eq!(ixp().top_ports[0], quic());
    }

    #[test]
    fn quic_grows_30_to_80_percent() {
        let g = isp().growth(quic(), "february", "march").unwrap();
        assert!((1.15..1.95).contains(&g), "ISP QUIC March growth {g:.2}");
        let g = ixp().growth(quic(), "february", "april").unwrap();
        assert!(g > 1.2, "IXP QUIC April growth {g:.2}");
    }

    #[test]
    fn vpn_nat_traversal_grows_gre_esp_diverge() {
        let nat = ServiceKey::Port(IpProtocol::Udp.number(), 4_500);
        let g_isp = isp().growth(nat, "february", "march").unwrap();
        let g_ixp = ixp().growth(nat, "february", "march").unwrap();
        assert!(g_isp > 1.2, "ISP UDP/4500 {g_isp:.2}");
        assert!(g_ixp > 1.2, "IXP UDP/4500 {g_ixp:.2}");
        // GRE/ESP decline at the IXP after the lockdown (§4).
        let esp = ServiceKey::Protocol(IpProtocol::Esp.number());
        let g_esp = ixp().growth(esp, "february", "april").unwrap();
        assert!(g_esp < 1.0, "IXP ESP should decline: {g_esp:.2}");
        // …while GRE sees a slight increase at the ISP.
        let gre = ServiceKey::Protocol(IpProtocol::Gre.number());
        let g_gre = isp().growth(gre, "february", "march").unwrap();
        assert!(g_gre > 1.0, "ISP GRE should rise slightly: {g_gre:.2}");
    }

    #[test]
    fn alt_http_flat() {
        let alt = ServiceKey::Port(IpProtocol::Tcp.number(), 8_080);
        for f in [isp(), ixp()] {
            if let Some(g) = f.growth(alt, "february", "march") {
                assert!((0.85..1.2).contains(&g), "TCP/8080 must stay flat: {g:.2}");
            }
        }
    }

    #[test]
    fn zoom_explodes_at_isp() {
        // §4: UDP/8801 "increases by an order of magnitude from February
        // to April" at the ISP-CE.
        let zoom = ServiceKey::Port(IpProtocol::Udp.number(), 8_801);
        let g = isp().growth(zoom, "february", "april");
        if let Some(g) = g {
            assert!(g > 2.0, "Zoom connector growth {g:.2}");
        }
    }

    #[test]
    fn tv_streaming_present_at_ixp_only_row() {
        let tv = ServiceKey::Port(IpProtocol::Tcp.number(), 8_200);
        // TCP/8200 is a top IXP-CE port and grows there in March.
        assert!(
            ixp().top_ports.contains(&tv),
            "TV port missing at IXP: {:?}",
            ixp().top_ports
        );
        let g = ixp().growth(tv, "february", "march").unwrap();
        assert!(g > 1.2, "TV streaming March growth {g:.2}");
    }

    #[test]
    fn web_share_matches_section4() {
        // "TCP/443 and TCP/80 (making up 80% and 60% in traffic at the
        // ISP-CE and IXP-CE, respectively)" — wide tolerance, the claim is
        // ISP ≫ IXP with both being the majority.
        let isp_share = isp().web_share();
        let ixp_share = ixp().web_share();
        assert!(
            (0.60..0.92).contains(&isp_share),
            "ISP web share {isp_share:.2}"
        );
        assert!(
            (0.45..0.80).contains(&ixp_share),
            "IXP web share {ixp_share:.2}"
        );
        assert!(isp_share > ixp_share);
    }

    #[test]
    fn renders() {
        assert!(isp().render().contains("UDP/443"));
    }
}
