//! Fig. 5 — ECDF of IXP-CE member port utilization, base week vs. stage 2.
//!
//! §3.3: per customer port, the minimum/average/maximum utilization
//! relative to physical capacity; during the lockdown "all curves are
//! shifted to the right".

use crate::context::Context;
use crate::engine::{self, Demand, EngineOutput, EnginePlan};
use crate::report::TextTable;
use lockdown_analysis::ecdf::Ecdf;
use lockdown_analysis::linkutil::{AsHourly, LinkUtilization};
use lockdown_flow::time::Date;
use lockdown_topology::ixp::IxpFabric;
use lockdown_topology::vantage::VantagePoint;
use lockdown_traffic::plan::Stream;

/// Base comparison day: a workday of the base week (Thu Feb 20).
pub const BASE_DAY: Date = Date {
    year: 2020,
    month: 2,
    day: 20,
};
/// Stage-2 comparison day: a workday of the stage-2 week (Thu Apr 23).
pub const STAGE2_DAY: Date = Date {
    year: 2020,
    month: 4,
    day: 23,
};

/// The three per-member statistics Fig. 5 plots.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UtilStat {
    /// Minimum hourly utilization.
    Min,
    /// Mean hourly utilization.
    Avg,
    /// Maximum hourly utilization.
    Max,
}

/// Fig. 5 result: six ECDFs (3 statistics × 2 days).
#[derive(Debug)]
pub struct Fig5 {
    /// ECDFs for the base day, in (min, avg, max) order.
    pub base: [Ecdf; 3],
    /// ECDFs for the stage-2 day.
    pub stage2: [Ecdf; 3],
    /// Members contributing to both days.
    pub members: usize,
}

/// Demand handles of one Fig. 5 pass.
pub struct Plan {
    base: Demand<AsHourly>,
    stage2: Demand<AsHourly>,
}

/// Declare Fig. 5's trace demands on a shared engine plan.
pub fn plan(plan: &mut EnginePlan) -> Plan {
    let stream = Stream::Vantage(VantagePoint::IxpCe);
    Plan {
        base: plan.subscribe(stream, BASE_DAY, BASE_DAY, || AsHourly::new(BASE_DAY)),
        stage2: plan.subscribe(stream, STAGE2_DAY, STAGE2_DAY, || AsHourly::new(STAGE2_DAY)),
    }
}

/// Assemble Fig. 5 from a finished engine pass.
pub fn finish(ctx: &Context, plan: Plan, out: &mut EngineOutput) -> Fig5 {
    let fabric = IxpFabric::synthesize(VantagePoint::IxpCe, &ctx.registry, ctx.config.seed);
    let base_hourly = out.take(plan.base);
    let stage2_hourly = out.take(plan.stage2);
    let lu = LinkUtilization::calibrate_hourly(&fabric, &base_hourly);

    let base_stats = lu.day_stats_hourly(&base_hourly);
    let stage2_stats = lu.day_stats_hourly(&stage2_hourly);

    let ecdfs = |stats: &[lockdown_analysis::linkutil::MemberUtilization]| {
        [
            Ecdf::new(stats.iter().map(|s| s.min).collect()),
            Ecdf::new(stats.iter().map(|s| s.avg).collect()),
            Ecdf::new(stats.iter().map(|s| s.max).collect()),
        ]
    };
    Fig5 {
        base: ecdfs(&base_stats),
        stage2: ecdfs(&stage2_stats),
        members: base_stats.len().min(stage2_stats.len()),
    }
}

/// Run Fig. 5 standalone.
pub fn run(ctx: &Context) -> Fig5 {
    let mut eplan = EnginePlan::new();
    let p = plan(&mut eplan);
    finish(
        ctx,
        p,
        &mut engine::run(ctx, eplan).expect("archive-free engine pass cannot fail"),
    )
}

impl Fig5 {
    /// ECDF for (day, stat).
    pub fn ecdf(&self, stage2: bool, stat: UtilStat) -> &Ecdf {
        let set = if stage2 { &self.stage2 } else { &self.base };
        match stat {
            UtilStat::Min => &set[0],
            UtilStat::Avg => &set[1],
            UtilStat::Max => &set[2],
        }
    }

    /// Render the ECDFs evaluated on the paper's 1–100% utilization grid.
    pub fn render(&self) -> String {
        let grid: Vec<f64> = [
            1.0, 10.0, 20.0, 30.0, 40.0, 50.0, 60.0, 70.0, 80.0, 90.0, 100.0,
        ]
        .iter()
        .map(|p| p / 100.0)
        .collect();
        let mut t = TextTable::new([
            "util%", "base min", "base avg", "base max", "s2 min", "s2 avg", "s2 max",
        ]);
        for &x in &grid {
            t.row([
                format!("{:.0}", x * 100.0),
                format!("{:.3}", self.ecdf(false, UtilStat::Min).fraction_le(x)),
                format!("{:.3}", self.ecdf(false, UtilStat::Avg).fraction_le(x)),
                format!("{:.3}", self.ecdf(false, UtilStat::Max).fraction_le(x)),
                format!("{:.3}", self.ecdf(true, UtilStat::Min).fraction_le(x)),
                format!("{:.3}", self.ecdf(true, UtilStat::Avg).fraction_le(x)),
                format!("{:.3}", self.ecdf(true, UtilStat::Max).fraction_le(x)),
            ]);
        }
        format!(
            "Fig. 5 — IXP-CE port-utilization ECDFs ({} members)\n{}",
            self.members,
            t.render()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::Fidelity;
    use std::sync::OnceLock;

    fn fig() -> &'static Fig5 {
        static FIG: OnceLock<Fig5> = OnceLock::new();
        FIG.get_or_init(|| run(&Context::new(Fidelity::Test)))
    }

    #[test]
    fn many_members_measured() {
        assert!(fig().members > 100, "only {} members", fig().members);
    }

    #[test]
    fn all_curves_shift_right() {
        // The paper's takeaway. Compared via medians (pointwise dominance
        // is too strict for a finite synthetic sample).
        let f = fig();
        let base = f.ecdf(false, UtilStat::Avg).quantile(0.5);
        let stage2 = f.ecdf(true, UtilStat::Avg).quantile(0.5);
        assert!(
            stage2 > base,
            "Avg: median must rise ({base:.4} -> {stage2:.4})"
        );
        // Min is sparse (small members see empty hours at reduced trace
        // resolution) and Max saturates against the 100% physical cap, so
        // both are compared via their means, allowing ties.
        for stat in [UtilStat::Min, UtilStat::Max] {
            let b = f.ecdf(false, stat).mean();
            let s = f.ecdf(true, stat).mean();
            // Allow a small tolerance: Max saturates against the 100%
            // physical cap, and members with capacity upgrades genuinely
            // see their utilization *fall* (the upgrades' purpose).
            assert!(
                s >= b - 0.02,
                "{stat:?}: mean must not fall materially ({b:.5} -> {s:.5})"
            );
        }
    }

    #[test]
    fn ordering_min_avg_max() {
        let f = fig();
        for stage2 in [false, true] {
            let min = f.ecdf(stage2, UtilStat::Min).mean();
            let avg = f.ecdf(stage2, UtilStat::Avg).mean();
            let max = f.ecdf(stage2, UtilStat::Max).mean();
            assert!(min <= avg && avg <= max);
        }
    }

    #[test]
    fn utilizations_are_fractions() {
        let f = fig();
        for stage2 in [false, true] {
            let e = f.ecdf(stage2, UtilStat::Max);
            assert_eq!(e.fraction_le(1.0), 1.0, "utilization must be ≤ 100%");
        }
    }

    #[test]
    fn renders() {
        assert!(fig().render().contains("util%"));
    }
}
