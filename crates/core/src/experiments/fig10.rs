//! Fig. 10 — VPN traffic at IXP-CE for three weeks, identified two ways:
//! by well-known VPN ports/protocols and by `*vpn*` domains on TCP/443
//! (§6). The port-based curve barely moves; the domain-based curve grows
//! by more than 200% during March working hours.

use crate::context::Context;
use crate::engine::{self, Demand, EngineOutput, EnginePlan};
use crate::report::TextTable;
use lockdown_analysis::codec::{self, CodecError, ConsumerTag, StateReader};
use lockdown_analysis::consumer::FlowConsumer;
use lockdown_analysis::vpn::{VpnClassifier, VpnMethod};
use lockdown_flow::record::FlowRecord;
use lockdown_scenario::calendar::{day_type, DayType, PORTS_IXP_WEEKS};
use lockdown_topology::asn::Region;
use lockdown_topology::vantage::VantagePoint;
use lockdown_traffic::plan::Stream;
use std::sync::Arc;

/// Hourly volume for one (week, method): workday and weekend aggregates.
#[derive(Debug, Clone, Copy, Default)]
pub struct VpnWeek {
    /// Bytes per hour-of-day across workdays.
    pub workday: [u64; 24],
    /// Bytes per hour-of-day across weekend days.
    pub weekend: [u64; 24],
}

impl VpnWeek {
    /// Total bytes in the working-hours window (09:00–17:00) on workdays.
    pub fn working_hours_bytes(&self) -> u64 {
        (9..17).map(|h| self.workday[h]).sum()
    }

    /// Total weekend bytes.
    pub fn weekend_bytes(&self) -> u64 {
        self.weekend.iter().sum()
    }
}

/// Fig. 10 result.
#[derive(Debug, Clone)]
pub struct Fig10 {
    /// `(week label, port-based, domain-based)`.
    pub weeks: Vec<(&'static str, VpnWeek, VpnWeek)>,
    /// Number of candidate VPN endpoints the §6 procedure identified.
    pub candidate_ips: usize,
}

/// Engine consumer binning VPN-classified flows into per-method
/// workday/weekend hourly aggregates.
struct VpnWeekConsumer {
    classifier: Arc<VpnClassifier>,
    region: Region,
    port: VpnWeek,
    domain: VpnWeek,
}

impl VpnWeekConsumer {
    fn new(classifier: Arc<VpnClassifier>, region: Region) -> VpnWeekConsumer {
        VpnWeekConsumer {
            classifier,
            region,
            port: VpnWeek::default(),
            domain: VpnWeek::default(),
        }
    }
}

impl FlowConsumer for VpnWeekConsumer {
    fn observe(&mut self, record: &FlowRecord) {
        let Some(method) = self.classifier.classify(record) else {
            return;
        };
        let target = match method {
            VpnMethod::Port => &mut self.port,
            VpnMethod::Domain => &mut self.domain,
        };
        let weekend = day_type(record.start.date(), self.region) != DayType::Workday;
        let hour = record.start.hour() as usize;
        if weekend {
            target.weekend[hour] += record.bytes;
        } else {
            target.workday[hour] += record.bytes;
        }
    }

    fn merge(&mut self, other: Self) {
        for h in 0..24 {
            self.port.workday[h] += other.port.workday[h];
            self.port.weekend[h] += other.port.weekend[h];
            self.domain.workday[h] += other.domain.workday[h];
            self.domain.weekend[h] += other.domain.weekend[h];
        }
    }

    fn state_tag(&self) -> ConsumerTag {
        codec::TAG_VPN_WEEK
    }

    fn encode_state(&self, out: &mut Vec<u8>) {
        // The classifier and region are constructor parameters; the
        // mergeable state is the four fixed hourly series.
        for series in [
            &self.port.workday,
            &self.port.weekend,
            &self.domain.workday,
            &self.domain.weekend,
        ] {
            for &v in series {
                codec::put_u64(out, v);
            }
        }
    }

    fn merge_state(&mut self, r: &mut StateReader<'_>) -> Result<(), CodecError> {
        for series in [
            &mut self.port.workday,
            &mut self.port.weekend,
            &mut self.domain.workday,
            &mut self.domain.weekend,
        ] {
            for slot in series.iter_mut() {
                *slot += r.u64("vpn hour bin")?;
            }
        }
        Ok(())
    }
}

/// Demand handles of one Fig. 10 pass.
pub struct Plan {
    candidate_ips: usize,
    weeks: Vec<(&'static str, Demand<VpnWeekConsumer>)>,
}

/// Declare Fig. 10's trace demands on a shared engine plan.
pub fn plan(plan: &mut EnginePlan, ctx: &Context) -> Plan {
    let classifier = Arc::new(VpnClassifier::new(ctx.vpn_candidate_ips()));
    let candidate_ips = classifier.candidate_count();
    let region = VantagePoint::IxpCe.region();
    Plan {
        candidate_ips,
        weeks: PORTS_IXP_WEEKS
            .iter()
            .map(|week| {
                let classifier = Arc::clone(&classifier);
                let d = plan.subscribe(
                    Stream::Vantage(VantagePoint::IxpCe),
                    week.start,
                    week.end(),
                    move || VpnWeekConsumer::new(Arc::clone(&classifier), region),
                );
                (week.label, d)
            })
            .collect(),
    }
}

/// Assemble Fig. 10 from a finished engine pass.
pub fn finish(plan: Plan, out: &mut EngineOutput) -> Fig10 {
    let weeks = plan
        .weeks
        .into_iter()
        .map(|(label, demand)| {
            let c = out.take(demand);
            (label, c.port, c.domain)
        })
        .collect();
    Fig10 {
        weeks,
        candidate_ips: plan.candidate_ips,
    }
}

/// Run Fig. 10 (IXP-CE) standalone.
pub fn run(ctx: &Context) -> Fig10 {
    let mut eplan = EnginePlan::new();
    let p = plan(&mut eplan, ctx);
    finish(
        p,
        &mut engine::run(ctx, eplan).expect("archive-free engine pass cannot fail"),
    )
}

impl Fig10 {
    /// One week's pair by label.
    pub fn week(&self, label: &str) -> (&VpnWeek, &VpnWeek) {
        let (_, p, d) = self
            .weeks
            .iter()
            .find(|(l, _, _)| *l == label)
            .expect("week exists");
        (p, d)
    }

    /// Working-hours growth of one method between two weeks.
    pub fn working_hours_growth(&self, method: VpnMethod, from: &str, to: &str) -> f64 {
        let pick = |label: &str| {
            let (p, d) = self.week(label);
            match method {
                VpnMethod::Port => p.working_hours_bytes(),
                VpnMethod::Domain => d.working_hours_bytes(),
            }
        };
        pick(to) as f64 / pick(from).max(1) as f64
    }

    /// Render weekly working-hours totals for both methods.
    pub fn render(&self) -> String {
        let mut t = TextTable::new([
            "week",
            "port-based (work-hrs)",
            "domain-based (work-hrs)",
            "domain weekend",
        ]);
        for (label, p, d) in &self.weeks {
            t.row([
                label.to_string(),
                p.working_hours_bytes().to_string(),
                d.working_hours_bytes().to_string(),
                d.weekend_bytes().to_string(),
            ]);
        }
        format!(
            "Fig. 10 — VPN traffic at IXP-CE ({} candidate endpoints)\n{}",
            self.candidate_ips,
            t.render()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::Fidelity;
    use std::sync::OnceLock;

    fn fig() -> &'static Fig10 {
        static FIG: OnceLock<Fig10> = OnceLock::new();
        FIG.get_or_init(|| run(&Context::new(Fidelity::Test)))
    }

    #[test]
    fn candidates_found() {
        assert!(
            fig().candidate_ips > 30,
            "{} candidates",
            fig().candidate_ips
        );
    }

    #[test]
    fn port_based_barely_moves() {
        // "we see almost no change in port-based VPN traffic before and
        // after the lockdown".
        let g = fig().working_hours_growth(VpnMethod::Port, "february", "march");
        assert!((0.75..1.45).contains(&g), "port-based growth {g:.2}");
    }

    #[test]
    fn domain_based_explodes_in_march() {
        // "the workday traffic increases by more than 200% in March".
        let g = fig().working_hours_growth(VpnMethod::Domain, "february", "march");
        assert!(g > 2.6, "domain-based March growth only {g:.2}×");
        // Port-based counting vastly undercounts the increase.
        let port = fig().working_hours_growth(VpnMethod::Port, "february", "march");
        assert!(g > 2.0 * port);
    }

    #[test]
    fn april_gain_smaller_than_march() {
        // "in April, we still see a gain … although not as large as in
        // March" (restrictions were lifting).
        let march = fig().working_hours_growth(VpnMethod::Domain, "february", "march");
        let april = fig().working_hours_growth(VpnMethod::Domain, "february", "april");
        assert!(april > 1.3, "April domain gain {april:.2}");
        assert!(
            april < march,
            "April {april:.2} must trail March {march:.2}"
        );
    }

    #[test]
    fn weekend_increase_less_pronounced() {
        let f = fig();
        let (_, d_feb) = f.week("february");
        let (_, d_mar) = f.week("march");
        let weekend_growth = d_mar.weekend_bytes() as f64 / d_feb.weekend_bytes().max(1) as f64;
        let work_growth = f.working_hours_growth(VpnMethod::Domain, "february", "march");
        assert!(
            weekend_growth < work_growth,
            "weekend {weekend_growth:.2} must trail working hours {work_growth:.2}"
        );
    }

    #[test]
    fn renders() {
        assert!(fig().render().contains("domain-based"));
    }
}
