//! Fig. 10 — VPN traffic at IXP-CE for three weeks, identified two ways:
//! by well-known VPN ports/protocols and by `*vpn*` domains on TCP/443
//! (§6). The port-based curve barely moves; the domain-based curve grows
//! by more than 200% during March working hours.

use crate::context::Context;
use crate::report::TextTable;
use lockdown_analysis::vpn::{VpnClassifier, VpnMethod};
use lockdown_scenario::calendar::{day_type, AnalysisWeek, DayType, PORTS_IXP_WEEKS};
use lockdown_topology::vantage::VantagePoint;

/// Hourly volume for one (week, method): workday and weekend aggregates.
#[derive(Debug, Clone, Copy, Default)]
pub struct VpnWeek {
    /// Bytes per hour-of-day across workdays.
    pub workday: [u64; 24],
    /// Bytes per hour-of-day across weekend days.
    pub weekend: [u64; 24],
}

impl VpnWeek {
    /// Total bytes in the working-hours window (09:00–17:00) on workdays.
    pub fn working_hours_bytes(&self) -> u64 {
        (9..17).map(|h| self.workday[h]).sum()
    }

    /// Total weekend bytes.
    pub fn weekend_bytes(&self) -> u64 {
        self.weekend.iter().sum()
    }
}

/// Fig. 10 result.
#[derive(Debug, Clone)]
pub struct Fig10 {
    /// `(week label, port-based, domain-based)`.
    pub weeks: Vec<(&'static str, VpnWeek, VpnWeek)>,
    /// Number of candidate VPN endpoints the §6 procedure identified.
    pub candidate_ips: usize,
}

/// Run Fig. 10 (IXP-CE).
pub fn run(ctx: &Context) -> Fig10 {
    let classifier = VpnClassifier::new(ctx.vpn_candidate_ips());
    let candidate_ips = classifier.candidate_count();
    let generator = ctx.generator();
    let region = VantagePoint::IxpCe.region();
    let mut weeks = Vec::new();
    for week in &PORTS_IXP_WEEKS {
        let mut port = VpnWeek::default();
        let mut domain = VpnWeek::default();
        run_week(ctx, &generator, &classifier, week, region, &mut port, &mut domain);
        weeks.push((week.label, port, domain));
    }
    Fig10 {
        weeks,
        candidate_ips,
    }
}

fn run_week(
    _ctx: &Context,
    generator: &lockdown_traffic::generate::TrafficGenerator<'_>,
    classifier: &VpnClassifier,
    week: &AnalysisWeek,
    region: lockdown_topology::asn::Region,
    port: &mut VpnWeek,
    domain: &mut VpnWeek,
) {
    generator.for_each_hour(VantagePoint::IxpCe, week.start, week.end(), |date, hour, flows| {
        let weekend = day_type(date, region) != DayType::Workday;
        for f in flows {
            let Some(method) = classifier.classify(f) else {
                continue;
            };
            let target = match method {
                VpnMethod::Port => &mut *port,
                VpnMethod::Domain => &mut *domain,
            };
            if weekend {
                target.weekend[hour as usize] += f.bytes;
            } else {
                target.workday[hour as usize] += f.bytes;
            }
        }
    });
}

impl Fig10 {
    /// One week's pair by label.
    pub fn week(&self, label: &str) -> (&VpnWeek, &VpnWeek) {
        let (_, p, d) = self
            .weeks
            .iter()
            .find(|(l, _, _)| *l == label)
            .expect("week exists");
        (p, d)
    }

    /// Working-hours growth of one method between two weeks.
    pub fn working_hours_growth(&self, method: VpnMethod, from: &str, to: &str) -> f64 {
        let pick = |label: &str| {
            let (p, d) = self.week(label);
            match method {
                VpnMethod::Port => p.working_hours_bytes(),
                VpnMethod::Domain => d.working_hours_bytes(),
            }
        };
        pick(to) as f64 / pick(from).max(1) as f64
    }

    /// Render weekly working-hours totals for both methods.
    pub fn render(&self) -> String {
        let mut t = TextTable::new([
            "week",
            "port-based (work-hrs)",
            "domain-based (work-hrs)",
            "domain weekend",
        ]);
        for (label, p, d) in &self.weeks {
            t.row([
                label.to_string(),
                p.working_hours_bytes().to_string(),
                d.working_hours_bytes().to_string(),
                d.weekend_bytes().to_string(),
            ]);
        }
        format!(
            "Fig. 10 — VPN traffic at IXP-CE ({} candidate endpoints)\n{}",
            self.candidate_ips,
            t.render()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::Fidelity;
    use std::sync::OnceLock;

    fn fig() -> &'static Fig10 {
        static FIG: OnceLock<Fig10> = OnceLock::new();
        FIG.get_or_init(|| run(&Context::new(Fidelity::Test)))
    }

    #[test]
    fn candidates_found() {
        assert!(fig().candidate_ips > 30, "{} candidates", fig().candidate_ips);
    }

    #[test]
    fn port_based_barely_moves() {
        // "we see almost no change in port-based VPN traffic before and
        // after the lockdown".
        let g = fig().working_hours_growth(VpnMethod::Port, "february", "march");
        assert!((0.75..1.45).contains(&g), "port-based growth {g:.2}");
    }

    #[test]
    fn domain_based_explodes_in_march() {
        // "the workday traffic increases by more than 200% in March".
        let g = fig().working_hours_growth(VpnMethod::Domain, "february", "march");
        assert!(g > 2.6, "domain-based March growth only {g:.2}×");
        // Port-based counting vastly undercounts the increase.
        let port = fig().working_hours_growth(VpnMethod::Port, "february", "march");
        assert!(g > 2.0 * port);
    }

    #[test]
    fn april_gain_smaller_than_march() {
        // "in April, we still see a gain … although not as large as in
        // March" (restrictions were lifting).
        let march = fig().working_hours_growth(VpnMethod::Domain, "february", "march");
        let april = fig().working_hours_growth(VpnMethod::Domain, "february", "april");
        assert!(april > 1.3, "April domain gain {april:.2}");
        assert!(april < march, "April {april:.2} must trail March {march:.2}");
    }

    #[test]
    fn weekend_increase_less_pronounced() {
        let f = fig();
        let (_, d_feb) = f.week("february");
        let (_, d_mar) = f.week("march");
        let weekend_growth = d_mar.weekend_bytes() as f64 / d_feb.weekend_bytes().max(1) as f64;
        let work_growth = f.working_hours_growth(VpnMethod::Domain, "february", "march");
        assert!(
            weekend_growth < work_growth,
            "weekend {weekend_growth:.2} must trail working hours {work_growth:.2}"
        );
    }

    #[test]
    fn renders() {
        assert!(fig().render().contains("domain-based"));
    }
}
