//! §3.4 — remote-work relevant ASes, beyond the Fig. 6 scatter.
//!
//! The paper groups ASes by their workday/weekend traffic ratio into
//! workday-dominated (companies), balanced, and weekend-dominated
//! (entertainment-leaning) groups, then focuses on the first: for those
//! ASes the total-vs-residential correlation is strongest, and they are
//! the ones that "need to provision a significant amount of extra
//! capacity … to reach multiple eyeball networks".

use crate::context::Context;
use crate::engine::{self, Demand, EngineOutput, EnginePlan};
use crate::report::TextTable;
use lockdown_analysis::asgroup::{
    residential_shift, shift_correlation, RatioGroup, ResidentialShift,
};
use lockdown_analysis::consumer::AsTotalsConsumer;
use lockdown_flow::time::Date;
use lockdown_topology::asn::Asn;
use lockdown_topology::registry::ISP_CE_ASN;
use lockdown_topology::vantage::VantagePoint;
use lockdown_traffic::plan::Stream;

/// Per-group §3.4 statistics.
#[derive(Debug, Clone)]
pub struct GroupStats {
    /// The ratio group.
    pub group: RatioGroup,
    /// ASes in the group (base window).
    pub members: usize,
    /// Correlation between total and residential shifts within the group.
    pub correlation: f64,
    /// Mean residential delta within the group.
    pub mean_residential_delta: f64,
}

/// §3.4 result.
#[derive(Debug, Clone)]
pub struct Sec34 {
    /// Stats per ratio group.
    pub groups: Vec<GroupStats>,
}

/// Demands of one comparison window: transit totals, transit residential
/// and the regular subscriber view (content ASes serving the ISP's
/// eyeballs — always residential-facing by definition, so it folds into
/// both sides at assembly time).
struct WindowDemands {
    transit_all: Demand<AsTotalsConsumer>,
    transit_res: Demand<AsTotalsConsumer>,
    subscriber: Demand<AsTotalsConsumer>,
}

/// Demand handles of one §3.4 pass.
pub struct Plan {
    base: WindowDemands,
    lockdown: WindowDemands,
}

fn window_demands(plan: &mut EnginePlan, start: Date, end: Date) -> WindowDemands {
    let region = VantagePoint::IspCe.region();
    WindowDemands {
        transit_all: plan.subscribe(Stream::IspTransit, start, end, move || {
            AsTotalsConsumer::all(region)
        }),
        transit_res: plan.subscribe(Stream::IspTransit, start, end, move || {
            AsTotalsConsumer::touching(region, ISP_CE_ASN)
        }),
        subscriber: plan.subscribe(
            Stream::Vantage(VantagePoint::IspCe),
            start,
            end,
            move || AsTotalsConsumer::all(region),
        ),
    }
}

/// Declare §3.4's trace demands on a shared engine plan.
pub fn plan(plan: &mut EnginePlan) -> Plan {
    Plan {
        base: window_demands(plan, Date::new(2020, 2, 19), Date::new(2020, 2, 25)),
        lockdown: window_demands(plan, Date::new(2020, 3, 18), Date::new(2020, 3, 24)),
    }
}

/// Assemble §3.4 from a finished engine pass.
pub fn finish(plan: Plan, out: &mut EngineOutput) -> Sec34 {
    let mut window = |w: WindowDemands| {
        let mut all = out.take(w.transit_all).totals;
        let mut residential = out.take(w.transit_res).totals;
        let subscriber = out.take(w.subscriber).totals;
        all.merge(&subscriber);
        residential.merge(&subscriber);
        (all, residential)
    };
    let (base_all, base_res) = &window(plan.base);
    let (lock_all, lock_res) = &window(plan.lockdown);

    let mut groups = Vec::new();
    for group in [
        RatioGroup::WorkdayDominated,
        RatioGroup::Balanced,
        RatioGroup::WeekendDominated,
    ] {
        let members: Vec<Asn> = base_all
            .in_group(group)
            .into_iter()
            .filter(|&a| a != ISP_CE_ASN)
            .collect();
        let points: Vec<ResidentialShift> =
            residential_shift(base_all, lock_all, base_res, lock_res, members.clone());
        groups.push(GroupStats {
            group,
            members: members.len(),
            correlation: shift_correlation(&points),
            mean_residential_delta: if points.is_empty() {
                0.0
            } else {
                points.iter().map(|p| p.residential_delta).sum::<f64>() / points.len() as f64
            },
        });
    }
    Sec34 { groups }
}

/// Run the §3.4 grouping analysis over the ISP transit view standalone.
pub fn run(ctx: &Context) -> Sec34 {
    let mut eplan = EnginePlan::new();
    let p = plan(&mut eplan);
    finish(
        p,
        &mut engine::run(ctx, eplan).expect("archive-free engine pass cannot fail"),
    )
}

impl Sec34 {
    /// Stats for one group.
    pub fn group(&self, group: RatioGroup) -> &GroupStats {
        self.groups
            .iter()
            .find(|g| g.group == group)
            .expect("all groups present")
    }

    /// Render the per-group table.
    pub fn render(&self) -> String {
        let mut t = TextTable::new(["group", "ASes", "corr(total, residential)", "mean res Δ"]);
        for g in &self.groups {
            t.row([
                format!("{:?}", g.group),
                g.members.to_string(),
                format!("{:.3}", g.correlation),
                format!("{:+.3}", g.mean_residential_delta),
            ]);
        }
        format!(
            "§3.4 — remote-work AS groups (ISP transit view)\n{}",
            t.render()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::Fidelity;
    use std::sync::OnceLock;

    fn fig() -> &'static Sec34 {
        static FIG: OnceLock<Sec34> = OnceLock::new();
        FIG.get_or_init(|| run(&Context::new(Fidelity::Test)))
    }

    #[test]
    fn all_three_groups_populated() {
        // Companies land in the workday group, entertainment ASes in the
        // weekend group, the general web in between.
        let f = fig();
        let wd = f.group(RatioGroup::WorkdayDominated);
        let bal = f.group(RatioGroup::Balanced);
        let we = f.group(RatioGroup::WeekendDominated);
        assert!(wd.members > 20, "workday group has {} members", wd.members);
        assert!(
            bal.members > 3,
            "balanced group has {} members",
            bal.members
        );
        assert!(we.members > 3, "weekend group has {} members", we.members);
    }

    #[test]
    fn correlation_holds_in_focus_group() {
        // §3.4: the correlation exists for the workday group ("When
        // looking at the other AS groups, the correlation still exists
        // but is weaker" — with the transit view dominated by business
        // ASes the other groups are small here).
        let f = fig();
        let wd = f.group(RatioGroup::WorkdayDominated);
        assert!(
            wd.correlation > 0.15,
            "workday-group correlation {:.3}",
            wd.correlation
        );
    }

    #[test]
    fn residential_traffic_grows_for_companies() {
        let f = fig();
        let wd = f.group(RatioGroup::WorkdayDominated);
        assert!(
            wd.mean_residential_delta > 0.05,
            "mean residential delta {:+.3}",
            wd.mean_residential_delta
        );
    }

    #[test]
    fn renders() {
        assert!(fig().render().contains("WorkdayDominated"));
    }
}
