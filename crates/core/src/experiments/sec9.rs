//! §9 ("Taming the traffic increase") — peak-hour vs. valley growth.
//!
//! The discussion's operational takeaway: "the effect of the pandemic
//! fills the valleys during the working hours in the residential networks
//! and has a moderate increase in the peak traffic" — peaks grow less than
//! means, so well-provisioned networks absorbed the shift. This experiment
//! quantifies exactly that: per vantage point, the growth of the weekly
//! peak hour, the weekly mean, and the weekly trough between the base and
//! stage-2 weeks.

use crate::context::Context;
use crate::engine::{self, Demand, EngineOutput, EnginePlan};
use crate::report::TextTable;
use lockdown_analysis::timeseries::HourlyVolume;
use lockdown_scenario::calendar::{AnalysisWeek, FIG3_WEEKS};
use lockdown_topology::vantage::VantagePoint;
use lockdown_traffic::plan::Stream;

/// Growth decomposition for one vantage point.
#[derive(Debug, Clone, Copy)]
pub struct PeakValley {
    /// The vantage point.
    pub vantage: VantagePoint,
    /// Peak-hour growth (stage-2 peak / base peak).
    pub peak_growth: f64,
    /// Mean-hour growth.
    pub mean_growth: f64,
    /// Trough growth (minimum positive hour).
    pub valley_growth: f64,
}

/// §9 result.
#[derive(Debug, Clone)]
pub struct Sec9 {
    /// Per-vantage decomposition (the paper's four fixed networks).
    pub rows: Vec<PeakValley>,
}

/// Demand handles of one §9 pass.
pub struct Plan {
    rows: Vec<(VantagePoint, Demand<HourlyVolume>, Demand<HourlyVolume>)>,
}

/// Declare §9's trace demands on a shared engine plan.
pub fn plan(plan: &mut EnginePlan) -> Plan {
    let base = &FIG3_WEEKS[0];
    let stage2 = &FIG3_WEEKS[2];
    Plan {
        rows: VantagePoint::CORE_FOUR
            .into_iter()
            .map(|vp| {
                let d0 = plan.subscribe(
                    Stream::Vantage(vp),
                    base.start,
                    base.end(),
                    HourlyVolume::new,
                );
                let d2 = plan.subscribe(
                    Stream::Vantage(vp),
                    stage2.start,
                    stage2.end(),
                    HourlyVolume::new,
                );
                (vp, d0, d2)
            })
            .collect(),
    }
}

/// Assemble §9 from a finished engine pass.
pub fn finish(plan: Plan, out: &mut EngineOutput) -> Sec9 {
    let base = &FIG3_WEEKS[0];
    let stage2 = &FIG3_WEEKS[2];
    let stats = |volume: &HourlyVolume, week: &AnalysisWeek| {
        let series: Vec<u64> = volume
            .hourly_series(week.start, week.end())
            .into_iter()
            .map(|(_, v)| v)
            .collect();
        let peak = series.iter().copied().max().unwrap_or(0) as f64;
        let mean = series.iter().sum::<u64>() as f64 / series.len().max(1) as f64;
        let valley = series.iter().copied().filter(|&v| v > 0).min().unwrap_or(0) as f64;
        (peak, mean, valley)
    };
    let mut rows = Vec::new();
    for (vp, d0, d2) in plan.rows {
        let (p0, m0, v0) = stats(&out.take(d0), base);
        let (p2, m2, v2) = stats(&out.take(d2), stage2);
        rows.push(PeakValley {
            vantage: vp,
            peak_growth: p2 / p0.max(1.0),
            mean_growth: m2 / m0.max(1.0),
            valley_growth: v2 / v0.max(1.0),
        });
    }
    Sec9 { rows }
}

/// Run the §9 peak/valley decomposition standalone.
pub fn run(ctx: &Context) -> Sec9 {
    let mut eplan = EnginePlan::new();
    let p = plan(&mut eplan);
    finish(
        p,
        &mut engine::run(ctx, eplan).expect("archive-free engine pass cannot fail"),
    )
}

impl Sec9 {
    /// Row for one vantage point.
    pub fn vantage(&self, vp: VantagePoint) -> &PeakValley {
        self.rows
            .iter()
            .find(|r| r.vantage == vp)
            .expect("core four present")
    }

    /// Render the decomposition.
    pub fn render(&self) -> String {
        let mut t = TextTable::new(["vantage", "peak growth", "mean growth", "valley growth"]);
        for r in &self.rows {
            t.row([
                r.vantage.label().to_string(),
                format!("{:+.1}%", (r.peak_growth - 1.0) * 100.0),
                format!("{:+.1}%", (r.mean_growth - 1.0) * 100.0),
                format!("{:+.1}%", (r.valley_growth - 1.0) * 100.0),
            ]);
        }
        format!(
            "§9 — peak vs valley growth (base week vs stage 2)\n{}",
            t.render()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::Fidelity;
    use std::sync::OnceLock;

    fn fig() -> &'static Sec9 {
        static FIG: OnceLock<Sec9> = OnceLock::new();
        FIG.get_or_init(|| run(&Context::new(Fidelity::Test)))
    }

    #[test]
    fn pandemic_fills_valleys_not_peaks() {
        // §9's claim, per European fixed network: valley growth exceeds
        // mean growth exceeds (roughly) peak growth.
        for vp in [VantagePoint::IspCe, VantagePoint::IxpCe] {
            let r = fig().vantage(vp);
            assert!(
                r.valley_growth > r.peak_growth,
                "{vp}: valley {:.2} must outgrow peak {:.2}",
                r.valley_growth,
                r.peak_growth
            );
            assert!(
                r.mean_growth > 1.05,
                "{vp}: mean growth {:.2} too small",
                r.mean_growth
            );
            // Peaks grow moderately — well under the 30% headroom networks
            // provision for (§9).
            assert!(
                r.peak_growth < 1.30,
                "{vp}: peak growth {:.2} too large",
                r.peak_growth
            );
        }
    }

    #[test]
    fn renders() {
        assert!(fig().render().contains("valley growth"));
    }
}
