//! Fig. 8 — the gaming application class at IXP-SE, weeks 7–17: unique
//! client addresses and traffic volume per hour with daily min/avg/max,
//! normalized to the minimum; includes the gaming-provider outage in the
//! first lockdown week (§5).

use crate::context::Context;
use crate::engine::{self, Demand, EngineOutput, EnginePlan};
use crate::report::TextTable;
use lockdown_analysis::appclass::{Classifier, PaperClass};
use lockdown_analysis::consumer::ClassUsageConsumer;
use lockdown_flow::time::Date;
use lockdown_topology::registry::Registry;
use lockdown_topology::vantage::VantagePoint;
use lockdown_traffic::plan::Stream;
use std::sync::Arc;

/// First Monday of calendar week 7 (Feb 10).
pub const START: Date = Date {
    year: 2020,
    month: 2,
    day: 10,
};
/// Last Sunday of calendar week 17 (Apr 26).
pub const END: Date = Date {
    year: 2020,
    month: 4,
    day: 26,
};

/// One day's summary of a metric.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DayStats {
    /// The date.
    pub date: Date,
    /// Daily minimum hourly value.
    pub min: f64,
    /// Daily mean hourly value.
    pub avg: f64,
    /// Daily maximum hourly value.
    pub max: f64,
}

/// Fig. 8 result: daily stats for unique IPs and volume, normalized to
/// the respective minimum over the range.
#[derive(Debug, Clone)]
pub struct Fig8 {
    /// Unique-address series.
    pub unique_ips: Vec<DayStats>,
    /// Volume series.
    pub volume: Vec<DayStats>,
}

fn day_stats(date: Date, hourly: &[f64]) -> DayStats {
    let min = hourly.iter().copied().fold(f64::MAX, f64::min);
    let max = hourly.iter().copied().fold(0.0f64, f64::max);
    let avg = hourly.iter().sum::<f64>() / hourly.len() as f64;
    DayStats {
        date,
        min,
        avg,
        max,
    }
}

/// Demand handle of one Fig. 8 pass.
pub struct Plan {
    usage: Demand<ClassUsageConsumer>,
}

/// Declare Fig. 8's trace demand on a shared engine plan.
pub fn plan(plan: &mut EnginePlan, registry: &Registry) -> Plan {
    let classifier = Arc::new(Classifier::from_registry(registry));
    Plan {
        usage: plan.subscribe(
            Stream::Vantage(VantagePoint::IxpSe),
            START,
            END,
            move || ClassUsageConsumer::new(Arc::clone(&classifier), PaperClass::Gaming),
        ),
    }
}

/// Assemble Fig. 8 from a finished engine pass.
pub fn finish(plan: Plan, out: &mut EngineOutput) -> Fig8 {
    let usage = out.take(plan.usage);
    let mut unique_ips = Vec::new();
    let mut volume = Vec::new();
    let mut day_ips: Vec<f64> = Vec::with_capacity(24);
    let mut day_bytes: Vec<f64> = Vec::with_capacity(24);
    for date in START.range_inclusive(END) {
        for hour in 0..24u8 {
            let u = usage.hour_usage(date, hour);
            day_ips.push(u.unique_ips as f64);
            day_bytes.push(u.bytes as f64);
        }
        unique_ips.push(day_stats(date, &day_ips));
        volume.push(day_stats(date, &day_bytes));
        day_ips.clear();
        day_bytes.clear();
    }
    // Normalize each series to its global positive minimum.
    let normalize = |series: &mut Vec<DayStats>| {
        let min = series
            .iter()
            .flat_map(|d| [d.min, d.avg, d.max])
            .filter(|&v| v > 0.0)
            .fold(f64::MAX, f64::min);
        for d in series.iter_mut() {
            d.min /= min;
            d.avg /= min;
            d.max /= min;
        }
    };
    let mut fig = Fig8 { unique_ips, volume };
    normalize(&mut fig.unique_ips);
    normalize(&mut fig.volume);
    fig
}

/// Run Fig. 8 standalone.
pub fn run(ctx: &Context) -> Fig8 {
    let mut eplan = EnginePlan::new();
    let p = plan(&mut eplan, &ctx.registry);
    finish(
        p,
        &mut engine::run(ctx, eplan).expect("archive-free engine pass cannot fail"),
    )
}

impl Fig8 {
    /// Mean of daily averages over an inclusive date range.
    pub fn mean_avg(series: &[DayStats], start: Date, end: Date) -> f64 {
        let vals: Vec<f64> = series
            .iter()
            .filter(|d| d.date >= start && d.date <= end)
            .map(|d| d.avg)
            .collect();
        vals.iter().sum::<f64>() / vals.len().max(1) as f64
    }

    /// The outage dip: minimum daily average in the first lockdown week
    /// divided by the preceding week's mean.
    pub fn outage_dip(&self) -> f64 {
        let before = Self::mean_avg(&self.volume, Date::new(2020, 3, 9), Date::new(2020, 3, 15));
        let outage_week_min = self
            .volume
            .iter()
            .filter(|d| d.date >= Date::new(2020, 3, 16) && d.date <= Date::new(2020, 3, 22))
            .map(|d| d.avg)
            .fold(f64::MAX, f64::min);
        outage_week_min / before
    }

    /// Render weekly means of both metrics.
    pub fn render(&self) -> String {
        let mut t = TextTable::new(["week of", "unique IPs (avg)", "volume (avg)"]);
        let mut monday = START;
        while monday <= END {
            let sunday = monday.add_days(6);
            t.row([
                monday.iso(),
                format!("{:.2}", Self::mean_avg(&self.unique_ips, monday, sunday)),
                format!("{:.2}", Self::mean_avg(&self.volume, monday, sunday)),
            ]);
            monday = monday.add_days(7);
        }
        format!(
            "Fig. 8 — gaming at IXP-SE (normalized to min; outage dip ×{:.2})\n{}",
            self.outage_dip(),
            t.render()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::Fidelity;
    use std::sync::OnceLock;

    fn fig() -> &'static Fig8 {
        static FIG: OnceLock<Fig8> = OnceLock::new();
        FIG.get_or_init(|| run(&Context::new(Fidelity::Test)))
    }

    #[test]
    fn both_metrics_rise_steeply_with_lockdown() {
        let f = fig();
        for (name, series) in [("IPs", &f.unique_ips), ("volume", &f.volume)] {
            let before = Fig8::mean_avg(series, Date::new(2020, 2, 17), Date::new(2020, 2, 23));
            let after = Fig8::mean_avg(series, Date::new(2020, 3, 30), Date::new(2020, 4, 5));
            assert!(
                after > 1.5 * before,
                "{name}: {before:.2} -> {after:.2} not a steep rise"
            );
        }
    }

    #[test]
    fn outage_plunges_volume() {
        // "the accounted volume plunges for two days to the lowest values
        // observed in the time frame".
        let f = fig();
        let dip = f.outage_dip();
        assert!(dip < 0.55, "outage dip only ×{dip:.2}");
        // The outage days are (near) the range minimum of daily averages.
        let range_min = f.volume.iter().map(|d| d.avg).fold(f64::MAX, f64::min);
        let outage_min = f
            .volume
            .iter()
            .filter(|d| d.date >= Date::new(2020, 3, 16) && d.date <= Date::new(2020, 3, 17))
            .map(|d| d.avg)
            .fold(f64::MAX, f64::min);
        assert!(outage_min <= range_min * 1.05);
    }

    #[test]
    fn daily_ordering_holds() {
        let f = fig();
        for d in f.volume.iter().chain(f.unique_ips.iter()) {
            assert!(d.min <= d.avg && d.avg <= d.max, "{d:?}");
        }
    }

    #[test]
    fn full_range_covered() {
        let f = fig();
        assert_eq!(f.volume.len(), 77); // Feb 10 .. Apr 26 inclusive
        assert_eq!(f.unique_ips.len(), 77);
    }

    #[test]
    fn renders() {
        assert!(fig().render().contains("outage dip"));
    }
}
