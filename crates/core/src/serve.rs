//! Figure assembly from externally fetched cells — the serving path.
//!
//! The suite ([`crate::experiments::suite`]) runs every figure in one
//! engine pass over generated (or archive-replayed) cells. A query
//! plane serving `GET /figures/<name>` needs the opposite shape: *one*
//! figure, assembled on demand, from cells fetched through whatever
//! read layer the caller owns (a predicate-pushdown scan with a decoded
//! -segment cache, in the CLI's case). [`render_figure`] does exactly
//! that: it builds the named figure's standalone plan — the same plan
//! the suite registers, same subscriptions, same consumer factories —
//! enumerates its deduplicated cells, feeds each fetched batch to every
//! covering subscription, and finishes the figure through the identical
//! consumer machinery. Because generation and replay are byte-identical
//! (the store's contract) and consumer merging is order-independent
//! (the engine's contract), the rendering is byte-identical to the
//! corresponding [`Suite::renders`] section.
//!
//! [`Suite::renders`]: crate::experiments::suite::Suite::renders

use crate::context::Context;
use crate::engine::{EngineOutput, EnginePlan, EngineStats};
use crate::experiments::{
    fig1, fig10, fig11_12, fig2, fig3, fig4, fig5, fig6, fig7, fig8, fig9, sec3_4, sec9, tables,
};
use lockdown_flow::record::FlowRecord;
use lockdown_store::StoreError;
use lockdown_topology::vantage::VantagePoint;
use lockdown_traffic::plan::Cell;
use std::fmt;
use std::sync::Arc;

/// Why a figure could not be served.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The name is not in [`figure_names`].
    UnknownFigure(String),
    /// A cell fetch failed (missing coverage, I/O, corruption). The
    /// store error names the offending segment, so callers can degrade
    /// per supervisor conventions: report it, keep serving the rest.
    Store(StoreError),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::UnknownFigure(name) => write!(f, "unknown figure '{name}'"),
            ServeError::Store(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<StoreError> for ServeError {
    fn from(e: StoreError) -> ServeError {
        ServeError::Store(e)
    }
}

/// The cell source a figure is assembled from.
pub type Fetch<'a> = dyn FnMut(Cell) -> Result<Arc<Vec<FlowRecord>>, StoreError> + 'a;

/// Every servable figure/table name, in [`Suite::renders`] print order —
/// reassembling all of them in order reproduces the suite stdout.
///
/// [`Suite::renders`]: crate::experiments::suite::Suite::renders
pub fn figure_names() -> Vec<String> {
    let mut names: Vec<String> = [
        "table2", "table1", "fig1", "fig2a", "fig2b", "fig2c", "fig3a", "fig3b", "fig4", "fig5",
        "fig6", "sec3.4", "fig7a", "fig7b", "fig8",
    ]
    .into_iter()
    .map(String::from)
    .collect();
    names.extend(
        VantagePoint::CORE_FOUR
            .into_iter()
            .map(|vp| format!("fig9:{}", vp.label())),
    );
    names.extend(["fig10", "fig11-12", "sec9"].into_iter().map(String::from));
    names
}

/// Run one figure's standalone plan against fetched cells: build the
/// plan, pull every distinct cell once, fan each batch to the covering
/// subscriptions, and hand back the redeemable output.
fn assemble<T>(
    fetch: &mut Fetch<'_>,
    build: impl FnOnce(&mut EnginePlan) -> T,
) -> Result<(T, EngineOutput), StoreError> {
    let mut plan = EnginePlan::new();
    let plans = build(&mut plan);
    let (trace, subs) = plan.into_trace_and_subs();
    let mut stats = EngineStats {
        demands: subs.len(),
        cells_demanded: trace.cells_demanded(),
        cells_generated: 0,
        cells_replayed: 0,
        cells_resumed: 0,
        cells_quarantined: 0,
        retries: 0,
        flows_emitted: 0,
        workers: 1,
    };
    let mut consumers: Vec<_> = subs.iter().map(|s| s.build()).collect();
    for cell in trace.cells() {
        let records = fetch(cell)?;
        stats.cells_replayed += 1;
        stats.flows_emitted += records.len() as u64;
        for (sub, consumer) in subs.iter().zip(consumers.iter_mut()) {
            if sub.covers(cell) {
                consumer.observe_batch(&records);
            }
        }
    }
    Ok((plans, EngineOutput::from_consumers(consumers, stats, None)))
}

/// Render one figure (by [`figure_names`] name) from fetched cells,
/// byte-identical to the corresponding suite section.
pub fn render_figure(
    ctx: &Context,
    name: &str,
    fetch: &mut Fetch<'_>,
) -> Result<String, ServeError> {
    match name {
        // The tables need no trace: Table 2 is static, Table 1 is
        // registry-derived.
        "table2" => return Ok(tables::table2()),
        "table1" => return Ok(tables::table1(ctx).render()),
        _ => {}
    }
    if let Some(label) = name.strip_prefix("fig9:") {
        let vp = VantagePoint::CORE_FOUR
            .into_iter()
            .find(|vp| vp.label() == label)
            .ok_or_else(|| ServeError::UnknownFigure(name.to_string()))?;
        let (p, mut out) = assemble(fetch, |pl| fig9::plan(pl, &ctx.registry, vp))?;
        return Ok(fig9::finish(p, &mut out).render());
    }
    Ok(match name {
        "fig1" => {
            let (p, mut out) = assemble(fetch, fig1::plan)?;
            fig1::finish(p, &mut out).render()
        }
        "fig2a" => {
            let (p, mut out) = assemble(fetch, fig2::plan_2a)?;
            fig2::finish_2a(p, &mut out).render()
        }
        "fig2b" => {
            let (p, mut out) = assemble(fetch, |pl| fig2::plan_2bc(pl, VantagePoint::IspCe))?;
            fig2::finish_2bc(p, &mut out).render()
        }
        "fig2c" => {
            let (p, mut out) = assemble(fetch, |pl| fig2::plan_2bc(pl, VantagePoint::IxpCe))?;
            fig2::finish_2bc(p, &mut out).render()
        }
        "fig3a" => {
            let (p, mut out) = assemble(fetch, fig3::plan_3a)?;
            fig3::finish_3a(p, &mut out).render()
        }
        "fig3b" => {
            let (p, mut out) = assemble(fetch, fig3::plan_3b)?;
            fig3::finish_3b(p, &mut out).render()
        }
        "fig4" => {
            let (p, mut out) = assemble(fetch, fig4::plan)?;
            fig4::finish(p, &mut out).render()
        }
        "fig5" => {
            let (p, mut out) = assemble(fetch, fig5::plan)?;
            fig5::finish(ctx, p, &mut out).render()
        }
        "fig6" => {
            let (p, mut out) = assemble(fetch, fig6::plan)?;
            fig6::finish(ctx, p, &mut out).render()
        }
        "sec3.4" => {
            let (p, mut out) = assemble(fetch, sec3_4::plan)?;
            sec3_4::finish(p, &mut out).render()
        }
        "fig7a" => {
            let (p, mut out) = assemble(fetch, |pl| fig7::plan(pl, VantagePoint::IspCe))?;
            fig7::finish(p, &mut out).render()
        }
        "fig7b" => {
            let (p, mut out) = assemble(fetch, |pl| fig7::plan(pl, VantagePoint::IxpCe))?;
            fig7::finish(p, &mut out).render()
        }
        "fig8" => {
            let (p, mut out) = assemble(fetch, |pl| fig8::plan(pl, &ctx.registry))?;
            fig8::finish(p, &mut out).render()
        }
        "fig10" => {
            let (p, mut out) = assemble(fetch, |pl| fig10::plan(pl, ctx))?;
            fig10::finish(p, &mut out).render()
        }
        "fig11-12" => {
            let (p, mut out) = assemble(fetch, |pl| fig11_12::plan(pl, &ctx.registry))?;
            fig11_12::finish(p, &mut out).render()
        }
        "sec9" => {
            let (p, mut out) = assemble(fetch, sec9::plan)?;
            sec9::finish(p, &mut out).render()
        }
        other => return Err(ServeError::UnknownFigure(other.to_string())),
    })
}

/// The full-suite plan hash for this context — the value an archive
/// manifest key pins. A server fronting an archive built for a different
/// seed/scenario/fidelity would answer every figure with missing-cell
/// errors; comparing this hash up front turns that into one clear
/// startup diagnostic.
pub fn suite_plan_hash(ctx: &Context) -> u64 {
    let mut plan = EnginePlan::new();
    crate::experiments::suite::build_plan(ctx, &mut plan);
    let (trace, _) = plan.into_trace_and_subs();
    trace.plan_hash()
}

/// The set of distinct cells the named figure's plan demands — what a
/// serving layer must be able to fetch before it can render the figure.
pub fn figure_cells(ctx: &Context, name: &str) -> Result<Vec<Cell>, ServeError> {
    let mut plan = EnginePlan::new();
    match name {
        "table2" | "table1" => return Ok(Vec::new()),
        "fig1" => {
            fig1::plan(&mut plan);
        }
        "fig2a" => {
            fig2::plan_2a(&mut plan);
        }
        "fig2b" => {
            fig2::plan_2bc(&mut plan, VantagePoint::IspCe);
        }
        "fig2c" => {
            fig2::plan_2bc(&mut plan, VantagePoint::IxpCe);
        }
        "fig3a" => {
            fig3::plan_3a(&mut plan);
        }
        "fig3b" => {
            fig3::plan_3b(&mut plan);
        }
        "fig4" => {
            fig4::plan(&mut plan);
        }
        "fig5" => {
            fig5::plan(&mut plan);
        }
        "fig6" => {
            fig6::plan(&mut plan);
        }
        "sec3.4" => {
            sec3_4::plan(&mut plan);
        }
        "fig7a" => {
            fig7::plan(&mut plan, VantagePoint::IspCe);
        }
        "fig7b" => {
            fig7::plan(&mut plan, VantagePoint::IxpCe);
        }
        "fig8" => {
            fig8::plan(&mut plan, &ctx.registry);
        }
        "fig10" => {
            fig10::plan(&mut plan, ctx);
        }
        "fig11-12" => {
            fig11_12::plan(&mut plan, &ctx.registry);
        }
        "sec9" => {
            sec9::plan(&mut plan);
        }
        other => match other.strip_prefix("fig9:").and_then(|label| {
            VantagePoint::CORE_FOUR
                .into_iter()
                .find(|vp| vp.label() == label)
        }) {
            Some(vp) => {
                fig9::plan(&mut plan, &ctx.registry, vp);
            }
            None => return Err(ServeError::UnknownFigure(other.to_string())),
        },
    }
    let (trace, _) = plan.into_trace_and_subs();
    Ok(trace.cells())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::Fidelity;

    #[test]
    fn unknown_figures_are_typed_errors() {
        let ctx = Context::new(Fidelity::Test);
        let mut fetch = |_: Cell| -> Result<Arc<Vec<FlowRecord>>, StoreError> {
            unreachable!("unknown figures never fetch")
        };
        assert!(matches!(
            render_figure(&ctx, "fig99", &mut fetch),
            Err(ServeError::UnknownFigure(_))
        ));
        assert!(matches!(
            render_figure(&ctx, "fig9:MOON", &mut fetch),
            Err(ServeError::UnknownFigure(_))
        ));
        assert!(figure_cells(&ctx, "fig99").is_err());
    }

    #[test]
    fn tables_need_no_cells_and_figures_name_theirs() {
        let ctx = Context::new(Fidelity::Test);
        assert!(figure_cells(&ctx, "table1").unwrap().is_empty());
        let cells = figure_cells(&ctx, "fig8").unwrap();
        assert!(!cells.is_empty());
        // A fetch-backed render of a generated figure matches the direct
        // engine run: feed generation output straight through the fetch.
        let emitter = lockdown_traffic::plan::TraceEmitter::with_scenario(
            &ctx.registry,
            &ctx.corpus,
            ctx.config,
            &ctx.scenario,
        );
        let mut fetch = |cell: Cell| -> Result<Arc<Vec<FlowRecord>>, StoreError> {
            let mut batch = Vec::new();
            emitter.generate_cell(cell, &mut batch);
            Ok(Arc::new(batch))
        };
        let served = render_figure(&ctx, "fig8", &mut fetch).unwrap();
        let direct = fig8::run(&ctx).render();
        assert_eq!(served, direct);
    }
}
